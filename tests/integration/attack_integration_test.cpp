// End-to-end attack integration: a random-subdomain attack travels
// through the simulated Internet into a filtered PoP; the NXDOMAIN
// filter arms from the observed responses and legitimate queries keep
// being answered while attack queries are starved — the Figure 10 story
// on the full platform instead of the two-machine testbed.

#include <gtest/gtest.h>

#include "core/platform.hpp"
#include "dns/wire.hpp"
#include "filters/nxdomain_filter.hpp"
#include "zone/zone_builder.hpp"

namespace akadns {
namespace {

using dns::DnsName;
using dns::Rcode;
using dns::RecordType;

struct Stack {
  core::Platform platform;
  netsim::NodeId client_node = netsim::kInvalidNode;

  Stack(bool with_filters) : platform(make_config()) {
    platform.build_internet();
    // One PoP with a deliberately small machine so the attack saturates
    // compute.
    auto& pop = platform.add_pop(platform.topology().edges[0], 1, {1});
    auto& machine = pop.machine(0);
    // Rebuild the capacity model: slow machine.
    (void)machine;
    platform.host_zone(zone::ZoneBuilder("victim.com", 1)
                           .soa("ns1.victim.com", "hostmaster.victim.com", 1)
                           .ns("@", "ns1.victim.com")
                           .a("ns1", "10.0.0.1")
                           .a("www", "93.184.216.34")
                           .a("api", "93.184.216.35")
                           .build());
    platform.start_mapping_heartbeat(Duration::seconds(5));
    if (with_filters) {
      core::Platform::FilterDefaults defaults;
      defaults.nxdomain_threshold = 50;
      // Score random-subdomain probes past S_max (200): once armed, the
      // attack is discarded outright as "definitively malicious".
      defaults.nxdomain_penalty = 250.0;
      platform.install_filter_pipeline(defaults);
    }
    platform.run_until(platform.scheduler().now() + Duration::seconds(10));
    client_node = platform.topology().edges.back();
  }

  static core::PlatformConfig make_config() {
    core::PlatformConfig config;
    config.topology.tier1_count = 3;
    config.topology.tier2_count = 6;
    config.topology.edge_count = 10;
    config.network.slow_mrai_fraction = 0.0;
    config.seed = 31;
    config.query_timeout = Duration::millis(800);
    return config;
  }

  /// Drives `seconds` of mixed traffic; returns the fraction of the
  /// legitimate queries answered.
  double run_attack(double legit_qps, double attack_qps, double seconds) {
    Rng rng(99);
    std::uint64_t legit_sent = 0, legit_answered = 0;
    std::uint16_t id = 1;
    const SimTime start = platform.scheduler().now();
    // Schedule all arrivals up front; the platform runs them in order.
    for (double t = 0; t < seconds; t += 1e-2) {
      const auto legit_count = rng.next_poisson(legit_qps * 1e-2);
      const auto attack_count = rng.next_poisson(attack_qps * 1e-2);
      std::vector<bool> arrivals;
      arrivals.insert(arrivals.end(), legit_count, true);
      arrivals.insert(arrivals.end(), attack_count, false);
      rng.shuffle(arrivals);
      for (const bool legit_arrival : arrivals) {
        const DnsName qname =
            legit_arrival
                ? DnsName::from(rng.next_bool(0.5) ? "www.victim.com" : "api.victim.com")
                : *DnsName::from("victim.com")
                       .prepend("rnd" + std::to_string(rng.next_u64() % 100000000));
        // Distinct source per attack flow; one stable legit resolver.
        const Endpoint source{
            legit_arrival
                ? *IpAddr::parse("198.51.100.53")
                : IpAddr(Ipv4Addr(0xCB000000u + static_cast<std::uint32_t>(
                                                    rng.next_below(50'000)))),
            static_cast<std::uint16_t>(1024 + rng.next_below(60000))};
        const auto query = dns::make_query(id++, qname, RecordType::A);
        const SimTime at = start + Duration::seconds_f(t);
        auto* counter = legit_arrival ? &legit_answered : nullptr;
        if (legit_arrival) ++legit_sent;
        platform.scheduler().schedule_at(at, [this, source, query, counter] {
          platform.send_query(client_node, source, 57, query, 1,
                              [counter](std::optional<dns::Message> response, Duration) {
                                if (counter && response &&
                                    response->header.rcode == Rcode::NoError) {
                                  ++*counter;
                                }
                              });
        });
      }
    }
    platform.run_until(start + Duration::seconds_f(seconds + 3.0));
    return legit_sent ? static_cast<double>(legit_answered) / legit_sent : 1.0;
  }
};

TEST(AttackIntegration, FiltersProtectLegitTrafficOverTheFullPlatform) {
  // Keep rates modest: every query is a simulated packet crossing the
  // network. Capacity is the machine default (50k qps compute), so the
  // bottleneck here is the penalty-queue discard path, demonstrated by
  // the score-based discards rather than raw compute exhaustion.
  Stack filtered(true);
  const double goodput = filtered.run_attack(/*legit=*/50, /*attack=*/400, /*seconds=*/4);
  EXPECT_GT(goodput, 0.95);
  // The NXDOMAIN filter armed on the victim zone.
  auto& machine = filtered.platform.pop_at(0).machine(0);
  const auto& stats = machine.nameserver().stats();
  EXPECT_GT(stats.queries_processed, 0u);
  auto* filter = machine.nameserver().scoring().find("nxdomain");
  ASSERT_NE(filter, nullptr);
  EXPECT_GT(dynamic_cast<filters::NxDomainFilter*>(filter)->total_penalized(), 100u);
}

TEST(AttackIntegration, UnfilteredPlatformAnswersEverything) {
  // Without filters and with ample compute the attack is simply served
  // (every random name gets an NXDOMAIN) — the cost is pure capacity.
  Stack unfiltered(false);
  const double goodput = unfiltered.run_attack(50, 400, 4);
  EXPECT_GT(goodput, 0.95);
  const auto& stats = unfiltered.platform.pop_at(0).machine(0).nameserver().stats();
  EXPECT_EQ(stats.discarded_by_score(), 0u);
  // The responder emitted a large number of NXDOMAINs.
  EXPECT_GT(unfiltered.platform.pop_at(0).machine(0).nameserver().responder().stats().nxdomain,
            1000u);
}

TEST(AttackIntegration, FilteredPlatformDiscardsAttackQueries) {
  Stack filtered(true);
  filtered.run_attack(50, 400, 4);
  const auto& stats = filtered.platform.pop_at(0).machine(0).nameserver().stats();
  // Once armed, attack queries score nxdomain(250) >= S_max (200) and
  // are discarded outright.
  EXPECT_GT(stats.discarded_by_score(), 300u);
}

}  // namespace
}  // namespace akadns
