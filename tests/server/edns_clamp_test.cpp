// The EDNS payload-size clamp (DNS Flag Day 2020): the client's
// advertised UDP payload size is honored only up to a configurable
// ceiling (default 1232) and never below 512 — an advertisement of
// 65535 must not turn the server into an amplification cannon, and a
// sub-512 advertisement is treated as 512 per RFC 6891 §6.2.3. TCP is
// exempt: its limit is the transport's (kMaxMessageSize), so anything
// truncated by the clamp arrives whole on retry.

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "dns/wire.hpp"
#include "server/responder.hpp"
#include "zone/zone_builder.hpp"

namespace akadns::server {
namespace {

using dns::DnsName;
using dns::RecordType;

zone::ZoneStore make_store() {
  auto builder = zone::ZoneBuilder("example.com", 1)
                     .ns("@", "ns1.example.com")
                     .a("ns1", "10.0.0.1")
                     .a("www", "93.184.216.34");
  // ~30 TXT records ≈ 2.5 KiB of answer: bigger than the 1232 ceiling,
  // smaller than 4096 — so the clamp (not the advertisement) decides.
  for (int i = 0; i < 30; ++i) {
    builder.txt("fat", "record-" + std::to_string(i) + "-" + std::string(64, 'y'));
  }
  zone::ZoneStore store;
  store.publish(builder.build());
  return store;
}

std::vector<std::uint8_t> query_wire(std::optional<std::uint16_t> advertised,
                                     const char* qname = "fat.example.com",
                                     RecordType qtype = RecordType::TXT) {
  auto query = dns::make_query(77, DnsName::from(qname), qtype);
  if (advertised) {
    query.edns.emplace();
    query.edns->udp_payload_size = *advertised;
  }
  return dns::encode(query);
}

dns::Message respond(Responder& responder, std::optional<std::uint16_t> advertised,
                     std::size_t wire_size_limit = 0) {
  const Endpoint client{*IpAddr::parse("203.0.113.9"), 3553};
  auto wire = responder.respond_wire(query_wire(advertised), client, SimTime::origin(),
                                     wire_size_limit);
  EXPECT_TRUE(wire.has_value());
  auto decoded = dns::decode(*wire);
  EXPECT_TRUE(decoded.ok()) << decoded.error();
  return std::move(decoded).take();
}

TEST(EdnsClamp, EffectivePayloadClampsTheLadder) {
  auto store = make_store();
  Responder responder(store);
  const auto with = [](std::uint16_t advertised) {
    dns::Edns edns;
    edns.udp_payload_size = advertised;
    return std::optional<dns::Edns>(edns);
  };
  // No EDNS: the pre-EDNS default.
  EXPECT_EQ(responder.effective_udp_payload(std::nullopt), 512u);
  // Below the RFC 6891 floor: raised to 512.
  EXPECT_EQ(responder.effective_udp_payload(with(100)), 512u);
  EXPECT_EQ(responder.effective_udp_payload(with(512)), 512u);
  // At/below the ceiling: honored.
  EXPECT_EQ(responder.effective_udp_payload(with(1232)), 1232u);
  // Above the ceiling: clamped.
  EXPECT_EQ(responder.effective_udp_payload(with(4096)), 1232u);
  EXPECT_EQ(responder.effective_udp_payload(with(65535)), 1232u);
}

TEST(EdnsClamp, ConfigurableCeiling) {
  auto store = make_store();
  ResponderConfig config;
  config.edns_udp_payload_max = 4096;
  Responder responder(store, config);
  dns::Edns edns;
  edns.udp_payload_size = 65535;
  EXPECT_EQ(responder.effective_udp_payload(edns), 4096u);
  edns.udp_payload_size = 1400;
  EXPECT_EQ(responder.effective_udp_payload(edns), 1400u);
}

TEST(EdnsClamp, Advertise512Truncates) {
  auto store = make_store();
  Responder responder(store);
  const auto response = respond(responder, 512);
  EXPECT_TRUE(response.header.tc);
  EXPECT_TRUE(response.answers.empty());
}

TEST(EdnsClamp, Advertise1232TruncatesTheFatAnswer) {
  auto store = make_store();
  Responder responder(store);
  // The answer (~2.5 KiB) exceeds 1232, so even the honored Flag Day
  // advertisement truncates — the client is told to retry over TCP.
  const auto response = respond(responder, 1232);
  EXPECT_TRUE(response.header.tc);
}

TEST(EdnsClamp, Advertise65535IsClampedTo1232) {
  auto store = make_store();
  Responder responder(store);
  // Without the clamp a 65535 advertisement would carry the whole
  // answer; with it the response behaves exactly like a 1232 one.
  const auto at_65535 = respond(responder, 65535);
  EXPECT_TRUE(at_65535.header.tc) << "clamp must override the huge advertisement";

  // Raise the ceiling and the same advertisement passes untruncated.
  ResponderConfig config;
  config.edns_udp_payload_max = 65535;
  Responder generous(store, config);
  const auto unclamped = respond(generous, 65535);
  EXPECT_FALSE(unclamped.header.tc);
  EXPECT_EQ(unclamped.answers.size(), 30u);
}

TEST(EdnsClamp, SmallAnswerUnaffectedByClamp) {
  auto store = make_store();
  Responder responder(store);
  const Endpoint client{*IpAddr::parse("203.0.113.9"), 3553};
  auto wire = responder.respond_wire(query_wire(65535, "www.example.com", RecordType::A),
                                     client);
  ASSERT_TRUE(wire.has_value());
  auto decoded = dns::decode(*wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded.value().header.tc);
  EXPECT_EQ(decoded.value().answers.size(), 1u);
}

TEST(EdnsClamp, TcpTransportLimitBypassesClamp) {
  auto store = make_store();
  Responder responder(store);
  // TCP semantics: the caller passes the transport ceiling, the clamp
  // (a UDP anti-amplification measure) does not apply.
  const auto response = respond(responder, 65535, dns::kMaxMessageSize);
  EXPECT_FALSE(response.header.tc);
  EXPECT_EQ(response.answers.size(), 30u);
  // Even a 512 advertisement rides free over TCP.
  const auto small_advert = respond(responder, 512, dns::kMaxMessageSize);
  EXPECT_FALSE(small_advert.header.tc);
  EXPECT_EQ(small_advert.answers.size(), 30u);
}

TEST(EdnsClamp, TcpResponsesBypassTheAnswerCache) {
  auto store = make_store();
  Responder responder(store);
  // Two TCP responses: neither consults nor populates the UDP-keyed
  // answer cache.
  respond(responder, 65535, dns::kMaxMessageSize);
  respond(responder, 65535, dns::kMaxMessageSize);
  EXPECT_EQ(responder.answer_cache().stats().hits, 0u);
  EXPECT_EQ(responder.answer_cache().stats().insertions, 0u);
  // The same query over UDP does use the cache.
  respond(responder, 65535);
  respond(responder, 65535);
  EXPECT_EQ(responder.answer_cache().stats().insertions, 1u);
  EXPECT_EQ(responder.answer_cache().stats().hits, 1u);
}

TEST(EdnsClamp, CacheKeysDistinguishAdvertisedSizes) {
  auto store = make_store();
  Responder responder(store);
  // 512 and 1232 advertisements truncate at different limits, so they
  // must occupy distinct cache slots — a shared slot would replay the
  // wrong truncation.
  const auto first = respond(responder, 512);
  const auto second = respond(responder, 1232);
  EXPECT_EQ(responder.answer_cache().stats().hits, 0u);
  const auto first_again = respond(responder, 512);
  EXPECT_EQ(responder.answer_cache().stats().hits, 1u);
  EXPECT_TRUE(first.header.tc);
  EXPECT_TRUE(first_again.header.tc);
}

}  // namespace
}  // namespace akadns::server
