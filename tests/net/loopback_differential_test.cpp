// The loopback differential suite: a real akadns-serve frontend on an
// ephemeral port must answer byte-identically to the simulator's
// Responder for a corpus spanning every response shape — plain answers,
// wildcards, delegations with glue, CNAME chains, NXDOMAIN/NODATA with
// SOA, REFUSED, and the EDNS/ECS variants (including advertisements the
// payload clamp rewrites). UDP and TCP are both exercised; TCP must
// deliver untruncated what UDP truncates.

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "dns/wire.hpp"
#include "net/server.hpp"
#include "net/tcp_framing.hpp"
#include "server/responder.hpp"
#include "zone/zone_builder.hpp"

namespace akadns::net {
namespace {

using dns::DnsName;
using dns::RecordType;

constexpr Ipv4Addr kLoopback(127, 0, 0, 1);

zone::ZoneStore make_store() {
  zone::ZoneStore store;
  auto builder = zone::ZoneBuilder("example.com", 1)
                     .ns("@", "ns1.example.com")
                     .a("ns1", "10.0.0.1")
                     .a("www", "93.184.216.34")
                     .aaaa("www", "2606:2800:220:1::1")
                     .cname("alias", "www.example.com")
                     .cname("hop1", "hop2.example.com")
                     .cname("hop2", "www.example.com")
                     .cname("external", "cdn.example.net")
                     .a("*.wild", "198.18.0.99")
                     .ns("sub", "ns.sub.example.com")
                     .a("ns.sub", "10.0.1.1")
                     .mx("@", 10, "mail.example.com")
                     .a("mail", "10.0.0.25");
  // A fat TXT set: large enough that a 512-byte UDP answer truncates but
  // TCP (and a 1232+ advertisement) carries it whole.
  for (int i = 0; i < 6; ++i) {
    builder.txt("big", "segment-" + std::to_string(i) + "-" + std::string(60, 'x'));
  }
  store.publish(builder.build());
  store.publish(zone::ZoneBuilder("edgesuite.net", 1)
                    .ns("@", "ns1.edgesuite.net")
                    .a("ns1", "10.2.0.1")
                    .cname("ex", "a1.w10.akamai.net.")
                    .build());
  return store;
}

struct QueryCase {
  std::string label;
  std::vector<std::uint8_t> wire;
};

std::vector<QueryCase> make_corpus() {
  std::vector<QueryCase> corpus;
  std::uint16_t id = 100;
  const auto add = [&](std::string label, const char* qname, RecordType qtype,
                       std::optional<std::uint16_t> edns_size = std::nullopt,
                       bool with_ecs = false) {
    auto query = dns::make_query(id++, DnsName::from(qname), qtype);
    if (edns_size) {
      query.edns.emplace();
      query.edns->udp_payload_size = *edns_size;
      if (with_ecs) {
        query.edns->client_subnet =
            dns::ClientSubnet{IpAddr(Ipv4Addr(198, 51, 100, 0)), 24, 0};
      }
    }
    corpus.push_back({std::move(label), dns::encode(query)});
  };

  add("plain A", "www.example.com", RecordType::A);
  add("plain AAAA", "www.example.com", RecordType::AAAA);
  add("apex MX", "example.com", RecordType::MX);
  add("wildcard", "anything.wild.example.com", RecordType::A);
  add("wildcard deep", "a.b.wild.example.com", RecordType::A);
  add("delegation", "host.sub.example.com", RecordType::A);
  add("cname chase", "alias.example.com", RecordType::A);
  add("cname chain", "hop1.example.com", RecordType::A);
  add("cname out of zone", "external.example.com", RecordType::A);
  add("cross-zone cname", "ex.edgesuite.net", RecordType::A);
  add("nxdomain", "missing.example.com", RecordType::A);
  add("nodata", "www.example.com", RecordType::MX);
  add("refused", "www.not-hosted.org", RecordType::A);
  add("edns 512", "www.example.com", RecordType::A, 512);
  add("edns 1232", "www.example.com", RecordType::A, 1232);
  add("edns 4096", "www.example.com", RecordType::A, 4096);
  add("edns 65535", "www.example.com", RecordType::A, 65535);
  add("edns+ecs", "www.example.com", RecordType::A, 1232, true);
  add("big txt no edns", "big.example.com", RecordType::TXT);
  add("big txt edns 512", "big.example.com", RecordType::TXT, 512);
  add("big txt edns 1232", "big.example.com", RecordType::TXT, 1232);
  add("big txt edns 65535", "big.example.com", RecordType::TXT, 65535);
  add("big txt edns+ecs", "big.example.com", RecordType::TXT, 1232, true);
  return corpus;
}

struct LoopbackServer : ::testing::Test {
  zone::ZoneStore store = make_store();
  std::optional<Server> server;

  void SetUp() override {
    ServeConfig config;
    config.port = 0;  // ephemeral
    config.workers = 2;
    server.emplace(config, store);
    auto started = server->start();
    ASSERT_TRUE(started) << started.error();
  }

  void TearDown() override { server->stop(); }

  /// One UDP exchange through the real socket stack.
  std::vector<std::uint8_t> exchange_udp(const std::vector<std::uint8_t>& query) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_storage dst{};
    const socklen_t dst_len = sockaddr_from_endpoint(
        Endpoint{IpAddr(kLoopback), server->udp_port()}, dst);
    EXPECT_EQ(::sendto(fd, query.data(), query.size(), 0,
                       reinterpret_cast<const sockaddr*>(&dst), dst_len),
              static_cast<ssize_t>(query.size()));
    pollfd pfd{fd, POLLIN, 0};
    EXPECT_EQ(::poll(&pfd, 1, 3000), 1) << "no UDP response";
    std::vector<std::uint8_t> buf(65536);
    const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
    ::close(fd);
    EXPECT_GT(n, 0);
    buf.resize(n > 0 ? static_cast<std::size_t>(n) : 0);
    return buf;
  }

  /// Blocking read of exactly one length-framed TCP response.
  static std::vector<std::uint8_t> read_frame(int fd) {
    const auto read_exact = [&](std::uint8_t* out, std::size_t want) {
      std::size_t got = 0;
      while (got < want) {
        pollfd pfd{fd, POLLIN, 0};
        if (::poll(&pfd, 1, 3000) != 1) return false;
        const ssize_t n = ::recv(fd, out + got, want - got, 0);
        if (n <= 0) return false;
        got += static_cast<std::size_t>(n);
      }
      return true;
    };
    std::uint8_t prefix[2];
    if (!read_exact(prefix, 2)) return {};
    const std::size_t len = (static_cast<std::size_t>(prefix[0]) << 8) | prefix[1];
    std::vector<std::uint8_t> payload(len);
    if (!read_exact(payload.data(), len)) return {};
    return payload;
  }

  int connect_tcp() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_storage dst{};
    const socklen_t dst_len = sockaddr_from_endpoint(
        Endpoint{IpAddr(kLoopback), server->tcp_port()}, dst);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&dst), dst_len), 0);
    return fd;
  }
};

TEST_F(LoopbackServer, UdpByteIdenticalToSimResponder) {
  // The reference: the simulator's Responder over the identical store.
  // Transaction ids differ per corpus entry and are part of the compared
  // bytes, so identity here covers the full message.
  server::Responder reference(store);
  const Endpoint local_client{IpAddr(kLoopback), 1};  // port differs; responses
                                                      // must not depend on it
  for (const auto& q : make_corpus()) {
    const auto got = exchange_udp(q.wire);
    auto want = reference.respond_wire(q.wire, local_client);
    ASSERT_TRUE(want.has_value()) << q.label;
    EXPECT_EQ(got, *want) << "UDP response diverged from sim Responder: " << q.label;
  }
}

TEST_F(LoopbackServer, TcpByteIdenticalToSimResponder) {
  server::Responder reference(store);
  const Endpoint local_client{IpAddr(kLoopback), 1};
  const int fd = connect_tcp();
  for (const auto& q : make_corpus()) {
    const auto prefix = frame_prefix(q.wire.size());
    std::vector<std::uint8_t> framed(prefix.begin(), prefix.end());
    framed.insert(framed.end(), q.wire.begin(), q.wire.end());
    ASSERT_EQ(::send(fd, framed.data(), framed.size(), 0),
              static_cast<ssize_t>(framed.size()));
    const auto got = read_frame(fd);
    ASSERT_FALSE(got.empty()) << "no TCP response: " << q.label;
    auto want = reference.respond_wire(q.wire, local_client, SimTime::origin(),
                                       dns::kMaxMessageSize);
    ASSERT_TRUE(want.has_value()) << q.label;
    EXPECT_EQ(got, *want) << "TCP response diverged from sim Responder: " << q.label;
  }
  ::close(fd);
}

TEST_F(LoopbackServer, TruncatedOverUdpCompleteOverTcp) {
  // The TC-bit retry path end to end: a 512-limited UDP answer comes
  // back truncated, the same query over TCP carries the full record set.
  auto query = dns::make_query(7, DnsName::from("big.example.com"), RecordType::TXT);
  query.edns.emplace();
  query.edns->udp_payload_size = 512;
  const auto wire = dns::encode(query);

  const auto udp_response = exchange_udp(wire);
  const auto udp_decoded = dns::decode(udp_response);
  ASSERT_TRUE(udp_decoded.ok()) << udp_decoded.error();
  EXPECT_TRUE(udp_decoded.value().header.tc) << "512-byte limit must truncate the fat TXT";
  EXPECT_LE(udp_response.size(), 512u);

  const int fd = connect_tcp();
  const auto prefix = frame_prefix(wire.size());
  std::vector<std::uint8_t> framed(prefix.begin(), prefix.end());
  framed.insert(framed.end(), wire.begin(), wire.end());
  ASSERT_EQ(::send(fd, framed.data(), framed.size(), 0), static_cast<ssize_t>(framed.size()));
  const auto tcp_response = read_frame(fd);
  ::close(fd);
  const auto tcp_decoded = dns::decode(tcp_response);
  ASSERT_TRUE(tcp_decoded.ok()) << tcp_decoded.error();
  EXPECT_FALSE(tcp_decoded.value().header.tc);
  EXPECT_EQ(tcp_decoded.value().answers.size(), 6u);
  EXPECT_GT(tcp_response.size(), udp_response.size());
}

TEST_F(LoopbackServer, TcpPipeliningAnswersInOrder) {
  server::Responder reference(store);
  const Endpoint local_client{IpAddr(kLoopback), 1};
  const auto corpus = make_corpus();
  // All queries in one write: the frontend must answer each, in order.
  std::vector<std::uint8_t> burst;
  for (const auto& q : corpus) {
    const auto prefix = frame_prefix(q.wire.size());
    burst.insert(burst.end(), prefix.begin(), prefix.end());
    burst.insert(burst.end(), q.wire.begin(), q.wire.end());
  }
  const int fd = connect_tcp();
  ASSERT_EQ(::send(fd, burst.data(), burst.size(), 0), static_cast<ssize_t>(burst.size()));
  for (const auto& q : corpus) {
    const auto got = read_frame(fd);
    ASSERT_FALSE(got.empty()) << "pipelined response missing: " << q.label;
    auto want = reference.respond_wire(q.wire, local_client, SimTime::origin(),
                                       dns::kMaxMessageSize);
    EXPECT_EQ(got, *want) << "pipelined response diverged: " << q.label;
  }
  ::close(fd);
}

TEST_F(LoopbackServer, TcpZeroLengthFrameClosesConnection) {
  const int fd = connect_tcp();
  const std::uint8_t empty_frame[2] = {0x00, 0x00};
  ASSERT_EQ(::send(fd, empty_frame, 2, 0), 2);
  // The server must drop the connection (RFC 7766 protocol error): the
  // next read sees EOF, not a response.
  pollfd pfd{fd, POLLIN, 0};
  ASSERT_EQ(::poll(&pfd, 1, 3000), 1);
  std::uint8_t buf[16];
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0) << "expected EOF after protocol error";
  ::close(fd);
}

TEST_F(LoopbackServer, StatsAccountForEveryQuery) {
  const auto corpus = make_corpus();
  for (const auto& q : corpus) exchange_udp(q.wire);
  server->stop();
  const auto stats = server->stats();
  EXPECT_EQ(stats.frontend.udp_packets, corpus.size());
  EXPECT_EQ(stats.frontend.udp_responses, corpus.size());
  EXPECT_EQ(stats.responder.responses, corpus.size());
  EXPECT_EQ(stats.frontend.udp_malformed, 0u);
  EXPECT_EQ(stats.per_worker_udp.size(), 2u);
}

TEST_F(LoopbackServer, MalformedDatagramIsDroppedNotAnswered) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_storage dst{};
  const socklen_t dst_len =
      sockaddr_from_endpoint(Endpoint{IpAddr(kLoopback), server->udp_port()}, dst);
  const std::uint8_t junk[5] = {0x01, 0x02, 0x03, 0x04, 0x05};  // shorter than a header
  ASSERT_EQ(::sendto(fd, junk, sizeof(junk), 0, reinterpret_cast<const sockaddr*>(&dst),
                     dst_len),
            5);
  pollfd pfd{fd, POLLIN, 0};
  EXPECT_EQ(::poll(&pfd, 1, 300), 0) << "malformed datagram must be dropped silently";
  ::close(fd);

  // A valid query still gets through afterwards (the worker survived).
  const auto query = dns::encode(dns::make_query(9, DnsName::from("www.example.com"),
                                                 RecordType::A));
  EXPECT_FALSE(exchange_udp(query).empty());
}

}  // namespace
}  // namespace akadns::net
