#include "twotier/gtm.hpp"

#include <cmath>

namespace akadns::twotier {

std::string to_string(GtmPolicy policy) {
  switch (policy) {
    case GtmPolicy::Failover: return "failover";
    case GtmPolicy::WeightedRoundRobin: return "weighted-round-robin";
    case GtmPolicy::Performance: return "performance";
  }
  return "unknown";
}

GtmProperty::GtmProperty(Config config) : config_(std::move(config)) {}

void GtmProperty::add_datacenter(Datacenter datacenter) {
  datacenters_.push_back(std::move(datacenter));
}

bool GtmProperty::set_alive(const std::string& id, bool alive) {
  for (auto& datacenter : datacenters_) {
    if (datacenter.id == id) {
      datacenter.alive = alive;
      return true;
    }
  }
  return false;
}

bool GtmProperty::set_load(const std::string& id, double load) {
  for (auto& datacenter : datacenters_) {
    if (datacenter.id == id) {
      datacenter.load = std::clamp(load, 0.0, 1.0);
      return true;
    }
  }
  return false;
}

std::vector<const Datacenter*> GtmProperty::eligible() const {
  std::vector<const Datacenter*> out;
  for (const auto& datacenter : datacenters_) {
    if (datacenter.alive && datacenter.load < config_.overload_threshold) {
      out.push_back(&datacenter);
    }
  }
  return out;
}

const Datacenter* GtmProperty::pick_failover() const {
  const auto candidates = eligible();
  return candidates.empty() ? nullptr : candidates.front();
}

const Datacenter* GtmProperty::pick_weighted(Rng& rng) const {
  const auto candidates = eligible();
  if (candidates.empty()) return nullptr;
  double total = 0.0;
  for (const auto* datacenter : candidates) total += std::max(datacenter->weight, 0.0);
  if (total <= 0.0) return candidates.front();
  double target = rng.next_double() * total;
  for (const auto* datacenter : candidates) {
    target -= std::max(datacenter->weight, 0.0);
    if (target <= 0.0) return datacenter;
  }
  return candidates.back();
}

const Datacenter* GtmProperty::pick_performance(
    const std::optional<GeoPoint>& client) const {
  const auto candidates = eligible();
  if (candidates.empty()) return nullptr;
  if (!client) return candidates.front();  // unlocatable: failover order
  const Datacenter* best = nullptr;
  double best_distance = 0.0;
  for (const auto* datacenter : candidates) {
    const double dx = datacenter->location.x - client->x;
    const double dy = datacenter->location.y - client->y;
    const double distance = std::sqrt(dx * dx + dy * dy);
    if (!best || distance < best_distance) {
      best = datacenter;
      best_distance = distance;
    }
  }
  return best;
}

dns::ResourceRecord GtmProperty::record_for(const Datacenter& datacenter) const {
  if (datacenter.address.is_v6()) {
    return dns::make_aaaa(config_.hostname, datacenter.address.v6(), config_.ttl);
  }
  return dns::make_a(config_.hostname, datacenter.address.v4(), config_.ttl);
}

std::vector<dns::ResourceRecord> GtmProperty::answer(
    const std::optional<GeoPoint>& client_location, Rng& rng) const {
  const Datacenter* picked = nullptr;
  switch (config_.policy) {
    case GtmPolicy::Failover: picked = pick_failover(); break;
    case GtmPolicy::WeightedRoundRobin: picked = pick_weighted(rng); break;
    case GtmPolicy::Performance: picked = pick_performance(client_location); break;
  }
  if (!picked) return {};
  return {record_for(*picked)};
}

}  // namespace akadns::twotier
