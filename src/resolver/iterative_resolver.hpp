// An iterative (recursive-resolver-style) resolution engine.
//
// Resolves names the way the paper's client-side system does (§1):
// starting from configured hints, follow referrals down the delegation
// hierarchy until an authoritative answer arrives; cache every RRset,
// delegation, and negative answer by TTL; on timeout, retry against the
// other delegations of the set (§4.3.1: "resolvers, upon receiving a
// timeout, will retry against the other 4-5 clouds assigned to that
// zone"). The transport is injected, so the same resolver runs against
// an in-process Responder, a Pop, or the full netsim-backed platform.
#pragma once

#include <functional>
#include <map>

#include "dns/message.hpp"

#include "resolver/cache.hpp"
#include "resolver/selection.hpp"

namespace akadns::resolver {

/// Result of one upstream exchange.
struct UpstreamReply {
  dns::Message message;
  Duration rtt;
};

/// Sends a query to a nameserver address; nullopt models a timeout.
using Transport = std::function<std::optional<UpstreamReply>(const dns::Message& query,
                                                             const IpAddr& server)>;

struct IterativeResolverConfig {
  int max_referrals = 16;
  int max_cname_chain = 8;
  /// Retry truncated (TC=1) UDP responses over TCP (RFC 7766). The TCP
  /// exchange costs an extra round trip for the handshake.
  bool retry_truncated_over_tcp = true;
  /// Cost charged for a query that times out before retrying the next
  /// delegation (a typical resolver retransmit timer).
  Duration timeout_cost = Duration::millis(800);
  SelectionPolicy policy = SelectionPolicy::Uniform;
  std::size_t cache_capacity = 100'000;
  /// Learn per-server RTTs and expose them to RTT-aware policies.
  bool learn_rtts = true;
};

struct ResolutionResult {
  dns::Rcode rcode = dns::Rcode::ServFail;
  std::vector<dns::ResourceRecord> answers;
  /// Total simulated resolution latency (sum of upstream RTTs+timeouts).
  Duration elapsed = Duration::zero();
  int upstream_queries = 0;
  int timeouts = 0;
  bool from_cache = false;
};

class IterativeResolver {
 public:
  IterativeResolver(IterativeResolverConfig config, Transport transport,
                    std::uint64_t seed = 1);

  /// Transport used for TCP retries after truncation; without one,
  /// truncated responses are consumed as-is (partial answers).
  void set_tcp_transport(Transport transport) { tcp_transport_ = std::move(transport); }

  std::uint64_t truncated_retries() const noexcept { return truncated_retries_; }

  /// Registers a hint: queries for names under `zone` may start at
  /// `server` (the role the NS records in the parent zone play).
  void add_hint(const dns::DnsName& zone, const IpAddr& server);

  ResolutionResult resolve(const dns::DnsName& qname, dns::RecordType qtype, SimTime now);

  ResolverCache& cache() noexcept { return cache_; }
  const ResolverCache& cache() const noexcept { return cache_; }

  /// Learned smoothed RTT for a server (zero if never contacted).
  Duration learned_rtt(const IpAddr& server) const;

 private:
  struct Delegation {
    std::vector<IpAddr> servers;
  };

  /// The closest enclosing delegation we know for qname: hint zones plus
  /// cached NS/A records. Returns servers and the zone depth matched.
  Delegation closest_delegation(const dns::DnsName& qname, SimTime now);

  /// One resolution step: query the delegation set (with retries) and
  /// classify the response.
  std::optional<UpstreamReply> query_servers(const dns::Message& query,
                                             std::vector<IpAddr> servers,
                                             ResolutionResult& result);

  void cache_response(const dns::Message& response, SimTime now);
  Duration rtt_estimate(const IpAddr& server) const;

  IterativeResolverConfig config_;
  Transport transport_;
  Transport tcp_transport_;
  std::uint64_t truncated_retries_ = 0;
  Rng rng_;
  ResolverCache cache_;
  std::map<dns::DnsName, std::vector<IpAddr>> hints_;
  std::unordered_map<IpAddr, Duration> srtt_;
  std::uint16_t next_id_ = 1;
};

}  // namespace akadns::resolver
