// Loopback tests for the socket wrappers and the recvmmsg/sendmmsg
// batch: ephemeral-port binding, SO_REUSEPORT group membership,
// Endpoint<->sockaddr round-trips, and the receive/reply batch cycle.

#include <poll.h>
#include <sys/socket.h>

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "net/socket.hpp"
#include "net/udp_batch.hpp"

namespace akadns::net {
namespace {

constexpr Ipv4Addr kLoopback(127, 0, 0, 1);

/// Waits (bounded) for readability — loopback delivery is fast but not
/// synchronous.
bool wait_readable(int fd, int timeout_ms = 2000) {
  pollfd pfd{fd, POLLIN, 0};
  return ::poll(&pfd, 1, timeout_ms) == 1;
}

TEST(UdpSocket, EphemeralBindReportsPort) {
  auto opened = UdpSocket::open(kLoopback, 0);
  ASSERT_TRUE(opened) << opened.error();
  EXPECT_GT(std::move(opened).take().port(), 0);
}

TEST(UdpSocket, ReuseportAllowsSecondBindOnSamePort) {
  auto first = UdpSocket::open(kLoopback, 0);
  ASSERT_TRUE(first) << first.error();
  const UdpSocket a = std::move(first).take();
  auto second = UdpSocket::open(kLoopback, a.port());
  ASSERT_TRUE(second) << second.error();
  EXPECT_EQ(std::move(second).take().port(), a.port());
}

TEST(SockaddrConversion, V4RoundTrip) {
  const Endpoint ep{IpAddr(Ipv4Addr(10, 1, 2, 3)), 5353};
  sockaddr_storage ss{};
  const socklen_t len = sockaddr_from_endpoint(ep, ss);
  EXPECT_EQ(len, sizeof(sockaddr_in));
  EXPECT_EQ(endpoint_from_sockaddr(ss), ep);
}

TEST(SockaddrConversion, V6RoundTrip) {
  auto v6 = IpAddr::parse("2001:db8::42");
  ASSERT_TRUE(v6);
  const Endpoint ep{*v6, 443};
  sockaddr_storage ss{};
  const socklen_t len = sockaddr_from_endpoint(ep, ss);
  EXPECT_EQ(len, sizeof(sockaddr_in6));
  EXPECT_EQ(endpoint_from_sockaddr(ss), ep);
}

TEST(UdpBatch, EchoCycleOverLoopback) {
  auto server_r = UdpSocket::open(kLoopback, 0);
  ASSERT_TRUE(server_r) << server_r.error();
  UdpSocket server = std::move(server_r).take();
  auto client_r = UdpSocket::open(kLoopback, 0);
  ASSERT_TRUE(client_r) << client_r.error();
  UdpSocket client = std::move(client_r).take();

  // Client fires `n` distinct datagrams at the server.
  sockaddr_storage server_addr{};
  const socklen_t server_len =
      sockaddr_from_endpoint(Endpoint{IpAddr(kLoopback), server.port()}, server_addr);
  constexpr int kCount = 8;
  for (int i = 0; i < kCount; ++i) {
    std::uint8_t msg[4] = {0xab, 0xcd, 0x00, static_cast<std::uint8_t>(i)};
    ASSERT_EQ(::sendto(client.fd(), msg, sizeof(msg), 0,
                       reinterpret_cast<const sockaddr*>(&server_addr), server_len),
              static_cast<ssize_t>(sizeof(msg)));
  }

  // Server batch-receives and echoes each datagram with a marker prefix.
  UdpBatch batch(32);
  int received = 0;
  while (received < kCount) {
    ASSERT_TRUE(wait_readable(server.fd()));
    const int n = batch.recv(server.fd());
    ASSERT_GE(n, 0);
    for (int i = 0; i < n; ++i) {
      const auto pkt = batch.packet(static_cast<std::size_t>(i));
      ASSERT_EQ(pkt.size(), 4u);
      auto& reply = batch.response(static_cast<std::size_t>(i));
      reply.push_back(0xee);
      reply.insert(reply.end(), pkt.begin(), pkt.end());
      // The batch exposes the true kernel-reported source.
      const Endpoint src = endpoint_from_sockaddr(batch.source(static_cast<std::size_t>(i)));
      EXPECT_EQ(src.port, client.port());
    }
    EXPECT_EQ(batch.send(server.fd()), static_cast<std::size_t>(n));
    received += n;
  }

  // Client sees every echo, marker first.
  std::vector<bool> seen(kCount, false);
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(wait_readable(client.fd()));
    std::uint8_t buf[16];
    const ssize_t n = ::recv(client.fd(), buf, sizeof(buf), 0);
    ASSERT_EQ(n, 5);
    EXPECT_EQ(buf[0], 0xee);
    EXPECT_EQ(buf[1], 0xab);
    seen[buf[4]] = true;
  }
  for (int i = 0; i < kCount; ++i) EXPECT_TRUE(seen[i]) << "echo " << i << " missing";
}

TEST(UdpBatch, EmptyResponsesAreDropped) {
  auto server_r = UdpSocket::open(kLoopback, 0);
  ASSERT_TRUE(server_r) << server_r.error();
  UdpSocket server = std::move(server_r).take();
  auto client_r = UdpSocket::open(kLoopback, 0);
  ASSERT_TRUE(client_r) << client_r.error();
  UdpSocket client = std::move(client_r).take();

  sockaddr_storage server_addr{};
  const socklen_t server_len =
      sockaddr_from_endpoint(Endpoint{IpAddr(kLoopback), server.port()}, server_addr);
  for (int i = 0; i < 2; ++i) {
    std::uint8_t msg[1] = {static_cast<std::uint8_t>(i)};
    ASSERT_EQ(::sendto(client.fd(), msg, 1, 0,
                       reinterpret_cast<const sockaddr*>(&server_addr), server_len),
              1);
  }

  UdpBatch batch(32);
  int got = 0;
  std::size_t sent_back = 0;
  while (got < 2) {
    ASSERT_TRUE(wait_readable(server.fd()));
    const int n = batch.recv(server.fd());
    ASSERT_GE(n, 0);
    for (int i = 0; i < n; ++i) {
      const auto pkt = batch.packet(static_cast<std::size_t>(i));
      if (pkt[0] == 0) {
        auto& reply = batch.response(static_cast<std::size_t>(i));
        reply.assign({0x99});
      }
      // pkt[0]==1: leave the response empty — dropped, like a malformed
      // query the responder declines to answer.
    }
    sent_back += batch.send(server.fd());
    got += n;
  }
  EXPECT_EQ(sent_back, 1u);

  ASSERT_TRUE(wait_readable(client.fd()));
  std::uint8_t buf[4];
  ASSERT_EQ(::recv(client.fd(), buf, sizeof(buf), 0), 1);
  EXPECT_EQ(buf[0], 0x99);
  // No second datagram arrives.
  EXPECT_FALSE(wait_readable(client.fd(), 100));
}

TEST(TcpListener, AcceptRoundTrip) {
  auto listener_r = TcpListener::open(kLoopback, 0);
  ASSERT_TRUE(listener_r) << listener_r.error();
  TcpListener listener = std::move(listener_r).take();
  EXPECT_GT(listener.port(), 0);

  // Nothing pending: accept is EAGAIN, reported as an invalid handle.
  sockaddr_storage peer{};
  EXPECT_FALSE(listener.accept(peer).valid());

  const int client = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(client, 0);
  sockaddr_storage server_addr{};
  const socklen_t server_len =
      sockaddr_from_endpoint(Endpoint{IpAddr(kLoopback), listener.port()}, server_addr);
  ASSERT_EQ(::connect(client, reinterpret_cast<const sockaddr*>(&server_addr), server_len), 0);

  ASSERT_TRUE(wait_readable(listener.fd()));
  FdHandle conn = listener.accept(peer);
  ASSERT_TRUE(conn.valid());
  EXPECT_TRUE(endpoint_from_sockaddr(peer).addr.is_v4());

  const char ping[] = "ping";
  ASSERT_EQ(::send(client, ping, 4, 0), 4);
  ASSERT_TRUE(wait_readable(conn.get()));
  char buf[8];
  ASSERT_EQ(::recv(conn.get(), buf, sizeof(buf), 0), 4);
  EXPECT_EQ(std::memcmp(buf, ping, 4), 0);
  ::close(client);
}

}  // namespace
}  // namespace akadns::net
