#include "zone/zone.hpp"

#include <gtest/gtest.h>

#include "zone/zone_builder.hpp"

namespace akadns::zone {
namespace {

using dns::DnsName;
using dns::RecordType;

Zone cdn_like_zone() {
  return ZoneBuilder("example.com", 100)
      .soa("ns1.example.com", "admin.example.com", 100)
      .ns("@", "ns1.example.com")
      .ns("@", "ns2.example.com")
      .a("ns1", "10.0.0.1")
      .a("ns2", "10.0.0.2")
      .a("www", "93.184.216.34")
      .aaaa("www", "2001:db8::34")
      .cname("cdn", "www.example.com")
      .txt("@", "v=spf1 -all")
      .a("*.wild", "10.9.9.9")
      // In-zone delegation with glue (like w10.akamai.net under akamai.net).
      .ns("sub", "ns.sub.example.com")
      .a("ns.sub", "10.0.1.1")
      .build();
}

TEST(Zone, ExactMatchAnswer) {
  const auto zone = cdn_like_zone();
  const auto r = zone.lookup(DnsName::from("www.example.com"), RecordType::A);
  EXPECT_EQ(r.status, LookupStatus::Answer);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].to_string(), "www.example.com. 300 IN A 93.184.216.34");
  EXPECT_FALSE(r.wildcard_match);
}

TEST(Zone, NoDataForMissingType) {
  const auto zone = cdn_like_zone();
  const auto r = zone.lookup(DnsName::from("www.example.com"), RecordType::MX);
  EXPECT_EQ(r.status, LookupStatus::NoData);
  ASSERT_EQ(r.authority.size(), 1u);
  EXPECT_EQ(r.authority[0].type(), RecordType::SOA);
  // Negative TTL = min(SOA ttl, SOA minimum) = 300.
  EXPECT_EQ(r.authority[0].ttl, 300u);
}

TEST(Zone, NxDomainForMissingName) {
  const auto zone = cdn_like_zone();
  const auto r = zone.lookup(DnsName::from("nope.example.com"), RecordType::A);
  EXPECT_EQ(r.status, LookupStatus::NxDomain);
  ASSERT_EQ(r.authority.size(), 1u);
  EXPECT_EQ(r.authority[0].type(), RecordType::SOA);
}

TEST(Zone, CnameChase) {
  const auto zone = cdn_like_zone();
  const auto r = zone.lookup(DnsName::from("cdn.example.com"), RecordType::A);
  EXPECT_EQ(r.status, LookupStatus::CnameChase);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].type(), RecordType::CNAME);
}

TEST(Zone, CnameExactTypeIsAnswer) {
  const auto zone = cdn_like_zone();
  const auto r = zone.lookup(DnsName::from("cdn.example.com"), RecordType::CNAME);
  EXPECT_EQ(r.status, LookupStatus::Answer);
}

TEST(Zone, DelegationReferralWithGlue) {
  const auto zone = cdn_like_zone();
  const auto r = zone.lookup(DnsName::from("deep.sub.example.com"), RecordType::A);
  EXPECT_EQ(r.status, LookupStatus::Referral);
  ASSERT_EQ(r.authority.size(), 1u);
  EXPECT_EQ(r.authority[0].type(), RecordType::NS);
  EXPECT_EQ(r.authority[0].name.to_string(), "sub.example.com.");
  ASSERT_EQ(r.additional.size(), 1u);
  EXPECT_EQ(r.additional[0].name.to_string(), "ns.sub.example.com.");
}

TEST(Zone, DelegationAppliesAtCutItself) {
  const auto zone = cdn_like_zone();
  const auto r = zone.lookup(DnsName::from("sub.example.com"), RecordType::A);
  EXPECT_EQ(r.status, LookupStatus::Referral);
}

TEST(Zone, ApexNsIsAnswerNotReferral) {
  const auto zone = cdn_like_zone();
  const auto r = zone.lookup(DnsName::from("example.com"), RecordType::NS);
  EXPECT_EQ(r.status, LookupStatus::Answer);
  EXPECT_EQ(r.records.size(), 2u);
}

TEST(Zone, WildcardSynthesis) {
  const auto zone = cdn_like_zone();
  const auto r = zone.lookup(DnsName::from("anything.wild.example.com"), RecordType::A);
  EXPECT_EQ(r.status, LookupStatus::Answer);
  EXPECT_TRUE(r.wildcard_match);
  ASSERT_EQ(r.records.size(), 1u);
  // Owner rewritten to the query name (RFC 4592).
  EXPECT_EQ(r.records[0].name.to_string(), "anything.wild.example.com.");
}

TEST(Zone, WildcardDeepMatch) {
  const auto zone = cdn_like_zone();
  const auto r = zone.lookup(DnsName::from("a.b.c.wild.example.com"), RecordType::A);
  EXPECT_EQ(r.status, LookupStatus::Answer);
  EXPECT_TRUE(r.wildcard_match);
}

TEST(Zone, WildcardNoDataForOtherType) {
  const auto zone = cdn_like_zone();
  const auto r = zone.lookup(DnsName::from("x.wild.example.com"), RecordType::MX);
  EXPECT_EQ(r.status, LookupStatus::NoData);
}

TEST(Zone, WildcardDoesNotMatchExistingName) {
  // "www" exists, so *.example.com (if it existed) must not shadow it —
  // and a missing type at www is NODATA, not a wildcard answer.
  auto zone = ZoneBuilder("example.com", 1)
                  .ns("@", "ns1.example.com")
                  .a("ns1", "10.0.0.1")
                  .a("www", "10.0.0.2")
                  .a("*", "10.255.255.255")
                  .build();
  const auto direct = zone.lookup(DnsName::from("www.example.com"), RecordType::A);
  EXPECT_EQ(direct.status, LookupStatus::Answer);
  EXPECT_EQ(std::get<dns::ARecord>(direct.records[0].rdata).address.to_string(), "10.0.0.2");
  const auto other = zone.lookup(DnsName::from("other.example.com"), RecordType::A);
  EXPECT_EQ(other.status, LookupStatus::Answer);
  EXPECT_TRUE(other.wildcard_match);
}

TEST(Zone, WildcardBlockedByCloserEncloser) {
  // RFC 4592: with a.b present, z.b does not match *.example.com because
  // b.example.com (an ENT) is the closest encloser.
  auto zone = ZoneBuilder("example.com", 1)
                  .ns("@", "ns1.example.com")
                  .a("ns1", "10.0.0.1")
                  .a("a.b", "10.0.0.5")
                  .a("*", "10.255.255.255")
                  .build();
  const auto r = zone.lookup(DnsName::from("z.b.example.com"), RecordType::A);
  EXPECT_EQ(r.status, LookupStatus::NxDomain);
}

TEST(Zone, EmptyNonTerminalIsNoData) {
  auto zone = ZoneBuilder("example.com", 1)
                  .ns("@", "ns1.example.com")
                  .a("ns1", "10.0.0.1")
                  .a("a.b.c", "10.1.1.1")
                  .build();
  // "b.c.example.com" has no records but has a descendant -> NODATA.
  const auto r = zone.lookup(DnsName::from("b.c.example.com"), RecordType::A);
  EXPECT_EQ(r.status, LookupStatus::NoData);
  const auto r2 = zone.lookup(DnsName::from("c.example.com"), RecordType::A);
  EXPECT_EQ(r2.status, LookupStatus::NoData);
}

TEST(Zone, AnyQueryReturnsAllRrsets) {
  const auto zone = cdn_like_zone();
  const auto r = zone.lookup(DnsName::from("www.example.com"), RecordType::ANY);
  EXPECT_EQ(r.status, LookupStatus::Answer);
  EXPECT_EQ(r.records.size(), 2u);  // A + AAAA
}

TEST(Zone, RejectsOutOfZoneRecord) {
  Zone zone(DnsName::from("example.com"), 1);
  EXPECT_FALSE(zone.add(dns::make_a(DnsName::from("www.other.com"), Ipv4Addr(1, 1, 1, 1), 60)));
}

TEST(Zone, RejectsCnameCoexistence) {
  Zone zone(DnsName::from("example.com"), 1);
  const auto owner = DnsName::from("x.example.com");
  EXPECT_TRUE(zone.add(dns::make_a(owner, Ipv4Addr(1, 1, 1, 1), 60)));
  EXPECT_FALSE(zone.add(dns::make_cname(owner, DnsName::from("y.example.com"), 60)));
  const auto owner2 = DnsName::from("y.example.com");
  EXPECT_TRUE(zone.add(dns::make_cname(owner2, DnsName::from("z.example.com"), 60)));
  EXPECT_FALSE(zone.add(dns::make_a(owner2, Ipv4Addr(1, 1, 1, 2), 60)));
}

TEST(Zone, RejectsNonApexSoa) {
  Zone zone(DnsName::from("example.com"), 1);
  EXPECT_FALSE(zone.add(dns::make_soa(DnsName::from("sub.example.com"),
                                      DnsName::from("ns.example.com"),
                                      DnsName::from("admin.example.com"), 1, 3600)));
}

TEST(Zone, DuplicateRecordSuppressed) {
  Zone zone(DnsName::from("example.com"), 1);
  const auto rr = dns::make_a(DnsName::from("www.example.com"), Ipv4Addr(1, 1, 1, 1), 60);
  EXPECT_TRUE(zone.add(rr));
  EXPECT_TRUE(zone.add(rr));  // accepted but not duplicated
  EXPECT_EQ(zone.record_count(), 1u);
}

TEST(Zone, RrsetTtlNormalized) {
  Zone zone(DnsName::from("example.com"), 1);
  const auto owner = DnsName::from("multi.example.com");
  zone.add(dns::make_a(owner, Ipv4Addr(1, 1, 1, 1), 100));
  zone.add(dns::make_a(owner, Ipv4Addr(1, 1, 1, 2), 999));
  const auto* set = zone.find(owner, RecordType::A);
  ASSERT_NE(set, nullptr);
  ASSERT_EQ(set->records.size(), 2u);
  EXPECT_EQ(set->records[1].ttl, 100u);  // RFC 2181 §5.2
}

TEST(Zone, RemoveRrset) {
  auto zone = cdn_like_zone();
  const auto name = DnsName::from("www.example.com");
  EXPECT_EQ(zone.remove(name, RecordType::A), 1u);
  EXPECT_EQ(zone.remove(name, RecordType::A), 0u);
  // AAAA remains.
  EXPECT_EQ(zone.lookup(name, RecordType::AAAA).status, LookupStatus::Answer);
  EXPECT_EQ(zone.lookup(name, RecordType::A).status, LookupStatus::NoData);
}

TEST(Zone, AllRecordsSoaFirst) {
  const auto zone = cdn_like_zone();
  const auto all = zone.all_records();
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all[0].type(), RecordType::SOA);
  EXPECT_EQ(all.size(), zone.record_count());
}

TEST(Zone, AllNamesListsOwners) {
  const auto zone = cdn_like_zone();
  const auto names = zone.all_names();
  EXPECT_EQ(names.size(), zone.name_count());
  EXPECT_NE(std::find(names.begin(), names.end(), DnsName::from("www.example.com")),
            names.end());
}

TEST(Zone, ValidateWellFormedZone) {
  const auto zone = cdn_like_zone();
  EXPECT_TRUE(zone.validate().empty());
}

TEST(Zone, ValidateFlagsMissingSoaAndNs) {
  Zone zone(DnsName::from("bad.com"), 1);
  zone.add(dns::make_a(DnsName::from("www.bad.com"), Ipv4Addr(1, 1, 1, 1), 60));
  const auto problems = zone.validate();
  EXPECT_EQ(problems.size(), 2u);  // missing SOA + missing NS
}

TEST(Zone, ValidateFlagsMissingGlue) {
  auto zone = ZoneBuilder("example.com", 1)
                  .ns("@", "ns1.example.com")
                  .a("ns1", "10.0.0.1")
                  .ns("sub", "ns.sub.example.com")  // glue missing
                  .build();
  const auto problems = zone.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("lacks glue"), std::string::npos);
}

TEST(Zone, NegativeTtlUsesMinimum) {
  auto zone = ZoneBuilder("example.com", 1)
                  .soa("ns1.example.com", "admin.example.com", 1, /*ttl=*/3600, /*minimum=*/30)
                  .ns("@", "ns1.example.com")
                  .a("ns1", "10.0.0.1")
                  .build();
  EXPECT_EQ(zone.negative_ttl(), 30u);
}

}  // namespace
}  // namespace akadns::zone
