// Two-Tier delegation walkthrough (§5.2): the CDN resolution path
// "a1.w10.akamai.net" through anycast toplevels and mapping-selected
// unicast lowlevels, measured from a caching resolver's point of view.
//
// Shows the three resolution costs of the analytical model — 0 (cache
// hit), L (lowlevel only), L+T (delegation refresh) — and the Eq. 1
// speedup for this resolver.

#include <cstdio>

#include "resolver/iterative_resolver.hpp"
#include "server/responder.hpp"
#include "twotier/model.hpp"
#include "zone/zone_builder.hpp"

using namespace akadns;

int main() {
  // Toplevel zone: akamai.net, delegating w10 to a lowlevel with a long
  // (4000 s) delegation TTL.
  zone::ZoneStore toplevel_store;
  toplevel_store.publish(zone::ZoneBuilder("akamai.net", 1)
                             .soa("ns1.akamai.net", "hostmaster.akamai.net", 1)
                             .ns("@", "ns1.akamai.net")
                             .a("ns1", "10.1.0.1")
                             .ns("w10", "n1.w10.akamai.net", 4000)
                             .a("n1.w10", "10.2.0.1", 4000)
                             .build());
  // Lowlevel zone: the CDN hostnames, with the low 20 s TTL that lets
  // mapping react to changing network conditions within seconds.
  zone::ZoneStore lowlevel_store;
  lowlevel_store.publish(zone::ZoneBuilder("w10.akamai.net", 1)
                             .soa("n1.w10.akamai.net", "hostmaster.akamai.net", 1)
                             .ns("@", "n1.w10.akamai.net")
                             .a("n1", "10.2.0.1")
                             .a("a1", "172.16.0.1", 20)
                             .build());
  server::Responder toplevel(toplevel_store);
  server::Responder lowlevel(lowlevel_store);

  const Duration toplevel_rtt = Duration::millis(61);  // anycast, paper's avg
  const Duration lowlevel_rtt = Duration::millis(16);  // proximal lowlevel
  const IpAddr toplevel_addr = *IpAddr::parse("10.1.0.1");
  const IpAddr lowlevel_addr = *IpAddr::parse("10.2.0.1");
  const Endpoint me{*IpAddr::parse("198.51.100.53"), 5353};

  resolver::IterativeResolver iterative(
      {},
      [&](const dns::Message& query, const IpAddr& server)
          -> std::optional<resolver::UpstreamReply> {
        if (server == toplevel_addr) {
          return resolver::UpstreamReply{toplevel.respond(query, me), toplevel_rtt};
        }
        if (server == lowlevel_addr) {
          return resolver::UpstreamReply{lowlevel.respond(query, me), lowlevel_rtt};
        }
        return std::nullopt;
      });
  iterative.add_hint(dns::DnsName::from("akamai.net"), toplevel_addr);

  const auto qname = dns::DnsName::from("a1.w10.akamai.net");
  auto resolve_at = [&](double seconds, const char* label) {
    const auto result =
        iterative.resolve(qname, dns::RecordType::A, SimTime::from_seconds(seconds));
    std::printf("t=%7.0fs  %-28s cost %5.0f ms  (%d upstream quer%s)\n", seconds, label,
                result.elapsed.to_millis(), result.upstream_queries,
                result.upstream_queries == 1 ? "y" : "ies");
    return result.elapsed;
  };

  std::printf("resolving %s through the Two-Tier system:\n\n", qname.to_string().c_str());
  resolve_at(0, "cold cache: L + T");
  resolve_at(5, "within host TTL: cache hit");
  resolve_at(30, "host expired: L only");
  resolve_at(60, "host expired: L only");
  resolve_at(4200, "delegation expired: L + T");

  // The paper's Eq. 1 for this resolver: measure rT over a day of
  // steady refreshes, then compute the speedup over single-tier.
  const double refresh_interval = 30.0;  // end-user demand every 30 s
  int toplevel_contacts = 0, resolutions = 0;
  for (double t = 10'000; t < 10'000 + 86'400; t += refresh_interval) {
    const auto result =
        iterative.resolve(qname, dns::RecordType::A, SimTime::from_seconds(t));
    if (result.from_cache) continue;
    ++resolutions;
    if (result.elapsed > lowlevel_rtt + Duration::millis(1)) ++toplevel_contacts;
  }
  const double rt = static_cast<double>(toplevel_contacts) / resolutions;
  const twotier::TwoTierParams params{toplevel_rtt, lowlevel_rtt, rt};
  std::printf("\nover one day of steady demand: %d resolutions, %d toplevel contacts "
              "(r_T = %.4f)\n",
              resolutions, toplevel_contacts, rt);
  std::printf("avg Two-Tier resolution time: %.1f ms, single-tier: %.1f ms  =>  "
              "speedup S = %.2f\n",
              twotier::two_tier_resolution_time(params).to_millis(),
              twotier::single_tier_resolution_time(params).to_millis(),
              twotier::speedup(params));
  return 0;
}
