#include "net/server.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>

#include "dns/wire.hpp"
#include "net/tcp_framing.hpp"
#include "net/udp_batch.hpp"

namespace akadns::net {

namespace {

using Clock = std::chrono::steady_clock;

/// One established TCP connection (truncation-fallback path).
struct Conn {
  FdHandle fd;
  Endpoint peer;
  FrameDecoder decoder;
  /// Length-framed responses not yet accepted by the kernel.
  std::vector<std::uint8_t> out;
  std::size_t out_off = 0;
  /// Response scratch reused across this connection's queries.
  std::vector<std::uint8_t> scratch;
  bool closing = false;     // flush `out`, then close
  bool want_write = false;  // EPOLLOUT currently registered
};

}  // namespace

struct Server::Worker {
  Worker(const ServeConfig& cfg, const zone::ZoneStore& store)
      : config(cfg), responder(store, cfg.responder), batch(cfg.udp_batch) {}

  const ServeConfig& config;
  server::Responder responder;
  UdpBatch batch;
  UdpSocket udp;
  TcpListener listener;
  FdHandle stop_event;
  FrontendStats stats;
  Clock::time_point epoch;

  FdHandle epoll;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;
  std::vector<std::uint8_t> tcp_read_buf = std::vector<std::uint8_t>(64 * 1024);

  /// Wall time mapped onto the repo's SimTime axis (answer-cache TTL
  /// expiry is the only consumer; the origin is the server's start).
  SimTime now() const noexcept {
    return SimTime::from_nanos(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch).count());
  }

  void run();
  bool drain_udp(bool draining);
  void accept_loop();
  void handle_conn(int fd, std::uint32_t events);
  void process_frames(Conn& conn);
  void flush_conn(Conn& conn);
  void set_want_write(Conn& conn, bool want);
  void close_conn(int fd);
  bool any_pending_output() const;
};

bool Server::Worker::drain_udp(bool draining) {
  const int fd = udp.fd();
  bool saw_data = false;
  while (true) {
    const int n = batch.recv(fd);
    if (n <= 0) break;
    saw_data = true;
    ++stats.udp_batches;
    stats.udp_packets += static_cast<std::uint64_t>(n);
    if (draining) stats.drain_flushed += static_cast<std::uint64_t>(n);
    std::size_t want = 0;
    for (int i = 0; i < n; ++i) {
      const auto wire = batch.packet(static_cast<std::size_t>(i));
      auto view = dns::decode_query_view(wire);
      if (!view) {
        // No parseable header/question: nothing to answer, nothing to
        // amplify. The empty response slot makes send() skip it.
        ++stats.udp_malformed;
        continue;
      }
      const Endpoint client = endpoint_from_sockaddr(batch.source(static_cast<std::size_t>(i)));
      responder.respond_view_into(wire, view.value(), client, now(),
                                  batch.response(static_cast<std::size_t>(i)));
      ++want;
    }
    const std::size_t sent = batch.send(fd);
    stats.udp_responses += sent;
    stats.udp_send_failures += want - sent;
    if (static_cast<std::size_t>(n) < batch.capacity()) break;  // socket empty
  }
  return saw_data;
}

void Server::Worker::accept_loop() {
  while (true) {
    sockaddr_storage peer_addr{};
    FdHandle conn_fd = listener.accept(peer_addr);
    if (!conn_fd.valid()) break;
    if (conns.size() >= config.tcp_max_connections) {
      ++stats.tcp_rejected;
      continue;  // FdHandle closes it
    }
    auto conn = std::make_unique<Conn>();
    conn->peer = endpoint_from_sockaddr(peer_addr);
    conn->decoder = FrameDecoder(config.tcp_max_frame);
    const int fd = conn_fd.get();
    conn->fd = std::move(conn_fd);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll.get(), EPOLL_CTL_ADD, fd, &ev) != 0) continue;
    conns.emplace(fd, std::move(conn));
    ++stats.tcp_accepted;
  }
}

void Server::Worker::process_frames(Conn& conn) {
  while (auto frame = conn.decoder.next()) {
    ++stats.tcp_queries;
    auto view = dns::decode_query_view(*frame);
    if (!view) {
      // A framed payload that is not even a DNS header is a protocol
      // error; drop the connection rather than guess (RFC 7766 §8).
      ++stats.tcp_protocol_errors;
      conn.closing = true;
      conn.decoder = FrameDecoder(0);  // stop consuming further frames
      break;
    }
    // TCP responses are never truncated and never touch the UDP-keyed
    // answer cache: the full message limit is the transport ceiling.
    responder.respond_view_into(*frame, view.value(), conn.peer, now(), conn.scratch,
                                dns::kMaxMessageSize);
    const auto prefix = frame_prefix(conn.scratch.size());
    conn.out.insert(conn.out.end(), prefix.begin(), prefix.end());
    conn.out.insert(conn.out.end(), conn.scratch.begin(), conn.scratch.end());
    ++stats.tcp_responses;
  }
  if (conn.decoder.poisoned() && !conn.closing) {
    ++stats.tcp_protocol_errors;
    conn.closing = true;
  }
}

void Server::Worker::set_want_write(Conn& conn, bool want) {
  if (conn.want_write == want) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd.get();
  ::epoll_ctl(epoll.get(), EPOLL_CTL_MOD, conn.fd.get(), &ev);
  conn.want_write = want;
}

void Server::Worker::flush_conn(Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t n = ::write(conn.fd.get(), conn.out.data() + conn.out_off,
                              conn.out.size() - conn.out_off);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      set_want_write(conn, true);
      return;
    }
    // Peer vanished mid-write: nothing left to flush.
    conn.closing = true;
    break;
  }
  conn.out.clear();
  conn.out_off = 0;
  set_want_write(conn, false);
}

void Server::Worker::close_conn(int fd) {
  conns.erase(fd);  // FdHandle close() drops the epoll registration too
}

void Server::Worker::handle_conn(int fd, std::uint32_t events) {
  auto it = conns.find(fd);
  if (it == conns.end()) return;
  Conn& conn = *it->second;
  if (events & (EPOLLHUP | EPOLLERR)) {
    close_conn(fd);
    return;
  }
  if (events & EPOLLIN) {
    while (true) {
      const ssize_t n = ::read(fd, tcp_read_buf.data(), tcp_read_buf.size());
      if (n > 0) {
        conn.decoder.feed({tcp_read_buf.data(), static_cast<std::size_t>(n)});
        process_frames(conn);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // EOF or hard error. A clean EOF at a frame boundary just means
      // the client is done; mid-frame it abandoned a query — either way
      // flush what we owe and close.
      conn.closing = true;
      break;
    }
  }
  if ((events & EPOLLOUT) || !conn.out.empty()) flush_conn(conn);
  if (conn.closing && conn.out_off >= conn.out.size()) close_conn(fd);
}

bool Server::Worker::any_pending_output() const {
  for (const auto& [fd, conn] : conns) {
    if (conn->out_off < conn->out.size()) return true;
  }
  return false;
}

void Server::Worker::run() {
  epoll = FdHandle(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll.valid()) return;
  const auto add = [&](int fd) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll.get(), EPOLL_CTL_ADD, fd, &ev);
  };
  add(udp.fd());
  add(listener.fd());
  add(stop_event.get());

  bool draining = false;
  Clock::time_point drain_deadline{};
  std::array<epoll_event, 64> events{};
  while (true) {
    int timeout_ms = -1;
    if (draining) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          drain_deadline - Clock::now());
      timeout_ms = static_cast<int>(std::max<std::int64_t>(0, left.count()));
    }
    const int n = ::epoll_wait(epoll.get(), events.data(), static_cast<int>(events.size()),
                               timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      const std::uint32_t ev = events[static_cast<std::size_t>(i)].events;
      if (fd == stop_event.get()) {
        std::uint64_t v = 0;
        [[maybe_unused]] const ssize_t r = ::read(stop_event.get(), &v, sizeof(v));
        draining = true;
        drain_deadline = Clock::now() + std::chrono::nanoseconds(
                                            config.drain_timeout.count_nanos());
        // Stop accepting: no new connections, and after one final sweep
        // of already-queued datagrams, no new UDP either.
        listener.close();
        drain_udp(/*draining=*/true);
        udp.close();
      } else if (udp.fd() >= 0 && fd == udp.fd()) {
        drain_udp(draining);
      } else if (listener.fd() >= 0 && fd == listener.fd()) {
        accept_loop();
      } else {
        handle_conn(fd, ev);
      }
    }
    if (draining) {
      // In-flight means: bytes owed to established TCP clients. Leave
      // when they are flushed (or the deadline passes — resolvers retry).
      if (!any_pending_output() || Clock::now() >= drain_deadline) break;
    }
  }
  conns.clear();
}

Server::Server(ServeConfig config, const zone::ZoneStore& store)
    : config_(config), store_(store) {}

Server::~Server() { stop(); }

Result<bool> Server::start() {
  if (running_ || stopped_) return Error{"server already started"};
  if (config_.workers == 0) return Error{"workers must be >= 1"};

  workers_.clear();
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(config_, store_));
  }

  // Worker 0 resolves the (possibly ephemeral) ports; the rest join its
  // SO_REUSEPORT groups so the kernel shards flows across all of them.
  std::uint16_t udp_port = config_.port;
  std::uint16_t tcp_port = config_.port;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    auto udp = UdpSocket::open(config_.bind_addr, udp_port, config_.udp_rcvbuf,
                               config_.udp_sndbuf);
    if (!udp) return Error{"worker udp: " + udp.error()};
    workers_[i]->udp = std::move(udp).take();
    if (i == 0) {
      udp_port = workers_[0]->udp.port();
      // Prefer TCP on the same port number (how DNS is deployed); with
      // an ephemeral UDP port that number may be taken for TCP, in which
      // case any free port does — callers read tcp_port() separately.
      if (tcp_port == 0) tcp_port = udp_port;
    }
    auto listener = TcpListener::open(config_.bind_addr, tcp_port);
    if (!listener && i == 0 && config_.port == 0) {
      tcp_port = 0;
      listener = TcpListener::open(config_.bind_addr, 0);
    }
    if (!listener) return Error{"worker tcp: " + listener.error()};
    workers_[i]->listener = std::move(listener).take();
    if (i == 0) tcp_port = workers_[0]->listener.port();

    const int efd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (efd < 0) return Error{errno_message("eventfd")};
    workers_[i]->stop_event = FdHandle(efd);
  }
  udp_port_ = udp_port;
  tcp_port_ = tcp_port;

  const auto epoch = Clock::now();
  for (auto& worker : workers_) worker->epoch = epoch;
  running_ = true;
  threads_.reserve(workers_.size());
  for (auto& worker : workers_) {
    threads_.emplace_back([w = worker.get()] { w->run(); });
  }
  return true;
}

void Server::stop() {
  if (!running_) return;
  for (auto& worker : workers_) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t r =
        ::write(worker->stop_event.get(), &one, sizeof(one));
  }
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  running_ = false;
  stopped_ = true;
}

ServerStats Server::stats() const {
  ServerStats merged;
  for (const auto& worker : workers_) {
    merged.frontend.merge(worker->stats);
    merged.responder.merge(worker->responder.stats());
    merged.answer_cache.merge(worker->responder.answer_cache().stats());
    merged.per_worker_udp.push_back(worker->stats.udp_packets);
  }
  return merged;
}

}  // namespace akadns::net
