file(REMOVE_RECURSE
  "../bench/bench_rt_estimation"
  "../bench/bench_rt_estimation.pdb"
  "CMakeFiles/bench_rt_estimation.dir/bench_rt_estimation.cpp.o"
  "CMakeFiles/bench_rt_estimation.dir/bench_rt_estimation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rt_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
