#include "server/nameserver.hpp"

#include <gtest/gtest.h>

#include "dns/wire.hpp"
#include "zone/zone_builder.hpp"

namespace akadns::server {
namespace {

using dns::DnsName;
using dns::Rcode;
using dns::RecordType;

struct Fixture {
  zone::ZoneStore store;
  std::vector<std::pair<Endpoint, std::vector<std::uint8_t>>> responses;
  Endpoint client{*IpAddr::parse("198.51.100.1"), 4242};

  Fixture() {
    store.publish(zone::ZoneBuilder("example.com", 1)
                      .ns("@", "ns1.example.com")
                      .a("ns1", "10.0.0.1")
                      .a("www", "93.184.216.34")
                      .build());
  }

  Nameserver make(NameserverConfig config = {}) {
    Nameserver ns(std::move(config), store);
    ns.set_response_sink([this](const Endpoint& dst, std::vector<std::uint8_t> wire) {
      responses.emplace_back(dst, std::move(wire));
    });
    return ns;
  }

  std::vector<std::uint8_t> query_wire(const char* name, std::uint16_t id = 1) {
    return dns::encode(dns::make_query(id, DnsName::from(name), RecordType::A));
  }

  Rcode last_rcode() const {
    const auto decoded = dns::decode(responses.back().second);
    return decoded.value().header.rcode;
  }
};

TEST(Nameserver, AnswersQueryEndToEnd) {
  Fixture f;
  auto ns = f.make();
  const auto t = SimTime::origin();
  ns.receive(f.query_wire("www.example.com"), f.client, 57, t);
  EXPECT_EQ(ns.pending(), 1u);
  EXPECT_EQ(ns.process(t), 1u);
  ASSERT_EQ(f.responses.size(), 1u);
  EXPECT_EQ(f.responses[0].first, f.client);
  EXPECT_EQ(f.last_rcode(), Rcode::NoError);
  EXPECT_EQ(ns.stats().responses_sent, 1u);
}

TEST(Nameserver, MalformedPacketStillCounted) {
  Fixture f;
  auto ns = f.make();
  const std::vector<std::uint8_t> garbage{1, 2, 3};
  ns.receive(garbage, f.client, 57, SimTime::origin());
  EXPECT_EQ(ns.stats().malformed(), 1u);
  // Dropped at receive(): never enqueued, never answered.
  EXPECT_EQ(ns.pending(), 0u);
  ns.process(SimTime::origin());
  EXPECT_TRUE(f.responses.empty());
}

TEST(Nameserver, ComputeCapacityBoundsThroughput) {
  Fixture f;
  NameserverConfig config;
  config.compute_capacity_qps = 100.0;  // burst bucket = 10
  auto ns = f.make(config);
  const auto t = SimTime::origin();
  for (int i = 0; i < 200; ++i) {
    ns.receive(f.query_wire("www.example.com", static_cast<std::uint16_t>(i)), f.client, 57, t);
  }
  // At t=0 only the burst allowance (10% of capacity) is processable.
  const auto processed_now = ns.process(t);
  EXPECT_LE(processed_now, 11u);
  // Driving process() through the next second at fine granularity admits
  // ~100 more queries (the sustained compute rate), not the whole backlog.
  std::size_t processed_later = 0;
  for (int step = 1; step <= 100; ++step) {
    processed_later += ns.process(t + Duration::millis(10 * step));
  }
  EXPECT_GE(processed_later, 90u);
  EXPECT_LE(processed_later, 111u);
}

TEST(Nameserver, IoCapacityDropsBelowApplication) {
  Fixture f;
  NameserverConfig config;
  config.io_capacity_qps = 100.0;
  auto ns = f.make(config);
  const auto t = SimTime::origin();
  for (int i = 0; i < 1000; ++i) {
    ns.receive(f.query_wire("www.example.com", static_cast<std::uint16_t>(i)), f.client, 57, t);
  }
  EXPECT_GT(ns.stats().dropped_io(), 0u);
  EXPECT_LT(ns.pending(), 1000u);
}

TEST(Nameserver, QodCrashesAndTrapInstallsFirewallRule) {
  Fixture f;
  NameserverConfig config;
  config.qod_trap_enabled = true;
  auto ns = f.make(config);
  ns.set_crash_predicate([](const dns::Question& q) {
    return q.name == DnsName::from("death.example.com");
  });
  auto t = SimTime::origin();
  ns.receive(f.query_wire("death.example.com"), f.client, 57, t);
  ns.process(t);
  EXPECT_EQ(ns.state(), ServerState::Crashed);
  EXPECT_EQ(ns.stats().crashes, 1u);
  ASSERT_TRUE(ns.last_qod());
  EXPECT_EQ(ns.last_qod()->name.to_string(), "death.example.com.");
  EXPECT_EQ(ns.firewall().rule_count(t), 1u);

  // Monitoring agent restarts the machine; the firewall rule now shields
  // the nameserver from the same QoD.
  ns.restart(t);
  EXPECT_TRUE(ns.running());
  ns.receive(f.query_wire("death.example.com"), f.client, 57, t);
  EXPECT_EQ(ns.stats().dropped_firewall(), 1u);
  EXPECT_EQ(ns.process(t), 0u);
  EXPECT_TRUE(ns.running());  // survived

  // Dissimilar queries continue to be answered.
  ns.receive(f.query_wire("www.example.com"), f.client, 57, t);
  ns.process(t);
  EXPECT_EQ(f.responses.size(), 1u);
}

TEST(Nameserver, QodWithoutTrapCrashesRepeatedly) {
  Fixture f;
  NameserverConfig config;
  config.qod_trap_enabled = false;
  auto ns = f.make(config);
  ns.set_crash_predicate([](const dns::Question& q) {
    return q.name == DnsName::from("death.example.com");
  });
  auto t = SimTime::origin();
  for (int round = 0; round < 3; ++round) {
    ns.receive(f.query_wire("death.example.com"), f.client, 57, t);
    ns.process(t);
    EXPECT_EQ(ns.state(), ServerState::Crashed);
    ns.restart(t);
  }
  EXPECT_EQ(ns.stats().crashes, 3u);
  EXPECT_EQ(ns.firewall().rule_count(t), 0u);
}

TEST(Nameserver, CrashRateLimitedToOncePerTQod) {
  Fixture f;
  NameserverConfig config;
  config.qod_trap_enabled = true;
  config.qod_rule_ttl = Duration::minutes(10);
  auto ns = f.make(config);
  ns.set_crash_predicate([](const dns::Question& q) {
    return q.name == DnsName::from("death.example.com");
  });
  auto t = SimTime::origin();
  int crashes = 0;
  // QoD arrives once a minute for an hour.
  for (int minute = 0; minute < 60; ++minute) {
    ns.receive(f.query_wire("death.example.com"), f.client, 57, t);
    ns.process(t);
    if (ns.state() == ServerState::Crashed) {
      ++crashes;
      ns.restart(t);
    }
    t += Duration::minutes(1);
  }
  // Rule TTL 10 min -> at most ~6 crashes in the hour.
  EXPECT_LE(crashes, 7);
  EXPECT_GE(crashes, 5);
}

TEST(Nameserver, SelfSuspendStopsServing) {
  Fixture f;
  auto ns = f.make();
  const auto t = SimTime::origin();
  ns.self_suspend();
  EXPECT_EQ(ns.state(), ServerState::SelfSuspended);
  ns.receive(f.query_wire("www.example.com"), f.client, 57, t);
  EXPECT_EQ(ns.stats().dropped_not_running(), 1u);
  EXPECT_EQ(ns.process(t), 0u);
  ns.resume();
  EXPECT_TRUE(ns.running());
  ns.receive(f.query_wire("www.example.com"), f.client, 57, t);
  EXPECT_EQ(ns.process(t), 1u);
}

TEST(Nameserver, ResumeDoesNotRestartCrashed) {
  Fixture f;
  auto ns = f.make();
  ns.set_crash_predicate([](const dns::Question&) { return true; });
  const auto t = SimTime::origin();
  ns.receive(f.query_wire("www.example.com"), f.client, 57, t);
  ns.process(t);
  ASSERT_EQ(ns.state(), ServerState::Crashed);
  ns.resume();  // resume only lifts self-suspension
  EXPECT_EQ(ns.state(), ServerState::Crashed);
  ns.restart(t);
  EXPECT_TRUE(ns.running());
}

TEST(Nameserver, StalenessDetection) {
  Fixture f;
  NameserverConfig config;
  config.staleness_threshold = Duration::seconds(30);
  auto ns = f.make(config);
  auto t = SimTime::origin();
  ns.metadata_updated(t);
  EXPECT_FALSE(ns.is_stale(t + Duration::seconds(29)));
  EXPECT_TRUE(ns.is_stale(t + Duration::seconds(31)));
  ns.metadata_updated(t + Duration::seconds(31));
  EXPECT_FALSE(ns.is_stale(t + Duration::seconds(40)));
}

TEST(Nameserver, InputDelayedNeverReportsStale) {
  Fixture f;
  NameserverConfig config;
  config.input_delayed = true;
  config.staleness_threshold = Duration::seconds(30);
  auto ns = f.make(config);
  EXPECT_FALSE(ns.is_stale(SimTime::origin() + Duration::days(365)));
}

TEST(Nameserver, ScoringDiscardsDefinitivelyMalicious) {
  Fixture f;
  NameserverConfig config;
  config.queue_config.max_scores = {0.0, 50.0};
  config.queue_config.discard_score = 100.0;
  auto ns = f.make(config);

  // Install a filter that brands one qname as malicious.
  class BrandFilter : public filters::Filter {
   public:
    std::string_view name() const noexcept override { return "brand"; }
    double score(const filters::QueryContext& ctx) override {
      return ctx.question.name == DnsName::from("bad.example.com") ? 500.0 : 0.0;
    }
  };
  ns.scoring().add_filter(std::make_unique<BrandFilter>());

  const auto t = SimTime::origin();
  ns.receive(f.query_wire("bad.example.com"), f.client, 57, t);
  ns.receive(f.query_wire("www.example.com"), f.client, 57, t);
  EXPECT_EQ(ns.stats().discarded_by_score(), 1u);
  EXPECT_EQ(ns.stats().queries_enqueued, 1u);
  ns.process(t);
  EXPECT_EQ(f.responses.size(), 1u);
}

TEST(Nameserver, RestartClearsQueues) {
  Fixture f;
  auto ns = f.make();
  const auto t = SimTime::origin();
  for (int i = 0; i < 10; ++i) {
    ns.receive(f.query_wire("www.example.com", static_cast<std::uint16_t>(i)), f.client, 57, t);
  }
  EXPECT_EQ(ns.pending(), 10u);
  ns.restart(t);
  EXPECT_EQ(ns.pending(), 0u);
}

TEST(Nameserver, ProcessUnmeteredIgnoresCapacity) {
  Fixture f;
  NameserverConfig config;
  config.compute_capacity_qps = 1.0;
  auto ns = f.make(config);
  const auto t = SimTime::origin();
  for (int i = 0; i < 50; ++i) {
    ns.receive(f.query_wire("www.example.com", static_cast<std::uint16_t>(i)), f.client, 57, t);
  }
  EXPECT_EQ(ns.process_unmetered(t, 50), 50u);
  EXPECT_EQ(f.responses.size(), 50u);
}

}  // namespace
}  // namespace akadns::server
