file(REMOVE_RECURSE
  "libakadns_dns.a"
)
