# Empty dependencies file for akadns_filters.
# This may be replaced when dependencies are built.
