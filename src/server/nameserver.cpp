#include "server/nameserver.hpp"

#include <algorithm>

#include "dns/wire.hpp"

namespace akadns::server {
namespace {

/// Cheap rcode extraction from encoded response header bytes.
dns::Rcode rcode_of(const std::vector<std::uint8_t>& wire) {
  return wire.size() >= 4 ? static_cast<dns::Rcode>(wire[3] & 0xF) : dns::Rcode::ServFail;
}

}  // namespace

std::string to_string(ServerState s) {
  switch (s) {
    case ServerState::Running: return "running";
    case ServerState::Crashed: return "crashed";
    case ServerState::SelfSuspended: return "self-suspended";
  }
  return "unknown";
}

Nameserver::Nameserver(NameserverConfig config, const zone::ZoneStore& store)
    : config_(std::move(config)),
      clock_(std::make_unique<ManualClock>()),
      engine_(config_.defense_config(), *clock_) {
  const std::size_t lanes = engine_.lane_count();
  lanes_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) lanes_.emplace_back(config_, store);
}

void Nameserver::receive(std::span<const std::uint8_t> wire, const Endpoint& source,
                         std::uint8_t ip_ttl, SimTime now) {
  clock_->set(now);
  const std::size_t li = engine_.lane_of(source);
  Lane& lane = lanes_[li];
  StageTimer receive_timer(lane.telemetry.stage(Stage::Receive));
  ++lane.stats.packets_received;
  ++stats_.packets_received;
  if (state_ != ServerState::Running) {
    count_drop(lane, DropReason::NotRunning);
    return;
  }
  // NIC / kernel stack limit: when arrivals exceed the I/O capacity,
  // packets are lost before the application sees them (Figure 10, A>A2).
  // The engine's bucket is machine-wide (one NIC) and receive() is serial.
  if (!engine_.io_admit(li)) {
    count_drop(lane, DropReason::IoOverload);
    return;
  }
  // The once-only decode: header + question parsed here, shared by the
  // firewall, the filters, and (completed in place) the responder.
  QueryContext ctx;
  {
    StageTimer parse_timer(lane.telemetry.stage(Stage::Parse));
    auto view = dns::decode_query_view(wire);
    if (!view) {
      // Unanswerable: no parseable header/question means no FORMERR
      // either, so the packet dies here instead of wasting queue space.
      count_drop(lane, DropReason::Malformed);
      return;
    }
    ctx.view = std::move(view).value();
    ctx.parsed = true;
  }
  if (engine_.firewall_drops(li, ctx.view.question)) {
    count_drop(lane, DropReason::Firewall);
    return;
  }
  ctx.source = source;
  ctx.ip_ttl = ip_ttl;
  ctx.arrival = now;
  {
    StageTimer score_timer(lane.telemetry.stage(Stage::Score));
    ctx.score = engine_.score(li, ctx.filter_view(now));
  }
  ctx.wire = lane.pool->copy_of(wire);
  const double score = ctx.score;  // read before the move below
  switch (engine_.enqueue(li, std::move(ctx), score)) {
    case filters::EnqueueOutcome::Enqueued:
      ++lane.stats.queries_enqueued;
      ++stats_.queries_enqueued;
      break;
    case filters::EnqueueOutcome::DiscardedByScore:
      count_drop(lane, DropReason::ScoreDiscard);
      break;
    case filters::EnqueueOutcome::DroppedQueueFull:
      count_drop(lane, DropReason::QueueFull);
      break;
  }
}

bool Nameserver::begin_phase(SimTime now) {
  clock_->set(now);
  if (state_ != ServerState::Running) {
    engine_.begin_phase_unmetered(0);  // zero any stale budgets defensively
    return false;
  }
  return engine_.begin_phase();
}

void Nameserver::run_lane(std::size_t lane_index, SimTime now) {
  Lane& lane = lanes_[lane_index];
  while (auto item = engine_.next(lane_index)) {
    ++lane.stats.queries_processed;
    lane.telemetry.queue_wait().record((now - item->arrival).to_micros());

    // Query-of-death check: an unrecoverable fault in query processing.
    // Only this lane stops; end_phase crashes the whole instance.
    if (crash_predicate_ && crash_predicate_(item->question())) {
      ++lane.stats.crashes;
      lane.stats.drops.add(DropReason::QueryOfDeath);
      lane.crashed = true;
      lane.qod = item->question();  // "write the DNS payload to disk"
      break;
    }

    {
      StageTimer resolve_timer(lane.telemetry.stage(Stage::Resolve));
      lane.responder.respond_view_into(item->bytes(), item->view, item->source, now,
                                       lane.response_scratch);
    }
    // Fan the outcome back to this lane's filters (NXDOMAIN counting etc.).
    engine_.observe_response(lane_index, item->filter_view(now), rcode_of(lane.response_scratch));
    ++lane.stats.responses_sent;
    lane.batch.append(item->source, lane.response_scratch);
  }
}

std::size_t Nameserver::end_phase(SimTime now) {
  clock_->set(now);
  // Flush buffered responses in lane order — the sink call sequence is a
  // pure function of lane contents, identical for 1 or N worker threads.
  for (auto& lane : lanes_) {
    for (const auto& entry : lane.batch.entries) {
      const std::span<const std::uint8_t> wire(lane.batch.bytes.data() + entry.offset,
                                               entry.len);
      if (span_sink_) {
        span_sink_(entry.dst, wire);
      } else if (sink_) {
        sink_(entry.dst, std::vector<std::uint8_t>(wire.begin(), wire.end()));
      }
    }
    lane.batch.clear();
  }
  // Settle budgets (unspent metered compute is refunded inside the
  // engine) and apply crash effects, in lane order.
  const std::size_t total = engine_.end_phase();
  bool first_crash = true;
  for (auto& lane : lanes_) {
    if (lane.crashed) {
      if (first_crash) {
        last_qod_ = lane.qod;
        first_crash = false;
      }
      if (config_.qod_trap_enabled && lane.qod) {
        // The separate firewall-builder process installs a rule dropping
        // similar queries for T_QoD.
        engine_.firewall().install(*lane.qod, now, config_.qod_rule_ttl);
      }
      state_ = ServerState::Crashed;
      lane.crashed = false;
      lane.qod.reset();
    }
  }
  // Re-merge the machine view: receive-side counters were dual-written,
  // process-side ones live only in the lanes until this point.
  stats_ = NameserverStats{};
  for (const auto& lane : lanes_) stats_.merge(lane.stats);
  return total;
}

std::size_t Nameserver::process(SimTime now) {
  if (!begin_phase(now)) return 0;
  for (std::size_t i = 0; i < lanes_.size(); ++i) run_lane(i, now);
  return end_phase(now);
}

std::size_t Nameserver::process_unmetered(SimTime now, std::size_t budget) {
  clock_->set(now);
  if (state_ != ServerState::Running || budget == 0) return 0;
  engine_.begin_phase_unmetered(budget);
  for (std::size_t i = 0; i < lanes_.size(); ++i) run_lane(i, now);
  return end_phase(now);
}

void Nameserver::self_suspend() noexcept {
  if (state_ == ServerState::Running) state_ = ServerState::SelfSuspended;
}

void Nameserver::resume() noexcept {
  if (state_ == ServerState::SelfSuspended) state_ = ServerState::Running;
}

void Nameserver::restart(SimTime now) {
  clock_->set(now);
  // A restart loses in-flight queries (resolvers retry) and resets the
  // capacity buckets; learned filter state survives in this model because
  // production filters persist their learned tables out of process.
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    const std::size_t flushed = engine_.flush_lane(i);
    lanes_[i].stats.drops.add(DropReason::RestartFlush, flushed);
    stats_.drops.add(DropReason::RestartFlush, flushed);
    lanes_[i].batch.clear();
    lanes_[i].crashed = false;
    lanes_[i].qod.reset();
  }
  engine_.reset_buckets();
  state_ = ServerState::Running;
  metadata_updated(now);
}

bool Nameserver::is_stale(SimTime now) const noexcept {
  if (config_.input_delayed) return false;
  return now - last_metadata_ > config_.staleness_threshold;
}

}  // namespace akadns::server
