// Versioned zone store: the nameserver-side container of published zone
// snapshots. Publishing replaces the zone pointer atomically (snapshot
// semantics, matching the paper's metadata pipeline where the Management
// Portal publishes validated zone versions and nameservers subscribe).
// Serial regressions are rejected, mirroring serial-based zone transfer
// rules (RFC 1996 / 5936).
//
// Every accepted publish compiles the snapshot into a CompiledZone
// (answer-ready node table + wire fragments) before the swap, so the hot
// read path only ever sees fully-built snapshots. The query-time entry
// point, find_best_compiled(), does longest-suffix matching with one
// incremental hash pass over the query name — zero heap allocations even
// on the miss path, which is what a REFUSED flood exercises.
#pragma once

#include <bitset>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "zone/compiled_zone.hpp"
#include "zone/zone.hpp"

namespace akadns::zone {

/// Cumulative cost of publish-time compilation (telemetry surface).
struct CompileStats {
  std::uint64_t compiles = 0;
  std::uint64_t total_micros = 0;
  std::uint64_t last_micros = 0;
  std::uint64_t last_nodes = 0;
  std::uint64_t last_fragments = 0;
};

class ZoneStore {
 public:
  /// Publishes a zone snapshot. Returns false (and keeps the old version)
  /// if a zone with the same apex and a serial >= the new one exists.
  /// Compilation happens before the swap; readers never see a half-built
  /// snapshot.
  bool publish(Zone zone);

  /// Force-publishes regardless of serial (operator override path).
  void force_publish(Zone zone);

  /// Removes a zone; returns true if it existed.
  bool remove(const DnsName& apex);

  /// The compiled zone whose apex is the longest suffix of `qname`, or
  /// nullptr. Allocation-free: probes a hashed apex index at each
  /// populated depth instead of materializing suffix names.
  CompiledZonePtr find_best_compiled(const DnsName& qname) const noexcept;

  /// The zone whose apex is the longest suffix of `qname`, or nullptr.
  ZonePtr find_best_zone(const DnsName& qname) const;

  /// Exact-apex fetch.
  ZonePtr find_zone(const DnsName& apex) const;

  /// Exact-apex fetch of the compiled snapshot.
  CompiledZonePtr find_compiled(const DnsName& apex) const;

  bool has_zone(const DnsName& apex) const { return zones_.contains(apex); }

  std::size_t zone_count() const noexcept { return zones_.size(); }
  std::size_t total_records() const noexcept;

  /// Apexes of all hosted zones (stable canonical order).
  std::vector<DnsName> zone_apexes() const;

  /// Monotone counter incremented on every successful publish/remove;
  /// the staleness detector and the answer cache use it as a cheap
  /// change signal.
  std::uint64_t generation() const noexcept { return generation_; }

  const CompileStats& compile_stats() const noexcept { return compile_stats_; }

 private:
  /// One apex in the hash index. `entry` points at the map node (stable
  /// across rebuilds of the vector; map nodes never move).
  struct ApexIndexEntry {
    std::uint64_t hash = 0;
    std::uint16_t depth = 0;
    const std::pair<const DnsName, CompiledZonePtr>* entry = nullptr;
  };

  void store(Zone zone);
  void rebuild_index();

  std::map<DnsName, CompiledZonePtr> zones_;
  /// Sorted by hash; rebuilt on publish/remove (rare) so lookups (hot)
  /// are a binary search.
  std::vector<ApexIndexEntry> apex_index_;
  /// Which apex depths exist at all — lets the miss path skip depths
  /// without touching the index.
  std::bitset<128> apex_depths_;
  std::uint64_t generation_ = 0;
  CompileStats compile_stats_;
};

}  // namespace akadns::zone
