// Synthetic Internet topology generation.
//
// The failover experiment (§4.1) and the anycast catchment machinery need
// an Internet-like graph: a meshed tier-1 core, multihomed regional
// transit networks with lateral peering, and edge networks (PoP / eyeball
// sites) that are customers of one or more transits. This transit-stub
// structure plus Gao-Rexford policy in Network yields realistic path
// diversity and convergence behaviour.
#pragma once

#include "netsim/network.hpp"

namespace akadns::netsim {

struct TopologyConfig {
  std::size_t tier1_count = 8;
  std::size_t tier2_count = 40;
  std::size_t edge_count = 267;  // the paper's 267 PoPs/vantage points
  /// Providers per tier-2 node (uniform in [min,max]).
  int tier2_providers_min = 1;
  int tier2_providers_max = 3;
  /// Lateral peerings per tier-2 node (expected).
  double tier2_peering_degree = 1.5;
  /// Providers per edge node.
  int edge_providers_min = 1;
  int edge_providers_max = 3;
  // One-way link delays.
  Duration tier1_delay_min = Duration::millis(8);
  Duration tier1_delay_max = Duration::millis(40);
  Duration tier2_delay_min = Duration::millis(4);
  Duration tier2_delay_max = Duration::millis(25);
  Duration edge_delay_min = Duration::millis(1);
  Duration edge_delay_max = Duration::millis(15);
};

struct Topology {
  std::vector<NodeId> tier1;
  std::vector<NodeId> tier2;
  std::vector<NodeId> edges;
};

/// Builds a transit-stub Internet into `network`. Deterministic for a
/// given seed (uses its own RNG so network-internal sampling stays
/// independent).
Topology build_internet(Network& network, const TopologyConfig& config, std::uint64_t seed);

/// Builds a simple chain a-b-c-... (customer->provider upward) — handy
/// for deterministic unit tests of propagation timing.
std::vector<NodeId> build_chain(Network& network, std::size_t length, Duration link_delay);

/// Builds a star: one hub providing transit to `leaves` leaf nodes.
std::pair<NodeId, std::vector<NodeId>> build_star(Network& network, std::size_t leaves,
                                                  Duration link_delay);

}  // namespace akadns::netsim
