#include "fleet/anycast_front.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace akadns::fleet {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// SplitMix64 finalizer: the per-(flow, member) rendezvous score.
std::uint64_t mix(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t salt_for(const std::string& id) noexcept {
  return mix(std::hash<std::string>{}(id) + 0x9e3779b97f4a7c15ULL);
}

}  // namespace

struct AnycastFront::PollRef {
  enum Kind { FrontUdp, FrontTcp, Wake, Flow, TcpClient, TcpUpstream };
  Kind kind;
  void* obj = nullptr;
};

struct AnycastFront::UdpFlow {
  Endpoint client;
  sockaddr_storage client_sa{};
  socklen_t client_sa_len = 0;
  std::string member_id;
  net::UdpSocket upstream;
  std::int64_t last_active_ns = 0;
  /// Steady-ns of the oldest client query forwarded upstream with no
  /// answer seen yet (0: nothing awaited). Armed on forward, cleared on
  /// answer, reset on re-pin (the old upstream's stall must not be
  /// charged to the new member). When it ages past
  /// FrontConfig::upstream_timeout_ms the flow reports one upstream
  /// timeout and disarms until the next client query.
  std::int64_t awaiting_since_ns = 0;
  /// Index into samples_ of the oldest re-pin this flow has not yet
  /// answered for (kNpos: none pending). A later re-pin does not
  /// overwrite it — the recovery clock runs from the first disruption.
  std::size_t pending_sample = kNpos;
  /// Evicted mid-batch: the epoll_wait batch being processed may still
  /// hold an event whose PollRef points here, so the flow is kept alive
  /// (dying_flows_) and inert until the batch ends.
  bool dead = false;
  PollRef ref{PollRef::Flow, nullptr};
};

struct AnycastFront::TcpConn {
  net::FdHandle client;
  net::FdHandle upstream;
  std::vector<std::uint8_t> to_upstream;
  std::vector<std::uint8_t> to_client;
  bool upstream_connected = false;
  bool closed = false;
  PollRef client_ref{PollRef::TcpClient, nullptr};
  PollRef upstream_ref{PollRef::TcpUpstream, nullptr};
};

AnycastFront::AnycastFront(FrontConfig config) : config_(config) {}

AnycastFront::~AnycastFront() { stop(); }

std::int64_t AnycastFront::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Result<bool> AnycastFront::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  // The front owns ONE port for both transports (like a real VIP). With
  // an ephemeral request the UDP bind picks the number; the TCP bind on
  // the same number can race another process, so retry a few times.
  for (int attempt = 0; attempt < 10; ++attempt) {
    auto udp = net::UdpSocket::open(config_.bind_addr, config_.port, 1 << 21, 1 << 21);
    if (!udp) return Result<bool>::failure(udp.error());
    auto tcp = net::TcpListener::open(config_.bind_addr, udp.value().port());
    if (!tcp) {
      if (config_.port == 0) continue;  // ephemeral clash: redraw
      return Result<bool>::failure(tcp.error());
    }
    front_udp_ = std::move(udp).take();
    front_tcp_ = std::move(tcp).take();
    break;
  }
  if (front_udp_.fd() < 0 || front_tcp_.fd() < 0) {
    return Result<bool>::failure("anycast front: could not bind matching UDP/TCP ports");
  }
  udp_port_ = front_udp_.port();
  tcp_port_ = front_tcp_.port();

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    return Result<bool>::failure(net::errno_message("epoll_create1/eventfd"));
  }
  static PollRef front_udp_ref{PollRef::FrontUdp, nullptr};
  static PollRef front_tcp_ref{PollRef::FrontTcp, nullptr};
  static PollRef wake_ref{PollRef::Wake, nullptr};
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = &front_udp_ref;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, front_udp_.fd(), &ev);
  ev.data.ptr = &front_tcp_ref;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, front_tcp_.fd(), &ev);
  ev.data.ptr = &wake_ref;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
  return true;
}

void AnycastFront::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] auto n = ::write(wake_fd_, &one, sizeof(one));
  if (thread_.joinable()) thread_.join();
  flows_.clear();
  dying_flows_.clear();
  tcp_conns_.clear();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  epoll_fd_ = -1;
  wake_fd_ = -1;
  front_udp_.close();
  front_tcp_.close();
}

void AnycastFront::upsert_member(const std::string& id, Endpoint endpoint) {
  std::lock_guard<std::mutex> lock(control_mu_);
  ops_.push_back([this, id, endpoint] {
    bool found = false;
    for (auto& m : members_) {
      if (m.id == id) {
        m.endpoint = endpoint;
        m.active = true;
        found = true;
      }
    }
    if (!found) members_.push_back(Member{id, endpoint, true, salt_for(id)});
    // Re-pointed members need their flows reconnected even though the
    // rendezvous winner did not change; a brand-new member may win flows.
    repin_member_flows(id, /*withdrawal=*/false);
  });
  const std::uint64_t one = 1;
  if (wake_fd_ >= 0) {
    [[maybe_unused]] auto n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void AnycastFront::set_member_active(const std::string& id, bool active) {
  std::lock_guard<std::mutex> lock(control_mu_);
  ops_.push_back([this, id, active] {
    for (auto& m : members_) {
      if (m.id == id) m.active = active;
    }
    repin_member_flows(id, /*withdrawal=*/!active);
  });
  const std::uint64_t one = 1;
  if (wake_fd_ >= 0) {
    [[maybe_unused]] auto n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void AnycastFront::remove_member(const std::string& id) {
  std::lock_guard<std::mutex> lock(control_mu_);
  ops_.push_back([this, id] {
    members_.erase(std::remove_if(members_.begin(), members_.end(),
                                  [&](const Member& m) { return m.id == id; }),
                   members_.end());
    repin_member_flows(id, /*withdrawal=*/true);
  });
  const std::uint64_t one = 1;
  if (wake_fd_ >= 0) {
    [[maybe_unused]] auto n = ::write(wake_fd_, &one, sizeof(one));
  }
}

std::vector<FrontMemberView> AnycastFront::members() const {
  std::lock_guard<std::mutex> lock(control_mu_);
  return member_view_;
}

std::vector<ReconvergeSample> AnycastFront::samples() const {
  std::lock_guard<std::mutex> lock(control_mu_);
  return samples_;
}

FrontCountersView AnycastFront::counters() const {
  FrontCountersView v;
  v.udp_client_datagrams = counters_.udp_client_datagrams.load(std::memory_order_relaxed);
  v.udp_upstream_answers = counters_.udp_upstream_answers.load(std::memory_order_relaxed);
  v.udp_no_member_drops = counters_.udp_no_member_drops.load(std::memory_order_relaxed);
  v.udp_upstream_errors = counters_.udp_upstream_errors.load(std::memory_order_relaxed);
  v.udp_upstream_timeouts =
      counters_.udp_upstream_timeouts.load(std::memory_order_relaxed);
  v.flows_created = counters_.flows_created.load(std::memory_order_relaxed);
  v.flows_moved = counters_.flows_moved.load(std::memory_order_relaxed);
  v.flows_expired = counters_.flows_expired.load(std::memory_order_relaxed);
  v.tcp_connections = counters_.tcp_connections.load(std::memory_order_relaxed);
  v.tcp_relay_errors = counters_.tcp_relay_errors.load(std::memory_order_relaxed);
  v.live_flows = live_flows_.load(std::memory_order_relaxed);
  return v;
}

std::size_t AnycastFront::pick_member(const Endpoint& client) const {
  const std::uint64_t flow_hash = std::hash<Endpoint>{}(client);
  std::size_t best = kNpos;
  std::uint64_t best_score = 0;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (!members_[i].active) continue;
    const std::uint64_t score = mix(flow_hash ^ members_[i].salt);
    if (best == kNpos || score > best_score) {
      best = i;
      best_score = score;
    }
  }
  return best;
}

bool AnycastFront::attach_flow_upstream(UdpFlow& flow, std::size_t member_index) {
  // Answers from a fast machine burst into this socket; default-size
  // buffers overflow under a windowed load generator.
  auto upstream = net::UdpSocket::open(config_.bind_addr, 0, 1 << 21, 1 << 21);
  if (!upstream) return false;
  const Member& member = members_[member_index];
  sockaddr_storage sa{};
  const socklen_t sa_len = net::sockaddr_from_endpoint(member.endpoint, sa);
  if (::connect(upstream.value().fd(), reinterpret_cast<const sockaddr*>(&sa), sa_len) != 0) {
    return false;
  }
  if (flow.upstream.fd() >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, flow.upstream.fd(), nullptr);
  }
  flow.upstream = std::move(upstream).take();
  flow.member_id = member.id;
  flow.awaiting_since_ns = 0;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = &flow.ref;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, flow.upstream.fd(), &ev);
  return true;
}

void AnycastFront::repin_member_flows(const std::string& id, bool withdrawal) {
  const std::int64_t t0 = now_ns();
  // The index this change's sample will occupy; samples_ only grows,
  // and only on this thread.
  const std::size_t sample_index = samples_.size();
  std::uint64_t moved = 0;
  for (auto& [client, flow] : flows_) {
    const std::size_t winner = pick_member(client);
    if (winner == kNpos) continue;  // no active member: leave flows be
    const bool winner_changed = members_[winner].id != flow->member_id;
    // Flows already on the (re-pointed) trigger member must reconnect
    // even when the winner is unchanged — the endpoint may be new.
    const bool force = flow->member_id == id;
    if (!winner_changed && !force) continue;
    if (attach_flow_upstream(*flow, winner)) {
      // Oldest unanswered re-pin wins: a flow still waiting on an
      // earlier move keeps that sample as its recovery anchor.
      if (flow->pending_sample == kNpos) flow->pending_sample = sample_index;
      ++moved;
    }
  }
  counters_.flows_moved.fetch_add(moved, std::memory_order_relaxed);
  const std::int64_t t1 = now_ns();

  std::lock_guard<std::mutex> lock(control_mu_);
  ReconvergeSample sample;
  sample.member = id;
  sample.withdrawal = withdrawal;
  sample.flows_moved = moved;
  sample.remap_us = (t1 - t0) / 1000;
  sample.trigger_ns = t0;
  samples_.push_back(sample);
  member_view_.clear();
  for (const auto& m : members_) {
    member_view_.push_back(FrontMemberView{m.id, m.endpoint, m.active});
  }
}

void AnycastFront::handle_front_udp() {
  char buf[4096];
  for (int i = 0; i < 256; ++i) {
    sockaddr_storage src{};
    socklen_t src_len = sizeof(src);
    const ssize_t n = ::recvfrom(front_udp_.fd(), buf, sizeof(buf), 0,
                                 reinterpret_cast<sockaddr*>(&src), &src_len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN
    }
    counters_.udp_client_datagrams.fetch_add(1, std::memory_order_relaxed);
    const Endpoint client = net::endpoint_from_sockaddr(src);
    auto it = flows_.find(client);
    if (it == flows_.end()) {
      const std::size_t winner = pick_member(client);
      if (winner == kNpos) {
        counters_.udp_no_member_drops.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (flows_.size() >= config_.max_flows) {
        // Evict the single oldest-idle flow (rare; table is bounded).
        // Freed only after the current epoll batch — like TcpConn's
        // closed/remove_if pass — because its upstream fd may still
        // have an event queued in this very batch.
        auto oldest = flows_.begin();
        for (auto f = flows_.begin(); f != flows_.end(); ++f) {
          if (f->second->last_active_ns < oldest->second->last_active_ns) oldest = f;
        }
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, oldest->second->upstream.fd(), nullptr);
        oldest->second->dead = true;
        dying_flows_.push_back(std::move(oldest->second));
        flows_.erase(oldest);
        live_flows_.store(flows_.size(), std::memory_order_relaxed);
        counters_.flows_expired.fetch_add(1, std::memory_order_relaxed);
      }
      auto flow = std::make_unique<UdpFlow>();
      flow->client = client;
      std::memcpy(&flow->client_sa, &src, sizeof(src));
      flow->client_sa_len = src_len;
      flow->ref.obj = flow.get();
      if (!attach_flow_upstream(*flow, winner)) {
        counters_.udp_upstream_errors.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      counters_.flows_created.fetch_add(1, std::memory_order_relaxed);
      it = flows_.emplace(client, std::move(flow)).first;
      live_flows_.store(flows_.size(), std::memory_order_relaxed);
    }
    UdpFlow& flow = *it->second;
    flow.last_active_ns = now_ns();
    if (::send(flow.upstream.fd(), buf, static_cast<std::size_t>(n), 0) < 0) {
      counters_.udp_upstream_errors.fetch_add(1, std::memory_order_relaxed);
    } else if (flow.awaiting_since_ns == 0) {
      flow.awaiting_since_ns = flow.last_active_ns;
    }
  }
}

void AnycastFront::handle_flow(UdpFlow* flow) {
  if (flow->dead) return;  // evicted earlier in this epoll batch
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(flow->upstream.fd(), buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        // ECONNREFUSED from a dead machine: the flow stays pinned; the
        // re-pin (driven by the probe suite / supervisor event) moves it.
        counters_.udp_upstream_errors.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    if (n == 0) return;
    flow->last_active_ns = now_ns();
    flow->awaiting_since_ns = 0;
    ::sendto(front_udp_.fd(), buf, static_cast<std::size_t>(n), 0,
             reinterpret_cast<const sockaddr*>(&flow->client_sa), flow->client_sa_len);
    counters_.udp_upstream_answers.fetch_add(1, std::memory_order_relaxed);
    if (flow->pending_sample != kNpos) {
      std::lock_guard<std::mutex> lock(control_mu_);
      if (flow->pending_sample < samples_.size()) {
        ReconvergeSample& sample = samples_[flow->pending_sample];
        if (sample.first_answer_us < 0) {
          sample.first_answer_us = (now_ns() - sample.trigger_ns) / 1000;
        }
      }
      flow->pending_sample = kNpos;
    }
  }
}

void AnycastFront::handle_accept() {
  for (;;) {
    sockaddr_storage peer{};
    net::FdHandle conn_fd = front_tcp_.accept(peer);
    if (!conn_fd.valid()) return;
    const Endpoint client = net::endpoint_from_sockaddr(peer);
    const std::size_t winner = pick_member(client);
    if (winner == kNpos) continue;  // close immediately: nobody to serve it

    // Nonblocking connect to the member's TCP port (same number as UDP).
    const int up_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (up_fd < 0) continue;
    sockaddr_storage sa{};
    const socklen_t sa_len = net::sockaddr_from_endpoint(members_[winner].endpoint, sa);
    const int rc = ::connect(up_fd, reinterpret_cast<const sockaddr*>(&sa), sa_len);
    if (rc != 0 && errno != EINPROGRESS) {
      ::close(up_fd);
      counters_.tcp_relay_errors.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    auto conn = std::make_unique<TcpConn>();
    conn->client = std::move(conn_fd);
    conn->upstream = net::FdHandle(up_fd);
    conn->upstream_connected = (rc == 0);
    conn->client_ref.obj = conn.get();
    conn->upstream_ref.obj = conn.get();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = &conn->client_ref;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->client.get(), &ev);
    ev.events = conn->upstream_connected ? EPOLLIN : static_cast<std::uint32_t>(EPOLLOUT);
    ev.data.ptr = &conn->upstream_ref;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->upstream.get(), &ev);
    counters_.tcp_connections.fetch_add(1, std::memory_order_relaxed);
    tcp_conns_.push_back(std::move(conn));
  }
}

void AnycastFront::close_tcp(TcpConn* conn) {
  if (conn->closed) return;
  conn->closed = true;
  if (conn->client.valid()) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->client.get(), nullptr);
    conn->client.reset();
  }
  if (conn->upstream.valid()) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->upstream.get(), nullptr);
    conn->upstream.reset();
  }
}

void AnycastFront::handle_tcp(TcpConn* conn, std::uint32_t events) {
  if (conn->closed) return;
  if (!conn->upstream_connected) {
    if (events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) {
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(conn->upstream.get(), SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        counters_.tcp_relay_errors.fetch_add(1, std::memory_order_relaxed);
        close_tcp(conn);
        return;
      }
      conn->upstream_connected = true;
      epoll_event ev{};
      ev.events = EPOLLIN | (conn->to_upstream.empty() ? 0u : EPOLLOUT);
      ev.data.ptr = &conn->upstream_ref;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->upstream.get(), &ev);
    }
  }

  // Generic bidirectional relay: drain both readable sides into the
  // peer's pending buffer, then flush what the peers will take.
  const auto pump = [&](int from, int to, std::vector<std::uint8_t>& pending,
                        PollRef& to_ref) -> bool {
    char buf[8192];
    for (;;) {
      const ssize_t n = ::recv(from, buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        return false;
      }
      if (n == 0) return false;  // EOF: the DNS exchange is done
      pending.insert(pending.end(), buf, buf + n);
    }
    while (!pending.empty()) {
      const ssize_t w = ::send(to, pending.data(), pending.size(), MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          epoll_event ev{};
          ev.events = EPOLLIN | EPOLLOUT;
          ev.data.ptr = &to_ref;
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, to, &ev);
          return true;
        }
        return false;
      }
      pending.erase(pending.begin(), pending.begin() + w);
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = &to_ref;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, to, &ev);
    return true;
  };

  if (conn->upstream_connected) {
    if (!pump(conn->client.get(), conn->upstream.get(), conn->to_upstream,
              conn->upstream_ref) ||
        !pump(conn->upstream.get(), conn->client.get(), conn->to_client,
              conn->client_ref)) {
      close_tcp(conn);
    }
  } else {
    // Buffer the query while the upstream connect is in flight.
    char buf[8192];
    for (;;) {
      const ssize_t n = ::recv(conn->client.get(), buf, sizeof(buf), 0);
      if (n > 0) {
        conn->to_upstream.insert(conn->to_upstream.end(), buf, buf + n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n == 0) close_tcp(conn);
      break;
    }
  }
}

void AnycastFront::process_ops() {
  for (;;) {
    std::function<void()> op;
    {
      std::lock_guard<std::mutex> lock(control_mu_);
      if (ops_.empty()) return;
      op = std::move(ops_.front());
      ops_.pop_front();
    }
    op();
  }
}

void AnycastFront::sweep_idle(std::int64_t now) {
  const std::int64_t idle_ns = config_.flow_idle_ms * 1'000'000;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (now - it->second->last_active_ns > idle_ns) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->upstream.fd(), nullptr);
      it = flows_.erase(it);
      counters_.flows_expired.fetch_add(1, std::memory_order_relaxed);
    } else {
      ++it;
    }
  }
  live_flows_.store(flows_.size(), std::memory_order_relaxed);
}

void AnycastFront::check_upstream_timeouts(std::int64_t now) {
  const std::int64_t budget_ns = config_.upstream_timeout_ms * 1'000'000;
  for (auto& [client, flow] : flows_) {
    if (flow->awaiting_since_ns == 0) continue;
    if (now - flow->awaiting_since_ns <= budget_ns) continue;
    // One report per stall; the next client datagram re-arms the clock.
    flow->awaiting_since_ns = 0;
    counters_.udp_upstream_timeouts.fetch_add(1, std::memory_order_relaxed);
    if (on_upstream_timeout_) on_upstream_timeout_(flow->member_id);
  }
}

void AnycastFront::loop() {
  std::vector<epoll_event> events(128);
  std::int64_t last_sweep = now_ns();
  std::int64_t last_timeout_check = last_sweep;
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()), 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    bool tcp_dirty = false;
    for (int i = 0; i < n; ++i) {
      auto* ref = static_cast<PollRef*>(events[static_cast<std::size_t>(i)].data.ptr);
      const std::uint32_t ev = events[static_cast<std::size_t>(i)].events;
      switch (ref->kind) {
        case PollRef::FrontUdp:
          handle_front_udp();
          break;
        case PollRef::FrontTcp:
          handle_accept();
          break;
        case PollRef::Wake: {
          std::uint64_t junk;
          while (::read(wake_fd_, &junk, sizeof(junk)) > 0) {
          }
          break;
        }
        case PollRef::Flow:
          handle_flow(static_cast<UdpFlow*>(ref->obj));
          break;
        case PollRef::TcpClient:
        case PollRef::TcpUpstream:
          handle_tcp(static_cast<TcpConn*>(ref->obj), ev);
          tcp_dirty = true;
          break;
      }
    }
    dying_flows_.clear();  // batch over: no PollRef can reach them now
    process_ops();
    if (tcp_dirty) {
      tcp_conns_.erase(std::remove_if(tcp_conns_.begin(), tcp_conns_.end(),
                                      [](const std::unique_ptr<TcpConn>& c) {
                                        return c->closed;
                                      }),
                       tcp_conns_.end());
    }
    const std::int64_t now = now_ns();
    if (config_.upstream_timeout_ms > 0 && now - last_timeout_check > 50'000'000) {
      last_timeout_check = now;
      check_upstream_timeouts(now);
    }
    if (now - last_sweep > 1'000'000'000) {
      last_sweep = now;
      sweep_idle(now);
    }
  }
}

}  // namespace akadns::fleet
