// The fleet telemetry registry (§3.2, Figure 5): one naming scheme, one
// label model, one scrape path for every metric the reproduction emits.
//
// Design: instruments (obs/instruments.hpp) stay lane/worker-local and
// are written lock-free by their single owner; the registry is a
// *catalog* of references to them, built at startup (registration takes
// a mutex, the hot path never touches the registry). A scrape —
// snapshot() — walks the catalog reading every instrument atomically and
// produces a MetricsSnapshot: plain, copyable data that can be merged
// across workers/machines (the "merge only at scrape/report time"
// contract), rendered as Prometheus-style text exposition or JSON, or
// queried by name for report rendering (control/reporting's
// DatapathReport and net::Server::stats() are both renderers over this).
//
// Label model (small and static by design):
//   subsystem  producing stage ("udp", "defense", "responder", ...)
//   stage      pipeline stage for latency families
//   worker/lane which shard of the machine
//   machine    which machine of the fleet (sim reports)
//   reason     DropReason taxonomy
//   rcode      response-code split
#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "obs/instruments.hpp"

namespace akadns {
class LatencyRecorder;
class DropCounters;
}

namespace akadns::obs {

struct Label {
  std::string key;
  std::string value;
  bool operator==(const Label&) const = default;
  bool operator<(const Label& o) const {
    return key != o.key ? key < o.key : value < o.value;
  }
};

/// Sorted-by-key label list. Construct via `labels({{"worker","0"}})` or
/// extend a base set with `with(base, "lane", i)`.
using LabelSet = std::vector<Label>;

LabelSet labels(std::initializer_list<Label> init);
LabelSet with(LabelSet base, std::string key, std::string value);
LabelSet with(LabelSet base, std::string key, std::uint64_t value);

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

/// How gauge samples combine when snapshots merge / families aggregate:
/// depths and sizes sum across lanes; watermarks (max latency, age) keep
/// the max.
enum class GaugeAgg : std::uint8_t { Sum, Max };

struct Sample {
  LabelSet labels;
  std::uint64_t counter = 0;  // MetricKind::Counter
  double gauge = 0.0;         // MetricKind::Gauge
  LogHistogram hist{1.0, 2.0, 1};  // MetricKind::Histogram (placeholder axis otherwise)
};

struct MetricFamily {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::Counter;
  GaugeAgg agg = GaugeAgg::Sum;
  std::vector<Sample> samples;  // sorted by labels
};

/// Plain-data scrape result: merge across sources, query by name, render.
class MetricsSnapshot {
 public:
  /// Folds `other` in: counters sum, gauges combine per family agg,
  /// histograms merge (axes must match), samples matched on
  /// (family name, labels); unmatched samples/families are appended.
  void merge(const MetricsSnapshot& other);

  const MetricFamily* family(std::string_view name) const noexcept;

  /// Sum of a counter family across all samples (0 when absent).
  std::uint64_t sum(std::string_view name) const noexcept;
  /// Sum across samples whose labels include every entry of `filter`.
  std::uint64_t sum(std::string_view name, const LabelSet& filter) const noexcept;
  /// Exact-label-set lookup (0 / 0.0 when absent).
  std::uint64_t counter_value(std::string_view name, const LabelSet& ls) const noexcept;
  /// Gauge family aggregated across samples per its GaugeAgg.
  double gauge_value(std::string_view name) const noexcept;
  /// All samples of one histogram family merged into one distribution.
  /// Returns an empty default-axis histogram when the family is absent.
  LogHistogram merged_histogram(std::string_view name) const;
  /// Same, restricted to samples whose labels include every entry of
  /// `filter` (e.g. one stage of akadns_stage_latency_ns).
  LogHistogram merged_histogram(std::string_view name, const LabelSet& filter) const;

  std::vector<MetricFamily> families;  // sorted by name
};

class MetricRegistry {
 public:
  MetricRegistry();
  ~MetricRegistry();
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Registration binds a *reference*: the instrument must outlive the
  // registry (instruments live on worker/lane stats structs owned by the
  // server/machine that also owns the registry). Family metadata (kind,
  // help, gauge aggregation) is fixed by the first registration; a
  // mismatched re-registration throws std::invalid_argument, as does a
  // malformed name/label or a duplicate (name, labels) series.
  void counter(std::string_view name, LabelSet ls, const Counter& c,
               std::string_view help = {});
  void gauge(std::string_view name, LabelSet ls, const Gauge& g,
             GaugeAgg agg = GaugeAgg::Sum, std::string_view help = {});
  /// Computed gauge: `fn` runs at snapshot time (must be cheap and safe
  /// to call from the scrape thread — read atomics or immutable state).
  void gauge_fn(std::string_view name, LabelSet ls, std::function<double()> fn,
                GaugeAgg agg = GaugeAgg::Sum, std::string_view help = {});
  void histogram(std::string_view name, LabelSet ls, const Histogram& h,
                 std::string_view help = {});
  /// Stage-latency recorders from the simulated datapath. NOT safe to
  /// scrape while its owner is mid-phase (non-atomic internals); the sim
  /// snapshots only at phase boundaries, which is where its reports run.
  void histogram(std::string_view name, LabelSet ls, const LatencyRecorder& r,
                 std::string_view help = {});
  /// Escape hatch for computed distributions.
  void histogram_fn(std::string_view name, LabelSet ls, std::function<LogHistogram()> fn,
                    std::string_view help = {});

  /// Reads every registered instrument. Thread-safe against concurrent
  /// registration; instrument reads are relaxed-atomic (single-writer
  /// contract), so this never blocks or perturbs the writers.
  MetricsSnapshot snapshot() const;

  /// Registered series count (across all families).
  std::size_t series_count() const;

 private:
  struct Series;
  struct Family;

  Family& family_for(std::string_view name, MetricKind kind, GaugeAgg agg,
                     std::string_view help);
  void add_series(std::string_view name, MetricKind kind, GaugeAgg agg,
                  std::string_view help, LabelSet ls, Series series);

  mutable std::mutex mutex_;
  std::vector<Family> families_;
};

/// Rebins a LatencyRecorder's log10 histogram onto the registry's
/// LogHistogram form (exact count/sum/min/max; quantiles stay accurate to
/// one source bucket's width).
LogHistogram to_log_histogram(const LatencyRecorder& recorder);

/// Registers one `family{reason=...}` series per DropReason of `drops`,
/// each extending `base` (e.g. worker/machine labels). The default
/// family, akadns_drops_total, is the canonical conservation taxonomy —
/// every lost packet increments exactly one series of it; accounting
/// that *mirrors* those drops (the defense engine's shed counters)
/// registers under its own family so the canonical sum never double
/// counts. The conservation check reads these back via
/// MetricsSnapshot::sum.
void register_drop_counters(MetricRegistry& reg, const DropCounters& drops,
                            LabelSet base = {},
                            const char* family = "akadns_drops_total");

}  // namespace akadns::obs
