// The chaos layer's reproducibility contract: every impairment decision
// is a pure function of (plan, seed, direction, ordinal). The golden
// sequence below pins the exact bit pattern for one seed — if it ever
// changes, previously recorded chaos CI runs stop being replayable, so
// a failure here means "you changed the fate derivation" and the right
// fix is almost never to update the constants.

#include "chaos/fault_stream.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "chaos/fault_plan.hpp"
#include "chaos/sync_injector.hpp"

namespace akadns::chaos {
namespace {

using propagation::OpFate;
using propagation::SyncOp;

FaultSpec everything_spec() {
  FaultSpec spec;
  spec.loss = 0.2;
  spec.dup = 0.1;
  spec.reorder = 0.15;
  spec.corrupt = 0.3;
  spec.delay = Duration::millis(5);
  spec.jitter = Duration::millis(10);
  spec.tcp_reset = 0.2;
  spec.tcp_stall = 0.3;
  return spec;
}

// FNV-1a over the non-boolean fate fields, so the golden covers delay
// draws and corrupt offsets/masks too, not just the decision bits.
std::uint64_t mix(std::uint64_t digest, std::uint64_t value) {
  digest ^= value;
  return digest * 0x100000001b3ULL;
}

TEST(FaultStream, GoldenSequenceForSeed42) {
  const FaultStream up(everything_spec(), /*seed=*/42, kDirUp);

  std::uint64_t drops = 0, dups = 0, reorders = 0, corrupts = 0;
  std::uint64_t digest = 0xcbf29ce484222325ULL;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const PacketFate fate = up.fate(i);
    if (fate.drop) drops |= 1ULL << i;
    if (fate.duplicate) dups |= 1ULL << i;
    if (fate.reorder) reorders |= 1ULL << i;
    if (fate.corrupt_offset >= 0) corrupts |= 1ULL << i;
    digest = mix(digest, static_cast<std::uint64_t>(fate.delay.count_nanos()));
    digest = mix(digest, static_cast<std::uint64_t>(
                             static_cast<std::int64_t>(fate.corrupt_offset)));
    digest = mix(digest, fate.corrupt_mask);
  }

  EXPECT_EQ(drops, 0x9010404001860a40ULL) << "drop mask drifted";
  EXPECT_EQ(dups, 0x10400400000ULL) << "dup mask drifted";
  EXPECT_EQ(reorders, 0x4501002018001080ULL) << "reorder mask drifted";
  EXPECT_EQ(corrupts, 0x4400b0082100106ULL) << "corrupt mask drifted";
  EXPECT_EQ(digest, 0x1cde8687a4cb5abcULL) << "delay/corrupt digest drifted";

  std::uint64_t conn_resets = 0, conn_stalls = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const ConnFate fate = up.conn_fate(i);
    if (fate.reset) conn_resets |= 1ULL << i;
    if (fate.stall) conn_stalls |= 1ULL << i;
  }
  EXPECT_EQ(conn_resets, 0x8710a0882c20020dULL) << "conn reset mask drifted";
  EXPECT_EQ(conn_stalls, 0x100b0200020c3400ULL) << "conn stall mask drifted";
}

TEST(FaultStream, SameSeedReproducesByteForByte) {
  const FaultStream a(everything_spec(), 7, kDirUp);
  const FaultStream b(everything_spec(), 7, kDirUp);
  for (std::uint64_t i = 0; i < 512; ++i) {
    const PacketFate fa = a.fate(i);
    const PacketFate fb = b.fate(i);
    ASSERT_EQ(fa.drop, fb.drop) << i;
    ASSERT_EQ(fa.duplicate, fb.duplicate) << i;
    ASSERT_EQ(fa.reorder, fb.reorder) << i;
    ASSERT_EQ(fa.delay.count_nanos(), fb.delay.count_nanos()) << i;
    ASSERT_EQ(fa.corrupt_offset, fb.corrupt_offset) << i;
    ASSERT_EQ(fa.corrupt_mask, fb.corrupt_mask) << i;
  }
}

TEST(FaultStream, SeedAndDirectionDecorrelateTheStreams) {
  const auto drop_mask = [](const FaultStream& s) {
    std::uint64_t mask = 0;
    for (std::uint64_t i = 0; i < 64; ++i) {
      if (s.fate(i).drop) mask |= 1ULL << i;
    }
    return mask;
  };
  FaultSpec spec;
  spec.loss = 0.5;
  EXPECT_NE(drop_mask(FaultStream(spec, 1, kDirUp)),
            drop_mask(FaultStream(spec, 2, kDirUp)));
  EXPECT_NE(drop_mask(FaultStream(spec, 1, kDirUp)),
            drop_mask(FaultStream(spec, 1, kDirDown)));
}

TEST(FaultStream, EnablingOneKnobNeverChangesAnotherKnobsDecisions) {
  // The draw order inside fate() is fixed, so adding corruption to a
  // plan must not reshuffle which packets were already being dropped —
  // that is what lets a drill tighten one knob and compare runs.
  FaultSpec loss_only;
  loss_only.loss = 0.3;
  FaultSpec loss_plus = everything_spec();
  loss_plus.loss = 0.3;
  const FaultStream a(loss_only, 42, kDirUp);
  const FaultStream b(loss_plus, 42, kDirUp);
  for (std::uint64_t i = 0; i < 512; ++i) {
    ASSERT_EQ(a.fate(i).drop, b.fate(i).drop) << i;
  }
}

TEST(FaultStream, ResetWinsOverStallAndCorruptMaskIsNeverZero) {
  FaultSpec both;
  both.tcp_reset = 1.0;
  both.tcp_stall = 1.0;
  const FaultStream s(both, 3, kDirUp);
  for (std::uint64_t i = 0; i < 32; ++i) {
    const ConnFate fate = s.conn_fate(i);
    EXPECT_TRUE(fate.reset) << i;
    EXPECT_FALSE(fate.stall) << i;
  }

  FaultSpec stall_only;
  stall_only.tcp_stall = 1.0;
  const FaultStream t(stall_only, 3, kDirUp);
  EXPECT_TRUE(t.conn_fate(0).stall);
  EXPECT_FALSE(t.conn_fate(0).reset);

  FaultSpec corrupt_all;
  corrupt_all.corrupt = 1.0;
  const FaultStream c(corrupt_all, 3, kDirUp);
  for (std::uint64_t i = 0; i < 256; ++i) {
    const PacketFate fate = c.fate(i);
    ASSERT_GE(fate.corrupt_offset, 0) << i;
    // An XOR mask of zero would be a no-op "corruption".
    ASSERT_NE(fate.corrupt_mask, 0) << i;
  }
}

TEST(PlanInjector, SamePlanReproducesTheSameFateSequence) {
  FaultPlan plan;
  plan.up.loss = 0.4;
  plan.up.delay = Duration::millis(2);
  plan.down.loss = 0.25;
  plan.seed = 1234;

  PlanInjector a(plan);
  PlanInjector b(plan);
  for (int i = 0; i < 256; ++i) {
    for (const SyncOp op : {SyncOp::ProbeSend, SyncOp::ProbeRecv, SyncOp::TransferRead}) {
      const OpFate fa = a.on_op(op);
      const OpFate fb = b.on_op(op);
      ASSERT_EQ(fa.fail, fb.fail) << i;
      ASSERT_EQ(fa.delay.count_nanos(), fb.delay.count_nanos()) << i;
    }
  }
}

TEST(PlanInjector, EachOperationClassHasItsOwnOrdinalSpace) {
  // Interleaving ops must not perturb any single op's fate sequence:
  // "the third transfer read fails" holds no matter what the probes did
  // in between.
  FaultPlan plan;
  plan.up.loss = 0.5;
  plan.down.loss = 0.5;
  plan.seed = 99;

  PlanInjector interleaved(plan);
  std::vector<bool> reads_a;
  for (int i = 0; i < 64; ++i) {
    interleaved.on_op(SyncOp::ProbeSend);
    reads_a.push_back(interleaved.on_op(SyncOp::TransferRead).fail);
    interleaved.on_op(SyncOp::ProbeRecv);
  }

  PlanInjector alone(plan);
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(alone.on_op(SyncOp::TransferRead).fail, reads_a[static_cast<std::size_t>(i)])
        << i;
  }
}

TEST(ScriptedInjector, ScriptRunsOutToCleanDefaults) {
  ScriptedInjector script;
  script.fail_nth(SyncOp::ProbeSend, /*ok=*/2);
  EXPECT_FALSE(script.on_op(SyncOp::ProbeSend).fail);
  EXPECT_FALSE(script.on_op(SyncOp::ProbeSend).fail);
  EXPECT_TRUE(script.on_op(SyncOp::ProbeSend).fail);
  // Script drained: everything succeeds again.
  EXPECT_FALSE(script.on_op(SyncOp::ProbeSend).fail);
  // Other ops were never scripted and never fail.
  EXPECT_FALSE(script.on_op(SyncOp::TransferRead).fail);
  EXPECT_EQ(script.calls(SyncOp::ProbeSend), 4u);
  EXPECT_EQ(script.calls(SyncOp::TransferRead), 1u);
}

TEST(FaultPlan, ParseRoundTripsThroughCanonicalForm) {
  const char* text =
      "seed=42\n"
      "both.loss=0.05\n"
      "both.delay_ms=20\n"
      "both.jitter_ms=20\n"
      "up.corrupt=0.01\n"
      "down.dup=0.02\n"
      "down.reorder=0.05\n"
      "up.tcp_reset=0.1\n"
      "up.tcp_stall=0.05\n"
      "blackhole=3000:13000\n";
  auto parsed = FaultPlan::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  const FaultPlan& plan = parsed.value();
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.up.loss, 0.05);
  EXPECT_DOUBLE_EQ(plan.down.loss, 0.05);
  EXPECT_EQ(plan.up.delay.count_nanos(), Duration::millis(20).count_nanos());
  EXPECT_EQ(plan.down.jitter.count_nanos(), Duration::millis(20).count_nanos());
  EXPECT_DOUBLE_EQ(plan.up.corrupt, 0.01);
  EXPECT_DOUBLE_EQ(plan.down.dup, 0.02);
  EXPECT_DOUBLE_EQ(plan.down.reorder, 0.05);
  EXPECT_DOUBLE_EQ(plan.up.tcp_reset, 0.1);
  EXPECT_DOUBLE_EQ(plan.up.tcp_stall, 0.05);
  ASSERT_EQ(plan.blackholes.size(), 1u);
  EXPECT_EQ(plan.blackholes[0].start.count_nanos(), Duration::millis(3000).count_nanos());
  EXPECT_EQ(plan.blackholes[0].end.count_nanos(), Duration::millis(13000).count_nanos());
  EXPECT_TRUE(plan.in_blackhole(Duration::millis(5000)));
  EXPECT_FALSE(plan.in_blackhole(Duration::millis(13000)));

  auto again = FaultPlan::parse(plan.to_string());
  ASSERT_TRUE(again.ok()) << again.error();
  EXPECT_EQ(again.value().to_string(), plan.to_string());
  EXPECT_EQ(again.value().seed, plan.seed);
  EXPECT_DOUBLE_EQ(again.value().up.corrupt, plan.up.corrupt);
  EXPECT_EQ(again.value().blackholes.size(), plan.blackholes.size());
}

TEST(FaultPlan, TyposAndOutOfRangeValuesFailLoudly) {
  // A typo'd chaos plan silently running a clean test would defeat the
  // entire drill; every malformed input must be an error.
  for (const char* bad : {
           "both.locc=0.05\n",       // unknown key
           "loss=0.05\n",            // missing direction prefix
           "both.loss=1.5\n",        // probability out of range
           "both.loss=-0.1\n",
           "both.delay_ms=abc\n",    // not a number
           "blackhole=3000\n",       // malformed window
           "blackhole=5000:4000\n",  // end before start
           "seed=\n",
       }) {
    EXPECT_FALSE(FaultPlan::parse(bad).ok()) << "accepted: " << bad;
  }
  // Comments and blank lines are fine.
  auto ok = FaultPlan::parse("# a comment\n\nseed=7\n");
  ASSERT_TRUE(ok.ok()) << ok.error();
  EXPECT_EQ(ok.value().seed, 7u);
}

}  // namespace
}  // namespace akadns::chaos
