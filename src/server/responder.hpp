// Authoritative response construction.
//
// Turns a decoded query + the zone store into a response: answers,
// in-bailiwick CNAME chasing, referrals with glue, NXDOMAIN / NODATA with
// SOA, REFUSED outside hosted zones, and the dynamic-answer hook through
// which the Mapping Intelligence (§3.2) supplies load-balanced answers
// for CDN/GTM hostnames (keyed on the query source or its
// EDNS-Client-Subnet).
//
// Two implementations share one contract:
//   - the compiled path (default) resolves against the store's
//     CompiledZone snapshots and stitches precoded wire fragments
//     straight into the caller's buffer, consulting a per-machine answer
//     cache first — zero heap allocations steady-state;
//   - the interpreted path builds a dns::Message through Zone::lookup and
//     the full encoder. It remains the reference implementation: the
//     differential property suite asserts the two emit identical bytes,
//     and it serves everything the fast path declines (non-Query opcodes,
//     FORMERR, mapped answers, referral push).
#pragma once

#include <algorithm>
#include <functional>
#include <optional>
#include <span>

#include "common/sim_time.hpp"
#include "dns/message.hpp"
#include "dns/wire.hpp"
#include "obs/registry.hpp"
#include "server/answer_cache.hpp"
#include "zone/zone_store.hpp"

namespace akadns::server {

/// A dynamic answer produced by the mapping system for one query.
struct MappedAnswer {
  std::vector<dns::ResourceRecord> answers;
  /// ECS scope the mapping decision applies to (echoed into the
  /// response's ECS option per RFC 7871).
  std::uint8_t ecs_scope_prefix_len = 0;
};

/// Hook consulted before static zone data for each question; returning
/// nullopt falls through to the zone content. Runs before the answer
/// cache too, so mapped (GTM) answers can never be served stale.
using MappingHook = std::function<std::optional<MappedAnswer>(
    const dns::Question& question, const Endpoint& client,
    const std::optional<dns::ClientSubnet>& ecs)>;

struct ResponderConfig {
  /// Maximum CNAME links chased within hosted zones.
  int max_cname_chain = 8;
  /// Answer size cap for UDP responses without EDNS.
  std::size_t udp_payload_default = 512;
  /// Ceiling applied to the client's advertised EDNS UDP payload size
  /// (DNS Flag Day 2020: 1232 avoids IP fragmentation on virtually every
  /// path). Clients advertise arbitrary values — a spoofed-source flood
  /// advertising 65535 would otherwise turn the server into an
  /// amplification cannon. Advertisements below 512 are raised to 512
  /// (RFC 6891 §6.2.3: values below 512 are treated as 512).
  std::size_t edns_udp_payload_max = 1232;
  /// Serve from CompiledZone snapshots / wire fragments (the interpreted
  /// Message path stays available as the differential reference).
  bool enable_compiled_path = true;
  /// Consult the per-machine answer cache (compiled path only).
  bool enable_answer_cache = true;
  /// Bound on cached responses (FIFO eviction beyond this).
  std::size_t answer_cache_entries = 4096;
};

/// §5.2 "Improvements": supplies answers to push alongside a referral so
/// the resolver need not query the lowlevels in the same resolution
/// (deployable with DNS-over-HTTPS server push). Returning an empty
/// vector sends a plain referral.
using ReferralPushHook = std::function<std::vector<dns::ResourceRecord>(
    const dns::Question& question, const Endpoint& client)>;

struct ResponderStats {
  obs::Counter responses;
  obs::Counter noerror;
  obs::Counter nxdomain;
  obs::Counter nodata;
  obs::Counter refused;
  obs::Counter formerr;
  obs::Counter notimp;
  obs::Counter servfail;
  obs::Counter referrals;
  obs::Counter wildcard_answers;
  obs::Counter cname_chases;
  obs::Counter mapped_answers;
  obs::Counter pushed_answers;
  // Datapath breakdown: every wire response is exactly one of these.
  obs::Counter compiled_answers;     // stitched from precompiled fragments
  obs::Counter cache_hits;           // replayed from the answer cache
  obs::Counter interpreted_answers;  // built via the Message encoder

  /// Registers every counter as an rcode/kind-labelled series under
  /// `base` (typically worker/lane labels).
  void register_into(obs::MetricRegistry& reg, const obs::LabelSet& base) const;

  /// Accumulates another responder's counters (per-lane → machine view).
  void merge(const ResponderStats& o) noexcept {
    responses += o.responses;
    noerror += o.noerror;
    nxdomain += o.nxdomain;
    nodata += o.nodata;
    refused += o.refused;
    formerr += o.formerr;
    notimp += o.notimp;
    servfail += o.servfail;
    referrals += o.referrals;
    wildcard_answers += o.wildcard_answers;
    cname_chases += o.cname_chases;
    mapped_answers += o.mapped_answers;
    pushed_answers += o.pushed_answers;
    compiled_answers += o.compiled_answers;
    cache_hits += o.cache_hits;
    interpreted_answers += o.interpreted_answers;
  }

  bool operator==(const ResponderStats&) const noexcept = default;
};

class Responder {
 public:
  explicit Responder(const zone::ZoneStore& store, ResponderConfig config = {});

  /// Builds the response for a decoded query message (interpreted path;
  /// the reference implementation).
  dns::Message respond(const dns::Message& query, const Endpoint& client);

  /// Convenience: wire in, wire out. Returns nullopt when the packet is
  /// too mangled to even answer FORMERR (no parseable header/question).
  /// `wire_size_limit` selects the transport semantics: 0 (UDP) derives
  /// the truncation limit from the clamped EDNS advertisement; non-zero
  /// (TCP — pass dns::kMaxMessageSize) uses that limit verbatim and
  /// bypasses the answer cache, whose keys are UDP-shaped.
  std::optional<std::vector<std::uint8_t>> respond_wire(std::span<const std::uint8_t> wire,
                                                        const Endpoint& client,
                                                        SimTime now = SimTime::origin(),
                                                        std::size_t wire_size_limit = 0);

  /// The pipeline's zero-reparse path: answers from a QueryView decoded
  /// once at receive(), completing the EDNS walk in place. Never
  /// re-parses the header or question; a mangled record tail degrades to
  /// the FORMERR salvage answer. Always produces response bytes.
  std::vector<std::uint8_t> respond_view(std::span<const std::uint8_t> wire,
                                         dns::QueryView& view, const Endpoint& client,
                                         SimTime now = SimTime::origin(),
                                         std::size_t wire_size_limit = 0);

  /// Like respond_view() but emits into `out` (reused capacity — the
  /// zero-allocation per-query form the nameserver drives).
  void respond_view_into(std::span<const std::uint8_t> wire, dns::QueryView& view,
                         const Endpoint& client, SimTime now, std::vector<std::uint8_t>& out,
                         std::size_t wire_size_limit = 0);

  /// The truncation limit a UDP response to `edns` gets: the advertised
  /// payload size clamped to [512, edns_udp_payload_max], or
  /// udp_payload_default without EDNS. Exposed so transports and tests
  /// agree on one definition.
  std::size_t effective_udp_payload(const std::optional<dns::Edns>& edns) const noexcept {
    if (!edns) return config_.udp_payload_default;
    return std::clamp<std::size_t>(edns->udp_payload_size, 512, config_.edns_udp_payload_max);
  }

  void set_mapping_hook(MappingHook hook) { mapping_hook_ = std::move(hook); }
  void set_referral_push_hook(ReferralPushHook hook) { push_hook_ = std::move(hook); }

  /// Observer invoked once per answered query with the final rcode —
  /// the feed for the Data Collection/Aggregation component (§3.2).
  using ResponseObserver = std::function<void(const dns::Question&, dns::Rcode)>;
  void set_response_observer(ResponseObserver observer) {
    response_observer_ = std::move(observer);
  }

  const ResponderStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  const AnswerCache& answer_cache() const noexcept { return cache_; }
  AnswerCache& answer_cache() noexcept { return cache_; }

 private:
  /// Resolves one question into the response being assembled; returns the
  /// rcode for the header. `mapped_state` carries a mapping-hook result
  /// already obtained by the caller (so the hook runs exactly once per
  /// query); when null the hook is consulted here.
  dns::Rcode resolve(const dns::Question& question, const Endpoint& client,
                     const std::optional<dns::ClientSubnet>& ecs, dns::Message& response,
                     const std::optional<MappedAnswer>* mapped_state);

  /// Shared core behind respond() and the interpreted fallbacks: operates
  /// on the pre-extracted header/question/EDNS pieces so neither entry
  /// point ever re-decodes. `question` may be null (empty question
  /// section).
  dns::Message respond_core(const dns::Header& query_header, std::size_t question_count,
                            const dns::Question* question,
                            const std::optional<dns::Edns>& edns, const Endpoint& client,
                            const std::optional<MappedAnswer>* mapped_state = nullptr);

  /// Compiled fast path: cache probe, then fragment-stitched resolution.
  /// Returns false — having emitted nothing and counted nothing — when
  /// the query needs the interpreted path (referral push hook, CNAME
  /// chain deeper than the fast path pins). `max_size` is the already-
  /// computed truncation limit; `use_cache` is false for transports the
  /// cache keys cannot distinguish (TCP).
  bool try_compiled(const dns::Question& question, const dns::Header& query_header,
                    const std::optional<dns::Edns>& edns, SimTime now, std::size_t max_size,
                    bool use_cache, std::vector<std::uint8_t>& out);

  void count_rcode(dns::Rcode rcode) noexcept;

  const zone::ZoneStore& store_;
  ResponderConfig config_;
  MappingHook mapping_hook_;
  ReferralPushHook push_hook_;
  ResponseObserver response_observer_;
  ResponderStats stats_;
  AnswerCache cache_;
};

}  // namespace akadns::server
