#include "core/delegation_sets.hpp"

#include <gtest/gtest.h>

#include <set>

namespace akadns::core {
namespace {

TEST(DelegationSets, BinomialBasics) {
  EXPECT_EQ(binomial(24, 6), 134'596u);
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(4, 6), 0u);
}

TEST(DelegationSets, MaxEnterprisesMatchesPaper) {
  // "enabling the architecture to support up to C(24,6) enterprises".
  EXPECT_EQ(max_enterprises(), 134'596u);
}

TEST(DelegationSets, FirstAndLastSets) {
  const auto first = delegation_set_for(0);
  EXPECT_EQ(first, (std::array<std::uint32_t, 6>{0, 1, 2, 3, 4, 5}));
  const auto last = delegation_set_for(max_enterprises() - 1);
  EXPECT_EQ(last, (std::array<std::uint32_t, 6>{18, 19, 20, 21, 22, 23}));
}

TEST(DelegationSets, OutOfRangeThrows) {
  EXPECT_THROW(delegation_set_for(max_enterprises()), std::out_of_range);
}

TEST(DelegationSets, SetsAreSortedAndInRange) {
  for (std::uint64_t index : {0ULL, 1ULL, 1000ULL, 77'777ULL, 134'595ULL}) {
    const auto set = delegation_set_for(index);
    for (std::size_t i = 0; i < set.size(); ++i) {
      EXPECT_LT(set[i], kCloudCount);
      if (i > 0) EXPECT_LT(set[i - 1], set[i]);
    }
  }
}

TEST(DelegationSets, UnrankRankRoundTrip) {
  for (std::uint64_t index = 0; index < max_enterprises(); index += 997) {
    EXPECT_EQ(delegation_set_index(delegation_set_for(index)), index);
  }
}

TEST(DelegationSets, AllSetsDistinct) {
  // Sampled uniqueness check (full enumeration is 134,596 sets — cheap
  // enough, actually, so do it exhaustively over a stride of 7).
  std::set<std::array<std::uint32_t, 6>> seen;
  for (std::uint64_t index = 0; index < max_enterprises(); index += 7) {
    EXPECT_TRUE(seen.insert(delegation_set_for(index)).second) << index;
  }
}

TEST(DelegationSets, DistinctEnterprisesShareAtMostFiveClouds) {
  // §4.3.1: "any other enterprise B will have at least one delegation
  // not in common with A".
  const auto a = delegation_set_for(12'345);
  for (std::uint64_t other : {0ULL, 12'344ULL, 12'346ULL, 99'999ULL}) {
    const auto b = delegation_set_for(other);
    EXPECT_LE(overlap(a, b), 5u);
  }
  EXPECT_EQ(overlap(a, a), 6u);
}

TEST(DelegationSets, CdnDelegationHas13DistinctClouds) {
  const auto clouds = cdn_delegation();
  EXPECT_EQ(clouds.size(), kCdnDelegationSize);
  const std::set<std::uint32_t> distinct(clouds.begin(), clouds.end());
  EXPECT_EQ(distinct.size(), kCdnDelegationSize);
  for (const auto c : clouds) EXPECT_LT(c, kCloudCount);
}

}  // namespace
}  // namespace akadns::core
