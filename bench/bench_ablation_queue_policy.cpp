// Ablation of the §4.3.3 queueing design: score-then-prioritize with
// work-conserving drain, versus (a) a single FIFO with no scoring and
// (b) hard-drop of every penalized query (not work-conserving).
//
// The filters are deliberately made imperfect: a fixed 5% of legitimate
// resolvers are misclassified (their queries carry a penalty). Under a
// random-subdomain attack we measure, per policy:
//   - goodput for correctly classified legitimate queries,
//   - goodput for the misclassified (false-positive) legitimate queries,
//   - attack queries answered (wasted compute).
//
// The paper's design wins on both fronts: clean traffic is protected
// (like hard-drop) while false positives still get answered whenever
// capacity remains (unlike hard-drop) — "our query processing is
// work-conserving, so if there are any enqueued queries, it will attempt
// to answer them, even if suspicious."

#include "bench_util.hpp"
#include "dns/wire.hpp"
#include "filters/nxdomain_filter.hpp"
#include "server/nameserver.hpp"
#include "workload/attacks.hpp"

using namespace akadns;

namespace {

constexpr double kComputeQps = 5'000.0;
constexpr double kLegitQps = 1'500.0;
constexpr double kAttackQps = 12'000.0;

struct Scenario {
  workload::ResolverPopulation population{{.resolver_count = 6'000, .asn_count = 300}, 1};
  workload::HostedZones zones{{.zone_count = 150, .wildcard_fraction = 0.0}, 2};

  bool misclassified(std::size_t resolver_index) const {
    return resolver_index % 20 == 0;  // 5% false-positive band
  }
};

enum class Policy { PriorityQueues, PlainFifo, HardDrop };

const char* name_of(Policy p) {
  switch (p) {
    case Policy::PriorityQueues: return "priority queues (paper)";
    case Policy::PlainFifo: return "single FIFO, no scoring";
    case Policy::HardDrop: return "hard-drop penalized";
  }
  return "?";
}

/// Filter marking misclassified-legit and (via NXDOMAIN filter logic)
/// attack queries.
class MisclassifyFilter : public filters::Filter {
 public:
  MisclassifyFilter(const Scenario& scenario, double penalty)
      : scenario_(scenario), penalty_(penalty) {}
  std::string_view name() const noexcept override { return "misclassify"; }
  double score(const filters::QueryContext& ctx) override {
    // Identify the resolver by address (addresses are index-derived).
    const auto octets_hash = ctx.source.addr.hash();
    (void)octets_hash;
    for (std::size_t base = 0; base < 1; ++base) {
      // addresses were allocated as 0x0B000000 + index
      if (ctx.source.addr.is_v4()) {
        const std::uint32_t v = ctx.source.addr.v4().value();
        if (v >= 0x0B000000u) {
          const std::size_t index = v - 0x0B000000u;
          if (index < scenario_.population.size() && scenario_.misclassified(index)) {
            return penalty_;
          }
        }
      }
    }
    return 0.0;
  }

 private:
  const Scenario& scenario_;
  double penalty_;
};

struct Outcome {
  double clean_goodput = 0;
  double misclassified_goodput = 0;
  double attack_answered = 0;
};

Outcome run_policy(Scenario& scenario, Policy policy) {
  server::NameserverConfig config;
  config.compute_capacity_qps = kComputeQps;
  config.io_capacity_qps = 200'000.0;
  switch (policy) {
    case Policy::PriorityQueues:
      config.queue_config.max_scores = {0.0, 60.0, 150.0};
      config.queue_config.discard_score = 200.0;
      break;
    case Policy::PlainFifo:
      config.queue_config.max_scores = {1e9};  // everything in one queue
      config.queue_config.discard_score = 1e12;
      break;
    case Policy::HardDrop:
      config.queue_config.max_scores = {0.0};
      config.queue_config.discard_score = 1.0;  // any penalty -> discard
      break;
  }
  server::Nameserver nameserver(std::move(config), scenario.zones.store());
  if (policy != Policy::PlainFifo) {
    nameserver.scoring().add_filter(std::make_unique<MisclassifyFilter>(scenario, 60.0));
    nameserver.scoring().add_filter(std::make_unique<filters::NxDomainFilter>(
        filters::NxDomainFilter::Config{.penalty = 100.0, .nxdomain_threshold = 200},
        [&scenario](const dns::DnsName& qname) -> std::optional<dns::DnsName> {
          const auto zone = scenario.zones.store().find_best_zone(qname);
          if (!zone) return std::nullopt;
          return zone->apex();
        },
        [&scenario](const dns::DnsName& apex) {
          const auto zone = scenario.zones.store().find_zone(apex);
          return zone ? zone->all_names() : std::vector<dns::DnsName>{};
        }));
  }

  workload::QueryGenerator legit(scenario.population, scenario.zones, 5);
  workload::RandomSubdomainAttack attack({.target_zone_rank = 0}, scenario.population,
                                         scenario.zones, 6);
  Rng rng(7);
  // kind per transaction id: 0 clean, 1 misclassified, 2 attack
  std::vector<std::uint8_t> kind(65536, 2);
  std::uint64_t sent[3] = {}, answered[3] = {};
  nameserver.set_response_sink([&](const Endpoint&, std::vector<std::uint8_t> wire) {
    if (wire.size() >= 2) {
      ++answered[kind[static_cast<std::uint16_t>((wire[0] << 8) | wire[1])]];
    }
  });

  SimTime clock = SimTime::origin();
  std::uint16_t id = 1;
  for (double t = 0; t < 4.0; t += 1e-3) {
    clock += Duration::millis(1);
    const auto legit_count = rng.next_poisson(kLegitQps * 1e-3);
    const auto attack_count = rng.next_poisson(kAttackQps * 1e-3);
    std::vector<bool> arrivals;
    arrivals.insert(arrivals.end(), legit_count, true);
    arrivals.insert(arrivals.end(), attack_count, false);
    rng.shuffle(arrivals);
    for (const bool legit_arrival : arrivals) {
      const auto q = legit_arrival ? legit.next() : attack.next();
      const std::uint8_t k =
          legit_arrival ? (scenario.misclassified(q.resolver_index) ? 1 : 0) : 2;
      kind[id] = k;
      ++sent[k];
      nameserver.receive(dns::encode(dns::make_query(id, q.qname, q.qtype)), q.source,
                         q.ip_ttl, clock);
      ++id;
    }
    nameserver.process(clock);
  }
  Outcome outcome;
  outcome.clean_goodput = sent[0] ? static_cast<double>(answered[0]) / sent[0] : 1.0;
  outcome.misclassified_goodput =
      sent[1] ? static_cast<double>(answered[1]) / sent[1] : 1.0;
  outcome.attack_answered = sent[2] ? static_cast<double>(answered[2]) / sent[2] : 0.0;
  return outcome;
}

}  // namespace

int main() {
  bench::heading("ablation: penalty queues vs FIFO vs hard-drop (§4.3.3)",
                 "work-conserving prioritization protects clean traffic AND answers "
                 "false positives when capacity remains");

  Scenario scenario;
  std::printf("compute %.0f qps; legit %.0f qps (5%% misclassified); "
              "random-subdomain attack %.0f qps\n\n",
              kComputeQps, kLegitQps, kAttackQps);
  std::printf("%-28s %12s %18s %16s\n", "policy", "clean legit", "misclassified legit",
              "attack answered");
  for (const Policy policy :
       {Policy::PriorityQueues, Policy::PlainFifo, Policy::HardDrop}) {
    const auto outcome = run_policy(scenario, policy);
    std::printf("%-28s %11.1f%% %17.1f%% %15.1f%%\n", name_of(policy),
                100 * outcome.clean_goodput, 100 * outcome.misclassified_goodput,
                100 * outcome.attack_answered);
  }
  std::printf("\nexpected shape: FIFO hurts everyone equally; hard-drop saves clean\n"
              "traffic but silences the misclassified 5%% entirely; the paper's\n"
              "work-conserving priority queues protect clean traffic while still\n"
              "answering misclassified queries with leftover capacity.\n");
  return 0;
}
