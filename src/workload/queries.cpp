#include "workload/queries.hpp"

#include "dns/wire.hpp"

namespace akadns::workload {

QueryGenerator::QueryGenerator(const ResolverPopulation& population, const HostedZones& zones,
                               std::uint64_t seed)
    : population_(population), zones_(zones), rng_(seed) {}

GeneratedQuery QueryGenerator::next() {
  GeneratedQuery query;
  query.resolver_index = population_.sample(rng_);
  const ResolverInfo& resolver = population_.resolver(query.resolver_index);
  query.source.addr = resolver.address;
  query.source.port = resolver.random_ports
                          ? static_cast<std::uint16_t>(1024 + rng_.next_below(64512))
                          : 53;
  query.ip_ttl = resolver.ip_ttl;
  const std::size_t zone_rank = zones_.sample_zone(rng_);
  query.qname = zones_.sample_valid_name(zone_rank, rng_);
  query.qtype = rng_.next_bool(0.25) ? dns::RecordType::AAAA : dns::RecordType::A;
  return query;
}

std::vector<std::uint8_t> QueryGenerator::encode(const GeneratedQuery& query) {
  return dns::encode(dns::make_query(next_id_++, query.qname, query.qtype));
}

std::pair<double, double> BurstModel::simulate_day(double mean_qps, std::uint32_t seconds,
                                                   Rng& rng) const {
  if (mean_qps <= 0.0 || seconds == 0) return {0.0, 0.0};
  const double burst_rate = mean_qps / on_fraction;
  const double mean_burst_s = std::max(mean_burst.to_seconds(), 1.0);
  const double mean_gap_s = mean_burst_s * (1.0 - on_fraction) / on_fraction;

  double total = 0.0;
  double max_per_second = 0.0;
  double t = 0.0;
  bool on = rng.next_bool(on_fraction);
  double state_remaining = on ? rng.next_exponential(1.0 / mean_burst_s)
                              : rng.next_exponential(1.0 / mean_gap_s);
  while (t < static_cast<double>(seconds)) {
    if (on) {
      // Walk the burst one second at a time so the 1-second max is exact.
      const double burst_end = std::min(t + state_remaining, static_cast<double>(seconds));
      while (t < burst_end) {
        const double slice = std::min(1.0, burst_end - t);
        const double count =
            static_cast<double>(rng.next_poisson(burst_rate * slice));
        total += count;
        max_per_second = std::max(max_per_second, count / std::max(slice, 1e-9) * slice);
        max_per_second = std::max(max_per_second, count);
        t += slice;
      }
    } else {
      t += state_remaining;
    }
    on = !on;
    state_remaining = on ? rng.next_exponential(1.0 / mean_burst_s)
                         : rng.next_exponential(1.0 / mean_gap_s);
  }
  return {total / static_cast<double>(seconds), max_per_second};
}

}  // namespace akadns::workload
