// Query-of-death firewall (§4.2.4).
//
// "The nameservers detect unrecoverable faults in their query processing
// logic and write the DNS payload of the packet being processed to disk.
// A separate process constructs and inserts a firewall rule to drop
// similar DNS queries ... the rule is expunged after a configurable time
// T_QoD, so the nameserver will occasionally attempt to answer potential
// QoDs while limiting the crash rate to at most once per T_QoD."
//
// A rule matches "similar" queries: same qtype and a qname at/below the
// rule's name (the pattern generalization a production system derives
// from the crashing payload). Rule expiry runs on an abstract Timepoint
// axis (common/clock.hpp), so the same table serves the simulated
// nameserver and the real-socket workers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/clock.hpp"
#include "dns/message.hpp"

namespace akadns::defense {

struct FirewallRule {
  dns::DnsName name;         // matches this name and everything below it
  dns::RecordType qtype;     // RecordType::ANY matches all types
  Timepoint expires_at;
  std::uint64_t hits = 0;
};

class Firewall {
 public:
  /// Installs a rule derived from a crashing query; replaces an identical
  /// existing rule (refreshing its expiry).
  void install(const dns::Question& question, Timepoint now, Duration ttl);

  /// True if the query matches a live rule (and counts the hit).
  /// Expired rules are lazily expunged.
  bool drops(const dns::Question& question, Timepoint now);

  std::size_t rule_count(Timepoint now);
  const std::vector<FirewallRule>& rules() const noexcept { return rules_; }
  std::uint64_t total_dropped() const noexcept { return dropped_; }

 private:
  void expunge(Timepoint now);

  std::vector<FirewallRule> rules_;
  std::uint64_t dropped_ = 0;
};

}  // namespace akadns::defense
