#include "netsim/failover_probe.hpp"

#include <cstring>
#include <stdexcept>

namespace akadns::netsim {
namespace {

std::vector<std::uint8_t> encode_u64(std::uint64_t a, std::uint64_t b) {
  std::vector<std::uint8_t> out(16);
  for (int i = 0; i < 8; ++i) out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(a >> (56 - 8 * i));
  for (int i = 0; i < 8; ++i) out[static_cast<std::size_t>(8 + i)] = static_cast<std::uint8_t>(b >> (56 - 8 * i));
  return out;
}

std::pair<std::uint64_t, std::uint64_t> decode_u64(const std::vector<std::uint8_t>& in) {
  std::uint64_t a = 0, b = 0;
  for (int i = 0; i < 8 && static_cast<std::size_t>(i) < in.size(); ++i) {
    a = (a << 8) | in[static_cast<std::size_t>(i)];
  }
  for (int i = 8; i < 16 && static_cast<std::size_t>(i) < in.size(); ++i) {
    b = (b << 8) | in[static_cast<std::size_t>(i)];
  }
  return {a, b};
}

}  // namespace

ProbeDriver::ProbeDriver(Network& network, PrefixId prefix, std::vector<NodeId> vantage_points,
                         ProbeDriverConfig config)
    : network_(network),
      prefix_(prefix),
      vantage_points_(std::move(vantage_points)),
      config_(config) {
  network_.attach_prefix_handler(prefix_, [this](NodeId at, const Packet& packet) {
    on_delivery(at, packet);
  });
  for (const NodeId vp : vantage_points_) {
    records_[vp];  // materialize
    network_.attach_node_handler(vp, [this](NodeId at, const Packet& packet) {
      on_reply(at, packet);
    });
  }
}

void ProbeDriver::start(SimTime stop_at) {
  stop_at_ = stop_at;
  for (const NodeId vp : vantage_points_) send_probe(vp);
}

void ProbeDriver::send_probe(NodeId vantage_point) {
  const SimTime now = network_.scheduler().now();
  if (now > stop_at_) return;
  const std::uint64_t probe_id = next_probe_id_++;
  auto& log = records_[vantage_point];
  pending_[probe_id] = Pending{vantage_point, log.size()};
  log.push_back(ProbeRecord{now, kInvalidNode, Duration::zero(), false});
  network_.send_to_prefix(vantage_point, prefix_, encode_u64(probe_id, 0));
  network_.scheduler().schedule_after(config_.interval,
                                      [this, vantage_point] { send_probe(vantage_point); });
}

void ProbeDriver::on_delivery(NodeId at_origin, const Packet& packet) {
  const auto [probe_id, unused] = decode_u64(packet.payload);
  (void)unused;
  // Reply unicast to the prober, identifying this origin (PoP).
  network_.send_to_node(at_origin, packet.src, encode_u64(probe_id, at_origin));
}

void ProbeDriver::on_reply(NodeId vantage_point, const Packet& packet) {
  const auto [probe_id, origin] = decode_u64(packet.payload);
  const auto it = pending_.find(probe_id);
  if (it == pending_.end() || it->second.vantage_point != vantage_point) return;
  ProbeRecord& record = records_[vantage_point][it->second.record_index];
  const Duration rtt = network_.scheduler().now() - record.sent;
  // Late replies (past the timeout) count as timeouts, like a resolver
  // that has already retried elsewhere.
  if (rtt <= config_.timeout) {
    record.answered = true;
    record.answered_by = static_cast<NodeId>(origin);
    record.rtt = rtt;
  }
  pending_.erase(it);
}

const std::vector<ProbeRecord>& ProbeDriver::records(NodeId vantage_point) const {
  const auto it = records_.find(vantage_point);
  if (it == records_.end()) throw std::invalid_argument("unknown vantage point");
  return it->second;
}

std::optional<SimTime> ProbeDriver::first_answer_from(NodeId vantage_point, NodeId origin,
                                                      SimTime from) const {
  for (const auto& record : records(vantage_point)) {
    if (record.sent < from) continue;
    if (record.answered && record.answered_by == origin) return record.sent;
  }
  return std::nullopt;
}

std::optional<SimTime> ProbeDriver::first_timeout(NodeId vantage_point, SimTime from) const {
  for (const auto& record : records(vantage_point)) {
    if (record.sent < from) continue;
    if (!record.answered) return record.sent;
  }
  return std::nullopt;
}

bool ProbeDriver::all_timeouts_between(NodeId vantage_point, SimTime from, SimTime until) const {
  bool any = false;
  for (const auto& record : records(vantage_point)) {
    if (record.sent < from || record.sent > until) continue;
    any = true;
    if (record.answered) return false;
  }
  return any;
}

}  // namespace akadns::netsim
