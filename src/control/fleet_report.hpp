// The fleet drill report: what akadns-fleet writes at exit (--report)
// and what the CI fleet-drill smoke gates on. Plain value structs so
// the control plane does not depend on src/fleet/ — the fleet binary
// fills them from its supervisor/probe-suite/front state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace akadns::control {

struct FleetMachineReport {
  std::string id;
  std::int64_t pid = -1;
  bool up = false;
  bool suspended = false;
  std::uint16_t udp_port = 0;
  std::uint16_t stats_port = 0;
  std::uint64_t restarts = 0;
  std::uint64_t probe_rounds = 0;
  std::uint64_t probe_failed_rounds = 0;
  std::uint64_t byte_mismatches = 0;
  std::uint64_t suspensions = 0;
  std::uint64_t denied_suspensions = 0;
  std::uint64_t restores = 0;
  std::uint64_t advisory_scrapes = 0;
  std::uint64_t advisory_anomalies = 0;
  std::uint64_t upstream_timeouts = 0;
};

struct FleetFrontReport {
  std::uint16_t port = 0;
  std::uint64_t live_flows = 0;
  std::uint64_t flows_created = 0;
  std::uint64_t flows_moved = 0;
  std::uint64_t udp_client_datagrams = 0;
  std::uint64_t udp_upstream_answers = 0;
  std::uint64_t udp_no_member_drops = 0;
  std::uint64_t tcp_connections = 0;
};

struct FleetQuotaReport {
  std::size_t fleet_size = 0;
  std::size_t suspended = 0;
  std::size_t quota = 0;
  std::uint64_t denied = 0;
};

/// One catchment change as measured by the anycast front.
struct FleetReconvergeReport {
  std::string member;
  bool withdrawal = true;
  std::uint64_t flows_moved = 0;
  std::int64_t remap_us = 0;
  std::int64_t first_answer_us = -1;  // -1: no traffic proved the new map
};

struct FleetReport {
  double uptime_seconds = 0.0;
  std::vector<FleetMachineReport> machines;
  FleetFrontReport front;
  FleetQuotaReport quota;
  std::vector<FleetReconvergeReport> reconverge;
  /// Human-readable drill timeline ("t=4.0s killed m1", ...).
  std::vector<std::string> events;
};

/// Renders the report as JSON (stable key order, no external deps).
std::string render_fleet_report(const FleetReport& report);

}  // namespace akadns::control
