#include "propagation/freshness.hpp"

#include <algorithm>

namespace akadns::propagation {

namespace {

/// min(SOA field, cap), with either side absent meaning "use the other";
/// both absent falls back to `fallback` so a zero-SOA zone still ages.
std::int64_t effective_ns(std::uint32_t soa_seconds, Duration cap, Duration fallback) {
  const std::int64_t soa_ns = static_cast<std::int64_t>(soa_seconds) * 1'000'000'000;
  const std::int64_t cap_ns = cap.count_nanos();
  if (soa_ns > 0 && cap_ns > 0) return std::min(soa_ns, cap_ns);
  if (soa_ns > 0) return soa_ns;
  if (cap_ns > 0) return cap_ns;
  return fallback.count_nanos();
}

}  // namespace

void FreshnessTracker::confirm(const dns::DnsName& apex, const dns::SoaRecord& soa,
                               std::int64_t now_ns) {
  Entry entry;
  entry.confirmed_ns = now_ns;
  entry.refresh_ns = effective_ns(soa.refresh, caps_.refresh_cap, Duration::hours(1));
  entry.expire_ns = effective_ns(soa.expire, caps_.expire_cap, Duration::days(7));
  // A zone whose SOA orders expire below refresh would skip the stale
  // band entirely; clamp so the ladder always has its middle rung.
  entry.expire_ns = std::max(entry.expire_ns, entry.refresh_ns);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_[apex] = entry;
  }
}

void FreshnessTracker::forget(const dns::DnsName& apex) {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.erase(apex);
}

Freshness FreshnessTracker::evaluate(std::int64_t now_ns) {
  Freshness worst = Freshness::Fresh;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [apex, entry] : entries_) {
      worst = std::max(worst, state_of_entry(entry, now_ns));
    }
  }
  worst_.store(static_cast<int>(worst), std::memory_order_relaxed);
  return worst;
}

Freshness FreshnessTracker::state_of(const dns::DnsName& apex, std::int64_t now_ns) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(apex);
  if (it == entries_.end()) return Freshness::Fresh;
  return state_of_entry(it->second, now_ns);
}

double FreshnessTracker::staleness_seconds(std::int64_t now_ns) const {
  std::int64_t worst_over = 0;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [apex, entry] : entries_) {
    const std::int64_t over = (now_ns - entry.confirmed_ns) - entry.refresh_ns;
    worst_over = std::max(worst_over, over);
  }
  return static_cast<double>(worst_over) / 1e9;
}

std::size_t FreshnessTracker::tracked() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace akadns::propagation
