file(REMOVE_RECURSE
  "CMakeFiles/akadns_workload.dir/attacks.cpp.o"
  "CMakeFiles/akadns_workload.dir/attacks.cpp.o.d"
  "CMakeFiles/akadns_workload.dir/diurnal.cpp.o"
  "CMakeFiles/akadns_workload.dir/diurnal.cpp.o.d"
  "CMakeFiles/akadns_workload.dir/population.cpp.o"
  "CMakeFiles/akadns_workload.dir/population.cpp.o.d"
  "CMakeFiles/akadns_workload.dir/queries.cpp.o"
  "CMakeFiles/akadns_workload.dir/queries.cpp.o.d"
  "CMakeFiles/akadns_workload.dir/zones.cpp.o"
  "CMakeFiles/akadns_workload.dir/zones.cpp.o.d"
  "libakadns_workload.a"
  "libakadns_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/akadns_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
