// Differential golden test for the DefenseEngine extraction.
//
// The golden values below were captured by driving the PRE-refactor
// nameserver (defense logic inline: firewall, per-lane ScoringEngine +
// PenaltyQueueSet, token buckets) through a fixed 30k-packet mixed
// legit/attack replay. The post-refactor nameserver — which delegates
// every one of those stages to defense::DefenseEngine on a ManualClock —
// must reproduce them BIT-IDENTICALLY: same machine counters, same
// per-lane counters, same response byte-sum, at every worker-thread
// count. Any drift here means the extraction changed observable
// behaviour, not just structure.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "filters/nxdomain_filter.hpp"
#include "filters/rate_limit_filter.hpp"
#include "server/nameserver.hpp"
#include "workload/population.hpp"
#include "workload/replay.hpp"
#include "workload/zones.hpp"

namespace akadns::server {
namespace {

struct GoldenLane {
  std::uint64_t received;
  std::uint64_t responses;
  std::uint64_t drops;
  std::size_t pending;
};

// Captured from the pre-refactor datapath at commit "Shard the nameserver
// datapath into RSS-hashed worker lanes" + snapshot compilation; the
// scenario parameters below are part of the golden contract.
constexpr std::uint64_t kGoldenReceived = 30000;
constexpr std::uint64_t kGoldenEnqueued = 11044;
constexpr std::uint64_t kGoldenProcessed = 7972;
constexpr std::uint64_t kGoldenResponses = 7972;
constexpr std::size_t kGoldenPending = 3072;
constexpr std::uint64_t kGoldenIoDrops = 0;
constexpr std::uint64_t kGoldenScoreDiscards = 1;
constexpr std::uint64_t kGoldenQueueFull = 18955;
constexpr std::uint64_t kGoldenByteSum = 22578230;
constexpr GoldenLane kGoldenLanes[8] = {
    {4158, 1013, 2761, 384}, {3843, 991, 2468, 384}, {3657, 992, 2281, 384},
    {3989, 988, 2617, 384},  {3728, 996, 2348, 384}, {3746, 1009, 2353, 384},
    {3348, 990, 1974, 384},  {3531, 993, 2154, 384},
};

void run_scenario(std::size_t threads) {
  workload::HostedZonesConfig zc;
  zc.zone_count = 200;
  workload::HostedZones zones(zc, 7);
  workload::PopulationConfig pc;
  pc.resolver_count = 2000;
  workload::ResolverPopulation population(pc, 7 ^ 0xC0FFEEULL);
  workload::ReplayMixConfig mix;
  mix.corpus_size = 4096;
  mix.attack_fraction = 0.5;
  mix.seed = 9;
  workload::ReplayCorpus corpus(mix, population, zones);

  NameserverConfig config;
  config.lanes = 8;
  config.compute_capacity_qps = 5000.0;
  config.io_capacity_qps = 60000.0;
  config.queue_config.queue_capacity = 192;
  Nameserver ns(config, zones.store());
  ns.install_filter([](std::size_t, std::size_t) {
    return std::make_unique<filters::RateLimitFilter>(
        filters::RateLimitFilter::Config{.penalty = 60.0, .default_limit_qps = 200.0});
  });
  const zone::ZoneStore* store = &zones.store();
  ns.install_filter([store](std::size_t, std::size_t shard_count) {
    const std::uint64_t threshold = std::max<std::uint64_t>(1, 200 / shard_count);
    return std::make_unique<filters::NxDomainFilter>(
        filters::NxDomainFilter::Config{.penalty = 150.0, .nxdomain_threshold = threshold},
        [store](const dns::DnsName& qname) -> std::optional<dns::DnsName> {
          const auto zone = store->find_best_zone(qname);
          if (!zone) return std::nullopt;
          return zone->apex();
        },
        [store](const dns::DnsName& apex) {
          const auto zone = store->find_zone(apex);
          return zone ? zone->all_names() : std::vector<dns::DnsName>{};
        });
  });

  std::uint64_t response_bytes = 0;
  ns.set_response_span_sink([&](const Endpoint&, std::span<const std::uint8_t> wire) {
    for (const auto b : wire) response_bytes += b;
    response_bytes += wire.size();
  });

  const std::uint64_t total = 30000;
  SimTime now = SimTime::origin();
  const auto& entries = corpus.entries();
  for (std::uint64_t i = 0; i < total; ++i) {
    now = SimTime::origin() + Duration::micros(static_cast<std::int64_t>(i) * 50);
    const auto& entry = entries[i % entries.size()];
    ns.receive(entry.wire, entry.source, 64, now);
    if ((i + 1) % 64 == 0 && ns.begin_phase(now)) {
      std::vector<std::thread> pool;
      for (std::size_t t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
          for (std::size_t lane = t; lane < ns.lane_count(); lane += threads) {
            ns.run_lane(lane, now);
          }
        });
      }
      for (auto& th : pool) th.join();
      ns.end_phase(now);
    }
  }

  const auto& s = ns.stats();
  EXPECT_EQ(s.packets_received, kGoldenReceived);
  EXPECT_EQ(s.queries_enqueued, kGoldenEnqueued);
  EXPECT_EQ(s.queries_processed, kGoldenProcessed);
  EXPECT_EQ(s.responses_sent, kGoldenResponses);
  EXPECT_EQ(ns.pending(), kGoldenPending);
  EXPECT_EQ(s.dropped_io(), kGoldenIoDrops);
  EXPECT_EQ(s.discarded_by_score(), kGoldenScoreDiscards);
  EXPECT_EQ(s.dropped_queue_full(), kGoldenQueueFull);
  EXPECT_EQ(s.malformed(), 0u);
  EXPECT_EQ(s.dropped_firewall(), 0u);
  EXPECT_EQ(response_bytes, kGoldenByteSum);

  ASSERT_EQ(ns.lane_count(), 8u);
  for (std::size_t lane = 0; lane < ns.lane_count(); ++lane) {
    SCOPED_TRACE("lane " + std::to_string(lane));
    const auto& ls = ns.lane_stats(lane);
    EXPECT_EQ(ls.packets_received, kGoldenLanes[lane].received);
    EXPECT_EQ(ls.responses_sent, kGoldenLanes[lane].responses);
    EXPECT_EQ(ls.drops.total(), kGoldenLanes[lane].drops);
    EXPECT_EQ(ns.lane_pending(lane), kGoldenLanes[lane].pending);
  }

  // The engine's own defense accounting must agree with the nameserver's
  // packet-level view of the same run. The merged view is a registry
  // snapshot sum over the per-lane series, like every fleet report now.
  obs::MetricRegistry reg;
  ns.defense().register_metrics(reg, {});
  const auto defense = reg.snapshot();
  EXPECT_EQ(defense.sum("akadns_defense_enqueued_total"), kGoldenEnqueued);
  EXPECT_EQ(defense.sum("akadns_defense_released_total"), kGoldenProcessed);
  EXPECT_EQ(defense.sum("akadns_defense_drops_total", obs::labels({{"reason", "score-discard"}})),
            kGoldenScoreDiscards);
  EXPECT_EQ(defense.sum("akadns_defense_drops_total", obs::labels({{"reason", "queue-full"}})),
            kGoldenQueueFull);
}

TEST(SimDifferential, GoldenCountersAtOneThread) { run_scenario(1); }
TEST(SimDifferential, GoldenCountersAtTwoThreads) { run_scenario(2); }
TEST(SimDifferential, GoldenCountersAtEightThreads) { run_scenario(8); }

}  // namespace
}  // namespace akadns::server
