#include "control/reporting.hpp"

#include <algorithm>

namespace akadns::control {

LogHistogram DatapathReport::stage_latency(server::Stage stage) const {
  return snapshot.merged_histogram(
      "akadns_stage_latency_ns",
      obs::labels({{"stage", std::string(server::to_string(stage))}}));
}

LogHistogram DatapathReport::queue_wait() const {
  return snapshot.merged_histogram("akadns_queue_wait_us");
}

std::string DatapathReport::render() const {
  std::string out = "datapath: received=" + std::to_string(packets_received) +
                    " responded=" + std::to_string(responses_sent) +
                    " pending=" + std::to_string(pending) +
                    " dropped=" + std::to_string(drops.total()) +
                    (conservative() ? "" : " [UNACCOUNTED PACKETS]") + "\n";
  for (std::size_t i = 0; i < kDropReasonCount; ++i) {
    const auto reason = static_cast<DropReason>(i);
    if (drops[reason] == 0) continue;
    out += "  drop/";
    out += to_string(reason);
    out += ": " + std::to_string(drops[reason]) + "\n";
  }
  out += "  answers: compiled=" + std::to_string(compiled_answers) +
         " cached=" + std::to_string(cache_hits) +
         " interpreted=" + std::to_string(interpreted_answers) + " (cache hit rate " +
         std::to_string(cache_hit_rate() * 100.0) + "%" +
         (cache_evictions ? ", evictions=" + std::to_string(cache_evictions) : "") +
         (cache_invalidations ? ", invalidations=" + std::to_string(cache_invalidations) : "") +
         ")\n";
  out += "  publish: compiles=" + std::to_string(zone_compiles) +
         " incremental=" + std::to_string(zone_incremental_compiles) +
         " adopted=" + std::to_string(zone_snapshots_adopted) +
         " compile_time=" + std::to_string(zone_compile_micros) + "us\n";
  if (zone_sync.updates) {
    out += "  propagation: updates=" + std::to_string(zone_sync.updates) +
           " adopted=" + std::to_string(zone_sync.adopted) +
           " incremental=" + std::to_string(zone_sync.incremental) +
           " full=" + std::to_string(zone_sync.full) +
           " noops=" + std::to_string(zone_sync.noops) +
           " max_latency=" +
           std::to_string(static_cast<std::uint64_t>(zone_sync.max_latency_ns.value()) / 1000) +
           "us\n";
  }
  out += "  defense: scored=" + std::to_string(defense.scored) +
         " enqueued=" + std::to_string(defense.enqueued) +
         " released=" + std::to_string(defense.released) +
         " shed=" + std::to_string(defense.drops.total()) + "\n";
  if (!penalty_queue_depths.empty()) {
    out += "  penalty_queues:";
    for (std::size_t q = 0; q < penalty_queue_depths.size(); ++q) {
      out += " q" + std::to_string(q) + "=" + std::to_string(penalty_queue_depths[q]);
    }
    out += "\n";
  }
  if (lanes.size() > 1) {
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      const auto& lane = lanes[i];
      out += "  lane[" + std::to_string(i) + "]: received=" +
             std::to_string(lane.packets_received) +
             " responded=" + std::to_string(lane.responses_sent) +
             " pending=" + std::to_string(lane.pending) +
             " dropped=" + std::to_string(lane.drops.total()) +
             (lane.conservative() ? "" : " [UNACCOUNTED PACKETS]") + "\n";
    }
  }
  for (std::size_t s = 0; s < server::kStageCount; ++s) {
    const auto stage = static_cast<server::Stage>(s);
    const LogHistogram h = stage_latency(stage);
    if (h.count() == 0) continue;
    out += "  stage/";
    out += server::to_string(stage);
    out += ": count=" + std::to_string(h.count()) +
           " mean=" + std::to_string(h.mean()) +
           "ns p99=" + std::to_string(h.quantile(0.99)) + "ns\n";
  }
  const LogHistogram qw = queue_wait();
  if (qw.count() > 0) {
    out += "  queue_wait: count=" + std::to_string(qw.count()) +
           " mean=" + std::to_string(qw.mean()) + "us\n";
  }
  return out;
}

namespace {

/// Highest numeric value of label `key` in family `name`, plus one — the
/// series are registered per lane/queue index, so this recovers the
/// widest machine's lane count (resp. deepest queue set) from the
/// snapshot alone.
std::size_t indexed_label_width(const obs::MetricsSnapshot& snap, std::string_view name,
                                std::string_view key) {
  const auto* fam = snap.family(name);
  if (!fam) return 0;
  std::size_t width = 0;
  for (const auto& sample : fam->samples) {
    for (const auto& label : sample.labels) {
      if (label.key != key) continue;
      width = std::max(width, static_cast<std::size_t>(std::stoull(label.value)) + 1);
    }
  }
  return width;
}

void fill_drops(DropCounters& drops, const obs::MetricsSnapshot& snap, const char* family,
                const obs::LabelSet& base) {
  for (std::size_t i = 0; i < kDropReasonCount; ++i) {
    const auto reason = static_cast<DropReason>(i);
    const std::uint64_t n =
        snap.sum(family, obs::with(base, "reason", std::string(to_string(reason))));
    if (n) drops.add(reason, n);
  }
}

}  // namespace

DatapathReport render_datapath(obs::MetricsSnapshot snapshot) {
  DatapathReport report;

  // NIC-level losses never reach the nameserver, so the fleet's arrival
  // count is the datapath's packet counter plus those drops (the machine
  // layer is the only writer of reason=nic-failure).
  const std::uint64_t nic_losses = snapshot.sum(
      "akadns_drops_total",
      obs::labels({{"reason", std::string(to_string(DropReason::NicFailure))}}));
  report.packets_received = snapshot.sum("akadns_packets_total") + nic_losses;
  report.responses_sent = snapshot.sum("akadns_responses_sent_total");
  report.pending = snapshot.sum("akadns_pending");
  fill_drops(report.drops, snapshot, "akadns_drops_total", {});

  // Per-lane conservation: lane i summed across every machine (the series
  // carry both machine and lane labels; filtering on lane alone folds the
  // fleet into the per-lane buckets the invariant is asserted over).
  report.lanes.resize(indexed_label_width(snapshot, "akadns_packets_total", "lane"));
  for (std::size_t i = 0; i < report.lanes.size(); ++i) {
    const obs::LabelSet lane_filter = obs::with({}, "lane", i);
    auto& lane = report.lanes[i];
    lane.packets_received = snapshot.sum("akadns_packets_total", lane_filter);
    lane.responses_sent = snapshot.sum("akadns_responses_sent_total", lane_filter);
    lane.pending = snapshot.sum("akadns_pending", lane_filter);
    fill_drops(lane.drops, snapshot, "akadns_drops_total", lane_filter);
  }

  // Defense accounting lives in its own families: the engine's shed
  // counters mirror the lane drop taxonomy, so they are kept out of
  // akadns_drops_total to keep the canonical sum single-counted.
  report.defense.scored = snapshot.sum("akadns_defense_scored_total");
  report.defense.enqueued = snapshot.sum("akadns_defense_enqueued_total");
  report.defense.released = snapshot.sum("akadns_defense_released_total");
  fill_drops(report.defense.drops, snapshot, "akadns_defense_drops_total", {});
  report.penalty_queue_depths.resize(
      indexed_label_width(snapshot, "akadns_penalty_queue_depth", "queue"));
  for (std::size_t q = 0; q < report.penalty_queue_depths.size(); ++q) {
    report.penalty_queue_depths[q] = static_cast<std::size_t>(
        snapshot.sum("akadns_penalty_queue_depth", obs::with({}, "queue", q)));
  }

  const auto path = [&](const char* name) {
    return snapshot.sum("akadns_answer_path_total", obs::labels({{"path", name}}));
  };
  report.compiled_answers = path("compiled");
  report.cache_hits = path("cache");
  report.interpreted_answers = path("interpreted");
  const auto cache_event = [&](const char* name) {
    return snapshot.sum("akadns_answer_cache_total", obs::labels({{"event", name}}));
  };
  report.cache_evictions = cache_event("eviction");
  report.cache_invalidations = cache_event("invalidation");

  const auto compile_path = [&](const char* name) {
    return snapshot.sum("akadns_zone_compile_total", obs::labels({{"path", name}}));
  };
  report.zone_compiles = compile_path("full");
  report.zone_incremental_compiles = compile_path("incremental");
  report.zone_snapshots_adopted = compile_path("adopted");
  report.zone_compile_micros = snapshot.sum("akadns_zone_compile_micros_total");

  const auto sync_event = [&](const char* name) {
    return snapshot.sum("akadns_zone_sync_total", obs::labels({{"event", name}}));
  };
  report.zone_sync.updates = sync_event("update");
  report.zone_sync.noops = sync_event("noop");
  report.zone_sync.adopted = sync_event("adopted");
  report.zone_sync.deltas_applied = sync_event("delta_applied");
  report.zone_sync.incremental = sync_event("incremental");
  report.zone_sync.full = sync_event("full");
  report.zone_sync.last_latency_ns = snapshot.gauge_value("akadns_zone_sync_last_latency_ns");
  report.zone_sync.max_latency_ns = snapshot.gauge_value("akadns_zone_sync_max_latency_ns");

  report.snapshot = std::move(snapshot);
  return report;
}

DatapathReport collect_datapath(const std::vector<pop::Machine*>& fleet) {
  obs::MetricsSnapshot merged;
  std::vector<const zone::ZoneStore*> seen_stores;  // shared stores count once
  for (std::size_t m = 0; m < fleet.size(); ++m) {
    // A throwaway per-machine registry: instruments are referenced in
    // place and read once by snapshot(), so nothing outlives this scope.
    obs::MetricRegistry reg;
    const obs::LabelSet base = obs::with({}, "machine", m);
    fleet[m]->register_metrics(reg, base);
    const zone::ZoneStore* store = &fleet[m]->zone_store();
    if (std::find(seen_stores.begin(), seen_stores.end(), store) == seen_stores.end()) {
      seen_stores.push_back(store);
      store->compile_stats().register_into(reg, base);
    }
    merged.merge(reg.snapshot());
  }
  return render_datapath(std::move(merged));
}

void TrafficAggregator::record(const dns::DnsName& zone_apex, dns::Rcode rcode, SimTime now) {
  const std::lock_guard<std::mutex> lock(record_mutex_);
  ZoneReport& report = reports_[zone_apex];
  ++report.queries;
  switch (rcode) {
    case dns::Rcode::NoError: ++report.noerror; break;
    case dns::Rcode::NxDomain: ++report.nxdomain; break;
    case dns::Rcode::ServFail: ++report.servfail; break;
    default: break;
  }
  recent_[zone_apex].push_back(now);
  ++total_events_;
}

void TrafficAggregator::attach(pop::Machine& machine, std::function<SimTime()> now_fn) {
  zone::ZoneStore* store = machine.local_store();
  machine.nameserver().set_response_observer(
      [this, store, now_fn = std::move(now_fn)](const dns::Question& question,
                                                dns::Rcode rcode) {
        dns::DnsName apex;  // root = "not a hosted zone" bucket
        if (store) {
          if (const auto zone = store->find_best_zone(question.name)) {
            apex = zone->apex();
          }
        }
        record(apex, rcode, now_fn());
      });
}

const TrafficAggregator::ZoneReport& TrafficAggregator::report_for(
    const dns::DnsName& apex) const {
  static const ZoneReport kEmpty{};
  const auto it = reports_.find(apex);
  return it == reports_.end() ? kEmpty : it->second;
}

double TrafficAggregator::recent_qps(const dns::DnsName& apex, SimTime now) const {
  const auto it = recent_.find(apex);
  if (it == recent_.end()) return 0.0;
  auto& events = it->second;
  const SimTime cutoff = now - rate_window_;
  events.erase(std::remove_if(events.begin(), events.end(),
                              [cutoff](SimTime t) { return t < cutoff; }),
               events.end());
  return static_cast<double>(events.size()) / rate_window_.to_seconds();
}

// ---------------------------------------------------------------------------

std::string to_string(AlertSeverity severity) {
  switch (severity) {
    case AlertSeverity::Info: return "info";
    case AlertSeverity::Warning: return "warning";
    case AlertSeverity::Critical: return "critical";
  }
  return "unknown";
}

void NoccMonitor::raise(SimTime now, AlertSeverity severity, std::string message) {
  alerts_.push_back(Alert{now, severity, std::move(message)});
}

std::size_t NoccMonitor::observe(const std::vector<pop::Machine*>& fleet,
                                 const pop::SuspensionCoordinator& coordinator,
                                 SimTime now) {
  const std::size_t before = alerts_.size();
  if (fleet.empty()) return 0;

  std::size_t not_running = 0, stale = 0;
  for (const auto* machine : fleet) {
    if (!machine->nameserver().running()) ++not_running;
    if (machine->nameserver().is_stale(now)) ++stale;
  }
  const double unhealthy =
      static_cast<double>(not_running) / static_cast<double>(fleet.size());
  if (unhealthy >= config_.unhealthy_critical_fraction) {
    raise(now, AlertSeverity::Critical,
          std::to_string(not_running) + "/" + std::to_string(fleet.size()) +
              " machines out of service");
  } else if (unhealthy >= config_.unhealthy_warning_fraction) {
    raise(now, AlertSeverity::Warning,
          std::to_string(not_running) + "/" + std::to_string(fleet.size()) +
              " machines out of service");
  }
  if (config_.alert_on_staleness && stale > 0) {
    raise(now, AlertSeverity::Warning, std::to_string(stale) + " machines serving stale metadata");
  }
  if (config_.alert_on_quota_exhaustion && coordinator.denied_requests() > last_denied_) {
    raise(now, AlertSeverity::Critical,
          "suspension quota exhausted: " +
              std::to_string(coordinator.denied_requests() - last_denied_) +
              " machines denied self-suspension and serving degraded");
    last_denied_ = coordinator.denied_requests();
  }
  return alerts_.size() - before;
}

std::size_t NoccMonitor::alert_count(AlertSeverity severity) const {
  std::size_t count = 0;
  for (const auto& alert : alerts_) {
    if (alert.severity == severity) ++count;
  }
  return count;
}

}  // namespace akadns::control
