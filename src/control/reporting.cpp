#include "control/reporting.hpp"

#include <algorithm>

namespace akadns::control {

std::string DatapathReport::render() const {
  std::string out = "datapath: received=" + std::to_string(packets_received) +
                    " responded=" + std::to_string(responses_sent) +
                    " pending=" + std::to_string(pending) +
                    " dropped=" + std::to_string(drops.total()) +
                    (conservative() ? "" : " [UNACCOUNTED PACKETS]") + "\n";
  for (std::size_t i = 0; i < kDropReasonCount; ++i) {
    const auto reason = static_cast<DropReason>(i);
    if (drops[reason] == 0) continue;
    out += "  drop/";
    out += to_string(reason);
    out += ": " + std::to_string(drops[reason]) + "\n";
  }
  out += "  answers: compiled=" + std::to_string(compiled_answers) +
         " cached=" + std::to_string(cache_hits) +
         " interpreted=" + std::to_string(interpreted_answers) + " (cache hit rate " +
         std::to_string(cache_hit_rate() * 100.0) + "%" +
         (cache_evictions ? ", evictions=" + std::to_string(cache_evictions) : "") +
         (cache_invalidations ? ", invalidations=" + std::to_string(cache_invalidations) : "") +
         ")\n";
  out += "  publish: compiles=" + std::to_string(zone_compiles) +
         " incremental=" + std::to_string(zone_incremental_compiles) +
         " adopted=" + std::to_string(zone_snapshots_adopted) +
         " compile_time=" + std::to_string(zone_compile_micros) + "us\n";
  if (zone_sync.updates) {
    out += "  propagation: updates=" + std::to_string(zone_sync.updates) +
           " adopted=" + std::to_string(zone_sync.adopted) +
           " incremental=" + std::to_string(zone_sync.incremental) +
           " full=" + std::to_string(zone_sync.full) +
           " noops=" + std::to_string(zone_sync.noops) +
           " max_latency=" + std::to_string(zone_sync.max_latency_ns / 1000) + "us\n";
  }
  out += "  defense: scored=" + std::to_string(defense.scored) +
         " enqueued=" + std::to_string(defense.enqueued) +
         " released=" + std::to_string(defense.released) +
         " shed=" + std::to_string(defense.drops.total()) + "\n";
  if (!penalty_queue_depths.empty()) {
    out += "  penalty_queues:";
    for (std::size_t q = 0; q < penalty_queue_depths.size(); ++q) {
      out += " q" + std::to_string(q) + "=" + std::to_string(penalty_queue_depths[q]);
    }
    out += "\n";
  }
  if (lanes.size() > 1) {
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      const auto& lane = lanes[i];
      out += "  lane[" + std::to_string(i) + "]: received=" +
             std::to_string(lane.packets_received) +
             " responded=" + std::to_string(lane.responses_sent) +
             " pending=" + std::to_string(lane.pending) +
             " dropped=" + std::to_string(lane.drops.total()) +
             (lane.conservative() ? "" : " [UNACCOUNTED PACKETS]") + "\n";
    }
  }
  out += telemetry.render();
  return out;
}

DatapathReport collect_datapath(const std::vector<pop::Machine*>& fleet) {
  DatapathReport report;
  std::vector<const zone::ZoneStore*> seen_stores;  // shared stores count once
  for (const auto* machine : fleet) {
    const auto& ns = machine->nameserver().stats();
    // NIC-level losses never reach the nameserver, so the machine's
    // arrival count is its nameserver's plus those drops.
    report.packets_received +=
        ns.packets_received + machine->stats().drops[DropReason::NicFailure];
    report.responses_sent += ns.responses_sent;
    report.pending += machine->nameserver().pending();
    report.drops.merge(ns.drops);
    report.drops.merge(machine->stats().drops);
    report.telemetry.merge(machine->nameserver().telemetry());

    // Per-lane conservation: fold lane i of this machine into the
    // fleet-wide lane[i] bucket.
    const auto& nameserver = machine->nameserver();
    if (nameserver.lane_count() > report.lanes.size()) {
      report.lanes.resize(nameserver.lane_count());
    }
    for (std::size_t i = 0; i < nameserver.lane_count(); ++i) {
      const auto& lane_stats = nameserver.lane_stats(i);
      auto& lane = report.lanes[i];
      lane.packets_received += lane_stats.packets_received;
      lane.responses_sent += lane_stats.responses_sent;
      lane.pending += nameserver.lane_pending(i);
      lane.drops.merge(lane_stats.drops);
    }

    report.defense.merge(nameserver.defense().stats());
    const auto depths = nameserver.defense().queue_depths();
    if (depths.size() > report.penalty_queue_depths.size()) {
      report.penalty_queue_depths.resize(depths.size(), 0);
    }
    for (std::size_t q = 0; q < depths.size(); ++q) report.penalty_queue_depths[q] += depths[q];

    const auto responder_stats = nameserver.responder_stats();
    report.compiled_answers += responder_stats.compiled_answers;
    report.cache_hits += responder_stats.cache_hits;
    report.interpreted_answers += responder_stats.interpreted_answers;
    const auto cache_stats = nameserver.answer_cache_stats();
    report.cache_evictions += cache_stats.evictions;
    report.cache_invalidations += cache_stats.invalidations;
    const zone::ZoneStore* store = &machine->zone_store();
    if (std::find(seen_stores.begin(), seen_stores.end(), store) == seen_stores.end()) {
      seen_stores.push_back(store);
      report.zone_compiles += store->compile_stats().compiles;
      report.zone_incremental_compiles += store->compile_stats().incremental_compiles;
      report.zone_snapshots_adopted += store->compile_stats().adopted;
      report.zone_compile_micros += store->compile_stats().total_micros;
    }
    if (const auto* sync = machine->zone_sync_stats()) report.zone_sync.merge(*sync);
  }
  return report;
}

void TrafficAggregator::record(const dns::DnsName& zone_apex, dns::Rcode rcode, SimTime now) {
  const std::lock_guard<std::mutex> lock(record_mutex_);
  ZoneReport& report = reports_[zone_apex];
  ++report.queries;
  switch (rcode) {
    case dns::Rcode::NoError: ++report.noerror; break;
    case dns::Rcode::NxDomain: ++report.nxdomain; break;
    case dns::Rcode::ServFail: ++report.servfail; break;
    default: break;
  }
  recent_[zone_apex].push_back(now);
  ++total_events_;
}

void TrafficAggregator::attach(pop::Machine& machine, std::function<SimTime()> now_fn) {
  zone::ZoneStore* store = machine.local_store();
  machine.nameserver().set_response_observer(
      [this, store, now_fn = std::move(now_fn)](const dns::Question& question,
                                                dns::Rcode rcode) {
        dns::DnsName apex;  // root = "not a hosted zone" bucket
        if (store) {
          if (const auto zone = store->find_best_zone(question.name)) {
            apex = zone->apex();
          }
        }
        record(apex, rcode, now_fn());
      });
}

const TrafficAggregator::ZoneReport& TrafficAggregator::report_for(
    const dns::DnsName& apex) const {
  static const ZoneReport kEmpty{};
  const auto it = reports_.find(apex);
  return it == reports_.end() ? kEmpty : it->second;
}

double TrafficAggregator::recent_qps(const dns::DnsName& apex, SimTime now) const {
  const auto it = recent_.find(apex);
  if (it == recent_.end()) return 0.0;
  auto& events = it->second;
  const SimTime cutoff = now - rate_window_;
  events.erase(std::remove_if(events.begin(), events.end(),
                              [cutoff](SimTime t) { return t < cutoff; }),
               events.end());
  return static_cast<double>(events.size()) / rate_window_.to_seconds();
}

// ---------------------------------------------------------------------------

std::string to_string(AlertSeverity severity) {
  switch (severity) {
    case AlertSeverity::Info: return "info";
    case AlertSeverity::Warning: return "warning";
    case AlertSeverity::Critical: return "critical";
  }
  return "unknown";
}

void NoccMonitor::raise(SimTime now, AlertSeverity severity, std::string message) {
  alerts_.push_back(Alert{now, severity, std::move(message)});
}

std::size_t NoccMonitor::observe(const std::vector<pop::Machine*>& fleet,
                                 const pop::SuspensionCoordinator& coordinator,
                                 SimTime now) {
  const std::size_t before = alerts_.size();
  if (fleet.empty()) return 0;

  std::size_t not_running = 0, stale = 0;
  for (const auto* machine : fleet) {
    if (!machine->nameserver().running()) ++not_running;
    if (machine->nameserver().is_stale(now)) ++stale;
  }
  const double unhealthy =
      static_cast<double>(not_running) / static_cast<double>(fleet.size());
  if (unhealthy >= config_.unhealthy_critical_fraction) {
    raise(now, AlertSeverity::Critical,
          std::to_string(not_running) + "/" + std::to_string(fleet.size()) +
              " machines out of service");
  } else if (unhealthy >= config_.unhealthy_warning_fraction) {
    raise(now, AlertSeverity::Warning,
          std::to_string(not_running) + "/" + std::to_string(fleet.size()) +
              " machines out of service");
  }
  if (config_.alert_on_staleness && stale > 0) {
    raise(now, AlertSeverity::Warning, std::to_string(stale) + " machines serving stale metadata");
  }
  if (config_.alert_on_quota_exhaustion && coordinator.denied_requests() > last_denied_) {
    raise(now, AlertSeverity::Critical,
          "suspension quota exhausted: " +
              std::to_string(coordinator.denied_requests() - last_denied_) +
              " machines denied self-suspension and serving degraded");
    last_denied_ = coordinator.denied_requests();
  }
  return alerts_.size() - before;
}

std::size_t NoccMonitor::alert_count(AlertSeverity severity) const {
  std::size_t count = 0;
  for (const auto& alert : alerts_) {
    if (alert.severity == severity) ++count;
  }
  return count;
}

}  // namespace akadns::control
