# Empty compiler generated dependencies file for akadns_resolver.
# This may be replaced when dependencies are built.
