// §3.1 in-text claim: "DNS traffic spreads approximately uniformly
// across the machines at sufficiently large volumes. However, resolvers
// that do not use a random ephemeral source port will always be
// forwarded to the same machine."
//
// Measures ECMP load spread across PoP machines under the calibrated
// resolver population (including its fixed-port minority) and the
// per-flow stickiness property.

#include <map>

#include "bench_util.hpp"
#include "pop/pop.hpp"
#include "workload/queries.hpp"
#include "zone/zone_builder.hpp"

using namespace akadns;

int main() {
  bench::heading("ECMP query spread across PoP machines",
                 "§3.1 — ~uniform at volume; fixed-port resolvers stick to one machine");

  EventScheduler sched;
  netsim::Network net(sched, {}, 1);
  const auto router = net.add_node("router");
  const auto upstream = net.add_node("upstream");
  net.add_link(upstream, router, Duration::millis(5), netsim::LinkKind::ProviderToCustomer);
  zone::ZoneStore store;
  store.publish(zone::ZoneBuilder("example.com", 1)
                    .ns("@", "ns1.example.com")
                    .a("ns1", "10.0.0.1")
                    .build());
  pop::Pop pop({.id = "p1", .router_node = router}, net);
  constexpr std::size_t kMachines = 6;
  for (std::size_t i = 0; i < kMachines; ++i) {
    pop.add_machine({.id = "m" + std::to_string(i)}, store).speaker().advertise(1);
  }

  workload::ResolverPopulation population({.resolver_count = 20'000, .asn_count = 500}, 2);
  workload::HostedZones zones({.zone_count = 100}, 3);
  workload::QueryGenerator generator(population, zones, 4);

  std::map<std::string, std::uint64_t> per_machine;
  std::map<std::string, std::map<std::string, std::uint64_t>> fixed_port_hits;
  const int kQueries = 200'000;
  for (int i = 0; i < kQueries; ++i) {
    const auto query = generator.next();
    pop::Machine* machine = pop.ecmp_select(1, query.source);
    ++per_machine[machine->id()];
    if (!population.resolver(query.resolver_index).random_ports) {
      ++fixed_port_hits[query.source.addr.to_string()][machine->id()];
    }
  }

  bench::subheading("per-machine share of 200K queries (ideal: 16.7% each)");
  for (const auto& [id, count] : per_machine) {
    const double share = static_cast<double>(count) / kQueries;
    std::printf("  %-6s %8.2f%%  |%s|\n", id.c_str(), 100 * share,
                render_bar(share * kMachines, 40).c_str());
  }
  double max_dev = 0;
  for (const auto& [id, count] : per_machine) {
    max_dev = std::max(max_dev,
                       std::abs(static_cast<double>(count) / kQueries - 1.0 / kMachines));
  }
  bench::print_row("max deviation from uniform", 100 * max_dev, "pp");

  bench::subheading("fixed-source-port resolvers (always one machine)");
  std::size_t single_machine = 0, multi_machine = 0;
  for (const auto& [source, hits] : fixed_port_hits) {
    (hits.size() == 1 ? single_machine : multi_machine) += 1;
  }
  bench::print_row("fixed-port resolvers pinned to one machine",
                   100.0 * static_cast<double>(single_machine) /
                       std::max<std::size_t>(1, single_machine + multi_machine),
                   "%");
  bench::print_count_row("fixed-port resolvers observed", single_machine + multi_machine);
  return 0;
}
