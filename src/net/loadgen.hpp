// akadns-loadgen: self-play load generation over real sockets.
//
// Blasts a ReplayCorpus (workload/replay.hpp — legitimate + attack mix)
// at an authoritative server over UDP, recvmmsg/sendmmsg-batched with a
// bounded in-flight window per socket, and reports achieved qps plus
// latency percentiles. Several client sockets run in parallel threads —
// each gets its own ephemeral source port, which is exactly what spreads
// the flows across the server's SO_REUSEPORT workers (the kernel hashes
// the 4-tuple, as it would hash real resolvers).
//
// Self-play verification: when the corpus was built from the same
// (zones, seed) the server publishes, expected_responses() computes the
// byte-exact answer for every corpus entry through the simulator's own
// Responder, and the loadgen compares each received datagram against it
// (transaction id aside). A mismatch means the socket frontend and the
// sim datapath diverged — the differential property the loopback test
// pins, kept continuously measurable under load.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_time.hpp"
#include "common/stats.hpp"
#include "server/responder.hpp"
#include "workload/replay.hpp"
#include "zone/zone_store.hpp"

namespace akadns::net {

struct LoadgenConfig {
  /// Server address (v4) and UDP port.
  Endpoint target;
  /// Parallel client sockets, one thread each.
  std::size_t sockets = 4;
  /// Datagrams per sendmmsg/recvmmsg syscall.
  std::size_t batch = 32;
  /// Max in-flight queries per socket (must stay < 65536: the DNS
  /// transaction id doubles as the window slot).
  std::size_t window = 512;
  /// Queries to send in total, spread across sockets.
  std::uint64_t total_queries = 100'000;
  /// How long to wait for stragglers after the last send before
  /// declaring the remainder dropped.
  Duration response_timeout = Duration::millis(1000);
  int rcvbuf = 1 << 22;
  int sndbuf = 1 << 22;
};

/// Per-traffic-class accounting (legitimate vs attack, per the corpus
/// entry's is_attack flag). Under an attack mix with the server's defense
/// on, the interesting quantity is not aggregate loss but *who* lost:
/// legit goodput should hold while attack traffic is shed.
struct ClassCounters {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t dropped = 0;     // timed out waiting
  std::uint64_t mismatched = 0;  // byte-compare against expected failed

  /// Fraction of sent queries answered (1.0 when nothing was sent).
  double goodput() const noexcept {
    return sent == 0 ? 1.0 : static_cast<double>(received) / static_cast<double>(sent);
  }

  void merge(const ClassCounters& o) noexcept {
    sent += o.sent;
    received += o.received;
    dropped += o.dropped;
    mismatched += o.mismatched;
  }
};

struct LoadgenReport {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t dropped = 0;     // timed out waiting
  std::uint64_t mismatched = 0;  // byte-compare against expected failed
  std::uint64_t unexpected = 0;  // response id matching nothing in flight
  double seconds = 0.0;          // wall time of the whole run
  double qps = 0.0;              // received / seconds
  /// Round-trip latency in microseconds.
  double p50_us = 0.0, p90_us = 0.0, p99_us = 0.0, p999_us = 0.0, max_us = 0.0;
  LogHistogram latency_ns;  // merged raw histogram (ns)
  /// The same counters split by traffic class.
  ClassCounters legit;
  ClassCounters attack;
};

/// Runs the sim Responder over every corpus entry and returns the
/// expected wire response per entry (transaction id 0). Pass the same
/// ResponderConfig the server runs with.
std::vector<std::vector<std::uint8_t>> expected_responses(
    const workload::ReplayCorpus& corpus, const zone::ZoneStore& store,
    const server::ResponderConfig& responder_config = {});

class Loadgen {
 public:
  /// `expected` may be empty (no verification). When non-empty it must
  /// be index-aligned with the corpus.
  Loadgen(LoadgenConfig config, const workload::ReplayCorpus& corpus,
          std::vector<std::vector<std::uint8_t>> expected = {});

  /// Blocks until every query is sent and answered (or timed out).
  LoadgenReport run();

 private:
  LoadgenConfig config_;
  const workload::ReplayCorpus& corpus_;
  std::vector<std::vector<std::uint8_t>> expected_;
};

}  // namespace akadns::net
