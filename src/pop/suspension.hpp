// Suspension-quota coordination (§4.2.1).
//
// "There is a danger to self-suspension if the nameserver failure is
// widespread or the bug is in the monitoring agent itself. Either could
// lead to widespread self-suspension, significantly reducing capacity.
// The Monitoring/Automated Recovery system prevents such scenarios by
// limiting concurrent nameserver suspensions using a distributed
// consensus algorithm."
//
// We model the *decision* the consensus system implements — a global
// quota on concurrently suspended machines — behind an interface a real
// deployment would back with Paxos/Raft. Grant order is first-come,
// first-served; a machine holding a grant must release it on resume.
// The quota arithmetic itself lives in suspension_policy.hpp, shared
// verbatim with the real-process fleet's probe suite (src/fleet/).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>

#include "pop/suspension_policy.hpp"

namespace akadns::pop {

class SuspensionCoordinator {
 public:
  using Config = SuspensionQuotaConfig;

  SuspensionCoordinator() = default;
  explicit SuspensionCoordinator(Config config) : config_(config) {}

  /// Registers a machine in the fleet (idempotent).
  void register_machine(const std::string& machine_id);
  void unregister_machine(const std::string& machine_id);

  /// Requests permission to self-suspend. Grants iff the quota allows.
  /// A machine that already holds a grant is re-granted trivially.
  bool request_suspension(const std::string& machine_id);

  /// Releases a grant (machine resumed or restarted healthy).
  void release(const std::string& machine_id);

  bool is_suspended(const std::string& machine_id) const;
  std::size_t suspended_count() const noexcept { return suspended_.size(); }
  std::size_t fleet_size() const noexcept { return fleet_.size(); }
  std::size_t quota() const noexcept;
  std::uint64_t denied_requests() const noexcept { return denied_; }

 private:
  Config config_;
  std::unordered_set<std::string> fleet_;
  std::unordered_set<std::string> suspended_;
  std::uint64_t denied_ = 0;
};

}  // namespace akadns::pop
