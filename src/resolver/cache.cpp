#include "resolver/cache.hpp"

#include <algorithm>

namespace akadns::resolver {

ResolverCache::ResolverCache(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {}

void ResolverCache::insert(const dns::DnsName& name, dns::RecordType type,
                           std::vector<dns::ResourceRecord> records, SimTime now) {
  if (records.empty()) return;
  CacheEntry entry;
  entry.expires_at = now + Duration::seconds(records.front().ttl);
  entry.records = std::move(records);
  const Key key{name, type};
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    if (entries_.size() >= capacity_) evict_lru();
    lru_.push_front(key);
    entries_.emplace(key, Slot{std::move(entry), lru_.begin()});
  } else {
    it->second.entry = std::move(entry);
    touch(key, it->second);
  }
}

void ResolverCache::insert_negative(const dns::DnsName& name, dns::RecordType type,
                                    dns::Rcode rcode, std::uint32_t ttl_seconds, SimTime now) {
  CacheEntry entry;
  entry.negative = true;
  entry.negative_rcode = rcode;
  entry.expires_at = now + Duration::seconds(ttl_seconds);
  const Key key{name, type};
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    if (entries_.size() >= capacity_) evict_lru();
    lru_.push_front(key);
    entries_.emplace(key, Slot{std::move(entry), lru_.begin()});
  } else {
    it->second.entry = std::move(entry);
    touch(key, it->second);
  }
}

std::optional<CacheEntry> ResolverCache::lookup(const dns::DnsName& name,
                                                dns::RecordType type, SimTime now) {
  const Key key{name, type};
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  if (it->second.entry.expires_at <= now) {
    lru_.erase(it->second.lru_position);
    entries_.erase(it);
    ++misses_;
    return std::nullopt;
  }
  touch(key, it->second);
  ++hits_;
  CacheEntry out = it->second.entry;
  // Rewrite TTLs to the remaining lifetime (what a resolver serves).
  const auto remaining =
      static_cast<std::uint32_t>(std::max<std::int64_t>(0, (out.expires_at - now).count_nanos() / 1'000'000'000));
  for (auto& rr : out.records) rr.ttl = remaining;
  return out;
}

bool ResolverCache::evict(const dns::DnsName& name, dns::RecordType type) {
  const Key key{name, type};
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  lru_.erase(it->second.lru_position);
  entries_.erase(it);
  return true;
}

void ResolverCache::clear() {
  entries_.clear();
  lru_.clear();
}

void ResolverCache::touch(const Key& key, Slot& slot) {
  lru_.erase(slot.lru_position);
  lru_.push_front(key);
  slot.lru_position = lru_.begin();
}

void ResolverCache::evict_lru() {
  if (lru_.empty()) return;
  entries_.erase(lru_.back());
  lru_.pop_back();
}

}  // namespace akadns::resolver
