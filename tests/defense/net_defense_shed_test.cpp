// Loopback attack-shedding test: the socket frontend with the defense
// engine on must keep legitimate self-play traffic flowing while a
// random-subdomain flood sharing the same sockets is classified and
// shed. This is the real-socket rendition of the sim's §4.3.3 attack
// integration test — same filters, wall clock, kernel in the loop.
//
// Assertions are deliberately scale-free (class goodput ORDERING plus
// nonzero shed counters, not absolute rates) so the test holds under
// sanitizers and loaded CI machines.

#include <gtest/gtest.h>

#include "dns/wire.hpp"
#include "net/loadgen.hpp"
#include "net/server.hpp"
#include "workload/population.hpp"
#include "workload/replay.hpp"
#include "workload/zones.hpp"

namespace akadns::net {
namespace {

TEST(NetDefenseShed, LegitGoodputSurvivesRandomSubdomainFlood) {
  workload::HostedZonesConfig zc;
  zc.zone_count = 60;
  workload::HostedZones zones(zc, 11);
  workload::PopulationConfig pc;
  pc.resolver_count = 1500;
  workload::ResolverPopulation population(pc, 11 ^ 0xC0FFEEULL);

  workload::ReplayMixConfig mix;
  mix.corpus_size = 2048;
  mix.attack_fraction = 0.5;
  mix.random_subdomain_weight = 1.0;  // the content-discriminable attack
  mix.direct_query_weight = 0.0;
  mix.spoofed_weight = 0.0;
  mix.seed = 11;
  workload::ReplayCorpus corpus(mix, population, zones);
  ASSERT_GT(corpus.attack_count(), 0u);

  ServeConfig config;
  config.port = 0;  // ephemeral
  config.workers = 2;
  config.defense.enabled = true;
  config.defense.compute_qps = 4000.0;
  config.defense.nxdomain_threshold = 4;
  config.defense.nxdomain_penalty = 200.0;  // >= S_max: discard outright

  Server server(config, zones.store());
  auto started = server.start();
  ASSERT_TRUE(started) << started.error();

  LoadgenConfig lg;
  lg.target = Endpoint{IpAddr(Ipv4Addr(127, 0, 0, 1)), server.udp_port()};
  lg.sockets = 2;
  lg.batch = 32;
  lg.window = 512;
  lg.total_queries = 12000;
  lg.response_timeout = Duration::millis(400);

  Loadgen loadgen(lg, corpus, expected_responses(corpus, zones.store()));
  const auto report = loadgen.run();
  server.stop();

  // Both classes were actually exercised.
  EXPECT_GT(report.legit.sent, 0u);
  EXPECT_GT(report.attack.sent, 0u);

  // The defense discriminated: legitimate goodput strictly dominates
  // attack goodput, and every legit answer byte-matched the reference
  // responder (shedding must not corrupt the surviving datapath).
  EXPECT_GT(report.legit.goodput(), report.attack.goodput());
  EXPECT_EQ(report.legit.mismatched, 0u);

  // The shed is visible in the server's defense telemetry: queries were
  // scored, and armed-zone probes were discarded by score.
  const auto stats = server.stats();
  EXPECT_TRUE(stats.defense_enabled);
  EXPECT_GT(stats.defense.scored, 0u);
  EXPECT_GT(stats.defense.drops[DropReason::ScoreDiscard], 0u);
  EXPECT_EQ(stats.per_worker_defense.size(), config.workers);
}

TEST(NetDefenseShed, QueryOfDeathRulesDropOnTheReceivePath) {
  workload::HostedZonesConfig zc;
  zc.zone_count = 8;
  workload::HostedZones zones(zc, 3);
  workload::PopulationConfig pc;
  pc.resolver_count = 200;
  workload::ResolverPopulation population(pc, 3 ^ 0xC0FFEEULL);
  workload::ReplayMixConfig mix;
  mix.corpus_size = 256;
  mix.seed = 3;
  workload::ReplayCorpus corpus(mix, population, zones);

  // Firewall a qname the corpus provably replays: the first entry's.
  const auto& first = corpus.entries().front();
  auto view = dns::decode_query_view(first.wire);
  ASSERT_TRUE(view);
  const dns::DnsName qname = view.value().question.name;

  ServeConfig config;
  config.port = 0;
  config.workers = 1;
  config.defense.enabled = false;  // rule table is consulted either way
  config.defense.qod_rules.push_back(qname);

  Server server(config, zones.store());
  auto started = server.start();
  ASSERT_TRUE(started) << started.error();

  LoadgenConfig lg;
  lg.target = Endpoint{IpAddr(Ipv4Addr(127, 0, 0, 1)), server.udp_port()};
  lg.sockets = 1;
  lg.window = 64;
  lg.total_queries = 512;
  lg.response_timeout = Duration::millis(300);

  Loadgen loadgen(lg, corpus, {});
  const auto report = loadgen.run();
  server.stop();

  const auto stats = server.stats();
  EXPECT_EQ(stats.firewall_rules, 1u);
  // The firewalled name was queried (the corpus replays every entry at
  // least once) and silently dropped — visible only in defense drops.
  EXPECT_GT(stats.defense.drops[DropReason::Firewall], 0u);
  EXPECT_EQ(report.received + report.dropped, report.sent);
}

}  // namespace
}  // namespace akadns::net
