#include "dns/rr.hpp"

#include "common/strings.hpp"

namespace akadns::dns {

std::string to_string(RecordType t) {
  switch (t) {
    case RecordType::A: return "A";
    case RecordType::NS: return "NS";
    case RecordType::CNAME: return "CNAME";
    case RecordType::SOA: return "SOA";
    case RecordType::PTR: return "PTR";
    case RecordType::MX: return "MX";
    case RecordType::TXT: return "TXT";
    case RecordType::AAAA: return "AAAA";
    case RecordType::SRV: return "SRV";
    case RecordType::OPT: return "OPT";
    case RecordType::IXFR: return "IXFR";
    case RecordType::AXFR: return "AXFR";
    case RecordType::ANY: return "ANY";
    case RecordType::CAA: return "CAA";
  }
  return "TYPE" + std::to_string(static_cast<std::uint16_t>(t));
}

std::string to_string(Rcode r) {
  switch (r) {
    case Rcode::NoError: return "NOERROR";
    case Rcode::FormErr: return "FORMERR";
    case Rcode::ServFail: return "SERVFAIL";
    case Rcode::NxDomain: return "NXDOMAIN";
    case Rcode::NotImp: return "NOTIMP";
    case Rcode::Refused: return "REFUSED";
  }
  return "RCODE" + std::to_string(static_cast<int>(r));
}

std::optional<RecordType> parse_record_type(std::string_view text) {
  const std::string upper = [&] {
    std::string s(text);
    for (auto& c : s) c = (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
    return s;
  }();
  if (upper == "A") return RecordType::A;
  if (upper == "NS") return RecordType::NS;
  if (upper == "CNAME") return RecordType::CNAME;
  if (upper == "SOA") return RecordType::SOA;
  if (upper == "PTR") return RecordType::PTR;
  if (upper == "MX") return RecordType::MX;
  if (upper == "TXT") return RecordType::TXT;
  if (upper == "AAAA") return RecordType::AAAA;
  if (upper == "SRV") return RecordType::SRV;
  if (upper == "CAA") return RecordType::CAA;
  if (upper == "IXFR") return RecordType::IXFR;
  if (upper == "AXFR") return RecordType::AXFR;
  if (upper == "ANY") return RecordType::ANY;
  return std::nullopt;
}

RecordType rdata_type(const RData& rdata) noexcept {
  return std::visit(
      [](const auto& r) -> RecordType {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, ARecord>) return RecordType::A;
        else if constexpr (std::is_same_v<T, AaaaRecord>) return RecordType::AAAA;
        else if constexpr (std::is_same_v<T, NsRecord>) return RecordType::NS;
        else if constexpr (std::is_same_v<T, CnameRecord>) return RecordType::CNAME;
        else if constexpr (std::is_same_v<T, SoaRecord>) return RecordType::SOA;
        else if constexpr (std::is_same_v<T, TxtRecord>) return RecordType::TXT;
        else if constexpr (std::is_same_v<T, MxRecord>) return RecordType::MX;
        else if constexpr (std::is_same_v<T, PtrRecord>) return RecordType::PTR;
        else if constexpr (std::is_same_v<T, SrvRecord>) return RecordType::SRV;
        else if constexpr (std::is_same_v<T, CaaRecord>) return RecordType::CAA;
        else return static_cast<RecordType>(r.type);
      },
      rdata);
}

std::string rdata_to_string(const RData& rdata) {
  return std::visit(
      [](const auto& r) -> std::string {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, ARecord>) {
          return r.address.to_string();
        } else if constexpr (std::is_same_v<T, AaaaRecord>) {
          return r.address.to_string();
        } else if constexpr (std::is_same_v<T, NsRecord>) {
          return r.nameserver.to_string();
        } else if constexpr (std::is_same_v<T, CnameRecord>) {
          return r.target.to_string();
        } else if constexpr (std::is_same_v<T, SoaRecord>) {
          return r.mname.to_string() + " " + r.rname.to_string() + " " +
                 std::to_string(r.serial) + " " + std::to_string(r.refresh) + " " +
                 std::to_string(r.retry) + " " + std::to_string(r.expire) + " " +
                 std::to_string(r.minimum);
        } else if constexpr (std::is_same_v<T, TxtRecord>) {
          std::string out;
          for (std::size_t i = 0; i < r.strings.size(); ++i) {
            if (i) out += ' ';
            out += '"' + r.strings[i] + '"';
          }
          return out;
        } else if constexpr (std::is_same_v<T, MxRecord>) {
          return std::to_string(r.preference) + " " + r.exchange.to_string();
        } else if constexpr (std::is_same_v<T, PtrRecord>) {
          return r.target.to_string();
        } else if constexpr (std::is_same_v<T, SrvRecord>) {
          return std::to_string(r.priority) + " " + std::to_string(r.weight) + " " +
                 std::to_string(r.port) + " " + r.target.to_string();
        } else if constexpr (std::is_same_v<T, CaaRecord>) {
          return std::to_string(static_cast<int>(r.flags)) + " " + r.tag + " \"" + r.value + '"';
        } else {
          return "\\# " + std::to_string(r.data.size());
        }
      },
      rdata);
}

std::string ResourceRecord::to_string() const {
  return name.to_string() + " " + std::to_string(ttl) + " IN " + dns::to_string(type()) + " " +
         rdata_to_string(rdata);
}

ResourceRecord make_a(const DnsName& name, Ipv4Addr addr, std::uint32_t ttl) {
  return ResourceRecord{name, RecordClass::IN, ttl, ARecord{addr}};
}

ResourceRecord make_aaaa(const DnsName& name, Ipv6Addr addr, std::uint32_t ttl) {
  return ResourceRecord{name, RecordClass::IN, ttl, AaaaRecord{addr}};
}

ResourceRecord make_ns(const DnsName& name, const DnsName& ns, std::uint32_t ttl) {
  return ResourceRecord{name, RecordClass::IN, ttl, NsRecord{ns}};
}

ResourceRecord make_cname(const DnsName& name, const DnsName& target, std::uint32_t ttl) {
  return ResourceRecord{name, RecordClass::IN, ttl, CnameRecord{target}};
}

ResourceRecord make_soa(const DnsName& name, const DnsName& mname, const DnsName& rname,
                        std::uint32_t serial, std::uint32_t ttl, std::uint32_t minimum) {
  SoaRecord soa;
  soa.mname = mname;
  soa.rname = rname;
  soa.serial = serial;
  soa.refresh = 3600;
  soa.retry = 600;
  soa.expire = 604800;
  soa.minimum = minimum;
  return ResourceRecord{name, RecordClass::IN, ttl, soa};
}

ResourceRecord make_txt(const DnsName& name, std::string text, std::uint32_t ttl) {
  TxtRecord txt;
  txt.strings.push_back(std::move(text));
  return ResourceRecord{name, RecordClass::IN, ttl, txt};
}

}  // namespace akadns::dns
