file(REMOVE_RECURSE
  "CMakeFiles/test_resolver.dir/resolver/cache_test.cpp.o"
  "CMakeFiles/test_resolver.dir/resolver/cache_test.cpp.o.d"
  "CMakeFiles/test_resolver.dir/resolver/iterative_resolver_test.cpp.o"
  "CMakeFiles/test_resolver.dir/resolver/iterative_resolver_test.cpp.o.d"
  "CMakeFiles/test_resolver.dir/resolver/selection_test.cpp.o"
  "CMakeFiles/test_resolver.dir/resolver/selection_test.cpp.o.d"
  "CMakeFiles/test_resolver.dir/resolver/tcp_fallback_test.cpp.o"
  "CMakeFiles/test_resolver.dir/resolver/tcp_fallback_test.cpp.o.d"
  "test_resolver"
  "test_resolver.pdb"
  "test_resolver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
