// Legitimate query-stream generation, combining the resolver population
// (who asks), zone popularity (what for) and per-resolver burstiness
// (Figure 3: the workload is bursty — one modestly-loaded nameserver
// sees a max of 2,352 qps against a highest per-resolver average of
// 173 qps, and fewer than 1% of resolvers average over 1 qps).
#pragma once

#include "common/sim_time.hpp"
#include "workload/population.hpp"
#include "workload/zones.hpp"

#include "dns/message.hpp"

namespace akadns::workload {

/// One generated query, abstract (not yet wire-encoded).
struct GeneratedQuery {
  std::size_t resolver_index = 0;
  Endpoint source;
  std::uint8_t ip_ttl = 64;
  dns::DnsName qname;
  dns::RecordType qtype = dns::RecordType::A;
};

class QueryGenerator {
 public:
  QueryGenerator(const ResolverPopulation& population, const HostedZones& zones,
                 std::uint64_t seed);

  /// Samples one legitimate query (weighted resolver, weighted zone,
  /// valid hostname, random ephemeral port when the resolver uses them).
  GeneratedQuery next();

  /// Wire-encodes a generated query with a fresh transaction id.
  std::vector<std::uint8_t> encode(const GeneratedQuery& query);

  Rng& rng() noexcept { return rng_; }

 private:
  const ResolverPopulation& population_;
  const HostedZones& zones_;
  Rng rng_;
  std::uint16_t next_id_ = 1;
};

/// Per-resolver bursty arrival model: a two-state (ON/OFF) modulated
/// Poisson process. A resolver with long-run average rate `mean_qps`
/// spends `on_fraction` of the time in bursts at rate mean/on_fraction.
/// Used by the Figure 3 bench to produce avg/max qps distributions.
struct BurstModel {
  double on_fraction = 0.15;
  Duration mean_burst = Duration::seconds(30);

  /// Simulates per-second query counts over `seconds` and returns
  /// (average qps, maximum 1-second qps).
  std::pair<double, double> simulate_day(double mean_qps, std::uint32_t seconds,
                                         Rng& rng) const;
};

}  // namespace akadns::workload
