// Failure-resilience scenarios of §4.2, end to end on the platform:
//   A) machine-level failures -> self-suspension -> traffic shifts
//      (§4.2.1), bounded by the suspension quota;
//   B) stale state from partial connectivity -> suspension -> catch-up
//      (§4.2.2);
//   C) input-induced widespread crash -> input-delayed nameservers keep
//      answering with intentionally stale data (§4.2.3);
//   D) query-of-death -> firewall rule -> crash rate limited to 1/T_QoD
//      (§4.2.4).

#include "bench_util.hpp"
#include "dns/wire.hpp"
#include "control/machine_subscriber.hpp"
#include "pop/monitoring_agent.hpp"
#include "pop/pop.hpp"
#include "zone/zone_builder.hpp"

using namespace akadns;

namespace {

zone::Zone example_zone(std::uint32_t serial = 1) {
  return zone::ZoneBuilder("ex.com", serial)
      .soa("ns1.ex.com", "hostmaster.ex.com", serial)
      .ns("@", "ns1.ex.com")
      .a("ns1", "10.0.0.1")
      .a("www", "93.184.216.34")
      .build();
}

void scenario_a_machine_failures() {
  bench::subheading("A) machine failures -> self-suspension under quota (§4.2.1)");
  EventScheduler sched;
  zone::ZoneStore store;
  store.publish(example_zone());
  pop::SuspensionCoordinator coordinator({.max_suspended_fraction = 0.25, .min_allowed = 1});
  std::vector<std::unique_ptr<pop::Machine>> machines;
  std::vector<std::unique_ptr<pop::MonitoringAgent>> agents;
  constexpr std::size_t kFleet = 12;
  for (std::size_t i = 0; i < kFleet; ++i) {
    machines.push_back(std::make_unique<pop::Machine>(
        pop::MachineConfig{.id = "m" + std::to_string(i)}, store));
    machines.back()->nameserver().metadata_updated(sched.now());
    machines.back()->speaker().advertise(1);
    agents.push_back(std::make_unique<pop::MonitoringAgent>(*machines.back(), store,
                                                            coordinator, sched));
  }
  // Three isolated hardware failures: all suspended (quota 3).
  machines[0]->inject_failure(pop::FailureType::Disk);
  machines[1]->inject_failure(pop::FailureType::Memory);
  machines[2]->inject_failure(pop::FailureType::Nic);
  for (auto& agent : agents) agent->check_now();
  std::size_t suspended = 0, advertising = 0;
  for (auto& m : machines) {
    if (m->nameserver().state() == server::ServerState::SelfSuspended) ++suspended;
    if (m->speaker().advertising(1)) ++advertising;
  }
  bench::print_row("isolated failures suspended", static_cast<double>(suspended), "/ 3");
  bench::print_row("machines still advertising", static_cast<double>(advertising), "");

  // Widespread failure (bad release): quota caps the damage.
  for (auto& m : machines) m->inject_failure(pop::FailureType::SoftwareBug);
  for (auto& agent : agents) agent->check_now();
  suspended = advertising = 0;
  for (auto& m : machines) {
    if (m->nameserver().state() == server::ServerState::SelfSuspended) ++suspended;
    if (m->speaker().advertising(1)) ++advertising;
  }
  bench::print_row("widespread failure: suspended (quota = 3)",
                   static_cast<double>(suspended), "/ 12");
  bench::print_row("degraded-but-serving machines", static_cast<double>(advertising), "");

  // Recovery: failures cleared, everyone back.
  for (auto& m : machines) m->clear_failure();
  for (int round = 0; round < 6; ++round) {
    for (auto& agent : agents) agent->check_now();
  }
  advertising = 0;
  for (auto& m : machines) {
    if (m->speaker().advertising(1)) ++advertising;
  }
  bench::print_row("after recovery: advertising", static_cast<double>(advertising),
                   "/ 12");
}

void scenario_b_stale_state() {
  bench::subheading("B) partial connectivity -> stale -> suspend -> catch up (§4.2.2)");
  EventScheduler sched;
  control::ControlPlane plane(sched, 5);
  control::SchedulerClock clock(sched);
  propagation::ZonePublisher publisher(clock);
  pop::Machine machine(
      {.id = "edge", .nameserver = {.staleness_threshold = Duration::seconds(30)}});
  control::subscribe_machine_to_zone(plane, machine, dns::DnsName::from("ex.com"));
  control::subscribe_machine_to_mapping(plane, machine);
  pop::SuspensionCoordinator coordinator;
  pop::MonitoringAgent agent(machine, *machine.local_store(), coordinator, sched);
  machine.speaker().advertise(1);
  control::publish_zone(plane, publisher, example_zone(1));
  sched.run();
  agent.check_now();
  bench::print_row("healthy and serving", machine.nameserver().running() ? 1 : 0, "(1=yes)");

  machine.inject_failure(pop::FailureType::PartialConnectivity);
  control::publish_zone(plane, publisher, example_zone(2));
  sched.run_until(sched.now() + Duration::minutes(2));
  agent.check_now();
  bench::print_row("stale after transit-link failure; suspended",
                   machine.nameserver().state() == server::ServerState::SelfSuspended ? 1
                                                                                      : 0,
                   "(1=yes)");
  bench::print_row("zone serial while partitioned",
                   static_cast<double>(
                       machine.local_store()->find_zone(dns::DnsName::from("ex.com"))
                           ->serial()),
                   "(published: 2)");
  machine.clear_failure();
  sched.run_until(sched.now() + Duration::seconds(30));
  agent.check_now();
  bench::print_row("zone serial after catch-up",
                   static_cast<double>(
                       machine.local_store()->find_zone(dns::DnsName::from("ex.com"))
                           ->serial()),
                   "");
  bench::print_row("resumed serving", machine.nameserver().running() ? 1 : 0, "(1=yes)");
}

void scenario_c_input_delayed() {
  bench::subheading("C) poisoned input -> input-delayed nameservers absorb (§4.2.3)");
  EventScheduler sched;
  netsim::Network net(sched, {}, 7);
  const auto router = net.add_node("router");
  const auto upstream = net.add_node("upstream");
  net.add_link(upstream, router, Duration::millis(5), netsim::LinkKind::ProviderToCustomer);
  control::ControlPlane plane(sched, 8);
  control::SchedulerClock clock(sched);
  propagation::ZonePublisher publisher(clock);
  pop::Pop site({.id = "p", .router_node = router}, net);
  auto& regular1 = site.adopt_machine(std::make_unique<pop::Machine>(
      pop::MachineConfig{.id = "regular-1"}));
  auto& regular2 = site.adopt_machine(std::make_unique<pop::Machine>(
      pop::MachineConfig{.id = "regular-2"}));
  auto& delayed = site.adopt_machine(std::make_unique<pop::Machine>(
      pop::MachineConfig{.id = "input-delayed", .input_delayed = true}));
  for (auto* machine : site.machines()) {
    control::subscribe_machine_to_zone(
        plane, *machine, dns::DnsName::from("ex.com"),
        machine->input_delayed() ? Duration::hours(1) : Duration::zero());
  }
  regular1.speaker().advertise(1, pop::BgpSpeaker::kDefaultMed);
  regular2.speaker().advertise(1, pop::BgpSpeaker::kDefaultMed);
  delayed.speaker().advertise(1, pop::BgpSpeaker::kInputDelayedMed);

  control::publish_zone(plane, publisher, example_zone(1));
  sched.run_until(sched.now() + Duration::hours(2));  // delayed copy has v1 too
  bench::print_row("ECMP set size (regulars only, MED)",
                   static_cast<double>(site.ecmp_set(1).size()), "");

  // A poisoned v2 crashes every regular nameserver on receipt.
  control::publish_zone(plane, publisher, example_zone(2));
  sched.run_until(sched.now() + Duration::seconds(30));
  for (auto* machine : {&regular1, &regular2}) {
    if (machine->local_store()->find_zone(dns::DnsName::from("ex.com"))->serial() == 2) {
      machine->nameserver().set_crash_predicate([](const dns::Question&) { return true; });
      // First query crashes it; the agent withdraws. Here we shortcut:
      const Endpoint src{*IpAddr::parse("198.51.100.1"), 5353};
      machine->deliver(dns::encode(dns::make_query(
                           1, dns::DnsName::from("www.ex.com"), dns::RecordType::A)),
                       src, 57, sched.now());
      machine->pump(sched.now());
      machine->speaker().withdraw_all();
    }
  }
  bench::print_row("regular machines crashed",
                   (regular1.nameserver().state() == server::ServerState::Crashed ? 1 : 0) +
                       (regular2.nameserver().state() == server::ServerState::Crashed ? 1
                                                                                      : 0),
                   "/ 2");
  const auto eligible = site.ecmp_set(1);
  bench::print_row("PoP still advertising", site.advertising(1) ? 1 : 0, "(1=yes)");
  std::printf("  now serving: %s (zone serial %u — intentionally stale v1)\n",
              eligible.empty() ? "nobody" : eligible[0]->id().c_str(),
              eligible.empty()
                  ? 0u
                  : eligible[0]->local_store()->find_zone(dns::DnsName::from("ex.com"))
                        ->serial());
  // Answer check through the delayed machine.
  if (!eligible.empty()) {
    std::vector<std::uint8_t> response;
    eligible[0]->nameserver().set_response_sink(
        [&](const Endpoint&, std::vector<std::uint8_t> wire) { response = std::move(wire); });
    const Endpoint src{*IpAddr::parse("198.51.100.2"), 5353};
    eligible[0]->deliver(dns::encode(dns::make_query(
                             2, dns::DnsName::from("www.ex.com"), dns::RecordType::A)),
                         src, 57, sched.now());
    eligible[0]->pump(sched.now());
    bench::print_row("input-delayed machine answered", response.empty() ? 0 : 1, "(1=yes)");
  }
}

void scenario_d_query_of_death() {
  bench::subheading("D) query-of-death -> firewall rule -> crash rate <= 1/T_QoD (§4.2.4)");
  EventScheduler sched;
  zone::ZoneStore store;
  store.publish(example_zone());
  server::NameserverConfig config;
  config.qod_trap_enabled = true;
  config.qod_rule_ttl = Duration::minutes(10);
  server::Nameserver nameserver(std::move(config), store);
  nameserver.set_crash_predicate([](const dns::Question& q) {
    return q.name == dns::DnsName::from("death.ex.com");
  });
  const Endpoint src{*IpAddr::parse("198.51.100.1"), 5353};
  int crashes = 0;
  std::uint64_t answered_other = 0;
  SimTime clock = SimTime::origin();
  nameserver.set_response_sink(
      [&](const Endpoint&, std::vector<std::uint8_t>) { ++answered_other; });
  // The QoD arrives every 30 seconds for one hour; normal queries continue.
  for (int tick = 0; tick < 120; ++tick) {
    clock += Duration::seconds(30);
    nameserver.receive(dns::encode(dns::make_query(static_cast<std::uint16_t>(tick),
                                                   dns::DnsName::from("death.ex.com"),
                                                   dns::RecordType::A)),
                       src, 57, clock);
    nameserver.receive(dns::encode(dns::make_query(static_cast<std::uint16_t>(tick + 500),
                                                   dns::DnsName::from("www.ex.com"),
                                                   dns::RecordType::A)),
                       src, 57, clock);
    nameserver.process(clock);
    if (nameserver.state() == server::ServerState::Crashed) {
      ++crashes;
      nameserver.restart(clock);  // monitoring agent
    }
  }
  bench::print_row("QoD arrivals over the hour", 120, "");
  bench::print_row("crashes (T_QoD = 10 min => <= ~6)", crashes, "");
  bench::print_row("dropped by firewall rule",
                   static_cast<double>(nameserver.stats().dropped_firewall()), "");
  bench::print_row("dissimilar queries answered", static_cast<double>(answered_other), "");
}

}  // namespace

int main() {
  bench::heading("failure-resilience suite",
                 "§4.2 — suspension quota, stale-state recovery, input-delayed "
                 "nameservers, query-of-death trap");
  scenario_a_machine_failures();
  scenario_b_stale_state();
  scenario_c_input_delayed();
  scenario_d_query_of_death();
  return 0;
}
