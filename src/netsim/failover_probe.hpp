// Failover measurement apparatus — the experimental methodology of §4.1.
//
// Vantage points send a probe to an anycast test prefix every 100 msec;
// an originating PoP answers each probe with a unicast reply identifying
// itself. Vantage points log send time and the answering PoP (or a
// timeout). Failover time is computed exactly as the paper does:
//   - advertisement: t_X - t_L, where t_L is when the PoP-local vantage
//     point first reaches X and t_X when a remote vantage point does;
//   - withdrawal: t_Y - t_phi, where t_phi is the first probe that times
//     out and t_Y the first probe answered by the surviving PoP Y.
#pragma once

#include <unordered_map>

#include "netsim/network.hpp"

namespace akadns::netsim {

struct ProbeRecord {
  SimTime sent;
  NodeId answered_by = kInvalidNode;  // kInvalidNode = timeout
  Duration rtt = Duration::zero();
  bool answered = false;
};

struct ProbeDriverConfig {
  Duration interval = Duration::millis(100);
  Duration timeout = Duration::seconds(1);
};

/// Drives periodic anycast probes from a set of vantage points and logs
/// per-probe outcomes.
class ProbeDriver {
 public:
  ProbeDriver(Network& network, PrefixId prefix, std::vector<NodeId> vantage_points,
              ProbeDriverConfig config = {});

  /// Starts probing at the scheduler's current time, running until
  /// stop_at. Call before network.scheduler().run().
  void start(SimTime stop_at);

  const std::vector<ProbeRecord>& records(NodeId vantage_point) const;

  /// First time (>= from) the vantage point sent a probe answered by
  /// `origin`; nullopt if never.
  std::optional<SimTime> first_answer_from(NodeId vantage_point, NodeId origin,
                                           SimTime from) const;

  /// First probe sent at/after `from` that timed out; nullopt if none.
  std::optional<SimTime> first_timeout(NodeId vantage_point, SimTime from) const;

  /// True if every probe of this vantage point in [from, until] timed out.
  bool all_timeouts_between(NodeId vantage_point, SimTime from, SimTime until) const;

 private:
  struct Pending {
    NodeId vantage_point;
    std::size_t record_index;
  };

  void send_probe(NodeId vantage_point);
  void on_delivery(NodeId at_origin, const Packet& packet);
  void on_reply(NodeId vantage_point, const Packet& packet);

  Network& network_;
  PrefixId prefix_;
  std::vector<NodeId> vantage_points_;
  ProbeDriverConfig config_;
  SimTime stop_at_;
  std::unordered_map<NodeId, std::vector<ProbeRecord>> records_;
  std::unordered_map<std::uint64_t, Pending> pending_;  // probe id -> record
  std::uint64_t next_probe_id_ = 1;
};

}  // namespace akadns::netsim
