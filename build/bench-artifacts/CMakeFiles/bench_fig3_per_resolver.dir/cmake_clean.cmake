file(REMOVE_RECURSE
  "../bench/bench_fig3_per_resolver"
  "../bench/bench_fig3_per_resolver.pdb"
  "CMakeFiles/bench_fig3_per_resolver.dir/bench_fig3_per_resolver.cpp.o"
  "CMakeFiles/bench_fig3_per_resolver.dir/bench_fig3_per_resolver.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_per_resolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
