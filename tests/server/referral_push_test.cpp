// §5.2 "Improvements" — answer push alongside referrals: with the push
// hook installed, a toplevel's referral carries the answer, so a cold
// resolver completes the resolution in ONE round trip, and Two-Tier is
// beneficial whenever L < T regardless of r_T.

#include <gtest/gtest.h>

#include "resolver/iterative_resolver.hpp"
#include "server/responder.hpp"
#include "twotier/model.hpp"
#include "zone/zone_builder.hpp"

namespace akadns::server {
namespace {

using dns::DnsName;
using dns::Rcode;
using dns::RecordType;

struct Fixture {
  zone::ZoneStore toplevel_store;
  zone::ZoneStore lowlevel_store;
  std::unique_ptr<Responder> toplevel;
  std::unique_ptr<Responder> lowlevel;
  Endpoint client{*IpAddr::parse("198.51.100.53"), 5353};

  Fixture() {
    toplevel_store.publish(zone::ZoneBuilder("akamai.net", 1)
                               .soa("ns1.akamai.net", "hostmaster.akamai.net", 1)
                               .ns("@", "ns1.akamai.net")
                               .a("ns1", "10.1.0.1")
                               .ns("w10", "n1.w10.akamai.net", 4000)
                               .a("n1.w10", "10.2.0.1", 4000)
                               .build());
    lowlevel_store.publish(zone::ZoneBuilder("w10.akamai.net", 1)
                               .soa("n1.w10.akamai.net", "hostmaster.akamai.net", 1)
                               .ns("@", "n1.w10.akamai.net")
                               .a("n1", "10.2.0.1")
                               .a("a1", "172.16.0.1", 20)
                               .build());
    toplevel = std::make_unique<Responder>(toplevel_store);
    lowlevel = std::make_unique<Responder>(lowlevel_store);
    // The toplevel pushes whatever the lowlevel would answer (in
    // production the toplevel consults the same mapping intelligence).
    toplevel->set_referral_push_hook(
        [this](const dns::Question& question, const Endpoint& c) {
          auto response =
              lowlevel->respond(dns::make_query(0, question.name, question.qtype), c);
          return response.answers;
        });
  }
};

TEST(ReferralPush, ReferralCarriesTheAnswer) {
  Fixture f;
  const auto query =
      dns::make_query(1, DnsName::from("a1.w10.akamai.net"), RecordType::A);
  const auto response = f.toplevel->respond(query, f.client);
  EXPECT_EQ(response.header.rcode, Rcode::NoError);
  // The referral (NS in authority) AND the pushed answer coexist.
  ASSERT_FALSE(response.authorities.empty());
  EXPECT_EQ(response.authorities[0].type(), RecordType::NS);
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(std::get<dns::ARecord>(response.answers[0].rdata).address.to_string(),
            "172.16.0.1");
  EXPECT_EQ(f.toplevel->stats().pushed_answers, 1u);
}

TEST(ReferralPush, EmptyPushFallsBackToPlainReferral) {
  Fixture f;
  f.toplevel->set_referral_push_hook(
      [](const dns::Question&, const Endpoint&) { return std::vector<dns::ResourceRecord>{}; });
  const auto query =
      dns::make_query(1, DnsName::from("a1.w10.akamai.net"), RecordType::A);
  const auto response = f.toplevel->respond(query, f.client);
  EXPECT_TRUE(response.answers.empty());
  EXPECT_FALSE(response.authorities.empty());
  EXPECT_EQ(f.toplevel->stats().pushed_answers, 0u);
}

TEST(ReferralPush, ColdResolverCompletesInOneRoundTrip) {
  Fixture f;
  int toplevel_queries = 0, lowlevel_queries = 0;
  resolver::IterativeResolver iterative(
      {}, [&](const dns::Message& query,
              const IpAddr& server) -> std::optional<resolver::UpstreamReply> {
        if (server == *IpAddr::parse("10.1.0.1")) {
          ++toplevel_queries;
          return resolver::UpstreamReply{f.toplevel->respond(query, f.client),
                                         Duration::millis(60)};
        }
        if (server == *IpAddr::parse("10.2.0.1")) {
          ++lowlevel_queries;
          return resolver::UpstreamReply{f.lowlevel->respond(query, f.client),
                                         Duration::millis(10)};
        }
        return std::nullopt;
      });
  iterative.add_hint(DnsName::from("akamai.net"), *IpAddr::parse("10.1.0.1"));

  auto now = SimTime::origin();
  const auto cold = iterative.resolve(DnsName::from("a1.w10.akamai.net"),
                                      RecordType::A, now);
  EXPECT_EQ(cold.rcode, Rcode::NoError);
  EXPECT_EQ(toplevel_queries, 1);
  EXPECT_EQ(lowlevel_queries, 0);  // pushed: no second round trip
  EXPECT_EQ(cold.elapsed, Duration::millis(60));  // T, not L+T

  // The delegation was cached from the authority section: the next
  // refresh (host TTL expired) goes straight to the lowlevel at cost L.
  now += Duration::seconds(30);
  const auto refresh = iterative.resolve(DnsName::from("a1.w10.akamai.net"),
                                         RecordType::A, now);
  EXPECT_EQ(refresh.rcode, Rcode::NoError);
  EXPECT_EQ(toplevel_queries, 1);
  EXPECT_EQ(lowlevel_queries, 1);
  EXPECT_EQ(refresh.elapsed, Duration::millis(10));
}

TEST(ReferralPush, ModelAlwaysBeneficialWhenLowlevelFaster) {
  using namespace twotier;
  // Sweep r_T across [0, 1]: classic Two-Tier dips below 1 at high r_T;
  // pushed Two-Tier never does (L < T).
  const Duration t = Duration::millis(60), l = Duration::millis(10);
  bool classic_ever_below_1 = false;
  for (double rt = 0.0; rt <= 1.0; rt += 0.05) {
    const TwoTierParams params{t, l, rt};
    if (speedup(params) < 1.0) classic_ever_below_1 = true;
    EXPECT_GE(speedup_with_push(params), 1.0) << "rt=" << rt;
  }
  EXPECT_TRUE(classic_ever_below_1);
  // At r_T = 1 the pushed system degenerates to exactly the single tier.
  EXPECT_NEAR(speedup_with_push(TwoTierParams{t, l, 1.0}), 1.0, 1e-9);
}

TEST(ReferralPush, ModelStillLosesWhenLowlevelSlower) {
  using namespace twotier;
  // Push cannot rescue a resolver whose lowlevel RTT exceeds its anycast
  // toplevel RTT (the 2-13% of probes in Figure 11).
  const TwoTierParams params{Duration::millis(20), Duration::millis(50), 0.1};
  EXPECT_LT(speedup_with_push(params), 1.0);
}

}  // namespace
}  // namespace akadns::server
