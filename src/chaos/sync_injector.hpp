// FaultHooks implementations: the in-process face of a FaultPlan.
//
// PlanInjector drives propagation's fault seam from the same FaultPlan
// the impairment proxy executes — sends draw from the `up` spec, reads
// from `down`, and every operation class gets its own ordinal space, so
// a unit test reproduces "the third transfer read fails" as
// deterministically as the proxy reproduces "the third datagram drops".
//
// ScriptedInjector is the directed-test face: enqueue exact fates per
// operation ("fail the second StreamMessage") and the default (no
// fault) applies once the script runs out.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "chaos/fault_plan.hpp"
#include "chaos/fault_stream.hpp"
#include "propagation/fault_hooks.hpp"

namespace akadns::chaos {

class PlanInjector : public propagation::FaultHooks {
 public:
  explicit PlanInjector(const FaultPlan& plan) {
    for (std::size_t i = 0; i < kOps; ++i) {
      const auto op = static_cast<propagation::SyncOp>(i);
      const bool upward = op == propagation::SyncOp::ProbeSend ||
                          op == propagation::SyncOp::TransferConnect ||
                          op == propagation::SyncOp::TransferWrite;
      const std::uint64_t tag =
          (upward ? kDirUp : kDirDown) ^ ((i + 1) * 0x100000001b3ULL);
      streams_[i].emplace(upward ? plan.up : plan.down, plan.seed, tag);
    }
  }

  propagation::OpFate on_op(propagation::SyncOp op) override {
    const auto i = static_cast<std::size_t>(op);
    std::uint64_t index;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      index = indices_[i]++;
    }
    const PacketFate fate = streams_[i]->fate(index);
    propagation::OpFate out;
    out.fail = fate.drop;
    out.delay = fate.delay;
    return out;
  }

 private:
  static constexpr std::size_t kOps = 6;
  std::array<std::optional<FaultStream>, kOps> streams_;
  std::mutex mutex_;
  std::array<std::uint64_t, kOps> indices_{};
};

class ScriptedInjector : public propagation::FaultHooks {
 public:
  /// Enqueues the fate the next unscripted call for `op` will receive.
  void push(propagation::SyncOp op, propagation::OpFate fate) {
    const std::lock_guard<std::mutex> lock(mutex_);
    queues_[static_cast<std::size_t>(op)].push_back(fate);
  }

  /// Shorthand: let the next `ok` calls for `op` succeed, then fail one.
  void fail_nth(propagation::SyncOp op, std::size_t ok) {
    for (std::size_t i = 0; i < ok; ++i) push(op, {});
    push(op, {.fail = true, .delay = Duration::zero()});
  }

  propagation::OpFate on_op(propagation::SyncOp op) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& queue = queues_[static_cast<std::size_t>(op)];
    ++calls_[static_cast<std::size_t>(op)];
    if (queue.empty()) return {};
    const propagation::OpFate fate = queue.front();
    queue.pop_front();
    return fate;
  }

  /// How often `op` was consulted (test assertions).
  std::uint64_t calls(propagation::SyncOp op) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return calls_[static_cast<std::size_t>(op)];
  }

 private:
  static constexpr std::size_t kOps = 6;
  mutable std::mutex mutex_;
  std::array<std::deque<propagation::OpFate>, kOps> queues_;
  std::array<std::uint64_t, kOps> calls_{};
};

}  // namespace akadns::chaos
