// The assembled Akamai DNS platform (Figure 5) at laptop scale: a
// simulated Internet (netsim), PoPs with machines / monitoring agents /
// BGP speakers (pop), the metadata pipeline (control), mapping
// intelligence (twotier), and the authoritative nameserver software
// (server) — all driven by one deterministic event scheduler.
//
// The data plane carries real DNS wire bytes: clients frame a query
// with their endpoint and IP TTL, anycast routing delivers it to the
// catchment PoP, ECMP picks a machine, the nameserver scores/queues/
// answers it, and the response travels back unicast to the client node.
#pragma once

#include <memory>
#include <unordered_map>

#include "common/worker_pool.hpp"
#include "control/machine_subscriber.hpp"
#include "core/delegation_sets.hpp"
#include "netsim/topology.hpp"
#include "pop/monitoring_agent.hpp"
#include "pop/pop.hpp"
#include "twotier/mapping.hpp"

namespace akadns::core {

struct PlatformConfig {
  netsim::NetworkConfig network{};
  netsim::TopologyConfig topology{};
  control::ControlPlane::Config control{};
  pop::SuspensionCoordinator::Config suspension{};
  std::uint64_t seed = 42;
  /// Client-side query timeout.
  Duration query_timeout = Duration::seconds(2);
  /// Scheduling latency between packet arrival and nameserver processing.
  Duration process_latency = Duration::micros(200);
  /// Re-pump interval while queries remain queued (compute backlog).
  Duration pump_interval = Duration::millis(1);
  /// Datapath lanes per machine (configuration: results depend on it).
  std::size_t machine_lanes = 1;
  /// Worker threads draining the lanes at each pump (execution: results
  /// are bit-identical for any value; >1 enables the parallel drain).
  std::size_t worker_threads = 1;
};

class Platform {
 public:
  using ResponseCallback =
      std::function<void(std::optional<dns::Message> response, Duration elapsed)>;

  explicit Platform(PlatformConfig config);

  // ---- accessors ----------------------------------------------------------

  EventScheduler& scheduler() noexcept { return scheduler_; }
  netsim::Network& network() noexcept { return network_; }
  const netsim::Topology& topology() const noexcept { return topology_; }
  control::ControlPlane& control() noexcept { return control_; }
  /// The platform's propagation pipeline: host_zone() publishes through
  /// it, so its journal/compile/publish stats describe the whole fleet.
  propagation::ZonePublisher& zone_publisher() noexcept { return zone_publisher_; }
  pop::SuspensionCoordinator& coordinator() noexcept { return coordinator_; }
  twotier::MappingSystem& mapping() noexcept { return mapping_; }

  std::size_t pop_count() const noexcept { return pops_.size(); }
  pop::Pop& pop_at(std::size_t i) { return *pops_.at(i); }
  /// The PoP whose router is `node`, or nullptr.
  pop::Pop* pop_by_router(netsim::NodeId node);

  // ---- build --------------------------------------------------------------

  /// Builds the Internet topology (call once, before adding PoPs).
  void build_internet();

  /// Which zones a PoP's machines serve; null = all hosted zones.
  using ZoneFilter = std::function<bool(const dns::DnsName& apex)>;

  /// Creates a PoP at an edge node with `machine_count` regular machines
  /// (plus one input-delayed machine when requested), all advertising
  /// the given clouds and subscribed to the hosted zones selected by
  /// `zone_filter` plus mapping updates. Monitoring agents are created
  /// and started.
  pop::Pop& add_pop(netsim::NodeId edge_node, std::size_t machine_count,
                    const std::vector<netsim::PrefixId>& clouds,
                    bool include_input_delayed = false, ZoneFilter zone_filter = nullptr);

  /// Publishes a zone through the Management Portal path (validated,
  /// then delivered to every machine via the control plane).
  void host_zone(zone::Zone zone);

  /// Registers a domain whose answers come from Mapping Intelligence
  /// (GTM/CDN hostnames): queries for names under `suffix` are answered
  /// with the `answer_count` best edge sites for the client.
  void register_dynamic_domain(const dns::DnsName& suffix, std::size_t answer_count = 2);

  /// Starts the periodic mapping-intelligence publication (keeps
  /// machines' metadata fresh; stopping it induces staleness, §4.2.2).
  void start_mapping_heartbeat(Duration interval);
  void stop_mapping_heartbeat();

  /// Installs the §4.3.4 scoring pipeline (rate-limit + NXDOMAIN filter,
  /// each bound to the machine's own zone-store replica) on every
  /// machine created so far. Call after add_pop().
  struct FilterDefaults {
    double rate_limit_default_qps = 200.0;
    double rate_limit_penalty = 60.0;
    double nxdomain_penalty = 150.0;
    std::uint64_t nxdomain_threshold = 200;
  };
  void install_filter_pipeline();
  void install_filter_pipeline(const FilterDefaults& defaults);

  // ---- client data path ----------------------------------------------------

  /// Sends a DNS query from `client_node` toward anycast `cloud`.
  /// The callback fires with the response, or nullopt on timeout.
  void send_query(netsim::NodeId client_node, const Endpoint& client,
                  std::uint8_t ip_ttl, const dns::Message& query,
                  netsim::PrefixId cloud, ResponseCallback callback);

  /// Runs the simulation until quiescent or until `deadline`.
  void run_until(SimTime deadline) { scheduler_.run_until(deadline); }
  void run() { scheduler_.run(); }

  // ---- stats ---------------------------------------------------------------

  std::uint64_t queries_sent() const noexcept { return queries_sent_; }
  std::uint64_t responses_received() const noexcept { return responses_received_; }
  std::uint64_t timeouts() const noexcept { return timeouts_; }

 private:
  struct PendingQuery {
    ResponseCallback callback;
    SimTime sent_at;
    EventScheduler::EventId timeout_event = 0;
  };
  struct PendingKey {
    IpAddr addr;
    std::uint16_t port = 0;
    std::uint16_t id = 0;
    bool operator==(const PendingKey&) const = default;
  };
  struct PendingKeyHash {
    std::size_t operator()(const PendingKey& k) const noexcept {
      return static_cast<std::size_t>(k.addr.hash() * 31 + k.port * 7 + k.id);
    }
  };

  void attach_cloud_handler(netsim::PrefixId cloud);
  void on_anycast_delivery(netsim::NodeId at_node, const netsim::Packet& packet);
  void ensure_client_handler(netsim::NodeId node);
  void on_client_delivery(const netsim::Packet& packet);
  void schedule_pump(pop::Pop& pop);
  void subscribe_machine(pop::Machine& machine, bool input_delayed,
                         const ZoneFilter& zone_filter);
  void wire_machine(pop::Pop& pop, pop::Machine& machine);

  PlatformConfig config_;
  EventScheduler scheduler_;
  /// Drains machine lanes at pump time (nullptr = serial). The scheduler
  /// remains the single source of simulated time; workers only run
  /// lane-local query processing between the serial phase boundaries.
  std::unique_ptr<WorkerPool> pool_;
  netsim::Network network_;
  netsim::Topology topology_;
  control::ControlPlane control_;
  /// Propagation pipeline on the scheduler's time axis (declared after
  /// scheduler_, before anything that publishes).
  control::SchedulerClock metadata_clock_{scheduler_};
  propagation::ZonePublisher zone_publisher_{metadata_clock_};
  pop::SuspensionCoordinator coordinator_;
  twotier::MappingSystem mapping_;
  Rng rng_;

  std::vector<std::unique_ptr<pop::Pop>> pops_;
  std::vector<std::unique_ptr<pop::MonitoringAgent>> agents_;
  std::unordered_map<netsim::NodeId, pop::Pop*> pops_by_router_;
  std::unordered_map<netsim::PrefixId, bool> cloud_handlers_;
  std::unordered_map<netsim::NodeId, bool> client_handlers_;
  std::unordered_map<IpAddr, netsim::NodeId> client_nodes_;
  std::unordered_map<PendingKey, PendingQuery, PendingKeyHash> pending_;
  std::unordered_map<pop::Pop*, bool> pump_scheduled_;
  std::unordered_map<const pop::Machine*, ZoneFilter> machine_zone_filters_;
  std::vector<dns::DnsName> hosted_apexes_;
  std::vector<std::pair<dns::DnsName, std::size_t>> dynamic_domains_;
  bool heartbeat_running_ = false;
  Duration heartbeat_interval_ = Duration::seconds(1);
  std::uint64_t queries_sent_ = 0;
  std::uint64_t responses_received_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint16_t machine_counter_ = 0;
};

}  // namespace akadns::core
