// Versioned zone store: the nameserver-side container of published zone
// snapshots. Publishing replaces the zone pointer atomically (snapshot
// semantics, matching the paper's metadata pipeline where the Management
// Portal publishes validated zone versions and nameservers subscribe).
// Serial regressions are rejected, mirroring serial-based zone transfer
// rules (RFC 1996 / 5936).
//
// Every accepted publish compiles the snapshot into a CompiledZone
// (answer-ready node table + wire fragments) before the swap, so the hot
// read path only ever sees fully-built snapshots. Three publish shapes
// exist, cheapest first: publish_compiled() installs an already-compiled
// snapshot shared with another store (replica seeding), apply_delta()
// incrementally recompiles only the nodes a ZoneDiff touches, and
// publish() compiles from scratch. The query-time entry point,
// find_best_compiled(), does longest-suffix matching with one incremental
// hash pass over the query name — zero heap allocations even on the miss
// path, which is what a REFUSED flood exercises.
#pragma once

#include <bitset>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "obs/registry.hpp"
#include "zone/compiled_zone.hpp"
#include "zone/zone.hpp"
#include "zone/zone_transfer.hpp"

namespace akadns::zone {

/// Cumulative cost of publish-time compilation (telemetry surface).
struct CompileStats {
  obs::Counter compiles;              // from-scratch compiles
  obs::Counter incremental_compiles;  // delta-driven recompiles
  obs::Counter adopted;               // pre-compiled snapshots installed
  obs::Counter total_micros;
  obs::Gauge last_micros;
  obs::Gauge last_nodes;
  obs::Gauge last_fragments;
  /// Nodes shared with the previous snapshot by the last incremental
  /// compile — the work the delta path avoided redoing.
  obs::Gauge last_reused_nodes;

  /// akadns_zone_compile_total{path=...} counters plus last-compile
  /// gauges (Max across machines: "the worst latest compile").
  void register_into(obs::MetricRegistry& reg, const obs::LabelSet& base) const {
    const auto path = [&](const char* name, const obs::Counter& c) {
      reg.counter("akadns_zone_compile_total", obs::with(base, "path", name), c,
                  "publish-time zone compiles by path");
    };
    path("full", compiles);
    path("incremental", incremental_compiles);
    path("adopted", adopted);
    reg.counter("akadns_zone_compile_micros_total", base, total_micros,
                "cumulative publish-time compile cost");
    reg.gauge("akadns_zone_compile_last_micros", base, last_micros,
              obs::GaugeAgg::Max, "cost of the most recent compile");
    reg.gauge("akadns_zone_compile_last_nodes", base, last_nodes,
              obs::GaugeAgg::Max, "nodes in the most recent compiled snapshot");
    reg.gauge("akadns_zone_compile_last_fragments", base, last_fragments,
              obs::GaugeAgg::Max, "fragments in the most recent compiled snapshot");
    reg.gauge("akadns_zone_compile_last_reused_nodes", base, last_reused_nodes,
              obs::GaugeAgg::Max, "nodes the last incremental compile reused");
  }
};

class ZoneStore {
 public:
  /// Publishes a zone snapshot. Returns false (and keeps the old version)
  /// if a zone with the same apex and a serial >= the new one exists.
  /// Compilation happens before the swap; readers never see a half-built
  /// snapshot.
  bool publish(Zone zone);
  bool publish(ZonePtr zone);

  /// Force-publishes regardless of serial (operator override path).
  void force_publish(Zone zone);
  void force_publish(ZonePtr zone);

  /// Applies an IXFR delta to the stored snapshot, incrementally
  /// recompiling only the nodes the diff touches. Fails — leaving the
  /// store untouched — when no zone exists at the diff's apex, the stored
  /// serial does not match diff.from_serial, or the diff names a record
  /// the base does not hold: the RFC 1995 "fall back to AXFR" cases.
  /// Returns the newly installed snapshot on success.
  Result<CompiledZonePtr> apply_delta(const ZoneDiff& diff);

  /// Installs an already-compiled snapshot (shared with the compiling
  /// store — no recompilation, just the swap). Serial rules apply unless
  /// `force`; returns false when rejected.
  bool publish_compiled(CompiledZonePtr compiled, bool force = false);

  /// Force-installs every compiled snapshot of `other` (replica seeding:
  /// the snapshots are shared, not recompiled).
  void adopt(const ZoneStore& other);

  /// Removes a zone; returns true if it existed.
  bool remove(const DnsName& apex);

  /// The compiled zone whose apex is the longest suffix of `qname`, or
  /// nullptr. Allocation-free: probes a hashed apex index at each
  /// populated depth instead of materializing suffix names.
  CompiledZonePtr find_best_compiled(const DnsName& qname) const noexcept;

  /// The zone whose apex is the longest suffix of `qname`, or nullptr.
  ZonePtr find_best_zone(const DnsName& qname) const;

  /// Exact-apex fetch.
  ZonePtr find_zone(const DnsName& apex) const;

  /// Exact-apex fetch of the compiled snapshot.
  CompiledZonePtr find_compiled(const DnsName& apex) const;

  bool has_zone(const DnsName& apex) const { return zones_.contains(apex); }

  std::size_t zone_count() const noexcept { return zones_.size(); }
  std::size_t total_records() const noexcept;

  /// Apexes of all hosted zones (stable canonical order).
  std::vector<DnsName> zone_apexes() const;

  /// Monotone counter incremented on every successful publish/remove;
  /// the staleness detector and the answer cache use it as a cheap
  /// change signal.
  std::uint64_t generation() const noexcept { return generation_; }

  const CompileStats& compile_stats() const noexcept { return compile_stats_; }

 private:
  /// One apex in the hash index. `entry` points at the map node (stable
  /// across rebuilds of the vector; map nodes never move).
  struct ApexIndexEntry {
    std::uint64_t hash = 0;
    std::uint16_t depth = 0;
    const std::pair<const DnsName, CompiledZonePtr>* entry = nullptr;
  };

  void store(ZonePtr zone);
  void install(CompiledZonePtr compiled);
  void note_compile(const CompiledZone& compiled);
  void rebuild_index();

  std::map<DnsName, CompiledZonePtr> zones_;
  /// Sorted by hash; rebuilt on publish/remove (rare) so lookups (hot)
  /// are a binary search.
  std::vector<ApexIndexEntry> apex_index_;
  /// Which apex depths exist at all — lets the miss path skip depths
  /// without touching the index.
  std::bitset<128> apex_depths_;
  std::uint64_t generation_ = 0;
  CompileStats compile_stats_;
};

}  // namespace akadns::zone
