#include "common/drop_reason.hpp"

namespace akadns {

std::string_view to_string(DropReason reason) noexcept {
  switch (reason) {
    case DropReason::NotRunning: return "not-running";
    case DropReason::IoOverload: return "io-overload";
    case DropReason::Malformed: return "malformed";
    case DropReason::Firewall: return "firewall";
    case DropReason::ScoreDiscard: return "score-discard";
    case DropReason::QueueFull: return "queue-full";
    case DropReason::QueryOfDeath: return "query-of-death";
    case DropReason::RestartFlush: return "restart-flush";
    case DropReason::NicFailure: return "nic-failure";
    case DropReason::kCount: break;
  }
  return "unknown";
}

}  // namespace akadns
