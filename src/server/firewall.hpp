// The query-of-death firewall moved into the transport-agnostic defense
// subsystem (src/defense/firewall.hpp) so the real-socket workers can
// share it with the simulated nameserver. This header keeps the old
// include path and the akadns::server spellings alive for existing
// callers and tests.
#pragma once

#include "defense/firewall.hpp"

namespace akadns::server {

using Firewall = defense::Firewall;
using FirewallRule = defense::FirewallRule;

}  // namespace akadns::server
