// The impairment proxy over real sockets: a UDP echo upstream sits
// behind the proxy and every fault class is driven to certainty
// (probability 1.0 or an always-on window), so the assertions are about
// *what the fault does to real traffic*, not about probabilities.

#include "chaos/impairment_proxy.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace akadns::chaos {
namespace {

constexpr Ipv4Addr kLoopback(127, 0, 0, 1);

// A UDP echo server; when `tag` is non-zero the reply's first byte is
// replaced with it, so a test can tell *which* upstream answered.
class EchoUpstream {
 public:
  explicit EchoUpstream(char tag = 0) : tag_(tag) {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
    thread_ = std::thread([this] { run(); });
  }

  ~EchoUpstream() {
    stop_.store(true);
    thread_.join();
    ::close(fd_);
  }

  std::uint16_t port() const { return port_; }
  Endpoint endpoint() const { return Endpoint{IpAddr(kLoopback), port_}; }

 private:
  void run() {
    std::vector<std::uint8_t> buf(64 * 1024);
    while (!stop_.load()) {
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 50) != 1) continue;
      sockaddr_storage peer{};
      socklen_t peer_len = sizeof(peer);
      const ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), 0,
                                   reinterpret_cast<sockaddr*>(&peer), &peer_len);
      if (n <= 0) continue;
      if (tag_ != 0) buf[0] = static_cast<std::uint8_t>(tag_);
      ::sendto(fd_, buf.data(), static_cast<std::size_t>(n), 0,
               reinterpret_cast<const sockaddr*>(&peer), peer_len);
    }
  }

  char tag_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

// A client UDP socket connected to the proxy's front port.
class Client {
 public:
  explicit Client(std::uint16_t proxy_port) {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    sockaddr_storage dst{};
    const socklen_t len = net::sockaddr_from_endpoint(
        Endpoint{IpAddr(kLoopback), proxy_port}, dst);
    ::connect(fd_, reinterpret_cast<const sockaddr*>(&dst), len);
  }
  ~Client() { ::close(fd_); }

  bool send(const std::string& payload) {
    return ::send(fd_, payload.data(), payload.size(), 0) ==
           static_cast<ssize_t>(payload.size());
  }

  std::optional<std::string> recv(int timeout_ms) {
    pollfd pfd{fd_, POLLIN, 0};
    if (::poll(&pfd, 1, timeout_ms) != 1) return std::nullopt;
    char buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) return std::nullopt;
    return std::string(buf, static_cast<std::size_t>(n));
  }

 private:
  int fd_ = -1;
};

ProxyConfig config_for(const EchoUpstream& upstream, FaultPlan plan = {}) {
  ProxyConfig config;
  config.listen_port = 0;
  config.upstream = upstream.endpoint();
  config.plan = plan;
  return config;
}

TEST(ImpairmentProxy, CleanPlanRelaysVerbatimBothWays) {
  EchoUpstream upstream;
  ImpairmentProxy proxy(config_for(upstream));
  auto started = proxy.start();
  ASSERT_TRUE(started.ok()) << started.error();

  Client client(proxy.port());
  const std::string payload = "through-the-proxy";
  ASSERT_TRUE(client.send(payload));
  const auto reply = client.recv(3000);
  ASSERT_TRUE(reply.has_value()) << "clean proxy dropped the datagram";
  EXPECT_EQ(*reply, payload);

  proxy.stop();
  EXPECT_GE(proxy.stats().forwarded_up.value(), 1u);
  EXPECT_GE(proxy.stats().forwarded_down.value(), 1u);
  EXPECT_EQ(proxy.stats().dropped.value(), 0u);
  EXPECT_EQ(proxy.stats().corrupted.value(), 0u);
}

TEST(ImpairmentProxy, TotalUpstreamLossSwallowsEveryDatagram) {
  EchoUpstream upstream;
  FaultPlan plan;
  plan.up.loss = 1.0;
  ImpairmentProxy proxy(config_for(upstream, plan));
  ASSERT_TRUE(proxy.start().ok());

  Client client(proxy.port());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(client.send("lost-" + std::to_string(i)));
  EXPECT_FALSE(client.recv(300).has_value());

  proxy.stop();
  EXPECT_GE(proxy.stats().dropped.value(), 3u);
  EXPECT_EQ(proxy.stats().forwarded_up.value(), 0u);
}

TEST(ImpairmentProxy, FixedDelayAddsMeasurableLatency) {
  EchoUpstream upstream;
  FaultPlan plan;
  plan.up.delay = Duration::millis(60);
  plan.down.delay = Duration::millis(60);
  ImpairmentProxy proxy(config_for(upstream, plan));
  ASSERT_TRUE(proxy.start().ok());

  Client client(proxy.port());
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(client.send("how-long"));
  const auto reply = client.recv(5000);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  ASSERT_TRUE(reply.has_value());
  // 60 ms each way; leave headroom below 120 for scheduler slack.
  EXPECT_GE(elapsed, 100);

  proxy.stop();
  EXPECT_GE(proxy.stats().delayed.value(), 2u);
}

TEST(ImpairmentProxy, CorruptionFlipsExactlyOneByte) {
  EchoUpstream upstream;
  FaultPlan plan;
  plan.up.corrupt = 1.0;  // down stays clean: the echo shows the damage
  ImpairmentProxy proxy(config_for(upstream, plan));
  ASSERT_TRUE(proxy.start().ok());

  Client client(proxy.port());
  const std::string payload(64, 'x');
  ASSERT_TRUE(client.send(payload));
  const auto reply = client.recv(3000);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->size(), payload.size());
  int diffs = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if ((*reply)[i] != payload[i]) ++diffs;
  }
  EXPECT_EQ(diffs, 1) << "single-byte corruption must damage exactly one byte";

  proxy.stop();
  EXPECT_GE(proxy.stats().corrupted.value(), 1u);
}

TEST(ImpairmentProxy, DuplicationDeliversTheAnswerTwice) {
  EchoUpstream upstream;
  FaultPlan plan;
  plan.down.dup = 1.0;
  ImpairmentProxy proxy(config_for(upstream, plan));
  ASSERT_TRUE(proxy.start().ok());

  Client client(proxy.port());
  ASSERT_TRUE(client.send("twice"));
  const auto first = client.recv(3000);
  const auto second = client.recv(3000);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value()) << "duplicate copy never arrived";
  EXPECT_EQ(*first, "twice");
  EXPECT_EQ(*second, "twice");

  proxy.stop();
  EXPECT_GE(proxy.stats().duplicated.value(), 1u);
}

TEST(ImpairmentProxy, BlackholeWindowGoesCompletelyDark) {
  EchoUpstream upstream;
  FaultPlan plan;
  plan.blackholes.push_back({Duration::zero(), Duration::seconds(600)});
  ImpairmentProxy proxy(config_for(upstream, plan));
  ASSERT_TRUE(proxy.start().ok());

  Client client(proxy.port());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(client.send("void"));
  EXPECT_FALSE(client.recv(300).has_value());

  proxy.stop();
  EXPECT_GE(proxy.stats().blackholed.value(), 3u);
  EXPECT_EQ(proxy.stats().forwarded_up.value(), 0u);
}

TEST(ImpairmentProxy, TcpResetKillsFreshConnections) {
  EchoUpstream upstream;
  FaultPlan plan;
  plan.up.tcp_reset = 1.0;
  ImpairmentProxy proxy(config_for(upstream, plan));
  ASSERT_TRUE(proxy.start().ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_storage dst{};
  const socklen_t len = net::sockaddr_from_endpoint(
      Endpoint{IpAddr(kLoopback), proxy.port()}, dst);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&dst), len), 0);

  // The proxy accepts then resets; the next read must fail or EOF fast.
  pollfd pfd{fd, POLLIN, 0};
  ASSERT_EQ(::poll(&pfd, 1, 3000), 1) << "reset never arrived";
  char buf[16];
  EXPECT_LE(::recv(fd, buf, sizeof(buf), 0), 0);
  ::close(fd);

  proxy.stop();
  EXPECT_GE(proxy.stats().tcp_resets.value(), 1u);
}

TEST(ImpairmentProxy, SetUpstreamRepointsNewFlows) {
  EchoUpstream a('A');
  EchoUpstream b('B');
  ImpairmentProxy proxy(config_for(a));
  ASSERT_TRUE(proxy.start().ok());

  {
    Client client(proxy.port());
    ASSERT_TRUE(client.send("x-first"));
    const auto reply = client.recv(3000);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->front(), 'A');
  }

  // Rewire (a machine restarted on a fresh port): a *new* flow lands on
  // the new upstream.
  proxy.set_upstream(b.endpoint());
  {
    Client client(proxy.port());
    ASSERT_TRUE(client.send("x-second"));
    const auto reply = client.recv(3000);
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->front(), 'B');
  }

  proxy.stop();
}

TEST(ImpairmentProxy, StopIsPromptAndIdempotent) {
  EchoUpstream upstream;
  FaultPlan plan;
  plan.up.delay = Duration::seconds(30);  // a queue full of far-future sends
  ImpairmentProxy proxy(config_for(upstream, plan));
  ASSERT_TRUE(proxy.start().ok());
  Client client(proxy.port());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(client.send("parked"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const auto t0 = std::chrono::steady_clock::now();
  proxy.stop();
  proxy.stop();  // idempotent
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_LT(elapsed, 1000) << "stop() waited on the delay queue";
}

}  // namespace
}  // namespace akadns::chaos
