// The secondary side of zone propagation over real sockets (RFC 1996 /
// 1995 / 5936): a refresh thread that probes a primary's SOA serial over
// UDP and, when behind, pulls the delta chain (IXFR) or the full zone
// (AXFR) over TCP and feeds it into the local ZonePublisher — from where
// it fans out to every serve worker's replica exactly like a local
// publish. NOTIFY arrivals (wired via ServeConfig::on_notify ->
// notify_kick()) collapse the refresh interval to "now".
//
// Hardened for a hostile network (the degradation ladder):
//   * Every socket operation is nonblocking and polled together with a
//     stop eventfd, so stop() interrupts a probe or transfer stalled on
//     a blackholed primary immediately instead of waiting out SO_RCVTIMEO.
//   * Failures back off per apex: exponential with +/-20% deterministic
//     jitter, clamped by the zone's own SOA retry. A NOTIFY collapses
//     the backoff — the primary just told us it has news.
//   * Transfers run under a whole-transfer deadline and byte/record
//     budgets; a stalled or runaway stream is cut, counted by reason
//     (akadns_transfer_rejected_total), and never partially published —
//     the guard (propagation/transfer_guard.hpp) vets every stream
//     before it reaches the parser.
//   * Each successful refresh feeds the per-apex FreshnessTracker;
//     synced() is monotone (initial sync achieved) and degraded() adds
//     "some zone aged past its SOA expire", which is what /healthz keys
//     on — stale zones keep serving, expired zones flip it to 503.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "common/sim_time.hpp"
#include "dns/name.hpp"
#include "net/socket.hpp"
#include "obs/registry.hpp"
#include "propagation/fault_hooks.hpp"
#include "propagation/freshness.hpp"
#include "propagation/transfer_guard.hpp"
#include "propagation/zone_publisher.hpp"

namespace akadns::net {

struct SecondaryConfig {
  /// The primary's address; UDP (SOA probes, from NOTIFYs' perspective
  /// the other direction) and TCP (transfers) use the same port.
  Ipv4Addr primary_addr = Ipv4Addr(127, 0, 0, 1);
  std::uint16_t primary_port = 0;
  /// Zones to track. Empty: refresh whatever the local publisher already
  /// holds (bootstrap a new apex by listing it here).
  std::vector<dns::DnsName> apexes;
  /// SOA probe cadence ceiling: an apex is probed every
  /// min(refresh_interval, its SOA refresh).
  Duration refresh_interval = Duration::seconds(5);
  /// Per-socket-operation timeout (probe reply, one transfer read).
  Duration io_timeout = Duration::seconds(2);
  /// Whole-transfer budget: connect to closing SOA. A primary that keeps
  /// trickling bytes can exhaust per-op timeouts forever; this cannot be
  /// exhausted.
  Duration transfer_deadline = Duration::seconds(15);
  /// Failure backoff: base * 2^level with +/-20% jitter, clamped to
  /// [base, min(backoff_cap, the zone's SOA retry)].
  Duration backoff_base = Duration::millis(500);
  Duration backoff_cap = Duration::seconds(30);
  /// Seed for the deterministic backoff jitter.
  std::uint64_t jitter_seed = 1;
  /// Byte/record ceilings a transfer may not exceed (reason: oversize).
  propagation::TransferLimits limits;
  /// Operational caps on SOA refresh/expire for the freshness ladder
  /// (drills tighten these; zero = the zone's SOA verbatim).
  propagation::FreshnessCaps freshness_caps;
  /// Share a tracker with the serve side (stale/expired query gating);
  /// null = the sync owns a private one.
  std::shared_ptr<propagation::FreshnessTracker> freshness;
  /// Test seam: per-operation fault injection (null in production).
  propagation::FaultHooksPtr fault_hooks;
};

struct SecondaryStats {
  obs::Counter soa_checks;      // UDP probes answered
  obs::Counter up_to_date;      // probe said: nothing to fetch
  obs::Counter ixfr_applied;    // delta chains fed into the publisher
  obs::Counter axfr_applied;    // full zones fed into the publisher
  obs::Counter fallbacks;       // IXFR didn't apply -> refetched as AXFR
  obs::Counter failures;        // probe/transfer/apply errors
  obs::Counter notify_kicks;    // refresh passes triggered by NOTIFY
  obs::Counter retries;         // backoff-scheduled retry attempts
  /// Transfers rejected before publish, indexed by TransferReject.
  std::array<obs::Counter, 8> rejected;

  /// One akadns_secondary_total{event=...} series per counter, plus
  /// akadns_transfer_rejected_total{reason=...}.
  void register_into(obs::MetricRegistry& reg, const obs::LabelSet& base) const {
    const auto event = [&](const char* name, const obs::Counter& c) {
      reg.counter("akadns_secondary_total", obs::with(base, "event", name), c,
                  "secondary-sync refresh events");
    };
    event("soa_check", soa_checks);
    event("up_to_date", up_to_date);
    event("ixfr_applied", ixfr_applied);
    event("axfr_applied", axfr_applied);
    event("fallback", fallbacks);
    event("failure", failures);
    event("notify_kick", notify_kicks);
    event("retry", retries);
    for (std::size_t i = 0; i < rejected.size(); ++i) {
      reg.counter("akadns_transfer_rejected_total",
                  obs::with(base, "reason",
                            propagation::to_string(
                                static_cast<propagation::TransferReject>(i))),
                  rejected[i], "zone transfers rejected before publish");
    }
  }

  std::uint64_t rejected_for(propagation::TransferReject reason) const noexcept {
    return rejected[static_cast<std::size_t>(reason)].value();
  }
};

/// Periodically pulls zone versions from a primary into `publisher`.
/// Thread-safe surface: start()/stop()/notify_kick()/stats() may be
/// called from any thread (notify_kick in particular fires from serve
/// worker threads when a NOTIFY datagram lands).
class SecondarySync {
 public:
  SecondarySync(SecondaryConfig config, propagation::ZonePublisher& publisher);
  ~SecondarySync() { stop(); }

  SecondarySync(const SecondarySync&) = delete;
  SecondarySync& operator=(const SecondarySync&) = delete;

  /// Launches the refresh thread (first pass runs immediately).
  void start();
  /// Stops and joins — promptly, even mid-probe or mid-transfer against
  /// a blackholed primary (the stop eventfd sits in every poll set).
  /// Idempotent.
  void stop();

  /// Collapses the current refresh wait and every apex's backoff —
  /// called on NOTIFY receipt. A kick landing during a refresh pass
  /// schedules one more full pass before the thread sleeps again.
  void notify_kick();

  /// One synchronous refresh pass over every tracked apex (backoff
  /// schedules are overridden: everything is due now); returns how many
  /// zones changed locally. Usable without start() (tests drive the
  /// protocol deterministically this way).
  std::size_t sync_once();

  SecondaryStats stats() const;

  /// Registers the live counters plus the freshness instruments
  /// (zone_staleness_seconds, backoff level). Counter writes are
  /// single-writer under the refresh thread; scrapes read relaxed
  /// atomics and never take this object's mutex.
  void register_metrics(obs::MetricRegistry& reg, const obs::LabelSet& base) const;

  /// True once a refresh pass has completed with every tracked apex
  /// transferred or confirmed up to date. Monotone: transient failures
  /// afterwards do not clear it (that is what degraded() is for) — a
  /// secondary that has synced once serves stale rather than flapping.
  bool synced() const;

  /// The /healthz signal: not yet synced, or some tracked zone aged past
  /// its (capped) SOA expire. Stale-but-not-expired zones do NOT degrade
  /// — serve-stale is the intended mode under primary loss.
  bool degraded() const;

  /// The shared freshness machine (the serve side gates queries on it).
  const std::shared_ptr<propagation::FreshnessTracker>& freshness() const noexcept {
    return freshness_;
  }

 private:
  struct ApexSchedule {
    int backoff_level = 0;        // consecutive failures
    std::int64_t next_due_ns = 0; // steady-clock ns; 0 = due immediately
    bool confirmed_once = false;  // ever transferred or confirmed current
  };

  void run();
  /// One pass over every due apex; returns how many zones changed.
  std::size_t run_pass(bool force_all);
  std::vector<dns::DnsName> tracked_apexes() const;
  /// UDP SOA probe; the primary's SOA for `apex` (serial + timers).
  Result<dns::SoaRecord> probe_soa(const dns::DnsName& apex);
  /// TCP transfer + apply. `have_serial` is the local serial (ignored
  /// when `have_zone` is false -> AXFR). True if the local store changed.
  Result<bool> transfer(const dns::DnsName& apex, std::uint32_t have_serial, bool have_zone);
  /// One framed TCP exchange under the transfer deadline and byte
  /// budget: sends `query`, reads messages until the SOA-delimited
  /// stream is complete. On failure `reject` carries the taxonomy
  /// reason (io / deadline / oversize / ...).
  Result<std::vector<dns::Message>> exchange(const dns::Message& query,
                                             std::uint32_t client_serial,
                                             propagation::TransferReject& reject);

  enum class IoWait { Ready, Timeout, Stopped };
  /// Polls `fd` for `events` together with the stop eventfd.
  IoWait wait_io(int fd, short events, std::int64_t deadline_ns);
  /// Sleeps `d`, interruptible by stop(). True if stop was requested.
  bool interruptible_sleep(Duration d);
  /// Consults the fault hook for `op`; true means "fail this op".
  bool hook_fate(propagation::SyncOp op);

  void note_reject(propagation::TransferReject reason);
  std::uint16_t next_transaction_id();
  Duration backoff_delay(const dns::DnsName& apex, int level,
                         const std::optional<dns::SoaRecord>& soa) const;
  Duration effective_refresh(const std::optional<dns::SoaRecord>& soa) const;
  std::optional<dns::SoaRecord> held_soa(const dns::DnsName& apex) const;

  SecondaryConfig config_;
  propagation::ZonePublisher& publisher_;
  std::shared_ptr<propagation::FreshnessTracker> freshness_;

  mutable std::mutex mutex_;  // guards stats_, schedule_, and wait state
  std::condition_variable wake_;
  bool stop_requested_ = false;
  bool kicked_ = false;
  bool running_ = false;
  SecondaryStats stats_;
  bool synced_ = false;
  std::uint16_t next_id_ = 1;
  std::unordered_map<dns::DnsName, ApexSchedule> schedule_;
  std::atomic<int> max_backoff_level_{0};
  FdHandle stop_event_;
  std::thread thread_;
};

}  // namespace akadns::net
