// Differential property suite for the compiled answer path (the core
// acceptance gate of the snapshot-compilation refactor): over randomly
// generated zones — wildcards, delegations with multi-NS glue, CNAME
// chains (in-zone, cross-zone, into wildcards, loops, dangling), empty
// non-terminals, multi-type nodes — the compiled tables and the fragment
// responder must agree with the interpreted reference *byte for byte*.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dns/wire.hpp"
#include "server/responder.hpp"
#include "zone/compiled_zone.hpp"
#include "zone/zone_builder.hpp"
#include "zone/zone_store.hpp"

namespace akadns::server {
namespace {

using dns::DnsName;
using dns::RecordType;
using zone::CompiledZone;
using zone::LookupStatus;
using zone::Zone;

struct GeneratedZone {
  Zone zone;
  std::vector<DnsName> names;             // every record owner we created
  std::vector<DnsName> wildcard_parents;  // encloser of each "*" child
  std::vector<DnsName> delegation_cuts;
};

std::string random_label(Rng& rng) {
  static const char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz";
  std::string label;
  const auto len = 1 + rng.next_below(8);
  for (std::uint64_t i = 0; i < len; ++i) label.push_back(kAlphabet[rng.next_below(26)]);
  return label;
}

// Richer than zone_property_test's generator: deep names (ENT chains),
// several record types per node, CNAME chains of every flavour the
// responder has to chase, and delegations with two nameservers so glue
// duplication order is exercised.
GeneratedZone generate_zone(Rng& rng) {
  zone::ZoneBuilder builder("gen.example", 1);
  builder.soa("ns1.gen.example", "hostmaster.gen.example", 1, 3600,
              static_cast<std::uint32_t>(60 + rng.next_below(600)));
  builder.ns("@", "ns1.gen.example");
  builder.a("ns1", "10.0.0.1");
  GeneratedZone out{Zone(DnsName::from("gen.example"), 1), {}, {}, {}};
  out.names.push_back(DnsName::from("gen.example"));
  out.names.push_back(DnsName::from("ns1.gen.example"));
  std::set<std::string> used{"ns1"};

  auto ttl = [&rng] { return static_cast<std::uint32_t>(30 + rng.next_below(3600)); };

  // Hosts: one to three levels deep (deep names force explicit ENTs),
  // with a mix of types so ANY and per-type probes diverge.
  const auto hosts = 4 + rng.next_below(20);
  for (std::uint64_t i = 0; i < hosts; ++i) {
    std::string owner = "h" + random_label(rng);
    if (rng.next_bool(0.4)) owner += "." + random_label(rng);
    if (rng.next_bool(0.2)) owner += "." + random_label(rng);
    if (!used.insert(owner).second) continue;
    builder.a(owner, Ipv4Addr(192, 0, 2, static_cast<std::uint8_t>(i + 1)).to_string(), ttl());
    if (rng.next_bool(0.3)) builder.aaaa(owner, "2001:db8::1", ttl());
    if (rng.next_bool(0.3)) builder.txt(owner, "v=" + random_label(rng), ttl());
    if (rng.next_bool(0.2)) builder.mx(owner, 10, "ns1.gen.example.", ttl());
    out.names.push_back(DnsName::from(owner + ".gen.example"));
  }

  // Wildcards (A-record and CNAME-bearing) under their own subtrees.
  const auto wildcards = rng.next_below(3);
  for (std::uint64_t i = 0; i < wildcards; ++i) {
    const std::string parent = "w" + random_label(rng);
    if (!used.insert("*." + parent).second) continue;
    if (rng.next_bool(0.7)) {
      builder.a("*." + parent, "10.9.9.9", ttl());
    } else {
      builder.cname("*." + parent, "ns1.gen.example.", ttl());
    }
    out.wildcard_parents.push_back(DnsName::from(parent + ".gen.example"));
  }

  // Delegations: two NS records, glue for both (A then AAAA per target).
  const auto cuts = rng.next_below(3);
  for (std::uint64_t i = 0; i < cuts; ++i) {
    const std::string cut = "d" + random_label(rng);
    if (!used.insert(cut).second) continue;
    builder.ns(cut, "nsa." + cut + ".gen.example", ttl());
    builder.ns(cut, "nsb." + cut + ".gen.example", ttl());
    builder.a("nsa." + cut, "10.0.1.1", ttl());
    builder.a("nsb." + cut, "10.0.1.2", ttl());
    if (rng.next_bool(0.5)) builder.aaaa("nsa." + cut, "2001:db8::53", ttl());
    out.delegation_cuts.push_back(DnsName::from(cut + ".gen.example"));
    out.names.push_back(DnsName::from(cut + ".gen.example"));
  }

  // CNAME chains: a few links ending at a host, a missing in-zone name,
  // an out-of-store name, or a cross-zone name in aux.example.
  const auto chains = 1 + rng.next_below(3);
  for (std::uint64_t c = 0; c < chains; ++c) {
    const auto links = 1 + rng.next_below(4);
    const std::string base = "c" + std::to_string(c) + random_label(rng);
    for (std::uint64_t l = 0; l + 1 < links; ++l) {
      builder.cname(base + std::to_string(l), base + std::to_string(l + 1) + ".gen.example.",
                    ttl());
    }
    std::string tail;
    switch (rng.next_below(4)) {
      case 0: tail = "ns1.gen.example."; break;                    // existing host
      case 1: tail = "missing" + random_label(rng) + ".gen.example."; break;
      case 2: tail = "cdn." + random_label(rng) + ".example."; break;  // out of store
      default: tail = "target.aux.example."; break;                // cross-zone
    }
    builder.cname(base + std::to_string(links - 1), tail, ttl());
    for (std::uint64_t l = 0; l < links; ++l) {
      out.names.push_back(DnsName::from(base + std::to_string(l) + ".gen.example"));
    }
  }
  // A chain into a wildcard subtree, and a two-node loop.
  if (!out.wildcard_parents.empty()) {
    // to_string() is already absolute (trailing dot).
    builder.cname("cwild", random_label(rng) + "." + out.wildcard_parents.front().to_string(),
                  ttl());
    out.names.push_back(DnsName::from("cwild.gen.example"));
  }
  if (rng.next_bool(0.5)) {
    builder.cname("cloopa", "cloopb.gen.example.", ttl());
    builder.cname("cloopb", "cloopa.gen.example.", ttl());
    out.names.push_back(DnsName::from("cloopa.gen.example"));
  }

  out.zone = builder.build();
  return out;
}

zone::Zone aux_zone() {
  return zone::ZoneBuilder("aux.example", 1)
      .ns("@", "ns1.aux.example")
      .a("ns1", "10.8.0.1")
      .a("target", "198.18.0.1")
      .build();
}

// Probe names covering every interesting region: real names, children of
// real names (NXDOMAIN / wildcard / below-cut), ENT ancestors, and junk.
std::vector<DnsName> make_probes(const GeneratedZone& g, Rng& rng) {
  std::vector<DnsName> probes = g.names;
  probes.push_back(DnsName::from("gen.example"));
  probes.push_back(DnsName::from("aux.example"));
  probes.push_back(DnsName::from("target.aux.example"));
  probes.push_back(DnsName::from("www.unhosted.example"));  // REFUSED
  for (const auto& name : g.names) {
    if (rng.next_bool(0.5)) {
      if (const auto child = name.prepend(random_label(rng))) probes.push_back(*child);
    }
    if (name.label_count() > 2 && rng.next_bool(0.5)) probes.push_back(name.parent());  // ENTs
  }
  for (const auto& parent : g.wildcard_parents) {
    if (const auto under = parent.prepend(random_label(rng))) {
      probes.push_back(*under);
      if (const auto deeper = under->prepend(random_label(rng))) probes.push_back(*deeper);
    }
  }
  for (const auto& cut : g.delegation_cuts) {
    probes.push_back(cut);
    if (const auto below = cut.prepend(random_label(rng))) probes.push_back(*below);
  }
  for (int i = 0; i < 10; ++i) {
    probes.push_back(DnsName::from(random_label(rng) + "." + random_label(rng) + ".gen.example"));
  }
  return probes;
}

RecordType random_qtype(Rng& rng) {
  static const RecordType kTypes[] = {RecordType::A,   RecordType::AAAA, RecordType::TXT,
                                      RecordType::MX,  RecordType::NS,   RecordType::CNAME,
                                      RecordType::ANY, RecordType::SOA};
  return kTypes[rng.next_below(std::size(kTypes))];
}

class CompiledZoneProperty : public ::testing::TestWithParam<std::uint64_t> {};

// The compiled lookup tables agree with Zone::lookup on status and
// wildcard flag for every probe (section bytes are covered end-to-end by
// the responder test below).
TEST_P(CompiledZoneProperty, LookupAgreesWithInterpreted) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 8; ++trial) {
    const auto generated = generate_zone(rng);
    auto snapshot = std::make_shared<const Zone>(generated.zone);
    const auto compiled = CompiledZone::compile(snapshot);
    for (const auto& qname : make_probes(generated, rng)) {
      if (!qname.is_subdomain_of(compiled->apex())) continue;
      for (int t = 0; t < 3; ++t) {
        const auto qtype = random_qtype(rng);
        const auto expect = snapshot->lookup(qname, qtype);
        const auto got = compiled->lookup(qname, qtype);
        EXPECT_EQ(got.status, expect.status)
            << qname.to_string() << " qtype=" << static_cast<int>(qtype);
        EXPECT_EQ(got.wildcard_match, expect.wildcard_match) << qname.to_string();
        if (expect.status == LookupStatus::Answer ||
            expect.status == LookupStatus::CnameChase) {
          EXPECT_EQ(got.answers.size(), expect.records.size()) << qname.to_string();
          EXPECT_FALSE(got.answers.empty());
        }
        if (got.status == LookupStatus::CnameChase) {
          ASSERT_NE(got.cname_target, nullptr);
          ASSERT_FALSE(expect.records.empty());
          EXPECT_EQ(*got.cname_target,
                    std::get<dns::CnameRecord>(expect.records[0].rdata).target);
        }
      }
    }
  }
}

// End-to-end byte identity: a compiled-path responder and an interpreted
// responder over the same store emit identical wire for every probe, in
// every EDNS variant (none / large payload / small payload with ECS —
// the last exercising the truncation ladder on big ANY answers), and a
// cache-enabled responder replays those same bytes on repeat queries.
TEST_P(CompiledZoneProperty, ResponderWireByteIdentical) {
  Rng rng(GetParam() ^ 0xD1FFu);
  const Endpoint client{*IpAddr::parse("198.51.100.7"), 5353};
  for (int trial = 0; trial < 5; ++trial) {
    const auto generated = generate_zone(rng);
    zone::ZoneStore store;
    ASSERT_TRUE(store.publish(generated.zone));
    ASSERT_TRUE(store.publish(aux_zone()));

    Responder compiled(store, {.enable_compiled_path = true, .enable_answer_cache = false});
    Responder cached(store, {.enable_compiled_path = true, .enable_answer_cache = true});
    Responder interpreted(store, {.enable_compiled_path = false});

    for (const auto& qname : make_probes(generated, rng)) {
      const auto qtype = random_qtype(rng);
      auto query = dns::make_query(0x4242, qname, qtype, rng.next_bool(0.5));
      switch (rng.next_below(3)) {
        case 0: break;  // no EDNS
        case 1:
          query.edns.emplace();
          query.edns->udp_payload_size = 4096;
          break;
        default:
          query.edns.emplace();
          query.edns->udp_payload_size = 512;
          if (rng.next_bool(0.5)) {
            query.edns->client_subnet =
                dns::ClientSubnet{*IpAddr::parse("203.0.113.0"), 24, 0};
          }
          break;
      }
      const auto wire = dns::encode(query);

      const auto from_compiled = compiled.respond_wire(wire, client);
      const auto from_interpreted = interpreted.respond_wire(wire, client);
      ASSERT_TRUE(from_compiled.has_value());
      ASSERT_TRUE(from_interpreted.has_value());
      EXPECT_EQ(*from_compiled, *from_interpreted)
          << qname.to_string() << " qtype=" << static_cast<int>(qtype);

      // Cache miss then hit must both reproduce the reference bytes.
      const auto miss = cached.respond_wire(wire, client);
      const auto hit = cached.respond_wire(wire, client);
      ASSERT_TRUE(miss.has_value() && hit.has_value());
      EXPECT_EQ(*miss, *from_interpreted) << qname.to_string();
      EXPECT_EQ(*hit, *from_interpreted) << qname.to_string();
    }

    // Exact stat parity: the fast path must count queries the way the
    // reference does (the datapath breakdown fields are the only
    // difference). The cached responder answered every probe twice, so
    // delta replay on hits must land it at exactly twice the reference —
    // any drift means a hit and a miss are counted differently.
    const auto& a = compiled.stats();
    const auto& c = cached.stats();
    const auto& b = interpreted.stats();
    EXPECT_EQ(a.responses, b.responses);
    EXPECT_EQ(a.noerror, b.noerror);
    EXPECT_EQ(a.nxdomain, b.nxdomain);
    EXPECT_EQ(a.nodata, b.nodata);
    EXPECT_EQ(a.refused, b.refused);
    EXPECT_EQ(a.servfail, b.servfail);
    EXPECT_EQ(a.referrals, b.referrals);
    EXPECT_EQ(a.wildcard_answers, b.wildcard_answers);
    EXPECT_EQ(a.cname_chases, b.cname_chases);
    EXPECT_EQ(c.responses, 2 * b.responses);
    EXPECT_EQ(c.noerror, 2 * b.noerror);
    EXPECT_EQ(c.nxdomain, 2 * b.nxdomain);
    EXPECT_EQ(c.nodata, 2 * b.nodata);
    EXPECT_EQ(c.refused, 2 * b.refused);
    EXPECT_EQ(c.servfail, 2 * b.servfail);
    EXPECT_EQ(c.referrals, 2 * b.referrals);
    EXPECT_EQ(c.wildcard_answers, 2 * b.wildcard_answers);
    EXPECT_EQ(c.cname_chases, 2 * b.cname_chases);
    EXPECT_EQ(interpreted.stats().compiled_answers, 0u);
    EXPECT_EQ(interpreted.stats().cache_hits, 0u);
    EXPECT_GT(compiled.stats().compiled_answers, 0u);
    EXPECT_GT(cached.stats().cache_hits, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledZoneProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace akadns::server
