file(REMOVE_RECURSE
  "libakadns_pop.a"
)
