// DNS-over-TCP two-byte length framing (RFC 1035 §4.2.2 / RFC 7766).
//
// Every message on a TCP connection is preceded by a 16-bit big-endian
// length. The decoder here is a pure incremental state machine — no
// sockets, no allocation per frame once the reassembly buffer has grown
// to working size — so the byte-stream edge cases (partial reads that
// split the length prefix or the payload, zero-length frames, frames
// larger than the server will buffer, many pipelined queries arriving in
// one read) are all testable without a kernel in the loop. The epoll
// frontend feeds it whatever read() returned and drains complete frames;
// the property suite feeds it adversarial chunkings of adversarial
// streams.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace akadns::net {

/// Why a FrameDecoder refused further input. A conforming client never
/// triggers either; both mean "drop the connection" (RFC 7766 §8: a
/// server MUST treat a malformed stream as a protocol error).
enum class FrameError : std::uint8_t {
  None,
  /// A zero-length frame: no DNS header can fit, and accepting it would
  /// let a client spin the server with empty messages.
  EmptyFrame,
  /// The advertised length exceeds the decoder's configured maximum
  /// (a query has no business approaching 64 KiB; the cap bounds
  /// per-connection memory against hostile peers).
  Oversized,
};

/// Incremental reassembler for length-prefixed DNS messages.
///
///   decoder.feed(bytes_from_read);
///   while (auto frame = decoder.next()) handle(*frame);
///   if (decoder.error() != FrameError::None) close_connection();
///
/// The span returned by next() points into the decoder's reassembly
/// buffer and is invalidated by the following feed() or next() call.
class FrameDecoder {
 public:
  /// `max_frame` caps the accepted payload length; queries beyond it
  /// poison the decoder with FrameError::Oversized.
  explicit FrameDecoder(std::size_t max_frame = 65535) noexcept : max_frame_(max_frame) {}

  /// Appends stream bytes. Any chunking is legal, including one byte at
  /// a time and chunks spanning many frames. No-op once poisoned.
  void feed(std::span<const std::uint8_t> bytes);

  /// Returns the next complete frame payload, or an empty optional-like
  /// span signalled by `has_frame` when more bytes are needed. Call in a
  /// loop: pipelined queries yield one frame per call.
  struct Frame {
    std::span<const std::uint8_t> payload;
    bool has_frame = false;
    explicit operator bool() const noexcept { return has_frame; }
    std::span<const std::uint8_t> operator*() const noexcept { return payload; }
  };
  Frame next();

  FrameError error() const noexcept { return error_; }
  bool poisoned() const noexcept { return error_ != FrameError::None; }

  /// Bytes buffered but not yet returned as frames (diagnostics; also
  /// lets the drain path see whether a connection is mid-message).
  std::size_t buffered() const noexcept { return buffer_.size() - consumed_; }

  /// True when the stream ends cleanly here: no partial length prefix or
  /// partial payload is pending. The drain path uses this to distinguish
  /// an idle connection from one cut off mid-frame.
  bool at_frame_boundary() const noexcept { return buffered() == 0; }

 private:
  std::size_t max_frame_;
  std::vector<std::uint8_t> buffer_;
  /// Prefix of buffer_ already handed out as frames; compacted lazily so
  /// a burst of pipelined frames costs one memmove, not one per frame.
  std::size_t consumed_ = 0;
  FrameError error_ = FrameError::None;
};

/// Encodes the two-byte big-endian length prefix for `payload_len`.
/// The caller is responsible for payload_len <= 65535 (the DNS encoder
/// never emits more — kMaxMessageSize).
inline std::array<std::uint8_t, 2> frame_prefix(std::size_t payload_len) noexcept {
  return {static_cast<std::uint8_t>((payload_len >> 8) & 0xff),
          static_cast<std::uint8_t>(payload_len & 0xff)};
}

}  // namespace akadns::net
