# Empty compiler generated dependencies file for bench_fig4_stability.
# This may be replaced when dependencies are built.
