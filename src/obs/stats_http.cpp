#include "obs/stats_http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "obs/exposition.hpp"

namespace akadns::obs {

namespace {

void send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer went away; a scrape is best-effort
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string http_response(int status, std::string_view reason,
                          std::string_view content_type, std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + std::string(reason) +
                    "\r\nContent-Type: " + std::string(content_type) +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

StatsServer::StatsServer(SnapshotFn snapshot_fn, ReadyFn ready_fn)
    : snapshot_fn_(std::move(snapshot_fn)), ready_fn_(std::move(ready_fn)) {}

StatsServer::~StatsServer() { stop(); }

bool StatsServer::start(std::uint16_t port, std::string* error) {
  const auto set_error = [&](const std::string& what) {
    if (error) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return set_error("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return set_error("bind");
  }
  if (::listen(listen_fd_, 16) != 0) return set_error("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return set_error("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void StatsServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void StatsServer::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);  // 100ms tick to observe stop_
    if (rc <= 0) continue;
    const int conn = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (conn < 0) continue;
    handle_conn(conn);
    ::close(conn);
  }
}

void StatsServer::handle_conn(int fd) {
  // Read until the header terminator; requests are tiny GETs.
  const timeval tv{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::string req;
  char buf[1024];
  while (req.find("\r\n\r\n") == std::string::npos && req.size() < 8192) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    req.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t sp1 = req.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                   : req.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || req.substr(0, sp1) != "GET") {
    send_all(fd, http_response(400, "Bad Request", "text/plain", "bad request\n"));
    return;
  }
  const std::string path = req.substr(sp1 + 1, sp2 - sp1 - 1);
  if (path == "/metrics") {
    const std::string body = render_prometheus(snapshot_fn_());
    send_all(fd, http_response(200, "OK", "text/plain; version=0.0.4", body));
  } else if (path == "/metrics.json") {
    const std::string body = render_json(snapshot_fn_());
    send_all(fd, http_response(200, "OK", "application/json", body));
  } else if (path == "/healthz") {
    const bool ready = !ready_fn_ || ready_fn_();
    if (ready) {
      send_all(fd, http_response(200, "OK", "text/plain", "ok\n"));
    } else {
      send_all(fd,
               http_response(503, "Service Unavailable", "text/plain", "unready\n"));
    }
  } else {
    send_all(fd, http_response(404, "Not Found", "text/plain", "not found\n"));
  }
}

// ---------------------------------------------------------------------------
// Client

bool http_get(const std::string& url, HttpResponse* out, std::string* error,
              int timeout_ms) {
  const auto fail = [&](const std::string& what) {
    if (error) *error = what;
    return false;
  };
  constexpr std::string_view kScheme = "http://";
  if (url.substr(0, kScheme.size()) != kScheme) {
    return fail("unsupported url (need http://): " + url);
  }
  const std::string rest = url.substr(kScheme.size());
  const std::size_t slash = rest.find('/');
  const std::string hostport = slash == std::string::npos ? rest : rest.substr(0, slash);
  const std::string path = slash == std::string::npos ? "/" : rest.substr(slash);
  const std::size_t colon = hostport.rfind(':');
  if (colon == std::string::npos) return fail("url needs an explicit port: " + url);
  const std::string host = hostport.substr(0, colon);
  const int port = std::atoi(hostport.c_str() + colon + 1);
  if (port <= 0 || port > 65535) return fail("bad port in url: " + url);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string target = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, target.c_str(), &addr.sin_addr) != 1) {
    return fail("bad host (need an IPv4 literal or localhost): " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return fail(std::string("socket: ") + std::strerror(errno));
  const timeval tv{timeout_ms / 1000, (timeout_ms % 1000) * 1000};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return fail("connect " + hostport + ": " + err);
  }
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: " + hostport +
                          "\r\nConnection: close\r\n\r\n";
  send_all(fd, req);
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t hdr_end = resp.find("\r\n\r\n");
  if (hdr_end == std::string::npos) return fail("truncated http response");
  const std::size_t sp = resp.find(' ');
  if (sp == std::string::npos || sp + 4 > resp.size()) return fail("bad status line");
  out->status = std::atoi(resp.c_str() + sp + 1);
  out->body = resp.substr(hdr_end + 4);
  return true;
}

}  // namespace akadns::obs
