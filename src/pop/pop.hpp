// A point of presence (§3.1, Figure 6): a router fronting one or more
// machines. Machines advertise anycast clouds to the router via their
// BGP speakers; the router advertises a cloud to its (simulated) BGP
// peers iff at least one machine advertises it, and forwards arriving
// packets to one of the advertising machines via ECMP on the flow tuple.
// Among advertising machines, only those with the lowest MED receive
// traffic — the mechanism that keeps input-delayed nameservers idle
// until everything else has withdrawn (§4.2.3).
#pragma once

#include <memory>

#include "common/worker_pool.hpp"
#include "pop/machine.hpp"

namespace akadns::pop {

struct PopConfig {
  std::string id = "pop";
  netsim::NodeId router_node = netsim::kInvalidNode;
};

class Pop {
 public:
  Pop(PopConfig config, netsim::Network& network);

  const std::string& id() const noexcept { return config_.id; }
  netsim::NodeId router_node() const noexcept { return config_.router_node; }

  /// Creates a machine inside this PoP. The machine's speaker is wired
  /// to trigger advertisement recomputation.
  Machine& add_machine(MachineConfig config, const zone::ZoneStore& store);

  /// Adopts an externally constructed machine (e.g. one owning a private
  /// zone-store replica for the metadata pipeline).
  Machine& adopt_machine(std::unique_ptr<Machine> machine);

  std::size_t machine_count() const noexcept { return machines_.size(); }
  Machine& machine(std::size_t i) { return *machines_.at(i); }
  const Machine& machine(std::size_t i) const { return *machines_.at(i); }
  std::vector<Machine*> machines();

  /// Recomputes the router's external advertisements from the machines'
  /// speaker state (called automatically on speaker changes).
  void recompute_advertisements();

  /// True if the router currently advertises `cloud` externally.
  bool advertising(netsim::PrefixId cloud) const;

  /// The ECMP-eligible machines for a cloud: running machines advertising
  /// it at the lowest MED currently present.
  std::vector<Machine*> ecmp_set(netsim::PrefixId cloud);

  /// Selects the machine for a flow via the ECMP hash of
  /// (source address, source port, cloud). Returns nullptr if none.
  Machine* ecmp_select(netsim::PrefixId cloud, const Endpoint& source);

  /// Delivers an anycast packet arriving at the router for `cloud`.
  void deliver(netsim::PrefixId cloud, std::span<const std::uint8_t> wire,
               const Endpoint& source, std::uint8_t ip_ttl, SimTime now);

  /// Drives all machines' processing loops; returns queries processed.
  /// With a worker pool, every machine's lanes drain concurrently across
  /// its threads: phase budgets are assigned serially per machine, the
  /// (machine, lane) tasks run in parallel (each touches only its own
  /// lane), and responses/crashes/stats settle serially in machine order
  /// — so the result is bit-identical to the serial drain (pool omitted
  /// or single-threaded) for any thread count.
  std::size_t pump(SimTime now, WorkerPool* pool = nullptr);

 private:
  PopConfig config_;
  netsim::Network& network_;
  std::vector<std::unique_ptr<Machine>> machines_;
};

}  // namespace akadns::pop
