#include "common/zipf.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace akadns {
namespace {

TEST(ZipfSampler, PmfSumsToOne) {
  ZipfSampler zipf(100, 1.1);
  double total = 0;
  for (std::size_t k = 0; k < 100; ++k) total += zipf.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfSampler, PmfMonotoneDecreasing) {
  ZipfSampler zipf(50, 0.9, 2.0);
  for (std::size_t k = 1; k < 50; ++k) {
    EXPECT_LE(zipf.pmf(k), zipf.pmf(k - 1));
  }
}

TEST(ZipfSampler, CdfEndpoints) {
  ZipfSampler zipf(10, 1.0);
  EXPECT_DOUBLE_EQ(zipf.cdf(0), 0.0);
  EXPECT_DOUBLE_EQ(zipf.cdf(10), 1.0);
  EXPECT_DOUBLE_EQ(zipf.cdf(100), 1.0);
}

TEST(ZipfSampler, SampleInRange) {
  ZipfSampler zipf(20, 1.2);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.sample(rng), 20u);
  }
}

TEST(ZipfSampler, SampleFrequenciesMatchPmf) {
  ZipfSampler zipf(10, 1.0);
  Rng rng(2);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.pmf(k), 0.01);
  }
}

TEST(ZipfSampler, HigherExponentMoreSkew) {
  ZipfSampler mild(1000, 0.5);
  ZipfSampler steep(1000, 1.5);
  EXPECT_LT(mild.cdf(10), steep.cdf(10));
}

TEST(ZipfSampler, InvalidParamsThrow) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, 0.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, 1.0, -1.0), std::invalid_argument);
}

TEST(ZipfSampler, CalibrateExponentHitsTarget) {
  // Find s such that the top 3% of 10,000 ranks carry 80% of the mass —
  // the paper's Figure 2 "IPs" line.
  const std::size_t n = 10000;
  const double s = ZipfSampler::calibrate_exponent(n, 0.03, 0.80);
  ZipfSampler zipf(n, s);
  const auto top_k = static_cast<std::size_t>(0.03 * n);
  EXPECT_NEAR(zipf.cdf(top_k), 0.80, 0.01);
}

TEST(ZipfSampler, CalibrateZonesLine) {
  // Figure 2 "zones": top 1% of zones receive 88% of queries.
  const std::size_t n = 20000;
  const double s = ZipfSampler::calibrate_exponent(n, 0.01, 0.88);
  ZipfSampler zipf(n, s);
  EXPECT_NEAR(zipf.cdf(n / 100), 0.88, 0.01);
}

TEST(ZipfSampler, SingleRankAlwaysZero) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(3);
  EXPECT_EQ(zipf.sample(rng), 0u);
  EXPECT_DOUBLE_EQ(zipf.pmf(0), 1.0);
}

}  // namespace
}  // namespace akadns
