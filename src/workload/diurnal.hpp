// Diurnal query-rate model (Figure 1): the platform's aggregate rate
// varies between ~3.9M and ~5.6M qps over a week, with a daily sinusoid
// and a weekend dip, plus small high-frequency noise.
#pragma once

#include "common/rng.hpp"
#include "common/sim_time.hpp"

namespace akadns::workload {

struct DiurnalConfig {
  double min_qps = 3.9e6;
  double max_qps = 5.6e6;
  /// Weekend peak as a fraction of weekday peak (Figure 1 shows visibly
  /// lower weekend peaks).
  double weekend_factor = 0.92;
  /// Hour of day (UTC-ish) at which the daily peak occurs.
  double peak_hour = 15.0;
  /// Relative amplitude of measurement noise.
  double noise = 0.01;
  /// Day-of-week of t=0; 0 = Sunday (the paper's plot starts on Sunday).
  int start_day_of_week = 0;
};

class DiurnalModel {
 public:
  DiurnalModel(DiurnalConfig config, std::uint64_t seed);

  /// Expected aggregate qps at simulated time t (no noise).
  double rate_at(SimTime t) const;

  /// Rate with sampling noise (deterministic per (seed, call sequence)).
  double noisy_rate_at(SimTime t, Rng& rng) const;

  const DiurnalConfig& config() const noexcept { return config_; }

 private:
  DiurnalConfig config_;
};

}  // namespace akadns::workload
