
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/twotier/gtm.cpp" "src/twotier/CMakeFiles/akadns_twotier.dir/gtm.cpp.o" "gcc" "src/twotier/CMakeFiles/akadns_twotier.dir/gtm.cpp.o.d"
  "/root/repo/src/twotier/mapping.cpp" "src/twotier/CMakeFiles/akadns_twotier.dir/mapping.cpp.o" "gcc" "src/twotier/CMakeFiles/akadns_twotier.dir/mapping.cpp.o.d"
  "/root/repo/src/twotier/model.cpp" "src/twotier/CMakeFiles/akadns_twotier.dir/model.cpp.o" "gcc" "src/twotier/CMakeFiles/akadns_twotier.dir/model.cpp.o.d"
  "/root/repo/src/twotier/probe_dataset.cpp" "src/twotier/CMakeFiles/akadns_twotier.dir/probe_dataset.cpp.o" "gcc" "src/twotier/CMakeFiles/akadns_twotier.dir/probe_dataset.cpp.o.d"
  "/root/repo/src/twotier/rt_simulator.cpp" "src/twotier/CMakeFiles/akadns_twotier.dir/rt_simulator.cpp.o" "gcc" "src/twotier/CMakeFiles/akadns_twotier.dir/rt_simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/resolver/CMakeFiles/akadns_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/akadns_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/akadns_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
