#include "resolver/iterative_resolver.hpp"

#include <algorithm>
#include <map>

namespace akadns::resolver {

using dns::DnsName;
using dns::Message;
using dns::Rcode;
using dns::RecordType;
using dns::ResourceRecord;

IterativeResolver::IterativeResolver(IterativeResolverConfig config, Transport transport,
                                     std::uint64_t seed)
    : config_(config),
      transport_(std::move(transport)),
      rng_(seed),
      cache_(config.cache_capacity) {}

void IterativeResolver::add_hint(const DnsName& zone, const IpAddr& server) {
  auto& servers = hints_[zone];
  if (std::find(servers.begin(), servers.end(), server) == servers.end()) {
    servers.push_back(server);
  }
}

Duration IterativeResolver::rtt_estimate(const IpAddr& server) const {
  const auto it = srtt_.find(server);
  // Unknown servers are assumed moderately fast so they get explored.
  return it == srtt_.end() ? Duration::millis(30) : it->second;
}

Duration IterativeResolver::learned_rtt(const IpAddr& server) const {
  const auto it = srtt_.find(server);
  return it == srtt_.end() ? Duration::zero() : it->second;
}

IterativeResolver::Delegation IterativeResolver::closest_delegation(const DnsName& qname,
                                                                    SimTime now) {
  // Search suffixes from longest to shortest; at each depth prefer a
  // cached NS delegation (with resolvable addresses), else a hint.
  for (std::size_t depth = qname.label_count() + 1; depth-- > 0;) {
    const DnsName zone = qname.suffix(depth);
    if (auto entry = cache_.lookup(zone, RecordType::NS, now); entry && !entry->negative) {
      Delegation delegation;
      for (const auto& rr : entry->records) {
        const auto& target = std::get<dns::NsRecord>(rr.rdata).nameserver;
        if (auto glue = cache_.lookup(target, RecordType::A, now);
            glue && !glue->negative) {
          for (const auto& addr_rr : glue->records) {
            delegation.servers.push_back(std::get<dns::ARecord>(addr_rr.rdata).address);
          }
        }
        if (auto glue6 = cache_.lookup(target, RecordType::AAAA, now);
            glue6 && !glue6->negative) {
          for (const auto& addr_rr : glue6->records) {
            delegation.servers.push_back(std::get<dns::AaaaRecord>(addr_rr.rdata).address);
          }
        }
      }
      if (!delegation.servers.empty()) return delegation;
    }
    if (const auto hint = hints_.find(zone); hint != hints_.end()) {
      return Delegation{hint->second};
    }
    if (depth == 0) break;
  }
  return {};
}

std::optional<UpstreamReply> IterativeResolver::query_servers(const Message& query,
                                                              std::vector<IpAddr> servers,
                                                              ResolutionResult& result) {
  // Order servers by the selection policy, then walk the order retrying
  // on timeout — "retry against the other clouds".
  std::vector<IpAddr> order;
  std::vector<Duration> rtts;
  rtts.reserve(servers.size());
  while (!servers.empty()) {
    for (const auto& s : servers) rtts.push_back(rtt_estimate(s));
    const std::size_t pick = select_delegation(rtts, config_.policy, rng_);
    order.push_back(servers[pick]);
    servers.erase(servers.begin() + static_cast<std::ptrdiff_t>(pick));
    rtts.clear();
  }
  for (const auto& server : order) {
    ++result.upstream_queries;
    auto reply = transport_(query, server);
    if (!reply) {
      ++result.timeouts;
      result.elapsed += config_.timeout_cost;
      continue;
    }
    result.elapsed += reply->rtt;
    if (config_.learn_rtts) {
      auto& srtt = srtt_[server];
      srtt = srtt == Duration::zero() ? reply->rtt
                                      : Duration::seconds_f(0.8 * srtt.to_seconds() +
                                                            0.2 * reply->rtt.to_seconds());
    }
    // Truncated over UDP: retry the same server over TCP (one extra RTT
    // for the handshake on top of the exchange).
    if (reply->message.header.tc && config_.retry_truncated_over_tcp && tcp_transport_) {
      ++truncated_retries_;
      ++result.upstream_queries;
      if (auto tcp_reply = tcp_transport_(query, server)) {
        result.elapsed += tcp_reply->rtt + tcp_reply->rtt;  // SYN + exchange
        return tcp_reply;
      }
      ++result.timeouts;
      result.elapsed += config_.timeout_cost;
      continue;  // TCP failed too: try the next delegation
    }
    return reply;
  }
  return std::nullopt;
}

void IterativeResolver::cache_response(const Message& response, SimTime now) {
  // Positive answers: group answer records by (name, type).
  std::map<std::pair<DnsName, RecordType>, std::vector<ResourceRecord>> sets;
  for (const auto& rr : response.answers) {
    sets[{rr.name, rr.type()}].push_back(rr);
  }
  for (const auto& rr : response.additionals) {
    if (rr.type() == RecordType::A || rr.type() == RecordType::AAAA) {
      sets[{rr.name, rr.type()}].push_back(rr);
    }
  }
  for (const auto& rr : response.authorities) {
    if (rr.type() == RecordType::NS) sets[{rr.name, rr.type()}].push_back(rr);
  }
  for (auto& [key, records] : sets) {
    cache_.insert(key.first, key.second, std::move(records), now);
  }
  // Negative caching from the SOA in authority (RFC 2308).
  if (response.answers.empty()) {
    for (const auto& rr : response.authorities) {
      if (rr.type() == RecordType::SOA &&
          (response.header.rcode == Rcode::NxDomain ||
           response.header.rcode == Rcode::NoError)) {
        const auto& q = response.questions.at(0);
        cache_.insert_negative(q.name, q.qtype, response.header.rcode, rr.ttl, now);
      }
    }
  }
}

ResolutionResult IterativeResolver::resolve(const DnsName& qname, RecordType qtype,
                                            SimTime now) {
  ResolutionResult result;
  DnsName current = qname;
  int cname_links = 0;

  for (int step = 0; step < config_.max_referrals; ++step) {
    // Cache check for the current name.
    if (auto entry = cache_.lookup(current, qtype, now)) {
      if (entry->negative) {
        result.rcode = entry->negative_rcode;
        result.from_cache = result.upstream_queries == 0;
        return result;
      }
      result.answers.insert(result.answers.end(), entry->records.begin(),
                            entry->records.end());
      result.rcode = Rcode::NoError;
      result.from_cache = result.upstream_queries == 0;
      return result;
    }
    // Cached CNAME redirects without an upstream query.
    if (auto cname = cache_.lookup(current, RecordType::CNAME, now);
        cname && !cname->negative && qtype != RecordType::CNAME) {
      if (++cname_links > config_.max_cname_chain) {
        result.rcode = Rcode::ServFail;
        return result;
      }
      result.answers.insert(result.answers.end(), cname->records.begin(),
                            cname->records.end());
      current = std::get<dns::CnameRecord>(cname->records.front().rdata).target;
      continue;
    }

    const Delegation delegation = closest_delegation(current, now);
    if (delegation.servers.empty()) {
      result.rcode = Rcode::ServFail;  // no path to an authority
      return result;
    }
    const Message query = dns::make_query(next_id_++, current, qtype);
    auto reply = query_servers(query, delegation.servers, result);
    if (!reply) {
      result.rcode = Rcode::ServFail;  // every delegation timed out
      return result;
    }
    const Message& response = reply->message;
    cache_response(response, now + result.elapsed);

    if (response.header.rcode == Rcode::NxDomain) {
      result.rcode = Rcode::NxDomain;
      return result;
    }
    if (response.header.rcode != Rcode::NoError) {
      result.rcode = response.header.rcode;
      return result;
    }
    if (!response.answers.empty()) {
      // Collect answers; follow a trailing CNAME if the target type was
      // not included.
      result.answers.insert(result.answers.end(), response.answers.begin(),
                            response.answers.end());
      const auto& last = response.answers.back();
      if (last.type() == RecordType::CNAME && qtype != RecordType::CNAME &&
          qtype != RecordType::ANY) {
        if (++cname_links > config_.max_cname_chain) {
          result.rcode = Rcode::ServFail;
          return result;
        }
        current = std::get<dns::CnameRecord>(last.rdata).target;
        continue;
      }
      result.rcode = Rcode::NoError;
      return result;
    }
    if (!response.header.aa &&
        std::any_of(response.authorities.begin(), response.authorities.end(),
                    [](const ResourceRecord& rr) { return rr.type() == RecordType::NS; })) {
      // Referral: cached above; loop continues with the deeper delegation.
      continue;
    }
    // NODATA.
    result.rcode = Rcode::NoError;
    return result;
  }
  result.rcode = Rcode::ServFail;  // referral loop
  return result;
}

}  // namespace akadns::resolver
