// akadns-loadgen: self-play load generation over real sockets.
//
// Blasts a ReplayCorpus (workload/replay.hpp — legitimate + attack mix)
// at an authoritative server over UDP, recvmmsg/sendmmsg-batched with a
// bounded in-flight window per socket, and reports achieved qps plus
// latency percentiles. Several client sockets run in parallel threads —
// each gets its own ephemeral source port, which is exactly what spreads
// the flows across the server's SO_REUSEPORT workers (the kernel hashes
// the 4-tuple, as it would hash real resolvers).
//
// Self-play verification: when the corpus was built from the same
// (zones, seed) the server publishes, expected_responses() computes the
// byte-exact answer for every corpus entry through the simulator's own
// Responder, and the loadgen compares each received datagram against it
// (transaction id aside). A mismatch means the socket frontend and the
// sim datapath diverged — the differential property the loopback test
// pins, kept continuously measurable under load.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/sim_time.hpp"
#include "common/stats.hpp"
#include "server/responder.hpp"
#include "workload/replay.hpp"
#include "zone/zone_store.hpp"

namespace akadns::net {

struct LoadgenConfig {
  /// Server address (v4) and UDP port.
  Endpoint target;
  /// Multi-target mode: when non-empty this list wins over `target` and
  /// lanes round-robin across it (lane i → targets[i % n]). Used to
  /// drive a whole PoP of machines (or its anycast front plus direct
  /// machine ports) from one run, with per-target accounting.
  std::vector<Endpoint> targets;
  /// Parallel client sockets, one thread each.
  std::size_t sockets = 4;
  /// Datagrams per sendmmsg/recvmmsg syscall.
  std::size_t batch = 32;
  /// Max in-flight queries per socket (must stay < 65536: the DNS
  /// transaction id doubles as the window slot).
  std::size_t window = 512;
  /// Queries to send in total, spread across sockets.
  std::uint64_t total_queries = 100'000;
  /// Aggregate send-rate cap in queries/sec (0 = unpaced). Pacing is what
  /// makes failover drills machine-speed independent: an unpaced run
  /// finishes whenever the hardware allows, so on a fast box the traffic
  /// can end before the event under test even fires. A paced lane also
  /// keeps its window slack, so it continues probing a re-routed path
  /// immediately instead of stalling on a window full of dead queries.
  double rate = 0.0;
  /// How long to wait for stragglers after the last send before
  /// declaring the remainder dropped.
  Duration response_timeout = Duration::millis(1000);
  /// Retransmissions per query after the first send times out (what a
  /// real resolver does on a lossy path). A query counts as dropped only
  /// once every try expired; retries are reported separately. 0 = the
  /// strict single-shot mode (loopback differential runs).
  std::size_t retries = 0;
  /// Losses closer together than this merge into one outage window
  /// (see OutageTracker).
  Duration outage_gap = Duration::millis(500);
  int rcvbuf = 1 << 22;
  int sndbuf = 1 << 22;
};

/// A contiguous stretch of query loss against one target, in nanoseconds
/// since the run epoch. Width is the loadgen's end-to-end view of an
/// outage: from the first query that went unanswered to the last.
struct OutageWindow {
  std::int64_t start_ns = 0;  // send time of the first lost query
  std::int64_t end_ns = 0;    // send time of the last lost query
  std::uint64_t losses = 0;   // queries lost inside the window
  std::int64_t width_ns() const noexcept { return end_ns - start_ns; }
};

/// Classifies individual losses into outage windows: losses whose send
/// times fall within `gap_ns` of an existing window extend it; anything
/// further away opens a new window. This is what turns "N queries timed
/// out" into "the target was dark from t0 to t1" — the quantity a
/// failover drill measures (kill a machine, read the widest window).
///
/// record_loss is optimized for the near-sorted order a lane produces
/// (expiry sweeps walk the slot table, so timestamps within one sweep
/// are unordered but sweeps advance monotonically); windows() sorts and
/// coalesces, so cross-lane merge() of raw trackers is also correct.
class OutageTracker {
 public:
  explicit OutageTracker(std::int64_t gap_ns = 500'000'000) : gap_ns_(gap_ns) {}

  void record_loss(std::int64_t ns) {
    ++losses_;
    if (!raw_.empty()) {
      auto& last = raw_.back();
      if (ns >= last.start_ns - gap_ns_ && ns <= last.end_ns + gap_ns_) {
        last.start_ns = std::min(last.start_ns, ns);
        last.end_ns = std::max(last.end_ns, ns);
        ++last.losses;
        return;
      }
    }
    raw_.push_back(OutageWindow{ns, ns, 1});
  }

  void merge(const OutageTracker& o) {
    losses_ += o.losses_;
    raw_.insert(raw_.end(), o.raw_.begin(), o.raw_.end());
  }

  /// The final classification: windows sorted by start, coalesced across
  /// whatever order losses were recorded (or merged) in.
  std::vector<OutageWindow> windows() const {
    std::vector<OutageWindow> sorted = raw_;
    std::sort(sorted.begin(), sorted.end(),
              [](const OutageWindow& a, const OutageWindow& b) {
                return a.start_ns < b.start_ns;
              });
    std::vector<OutageWindow> out;
    for (const auto& w : sorted) {
      if (!out.empty() && w.start_ns <= out.back().end_ns + gap_ns_) {
        out.back().end_ns = std::max(out.back().end_ns, w.end_ns);
        out.back().losses += w.losses;
      } else {
        out.push_back(w);
      }
    }
    return out;
  }

  std::int64_t widest_ns() const {
    std::int64_t widest = 0;
    for (const auto& w : windows()) widest = std::max(widest, w.width_ns());
    return widest;
  }

  std::uint64_t losses() const noexcept { return losses_; }

 private:
  std::int64_t gap_ns_;
  std::uint64_t losses_ = 0;
  std::vector<OutageWindow> raw_;
};

/// Per-target slice of a multi-target run: which endpoint, how it fared,
/// and when (if ever) it went dark.
struct TargetReport {
  Endpoint target;
  std::size_t lanes = 0;  // client sockets pinned to this target
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t dropped = 0;
  std::uint64_t mismatched = 0;
  std::vector<OutageWindow> outages;
  std::int64_t widest_outage_ns = 0;
};

/// Per-traffic-class accounting (legitimate vs attack, per the corpus
/// entry's is_attack flag). Under an attack mix with the server's defense
/// on, the interesting quantity is not aggregate loss but *who* lost:
/// legit goodput should hold while attack traffic is shed.
struct ClassCounters {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t dropped = 0;     // timed out waiting (all tries spent)
  std::uint64_t mismatched = 0;  // byte-compare against expected failed
  std::uint64_t servfail = 0;    // responses carrying rcode SERVFAIL

  /// Fraction of sent queries answered (1.0 when nothing was sent).
  double goodput() const noexcept {
    return sent == 0 ? 1.0 : static_cast<double>(received) / static_cast<double>(sent);
  }

  void merge(const ClassCounters& o) noexcept {
    sent += o.sent;
    received += o.received;
    dropped += o.dropped;
    mismatched += o.mismatched;
    servfail += o.servfail;
  }
};

/// Version accounting for live-reload runs (expected_v2 supplied). Every
/// received response is byte-matched against both the pre-flip (v1) and
/// post-flip (v2) expected tables. Because one connected UDP socket is
/// one SO_REUSEPORT flow, each lane observes a single worker's replica —
/// so per lane the served version is monotone, and a v1 answer arriving
/// *after* that lane saw v2 is a genuine stale-serial answer, not
/// reordering. Entries whose bytes are identical in both versions (e.g.
/// REFUSED responses carrying no records) are version-agnostic and never
/// counted stale.
struct FlipStats {
  std::uint64_t old_answers = 0;  // matched v1 before the lane saw v2
  std::uint64_t new_answers = 0;  // matched v2 (or either, post-flip)
  std::uint64_t stale_old = 0;    // matched ONLY v1 after the lane saw v2
  /// Nanoseconds from run start to the first v2-only match across all
  /// lanes; -1 when no lane observed the new version.
  std::int64_t first_new_ns = -1;

  void merge(const FlipStats& o) noexcept {
    old_answers += o.old_answers;
    new_answers += o.new_answers;
    stale_old += o.stale_old;
    if (o.first_new_ns >= 0 && (first_new_ns < 0 || o.first_new_ns < first_new_ns)) {
      first_new_ns = o.first_new_ns;
    }
  }
};

struct LoadgenReport {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t dropped = 0;     // timed out waiting
  std::uint64_t mismatched = 0;  // byte-compare against expected failed
  std::uint64_t unexpected = 0;  // response id matching nothing in flight
  std::uint64_t retransmits = 0; // timed-out tries resent (config.retries)
  std::uint64_t servfail = 0;    // responses carrying rcode SERVFAIL
  double seconds = 0.0;          // wall time of the whole run
  double qps = 0.0;              // received / seconds
  /// Round-trip latency in microseconds.
  double p50_us = 0.0, p90_us = 0.0, p99_us = 0.0, p999_us = 0.0, max_us = 0.0;
  LogHistogram latency_ns;  // merged raw histogram (ns)
  /// The same counters split by traffic class.
  ClassCounters legit;
  ClassCounters attack;
  /// Live-reload version accounting (all zero / -1 without expected_v2).
  FlipStats flip;
  /// One entry per distinct endpoint (config.targets order; a single
  /// entry in single-target runs), with per-target outage windows.
  std::vector<TargetReport> targets;
  /// Outage classification across every target — the widest window here
  /// is the PoP-level "how long were queries going unanswered" number.
  std::vector<OutageWindow> outages;
  std::int64_t widest_outage_ns = 0;
};

/// Runs the sim Responder over every corpus entry and returns the
/// expected wire response per entry (transaction id 0). Pass the same
/// ResponderConfig the server runs with.
std::vector<std::vector<std::uint8_t>> expected_responses(
    const workload::ReplayCorpus& corpus, const zone::ZoneStore& store,
    const server::ResponderConfig& responder_config = {});

class Loadgen {
 public:
  /// `expected` may be empty (no verification). When non-empty it must
  /// be index-aligned with the corpus. `expected_v2` (optional, same
  /// alignment) is the post-flip expected table for live-reload runs:
  /// responses matching it count as new-version answers and the report's
  /// FlipStats become meaningful.
  Loadgen(LoadgenConfig config, const workload::ReplayCorpus& corpus,
          std::vector<std::vector<std::uint8_t>> expected = {},
          std::vector<std::vector<std::uint8_t>> expected_v2 = {});

  /// Blocks until every query is sent and answered (or timed out).
  LoadgenReport run();

 private:
  LoadgenConfig config_;
  const workload::ReplayCorpus& corpus_;
  std::vector<std::vector<std::uint8_t>> expected_;
  std::vector<std::vector<std::uint8_t>> expected_v2_;
};

}  // namespace akadns::net
