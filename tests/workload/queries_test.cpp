#include "workload/queries.hpp"

#include <gtest/gtest.h>

#include "dns/wire.hpp"
#include "workload/diurnal.hpp"

namespace akadns::workload {
namespace {

struct Fixture {
  ResolverPopulation population{{.resolver_count = 5'000, .asn_count = 200}, 1};
  HostedZones zones{{.zone_count = 500}, 2};
};

TEST(QueryGenerator, ProducesResolvableQueries) {
  Fixture f;
  QueryGenerator generator(f.population, f.zones, 3);
  for (int i = 0; i < 100; ++i) {
    const auto query = generator.next();
    EXPECT_LT(query.resolver_index, f.population.size());
    EXPECT_EQ(query.source.addr, f.population.resolver(query.resolver_index).address);
    const auto zone = f.zones.store().find_best_zone(query.qname);
    EXPECT_NE(zone, nullptr) << query.qname.to_string();
  }
}

TEST(QueryGenerator, EncodeProducesValidWire) {
  Fixture f;
  QueryGenerator generator(f.population, f.zones, 4);
  const auto query = generator.next();
  const auto wire = generator.encode(query);
  const auto decoded = dns::decode(wire);
  ASSERT_TRUE(decoded) << decoded.error();
  EXPECT_EQ(decoded.value().question().name, query.qname);
}

TEST(QueryGenerator, FixedPortResolversKeepPort53) {
  Fixture f;
  QueryGenerator generator(f.population, f.zones, 5);
  bool saw_fixed = false, saw_random = false;
  for (int i = 0; i < 2000 && !(saw_fixed && saw_random); ++i) {
    const auto query = generator.next();
    const auto& resolver = f.population.resolver(query.resolver_index);
    if (resolver.random_ports) {
      EXPECT_GE(query.source.port, 1024);
      saw_random = true;
    } else {
      EXPECT_EQ(query.source.port, 53);
      saw_fixed = true;
    }
  }
  EXPECT_TRUE(saw_random);
}

TEST(BurstModel, AverageApproximatesMean) {
  BurstModel model;
  Rng rng(6);
  const auto [avg, max] = model.simulate_day(10.0, 86'400, rng);
  EXPECT_NEAR(avg, 10.0, 2.0);
  EXPECT_GT(max, avg);
}

TEST(BurstModel, BurstinessAmplifiesMax) {
  // Figure 3's key property: max >> avg. With on_fraction 0.15 the burst
  // rate is ~6.7x the mean, plus Poisson noise.
  BurstModel model{.on_fraction = 0.15, .mean_burst = Duration::seconds(30)};
  Rng rng(7);
  const auto [avg, max] = model.simulate_day(5.0, 86'400, rng);
  EXPECT_GT(max / std::max(avg, 1e-9), 4.0);
}

TEST(BurstModel, ZeroRateProducesNothing) {
  BurstModel model;
  Rng rng(8);
  const auto [avg, max] = model.simulate_day(0.0, 3600, rng);
  EXPECT_DOUBLE_EQ(avg, 0.0);
  EXPECT_DOUBLE_EQ(max, 0.0);
}

TEST(DiurnalModel, RangeMatchesPaper) {
  DiurnalModel model({}, 1);
  double lo = 1e18, hi = 0;
  for (int hour = 0; hour < 24 * 7; ++hour) {
    const double rate = model.rate_at(SimTime::from_seconds(hour * 3600.0));
    lo = std::min(lo, rate);
    hi = std::max(hi, rate);
  }
  EXPECT_NEAR(lo, 3.9e6, 1e5);
  EXPECT_NEAR(hi, 5.6e6, 1e5);
}

TEST(DiurnalModel, DailyPeriodicity) {
  DiurnalModel model({}, 1);
  // Same hour on two consecutive weekdays (Mon 10:00 vs Tue 10:00 with
  // start Sunday): nearly equal rates.
  const double monday = model.rate_at(SimTime::from_seconds((24 + 10) * 3600.0));
  const double tuesday = model.rate_at(SimTime::from_seconds((48 + 10) * 3600.0));
  EXPECT_NEAR(monday, tuesday, monday * 0.01);
}

TEST(DiurnalModel, WeekendDip) {
  DiurnalConfig config;
  config.start_day_of_week = 0;  // t=0 is Sunday
  DiurnalModel model(config, 1);
  const double sunday_peak =
      model.rate_at(SimTime::from_seconds(config.peak_hour * 3600.0));
  const double monday_peak =
      model.rate_at(SimTime::from_seconds((24 + config.peak_hour) * 3600.0));
  EXPECT_LT(sunday_peak, monday_peak);
}

TEST(DiurnalModel, NoisyRateNearBase) {
  DiurnalModel model({}, 1);
  Rng rng(9);
  const auto t = SimTime::from_seconds(3600.0);
  const double base = model.rate_at(t);
  for (int i = 0; i < 50; ++i) {
    EXPECT_NEAR(model.noisy_rate_at(t, rng), base, base * 0.08);
  }
}

}  // namespace
}  // namespace akadns::workload
