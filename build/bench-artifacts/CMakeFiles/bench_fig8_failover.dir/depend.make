# Empty dependencies file for bench_fig8_failover.
# This may be replaced when dependencies are built.
