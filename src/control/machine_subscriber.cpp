#include "control/machine_subscriber.hpp"

#include <stdexcept>

namespace akadns::control {

std::string zone_topic(const dns::DnsName& apex) { return "zone/" + apex.to_string(); }

std::uint64_t publish_zone(ControlPlane& plane, propagation::ZonePublisher& publisher,
                           zone::Zone zone) {
  const auto problems = zone.validate();
  if (!problems.empty()) {
    std::string joined;
    for (const auto& p : problems) joined += p + "; ";
    throw std::invalid_argument("zone validation failed: " + joined);
  }
  const std::string topic = zone_topic(zone.apex());
  auto update = publisher.publish(std::move(zone));
  if (!update.ok()) {
    throw std::invalid_argument("zone publish rejected: " + update.error());
  }
  return plane.publish(topic,
                       std::make_shared<ZoneUpdateMetadata>(std::move(update).take()));
}

ControlPlane::SubscriptionId subscribe_machine_to_zone(ControlPlane& plane,
                                                       pop::Machine& machine,
                                                       const dns::DnsName& apex,
                                                       Duration input_delay) {
  if (!machine.local_store()) {
    throw std::invalid_argument("machine " + machine.id() +
                                " has no local zone store; construct it without a "
                                "shared store to use the metadata pipeline");
  }
  SubscriptionOptions options;
  options.delivery = DeliveryClass::CdnHttp;
  options.extra_delay = input_delay;
  options.reachable = [&machine] { return machine.metadata_reachable(); };
  options.on_delivery = [&machine](const MetadataPtr& payload, SimTime now) {
    const auto* metadata = dynamic_cast<const ZoneUpdateMetadata*>(payload.get());
    if (!metadata || !metadata->update) return;
    machine.apply_zone_update(*metadata->update, now);
  };
  return plane.subscribe(zone_topic(apex), std::move(options));
}

ControlPlane::SubscriptionId subscribe_machine_to_mapping(ControlPlane& plane,
                                                          pop::Machine& machine,
                                                          Duration input_delay) {
  SubscriptionOptions options;
  options.delivery = DeliveryClass::RealTimeMulticast;
  options.extra_delay = input_delay;
  options.reachable = [&machine] { return machine.metadata_reachable(); };
  options.on_delivery = [&machine](const MetadataPtr&, SimTime now) {
    machine.nameserver().metadata_updated(now);
  };
  return plane.subscribe(kMappingTopic, std::move(options));
}

}  // namespace akadns::control
