// The impairment proxy: a real UDP/TCP hop that executes a FaultPlan.
//
// akadns-chaos (and the library form, threaded between AnycastFront and
// machines by `akadns-fleet --chaos-plan`) binds one front port for both
// transports and relays to one upstream endpoint:
//
//   client ──UDP/TCP──▶ [front port] proxy [per-flow sockets] ──▶ upstream
//
// Per direction the plan's FaultSpec is applied with fates drawn from
// FaultStream — a pure function of (seed, direction, ordinal), so the
// same plan+seed reproduces the same impairment schedule:
//   UDP datagrams: loss, duplication, delay+jitter, delay-based
//     reordering, single-byte corruption.
//   TCP connections: reset (RST on accept) and stall (accept, read,
//     never answer) per connection; delay+jitter and byte corruption
//     per relayed chunk (loss/dup/reorder are meaningless at stream
//     level — the kernel would just retransmit).
//   Blackhole windows: UDP is swallowed, new TCP connections are
//     accepted and immediately closed, and bytes on established relays
//     are held until the window ends (so a 10 s hole turns into a >10 s
//     stall — exactly what transfer deadlines must cut short).
//
// Single epoll thread, same shape as fleet's AnycastFront: nonblocking
// sockets, an eventfd in the poll set so stop() wakes it immediately,
// and a time-ordered queue for delayed sends driving the poll timeout.
#pragma once

#include <cstdint>
#include <mutex>
#include <thread>

#include "chaos/fault_plan.hpp"
#include "common/result.hpp"
#include "common/sim_time.hpp"
#include "net/socket.hpp"
#include "obs/registry.hpp"

namespace akadns::chaos {

struct ProxyConfig {
  Ipv4Addr listen_addr = Ipv4Addr(127, 0, 0, 1);
  /// Front port for both UDP and TCP; 0 binds an ephemeral pair (the
  /// proxy retries until one port is free on both transports).
  std::uint16_t listen_port = 0;
  Endpoint upstream;
  FaultPlan plan;
  std::size_t max_flows = 4096;
  /// UDP flows idle longer than this are reaped.
  Duration flow_idle = Duration::seconds(30);
  /// TCP relays idle longer than this are closed (the proxy must not
  /// become the slowloris it exists to simulate).
  Duration conn_idle = Duration::seconds(120);
};

struct ProxyStats {
  obs::Counter forwarded_up;    // datagrams/chunks relayed client -> upstream
  obs::Counter forwarded_down;  // relayed upstream -> client
  obs::Counter dropped;         // UDP loss fates
  obs::Counter duplicated;
  obs::Counter reordered;
  obs::Counter corrupted;
  obs::Counter delayed;      // sends that took the delay-queue path
  obs::Counter blackholed;   // datagrams swallowed inside a window
  obs::Counter flows_opened;
  obs::Counter flows_reaped;
  obs::Counter tcp_accepted;
  obs::Counter tcp_resets;   // reset fates executed
  obs::Counter tcp_stalls;   // stall fates in effect
  obs::Counter tcp_refused;  // accepts closed because of a blackhole

  /// One akadns_chaos_total{event=...} series per counter.
  void register_into(obs::MetricRegistry& reg, const obs::LabelSet& base) const {
    const auto event = [&](const char* name, const obs::Counter& c) {
      reg.counter("akadns_chaos_total", obs::with(base, "event", name), c,
                  "impairment proxy fault events");
    };
    event("forwarded_up", forwarded_up);
    event("forwarded_down", forwarded_down);
    event("dropped", dropped);
    event("duplicated", duplicated);
    event("reordered", reordered);
    event("corrupted", corrupted);
    event("delayed", delayed);
    event("blackholed", blackholed);
    event("flow_opened", flows_opened);
    event("flow_reaped", flows_reaped);
    event("tcp_accepted", tcp_accepted);
    event("tcp_reset", tcp_resets);
    event("tcp_stalled", tcp_stalls);
    event("tcp_refused", tcp_refused);
  }
};

class ImpairmentProxy {
 public:
  explicit ImpairmentProxy(ProxyConfig config);
  ~ImpairmentProxy();

  ImpairmentProxy(const ImpairmentProxy&) = delete;
  ImpairmentProxy& operator=(const ImpairmentProxy&) = delete;

  /// Binds the front port pair and launches the relay thread. The plan
  /// clock (blackhole windows) starts now.
  Result<bool> start();
  /// Stops and joins; closes every flow and relay. Idempotent.
  void stop();

  /// The bound front port (valid after start()).
  std::uint16_t port() const noexcept { return port_; }

  /// Re-points future flows and connections at a new upstream (fleet
  /// rewiring when a machine restarts on a fresh port). Existing flows
  /// keep their old peer — they are about to be reaped anyway.
  void set_upstream(const Endpoint& upstream);

  const ProxyStats& stats() const noexcept { return stats_; }
  void register_metrics(obs::MetricRegistry& reg, const obs::LabelSet& base) const {
    stats_.register_into(reg, base);
  }

 private:
  void run();
  Endpoint upstream() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return upstream_;
  }

  ProxyConfig config_;
  ProxyStats stats_;
  mutable std::mutex mutex_;  // guards upstream_ and lifecycle flags
  Endpoint upstream_;
  bool running_ = false;
  std::uint16_t port_ = 0;
  net::UdpSocket front_udp_;
  net::TcpListener front_tcp_;
  net::FdHandle stop_event_;
  std::thread thread_;
};

}  // namespace akadns::chaos
