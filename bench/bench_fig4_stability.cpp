// Figure 4: "Change in query rate of resolvers in a week" — the PDF of
// week-over-week per-resolver rate change, weighted by query volume.
// Paper anchors: 53% of weighted resolvers within ±10%; top-3% list
// overlap week-to-week 85-98% (mean 92%), month-to-month 79-98%
// (mean 88%), measured over 69 weekly lists.

#include <set>

#include "bench_util.hpp"
#include "workload/population.hpp"

using namespace akadns;

namespace {

double overlap_fraction(const std::vector<std::size_t>& a, const std::vector<std::size_t>& b) {
  const std::set<std::size_t> sa(a.begin(), a.end());
  std::size_t shared = 0;
  for (const auto x : b) {
    if (sa.contains(x)) ++shared;
  }
  return static_cast<double>(shared) / static_cast<double>(b.size());
}

}  // namespace

int main() {
  bench::heading("Figure 4: week-over-week change in per-resolver query rate",
                 "§2 Figure 4 — 53% of weighted resolvers within ±10%");

  workload::ResolverPopulation population({.resolver_count = 50'000, .asn_count = 2'000},
                                          1);
  Rng rng(2);

  // One week transition for the Figure 4 histogram.
  std::vector<double> before;
  for (const auto& r : population.resolvers()) before.push_back(r.weight);
  population.advance_week(rng);

  Histogram pdf(-1.0, 1.0, 20);  // -100% .. +100% change, weighted
  double weighted_within_10 = 0, total_weight = 0;
  for (std::size_t i = 0; i < population.size(); ++i) {
    const double change =
        (population.resolver(i).weight - before[i]) / std::max(before[i], 1e-12);
    pdf.add(std::clamp(change, -0.9999, 0.9999), before[i]);
    total_weight += before[i];
    if (std::abs(change) < 0.10) weighted_within_10 += before[i];
  }

  bench::subheading("PDF of weighted per-resolver change (paper Figure 4 shape)");
  std::printf("%16s  %8s\n", "change bucket", "pdf");
  for (std::size_t b = 0; b < pdf.bin_count(); ++b) {
    std::printf("[%5.0f%%, %5.0f%%)  %7.3f  |%s|\n", 100 * pdf.bin_lo(b), 100 * pdf.bin_hi(b),
                pdf.fraction(b), render_bar(pdf.fraction(b) / 0.4, 40).c_str());
  }
  bench::print_row("weighted resolvers within +/-10% (paper 53%)",
                   100.0 * weighted_within_10 / total_weight, "%");

  // Heavy-hitter list stability over 69 weeks (the paper's methodology).
  bench::subheading("top-3% list overlap across 69 weekly lists");
  workload::ResolverPopulation longitudinal({.resolver_count = 50'000, .asn_count = 2'000},
                                            3);
  Rng weekly_rng(4);
  std::vector<std::vector<std::size_t>> weekly_tops;
  weekly_tops.push_back(longitudinal.top_by_weight(0.03));
  StreamingStats week_overlap, month_overlap;
  for (int week = 1; week < 69; ++week) {
    longitudinal.advance_week(weekly_rng);
    weekly_tops.push_back(longitudinal.top_by_weight(0.03));
    week_overlap.add(overlap_fraction(weekly_tops[week - 1], weekly_tops[week]));
    if (week >= 4) {
      month_overlap.add(overlap_fraction(weekly_tops[week - 4], weekly_tops[week]));
    }
  }
  bench::print_row("week-to-week overlap mean (paper mean 92%)", 100 * week_overlap.mean(),
                   "%");
  bench::print_row("week-to-week overlap min (paper 85%)", 100 * week_overlap.min(), "%");
  bench::print_row("week-to-week overlap max (paper 98%)", 100 * week_overlap.max(), "%");
  bench::print_row("month-to-month overlap mean (paper mean 88%)",
                   100 * month_overlap.mean(), "%");
  return 0;
}
