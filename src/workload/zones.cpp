#include "workload/zones.hpp"

#include <cmath>

#include "zone/zone_builder.hpp"

namespace akadns::workload {
namespace {

/// Deterministic label pool for synthetic hostnames.
const char* kLabels[] = {"www",  "api",   "cdn",   "img",  "mail", "app",  "static",
                         "m",    "login", "assets", "edge", "news", "shop", "video",
                         "auth", "blog",  "dev",    "docs", "get",  "go"};
constexpr std::size_t kLabelCount = sizeof(kLabels) / sizeof(kLabels[0]);

std::string random_label(Rng& rng, std::size_t length) {
  static const char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[rng.next_below(36)]);
  }
  return out;
}

/// Picks the Zipf-Mandelbrot shift q whose calibrated law (top-1% mass
/// fixed to the target) brings the hottest zone's share closest to the
/// configured value. Note the two targets can be jointly infeasible for
/// small populations (the head cannot fall below the top-1% mean), in
/// which case the search returns the flattest feasible head.
double pick_shift(const HostedZonesConfig& config) {
  double best_q = 0.0;
  double best_err = 1e9;
  const auto top_k = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.top_zone_fraction *
                                  static_cast<double>(config.zone_count)));
  for (const double q : {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0}) {
    const double s = ZipfSampler::calibrate_exponent(
        config.zone_count, config.top_zone_fraction, config.top_zone_mass, q);
    const ZipfSampler law(config.zone_count, s, q);
    // Only shifts for which the exponent calibration actually reached the
    // top-share target are eligible (very large shifts can be infeasible).
    if (std::abs(law.cdf(top_k) - config.top_zone_mass) > 0.01) continue;
    const double err = std::abs(law.pmf(0) - config.hottest_zone_mass);
    if (err < best_err) {
      best_err = err;
      best_q = q;
    }
  }
  return best_q;
}

}  // namespace

HostedZones::HostedZones(HostedZonesConfig config, std::uint64_t seed)
    : config_(config),
      popularity_([&] {
        const double q = pick_shift(config);
        const double s = ZipfSampler::calibrate_exponent(
            config.zone_count, config.top_zone_fraction, config.top_zone_mass, q);
        return ZipfSampler(config.zone_count, s, q);
      }()) {
  Rng rng(seed);
  apexes_.reserve(config_.zone_count);
  valid_names_.reserve(config_.zone_count);
  for (std::size_t i = 0; i < config_.zone_count; ++i) {
    const std::string apex_label = "ent" + std::to_string(i);
    const std::string apex_text = apex_label + ".example";
    zone::ZoneBuilder builder(apex_text, 1);
    builder.soa("ns1." + apex_text, "hostmaster." + apex_text, 1);
    builder.ns("@", "ns1." + apex_text);
    builder.a("ns1", Ipv4Addr(10, 53, static_cast<std::uint8_t>(i >> 8),
                              static_cast<std::uint8_t>(i))
                         .to_string());

    std::vector<dns::DnsName> names;
    const auto apex_name = dns::DnsName::from(apex_text);
    names.push_back(apex_name);
    const std::size_t count = static_cast<std::size_t>(
        rng.next_int(static_cast<std::int64_t>(config_.names_min),
                     static_cast<std::int64_t>(config_.names_max)));
    for (std::size_t k = 0; k < count; ++k) {
      std::string label = k < kLabelCount ? kLabels[k] : random_label(rng, 8);
      builder.a(label, Ipv4Addr(192, 0, 2, static_cast<std::uint8_t>(k + 1)).to_string());
      names.push_back(dns::DnsName::from(label + "." + apex_text));
    }
    if (rng.next_bool(config_.wildcard_fraction)) {
      builder.a("*.apps", Ipv4Addr(192, 0, 2, 200).to_string());
      names.push_back(dns::DnsName::from("apps." + apex_text));
    }
    store_.publish(builder.build());
    apexes_.push_back(apex_name);
    valid_names_.push_back(std::move(names));
  }
}

double HostedZones::mass_of_top(double fraction) const {
  const auto k = static_cast<std::size_t>(fraction * static_cast<double>(zone_count()));
  return popularity_.cdf(std::max<std::size_t>(k, 1));
}

dns::DnsName HostedZones::sample_valid_name(std::size_t rank, Rng& rng) const {
  const auto& names = valid_names_.at(rank);
  return names[rng.next_below(names.size())];
}

zone::Zone HostedZones::evolved(std::size_t rank, std::uint32_t generations) const {
  const zone::ZonePtr base = store_.find_zone(apexes_.at(rank));
  return evolved_zone(*base, generations);
}

zone::Zone evolved_zone(const zone::Zone& base, std::uint32_t generations) {
  zone::Zone next(base.apex(), base.serial());
  for (dns::ResourceRecord rr : base.all_records()) {
    if (rr.type() == dns::RecordType::A) {
      auto& a = std::get<dns::ARecord>(rr.rdata);
      auto octets = a.address.octets();
      octets[3] = static_cast<std::uint8_t>(octets[3] + generations);
      a.address = Ipv4Addr(octets[0], octets[1], octets[2], octets[3]);
    }
    next.add(std::move(rr));
  }
  next.set_soa_serial(base.serial() + generations);
  return next;
}

dns::DnsName HostedZones::random_subdomain(std::size_t rank, Rng& rng) const {
  // "Often implemented by prepending a random string onto a valid zone,
  // e.g. a3n92nv9.akamai.com" (§4.3.4 footnote).
  const auto label = random_label(rng, 10);
  const auto name = apexes_.at(rank).prepend(label);
  return name.value_or(apexes_.at(rank));
}

}  // namespace akadns::workload
