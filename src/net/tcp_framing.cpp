#include "net/tcp_framing.hpp"

#include <cstring>

namespace akadns::net {

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  if (poisoned() || bytes.empty()) return;
  // Compact before growing: everything before consumed_ has been handed
  // out already and its spans are invalidated by contract on feed().
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

FrameDecoder::Frame FrameDecoder::next() {
  if (poisoned()) return {};
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < 2) return {};  // length prefix incomplete
  const std::size_t len = (static_cast<std::size_t>(buffer_[consumed_]) << 8) |
                          buffer_[consumed_ + 1];
  if (len == 0) {
    error_ = FrameError::EmptyFrame;
    return {};
  }
  if (len > max_frame_) {
    error_ = FrameError::Oversized;
    return {};
  }
  if (avail < 2 + len) return {};  // payload incomplete
  Frame frame;
  frame.payload = {buffer_.data() + consumed_ + 2, len};
  frame.has_frame = true;
  consumed_ += 2 + len;
  return frame;
}

}  // namespace akadns::net
