// Figure 2: "Percent of queries for/from percent of zones, ASNs, and
// source IP addresses" — the three skew CDFs. Paper anchors: top 3% of
// IPs -> 80% of queries; top 1% of ASNs -> 83%; top 1% of zones -> 88%,
// with one zone receiving 5.5% of all queries.

#include <algorithm>
#include <map>

#include "bench_util.hpp"
#include "workload/population.hpp"
#include "workload/zones.hpp"

using namespace akadns;

namespace {

/// Cumulative mass carried by the top `fraction` of a weight vector.
double mass_of_top(std::vector<double> weights, double fraction) {
  std::sort(weights.rbegin(), weights.rend());
  double total = 0, top = 0;
  const auto k = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction * static_cast<double>(weights.size())));
  for (std::size_t i = 0; i < weights.size(); ++i) {
    total += weights[i];
    if (i < k) top += weights[i];
  }
  return total > 0 ? top / total : 0;
}

void print_line(const char* label, const std::vector<double>& weights,
                const std::vector<double>& fractions) {
  std::printf("\n%s\n%12s  %10s\n", label, "top %", "% queries");
  for (const double f : fractions) {
    const double mass = mass_of_top(weights, f);
    std::printf("%11.2f%%  %9.1f%%  |%s|\n", 100 * f, 100 * mass,
                render_bar(mass, 40).c_str());
  }
}

}  // namespace

int main() {
  bench::heading("Figure 2: query skew across zones / ASNs / source IPs",
                 "§2 Figure 2 — 3% IPs->80%, 1% ASNs->83%, 1% zones->88%");

  workload::ResolverPopulation population({.resolver_count = 50'000, .asn_count = 2'000},
                                          1);
  workload::HostedZones zones({.zone_count = 20'000, .names_min = 2, .names_max = 4}, 2);

  const std::vector<double> fractions{0.0001, 0.001, 0.01, 0.03, 0.10, 0.30, 1.0};

  std::vector<double> ip_weights;
  for (const auto& r : population.resolvers()) ip_weights.push_back(r.weight);
  print_line("IPs (resolver source addresses)", ip_weights, fractions);

  std::map<std::uint32_t, double> by_asn;
  for (const auto& r : population.resolvers()) by_asn[r.asn] += r.weight;
  std::vector<double> asn_weights;
  for (const auto& [asn, w] : by_asn) asn_weights.push_back(w);
  print_line("ASNs", asn_weights, fractions);

  std::vector<double> zone_weights;
  for (std::size_t i = 0; i < zones.zone_count(); ++i) {
    zone_weights.push_back(zones.zone_mass(i));
  }
  print_line("zones (ADHS)", zone_weights, fractions);

  bench::subheading("paper anchor points vs measured");
  bench::print_row("top 3% IPs carry (paper 80%)", 100 * mass_of_top(ip_weights, 0.03), "%");
  bench::print_row("top 1% ASNs carry (paper 83%)", 100 * mass_of_top(asn_weights, 0.01),
                   "%");
  bench::print_row("top 1% zones carry (paper 88%)", 100 * mass_of_top(zone_weights, 0.01),
                   "%");
  bench::print_row("hottest zone carries (paper 5.5%)", 100 * zone_weights[0], "%");
  return 0;
}
