#include "workload/replay.hpp"

#include "dns/wire.hpp"

namespace akadns::workload {

namespace {

/// The EDNS advertisement ladder the responder's clamp branches on:
/// below-minimum, the Flag Day default, a common large value, and the
/// maximum a client can claim.
constexpr std::uint16_t kEdnsSizes[] = {512, 1232, 4096, 65535};

}  // namespace

ReplayCorpus::ReplayCorpus(const ReplayMixConfig& config,
                           const ResolverPopulation& population, const HostedZones& zones) {
  Rng rng(config.seed);
  QueryGenerator legit(population, zones, config.seed ^ 0x9E3779B97F4A7C15ULL);
  RandomSubdomainAttack nxd({.target_zone_rank = 0}, population, zones,
                            config.seed ^ 0xA5A5A5A5ULL);
  DirectQueryAttack direct({.bot_count = 24, .target_zone_rank = 1}, zones,
                           config.seed ^ 0x5A5A5A5AULL);
  SpoofedAttack spoofed({.target_zone_rank = 0, .impersonate_allowlisted = true},
                        population, zones, config.seed ^ 0x0F0F0F0FULL);

  const double aw_total = config.random_subdomain_weight + config.direct_query_weight +
                          config.spoofed_weight;
  entries_.reserve(config.corpus_size);
  std::size_t edns_cursor = 0;
  for (std::size_t i = 0; i < config.corpus_size; ++i) {
    ReplayEntry entry;
    GeneratedQuery generated;
    if (rng.next_bool(config.attack_fraction) && aw_total > 0.0) {
      entry.is_attack = true;
      ++attack_count_;
      const double pick = rng.next_double() * aw_total;
      if (pick < config.random_subdomain_weight) {
        generated = nxd.next();
      } else if (pick < config.random_subdomain_weight + config.direct_query_weight) {
        generated = direct.next();
      } else {
        generated = spoofed.next();
      }
    } else {
      generated = legit.next();
    }
    entry.source = generated.source;

    auto query = dns::make_query(0, generated.qname, generated.qtype);
    if (rng.next_bool(config.edns_fraction)) {
      query.edns.emplace();
      query.edns->udp_payload_size = kEdnsSizes[edns_cursor++ % std::size(kEdnsSizes)];
      if (query.edns->udp_payload_size == 1232 && rng.next_bool(0.5)) {
        // The /24 the modelled resolver would forward for its clients.
        query.edns->client_subnet = dns::ClientSubnet{generated.source.addr, 24, 0};
      }
    }
    entry.wire = dns::encode(query);
    entries_.push_back(std::move(entry));
  }
}

}  // namespace akadns::workload
