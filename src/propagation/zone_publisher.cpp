#include "propagation/zone_publisher.hpp"

#include <utility>

namespace akadns::propagation {

using zone::CompiledZone;
using zone::CompiledZonePtr;
using zone::Zone;
using zone::ZoneDiff;
using zone::ZonePtr;

// ---------------------------------------------------------------------------
// Subscription
// ---------------------------------------------------------------------------

void Subscription::push(ZoneUpdatePtr update) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(update));
    pending_.store(true, std::memory_order_release);
  }
  // Wake outside the queue lock so a wake that blocks (it should not)
  // cannot hold up a drain.
  if (wake_) wake_();
}

std::vector<ZoneUpdatePtr> Subscription::drain() {
  std::lock_guard lock(mutex_);
  std::vector<ZoneUpdatePtr> out(queue_.begin(), queue_.end());
  queue_.clear();
  pending_.store(false, std::memory_order_release);
  return out;
}

// ---------------------------------------------------------------------------
// ZonePublisher
// ---------------------------------------------------------------------------

Result<ZoneUpdatePtr> ZonePublisher::publish(Zone zone) {
  return publish(std::make_shared<const Zone>(std::move(zone)));
}

Result<ZoneUpdatePtr> ZonePublisher::publish(ZonePtr zone) {
  Result<ZoneUpdatePtr> result = [&] {
    std::lock_guard lock(mutex_);
    return publish_locked(std::move(zone));
  }();
  // Fan out after dropping the publisher lock: a wake callback may probe
  // the publisher, and subscribers tolerate out-of-order delivery (serial
  // checks make stale updates no-ops).
  if (result.ok()) fanout(result.value());
  return result;
}

Result<ZoneUpdatePtr> ZonePublisher::publish_locked(ZonePtr zone) {
  auto fail = [](std::string what) { return Result<ZoneUpdatePtr>::failure(std::move(what)); };
  const dns::DnsName apex = zone->apex();
  const CompiledZonePtr current = master_.find_compiled(apex);

  if (current) {
    if (current->serial() >= zone->serial()) {
      ++stats_.rejected_serial;
      return fail("serial regression at " + apex.to_string() + ": have " +
                  std::to_string(current->serial()) + ", offered " +
                  std::to_string(zone->serial()));
    }

    // diff_zones() excludes the SOA, so rdata-level SOA drift (mname,
    // refresh, ...) is invisible to the delta path. Detect it by
    // serial-patching the base SOA: if that is not the new SOA, only a
    // full publish carries the change.
    const auto base_soa = current->zone().soa();
    const auto new_soa = zone->soa();
    bool soa_drift = !base_soa || !new_soa;
    if (!soa_drift) {
      dns::ResourceRecord expected = *base_soa;
      std::get<dns::SoaRecord>(expected.rdata).serial = zone->serial();
      soa_drift = !(expected == *new_soa);
    }

    if (!soa_drift) {
      ZoneDiff diff = zone::diff_zones(current->zone(), *zone);
      auto applied = master_.apply_delta(diff);
      if (applied.ok()) {
        journal_.append(std::move(diff));
        ++stats_.published;
        ++stats_.incremental;
        return make_update_locked(std::move(applied).take(), /*incremental=*/true);
      }
      // The diff came from the stored base, so failure here means the
      // base itself is inconsistent — the full path below still works.
    } else {
      ++stats_.soa_drift_fallbacks;
    }
  }

  if (!master_.publish(zone)) {
    ++stats_.rejected_serial;
    return fail("serial regression at " + apex.to_string());
  }
  // A full publish severs delta history: replicas behind this version
  // must take the snapshot, not a chain spanning it.
  journal_.reset(apex);
  ++stats_.published;
  ++stats_.full;
  return make_update_locked(master_.find_compiled(apex), /*incremental=*/false);
}

Result<ZoneUpdatePtr> ZonePublisher::apply_chain(std::span<const ZoneDiff> chain) {
  auto fail = [](std::string what) { return Result<ZoneUpdatePtr>::failure(std::move(what)); };
  if (chain.empty()) return fail("empty delta chain");
  const dns::DnsName& apex = chain.front().apex;

  Result<ZoneUpdatePtr> result = [&]() -> Result<ZoneUpdatePtr> {
    std::lock_guard lock(mutex_);
    CompiledZonePtr work = master_.find_compiled(apex);
    if (!work) return fail("no zone at " + apex.to_string() + " (fall back to AXFR)");

    // Journal tails overlap what we already hold; skip the covered prefix.
    std::size_t start = 0;
    while (start < chain.size() && chain[start].to_serial <= work->serial()) ++start;
    if (start == chain.size()) return ZoneUpdatePtr{};  // already current: no-op

    // Build the whole chain off to the side; the store is only touched
    // once every delta has applied, so any failure is side-effect free.
    std::vector<ZoneDiff> applied;
    for (std::size_t i = start; i < chain.size(); ++i) {
      const ZoneDiff& delta = chain[i];
      if (!(delta.apex == apex)) return fail("delta chain mixes apexes");
      if (delta.from_serial != work->serial()) {
        return fail("chain gap at " + apex.to_string() + ": have " +
                    std::to_string(work->serial()) + ", delta from " +
                    std::to_string(delta.from_serial) + " (fall back to AXFR)");
      }
      auto next = zone::apply_diff(work->zone(), delta);
      if (!next) return fail(next.error());
      work = CompiledZone::compile_incremental(
          *work, std::make_shared<const Zone>(std::move(next).take()), delta);
      applied.push_back(delta);
    }

    master_.publish_compiled(work);
    for (ZoneDiff& delta : applied) journal_.append(std::move(delta));
    ++stats_.published;
    ++stats_.chains_applied;
    stats_.incremental += applied.size();
    return make_update_locked(std::move(work), /*incremental=*/true);
  }();

  if (result.ok() && result.value()) fanout(result.value());
  return result;
}

void ZonePublisher::adopt(const zone::ZoneStore& store) {
  std::lock_guard lock(mutex_);
  master_.adopt(store);
}

SubscriptionPtr ZonePublisher::subscribe(std::function<void()> wake) {
  auto sub = std::make_shared<Subscription>();
  sub->wake_ = std::move(wake);
  std::lock_guard lock(mutex_);
  subs_.push_back(sub);
  return sub;
}

void ZonePublisher::seed(zone::ZoneStore& replica) const {
  std::lock_guard lock(mutex_);
  replica.adopt(master_);
}

ZoneUpdatePtr ZonePublisher::make_update_locked(CompiledZonePtr compiled, bool incremental) {
  auto update = std::make_shared<ZoneUpdate>();
  update->seq = next_seq_++;
  update->zone = compiled->source();
  update->deltas = journal_.tail(compiled->apex(), config_.deltas_per_update);
  update->compiled = std::move(compiled);
  update->incremental = incremental;
  update->published_at = clock_.now();
  return ZoneUpdatePtr(std::move(update));
}

void ZonePublisher::fanout(const ZoneUpdatePtr& update) {
  std::vector<SubscriptionPtr> targets;
  {
    std::lock_guard lock(mutex_);
    targets.reserve(subs_.size());
    std::size_t kept = 0;
    for (std::size_t i = 0; i < subs_.size(); ++i) {
      if (SubscriptionPtr sub = subs_[i].lock()) {
        targets.push_back(std::move(sub));
        // Guard against self-move: assigning subs_[i] onto itself leaves
        // the weak_ptr in an unspecified (empty) state and would silently
        // drop the subscription after its first fanout.
        if (kept != i) subs_[kept] = std::move(subs_[i]);
        ++kept;
      }
    }
    subs_.resize(kept);  // dead subscriptions drop out of the fanout set
  }
  for (const SubscriptionPtr& sub : targets) sub->push(update);
}

std::optional<std::vector<ZoneDiff>> ZonePublisher::chain(const dns::DnsName& apex,
                                                          std::uint32_t from_serial,
                                                          std::uint32_t to_serial) const {
  std::lock_guard lock(mutex_);
  return journal_.chain(apex, from_serial, to_serial);
}

CompiledZonePtr ZonePublisher::snapshot(const dns::DnsName& apex) const {
  std::lock_guard lock(mutex_);
  return master_.find_compiled(apex);
}

std::vector<dns::DnsName> ZonePublisher::apexes() const {
  std::lock_guard lock(mutex_);
  return master_.zone_apexes();
}

std::size_t ZonePublisher::zone_count() const {
  std::lock_guard lock(mutex_);
  return master_.zone_count();
}

PublisherStats ZonePublisher::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

JournalStats ZonePublisher::journal_stats() const {
  std::lock_guard lock(mutex_);
  return journal_.stats();
}

void ZonePublisher::register_metrics(obs::MetricRegistry& reg,
                                     const obs::LabelSet& base) const {
  stats_.register_into(reg, base);
  journal_.stats().register_into(reg, base);
  master_.compile_stats().register_into(reg, base);
}

zone::CompileStats ZonePublisher::compile_stats() const {
  std::lock_guard lock(mutex_);
  return master_.compile_stats();
}

}  // namespace akadns::propagation
