# Empty dependencies file for akadns_netsim.
# This may be replaced when dependencies are built.
