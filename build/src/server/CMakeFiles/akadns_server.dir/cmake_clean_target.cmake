file(REMOVE_RECURSE
  "libakadns_server.a"
)
