// Fleet-wide packet conservation: across a mixed legitimate/attack run
// with injected failures, every packet that entered the PoP is either
// answered, sitting in a penalty queue, or accounted against exactly one
// DropReason — `packets_received == responses_sent + Σ drops + pending`.
#include <gtest/gtest.h>

#include "control/reporting.hpp"
#include "pop/machine.hpp"
#include "zone/zone_builder.hpp"

namespace akadns {
namespace {

using dns::DnsName;
using dns::RecordType;

std::vector<std::uint8_t> query_wire(const char* name, std::uint16_t id) {
  return dns::encode(dns::make_query(id, DnsName::from(name), RecordType::A));
}

TEST(DatapathConservation, MixedLegitAndAttackRunAccountsEveryPacket) {
  zone::ZoneStore store;
  store.publish(zone::ZoneBuilder("example.com", 1)
                    .ns("@", "ns1.example.com")
                    .a("ns1", "10.0.0.1")
                    .a("www", "93.184.216.34")
                    .build());

  pop::MachineConfig config_a;
  config_a.id = "m-a";
  config_a.nameserver.io_capacity_qps = 200.0;  // burst of 10 packets
  config_a.nameserver.queue_config.queue_capacity = 8;
  pop::Machine a(config_a, store);

  pop::MachineConfig config_b;
  config_b.id = "m-b";
  pop::Machine b(config_b, store);

  a.nameserver().set_response_sink([](const Endpoint&, std::vector<std::uint8_t>) {});
  b.nameserver().set_response_sink([](const Endpoint&, std::vector<std::uint8_t>) {});
  a.nameserver().set_crash_predicate([](const dns::Question& q) {
    return q.name == DnsName::from("death.example.com");
  });
  a.nameserver().firewall().install(
      dns::Question{DnsName::from("blocked.example.com"), RecordType::A,
                    dns::RecordClass::IN},
      SimTime::origin(), Duration::minutes(10));

  const Endpoint client{*IpAddr::parse("198.51.100.7"), 5353};
  const std::vector<pop::Machine*> fleet{&a, &b};
  auto t = SimTime::origin();
  std::uint16_t id = 0;

  // Legitimate warm-up traffic on both machines.
  for (int i = 0; i < 20; ++i) {
    a.deliver(query_wire("www.example.com", ++id), client, 57, t);
    b.deliver(query_wire("www.example.com", ++id), client, 57, t);
    a.pump(t);
    b.pump(t);
    t += Duration::millis(20);
  }

  // Attack burst at machine A: firewall hits, malformed garbage, a
  // query-of-death, and enough volume to overflow the I/O budget and the
  // penalty queue at a single instant.
  a.deliver(query_wire("blocked.example.com", ++id), client, 57, t);
  a.deliver(std::vector<std::uint8_t>{0xde, 0xad}, client, 57, t);
  a.deliver(query_wire("death.example.com", ++id), client, 57, t);
  for (int i = 0; i < 40; ++i) {
    a.deliver(query_wire("www.example.com", ++id), client, 33, t);
  }
  a.pump(t);  // hits the query-of-death and crashes

  // While A is crashed, more packets arrive (NotRunning drops), then a
  // restart flushes whatever was still queued.
  a.deliver(query_wire("www.example.com", ++id), client, 57, t);
  EXPECT_EQ(a.nameserver().state(), server::ServerState::Crashed);
  a.nameserver().restart(t + Duration::seconds(1));

  // Machine B loses its NIC: deliveries die below the stack.
  b.inject_failure(pop::FailureType::Nic);
  for (int i = 0; i < 5; ++i) {
    b.deliver(query_wire("www.example.com", ++id), client, 57, t);
  }
  b.clear_failure();

  // Drain everything that is still queued.
  t += Duration::seconds(1);
  for (int i = 0; i < 100; ++i) {
    a.pump(t);
    b.pump(t);
    t += Duration::millis(10);
  }

  const control::DatapathReport report = control::collect_datapath(fleet);
  EXPECT_TRUE(report.conservative())
      << "received=" << report.packets_received << " accounted=" << report.accounted()
      << "\n" << report.render();

  // The run exercised every bucket of the taxonomy at least once, except
  // the I/O and queue overloads which depend on burst arithmetic — assert
  // the ones that are deterministic and that the totals line up.
  EXPECT_EQ(report.drops[DropReason::Firewall], 1u);
  EXPECT_EQ(report.drops[DropReason::Malformed], 1u);
  EXPECT_EQ(report.drops[DropReason::QueryOfDeath], 1u);
  EXPECT_EQ(report.drops[DropReason::NotRunning], 1u);
  EXPECT_EQ(report.drops[DropReason::NicFailure], 5u);
  EXPECT_GT(report.drops[DropReason::IoOverload] + report.drops[DropReason::QueueFull] +
                report.drops[DropReason::RestartFlush],
            0u);
  EXPECT_EQ(report.pending, 0u);
  EXPECT_GE(report.responses_sent, 40u);  // at least the warm-up traffic

  // Per-stage telemetry aggregated across the fleet saw every packet the
  // applications admitted.
  EXPECT_EQ(report.stage_latency(server::Stage::Receive).count(),
            a.nameserver().stats().packets_received + b.nameserver().stats().packets_received);
  EXPECT_EQ(report.stage_latency(server::Stage::Resolve).count() +
                report.drops[DropReason::QueryOfDeath],
            a.nameserver().stats().queries_processed +
                b.nameserver().stats().queries_processed);
  EXPECT_FALSE(report.render().empty());
}

}  // namespace
}  // namespace akadns
