# Empty compiler generated dependencies file for akadns_twotier.
# This may be replaced when dependencies are built.
