// Authoritative response construction.
//
// Turns a decoded query + the zone store into a response Message:
// answers, in-bailiwick CNAME chasing, referrals with glue, NXDOMAIN /
// NODATA with SOA, REFUSED outside hosted zones, and the dynamic-answer
// hook through which the Mapping Intelligence (§3.2) supplies
// load-balanced answers for CDN/GTM hostnames (keyed on the query source
// or its EDNS-Client-Subnet).
#pragma once

#include <functional>
#include <optional>
#include <span>

#include "dns/message.hpp"
#include "dns/wire.hpp"
#include "zone/zone_store.hpp"

namespace akadns::server {

/// A dynamic answer produced by the mapping system for one query.
struct MappedAnswer {
  std::vector<dns::ResourceRecord> answers;
  /// ECS scope the mapping decision applies to (echoed into the
  /// response's ECS option per RFC 7871).
  std::uint8_t ecs_scope_prefix_len = 0;
};

/// Hook consulted before static zone data for each question; returning
/// nullopt falls through to the zone content.
using MappingHook = std::function<std::optional<MappedAnswer>(
    const dns::Question& question, const Endpoint& client,
    const std::optional<dns::ClientSubnet>& ecs)>;

struct ResponderConfig {
  /// Maximum CNAME links chased within hosted zones.
  int max_cname_chain = 8;
  /// Answer size cap for UDP responses without EDNS.
  std::size_t udp_payload_default = 512;
};

/// §5.2 "Improvements": supplies answers to push alongside a referral so
/// the resolver need not query the lowlevels in the same resolution
/// (deployable with DNS-over-HTTPS server push). Returning an empty
/// vector sends a plain referral.
using ReferralPushHook = std::function<std::vector<dns::ResourceRecord>(
    const dns::Question& question, const Endpoint& client)>;

struct ResponderStats {
  std::uint64_t responses = 0;
  std::uint64_t noerror = 0;
  std::uint64_t nxdomain = 0;
  std::uint64_t nodata = 0;
  std::uint64_t refused = 0;
  std::uint64_t formerr = 0;
  std::uint64_t notimp = 0;
  std::uint64_t servfail = 0;
  std::uint64_t referrals = 0;
  std::uint64_t wildcard_answers = 0;
  std::uint64_t cname_chases = 0;
  std::uint64_t mapped_answers = 0;
  std::uint64_t pushed_answers = 0;
};

class Responder {
 public:
  explicit Responder(const zone::ZoneStore& store, ResponderConfig config = {});

  /// Builds the response for a decoded query message.
  dns::Message respond(const dns::Message& query, const Endpoint& client);

  /// Convenience: wire in, wire out. Returns nullopt when the packet is
  /// too mangled to even answer FORMERR (no parseable header/question).
  std::optional<std::vector<std::uint8_t>> respond_wire(std::span<const std::uint8_t> wire,
                                                        const Endpoint& client);

  /// The pipeline's zero-reparse path: answers from a QueryView decoded
  /// once at receive(), completing the EDNS walk in place. Never
  /// re-parses the header or question; a mangled record tail degrades to
  /// the FORMERR salvage answer. Always produces response bytes.
  std::vector<std::uint8_t> respond_view(std::span<const std::uint8_t> wire,
                                         dns::QueryView& view, const Endpoint& client);

  void set_mapping_hook(MappingHook hook) { mapping_hook_ = std::move(hook); }
  void set_referral_push_hook(ReferralPushHook hook) { push_hook_ = std::move(hook); }

  /// Observer invoked once per answered query with the final rcode —
  /// the feed for the Data Collection/Aggregation component (§3.2).
  using ResponseObserver = std::function<void(const dns::Question&, dns::Rcode)>;
  void set_response_observer(ResponseObserver observer) {
    response_observer_ = std::move(observer);
  }

  const ResponderStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

 private:
  /// Resolves one question into the response being assembled; returns the
  /// rcode for the header.
  dns::Rcode resolve(const dns::Question& question, const Endpoint& client,
                     const std::optional<dns::ClientSubnet>& ecs, dns::Message& response);

  /// Shared core behind respond() and respond_view(): operates on the
  /// pre-extracted header/question/EDNS pieces so neither entry point
  /// ever re-decodes. `question` may be null (empty question section).
  dns::Message respond_core(const dns::Header& query_header, std::size_t question_count,
                            const dns::Question* question,
                            const std::optional<dns::Edns>& edns, const Endpoint& client);

  const zone::ZoneStore& store_;
  ResponderConfig config_;
  MappingHook mapping_hook_;
  ReferralPushHook push_hook_;
  ResponseObserver response_observer_;
  ResponderStats stats_;
};

}  // namespace akadns::server
