// Live reload through the real socket stack: a ZonePublisher publish
// while the server is answering must reach every worker replica without
// dropping a single query, and once a flow has seen the new version it
// must never see the old one again — the generation bump has to tear
// through warm AnswerCache entries, not just cold paths.

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/clock.hpp"
#include "dns/wire.hpp"
#include "net/server.hpp"
#include "propagation/zone_publisher.hpp"
#include "zone/zone_builder.hpp"

namespace akadns::net {
namespace {

using dns::DnsName;
using dns::RecordType;

constexpr Ipv4Addr kLoopback(127, 0, 0, 1);

// Version `serial` of the zone: the www address encodes the serial, so
// a response tells us exactly which version answered it.
zone::Zone version(std::uint32_t serial) {
  return zone::ZoneBuilder("live.example", serial)
      .soa("ns1.live.example", "hostmaster.live.example", serial)
      .ns("@", "ns1.live.example")
      .a("ns1", "10.0.0.1")
      .a("www", "10.9.0." + std::to_string(serial))
      .build();
}

TEST(LiveReloadLoopback, MidRunPublishFlipsAnswersWithoutDrops) {
  MonotonicClock clock;
  propagation::ZonePublisher publisher(clock);
  ASSERT_TRUE(publisher.publish(version(1)).ok());

  ServeConfig config;
  config.port = 0;  // ephemeral
  config.workers = 2;
  Server server(config, publisher);
  auto started = server.start();
  ASSERT_TRUE(started) << started.error();

  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_storage dst{};
  const socklen_t dst_len =
      sockaddr_from_endpoint(Endpoint{IpAddr(kLoopback), server.udp_port()}, dst);

  const Ipv4Addr old_addr(10, 9, 0, 1);
  const Ipv4Addr new_addr(10, 9, 0, 2);

  std::uint64_t answered = 0;
  std::uint16_t id = 1;
  const auto ask = [&]() -> std::optional<Ipv4Addr> {
    const auto wire =
        dns::encode(dns::make_query(id++, DnsName::from("www.live.example"), RecordType::A));
    if (::sendto(fd, wire.data(), wire.size(), 0, reinterpret_cast<const sockaddr*>(&dst),
                 dst_len) != static_cast<ssize_t>(wire.size())) {
      return std::nullopt;
    }
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 3000) != 1) return std::nullopt;
    std::vector<std::uint8_t> buf(4096);
    const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
    if (n <= 0) return std::nullopt;
    buf.resize(static_cast<std::size_t>(n));
    const auto decoded = dns::decode(buf);
    if (!decoded.ok() || decoded.value().answers.empty()) return std::nullopt;
    const auto* a = std::get_if<dns::ARecord>(&decoded.value().answers.front().rdata);
    if (a == nullptr) return std::nullopt;
    ++answered;
    return a->address;
  };

  // Warm-up on version 1. This also warms the answer cache, so the flip
  // below must invalidate a cached entry, not merely miss a cold one.
  for (int i = 0; i < 200; ++i) {
    const auto got = ask();
    ASSERT_TRUE(got.has_value()) << "query " << i << " dropped before the flip";
    ASSERT_EQ(*got, old_addr);
  }

  // The flip, from this (non-worker) thread, mid-traffic.
  ASSERT_TRUE(publisher.publish(version(2)).ok());

  // Every query must still be answered; answers may stay on the old
  // version until this flow's worker takes the doorbell, but once the
  // new address shows up the old one must never come back.
  bool flipped = false;
  int post_flip_checks = 0;
  for (int i = 0; i < 5000 && post_flip_checks < 200; ++i) {
    const auto got = ask();
    ASSERT_TRUE(got.has_value()) << "query dropped mid-flip at iteration " << i;
    if (*got == new_addr) flipped = true;
    if (flipped) {
      ASSERT_EQ(*got, new_addr) << "stale answer after the flip became visible";
      ++post_flip_checks;
    } else {
      ASSERT_EQ(*got, old_addr);
    }
  }
  EXPECT_TRUE(flipped) << "published version never became visible";
  ::close(fd);

  server.stop();
  const auto stats = server.stats();
  EXPECT_EQ(stats.frontend.udp_responses, answered);
  EXPECT_EQ(stats.frontend.udp_malformed, 0u);
  // At least this flow's worker replica absorbed the published update.
  EXPECT_GE(stats.zone_sync.updates, 1u);
}

}  // namespace
}  // namespace akadns::net
