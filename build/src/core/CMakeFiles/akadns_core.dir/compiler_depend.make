# Empty compiler generated dependencies file for akadns_core.
# This may be replaced when dependencies are built.
