// In-process fault injection for the propagation path.
//
// The impairment proxy (src/chaos/) exercises the real socket path, but
// unit tests want the same faults without sockets: a probe that times
// out, a transfer connection that dies mid-stream, a read that stalls
// past the deadline. FaultHooks is the seam — ZoneSync and
// TransferService consult it before each operation and honor whatever
// fate it returns. Production leaves the pointer null (checked once,
// no overhead); tests install chaos::PlanInjector (plan-driven, same
// SplitMix64 determinism as the proxy) or a hand-scripted hook.
//
// This header is dependency-free on purpose: chaos/ links against
// propagation-level code, so the interface must live below it to keep
// the layering acyclic.
#pragma once

#include <memory>

#include "common/sim_time.hpp"

namespace akadns::propagation {

/// The operations a sync/transfer client performs, in hookable units.
enum class SyncOp {
  ProbeSend,        // SOA refresh probe, UDP send
  ProbeRecv,        // SOA refresh probe, UDP response
  TransferConnect,  // TCP connect to the primary
  TransferWrite,    // framed transfer request write
  TransferRead,     // one framed transfer message read
  StreamMessage,    // server side: one message of an outgoing stream
};

constexpr const char* to_string(SyncOp op) noexcept {
  switch (op) {
    case SyncOp::ProbeSend: return "probe_send";
    case SyncOp::ProbeRecv: return "probe_recv";
    case SyncOp::TransferConnect: return "transfer_connect";
    case SyncOp::TransferWrite: return "transfer_write";
    case SyncOp::TransferRead: return "transfer_read";
    case SyncOp::StreamMessage: return "stream_message";
  }
  return "unknown";
}

/// What the hook decided for one operation.
struct OpFate {
  /// Fail the operation as if the network did (timeout/ECONNRESET — the
  /// caller's normal error path runs; which error is the caller's
  /// choice, the hook only decides *that* it fails).
  bool fail = false;
  /// Sleep this long before attempting (or failing) the operation —
  /// exercises deadline arithmetic without a real slow peer.
  Duration delay = Duration::zero();
};

class FaultHooks {
 public:
  virtual ~FaultHooks() = default;
  /// Called before each operation; the returned fate is binding.
  virtual OpFate on_op(SyncOp op) = 0;
};

using FaultHooksPtr = std::shared_ptr<FaultHooks>;

}  // namespace akadns::propagation
