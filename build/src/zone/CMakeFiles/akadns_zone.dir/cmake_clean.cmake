file(REMOVE_RECURSE
  "CMakeFiles/akadns_zone.dir/zone.cpp.o"
  "CMakeFiles/akadns_zone.dir/zone.cpp.o.d"
  "CMakeFiles/akadns_zone.dir/zone_builder.cpp.o"
  "CMakeFiles/akadns_zone.dir/zone_builder.cpp.o.d"
  "CMakeFiles/akadns_zone.dir/zone_parser.cpp.o"
  "CMakeFiles/akadns_zone.dir/zone_parser.cpp.o.d"
  "CMakeFiles/akadns_zone.dir/zone_store.cpp.o"
  "CMakeFiles/akadns_zone.dir/zone_store.cpp.o.d"
  "CMakeFiles/akadns_zone.dir/zone_transfer.cpp.o"
  "CMakeFiles/akadns_zone.dir/zone_transfer.cpp.o.d"
  "libakadns_zone.a"
  "libakadns_zone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/akadns_zone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
