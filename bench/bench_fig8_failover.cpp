// Figure 8: "Failover time for clouds with 2 and 21 PoPs" (§4.1).
//
// Reproduces the paper's experimental methodology on the simulated
// Internet: 267 PoP/vantage-point sites, a test anycast prefix, probes
// every 100 msec, and the paper's two measurements —
//   advertise: t_X - t_L (remote catchment shift vs the PoP-local probe)
//   withdraw:  t_Y - t_phi when timeouts occur, ~instantaneous otherwise
// for 2-PoP and 21-PoP clouds.
//
// Paper anchors: advertise-2PoP failover < 1 s in 76% of measurements;
// ~3% of measurements see timeouts; the withdraw curve has a heavy tail
// (5.8% of measurements >= 10 s); 21-PoP medians are ~200 ms faster.

#include <algorithm>

#include "bench_util.hpp"
#include "netsim/failover_probe.hpp"
#include "netsim/topology.hpp"

using namespace akadns;
using namespace akadns::netsim;

namespace {

struct ExperimentResult {
  EmpiricalDistribution failover_seconds;
  std::size_t measurements = 0;
  std::size_t timeout_vps = 0;
  std::size_t tail_over_10s = 0;
};

struct Experiment {
  EventScheduler sched;
  Network net;
  Topology topo;
  Rng rng;
  PrefixId next_prefix = 1;

  static NetworkConfig experiment_config() {
    NetworkConfig config;
    // A visible minority of slow routers (conservative MRAI timers /
    // route-flap damping) produces the paper's heavy withdrawal tail.
    config.slow_mrai_fraction = 0.15;
    config.slow_mrai_min = Duration::seconds(5);
    config.slow_mrai_max = Duration::seconds(30);
    return config;
  }

  Experiment(std::uint64_t seed)
      : net(sched, experiment_config(), seed), rng(seed ^ 0xFA110FF) {
    TopologyConfig config;
    config.edge_count = 267;  // the paper's 267 sites
    topo = build_internet(net, config, seed ^ 0x70B0);
  }

  /// Samples `n` distinct edges excluding the given ones.
  std::vector<NodeId> sample_edges(std::size_t n, const std::vector<NodeId>& exclude) {
    std::vector<NodeId> pool;
    for (const auto e : topo.edges) {
      if (std::find(exclude.begin(), exclude.end(), e) == exclude.end()) {
        pool.push_back(e);
      }
    }
    rng.shuffle(pool);
    pool.resize(std::min(n, pool.size()));
    return pool;
  }

  void run_advertise_trial(NodeId x, const std::vector<NodeId>& ys, ExperimentResult& out) {
    const PrefixId prefix = next_prefix++;
    for (const auto y : ys) net.advertise(y, prefix);
    sched.run();  // converge the Y-only cloud

    std::vector<NodeId> vantage = sample_edges(80, [&] {
      std::vector<NodeId> ex = ys;
      ex.push_back(x);
      return ex;
    }());
    vantage.push_back(x);  // the PoP-local vantage point
    ProbeDriver driver(net, prefix, vantage);
    const SimTime start = sched.now();
    driver.start(start + Duration::seconds(50));
    SimTime advertised_at;
    sched.schedule_after(Duration::seconds(2), [&] {
      advertised_at = sched.now();
      net.advertise(x, prefix);
    });
    sched.run();

    const auto t_l = driver.first_answer_from(x, x, advertised_at);
    if (!t_l) return;  // local VP never reached X: discard trial
    for (const auto vp : vantage) {
      if (vp == x) continue;
      const auto t_x = driver.first_answer_from(vp, x, advertised_at);
      const bool timed_out = driver.first_timeout(vp, advertised_at).has_value();
      if (timed_out) ++out.timeout_vps;
      if (!t_x) continue;  // stayed in Y's catchment: no failover event
      const double failover = std::max(0.0, (*t_x - *t_l).to_seconds());
      out.failover_seconds.add(failover);
      ++out.measurements;
      if (failover >= 10.0) ++out.tail_over_10s;
    }
    net.withdraw(x, prefix);
    for (const auto y : ys) net.withdraw(y, prefix);
    sched.run();
  }

  void run_withdraw_trial(NodeId x, const std::vector<NodeId>& ys, ExperimentResult& out) {
    const PrefixId prefix = next_prefix++;
    net.advertise(x, prefix);
    for (const auto y : ys) net.advertise(y, prefix);
    sched.run();

    // Vantage points inside X's catchment experience the withdrawal.
    std::vector<NodeId> vantage;
    for (const auto e : sample_edges(120, {x})) {
      if (std::find(ys.begin(), ys.end(), e) != ys.end()) continue;
      if (net.catchment_origin(e, prefix) == x) vantage.push_back(e);
      if (vantage.size() >= 40) break;
    }
    if (vantage.empty()) {
      net.withdraw(x, prefix);
      for (const auto y : ys) net.withdraw(y, prefix);
      sched.run();
      return;
    }
    ProbeDriver driver(net, prefix, vantage);
    const SimTime start = sched.now();
    driver.start(start + Duration::seconds(50));
    SimTime withdrawn_at;
    sched.schedule_after(Duration::seconds(2), [&] {
      withdrawn_at = sched.now();
      net.withdraw(x, prefix);
    });
    sched.run();

    for (const auto vp : vantage) {
      // First answer from any surviving origin.
      std::optional<SimTime> t_y;
      for (const auto& record : driver.records(vp)) {
        if (record.sent < withdrawn_at) continue;
        if (record.answered && record.answered_by != x) {
          t_y = record.sent;
          break;
        }
      }
      const auto t_phi = driver.first_timeout(vp, withdrawn_at);
      if (!t_y) {
        ++out.timeout_vps;  // never recovered within the window
        continue;
      }
      // Paper: timeouts => t_Y - t_phi; otherwise instantaneous reroute
      // (record at half the probe interval).
      const double failover = (t_phi && *t_phi < *t_y)
                                  ? (*t_y - *t_phi).to_seconds()
                                  : 0.05;
      out.failover_seconds.add(failover);
      ++out.measurements;
      if (failover >= 10.0) ++out.tail_over_10s;
    }
    for (const auto y : ys) net.withdraw(y, prefix);
    sched.run();
  }
};

void report(const char* label, const ExperimentResult& result) {
  bench::subheading(label);
  if (result.failover_seconds.empty()) {
    std::printf("  (no measurements)\n");
    return;
  }
  const std::vector<double> xs{0.1, 0.3, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0};
  bench::print_cdf(result.failover_seconds, xs, "failover time", "s");
  bench::print_row("measurements", static_cast<double>(result.measurements), "");
  bench::print_row("median failover", result.failover_seconds.median(), "s");
  bench::print_row("fraction under 1 s", 100.0 * result.failover_seconds.cdf_at(1.0), "%");
  bench::print_row("fraction >= 10 s (withdraw tail)",
                   100.0 * static_cast<double>(result.tail_over_10s) /
                       static_cast<double>(result.measurements),
                   "%");
  bench::print_row(
      "vantage points with timeouts",
      100.0 * static_cast<double>(result.timeout_vps) /
          static_cast<double>(result.measurements + result.timeout_vps),
      "%");
}

}  // namespace

int main() {
  bench::heading("Figure 8: anycast failover time, 2-PoP and 21-PoP clouds",
                 "§4.1 Figure 8 — advertise 76% <1s; withdraw heavy tail 5.8% >=10s; "
                 "21-PoP medians ~200ms faster");

  constexpr int kTrials = 40;
  Experiment experiment(2026);
  auto order = experiment.topo.edges;
  experiment.rng.shuffle(order);

  ExperimentResult adv2, wd2, adv21, wd21;
  for (int trial = 0; trial < kTrials; ++trial) {
    const NodeId x = order[static_cast<std::size_t>(trial)];
    const NodeId y = order[static_cast<std::size_t>(trial + 1)];
    experiment.run_advertise_trial(x, {y}, adv2);
    experiment.run_withdraw_trial(x, {y}, wd2);
    const auto ys = experiment.sample_edges(20, {x});
    experiment.run_advertise_trial(x, ys, adv21);
    experiment.run_withdraw_trial(x, ys, wd21);
  }

  report("advertise, 2 PoPs", adv2);
  report("withdraw, 2 PoPs", wd2);
  report("advertise, 21 PoPs", adv21);
  report("withdraw, 21 PoPs", wd21);

  bench::subheading("median comparison (paper: 21-PoP ~200 ms faster)");
  if (!adv2.failover_seconds.empty() && !adv21.failover_seconds.empty()) {
    bench::print_row("advertise median 2-PoP minus 21-PoP",
                     1000.0 * (adv2.failover_seconds.median() -
                               adv21.failover_seconds.median()),
                     "ms");
  }
  if (!wd2.failover_seconds.empty() && !wd21.failover_seconds.empty()) {
    bench::print_row("withdraw median 2-PoP minus 21-PoP",
                     1000.0 * (wd2.failover_seconds.median() -
                               wd21.failover_seconds.median()),
                     "ms");
  }
  bench::print_count_row("BGP updates sent across all trials",
                         experiment.net.updates_sent());
  return 0;
}
