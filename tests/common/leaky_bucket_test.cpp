#include "common/leaky_bucket.hpp"
#include "common/token_bucket.hpp"

#include <gtest/gtest.h>

namespace akadns {
namespace {

TEST(LeakyBucket, AllowsBurstUpToCapacity) {
  LeakyBucket bucket(1.0, 5.0);
  const auto t = SimTime::origin();
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bucket.offer(t));
  EXPECT_FALSE(bucket.offer(t));
}

TEST(LeakyBucket, DrainsOverTime) {
  LeakyBucket bucket(2.0, 4.0);  // drains 2 units/sec
  auto t = SimTime::origin();
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(bucket.offer(t));
  EXPECT_FALSE(bucket.offer(t));
  t += Duration::seconds(1);  // 2 units drained
  EXPECT_TRUE(bucket.offer(t));
  EXPECT_TRUE(bucket.offer(t));
  EXPECT_FALSE(bucket.offer(t));
}

TEST(LeakyBucket, SustainedRateConforms) {
  LeakyBucket bucket(10.0, 2.0);
  auto t = SimTime::origin();
  int rejected = 0;
  // Offer at exactly the drain rate: everything conforms after warmup.
  for (int i = 0; i < 100; ++i) {
    if (!bucket.offer(t)) ++rejected;
    t += Duration::millis(100);
  }
  EXPECT_EQ(rejected, 0);
}

TEST(LeakyBucket, OverRateGetsRejected) {
  LeakyBucket bucket(1.0, 2.0);
  auto t = SimTime::origin();
  int accepted = 0;
  // 10 qps against a 1 qps bucket over 10 seconds: ~ 10 + burst accepted.
  for (int i = 0; i < 100; ++i) {
    if (bucket.offer(t)) ++accepted;
    t += Duration::millis(100);
  }
  EXPECT_LE(accepted, 13);
  EXPECT_GE(accepted, 10);
}

TEST(LeakyBucket, LevelReflectsDrain) {
  LeakyBucket bucket(1.0, 10.0);
  auto t = SimTime::origin();
  bucket.offer(t, 6.0);
  EXPECT_DOUBLE_EQ(bucket.level(t), 6.0);
  t += Duration::seconds(4);
  EXPECT_DOUBLE_EQ(bucket.level(t), 2.0);
  t += Duration::seconds(10);
  EXPECT_DOUBLE_EQ(bucket.level(t), 0.0);
}

TEST(LeakyBucket, ReconfigureKeepsLevel) {
  LeakyBucket bucket(1.0, 10.0);
  const auto t = SimTime::origin();
  bucket.offer(t, 8.0);
  bucket.reconfigure(5.0, 4.0);
  EXPECT_DOUBLE_EQ(bucket.level(t), 4.0);  // clamped to new burst
  EXPECT_DOUBLE_EQ(bucket.rate_per_sec(), 5.0);
}

TEST(LeakyBucket, TimeGoingBackwardsIsIgnored) {
  LeakyBucket bucket(1.0, 2.0);
  auto t = SimTime::from_seconds(10);
  EXPECT_TRUE(bucket.offer(t));
  EXPECT_TRUE(bucket.offer(SimTime::from_seconds(5)));  // no spurious drain
  EXPECT_FALSE(bucket.offer(SimTime::from_seconds(5)));
}

TEST(TokenBucket, StartsFull) {
  TokenBucket bucket(1.0, 3.0);
  const auto t = SimTime::origin();
  EXPECT_TRUE(bucket.try_take(t));
  EXPECT_TRUE(bucket.try_take(t));
  EXPECT_TRUE(bucket.try_take(t));
  EXPECT_FALSE(bucket.try_take(t));
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket bucket(2.0, 2.0);
  auto t = SimTime::origin();
  EXPECT_TRUE(bucket.try_take(t, 2.0));
  EXPECT_FALSE(bucket.try_take(t, 1.0));
  t += Duration::millis(500);  // refills 1 token
  EXPECT_TRUE(bucket.try_take(t, 1.0));
  EXPECT_FALSE(bucket.try_take(t, 0.5));
}

TEST(TokenBucket, CapacityCapsRefill) {
  TokenBucket bucket(100.0, 5.0);
  auto t = SimTime::origin() + Duration::hours(1);
  EXPECT_DOUBLE_EQ(bucket.available(t), 5.0);
}

TEST(TokenBucket, TimeUntilAvailable) {
  TokenBucket bucket(2.0, 4.0);
  auto t = SimTime::origin();
  EXPECT_TRUE(bucket.try_take(t, 4.0));
  EXPECT_EQ(bucket.time_until_available(t, 1.0), Duration::millis(500));
  EXPECT_EQ(bucket.time_until_available(t, 4.0), Duration::seconds(2));
  EXPECT_EQ(bucket.time_until_available(t, 0.0), Duration::zero());
}

TEST(TokenBucket, ZeroRateNeverRefills) {
  TokenBucket bucket(0.0, 1.0);
  auto t = SimTime::origin();
  EXPECT_TRUE(bucket.try_take(t));
  EXPECT_EQ(bucket.time_until_available(t + Duration::hours(5), 1.0), Duration::max());
}

}  // namespace
}  // namespace akadns
