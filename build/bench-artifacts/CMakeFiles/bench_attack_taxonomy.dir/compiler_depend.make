# Empty compiler generated dependencies file for bench_attack_taxonomy.
# This may be replaced when dependencies are built.
