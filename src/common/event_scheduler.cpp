#include "common/event_scheduler.hpp"

#include <utility>

namespace akadns {

EventScheduler::EventId EventScheduler::schedule_at(SimTime at, Callback cb) {
  if (at < now_) at = now_;
  const EventId id = next_id_++;
  queue_.push(Entry{at, next_seq_++, id, std::move(cb)});
  ++live_events_;
  return id;
}

EventScheduler::EventId EventScheduler::schedule_after(Duration delay, Callback cb) {
  return schedule_at(now_ + delay, std::move(cb));
}

bool EventScheduler::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  if (!cancelled_.insert(id).second) return false;
  // The entry may already have fired; fire_next() removes ids from the
  // cancelled set when it skips them, so a stale id simply leaves a
  // tombstone that is reclaimed when (if) the entry pops.
  if (live_events_ > 0) --live_events_;
  return true;
}

bool EventScheduler::fire_next() {
  while (!queue_.empty()) {
    // priority_queue::top is const; move out via const_cast, standard
    // practice for pop-and-consume heaps of move-only payloads.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (auto it = cancelled_.find(entry.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = entry.at;
    --live_events_;
    entry.cb();
    return true;
  }
  return false;
}

void EventScheduler::run() {
  while (fire_next()) {
  }
}

void EventScheduler::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (cancelled_.contains(top.id)) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.at > deadline) break;
    fire_next();
  }
  if (now_ < deadline) now_ = deadline;
}

std::size_t EventScheduler::run_steps(std::size_t max_events) {
  std::size_t fired = 0;
  while (fired < max_events && fire_next()) ++fired;
  return fired;
}

}  // namespace akadns
