// Shared output helpers for the experiment benches: every bench prints
// the rows/series of the paper figure it regenerates, plus an ASCII
// rendition where a curve helps eyeballing shape fidelity.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace akadns::bench {

inline void heading(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

inline void subheading(const std::string& title) {
  std::printf("\n-- %s --\n", title.c_str());
}

/// Prints a CDF as rows "x  F(x)  bar".
inline void print_cdf(const EmpiricalDistribution& dist, const std::vector<double>& xs,
                      const char* x_label, const char* x_unit) {
  std::printf("%14s  %8s\n", x_label, "CDF");
  for (const double x : xs) {
    const double f = dist.cdf_at(x);
    std::printf("%11.3f %s  %7.1f%%  |%s|\n", x, x_unit, 100.0 * f,
                render_bar(f, 40).c_str());
  }
}

inline void print_row(const char* label, double value, const char* unit = "") {
  std::printf("  %-44s %12.3f %s\n", label, value, unit);
}

inline void print_count_row(const char* label, std::uint64_t value) {
  std::printf("  %-44s %12s\n", label, fmt_count(value).c_str());
}

}  // namespace akadns::bench
