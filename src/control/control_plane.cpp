#include "control/control_plane.hpp"

namespace akadns::control {

ControlPlane::ControlPlane(EventScheduler& scheduler, std::uint64_t seed)
    : ControlPlane(scheduler, Config{}, seed) {}

ControlPlane::ControlPlane(EventScheduler& scheduler, Config config, std::uint64_t seed)
    : scheduler_(scheduler), config_(config), rng_(seed) {}

ControlPlane::SubscriptionId ControlPlane::subscribe(const std::string& topic,
                                                     SubscriptionOptions options) {
  const SubscriptionId id = next_id_++;
  subscriptions_[id] = Subscription{topic, std::move(options), false, true, 0, false};
  Topic& t = topics_[topic];
  t.subscribers.push_back(id);
  // A late subscriber catches up to the current generation.
  if (t.generation > 0) {
    schedule_delivery(id, sample_delay(subscriptions_[id].options.delivery) +
                              subscriptions_[id].options.extra_delay);
  }
  return id;
}

void ControlPlane::unsubscribe(SubscriptionId id) {
  const auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) return;
  it->second.active = false;  // tombstone; topic lists are pruned lazily
}

void ControlPlane::set_paused(SubscriptionId id, bool paused) {
  const auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) return;
  const bool was_paused = it->second.paused;
  it->second.paused = paused;
  if (was_paused && !paused) {
    // Resume: catch up if behind.
    const Topic& topic = topics_[it->second.topic];
    if (topic.generation > it->second.delivered_generation) {
      schedule_delivery(id, sample_delay(it->second.options.delivery) +
                                it->second.options.extra_delay);
    }
  }
}

bool ControlPlane::paused(SubscriptionId id) const {
  const auto it = subscriptions_.find(id);
  return it != subscriptions_.end() && it->second.paused;
}

Duration ControlPlane::sample_delay(DeliveryClass delivery) {
  const auto [lo, hi] = delivery == DeliveryClass::RealTimeMulticast
                            ? std::pair(config_.multicast_delay_min, config_.multicast_delay_max)
                            : std::pair(config_.cdn_delay_min, config_.cdn_delay_max);
  return Duration::nanos(rng_.next_int(lo.count_nanos(), hi.count_nanos()));
}

std::uint64_t ControlPlane::publish(const std::string& topic, MetadataPtr payload) {
  Topic& t = topics_[topic];
  ++t.generation;
  t.latest = std::move(payload);
  for (const SubscriptionId id : t.subscribers) {
    const auto it = subscriptions_.find(id);
    if (it == subscriptions_.end() || !it->second.active) continue;
    schedule_delivery(id, sample_delay(it->second.options.delivery) +
                              it->second.options.extra_delay);
  }
  return t.generation;
}

void ControlPlane::schedule_delivery(SubscriptionId id, Duration delay) {
  auto& sub = subscriptions_.at(id);
  // Coalesce: one pending delivery attempt per subscription; the attempt
  // always delivers the newest generation at fire time.
  if (sub.delivery_scheduled) return;
  sub.delivery_scheduled = true;
  scheduler_.schedule_after(delay, [this, id] { attempt_delivery(id); });
}

void ControlPlane::attempt_delivery(SubscriptionId id) {
  const auto it = subscriptions_.find(id);
  if (it == subscriptions_.end()) return;
  Subscription& sub = it->second;
  sub.delivery_scheduled = false;
  if (!sub.active) return;
  const Topic& topic = topics_[sub.topic];
  if (topic.generation <= sub.delivered_generation) return;
  if (sub.paused) return;  // resumed later via set_paused(false)
  const bool reachable = !sub.options.reachable || sub.options.reachable();
  if (!reachable) {
    // Connectivity failure: keep retrying; the subscriber catches up to
    // the newest payload once connectivity returns (§4.2.2).
    sub.delivery_scheduled = true;
    scheduler_.schedule_after(config_.retry_interval, [this, id] { attempt_delivery(id); });
    return;
  }
  sub.delivered_generation = topic.generation;
  ++deliveries_;
  if (sub.options.on_delivery) sub.options.on_delivery(topic.latest, scheduler_.now());
}

std::uint64_t ControlPlane::delivered_generation(SubscriptionId id) const {
  const auto it = subscriptions_.find(id);
  return it == subscriptions_.end() ? 0 : it->second.delivered_generation;
}

std::uint64_t ControlPlane::latest_generation(const std::string& topic) const {
  const auto it = topics_.find(topic);
  return it == topics_.end() ? 0 : it->second.generation;
}

}  // namespace akadns::control
