#include "server/nameserver.hpp"

#include "dns/wire.hpp"

namespace akadns::server {
namespace {

/// Cheap rcode extraction from encoded response header bytes.
dns::Rcode rcode_of(const std::vector<std::uint8_t>& wire) {
  return wire.size() >= 4 ? static_cast<dns::Rcode>(wire[3] & 0xF) : dns::Rcode::ServFail;
}

}  // namespace

std::string to_string(ServerState s) {
  switch (s) {
    case ServerState::Running: return "running";
    case ServerState::Crashed: return "crashed";
    case ServerState::SelfSuspended: return "self-suspended";
  }
  return "unknown";
}

Nameserver::Nameserver(NameserverConfig config, const zone::ZoneStore& store)
    : config_(std::move(config)),
      responder_(store),
      queues_(config_.queue_config),
      compute_bucket_(config_.compute_capacity_qps, config_.compute_capacity_qps * 0.1),
      io_bucket_(config_.io_capacity_qps, config_.io_capacity_qps * 0.05) {}

void Nameserver::receive(std::span<const std::uint8_t> wire, const Endpoint& source,
                         std::uint8_t ip_ttl, SimTime now) {
  ++stats_.packets_received;
  if (state_ != ServerState::Running) {
    ++stats_.dropped_not_running;
    return;
  }
  // NIC / kernel stack limit: when arrivals exceed the I/O capacity,
  // packets are lost before the application sees them (Figure 10, A>A2).
  if (!io_bucket_.try_take(now)) {
    ++stats_.dropped_io;
    return;
  }
  // Fast-path question decode for the firewall and the scoring filters.
  std::optional<dns::Question> question;
  if (auto q = dns::decode_question(wire)) {
    question = q.value();
  } else {
    ++stats_.malformed;
  }
  if (question && firewall_.drops(*question, now)) {
    ++stats_.dropped_firewall;
    return;
  }
  double score = 0.0;
  if (question) {
    filters::QueryContext ctx;
    ctx.source = source;
    ctx.ip_ttl = ip_ttl;
    ctx.question = *question;
    ctx.now = now;
    score = scoring_.score(ctx);
  }
  PendingQuery pending;
  pending.wire.assign(wire.begin(), wire.end());
  pending.source = source;
  pending.ip_ttl = ip_ttl;
  pending.arrival = now;
  pending.score = score;
  pending.question = question;
  switch (queues_.enqueue(std::move(pending), score)) {
    case filters::EnqueueOutcome::Enqueued:
      ++stats_.queries_enqueued;
      break;
    case filters::EnqueueOutcome::DiscardedByScore:
      ++stats_.discarded_by_score;
      break;
    case filters::EnqueueOutcome::DroppedQueueFull:
      ++stats_.dropped_queue_full;
      break;
  }
}

bool Nameserver::process_one(SimTime now) {
  auto item = queues_.dequeue();
  if (!item) return false;
  ++stats_.queries_processed;

  // Query-of-death check: an unrecoverable fault in query processing.
  if (item->question && crash_predicate_ && crash_predicate_(*item->question)) {
    ++stats_.crashes;
    last_qod_ = item->question;  // "write the DNS payload to disk"
    if (config_.qod_trap_enabled) {
      // The separate firewall-builder process installs a rule dropping
      // similar queries for T_QoD.
      firewall_.install(*item->question, now, config_.qod_rule_ttl);
    }
    state_ = ServerState::Crashed;
    return true;
  }

  auto response = responder_.respond_wire(item->wire, item->source);
  if (item->question) {
    // Fan the outcome back to the filters (NXDOMAIN counting etc.).
    filters::QueryContext ctx;
    ctx.source = item->source;
    ctx.ip_ttl = item->ip_ttl;
    ctx.question = *item->question;
    ctx.now = now;
    scoring_.observe_response(ctx, response ? rcode_of(*response) : dns::Rcode::ServFail);
  }
  if (response && sink_) {
    ++stats_.responses_sent;
    sink_(item->source, std::move(*response));
  }
  return true;
}

std::size_t Nameserver::process(SimTime now) {
  std::size_t processed = 0;
  while (state_ == ServerState::Running && !queues_.empty() && compute_bucket_.try_take(now)) {
    if (!process_one(now)) break;
    ++processed;
  }
  return processed;
}

std::size_t Nameserver::process_unmetered(SimTime now, std::size_t budget) {
  std::size_t processed = 0;
  while (processed < budget && state_ == ServerState::Running && process_one(now)) {
    ++processed;
  }
  return processed;
}

void Nameserver::self_suspend() noexcept {
  if (state_ == ServerState::Running) state_ = ServerState::SelfSuspended;
}

void Nameserver::resume() noexcept {
  if (state_ == ServerState::SelfSuspended) state_ = ServerState::Running;
}

void Nameserver::restart(SimTime now) {
  // A restart loses in-flight queries (resolvers retry) and resets the
  // capacity buckets; learned filter state survives in this model because
  // production filters persist their learned tables out of process.
  queues_ = filters::PenaltyQueueSet<PendingQuery>(config_.queue_config);
  compute_bucket_ = TokenBucket(config_.compute_capacity_qps, config_.compute_capacity_qps * 0.1);
  io_bucket_ = TokenBucket(config_.io_capacity_qps, config_.io_capacity_qps * 0.05);
  state_ = ServerState::Running;
  metadata_updated(now);
}

bool Nameserver::is_stale(SimTime now) const noexcept {
  if (config_.input_delayed) return false;
  return now - last_metadata_ > config_.staleness_threshold;
}

}  // namespace akadns::server
