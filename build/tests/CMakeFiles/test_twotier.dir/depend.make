# Empty dependencies file for test_twotier.
# This may be replaced when dependencies are built.
