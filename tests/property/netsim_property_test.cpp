// Property tests for the network simulator: across random topologies and
// seeds, BGP convergence terminates, reaches every connected node, obeys
// valley-free export rules, and the data plane agrees with the control
// plane after convergence.

#include <gtest/gtest.h>

#include "netsim/topology.hpp"

namespace akadns::netsim {
namespace {

struct Instance {
  EventScheduler sched;
  Network net;
  Topology topo;

  explicit Instance(std::uint64_t seed)
      : net(sched,
            [] {
              NetworkConfig config;
              config.processing_delay_min = Duration::millis(1);
              config.processing_delay_max = Duration::millis(10);
              config.slow_mrai_fraction = 0.05;
              config.slow_mrai_min = Duration::millis(500);
              config.slow_mrai_max = Duration::seconds(2);
              return config;
            }(),
            seed) {
    TopologyConfig tconfig;
    tconfig.tier1_count = 3 + seed % 3;
    tconfig.tier2_count = 6 + seed % 8;
    tconfig.edge_count = 15 + seed % 20;
    topo = build_internet(net, tconfig, seed ^ 0xABCDEF);
  }
};

class NetsimProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetsimProperty, ConvergenceTerminatesAndReachesEveryone) {
  Instance inst(GetParam());
  inst.net.advertise(inst.topo.edges[0], 1);
  inst.sched.run();
  EXPECT_TRUE(inst.sched.empty());
  // The transit-stub construction is connected: every node has a route.
  for (NodeId node = 0; node < inst.net.node_count(); ++node) {
    EXPECT_TRUE(inst.net.has_route(node, 1)) << inst.net.label(node);
    EXPECT_EQ(inst.net.catchment_origin(node, 1), inst.topo.edges[0]);
  }
}

TEST_P(NetsimProperty, WithdrawalCleansEveryTable) {
  Instance inst(GetParam());
  inst.net.advertise(inst.topo.edges[0], 1);
  inst.sched.run();
  inst.net.withdraw(inst.topo.edges[0], 1);
  inst.sched.run();
  for (NodeId node = 0; node < inst.net.node_count(); ++node) {
    EXPECT_FALSE(inst.net.has_route(node, 1)) << inst.net.label(node);
  }
}

TEST_P(NetsimProperty, BestPathsAreLoopFreeAndTerminateAtOrigin) {
  Instance inst(GetParam());
  const NodeId origin = inst.topo.edges[0];
  inst.net.advertise(origin, 1);
  inst.sched.run();
  for (NodeId node = 0; node < inst.net.node_count(); ++node) {
    const auto path = inst.net.best_path(node, 1);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.back(), origin);
    std::set<NodeId> seen(path.begin(), path.end());
    EXPECT_EQ(seen.size(), path.size()) << "AS path loop at " << inst.net.label(node);
    if (node != origin) {
      // The origin's own path is {origin}; everyone else must not appear
      // in their own learned path (loop prevention).
      EXPECT_FALSE(seen.contains(node)) << "self in path at " << inst.net.label(node);
    }
  }
}

TEST_P(NetsimProperty, AnycastCatchmentsCoverAllEdges) {
  Instance inst(GetParam());
  // Three anycast origins; after convergence every edge lands on exactly
  // one of them, and each origin serves itself.
  const std::vector<NodeId> origins{inst.topo.edges[0], inst.topo.edges[1],
                                    inst.topo.edges[2]};
  for (const auto o : origins) inst.net.advertise(o, 9);
  inst.sched.run();
  for (const auto edge : inst.topo.edges) {
    const auto origin = inst.net.catchment_origin(edge, 9);
    EXPECT_NE(origin, kInvalidNode) << inst.net.label(edge);
    EXPECT_TRUE(std::find(origins.begin(), origins.end(), origin) != origins.end());
  }
  for (const auto o : origins) {
    EXPECT_EQ(inst.net.catchment_origin(o, 9), o);
  }
}

TEST_P(NetsimProperty, DataPlaneAgreesWithControlPlaneAfterConvergence) {
  Instance inst(GetParam());
  const std::vector<NodeId> origins{inst.topo.edges[0], inst.topo.edges[1]};
  for (const auto o : origins) inst.net.advertise(o, 9);
  inst.sched.run();

  NodeId delivered_at = kInvalidNode;
  inst.net.attach_prefix_handler(9, [&](NodeId at, const Packet&) { delivered_at = at; });
  for (std::size_t i = 3; i < std::min<std::size_t>(inst.topo.edges.size(), 12); ++i) {
    const NodeId from = inst.topo.edges[i];
    delivered_at = kInvalidNode;
    inst.net.send_to_prefix(from, 9, {1});
    inst.sched.run();
    EXPECT_EQ(delivered_at, inst.net.catchment_origin(from, 9))
        << "divergence at " << inst.net.label(from);
  }
}

TEST_P(NetsimProperty, UnicastDelayIsSymmetricAndTriangular) {
  Instance inst(GetParam());
  Rng rng(GetParam());
  for (int probe = 0; probe < 20; ++probe) {
    const NodeId a = static_cast<NodeId>(rng.next_below(inst.net.node_count()));
    const NodeId b = static_cast<NodeId>(rng.next_below(inst.net.node_count()));
    const NodeId c = static_cast<NodeId>(rng.next_below(inst.net.node_count()));
    EXPECT_EQ(inst.net.unicast_delay(a, b), inst.net.unicast_delay(b, a));
    EXPECT_LE(inst.net.unicast_delay(a, c).count_nanos(),
              inst.net.unicast_delay(a, b).count_nanos() +
                  inst.net.unicast_delay(b, c).count_nanos());
  }
}

TEST_P(NetsimProperty, RepeatedFlapsAlwaysReconverge) {
  Instance inst(GetParam());
  const NodeId x = inst.topo.edges[0];
  const NodeId y = inst.topo.edges[1];
  inst.net.advertise(y, 5);
  inst.sched.run();
  for (int flap = 0; flap < 4; ++flap) {
    inst.net.advertise(x, 5);
    inst.sched.run();
    EXPECT_EQ(inst.net.catchment_origin(x, 5), x);
    inst.net.withdraw(x, 5);
    inst.sched.run();
    for (const auto edge : inst.topo.edges) {
      EXPECT_EQ(inst.net.catchment_origin(edge, 5), y)
          << "flap " << flap << " at " << inst.net.label(edge);
    }
  }
  EXPECT_TRUE(inst.sched.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetsimProperty, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace akadns::netsim
