// DNS wire format (RFC 1035 §4.1) encoder and decoder.
//
// The encoder performs name compression (pointers to earlier occurrences
// of name suffixes) across all record owner names and the compressible
// RDATA name fields (NS, CNAME, SOA, MX, PTR, SRV targets). The decoder
// is defensive: it validates lengths, rejects forward/looping compression
// pointers, and returns errors through Result rather than throwing, since
// malformed packets are an expected input for an Internet-facing server
// (§4.2.4 of the paper: a query-of-death is "seldom a malformed packet",
// i.e. parsers must simply never crash on one).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.hpp"
#include "dns/message.hpp"

namespace akadns::dns {

/// Maximum message we will ever emit (TCP limit); UDP truncation is
/// applied by the caller via `max_size` below.
constexpr std::size_t kMaxMessageSize = 65535;

struct EncodeOptions {
  /// Truncate-and-set-TC when the encoded size would exceed this.
  std::size_t max_size = kMaxMessageSize;
  /// Disable compression (for tests measuring its benefit).
  bool compress = true;
};

/// Serializes a message to wire bytes. If the message exceeds
/// options.max_size, sections are dropped whole-RRset from the back
/// (additional, authority, answer) and the TC bit is set, matching
/// standard server behaviour.
std::vector<std::uint8_t> encode(const Message& message, const EncodeOptions& options = {});

/// Parses wire bytes into a Message. All compression forms accepted.
Result<Message> decode(std::span<const std::uint8_t> wire);

/// Decodes just the question section (fast path used by filters that
/// score queries before full processing).
Result<Question> decode_question(std::span<const std::uint8_t> wire);

}  // namespace akadns::dns
