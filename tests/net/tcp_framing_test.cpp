#include "net/tcp_framing.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace akadns::net {
namespace {

std::vector<std::uint8_t> framed(const std::vector<std::uint8_t>& payload) {
  const auto prefix = frame_prefix(payload.size());
  std::vector<std::uint8_t> out(prefix.begin(), prefix.end());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<std::uint8_t> payload_of(std::size_t n, std::uint8_t start = 0) {
  std::vector<std::uint8_t> p(n);
  std::iota(p.begin(), p.end(), start);
  return p;
}

TEST(FramePrefix, BigEndian) {
  EXPECT_EQ(frame_prefix(0x0102), (std::array<std::uint8_t, 2>{0x01, 0x02}));
  EXPECT_EQ(frame_prefix(12), (std::array<std::uint8_t, 2>{0x00, 0x0c}));
  EXPECT_EQ(frame_prefix(65535), (std::array<std::uint8_t, 2>{0xff, 0xff}));
}

TEST(FrameDecoder, WholeFrameInOneFeed) {
  FrameDecoder dec;
  const auto payload = payload_of(40);
  dec.feed(framed(payload));
  auto frame = dec.next();
  ASSERT_TRUE(frame);
  EXPECT_EQ(std::vector<std::uint8_t>((*frame).begin(), (*frame).end()), payload);
  EXPECT_FALSE(dec.next());
  EXPECT_TRUE(dec.at_frame_boundary());
  EXPECT_FALSE(dec.poisoned());
}

TEST(FrameDecoder, OneByteAtATime) {
  FrameDecoder dec;
  const auto payload = payload_of(300);  // length needs both prefix bytes
  const auto wire = framed(payload);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    dec.feed(std::span(&wire[i], 1));
    if (i + 1 < wire.size()) {
      EXPECT_FALSE(dec.next()) << "frame completed early at byte " << i;
      EXPECT_FALSE(dec.at_frame_boundary());
    }
  }
  auto frame = dec.next();
  ASSERT_TRUE(frame);
  EXPECT_EQ(std::vector<std::uint8_t>((*frame).begin(), (*frame).end()), payload);
  EXPECT_TRUE(dec.at_frame_boundary());
}

TEST(FrameDecoder, SplitInsideLengthPrefix) {
  FrameDecoder dec;
  const auto payload = payload_of(5);
  const auto wire = framed(payload);
  dec.feed(std::span(wire.data(), 1));  // half the length prefix
  EXPECT_FALSE(dec.next());
  dec.feed(std::span(wire.data() + 1, wire.size() - 1));
  ASSERT_TRUE(dec.next());
}

TEST(FrameDecoder, PipelinedFramesInOneFeed) {
  FrameDecoder dec;
  std::vector<std::uint8_t> stream;
  std::vector<std::vector<std::uint8_t>> payloads;
  for (std::size_t n : {12u, 1u, 512u, 60u}) {
    payloads.push_back(payload_of(n, static_cast<std::uint8_t>(n)));
    const auto w = framed(payloads.back());
    stream.insert(stream.end(), w.begin(), w.end());
  }
  dec.feed(stream);
  for (const auto& expect : payloads) {
    auto frame = dec.next();
    ASSERT_TRUE(frame);
    EXPECT_EQ(std::vector<std::uint8_t>((*frame).begin(), (*frame).end()), expect);
  }
  EXPECT_FALSE(dec.next());
  EXPECT_TRUE(dec.at_frame_boundary());
}

TEST(FrameDecoder, ZeroLengthFramePoisons) {
  FrameDecoder dec;
  dec.feed(std::vector<std::uint8_t>{0x00, 0x00});
  EXPECT_FALSE(dec.next());
  EXPECT_EQ(dec.error(), FrameError::EmptyFrame);
  EXPECT_TRUE(dec.poisoned());
  // Poisoned: further input is ignored, no frames ever emerge.
  dec.feed(framed(payload_of(10)));
  EXPECT_FALSE(dec.next());
  EXPECT_EQ(dec.error(), FrameError::EmptyFrame);
}

TEST(FrameDecoder, OversizedFramePoisons) {
  FrameDecoder dec(512);
  const auto prefix = frame_prefix(513);
  dec.feed(prefix);
  EXPECT_FALSE(dec.next());
  EXPECT_EQ(dec.error(), FrameError::Oversized);
  dec.feed(payload_of(64));
  EXPECT_FALSE(dec.next());
}

TEST(FrameDecoder, ExactlyMaxFrameAccepted) {
  FrameDecoder dec(512);
  const auto payload = payload_of(512);
  dec.feed(framed(payload));
  auto frame = dec.next();
  ASSERT_TRUE(frame);
  EXPECT_EQ((*frame).size(), 512u);
  EXPECT_FALSE(dec.poisoned());
}

TEST(FrameDecoder, ChunkSpanningFrameBoundary) {
  FrameDecoder dec;
  const auto p1 = payload_of(20, 1);
  const auto p2 = payload_of(30, 2);
  auto w1 = framed(p1);
  const auto w2 = framed(p2);
  // First feed: all of frame 1 plus the first 3 bytes of frame 2.
  w1.insert(w1.end(), w2.begin(), w2.begin() + 3);
  dec.feed(w1);
  auto f1 = dec.next();
  ASSERT_TRUE(f1);
  EXPECT_EQ(std::vector<std::uint8_t>((*f1).begin(), (*f1).end()), p1);
  EXPECT_FALSE(dec.next());
  dec.feed(std::span(w2.data() + 3, w2.size() - 3));
  auto f2 = dec.next();
  ASSERT_TRUE(f2);
  EXPECT_EQ(std::vector<std::uint8_t>((*f2).begin(), (*f2).end()), p2);
}

TEST(FrameDecoder, BufferedCountsPendingBytes) {
  FrameDecoder dec;
  EXPECT_EQ(dec.buffered(), 0u);
  dec.feed(std::vector<std::uint8_t>{0x00, 0x05, 0xaa});
  EXPECT_EQ(dec.buffered(), 3u);
  dec.feed(std::vector<std::uint8_t>{0xbb, 0xcc, 0xdd, 0xee});
  EXPECT_EQ(dec.buffered(), 7u);
  ASSERT_TRUE(dec.next());
  EXPECT_EQ(dec.buffered(), 0u);
}

}  // namespace
}  // namespace akadns::net
