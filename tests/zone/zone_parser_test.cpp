#include "zone/zone_parser.hpp"

#include <gtest/gtest.h>

namespace akadns::zone {
namespace {

using dns::DnsName;
using dns::RecordType;

constexpr const char* kSampleZone = R"(
$ORIGIN example.com.
$TTL 3600
@   IN SOA ns1.example.com. hostmaster.example.com. (
        2020120701 ; serial
        7200       ; refresh
        900        ; retry
        1209600    ; expire
        300 )      ; minimum
@       IN NS  ns1
@       IN NS  ns2.example.net.
ns1     IN A   10.0.0.1
www 300 IN A   93.184.216.34
www     IN AAAA 2001:db8::34
ftp     IN CNAME www
@       IN MX  10 mail
mail    IN A   10.0.0.25
@       IN TXT "v=spf1 mx -all"
_sip._tcp IN SRV 10 60 5060 sip
sip     IN A   10.0.0.80
@       IN CAA 0 issue "letsencrypt.org"
*.dev   IN A   10.7.7.7
)";

TEST(ZoneParser, ParsesSampleZone) {
  const auto result = parse_master_file(kSampleZone, {});
  ASSERT_TRUE(result) << result.error();
  const Zone& zone = result.value();
  EXPECT_EQ(zone.apex().to_string(), "example.com.");
  EXPECT_EQ(zone.serial(), 2020120701u);
  EXPECT_TRUE(zone.validate().empty());
}

TEST(ZoneParser, SoaFieldsParsed) {
  const auto result = parse_master_file(kSampleZone, {});
  ASSERT_TRUE(result) << result.error();
  const auto soa = result.value().soa();
  ASSERT_TRUE(soa);
  const auto& soa_data = std::get<dns::SoaRecord>(soa->rdata);
  EXPECT_EQ(soa_data.mname.to_string(), "ns1.example.com.");
  EXPECT_EQ(soa_data.refresh, 7200u);
  EXPECT_EQ(soa_data.minimum, 300u);
}

TEST(ZoneParser, RelativeAndAbsoluteNames) {
  const auto result = parse_master_file(kSampleZone, {});
  ASSERT_TRUE(result) << result.error();
  const Zone& zone = result.value();
  const auto* ns = zone.find(zone.apex(), RecordType::NS);
  ASSERT_NE(ns, nullptr);
  ASSERT_EQ(ns->records.size(), 2u);
  // "ns1" resolves against origin; "ns2.example.net." stays absolute.
  const auto targets = std::pair(
      std::get<dns::NsRecord>(ns->records[0].rdata).nameserver.to_string(),
      std::get<dns::NsRecord>(ns->records[1].rdata).nameserver.to_string());
  EXPECT_EQ(targets.first, "ns1.example.com.");
  EXPECT_EQ(targets.second, "ns2.example.net.");
}

TEST(ZoneParser, ExplicitTtlOverridesDefault) {
  const auto result = parse_master_file(kSampleZone, {});
  ASSERT_TRUE(result) << result.error();
  const auto* www = result.value().find(DnsName::from("www.example.com"), RecordType::A);
  ASSERT_NE(www, nullptr);
  EXPECT_EQ(www->ttl(), 300u);
  const auto* mail = result.value().find(DnsName::from("mail.example.com"), RecordType::A);
  ASSERT_NE(mail, nullptr);
  EXPECT_EQ(mail->ttl(), 3600u);  // $TTL default
}

TEST(ZoneParser, QuotedTxtWithSpaces) {
  const auto result = parse_master_file(kSampleZone, {});
  ASSERT_TRUE(result) << result.error();
  const auto* txt = result.value().find(DnsName::from("example.com"), RecordType::TXT);
  ASSERT_NE(txt, nullptr);
  EXPECT_EQ(std::get<dns::TxtRecord>(txt->records[0].rdata).strings[0], "v=spf1 mx -all");
}

TEST(ZoneParser, SrvAndCaaParsed) {
  const auto result = parse_master_file(kSampleZone, {});
  ASSERT_TRUE(result) << result.error();
  const auto* srv =
      result.value().find(DnsName::from("_sip._tcp.example.com"), RecordType::SRV);
  ASSERT_NE(srv, nullptr);
  const auto& srv_data = std::get<dns::SrvRecord>(srv->records[0].rdata);
  EXPECT_EQ(srv_data.port, 5060u);
  EXPECT_EQ(srv_data.target.to_string(), "sip.example.com.");
  const auto* caa = result.value().find(DnsName::from("example.com"), RecordType::CAA);
  ASSERT_NE(caa, nullptr);
  EXPECT_EQ(std::get<dns::CaaRecord>(caa->records[0].rdata).value, "letsencrypt.org");
}

TEST(ZoneParser, WildcardParsed) {
  const auto result = parse_master_file(kSampleZone, {});
  ASSERT_TRUE(result) << result.error();
  const auto r = result.value().lookup(DnsName::from("x.dev.example.com"), RecordType::A);
  EXPECT_EQ(r.status, LookupStatus::Answer);
  EXPECT_TRUE(r.wildcard_match);
}

TEST(ZoneParser, TtlUnitSuffixes) {
  const char* zone_text =
      "$ORIGIN t.com.\n"
      "@ 1h IN SOA ns.t.com. root.t.com. 1 1d 2h 1w 30m\n"
      "@ IN NS ns\n"
      "ns 90s IN A 10.0.0.1\n";
  const auto result = parse_master_file(zone_text, {});
  ASSERT_TRUE(result) << result.error();
  const auto soa = result.value().soa();
  ASSERT_TRUE(soa);
  EXPECT_EQ(soa->ttl, 3600u);
  const auto& soa_data = std::get<dns::SoaRecord>(soa->rdata);
  EXPECT_EQ(soa_data.refresh, 86400u);
  EXPECT_EQ(soa_data.retry, 7200u);
  EXPECT_EQ(soa_data.expire, 604800u);
  EXPECT_EQ(soa_data.minimum, 1800u);
  EXPECT_EQ(result.value().find(DnsName::from("ns.t.com"), RecordType::A)->ttl(), 90u);
}

TEST(ZoneParser, ErrorsCarryLineNumbers) {
  const char* bad =
      "$ORIGIN x.com.\n"
      "@ IN SOA ns.x.com. root.x.com. 1 1 1 1 1\n"
      "@ IN NS ns\n"
      "oops IN A not-an-ip\n";
  const auto result = parse_master_file(bad, {});
  ASSERT_FALSE(result);
  EXPECT_NE(result.error().find("line 4"), std::string::npos);
}

TEST(ZoneParser, MissingSoaIsError) {
  const auto result = parse_master_file("$ORIGIN x.com.\n@ IN NS ns.x.com.\n", {});
  ASSERT_FALSE(result);
  EXPECT_NE(result.error().find("no SOA"), std::string::npos);
}

TEST(ZoneParser, DuplicateSoaIsError) {
  const char* bad =
      "$ORIGIN x.com.\n"
      "@ IN SOA ns.x.com. root.x.com. 1 1 1 1 1\n"
      "@ IN SOA ns.x.com. root.x.com. 2 1 1 1 1\n";
  EXPECT_FALSE(parse_master_file(bad, {}));
}

TEST(ZoneParser, UnbalancedParensIsError) {
  const auto result = parse_master_file("@ IN SOA a. b. ( 1 1 1 1 1\n", {});
  EXPECT_FALSE(result);
}

TEST(ZoneParser, UnterminatedQuoteIsError) {
  const auto result =
      parse_master_file("$ORIGIN x.com.\n@ IN TXT \"unterminated\n", {});
  EXPECT_FALSE(result);
}

TEST(ZoneParser, UnknownDirectiveIsError) {
  const auto result = parse_master_file("$BOGUS foo\n", {});
  ASSERT_FALSE(result);
  EXPECT_NE(result.error().find("$BOGUS"), std::string::npos);
}

TEST(ZoneParser, RecordWithoutOwnerIsError) {
  // First record line starts with a type and no prior owner.
  const auto result = parse_master_file("$ORIGIN x.com.\nIN A 1.2.3.4\n", {});
  EXPECT_FALSE(result);
}

TEST(ZoneParser, CommentsIgnoredEverywhere) {
  const char* zone_text =
      "; leading comment\n"
      "$ORIGIN c.com. ; trailing comment\n"
      "@ IN SOA ns.c.com. r.c.com. 5 1 1 1 1 ; soa comment\n"
      "@ IN NS ns ; ns comment\n"
      "ns IN A 10.0.0.1\n"
      "; done\n";
  const auto result = parse_master_file(zone_text, {});
  ASSERT_TRUE(result) << result.error();
  EXPECT_EQ(result.value().serial(), 5u);
}

TEST(ZoneParser, RoundTripThroughMasterFile) {
  const auto first = parse_master_file(kSampleZone, {});
  ASSERT_TRUE(first) << first.error();
  const auto text = to_master_file(first.value());
  const auto second = parse_master_file(text, {});
  ASSERT_TRUE(second) << second.error();
  EXPECT_EQ(second.value().record_count(), first.value().record_count());
  EXPECT_EQ(second.value().serial(), first.value().serial());
  // Every original record survives the round trip.
  const auto originals = first.value().all_records();
  for (const auto& rr : originals) {
    const auto* set = second.value().find(rr.name, rr.type());
    ASSERT_NE(set, nullptr) << rr.to_string();
  }
}

TEST(ZoneParser, OwnerContinuationUsesLastOwner) {
  const char* zone_text =
      "$ORIGIN m.com.\n"
      "@ IN SOA ns.m.com. r.m.com. 1 1 1 1 1\n"
      "@ IN NS ns\n"
      "ns IN A 10.0.0.1\n"
      "multi IN A 10.0.0.2\n"
      "      IN A 10.0.0.3\n";
  const auto result = parse_master_file(zone_text, {});
  ASSERT_TRUE(result) << result.error();
  const auto* set = result.value().find(DnsName::from("multi.m.com"), RecordType::A);
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->records.size(), 2u);
}

}  // namespace
}  // namespace akadns::zone
