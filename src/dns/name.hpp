// DNS domain names (RFC 1035 §2.3 / §3.1).
//
// A DnsName is an ordered sequence of labels, stored lowercased (DNS
// comparisons are ASCII case-insensitive). The root name has zero labels.
// Enforces the RFC limits: label <= 63 octets, total wire length <= 255.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace akadns::dns {

class DnsName {
 public:
  /// The root name ".".
  DnsName() = default;

  /// Parses dotted presentation form ("www.Example.COM", trailing dot
  /// optional, "" and "." both mean root). Returns nullopt if a label is
  /// empty/too long or the total length exceeds 255 wire octets.
  static std::optional<DnsName> parse(std::string_view text);

  /// Like parse() but throws std::invalid_argument; convenient for
  /// literals in tests and examples.
  static DnsName from(std::string_view text);

  /// Builds from already-validated labels (lowercased internally).
  static std::optional<DnsName> from_labels(std::vector<std::string> labels);

  bool is_root() const noexcept { return labels_.empty(); }
  std::size_t label_count() const noexcept { return labels_.size(); }
  const std::vector<std::string>& labels() const noexcept { return labels_; }
  const std::string& label(std::size_t i) const noexcept { return labels_[i]; }

  /// Length of this name in wire format (sum of 1+len per label, +1 root).
  std::size_t wire_length() const noexcept;

  /// "www.example.com." (root prints as ".").
  std::string to_string() const;

  /// The name with the leftmost label removed; root's parent is root.
  DnsName parent() const;

  /// Prepends a single label; returns nullopt if limits would be violated.
  std::optional<DnsName> prepend(std::string_view label) const;

  /// Concatenation: this name relative to `suffix`
  /// ("www" + "example.com" -> "www.example.com").
  std::optional<DnsName> concat(const DnsName& suffix) const;

  /// True if this name is `ancestor` or a descendant of it.
  bool is_subdomain_of(const DnsName& ancestor) const noexcept;

  /// Number of trailing labels shared with `other`.
  std::size_t common_suffix_labels(const DnsName& other) const noexcept;

  /// The trailing `n` labels as a name (n >= label_count() returns *this).
  DnsName suffix(std::size_t n) const;

  /// True if this name equals the trailing `n` labels of `other` — the
  /// allocation-free form of `*this == other.suffix(n)`.
  bool equals_tail_of(const DnsName& other, std::size_t n) const noexcept;

  // -- incremental suffix hashing -------------------------------------------
  //
  // A right-to-left fold over the labels: the hash of a name's trailing
  // n+1 labels derives from the trailing-n hash and one more label, so a
  // lookup can probe every suffix depth of a query name with a single
  // pass and zero DnsName constructions (the compiled-zone node index and
  // the zone store's longest-suffix match both key on this).
  static constexpr std::uint64_t kSuffixHashSeed = 0xcbf29ce484222325ULL;

  /// Folds one more label (the next one to the left) into a suffix hash.
  static std::uint64_t suffix_hash_extend(std::uint64_t h, std::string_view label) noexcept;

  /// The suffix hash of the whole name (root hashes to the seed).
  std::uint64_t suffix_hash() const noexcept;

  /// Canonical DNS ordering (RFC 4034 §6.1): compare label sequences
  /// right-to-left. Used by the zone tree.
  std::strong_ordering operator<=>(const DnsName& other) const noexcept;
  bool operator==(const DnsName& other) const noexcept { return labels_ == other.labels_; }

  std::uint64_t hash() const noexcept;

 private:
  std::vector<std::string> labels_;  // lowercased, left-to-right
};

}  // namespace akadns::dns

template <>
struct std::hash<akadns::dns::DnsName> {
  std::size_t operator()(const akadns::dns::DnsName& n) const noexcept {
    return static_cast<std::size_t>(n.hash());
  }
};
