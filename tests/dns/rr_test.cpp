#include "dns/rr.hpp"

#include <gtest/gtest.h>

namespace akadns::dns {
namespace {

TEST(RecordType, ToStringKnownTypes) {
  EXPECT_EQ(to_string(RecordType::A), "A");
  EXPECT_EQ(to_string(RecordType::AAAA), "AAAA");
  EXPECT_EQ(to_string(RecordType::NS), "NS");
  EXPECT_EQ(to_string(RecordType::SOA), "SOA");
  EXPECT_EQ(to_string(RecordType::CAA), "CAA");
  EXPECT_EQ(to_string(static_cast<RecordType>(999)), "TYPE999");
}

TEST(RecordType, ParseMnemonics) {
  EXPECT_EQ(parse_record_type("a"), RecordType::A);
  EXPECT_EQ(parse_record_type("AAAA"), RecordType::AAAA);
  EXPECT_EQ(parse_record_type("Cname"), RecordType::CNAME);
  EXPECT_EQ(parse_record_type("srv"), RecordType::SRV);
  EXPECT_FALSE(parse_record_type("NOPE"));
}

TEST(Rcode, ToString) {
  EXPECT_EQ(to_string(Rcode::NoError), "NOERROR");
  EXPECT_EQ(to_string(Rcode::NxDomain), "NXDOMAIN");
  EXPECT_EQ(to_string(Rcode::ServFail), "SERVFAIL");
}

TEST(RData, TypeDispatch) {
  EXPECT_EQ(rdata_type(ARecord{}), RecordType::A);
  EXPECT_EQ(rdata_type(AaaaRecord{}), RecordType::AAAA);
  EXPECT_EQ(rdata_type(NsRecord{}), RecordType::NS);
  EXPECT_EQ(rdata_type(CnameRecord{}), RecordType::CNAME);
  EXPECT_EQ(rdata_type(SoaRecord{}), RecordType::SOA);
  EXPECT_EQ(rdata_type(TxtRecord{}), RecordType::TXT);
  EXPECT_EQ(rdata_type(MxRecord{}), RecordType::MX);
  EXPECT_EQ(rdata_type(SrvRecord{}), RecordType::SRV);
  EXPECT_EQ(rdata_type(RawRecord{.type = 999, .data = {}}), static_cast<RecordType>(999));
}

TEST(ResourceRecord, MakeHelpers) {
  const auto name = DnsName::from("www.example.com");
  const auto a = make_a(name, Ipv4Addr(1, 2, 3, 4), 300);
  EXPECT_EQ(a.type(), RecordType::A);
  EXPECT_EQ(a.ttl, 300u);
  EXPECT_EQ(std::get<ARecord>(a.rdata).address.to_string(), "1.2.3.4");

  const auto ns = make_ns(name, DnsName::from("ns1.example.com"), 86400);
  EXPECT_EQ(ns.type(), RecordType::NS);

  const auto soa = make_soa(DnsName::from("example.com"), DnsName::from("ns1.example.com"),
                            DnsName::from("admin.example.com"), 2020010101, 3600);
  EXPECT_EQ(soa.type(), RecordType::SOA);
  EXPECT_EQ(std::get<SoaRecord>(soa.rdata).serial, 2020010101u);
}

TEST(ResourceRecord, ToStringPresentation) {
  const auto rr = make_a(DnsName::from("www.example.com"), Ipv4Addr(93, 184, 216, 34), 300);
  EXPECT_EQ(rr.to_string(), "www.example.com. 300 IN A 93.184.216.34");

  const auto mx = ResourceRecord{DnsName::from("example.com"), RecordClass::IN, 3600,
                                 MxRecord{10, DnsName::from("mail.example.com")}};
  EXPECT_EQ(mx.to_string(), "example.com. 3600 IN MX 10 mail.example.com.");

  const auto txt = make_txt(DnsName::from("example.com"), "v=spf1 -all", 60);
  EXPECT_EQ(txt.to_string(), "example.com. 60 IN TXT \"v=spf1 -all\"");
}

TEST(ResourceRecord, SoaPresentation) {
  const auto soa = make_soa(DnsName::from("ex.com"), DnsName::from("ns1.ex.com"),
                            DnsName::from("admin.ex.com"), 7, 3600, 120);
  EXPECT_EQ(soa.to_string(),
            "ex.com. 3600 IN SOA ns1.ex.com. admin.ex.com. 7 3600 600 604800 120");
}

TEST(ResourceRecord, Equality) {
  const auto a1 = make_a(DnsName::from("x.com"), Ipv4Addr(1, 1, 1, 1), 60);
  const auto a2 = make_a(DnsName::from("x.com"), Ipv4Addr(1, 1, 1, 1), 60);
  const auto a3 = make_a(DnsName::from("x.com"), Ipv4Addr(1, 1, 1, 2), 60);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, a3);
}

TEST(ResourceRecord, SrvPresentation) {
  const ResourceRecord srv{DnsName::from("_dns._udp.example.com"), RecordClass::IN, 300,
                           SrvRecord{10, 60, 53, DnsName::from("ns.example.com")}};
  EXPECT_EQ(srv.to_string(), "_dns._udp.example.com. 300 IN SRV 10 60 53 ns.example.com.");
}

TEST(ResourceRecord, CaaPresentation) {
  const ResourceRecord caa{DnsName::from("example.com"), RecordClass::IN, 300,
                           CaaRecord{0, "issue", "letsencrypt.org"}};
  EXPECT_EQ(caa.to_string(), "example.com. 300 IN CAA 0 issue \"letsencrypt.org\"");
}

}  // namespace
}  // namespace akadns::dns
