
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/attacks.cpp" "src/workload/CMakeFiles/akadns_workload.dir/attacks.cpp.o" "gcc" "src/workload/CMakeFiles/akadns_workload.dir/attacks.cpp.o.d"
  "/root/repo/src/workload/diurnal.cpp" "src/workload/CMakeFiles/akadns_workload.dir/diurnal.cpp.o" "gcc" "src/workload/CMakeFiles/akadns_workload.dir/diurnal.cpp.o.d"
  "/root/repo/src/workload/population.cpp" "src/workload/CMakeFiles/akadns_workload.dir/population.cpp.o" "gcc" "src/workload/CMakeFiles/akadns_workload.dir/population.cpp.o.d"
  "/root/repo/src/workload/queries.cpp" "src/workload/CMakeFiles/akadns_workload.dir/queries.cpp.o" "gcc" "src/workload/CMakeFiles/akadns_workload.dir/queries.cpp.o.d"
  "/root/repo/src/workload/zones.cpp" "src/workload/CMakeFiles/akadns_workload.dir/zones.cpp.o" "gcc" "src/workload/CMakeFiles/akadns_workload.dir/zones.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/zone/CMakeFiles/akadns_zone.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/akadns_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/akadns_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
