#include "server/responder.hpp"

#include "dns/wire.hpp"

namespace akadns::server {

using dns::CnameRecord;
using dns::DnsName;
using dns::Message;
using dns::Question;
using dns::Rcode;
using dns::RecordType;

Responder::Responder(const zone::ZoneStore& store, ResponderConfig config)
    : store_(store), config_(config) {}

Rcode Responder::resolve(const Question& question, const Endpoint& client,
                         const std::optional<dns::ClientSubnet>& ecs, Message& response) {
  // 1. Mapping Intelligence hook: dynamic answers (CDN/GTM) win over
  //    static zone data for the names the mapping system owns.
  if (mapping_hook_) {
    if (auto mapped = mapping_hook_(question, client, ecs)) {
      response.answers.insert(response.answers.end(), mapped->answers.begin(),
                              mapped->answers.end());
      if (response.edns && response.edns->client_subnet) {
        response.edns->client_subnet->scope_prefix_len = mapped->ecs_scope_prefix_len;
      }
      ++stats_.mapped_answers;
      return Rcode::NoError;
    }
  }

  DnsName qname = question.name;
  Rcode rcode = Rcode::NoError;
  for (int link = 0; link <= config_.max_cname_chain; ++link) {
    const zone::ZonePtr zone = store_.find_best_zone(qname);
    if (!zone) {
      // Not ours. For the original qname that means REFUSED; mid-chain it
      // just ends the chase (the resolver follows the CNAME externally).
      if (link == 0) return Rcode::Refused;
      return rcode;
    }
    auto result = zone->lookup(qname, question.qtype);
    if (result.wildcard_match) ++stats_.wildcard_answers;
    switch (result.status) {
      case zone::LookupStatus::Answer:
        // The lookup result is already a private copy — move the records
        // into the response instead of copying their names again.
        response.answers.insert(response.answers.end(),
                                std::make_move_iterator(result.records.begin()),
                                std::make_move_iterator(result.records.end()));
        return Rcode::NoError;
      case zone::LookupStatus::CnameChase: {
        ++stats_.cname_chases;
        qname = std::get<CnameRecord>(result.records.front().rdata).target;
        response.answers.insert(response.answers.end(),
                                std::make_move_iterator(result.records.begin()),
                                std::make_move_iterator(result.records.end()));
        continue;
      }
      case zone::LookupStatus::Referral: {
        ++stats_.referrals;
        response.authorities.insert(response.authorities.end(),
                                    std::make_move_iterator(result.authority.begin()),
                                    std::make_move_iterator(result.authority.end()));
        response.additionals.insert(response.additionals.end(),
                                    std::make_move_iterator(result.additional.begin()),
                                    std::make_move_iterator(result.additional.end()));
        response.header.aa = false;  // referral is not authoritative data
        // §5.2 answer push: include the answer with the referral so the
        // resolver caches both the delegation and the records in one
        // round trip.
        if (push_hook_) {
          auto pushed = push_hook_(question, client);
          if (!pushed.empty()) {
            ++stats_.pushed_answers;
            response.answers.insert(response.answers.end(),
                                    std::make_move_iterator(pushed.begin()),
                                    std::make_move_iterator(pushed.end()));
          }
        }
        return Rcode::NoError;
      }
      case zone::LookupStatus::NoData:
        ++stats_.nodata;
        response.authorities.insert(response.authorities.end(),
                                    std::make_move_iterator(result.authority.begin()),
                                    std::make_move_iterator(result.authority.end()));
        return rcode;  // NOERROR (or earlier chain rcode)
      case zone::LookupStatus::NxDomain:
        response.authorities.insert(response.authorities.end(),
                                    std::make_move_iterator(result.authority.begin()),
                                    std::make_move_iterator(result.authority.end()));
        // RFC 2308: if the chain started with a CNAME, the rcode applies
        // to the final name.
        return Rcode::NxDomain;
    }
  }
  // CNAME chain too long: treat as server failure (loop protection).
  return Rcode::ServFail;
}

Message Responder::respond_core(const dns::Header& query_header, std::size_t question_count,
                                const Question* question,
                                const std::optional<dns::Edns>& edns,
                                const Endpoint& client) {
  ++stats_.responses;
  // Only standard queries with exactly one question are served; this is
  // what production authoritatives do for the protocol subset we model.
  if (query_header.opcode != dns::Opcode::Query) {
    ++stats_.notimp;
    return dns::make_response(query_header, question, edns, Rcode::NotImp);
  }
  if (question_count != 1 || !question || question->qclass != dns::RecordClass::IN) {
    ++stats_.formerr;
    return dns::make_response(query_header, question, edns, Rcode::FormErr);
  }

  Message response =
      dns::make_response(query_header, question, edns, Rcode::NoError, /*authoritative=*/true);
  const std::optional<dns::ClientSubnet> ecs = edns ? edns->client_subnet : std::nullopt;
  const Rcode rcode = resolve(*question, client, ecs, response);
  response.header.rcode = rcode;
  switch (rcode) {
    case Rcode::NoError: ++stats_.noerror; break;
    case Rcode::NxDomain: ++stats_.nxdomain; break;
    case Rcode::Refused: ++stats_.refused; break;
    case Rcode::ServFail: ++stats_.servfail; break;
    default: break;
  }
  if (rcode == Rcode::Refused) response.header.aa = false;
  if (response_observer_) response_observer_(*question, rcode);
  return response;
}

Message Responder::respond(const Message& query, const Endpoint& client) {
  return respond_core(query.header, query.questions.size(),
                      query.questions.empty() ? nullptr : &query.questions[0], query.edns,
                      client);
}

std::vector<std::uint8_t> Responder::respond_view(std::span<const std::uint8_t> wire,
                                                  dns::QueryView& view,
                                                  const Endpoint& client) {
  if (!dns::decode_query_edns(wire, view)) {
    // Mangled record tail: the header and question already decoded, so
    // salvage a FORMERR (what the seed path did after a failed full
    // decode) without re-parsing either.
    ++stats_.responses;
    ++stats_.formerr;
    return dns::encode(
        dns::make_response(view.header, &view.question, std::nullopt, Rcode::FormErr, false));
  }
  const Message response =
      respond_core(view.header, view.qdcount, &view.question, view.edns, client);
  const std::size_t max_size =
      view.edns ? view.edns->udp_payload_size : config_.udp_payload_default;
  return dns::encode(response, {.max_size = max_size});
}

std::optional<std::vector<std::uint8_t>> Responder::respond_wire(
    std::span<const std::uint8_t> wire, const Endpoint& client) {
  auto view = dns::decode_query_view(wire);
  if (!view) return std::nullopt;
  return respond_view(wire, view.value(), client);
}

}  // namespace akadns::server
