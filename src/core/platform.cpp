#include "core/platform.hpp"

#include <algorithm>

#include "defense/filter_chain.hpp"

#include "dns/wire.hpp"

namespace akadns::core {
namespace {

// ---------------------------------------------------------------------------
// Data-plane framing: DNS wire bytes plus the client endpoint and IP TTL.
// Layout: [family:1][addr:4|16][port:2][ip_ttl:1][dns wire...]
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> frame(const Endpoint& client, std::uint8_t ip_ttl,
                                std::span<const std::uint8_t> wire) {
  std::vector<std::uint8_t> out;
  out.reserve(1 + 16 + 3 + wire.size());
  if (client.addr.is_v6()) {
    out.push_back(6);
    const auto& bytes = client.addr.v6().bytes();
    out.insert(out.end(), bytes.begin(), bytes.end());
  } else {
    out.push_back(4);
    const auto octets = client.addr.v4().octets();
    out.insert(out.end(), octets.begin(), octets.end());
  }
  out.push_back(static_cast<std::uint8_t>(client.port >> 8));
  out.push_back(static_cast<std::uint8_t>(client.port));
  out.push_back(ip_ttl);
  out.insert(out.end(), wire.begin(), wire.end());
  return out;
}

struct Deframed {
  Endpoint client;
  std::uint8_t ip_ttl = 0;
  std::span<const std::uint8_t> wire;
};

std::optional<Deframed> deframe(std::span<const std::uint8_t> payload) {
  if (payload.size() < 1) return std::nullopt;
  Deframed out;
  std::size_t cursor = 1;
  if (payload[0] == 6) {
    if (payload.size() < 1 + 16 + 3) return std::nullopt;
    std::array<std::uint8_t, 16> bytes{};
    std::copy(payload.begin() + 1, payload.begin() + 17, bytes.begin());
    out.client.addr = IpAddr(Ipv6Addr(bytes));
    cursor = 17;
  } else if (payload[0] == 4) {
    if (payload.size() < 1 + 4 + 3) return std::nullopt;
    out.client.addr =
        IpAddr(Ipv4Addr(payload[1], payload[2], payload[3], payload[4]));
    cursor = 5;
  } else {
    return std::nullopt;
  }
  out.client.port = static_cast<std::uint16_t>((payload[cursor] << 8) | payload[cursor + 1]);
  out.ip_ttl = payload[cursor + 2];
  out.wire = payload.subspan(cursor + 3);
  return out;
}

}  // namespace

Platform::Platform(PlatformConfig config)
    : config_(config),
      pool_(config.worker_threads > 1 ? std::make_unique<WorkerPool>(config.worker_threads)
                                      : nullptr),
      network_(scheduler_, config.network, config.seed),
      control_(scheduler_, config.control, config.seed ^ 0x51CA75ULL),
      coordinator_(config.suspension),
      rng_(config.seed ^ 0xF00DULL) {}

void Platform::build_internet() {
  topology_ = netsim::build_internet(network_, config_.topology, config_.seed ^ 0x70B0ULL);
}

pop::Pop* Platform::pop_by_router(netsim::NodeId node) {
  const auto it = pops_by_router_.find(node);
  return it == pops_by_router_.end() ? nullptr : it->second;
}

void Platform::subscribe_machine(pop::Machine& machine, bool input_delayed,
                                 const ZoneFilter& zone_filter) {
  const Duration extra = input_delayed ? Duration::hours(1) : Duration::zero();
  for (const auto& apex : hosted_apexes_) {
    if (zone_filter && !zone_filter(apex)) continue;
    control::subscribe_machine_to_zone(control_, machine, apex, extra);
  }
  control::subscribe_machine_to_mapping(control_, machine, extra);
  machine.nameserver().metadata_updated(scheduler_.now());
}

void Platform::wire_machine(pop::Pop& pop, pop::Machine& machine) {
  // Response path: unicast the framed response back to the client node.
  machine.nameserver().set_response_sink(
      [this, router = pop.router_node()](const Endpoint& dst, std::vector<std::uint8_t> wire) {
        const auto it = client_nodes_.find(dst.addr);
        if (it == client_nodes_.end()) return;
        network_.send_to_node(router, it->second, frame(dst, 0, wire));
      });
  // Mapping-intelligence hook for dynamic (CDN/GTM) domains. Only fires
  // on machines authoritative for the dynamic zone itself — toplevels
  // hosting just the delegating parent still refer (Two-Tier semantics).
  machine.nameserver().set_mapping_hook(
      [this, machine_ptr = &machine](const dns::Question& question, const Endpoint& client,
                                     const std::optional<dns::ClientSubnet>& ecs)
          -> std::optional<server::MappedAnswer> {
        for (const auto& [suffix, count] : dynamic_domains_) {
          if (!question.name.is_subdomain_of(suffix)) continue;
          const auto zone = machine_ptr->local_store()->find_best_zone(question.name);
          if (!zone || !zone->apex().is_subdomain_of(suffix)) continue;
          if (question.qtype != dns::RecordType::A &&
              question.qtype != dns::RecordType::AAAA &&
              question.qtype != dns::RecordType::ANY) {
            continue;
          }
          const IpAddr locate_by = ecs ? ecs->address : client.addr;
          server::MappedAnswer mapped;
          mapped.answers = mapping_.answer(question.name, locate_by, count);
          mapped.ecs_scope_prefix_len = ecs ? 24 : 0;
          if (!mapped.answers.empty()) return mapped;
        }
        return std::nullopt;
      });
}

pop::Pop& Platform::add_pop(netsim::NodeId edge_node, std::size_t machine_count,
                            const std::vector<netsim::PrefixId>& clouds,
                            bool include_input_delayed, ZoneFilter zone_filter) {
  pops_.push_back(std::make_unique<pop::Pop>(
      pop::PopConfig{"pop-" + std::to_string(pops_.size()), edge_node}, network_));
  pop::Pop& pop = *pops_.back();
  pops_by_router_[edge_node] = &pop;

  for (std::size_t i = 0; i < machine_count + (include_input_delayed ? 1 : 0); ++i) {
    const bool input_delayed = include_input_delayed && i == machine_count;
    pop::MachineConfig mconfig;
    mconfig.id = pop.id() + "/m" + std::to_string(machine_counter_++);
    mconfig.input_delayed = input_delayed;
    mconfig.nameserver.lanes = config_.machine_lanes;
    // Machines own private stores fed by the control plane.
    pop::Machine& machine = pop.adopt_machine(std::make_unique<pop::Machine>(std::move(mconfig)));
    machine_zone_filters_[&machine] = zone_filter;
    wire_machine(pop, machine);
    subscribe_machine(machine, input_delayed, zone_filter);
    for (const auto cloud : clouds) {
      machine.speaker().advertise(cloud, input_delayed ? pop::BgpSpeaker::kInputDelayedMed
                                                       : pop::BgpSpeaker::kDefaultMed);
      attach_cloud_handler(cloud);
    }
    agents_.push_back(std::make_unique<pop::MonitoringAgent>(
        machine, *machine.local_store(), coordinator_, scheduler_));
    agents_.back()->start();
  }
  return pop;
}

void Platform::host_zone(zone::Zone zone) {
  const dns::DnsName apex = zone.apex();
  const bool already_hosted =
      std::find(hosted_apexes_.begin(), hosted_apexes_.end(), apex) != hosted_apexes_.end();
  if (!already_hosted) {
    hosted_apexes_.push_back(apex);
    // Subscribe every existing machine (passing its PoP's zone filter)
    // to the new topic.
    for (auto& pop : pops_) {
      for (auto* machine : pop->machines()) {
        const auto& filter = machine_zone_filters_[machine];
        if (filter && !filter(apex)) continue;
        control::subscribe_machine_to_zone(
            control_, *machine, apex,
            machine->input_delayed() ? Duration::hours(1) : Duration::zero());
      }
    }
  }
  control::publish_zone(control_, zone_publisher_, std::move(zone));
}

void Platform::register_dynamic_domain(const dns::DnsName& suffix, std::size_t answer_count) {
  dynamic_domains_.emplace_back(suffix, answer_count);
}

void Platform::start_mapping_heartbeat(Duration interval) {
  heartbeat_interval_ = interval;
  if (heartbeat_running_) return;
  heartbeat_running_ = true;
  // Self-rescheduling heartbeat.
  struct Beat {
    Platform* platform;
    void operator()() const {
      if (!platform->heartbeat_running_) return;
      platform->control_.publish(control::kMappingTopic,
                                 std::make_shared<const control::Metadata>());
      platform->scheduler_.schedule_after(platform->heartbeat_interval_, Beat{platform});
    }
  };
  Beat{this}();
}

void Platform::stop_mapping_heartbeat() { heartbeat_running_ = false; }

void Platform::install_filter_pipeline() { install_filter_pipeline(FilterDefaults{}); }

void Platform::install_filter_pipeline(const FilterDefaults& defaults) {
  for (auto& pop : pops_) {
    for (auto* machine : pop->machines()) {
      auto& ns = machine->nameserver();
      // Filters are installed uniformly on every lane, so probing lane 0
      // keeps this idempotent.
      if (ns.scoring().find("rate_limit") || ns.scoring().find("nxdomain")) continue;
      ns.install_filter(defense::rate_limit_factory(filters::RateLimitFilter::Config{
          .penalty = defaults.rate_limit_penalty,
          .default_limit_qps = defaults.rate_limit_default_qps}));
      // The factory scales the machine-level NXDOMAIN threshold down by
      // the lane count (a zone's queries spread across all lanes).
      ns.install_filter(defense::nxdomain_factory(
          filters::NxDomainFilter::Config{.penalty = defaults.nxdomain_penalty,
                                          .nxdomain_threshold = defaults.nxdomain_threshold},
          defense::zone_store_hooks(*machine->local_store())));
    }
  }
}

void Platform::attach_cloud_handler(netsim::PrefixId cloud) {
  if (cloud_handlers_[cloud]) return;
  cloud_handlers_[cloud] = true;
  network_.attach_prefix_handler(cloud, [this](netsim::NodeId at, const netsim::Packet& p) {
    on_anycast_delivery(at, p);
  });
}

void Platform::on_anycast_delivery(netsim::NodeId at_node, const netsim::Packet& packet) {
  pop::Pop* pop = pop_by_router(at_node);
  if (!pop) return;
  const auto deframed = deframe(packet.payload);
  if (!deframed) return;
  pop->deliver(packet.dst_prefix, deframed->wire, deframed->client, deframed->ip_ttl,
               scheduler_.now());
  schedule_pump(*pop);
}

void Platform::schedule_pump(pop::Pop& pop) {
  if (pump_scheduled_[&pop]) return;
  pump_scheduled_[&pop] = true;
  scheduler_.schedule_after(config_.process_latency, [this, pop_ptr = &pop] {
    pump_scheduled_[pop_ptr] = false;
    pop_ptr->pump(scheduler_.now(), pool_.get());
    // Backlog remains (compute-bound): keep pumping.
    for (auto* machine : pop_ptr->machines()) {
      if (machine->nameserver().has_pending()) {
        scheduler_.schedule_after(config_.pump_interval,
                                  [this, pop_ptr] { schedule_pump(*pop_ptr); });
        break;
      }
    }
  });
}

void Platform::ensure_client_handler(netsim::NodeId node) {
  if (client_handlers_[node]) return;
  client_handlers_[node] = true;
  network_.attach_node_handler(node, [this](netsim::NodeId, const netsim::Packet& packet) {
    on_client_delivery(packet);
  });
}

void Platform::on_client_delivery(const netsim::Packet& packet) {
  const auto deframed = deframe(packet.payload);
  if (!deframed) return;
  auto decoded = dns::decode(deframed->wire);
  if (!decoded) return;
  const PendingKey key{deframed->client.addr, deframed->client.port,
                       decoded.value().header.id};
  const auto it = pending_.find(key);
  if (it == pending_.end()) return;
  PendingQuery pending = std::move(it->second);
  pending_.erase(it);
  scheduler_.cancel(pending.timeout_event);
  ++responses_received_;
  pending.callback(std::move(decoded).take(), scheduler_.now() - pending.sent_at);
}

void Platform::send_query(netsim::NodeId client_node, const Endpoint& client,
                          std::uint8_t ip_ttl, const dns::Message& query,
                          netsim::PrefixId cloud, ResponseCallback callback) {
  ensure_client_handler(client_node);
  client_nodes_[client.addr] = client_node;
  const PendingKey key{client.addr, client.port, query.header.id};
  PendingQuery pending;
  pending.callback = std::move(callback);
  pending.sent_at = scheduler_.now();
  pending.timeout_event = scheduler_.schedule_after(config_.query_timeout, [this, key] {
    const auto it = pending_.find(key);
    if (it == pending_.end()) return;
    PendingQuery timed_out = std::move(it->second);
    pending_.erase(it);
    ++timeouts_;
    timed_out.callback(std::nullopt, config_.query_timeout);
  });
  pending_[key] = std::move(pending);
  ++queries_sent_;
  network_.send_to_prefix(client_node, cloud, frame(client, ip_ttl, dns::encode(query)));
}

}  // namespace akadns::core
