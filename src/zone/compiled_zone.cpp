#include "zone/compiled_zone.hpp"

#include <algorithm>
#include <chrono>
#include <set>

namespace akadns::zone {

using dns::CnameRecord;
using dns::NsRecord;
using dns::WireFragment;

namespace {

// DnsName caps wire length at 255 octets, so a name can never exceed 127
// labels; the lookup's per-depth hash table lives on the stack.
constexpr std::size_t kMaxDepth = 127;

std::span<const WireFragment> subspan(const std::vector<WireFragment>& v,
                                      std::uint32_t begin, std::uint32_t end) noexcept {
  return std::span<const WireFragment>(v.data() + begin, end - begin);
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv1a_u32(std::uint64_t h, std::uint32_t v) noexcept {
  return fnv1a(h, &v, sizeof(v));
}

std::uint64_t hash_name(std::uint64_t h, const dns::DnsName& name) {
  for (std::size_t i = 0; i < name.label_count(); ++i) {
    const auto& label = name.label(i);
    h = fnv1a(h, label.data(), label.size());
    h = fnv1a(h, "\0", 1);
  }
  return fnv1a(h, "\xff", 1);
}

std::uint64_t hash_fragment(std::uint64_t h, const WireFragment& f) {
  h = hash_name(h, *f.owner);
  h = fnv1a(h, f.fixed.data(), f.fixed.size());
  for (const auto& op : f.rdata) {
    h = fnv1a(h, op.literal.data(), op.literal.size());
    if (op.name != nullptr) h = hash_name(h, *op.name);
  }
  return h;
}

}  // namespace

CompiledZone::NodeDataPtr CompiledZone::build_node(const Zone& z, const DnsName& name,
                                                   const DnsName& apex) {
  auto data = std::make_shared<NodeData>();
  data->owner = name;
  // Fragments must not alias the source zone (the node outlives it when
  // shared into later snapshots): the owner pointer targets the node's
  // own copy, and every rdata name reference is copied into the arena.
  const auto self_contain = [&data](const dns::ResourceRecord& rr, const DnsName* owner) {
    WireFragment fragment = dns::make_wire_fragment(rr);
    fragment.owner = owner;
    for (auto& op : fragment.rdata) {
      if (op.name != nullptr) {
        data->arena.push_back(*op.name);
        op.name = &data->arena.back();
      }
    }
    return fragment;
  };

  if (const auto* rrsets = z.rrsets_at(name)) {
    for (const auto& [type, set] : *rrsets) {
      TypeRange range;
      range.type = type;
      range.begin = static_cast<std::uint32_t>(data->frags.size());
      range.ttl = set.ttl();
      for (const auto& rr : set.records) data->frags.push_back(self_contain(rr, &data->owner));
      range.end = static_cast<std::uint32_t>(data->frags.size());
      data->ranges.push_back(range);
      if (type == RecordType::CNAME && !set.records.empty()) {
        data->arena.push_back(std::get<CnameRecord>(set.records.front().rdata).target);
        data->cname_target = &data->arena.back();
      }
    }
  }

  // A non-apex NS RRset is a zone cut: precompile the whole referral
  // (NS authority, then glue in attach_glue() order — A then AAAA per
  // NS record, duplicates preserved).
  const RrSet* ns = (name == apex) ? nullptr : z.find(name, RecordType::NS);
  if (ns != nullptr && !ns->records.empty()) {
    data->is_cut = true;
    std::uint32_t min_ttl = ns->ttl();
    for (const auto& rr : ns->records) {
      data->referral_frags.push_back(self_contain(rr, &data->owner));
    }
    data->referral_auth_end = static_cast<std::uint32_t>(data->referral_frags.size());
    for (const auto& rr : ns->records) {
      const auto& target = std::get<NsRecord>(rr.rdata).nameserver;
      if (!target.is_subdomain_of(apex)) continue;
      data->glue_targets.push_back(target);
      data->arena.push_back(target);
      const DnsName* glue_owner = &data->arena.back();
      for (const RecordType t : {RecordType::A, RecordType::AAAA}) {
        if (const RrSet* glue = z.find(target, t)) {
          min_ttl = std::min(min_ttl, glue->ttl());
          for (const auto& grr : glue->records) {
            data->referral_frags.push_back(self_contain(grr, glue_owner));
          }
        }
      }
    }
    data->referral_min_ttl = min_ttl;
  }
  return data;
}

std::int32_t CompiledZone::find_node_index(const DnsName& name) const {
  auto it = std::lower_bound(nodes_.begin(), nodes_.end(), name,
                             [](const Node& node, const DnsName& n) { return node.data->owner < n; });
  if (it == nodes_.end() || !(it->data->owner == name)) return -1;
  return static_cast<std::int32_t>(it - nodes_.begin());
}

void CompiledZone::finish(const Zone& z) {
  const DnsName& apex = z.apex();
  const std::size_t apex_depth = apex.label_count();

  // Wildcard links: "*.parent" hangs off its parent node so the
  // closest-encloser check is one indexed load. Version-level (a
  // wildcard sibling appearing must relink an otherwise untouched
  // parent), hence recomputed for every snapshot.
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const DnsName& name = nodes_[i].data->owner;
    if (name.label_count() > apex_depth && name.label(0) == "*") {
      const std::int32_t parent = find_node_index(name.parent());
      if (parent >= 0) nodes_[static_cast<std::size_t>(parent)].wildcard = static_cast<std::int32_t>(i);
    }
  }

  // Negative-answer authority: the apex SOA with its TTL clamped to
  // negative_ttl() (RFC 2308), shared by every NXDOMAIN/NODATA.
  negative_soa_.clear();
  if (const RrSet* soa = z.find(apex, RecordType::SOA); soa != nullptr && !soa->records.empty()) {
    negative_ttl_ = z.negative_ttl();
    WireFragment fragment = dns::make_wire_fragment(soa->records.front());
    fragment.set_ttl(negative_ttl_);
    negative_soa_.push_back(std::move(fragment));
  }

  const std::int32_t apex_index = find_node_index(apex);
  apex_node_ = apex_index >= 0 ? static_cast<std::uint32_t>(apex_index) : 0;

  fragment_count_ = negative_soa_.size();
  for (const Node& node : nodes_) {
    fragment_count_ += node.data->frags.size() + node.data->referral_frags.size();
  }
}

CompiledZonePtr CompiledZone::compile(ZonePtr source) {
  const auto t0 = std::chrono::steady_clock::now();
  auto out = std::make_shared<CompiledZone>();
  const Zone& z = *source;
  out->source_ = std::move(source);
  const DnsName& apex = z.apex();
  const std::size_t apex_depth = apex.label_count();

  // 1. Every existing name, with empty non-terminals materialized: each
  //    zone name plus all its ancestors down to the apex. With ENTs
  //    explicit, "some descendant exists" becomes "this name is in the
  //    table", which is what lets lookup() be a pure top-down walk.
  std::set<DnsName> name_set;
  name_set.insert(apex);
  for (const DnsName& name : z.all_names()) {
    DnsName cur = name;
    while (cur.label_count() > apex_depth) {
      if (!name_set.insert(cur).second) break;  // ancestors already present
      cur = cur.parent();
    }
  }

  // 2. Per-node record compilation, in canonical owner order.
  out->nodes_.reserve(name_set.size());
  out->index_.reserve(name_set.size());
  for (const DnsName& name : name_set) {
    Node node;
    node.data = build_node(z, name, apex);
    node.depth = static_cast<std::uint16_t>(name.label_count());
    out->index_.emplace_back(name.suffix_hash(),
                             static_cast<std::uint32_t>(out->nodes_.size()));
    out->nodes_.push_back(std::move(node));
  }
  std::sort(out->index_.begin(), out->index_.end());

  out->finish(z);
  out->compile_micros_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() - t0)
          .count());
  return out;
}

CompiledZonePtr CompiledZone::compile_incremental(const CompiledZone& prev, ZonePtr source,
                                                  const ZoneDiff& diff) {
  // A diff that does not line up with the snapshot pair is a caller bug,
  // but a full compile is always a correct answer — never corrupt state.
  if (!(prev.apex() == source->apex()) || !(diff.apex == source->apex()) ||
      prev.serial() != diff.from_serial || source->serial() != diff.to_serial) {
    return compile(std::move(source));
  }

  const auto t0 = std::chrono::steady_clock::now();
  const Zone& z = *source;
  const DnsName& apex = z.apex();
  const std::size_t apex_depth = apex.label_count();

  // 1. Dirty set: owners the diff touches, plus every ancestor up to the
  //    apex (ENTs may appear or vanish; the apex SOA always changes).
  std::set<DnsName> dirty;
  dirty.insert(apex);
  const auto mark = [&dirty, apex_depth](const DnsName& name) {
    DnsName cur = name;
    while (cur.label_count() > apex_depth) {
      if (!dirty.insert(cur).second) break;  // chain above already marked
      cur = cur.parent();
    }
  };
  std::set<DnsName> touched;  // diff record owners only (glue dependency probes)
  for (const auto& rr : diff.deletions) {
    mark(rr.name);
    touched.insert(rr.name);
  }
  for (const auto& rr : diff.additions) {
    mark(rr.name);
    touched.insert(rr.name);
  }
  // 2. Glue dependents: a delegation cut bakes its targets' A/AAAA into
  //    the referral group, so a change at a target rebuilds the cut too.
  for (const Node& node : prev.nodes_) {
    if (!node.data->is_cut) continue;
    for (const DnsName& target : node.data->glue_targets) {
      if (touched.contains(target)) {
        mark(node.data->owner);
        break;
      }
    }
  }

  auto out = std::make_shared<CompiledZone>();
  out->source_ = std::move(source);
  out->incremental_ = true;

  // 3. Sorted merge of the previous node table with the dirty set:
  //    untouched nodes are shared, dirty-and-existing nodes rebuilt,
  //    dirty-and-gone nodes dropped, new names inserted in place.
  out->nodes_.reserve(prev.nodes_.size() + dirty.size());
  std::vector<std::int32_t> old_to_new(prev.nodes_.size(), -1);
  std::vector<std::pair<std::uint64_t, std::uint32_t>> fresh_index;
  const auto emit_if_exists = [&](const DnsName& name) {
    if (!(name == apex) && !z.subtree_exists(name)) return;
    Node node;
    node.data = build_node(z, name, apex);
    node.depth = static_cast<std::uint16_t>(name.label_count());
    out->nodes_.push_back(std::move(node));
  };
  auto dirty_it = dirty.begin();
  for (std::size_t i = 0; i < prev.nodes_.size(); ++i) {
    const DnsName& owner = prev.nodes_[i].data->owner;
    while (dirty_it != dirty.end() && *dirty_it < owner) {
      const std::size_t before = out->nodes_.size();
      emit_if_exists(*dirty_it);  // brand-new name
      if (out->nodes_.size() > before) {
        fresh_index.emplace_back(dirty_it->suffix_hash(),
                                 static_cast<std::uint32_t>(before));
      }
      ++dirty_it;
    }
    if (dirty_it != dirty.end() && *dirty_it == owner) {
      const std::size_t before = out->nodes_.size();
      emit_if_exists(owner);  // rebuilt (or removed when gone)
      if (out->nodes_.size() > before) {
        old_to_new[i] = static_cast<std::int32_t>(before);
      }
      ++dirty_it;
    } else {
      old_to_new[i] = static_cast<std::int32_t>(out->nodes_.size());
      Node shared = prev.nodes_[i];
      shared.wildcard = -1;  // version-level; relinked in finish()
      out->nodes_.push_back(std::move(shared));
      ++out->reused_nodes_;
    }
  }
  while (dirty_it != dirty.end()) {
    const std::size_t before = out->nodes_.size();
    emit_if_exists(*dirty_it);
    if (out->nodes_.size() > before) {
      fresh_index.emplace_back(dirty_it->suffix_hash(), static_cast<std::uint32_t>(before));
    }
    ++dirty_it;
  }

  // 4. Hash index: remap the surviving entries (their hashes are
  //    unchanged — same owners) and merge the sorted handful of new ones,
  //    instead of rehashing and re-sorting every name.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> survivors;
  survivors.reserve(out->nodes_.size());
  for (const auto& [hash, old_idx] : prev.index_) {
    const std::int32_t mapped = old_to_new[old_idx];
    if (mapped >= 0) survivors.emplace_back(hash, static_cast<std::uint32_t>(mapped));
  }
  std::sort(fresh_index.begin(), fresh_index.end());
  out->index_.resize(survivors.size() + fresh_index.size());
  std::merge(survivors.begin(), survivors.end(), fresh_index.begin(), fresh_index.end(),
             out->index_.begin());

  out->finish(z);
  out->compile_micros_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() - t0)
          .count());
  return out;
}

std::uint64_t CompiledZone::content_hash() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a_u32(h, serial());
  h = hash_name(h, apex());
  for (const Node& node : nodes_) {
    const NodeData& data = *node.data;
    h = hash_name(h, data.owner);
    h = fnv1a_u32(h, node.depth);
    h = fnv1a_u32(h, static_cast<std::uint32_t>(node.wildcard));
    for (const TypeRange& range : data.ranges) {
      h = fnv1a_u32(h, static_cast<std::uint32_t>(range.type));
      h = fnv1a_u32(h, range.begin);
      h = fnv1a_u32(h, range.end);
      h = fnv1a_u32(h, range.ttl);
    }
    for (const WireFragment& fragment : data.frags) h = hash_fragment(h, fragment);
    for (const WireFragment& fragment : data.referral_frags) h = hash_fragment(h, fragment);
    h = fnv1a_u32(h, data.referral_auth_end);
    h = fnv1a_u32(h, data.referral_min_ttl);
    h = fnv1a_u32(h, data.is_cut ? 1u : 0u);
    if (data.cname_target != nullptr) h = hash_name(h, *data.cname_target);
  }
  for (const WireFragment& fragment : negative_soa_) h = hash_fragment(h, fragment);
  h = fnv1a_u32(h, negative_ttl_);
  h = fnv1a_u32(h, apex_node_);
  return h;
}

const CompiledZone::Node* CompiledZone::find_node(std::uint64_t hash, const DnsName& qname,
                                                  std::size_t depth) const noexcept {
  auto it = std::lower_bound(
      index_.begin(), index_.end(), hash,
      [](const std::pair<std::uint64_t, std::uint32_t>& entry, std::uint64_t h) {
        return entry.first < h;
      });
  for (; it != index_.end() && it->first == hash; ++it) {
    const Node& node = nodes_[it->second];
    if (node.depth == depth && node.data->owner.equals_tail_of(qname, depth)) {
      return &node;
    }
  }
  return nullptr;
}

const CompiledZone::TypeRange* CompiledZone::find_range(const NodeData& data,
                                                        dns::RecordType type) noexcept {
  for (const TypeRange& range : data.ranges) {
    if (range.type == type) return &range;
  }
  return nullptr;
}

CompiledAnswer CompiledZone::negative(LookupStatus status) const noexcept {
  CompiledAnswer out;
  out.status = status;
  out.authority = std::span<const WireFragment>(negative_soa_);
  out.min_ttl = negative_ttl_;
  return out;
}

CompiledAnswer CompiledZone::lookup(const DnsName& qname, dns::RecordType qtype) const noexcept {
  CompiledAnswer out;
  if (!qname.is_subdomain_of(apex())) return out;  // out of bailiwick; caller guards
  const std::size_t qn = qname.label_count();
  const std::size_t an = apex().label_count();
  if (qn > kMaxDepth) return negative(LookupStatus::NxDomain);  // unreachable by DnsName limits

  // One right-to-left pass computes the suffix hash at every depth.
  std::uint64_t hashes[kMaxDepth + 1];
  std::uint64_t h = DnsName::kSuffixHashSeed;
  for (std::size_t depth = 1; depth <= qn; ++depth) {
    h = DnsName::suffix_hash_extend(h, qname.label(qn - depth));
    hashes[depth] = h;
  }

  // Top-down walk from the apex. Because ENTs are materialized, the first
  // missing depth proves the qname does not exist and the previous node
  // is the closest encloser; a delegation cut is caught the moment the
  // walk steps onto it (shallowest cut wins, as in the interpreted
  // delegation-first ordering).
  const Node* node = &nodes_[apex_node_];
  for (std::size_t depth = an + 1; depth <= qn; ++depth) {
    const Node* next = find_node(hashes[depth], qname, depth);
    if (next == nullptr) {
      if (node->wildcard >= 0) {  // wildcard at the closest encloser (RFC 4592)
        const NodeData& wild = *nodes_[static_cast<std::uint32_t>(node->wildcard)].data;
        out.wildcard_match = true;
        if (const TypeRange* range = find_range(wild, qtype)) {
          out.status = LookupStatus::Answer;
          out.answers = subspan(wild.frags, range->begin, range->end);
          out.min_ttl = range->ttl;
          return out;
        }
        if (const TypeRange* range = find_range(wild, RecordType::CNAME)) {
          out.status = LookupStatus::CnameChase;
          out.answers = subspan(wild.frags, range->begin, range->end);
          out.cname_target = wild.cname_target;
          out.min_ttl = range->ttl;
          return out;
        }
        CompiledAnswer neg = negative(LookupStatus::NoData);
        neg.wildcard_match = true;
        return neg;
      }
      return negative(LookupStatus::NxDomain);
    }
    if (next->data->is_cut) {
      const NodeData& cut = *next->data;
      out.status = LookupStatus::Referral;
      out.authority = subspan(cut.referral_frags, 0, cut.referral_auth_end);
      out.additional = subspan(cut.referral_frags, cut.referral_auth_end,
                               static_cast<std::uint32_t>(cut.referral_frags.size()));
      out.min_ttl = cut.referral_min_ttl;
      return out;
    }
    node = next;
  }

  // Exact match (possibly an ENT, whose empty ranges fall through to
  // NODATA — including for ANY, matching the interpreted path where an
  // ENT is not a node at all).
  const NodeData& data = *node->data;
  if (const TypeRange* range = find_range(data, qtype)) {
    out.status = LookupStatus::Answer;
    out.answers = subspan(data.frags, range->begin, range->end);
    out.min_ttl = range->ttl;
    return out;
  }
  if (qtype == RecordType::ANY && !data.frags.empty()) {
    out.status = LookupStatus::Answer;
    out.answers = std::span<const WireFragment>(data.frags);
    std::uint32_t min_ttl = UINT32_MAX;
    for (const TypeRange& range : data.ranges) min_ttl = std::min(min_ttl, range.ttl);
    out.min_ttl = min_ttl;
    return out;
  }
  if (const TypeRange* range = find_range(data, RecordType::CNAME)) {
    out.status = LookupStatus::CnameChase;
    out.answers = subspan(data.frags, range->begin, range->end);
    out.cname_target = data.cname_target;
    out.min_ttl = range->ttl;
    return out;
  }
  return negative(LookupStatus::NoData);
}

}  // namespace akadns::zone
