file(REMOVE_RECURSE
  "../bench/bench_fig8_failover"
  "../bench/bench_fig8_failover.pdb"
  "CMakeFiles/bench_fig8_failover.dir/bench_fig8_failover.cpp.o"
  "CMakeFiles/bench_fig8_failover.dir/bench_fig8_failover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
