// §4.3.4 attack taxonomy: every attack class from the paper against the
// full query-scoring pipeline (rate-limit + allowlist + NXDOMAIN +
// hop-count + loyalty), with filters pre-trained on historical traffic
// exactly as production filters are. For each class, reports legitimate
// goodput with and without the pipeline and which filters fired.
//
// Expected shape (the paper's narrative):
//   direct query      -> rate limit + allowlist stop it
//   random subdomain  -> only the NXDOMAIN filter stops it (pass-through)
//   spoofed source    -> hop-count filter stops it
//   spoofed source+TTL-> only the loyalty filter stops it

#include <functional>

#include "bench_util.hpp"
#include "dns/wire.hpp"
#include "filters/allowlist_filter.hpp"
#include "filters/hopcount_filter.hpp"
#include "filters/loyalty_filter.hpp"
#include "filters/nxdomain_filter.hpp"
#include "filters/rate_limit_filter.hpp"
#include "server/nameserver.hpp"
#include "workload/attacks.hpp"

using namespace akadns;

namespace {

constexpr double kComputeQps = 5'000.0;
constexpr double kLegitQps = 1'500.0;
constexpr double kAttackQps = 15'000.0;

struct Scenario {
  workload::ResolverPopulation population{{.resolver_count = 8'000, .asn_count = 400}, 1};
  workload::HostedZones zones{{.zone_count = 200, .wildcard_fraction = 0.0}, 2};

  /// Anycast routes ~30% of resolvers to this nameserver's PoP; the
  /// loyalty filter knows exactly that subset (§4.3.4 class 5: the
  /// attacker cannot choose which PoP its packets are routed to, so
  /// most impersonations land at a PoP the victim never uses).
  bool in_catchment(std::size_t resolver_index) const {
    return resolver_index % 10 < 3;
  }
};

server::Nameserver make_nameserver(Scenario& scenario, bool with_filters) {
  server::NameserverConfig config;
  config.compute_capacity_qps = kComputeQps;
  config.io_capacity_qps = 200'000.0;
  config.queue_config.max_scores = {0.0, 60.0, 150.0};
  config.queue_config.discard_score = 200.0;
  server::Nameserver nameserver(std::move(config), scenario.zones.store());
  if (!with_filters) return nameserver;

  // Rate limit: trained from each resolver's historical rate.
  auto rate_limit = std::make_unique<filters::RateLimitFilter>(
      filters::RateLimitFilter::Config{.penalty = 60.0,
                                       .headroom = 5.0,
                                       .min_limit_qps = 5.0,
                                       .default_limit_qps = 20.0});
  const auto t0 = SimTime::origin();
  {
    Rng rng(9);
    // 10 minutes of synthetic history at each resolver's typical rate.
    for (const auto& resolver : scenario.population.resolvers()) {
      const double qps = resolver.weight * kLegitQps;
      const auto events = static_cast<std::uint64_t>(qps * 600.0);
      for (std::uint64_t e = 0; e < std::min<std::uint64_t>(events, 4000); ++e) {
        rate_limit->learn(resolver.address,
                          t0 + Duration::seconds_f(rng.next_double() * 600.0));
      }
    }
    rate_limit->finalize_learning(t0 + Duration::minutes(10));
  }

  // Allowlist of historical top talkers, armed for the exercise.
  auto allowlist = std::make_unique<filters::AllowlistFilter>(
      filters::AllowlistFilter::Config{.penalty = 50.0, .auto_activate = false});
  for (const auto idx : scenario.population.top_by_weight(0.10)) {
    allowlist->allow(scenario.population.resolver(idx).address);
  }
  allowlist->set_active(true);

  // Hop-count filter trained on each source's genuine IP TTL.
  auto hopcount = std::make_unique<filters::HopCountFilter>(
      filters::HopCountFilter::Config{.penalty = 50.0, .tolerance = 1});
  for (const auto& resolver : scenario.population.resolvers()) {
    for (int k = 0; k < 4; ++k) hopcount->learn(resolver.address, resolver.ip_ttl);
  }

  // Loyalty: trained only on the resolvers anycast routes to this PoP.
  auto loyalty = std::make_unique<filters::LoyaltyFilter>(
      filters::LoyaltyFilter::Config{.penalty = 80.0});
  for (std::size_t i = 0; i < scenario.population.size(); ++i) {
    if (scenario.in_catchment(i)) {
      loyalty->learn(scenario.population.resolver(i).address, t0);
    }
  }

  auto nxdomain = std::make_unique<filters::NxDomainFilter>(
      filters::NxDomainFilter::Config{.penalty = 100.0, .nxdomain_threshold = 200},
      [&scenario](const dns::DnsName& qname) -> std::optional<dns::DnsName> {
        const auto zone = scenario.zones.store().find_best_zone(qname);
        if (!zone) return std::nullopt;
        return zone->apex();
      },
      [&scenario](const dns::DnsName& apex) {
        const auto zone = scenario.zones.store().find_zone(apex);
        return zone ? zone->all_names() : std::vector<dns::DnsName>{};
      });

  nameserver.scoring().add_filter(std::move(rate_limit));
  nameserver.scoring().add_filter(std::move(allowlist));
  nameserver.scoring().add_filter(std::move(nxdomain));
  nameserver.scoring().add_filter(std::move(hopcount));
  nameserver.scoring().add_filter(std::move(loyalty));
  return nameserver;
}

using AttackFn = std::function<workload::GeneratedQuery()>;

double run(Scenario& scenario, server::Nameserver& nameserver, AttackFn attack,
           double seconds) {
  workload::QueryGenerator legit_source(scenario.population, scenario.zones, 33);
  // Legitimate traffic at this PoP comes from its catchment only.
  auto legit = [&] {
    for (;;) {
      auto q = legit_source.next();
      if (scenario.in_catchment(q.resolver_index)) return q;
    }
  };
  Rng rng(34);
  std::uint64_t legit_sent = 0, legit_answered = 0;
  std::uint16_t id = 1;
  std::vector<bool> is_legit(65536, false);
  nameserver.set_response_sink([&](const Endpoint&, std::vector<std::uint8_t> wire) {
    if (wire.size() >= 2 &&
        is_legit[static_cast<std::uint16_t>((wire[0] << 8) | wire[1])]) {
      ++legit_answered;
    }
  });
  SimTime clock = SimTime::origin() + Duration::days(1);  // loyalty ripened
  for (double t = 0; t < seconds; t += 1e-3) {
    clock += Duration::millis(1);
    const auto legit_count = rng.next_poisson(kLegitQps * 1e-3);
    const auto attack_count = rng.next_poisson(kAttackQps * 1e-3);
    std::vector<bool> arrivals;
    arrivals.insert(arrivals.end(), legit_count, true);
    arrivals.insert(arrivals.end(), attack_count, false);
    rng.shuffle(arrivals);
    for (const bool legit_arrival : arrivals) {
      const auto q = legit_arrival ? legit() : attack();
      is_legit[id] = legit_arrival;
      if (legit_arrival) ++legit_sent;
      nameserver.receive(dns::encode(dns::make_query(id, q.qname, q.qtype)), q.source,
                         q.ip_ttl, clock);
      ++id;
    }
    nameserver.process(clock);
  }
  return legit_sent == 0 ? 1.0
                         : static_cast<double>(legit_answered) /
                               static_cast<double>(legit_sent);
}

}  // namespace

int main() {
  bench::heading("attack taxonomy vs the filter pipeline",
                 "§4.3.4 — each class is stopped by the filter designed for it");

  Scenario scenario;
  std::printf("compute %.0f qps; legit %.0f qps; every attack %.0f qps (3x capacity)\n",
              kComputeQps, kLegitQps, kAttackQps);

  struct Case {
    const char* name;
    AttackFn make;
  };
  workload::DirectQueryAttack direct({.bot_count = 20, .target_zone_rank = 0},
                                     scenario.zones, 51);
  workload::RandomSubdomainAttack random_sub({.target_zone_rank = 0}, scenario.population,
                                             scenario.zones, 52);
  workload::SpoofedAttack spoofed_ip(
      {.impersonate_allowlisted = true, .forge_ttl = false}, scenario.population,
      scenario.zones, 53);
  workload::SpoofedAttack spoofed_ip_ttl(
      {.impersonate_allowlisted = true, .forge_ttl = true}, scenario.population,
      scenario.zones, 54);

  const std::vector<Case> cases{
      {"2) direct query (20 bots)", [&] { return direct.next(); }},
      {"3) random subdomain (pass-through)", [&] { return random_sub.next(); }},
      {"4) spoofed source IP", [&] { return spoofed_ip.next(); }},
      {"5) spoofed source IP + IP TTL", [&] { return spoofed_ip_ttl.next(); }},
  };

  std::printf("\n%-38s %14s %14s\n", "attack class", "w/o filters", "w/ filters");
  for (const auto& attack_case : cases) {
    auto baseline = make_nameserver(scenario, false);
    const double without = run(scenario, baseline, attack_case.make, 2.0);
    auto protected_ns = make_nameserver(scenario, true);
    const double with = run(scenario, protected_ns, attack_case.make, 2.0);
    std::printf("%-38s %13.1f%% %13.1f%%\n", attack_case.name, 100 * without, 100 * with);
    // Which filters fired?
    std::printf("%40s", "filters fired: ");
    for (const char* name : {"rate_limit", "allowlist", "nxdomain", "hopcount", "loyalty"}) {
      auto* filter = protected_ns.scoring().find(name);
      std::uint64_t fired = 0;
      if (name == std::string("rate_limit")) {
        fired = dynamic_cast<filters::RateLimitFilter*>(filter)->total_penalized();
      } else if (name == std::string("allowlist")) {
        fired = dynamic_cast<filters::AllowlistFilter*>(filter)->total_penalized();
      } else if (name == std::string("nxdomain")) {
        fired = dynamic_cast<filters::NxDomainFilter*>(filter)->total_penalized();
      } else if (name == std::string("hopcount")) {
        fired = dynamic_cast<filters::HopCountFilter*>(filter)->total_penalized();
      } else {
        fired = dynamic_cast<filters::LoyaltyFilter*>(filter)->total_penalized();
      }
      if (fired > 1000) std::printf("%s(%sk) ", name, fmt(fired / 1000.0, 0).c_str());
    }
    std::printf("\n");
  }
  std::printf("\nnote: class 1 (volumetric) never reaches the application — it is\n"
              "absorbed by overprovisioned links and firewall rules (§4.3.2/§4.3.4),\n"
              "exercised in bench_fig9_decision_tree.\n");
  return 0;
}
