file(REMOVE_RECURSE
  "../examples-bin/example_attack_mitigation"
  "../examples-bin/example_attack_mitigation.pdb"
  "CMakeFiles/example_attack_mitigation.dir/example_attack_mitigation.cpp.o"
  "CMakeFiles/example_attack_mitigation.dir/example_attack_mitigation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_attack_mitigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
