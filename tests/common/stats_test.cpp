#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace akadns {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, BasicMoments) {
  StreamingStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, MergeMatchesCombined) {
  StreamingStats a, b, combined;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.7 - 3;
    a.add(v);
    combined.add(v);
  }
  for (int i = 0; i < 80; ++i) {
    const double v = i * -0.3 + 11;
    b.add(v);
    combined.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(EmpiricalDistribution, QuantilesUnweighted) {
  EmpiricalDistribution d;
  for (int i = 1; i <= 100; ++i) d.add(i);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(d.median(), 50.0);
}

TEST(EmpiricalDistribution, WeightedQuantile) {
  EmpiricalDistribution d;
  d.add(1.0, 1.0);
  d.add(10.0, 99.0);
  // 99% of weight sits at 10.
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.005), 1.0);
}

TEST(EmpiricalDistribution, CdfAt) {
  EmpiricalDistribution d;
  for (double v : {1.0, 2.0, 3.0, 4.0}) d.add(v);
  EXPECT_DOUBLE_EQ(d.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf_at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf_at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf_at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(d.fraction_above(2.0), 0.5);
}

TEST(EmpiricalDistribution, MeanWeighted) {
  EmpiricalDistribution d;
  d.add(2.0, 3.0);
  d.add(10.0, 1.0);
  EXPECT_DOUBLE_EQ(d.mean(), 4.0);
}

TEST(EmpiricalDistribution, ZeroWeightIgnored) {
  EmpiricalDistribution d;
  d.add(5.0, 0.0);
  EXPECT_TRUE(d.empty());
}

TEST(EmpiricalDistribution, QuantileOfEmptyThrows) {
  EmpiricalDistribution d;
  EXPECT_THROW(d.quantile(0.5), std::logic_error);
}

TEST(EmpiricalDistribution, CdfCurveMonotone) {
  EmpiricalDistribution d;
  for (int i = 0; i < 500; ++i) d.add(i % 37);
  const auto curve = d.cdf_curve(20);
  ASSERT_EQ(curve.size(), 20u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].first, curve[i - 1].first);
    EXPECT_GT(curve[i].second, curve[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(9.99);
  h.add(-100.0);  // clamps into the first bin
  h.add(100.0);   // clamps into the last bin
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(5), 1.0);
  EXPECT_DOUBLE_EQ(h.count(9), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 5.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
  EXPECT_DOUBLE_EQ(h.bin_lo(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(5), 6.0);
}

TEST(Histogram, InvalidBoundsThrow) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(LogHistogram, EmptyQuantilesAreZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LogHistogram, SingleSampleEveryQuantileIsTheSample) {
  LogHistogram h;
  h.add(1234.5);
  EXPECT_EQ(h.count(), 1u);
  // The clamp to [min, max] makes every quantile exact for one sample.
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 1234.5) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.mean(), 1234.5);
  EXPECT_DOUBLE_EQ(h.min(), 1234.5);
  EXPECT_DOUBLE_EQ(h.max(), 1234.5);
}

TEST(LogHistogram, MergeWithEmptyIsIdentityBothWays) {
  LogHistogram filled, empty;
  for (double v : {150.0, 900.0, 44000.0}) filled.add(v);
  const std::uint64_t count = filled.count();
  const double p50 = filled.quantile(0.5);

  filled.merge(empty);  // rhs empty: no-op
  EXPECT_EQ(filled.count(), count);
  EXPECT_DOUBLE_EQ(filled.quantile(0.5), p50);
  EXPECT_DOUBLE_EQ(filled.min(), 150.0);
  EXPECT_DOUBLE_EQ(filled.max(), 44000.0);

  empty.merge(filled);  // lhs empty: adopts rhs wholesale, incl. min/max
  EXPECT_EQ(empty.count(), count);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), p50);
  EXPECT_DOUBLE_EQ(empty.min(), 150.0);
  EXPECT_DOUBLE_EQ(empty.max(), 44000.0);
}

TEST(LogHistogram, MergeIsCommutative) {
  LogHistogram a, b, ab, ba;
  for (int i = 1; i <= 400; ++i) a.add(100.0 + i * 17.0);
  for (int i = 1; i <= 250; ++i) b.add(5000.0 + i * 113.0);
  ab = a;
  ab.merge(b);
  ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_DOUBLE_EQ(ab.min(), ba.min());
  EXPECT_DOUBLE_EQ(ab.max(), ba.max());
  EXPECT_DOUBLE_EQ(ab.sum(), ba.sum());
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(ab.quantile(q), ba.quantile(q)) << "q=" << q;
  }
  ASSERT_EQ(ab.bin_count(), ba.bin_count());
  for (std::size_t i = 0; i < ab.bin_count(); ++i) {
    EXPECT_EQ(ab.bucket(i), ba.bucket(i)) << "bucket " << i;
  }
}

TEST(LogHistogram, MergeMismatchedAxesThrows) {
  LogHistogram a(100.0, 1.08, 256);
  LogHistogram narrower(100.0, 1.08, 64);
  LogHistogram steeper(100.0, 1.5, 256);
  EXPECT_THROW(a.merge(narrower), std::invalid_argument);
  EXPECT_THROW(a.merge(steeper), std::invalid_argument);
}

TEST(LogHistogram, FromBucketsRoundTrips) {
  LogHistogram live;
  for (int i = 0; i < 1000; ++i) live.add(100.0 * (1 + i % 97));
  std::vector<std::uint64_t> counts(live.bin_count());
  for (std::size_t i = 0; i < live.bin_count(); ++i) counts[i] = live.bucket(i);
  const LogHistogram rebuilt = LogHistogram::from_buckets(
      live.lo(), live.growth(), std::move(counts), live.sum(), live.min(), live.max());
  EXPECT_EQ(rebuilt.count(), live.count());
  EXPECT_DOUBLE_EQ(rebuilt.sum(), live.sum());
  EXPECT_DOUBLE_EQ(rebuilt.min(), live.min());
  EXPECT_DOUBLE_EQ(rebuilt.max(), live.max());
  for (double q : {0.1, 0.5, 0.99}) {
    EXPECT_DOUBLE_EQ(rebuilt.quantile(q), live.quantile(q)) << "q=" << q;
  }
}

TEST(LogHistogram, AddNMatchesRepeatedAdd) {
  LogHistogram bulk, repeated;
  bulk.add_n(777.0, 5);
  bulk.add_n(777.0, 0);  // no-op, must not disturb min/max
  for (int i = 0; i < 5; ++i) repeated.add(777.0);
  EXPECT_EQ(bulk.count(), repeated.count());
  EXPECT_DOUBLE_EQ(bulk.sum(), repeated.sum());
  EXPECT_DOUBLE_EQ(bulk.min(), repeated.min());
  EXPECT_DOUBLE_EQ(bulk.quantile(0.5), repeated.quantile(0.5));
}

TEST(RenderBar, Extremes) {
  EXPECT_EQ(render_bar(0.0, 10), "          ");
  EXPECT_EQ(render_bar(1.0, 10), "##########");
  EXPECT_EQ(render_bar(0.5, 10), "#####     ");
}

TEST(Fmt, FormatsPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(1.0, 0), "1");
}

TEST(FmtCount, ThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(360000000000ULL), "360,000,000,000");
}

}  // namespace
}  // namespace akadns
