#include "pop/monitoring_agent.hpp"

#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "dns/wire.hpp"
#include "propagation/zone_publisher.hpp"
#include "zone/zone_builder.hpp"

namespace akadns::pop {
namespace {

using dns::DnsName;
using dns::RecordType;

struct Fixture {
  EventScheduler sched;
  zone::ZoneStore store;
  SuspensionCoordinator coordinator{{.max_suspended_fraction = 0.5, .min_allowed = 1}};

  Fixture() {
    store.publish(zone::ZoneBuilder("example.com", 1)
                      .ns("@", "ns1.example.com")
                      .a("ns1", "10.0.0.1")
                      .a("www", "10.0.0.2")
                      .build());
  }

  MachineConfig machine_config(const std::string& id) {
    MachineConfig config;
    config.id = id;
    config.nameserver.staleness_threshold = Duration::seconds(30);
    return config;
  }
};

TEST(MonitoringAgent, HealthyMachinePasses) {
  Fixture f;
  Machine machine(f.machine_config("m1"), f.store);
  machine.nameserver().metadata_updated(f.sched.now());
  machine.speaker().advertise(7);
  MonitoringAgent agent(machine, f.store, f.coordinator, f.sched);
  EXPECT_TRUE(agent.check_now());
  EXPECT_EQ(agent.stats().failures_detected, 0u);
  EXPECT_TRUE(machine.speaker().advertising(7));
}

TEST(MonitoringAgent, DiskFailureTriggersSelfSuspension) {
  Fixture f;
  Machine machine(f.machine_config("m1"), f.store);
  machine.nameserver().metadata_updated(f.sched.now());
  machine.speaker().advertise(7);
  MonitoringAgent agent(machine, f.store, f.coordinator, f.sched);
  machine.inject_failure(FailureType::Disk);
  EXPECT_FALSE(agent.check_now());
  EXPECT_EQ(agent.stats().suspensions, 1u);
  EXPECT_EQ(machine.nameserver().state(), server::ServerState::SelfSuspended);
  EXPECT_FALSE(machine.speaker().advertising(7));  // traffic shifts away
}

TEST(MonitoringAgent, RecoveryResumesAndReadvertises) {
  Fixture f;
  Machine machine(f.machine_config("m1"), f.store);
  machine.nameserver().metadata_updated(f.sched.now());
  machine.speaker().advertise(7);
  MonitoringAgent agent(machine, f.store, f.coordinator, f.sched);
  machine.inject_failure(FailureType::Disk);
  agent.check_now();
  ASSERT_EQ(machine.nameserver().state(), server::ServerState::SelfSuspended);
  // Operator replaces the disk.
  machine.clear_failure();
  EXPECT_TRUE(agent.check_now());
  EXPECT_EQ(agent.stats().recoveries, 1u);
  EXPECT_TRUE(machine.nameserver().running());
  EXPECT_TRUE(machine.speaker().advertising(7));
  EXPECT_EQ(f.coordinator.suspended_count(), 0u);
}

TEST(MonitoringAgent, StaleMetadataTriggersSuspension) {
  Fixture f;
  Machine machine(f.machine_config("m1"), f.store);
  machine.nameserver().metadata_updated(f.sched.now());
  MonitoringAgent agent(machine, f.store, f.coordinator, f.sched);
  f.sched.run_until(f.sched.now() + Duration::minutes(5));  // no updates arrive
  EXPECT_FALSE(agent.check_now());
  EXPECT_EQ(machine.nameserver().state(), server::ServerState::SelfSuspended);
  // Metadata flow restored.
  machine.nameserver().metadata_updated(f.sched.now());
  EXPECT_TRUE(agent.check_now());
  EXPECT_TRUE(machine.nameserver().running());
}

TEST(MonitoringAgent, InputDelayedMachineIgnoresStaleness) {
  Fixture f;
  auto config = f.machine_config("delayed");
  config.input_delayed = true;
  Machine machine(std::move(config), f.store);
  MonitoringAgent agent(machine, f.store, f.coordinator, f.sched);
  f.sched.run_until(f.sched.now() + Duration::hours(5));
  EXPECT_TRUE(agent.check_now());
  EXPECT_TRUE(machine.nameserver().running());
}

TEST(MonitoringAgent, QuotaPreventsWidespreadSuspension) {
  Fixture f;
  // 4 machines, quota = 2. All fail simultaneously (e.g. bad software
  // release); only 2 may suspend, the rest serve degraded.
  std::vector<std::unique_ptr<Machine>> machines;
  std::vector<std::unique_ptr<MonitoringAgent>> agents;
  for (int i = 0; i < 4; ++i) {
    machines.push_back(
        std::make_unique<Machine>(f.machine_config("m" + std::to_string(i)), f.store));
    machines.back()->nameserver().metadata_updated(f.sched.now());
    machines.back()->speaker().advertise(7);
    agents.push_back(std::make_unique<MonitoringAgent>(*machines.back(), f.store,
                                                       f.coordinator, f.sched));
  }
  for (auto& m : machines) m->inject_failure(FailureType::Disk);
  int suspended = 0;
  for (auto& agent : agents) {
    agent->check_now();
  }
  for (auto& m : machines) {
    if (m->nameserver().state() == server::ServerState::SelfSuspended) ++suspended;
  }
  EXPECT_EQ(suspended, 2);
  // The non-suspended machines keep advertising (degraded service beats
  // no service).
  int advertising = 0;
  for (auto& m : machines) {
    if (m->speaker().advertising(7)) ++advertising;
  }
  EXPECT_EQ(advertising, 2);
}

TEST(MonitoringAgent, CrashedNameserverIsRestarted) {
  Fixture f;
  Machine machine(f.machine_config("m1"), f.store);
  machine.nameserver().metadata_updated(f.sched.now());
  MonitoringAgent agent(machine, f.store, f.coordinator, f.sched);
  machine.nameserver().set_crash_predicate([](const dns::Question& q) {
    return q.name == DnsName::from("death.example.com");
  });
  const Endpoint src{*IpAddr::parse("198.51.100.1"), 5353};
  const auto wire =
      dns::encode(dns::make_query(1, DnsName::from("death.example.com"), RecordType::A));
  machine.deliver(wire, src, 57, f.sched.now());
  machine.pump(f.sched.now());
  ASSERT_EQ(machine.nameserver().state(), server::ServerState::Crashed);
  EXPECT_TRUE(agent.check_now());
  EXPECT_EQ(agent.stats().restarts, 1u);
  EXPECT_TRUE(machine.nameserver().running());
}

TEST(MonitoringAgent, PeriodicCheckingDetectsFailure) {
  Fixture f;
  Machine machine(f.machine_config("m1"), f.store);
  machine.nameserver().metadata_updated(f.sched.now());
  machine.speaker().advertise(7);
  MonitoringAgentConfig agent_config;
  agent_config.check_interval = Duration::seconds(1);
  MonitoringAgent agent(machine, f.store, f.coordinator, f.sched, agent_config);
  agent.start();
  // Keep metadata fresh while we run the clock.
  for (int i = 0; i < 10; ++i) {
    f.sched.schedule_after(Duration::seconds(i),
                           [&] { machine.nameserver().metadata_updated(f.sched.now()); });
  }
  f.sched.schedule_after(Duration::millis(3500),
                         [&] { machine.inject_failure(FailureType::Memory); });
  f.sched.run_until(f.sched.now() + Duration::seconds(8));
  agent.stop();
  f.sched.run();
  EXPECT_GE(agent.stats().checks, 7u);
  EXPECT_GT(agent.stats().failures_detected, 0u);
  EXPECT_EQ(machine.nameserver().state(), server::ServerState::SelfSuspended);
}

// Golden defaults: the anomaly thresholds moved out of the check loop
// into MonitoringConfig; these are the values the loop hard-coded, so a
// default-constructed config is behavior-preserving by construction.
TEST(MonitoringAgent, ConfigDefaultsMatchTheLongstandingConstants) {
  const MonitoringConfig config;
  EXPECT_EQ(config.check_interval, Duration::seconds(1));
  EXPECT_TRUE(config.regression_tests.empty());
  EXPECT_DOUBLE_EQ(config.nxdomain_rate_threshold, 0.5);
  EXPECT_EQ(config.min_window_responses, 50u);
  EXPECT_DOUBLE_EQ(config.drop_rate_threshold, 0.5);
  EXPECT_EQ(config.min_window_packets, 50u);
  EXPECT_EQ(config.stale_zone_age, Duration::seconds(30));
}

TEST(MonitoringAgent, NxdomainFloodRaisesAdvisorySpikeWithoutSuspension) {
  Fixture f;
  Machine machine(f.machine_config("m1"), f.store);
  machine.nameserver().metadata_updated(f.sched.now());
  machine.speaker().advertise(7);
  MonitoringAgent agent(machine, f.store, f.coordinator, f.sched);

  // A random-subdomain flood: every query misses, every response is
  // NXDOMAIN. The datapath answers them all — the machine is loaded but
  // correct, exactly the case that must NOT suspend (principle iii).
  const Endpoint src{*IpAddr::parse("198.51.100.1"), 5353};
  for (int i = 0; i < 60; ++i) {
    const auto wire = dns::encode(dns::make_query(
        static_cast<std::uint16_t>(i + 1),
        DnsName::from("probe" + std::to_string(i) + ".example.com"), RecordType::A));
    machine.deliver(wire, src, 57, f.sched.now());
  }
  machine.pump(f.sched.now());

  EXPECT_TRUE(agent.check_now());  // healthy: the probe suite passes
  EXPECT_TRUE(agent.anomalies().nxdomain_spike);
  EXPECT_GE(agent.anomalies().nxdomain_rate, 0.9);
  EXPECT_EQ(agent.stats().nxdomain_spikes, 1u);
  EXPECT_EQ(agent.stats().suspensions, 0u);
  EXPECT_TRUE(machine.nameserver().running());
  EXPECT_TRUE(machine.speaker().advertising(7));

  // A quiet follow-up window clears the signal.
  EXPECT_TRUE(agent.check_now());
  EXPECT_FALSE(agent.anomalies().nxdomain_spike);
}

TEST(MonitoringAgent, TinyWindowsNeverLookLikeSpikes) {
  Fixture f;
  Machine machine(f.machine_config("m1"), f.store);
  machine.nameserver().metadata_updated(f.sched.now());
  MonitoringAgent agent(machine, f.store, f.coordinator, f.sched);

  // 10 misses out of 10 responses is a 100% NXDOMAIN rate — but below
  // min_window_responses the denominator is too small to mean anything.
  const Endpoint src{*IpAddr::parse("198.51.100.1"), 5353};
  for (int i = 0; i < 10; ++i) {
    const auto wire = dns::encode(dns::make_query(
        static_cast<std::uint16_t>(i + 1),
        DnsName::from("probe" + std::to_string(i) + ".example.com"), RecordType::A));
    machine.deliver(wire, src, 57, f.sched.now());
  }
  machine.pump(f.sched.now());

  EXPECT_TRUE(agent.check_now());
  EXPECT_GE(agent.anomalies().nxdomain_rate, 0.9);  // the rate is reported...
  EXPECT_FALSE(agent.anomalies().nxdomain_spike);   // ...but not flagged
  EXPECT_EQ(agent.stats().nxdomain_spikes, 0u);
}

TEST(MonitoringAgent, MalformedFloodRaisesDropSpike) {
  Fixture f;
  Machine machine(f.machine_config("m1"), f.store);
  machine.nameserver().metadata_updated(f.sched.now());
  MonitoringAgent agent(machine, f.store, f.coordinator, f.sched);

  // 60 undecodable datagrams: each counts as a received packet and a
  // malformed drop, so the window's drop rate is ~100%.
  const Endpoint src{*IpAddr::parse("198.51.100.1"), 5353};
  const std::vector<std::uint8_t> garbage{0xde, 0xad, 0xbe};
  for (int i = 0; i < 60; ++i) machine.deliver(garbage, src, 57, f.sched.now());
  machine.pump(f.sched.now());

  EXPECT_TRUE(agent.check_now());  // advisory only: probes still answer
  EXPECT_TRUE(agent.anomalies().drop_spike);
  EXPECT_GE(agent.anomalies().drop_rate, 0.9);
  EXPECT_EQ(agent.stats().drop_spikes, 1u);
  EXPECT_TRUE(machine.nameserver().running());
}

TEST(MonitoringAgent, ZoneSyncSilenceRaisesStaleFlagUntilThePipelineMoves) {
  Fixture f;
  ManualClock clock;
  propagation::ZonePublisher publisher(clock);
  Machine machine(f.machine_config("m1"));  // replica-owning: has a subscriber
  machine.nameserver().metadata_updated(f.sched.now());
  auto v1 = publisher.publish(zone::ZoneBuilder("example.com", 1)
                                  .ns("@", "ns1.example.com")
                                  .a("ns1", "10.0.0.1")
                                  .a("www", "10.0.0.2")
                                  .build());
  ASSERT_TRUE(v1.ok()) << v1.error();
  machine.apply_zone_update(*v1.value(), f.sched.now());

  MonitoringAgent agent(machine, *machine.local_store(), f.coordinator, f.sched);
  EXPECT_TRUE(agent.check_now());
  EXPECT_FALSE(agent.anomalies().stale_zone);

  // Five minutes of propagation silence (metadata kept fresh so the
  // active staleness probe is not what fires).
  f.sched.run_until(f.sched.now() + Duration::minutes(5));
  machine.nameserver().metadata_updated(f.sched.now());
  EXPECT_TRUE(agent.check_now());  // advisory: the machine keeps serving
  EXPECT_TRUE(agent.anomalies().stale_zone);
  EXPECT_GT(agent.anomalies().zone_sync_age, Duration::seconds(30));
  EXPECT_EQ(agent.stats().stale_zone_flags, 1u);
  EXPECT_TRUE(machine.nameserver().running());

  // A new publish lands through the subscriber: the flag clears.
  auto v2 = publisher.publish(zone::ZoneBuilder("example.com", 2)
                                  .ns("@", "ns1.example.com")
                                  .a("ns1", "10.0.0.1")
                                  .a("www", "10.0.0.3")
                                  .build());
  ASSERT_TRUE(v2.ok()) << v2.error();
  machine.apply_zone_update(*v2.value(), f.sched.now());
  EXPECT_TRUE(agent.check_now());
  EXPECT_FALSE(agent.anomalies().stale_zone);
}

TEST(MonitoringAgent, SharedStoreMachinesNeverFlagStaleZones) {
  Fixture f;
  Machine machine(f.machine_config("m1"), f.store);  // no subscriber
  machine.nameserver().metadata_updated(f.sched.now());
  MonitoringAgent agent(machine, f.store, f.coordinator, f.sched);
  f.sched.run_until(f.sched.now() + Duration::hours(2));
  machine.nameserver().metadata_updated(f.sched.now());
  EXPECT_TRUE(agent.check_now());
  // No zone-sync series registered: the signal cannot apply.
  EXPECT_FALSE(agent.anomalies().stale_zone);
  EXPECT_EQ(agent.anomalies().zone_sync_age, Duration::zero());
}

TEST(MonitoringAgent, RegressionTestsIncluded) {
  Fixture f;
  Machine machine(f.machine_config("m1"), f.store);
  machine.nameserver().metadata_updated(f.sched.now());
  MonitoringAgentConfig config;
  config.regression_tests.push_back(dns::Question{
      DnsName::from("www.example.com"), RecordType::A, dns::RecordClass::IN});
  MonitoringAgent agent(machine, f.store, f.coordinator, f.sched, config);
  EXPECT_TRUE(agent.check_now());
}

}  // namespace
}  // namespace akadns::pop
