// Per-stage datapath telemetry (the nameserver side of the Figure 5
// Data Collection feed).
//
// Each stage of the receive/process pipeline wraps itself in a
// StageTimer; the recorders keep wall-clock cost distributions per stage
// so "where does a query's budget go" is answerable per machine and,
// merged through control/reporting, per fleet. Queue wait is recorded in
// *simulated* microseconds (arrival → dequeue), since it is governed by
// the simulation clock rather than host speed.
#pragma once

#include <array>
#include <string>
#include <string_view>

#include "common/stage_stats.hpp"
#include "obs/registry.hpp"

namespace akadns::server {

enum class Stage : std::uint8_t {
  Receive,  // whole admission path (firewall + parse + score + enqueue)
  Parse,    // one-pass QueryView decode
  Score,    // filter pipeline
  Resolve,  // responder: zone lookup + response encode
  kCount,
};

inline constexpr std::size_t kStageCount = static_cast<std::size_t>(Stage::kCount);

std::string_view to_string(Stage stage) noexcept;

class DatapathTelemetry {
 public:
  LatencyRecorder& stage(Stage s) noexcept {
    return stages_[static_cast<std::size_t>(s)];
  }
  const LatencyRecorder& stage(Stage s) const noexcept {
    return stages_[static_cast<std::size_t>(s)];
  }

  /// Simulated microseconds spent queued (arrival → dequeue).
  LatencyRecorder& queue_wait() noexcept { return queue_wait_; }
  const LatencyRecorder& queue_wait() const noexcept { return queue_wait_; }

  /// Registers every stage recorder as an akadns_stage_latency_ns series
  /// (stage-labelled) plus akadns_queue_wait_us under `base`. Merging and
  /// rendering across lanes/machines happens on registry snapshots — the
  /// struct-level merge()/render() the seed carried are gone.
  void register_into(obs::MetricRegistry& reg, const obs::LabelSet& base) const;

 private:
  std::array<LatencyRecorder, kStageCount> stages_;
  LatencyRecorder queue_wait_;
};

}  // namespace akadns::server
