// DefenseEngine unit tests: the transport-agnostic pipeline driven on a
// ManualClock, with plain ints as the queued Item — no nameserver, no
// sockets. Covers the firewall hook, the I/O gate, enqueue outcome
// accounting, metered/unmetered phase budgeting with refunds, restart
// flushing, and the introspection surface the telemetry dumps read.

#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "defense/defense_engine.hpp"
#include "dns/message.hpp"

namespace akadns::defense {
namespace {

using dns::DnsName;
using dns::RecordType;

using Engine = DefenseEngine<int>;

dns::Question question(const char* name, RecordType qtype = RecordType::A) {
  return dns::Question{DnsName::from(name), qtype, dns::RecordClass::IN};
}

TEST(DefenseEngine, LaneOfIsStableAndCoversAllLanes) {
  ManualClock clock;
  DefenseConfig config;
  config.lanes = 8;
  Engine engine(config, clock);

  std::vector<std::size_t> hits(engine.lane_count(), 0);
  for (std::uint32_t i = 0; i < 4096; ++i) {
    const Endpoint source{IpAddr(Ipv4Addr(10, (i >> 8) & 0xff, i & 0xff, 1)),
                          static_cast<std::uint16_t>(1024 + (i % 7))};
    const std::size_t lane = engine.lane_of(source);
    ASSERT_LT(lane, engine.lane_count());
    EXPECT_EQ(lane, engine.lane_of(source));  // stable per flow
    ++hits[lane];
  }
  for (const auto count : hits) EXPECT_GT(count, 0u);  // no dead lane
}

TEST(DefenseEngine, SingleLaneSkipsHashing) {
  ManualClock clock;
  Engine engine(DefenseConfig{}, clock);
  EXPECT_EQ(engine.lane_count(), 1u);
  EXPECT_EQ(engine.lane_of(Endpoint{IpAddr(Ipv4Addr(1, 2, 3, 4)), 53}), 0u);
}

TEST(DefenseEngine, FirewallDropsAndExpiresOnTheInjectedClock) {
  ManualClock clock;
  Engine engine(DefenseConfig{}, clock);

  engine.firewall().install(question("evil.example.com"), clock.now(), Duration::seconds(10));
  EXPECT_TRUE(engine.firewall_drops(0, question("evil.example.com")));
  EXPECT_TRUE(engine.firewall_drops(0, question("sub.evil.example.com")));
  EXPECT_FALSE(engine.firewall_drops(0, question("fine.example.com")));
  EXPECT_EQ(engine.lane_stats(0).drops[DropReason::Firewall], 2u);

  clock.advance(Duration::seconds(11));  // past the rule TTL
  EXPECT_FALSE(engine.firewall_drops(0, question("evil.example.com")));
  EXPECT_EQ(engine.lane_stats(0).drops[DropReason::Firewall], 2u);
}

TEST(DefenseEngine, IoGateDisabledAdmitsEverything) {
  ManualClock clock;
  DefenseConfig config;
  config.io_capacity_qps = 0.0;  // <= 0 disables the gate entirely
  Engine engine(config, clock);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(engine.io_admit(0));
  EXPECT_EQ(engine.lane_stats(0).drops[DropReason::IoOverload], 0u);
}

TEST(DefenseEngine, IoGateMetersAgainstTheClock) {
  ManualClock clock;
  DefenseConfig config;
  config.io_capacity_qps = 100.0;
  config.io_burst_fraction = 0.05;  // burst capacity: 5 tokens
  Engine engine(config, clock);

  int admitted = 0;
  for (int i = 0; i < 10; ++i) admitted += engine.io_admit(0) ? 1 : 0;
  EXPECT_EQ(admitted, 5);
  EXPECT_EQ(engine.lane_stats(0).drops[DropReason::IoOverload], 5u);

  clock.advance(Duration::millis(20));  // 100 qps * 20ms = 2 tokens back
  EXPECT_TRUE(engine.io_admit(0));
  EXPECT_TRUE(engine.io_admit(0));
  EXPECT_FALSE(engine.io_admit(0));
}

TEST(DefenseEngine, EnqueueOutcomeAccounting) {
  ManualClock clock;
  DefenseConfig config;
  config.queue_config.queue_capacity = 2;
  Engine engine(config, clock);

  EXPECT_EQ(engine.enqueue(0, 1, 0.0), filters::EnqueueOutcome::Enqueued);
  EXPECT_EQ(engine.enqueue(0, 2, 0.0), filters::EnqueueOutcome::Enqueued);
  EXPECT_EQ(engine.enqueue(0, 3, 0.0), filters::EnqueueOutcome::DroppedQueueFull);
  EXPECT_EQ(engine.enqueue(0, 4, 250.0), filters::EnqueueOutcome::DiscardedByScore);

  const auto& stats = engine.lane_stats(0);
  EXPECT_EQ(stats.enqueued, 2u);
  EXPECT_EQ(stats.drops[DropReason::QueueFull], 1u);
  EXPECT_EQ(stats.drops[DropReason::ScoreDiscard], 1u);
  EXPECT_EQ(engine.pending(), 2u);
}

TEST(DefenseEngine, UnmeteredBeginPhaseBudgetsTheWholeBacklog) {
  ManualClock clock;
  Engine engine(DefenseConfig{}, clock);  // compute_capacity_qps = 0: no meter

  EXPECT_FALSE(engine.begin_phase());  // nothing queued
  engine.enqueue(0, 10, 0.0);
  engine.enqueue(0, 11, 0.0);
  engine.enqueue(0, 12, 0.0);

  ASSERT_TRUE(engine.begin_phase());
  EXPECT_EQ(engine.lane_budget(0), 3u);
  EXPECT_EQ(engine.next(0).value(), 10);
  EXPECT_EQ(engine.next(0).value(), 11);
  EXPECT_EQ(engine.next(0).value(), 12);
  EXPECT_FALSE(engine.next(0).has_value());
  EXPECT_EQ(engine.end_phase(), 3u);
  EXPECT_EQ(engine.lane_stats(0).released, 3u);
}

TEST(DefenseEngine, MeteredBudgetIsRoundRobinAndBacklogCapped) {
  ManualClock clock;
  DefenseConfig config;
  config.lanes = 2;
  config.compute_capacity_qps = 10.0;
  config.compute_burst_fraction = 0.5;  // 5 tokens available at origin
  Engine engine(config, clock);

  for (int i = 0; i < 4; ++i) engine.enqueue(0, i, 0.0);
  engine.enqueue(1, 100, 0.0);

  ASSERT_TRUE(engine.begin_phase());
  // Round-robin one token at a time: lane 1 caps at its backlog of 1,
  // lane 0 absorbs the rest of the 5-token burst.
  EXPECT_EQ(engine.lane_budget(0), 4u);
  EXPECT_EQ(engine.lane_budget(1), 1u);
  while (engine.next(0)) {
  }
  while (engine.next(1)) {
  }
  EXPECT_EQ(engine.end_phase(), 5u);

  // The burst is spent; with the clock unmoved there are no tokens left.
  engine.enqueue(0, 5, 0.0);
  EXPECT_FALSE(engine.begin_phase());
}

TEST(DefenseEngine, EndPhaseRefundsUnspentMeteredBudget) {
  ManualClock clock;
  DefenseConfig config;
  config.compute_capacity_qps = 10.0;
  config.compute_burst_fraction = 0.5;  // 5 tokens
  Engine engine(config, clock);

  for (int i = 0; i < 5; ++i) engine.enqueue(0, i, 0.0);
  ASSERT_TRUE(engine.begin_phase());
  EXPECT_EQ(engine.lane_budget(0), 5u);
  EXPECT_EQ(engine.next(0).value(), 0);  // a driver that stopped early
  EXPECT_EQ(engine.end_phase(), 1u);

  // The 4 unspent tokens were refunded: a new phase at the same instant
  // can budget the remaining backlog of 4.
  ASSERT_TRUE(engine.begin_phase());
  EXPECT_EQ(engine.lane_budget(0), 4u);
  EXPECT_EQ(engine.end_phase(), 0u);
}

TEST(DefenseEngine, UnmeteredPhaseBypassesTheComputeBucket) {
  ManualClock clock;
  DefenseConfig config;
  config.compute_capacity_qps = 10.0;
  config.compute_burst_fraction = 0.5;  // 5 tokens
  Engine engine(config, clock);

  for (int i = 0; i < 8; ++i) engine.enqueue(0, i, 0.0);
  engine.begin_phase_unmetered(3);
  EXPECT_EQ(engine.lane_budget(0), 3u);
  while (engine.next(0)) {
  }
  EXPECT_EQ(engine.end_phase(), 3u);

  // The bucket never saw the unmetered phase: all 5 burst tokens remain.
  ASSERT_TRUE(engine.begin_phase());
  EXPECT_EQ(engine.lane_budget(0), 5u);
  EXPECT_EQ(engine.end_phase(), 0u);
}

TEST(DefenseEngine, FlushLaneAccountsRestartFlushAndEmptiesQueues) {
  ManualClock clock;
  Engine engine(DefenseConfig{}, clock);
  for (int i = 0; i < 3; ++i) engine.enqueue(0, i, 0.0);

  EXPECT_EQ(engine.flush_lane(0), 3u);
  EXPECT_EQ(engine.lane_stats(0).drops[DropReason::RestartFlush], 3u);
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_FALSE(engine.has_pending());
  EXPECT_EQ(engine.flush_lane(0), 0u);  // idempotent on an empty lane
}

TEST(DefenseEngine, ResetBucketsRestoresFullBurst) {
  ManualClock clock;
  DefenseConfig config;
  config.compute_capacity_qps = 10.0;
  config.compute_burst_fraction = 0.5;  // 5 tokens
  Engine engine(config, clock);

  for (int i = 0; i < 5; ++i) engine.enqueue(0, i, 0.0);
  ASSERT_TRUE(engine.begin_phase());
  while (engine.next(0)) {
  }
  engine.end_phase();  // burst fully spent

  for (int i = 0; i < 5; ++i) engine.enqueue(0, i, 0.0);
  EXPECT_FALSE(engine.begin_phase());  // still dry at the same instant

  engine.reset_buckets();  // restart semantics: full capacity again
  ASSERT_TRUE(engine.begin_phase());
  EXPECT_EQ(engine.lane_budget(0), 5u);
  engine.end_phase();
}

TEST(DefenseEngine, QueueDepthsExposeTheBacklogShape) {
  ManualClock clock;
  Engine engine(DefenseConfig{}, clock);  // default M_i = {0, 50, 150}

  engine.enqueue(0, 1, 0.0);    // queue 0
  engine.enqueue(0, 2, 40.0);   // queue 1
  engine.enqueue(0, 3, 100.0);  // queue 2
  engine.enqueue(0, 4, 180.0);  // above last M_i but below S_max: last queue

  const auto depths = engine.queue_depths();
  ASSERT_EQ(depths.size(), 3u);
  EXPECT_EQ(depths[0], 1u);
  EXPECT_EQ(depths[1], 1u);
  EXPECT_EQ(depths[2], 2u);
}

TEST(DefenseEngine, StatsMergeAcrossLanes) {
  ManualClock clock;
  DefenseConfig config;
  config.lanes = 3;
  Engine engine(config, clock);

  engine.enqueue(0, 1, 0.0);
  engine.enqueue(1, 2, 0.0);
  engine.enqueue(2, 3, 999.0);  // discard

  // Per-lane counters merge at scrape time: the registry snapshot's
  // label-filtered sums are the fleet view the deleted stats() used to be.
  obs::MetricRegistry reg;
  engine.register_metrics(reg, {});
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.sum("akadns_defense_enqueued_total"), 2u);
  EXPECT_EQ(snap.sum("akadns_defense_drops_total", obs::labels({{"reason", "score-discard"}})), 1u);
  EXPECT_EQ(engine.lane_pending(0), 1u);
  EXPECT_EQ(engine.lane_pending(1), 1u);
  EXPECT_EQ(engine.lane_pending(2), 0u);
}

}  // namespace
}  // namespace akadns::defense
