#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace akadns {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(23);
  double sum = 0, sum_squares = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_gaussian();
    sum += v;
    sum_squares += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_squares / n, 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(29);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ParetoBoundedBelow) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.next_pareto(3.0, 1.5), 3.0);
  }
}

TEST(Rng, PoissonMeanSmallLambda) {
  Rng rng(37);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.next_poisson(4.5));
  EXPECT_NEAR(sum / n, 4.5, 0.1);
}

TEST(Rng, PoissonMeanLargeLambda) {
  Rng rng(41);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.next_poisson(500.0));
  EXPECT_NEAR(sum / n, 500.0, 2.0);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(43);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, SampleIndicesDistinctAndBounded) {
  Rng rng(47);
  const auto idx = rng.sample_indices(100, 20);
  ASSERT_EQ(idx.size(), 20u);
  auto sorted = idx;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
  for (auto i : idx) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesClampsToN) {
  Rng rng(53);
  EXPECT_EQ(rng.sample_indices(5, 10).size(), 5u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(59);
  Rng child = a.fork();
  // Child and parent should not mirror each other.
  int matches = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == child.next_u64()) ++matches;
  }
  EXPECT_LT(matches, 3);
}

}  // namespace
}  // namespace akadns
