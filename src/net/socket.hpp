// Thin RAII wrappers over the Linux socket API for the real-I/O
// frontend: SO_REUSEPORT UDP sockets (one per worker — the kernel's
// receive-side hash shards flows across workers exactly as the
// simulator's lane-pinning hash does), a TCP listener for the truncation
// fallback, and conversions between sockaddr and the repo's Endpoint
// value type so the responder sees the same client identity either way.
//
// All sockets are nonblocking; syscall failures surface as Result errors
// (errno text attached) rather than exceptions — the daemon's hot path
// treats EAGAIN/EINTR as flow control, not failure.
#pragma once

#include <netinet/in.h>
#include <sys/socket.h>

#include <cstdint>
#include <string>
#include <utility>

#include "common/ip.hpp"
#include "common/result.hpp"

namespace akadns::net {

/// Owns a file descriptor; closes on destruction. Move-only.
class FdHandle {
 public:
  FdHandle() noexcept = default;
  explicit FdHandle(int fd) noexcept : fd_(fd) {}
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;
  FdHandle(FdHandle&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  FdHandle& operator=(FdHandle&& other) noexcept;
  ~FdHandle();

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  /// Closes now (drain path: stop accepting before the object dies).
  void reset() noexcept;
  int release() noexcept { return std::exchange(fd_, -1); }

 private:
  int fd_ = -1;
};

/// Converts a kernel socket address to the repo's Endpoint (v4 and v6).
Endpoint endpoint_from_sockaddr(const sockaddr_storage& ss) noexcept;

/// Fills a sockaddr for `ep`; returns the populated length.
socklen_t sockaddr_from_endpoint(const Endpoint& ep, sockaddr_storage& ss) noexcept;

/// A bound, nonblocking IPv4 UDP socket with SO_REUSEPORT set, so N
/// workers can bind the same port and let the kernel shard flows.
/// `port` 0 binds an ephemeral port (tests); after open(), port() holds
/// the actual one.
class UdpSocket {
 public:
  /// Binds `addr:port`. `rcvbuf`/`sndbuf` are requested via SO_RCVBUF /
  /// SO_SNDBUF (the kernel clamps to its limits silently; 0 keeps the
  /// default).
  Result<UdpSocket> static open(Ipv4Addr addr, std::uint16_t port, int rcvbuf = 0,
                                int sndbuf = 0);

  int fd() const noexcept { return fd_.get(); }
  std::uint16_t port() const noexcept { return port_; }
  void close() noexcept { fd_.reset(); }

 private:
  FdHandle fd_;
  std::uint16_t port_ = 0;
};

/// A listening, nonblocking IPv4 TCP socket with SO_REUSEPORT, for the
/// TC-bit retry path. accept4() returns nonblocking connection fds.
class TcpListener {
 public:
  Result<TcpListener> static open(Ipv4Addr addr, std::uint16_t port, int backlog = 512);

  int fd() const noexcept { return fd_.get(); }
  std::uint16_t port() const noexcept { return port_; }
  /// Stops accepting (graceful drain: close the listener, keep serving
  /// established connections).
  void close() noexcept { fd_.reset(); }

  /// Accepts one connection; returns an invalid handle on EAGAIN (and on
  /// transient per-connection errors, which are not listener failures).
  FdHandle accept(sockaddr_storage& peer) noexcept;

 private:
  FdHandle fd_;
  std::uint16_t port_ = 0;
};

/// errno → "what failed: strerror" for Result errors.
std::string errno_message(const char* what) noexcept;

}  // namespace akadns::net
