#include "filters/rate_limit_filter.hpp"

#include <algorithm>
#include <cmath>

namespace akadns::filters {

RateLimitFilter::RateLimitFilter() : RateLimitFilter(Config{}) {}

RateLimitFilter::RateLimitFilter(Config config) : config_(config) {
  // decayed_count *= exp(-lambda * dt) with lambda = ln2 / half_life.
  decay_per_sec_ = std::log(2.0) / std::max(config_.learning_half_life.to_seconds(), 1e-6);
}

RateLimitFilter::SourceState* RateLimitFilter::touch(const IpAddr& source) {
  auto it = sources_.find(source);
  if (it != sources_.end()) return &it->second;
  if (sources_.size() >= config_.max_tracked_sources) return nullptr;
  return &sources_[source];
}

void RateLimitFilter::learn_into(SourceState& state, SimTime now) {
  if (now > state.last_update) {
    const double dt = (now - state.last_update).to_seconds();
    state.decayed_count *= std::exp(-decay_per_sec_ * dt);
    state.last_update = now;
  }
  state.decayed_count += 1.0;
}

void RateLimitFilter::ensure_bucket(SourceState& state) {
  if (!state.has_limit) {
    state.limit_qps = config_.default_limit_qps;
    state.bucket =
        LeakyBucket(state.limit_qps, state.limit_qps * config_.burst_seconds);
    state.has_limit = true;
  }
}

void RateLimitFilter::learn(const IpAddr& source, SimTime now) {
  if (SourceState* state = touch(source)) learn_into(*state, now);
}

void RateLimitFilter::finalize_learning(SimTime now) {
  for (auto& [source, state] : sources_) {
    // The decayed counter approximates rate * half_life / ln2 in steady
    // state; convert back to a rate estimate.
    double decayed = state.decayed_count;
    if (now > state.last_update) {
      decayed *= std::exp(-decay_per_sec_ * (now - state.last_update).to_seconds());
    }
    const double learned_rate = decayed * decay_per_sec_;
    state.limit_qps = std::clamp(config_.headroom * learned_rate, config_.min_limit_qps,
                                 config_.max_limit_qps);
    state.bucket.reconfigure(state.limit_qps, state.limit_qps * config_.burst_seconds);
    state.has_limit = true;
  }
}

double RateLimitFilter::limit_for(const IpAddr& source) const {
  const auto it = sources_.find(source);
  if (it == sources_.end() || !it->second.has_limit) return config_.default_limit_qps;
  return it->second.limit_qps;
}

double RateLimitFilter::score(const QueryContext& ctx) {
  SourceState* state = touch(ctx.source.addr);
  if (!state) {
    // Table full: enforce the default limit statelessly by always passing
    // (we cannot tell bursts apart without state; prefer false negatives).
    return 0.0;
  }
  learn_into(*state, ctx.now);
  ensure_bucket(*state);
  if (state->bucket.offer(ctx.now)) return 0.0;
  ++penalized_;
  return config_.penalty;
}

}  // namespace akadns::filters
