#include "pop/suspension.hpp"

#include <algorithm>
#include <cmath>

namespace akadns::pop {

void SuspensionCoordinator::register_machine(const std::string& machine_id) {
  fleet_.insert(machine_id);
}

void SuspensionCoordinator::unregister_machine(const std::string& machine_id) {
  fleet_.erase(machine_id);
  suspended_.erase(machine_id);
}

std::size_t SuspensionCoordinator::quota() const noexcept {
  const auto by_fraction = static_cast<std::size_t>(
      std::floor(config_.max_suspended_fraction * static_cast<double>(fleet_.size())));
  return std::max(config_.min_allowed, by_fraction);
}

bool SuspensionCoordinator::request_suspension(const std::string& machine_id) {
  if (!fleet_.contains(machine_id)) return false;
  if (suspended_.contains(machine_id)) return true;
  if (suspended_.size() >= quota()) {
    ++denied_;
    return false;
  }
  suspended_.insert(machine_id);
  return true;
}

void SuspensionCoordinator::release(const std::string& machine_id) {
  suspended_.erase(machine_id);
}

bool SuspensionCoordinator::is_suspended(const std::string& machine_id) const {
  return suspended_.contains(machine_id);
}

}  // namespace akadns::pop
