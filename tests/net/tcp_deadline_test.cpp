// The server-side half of the degradation ladder: the TCP idle reaper
// (a stalled peer cannot pin connection slots — slowloris protection)
// and the per-query freshness gate (stale zones serve and are counted;
// expired zones are withdrawn with REFUSED).

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "dns/wire.hpp"
#include "net/server.hpp"
#include "net/tcp_framing.hpp"
#include "zone/zone_builder.hpp"

namespace akadns::net {
namespace {

using dns::DnsName;
using dns::RecordType;

constexpr Ipv4Addr kLoopback(127, 0, 0, 1);
const DnsName kApex = DnsName::from("live.example");
const DnsName kWww = DnsName::from("www.live.example");

zone::ZoneStore store_with_zone() {
  zone::ZoneStore store;
  store.publish(zone::ZoneBuilder("live.example", 1)
                    .soa("ns1.live.example", "hostmaster.live.example", 1)
                    .ns("@", "ns1.live.example")
                    .a("ns1", "10.0.0.1")
                    .a("www", "10.9.0.1")
                    .build());
  return store;
}

dns::SoaRecord zone_soa() {
  dns::SoaRecord soa;
  soa.mname = DnsName::from("ns1.live.example");
  soa.rname = DnsName::from("hostmaster.live.example");
  soa.serial = 1;
  soa.refresh = 3600;
  soa.retry = 600;
  soa.expire = 604800;
  soa.minimum = 300;
  return soa;
}

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int connect_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_storage dst{};
  const socklen_t len = sockaddr_from_endpoint(Endpoint{IpAddr(kLoopback), port}, dst);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&dst), len), 0);
  return fd;
}

// Sends one framed query and reads one framed response.
std::optional<dns::Message> tcp_ask(int fd, std::uint16_t id) {
  const auto wire = dns::encode(dns::make_query(id, kWww, RecordType::A));
  const auto prefix = frame_prefix(wire.size());
  std::vector<std::uint8_t> framed(prefix.begin(), prefix.end());
  framed.insert(framed.end(), wire.begin(), wire.end());
  if (::send(fd, framed.data(), framed.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(framed.size())) {
    return std::nullopt;
  }
  FrameDecoder decoder(65535);
  std::uint8_t buf[4096];
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(3);
  while (std::chrono::steady_clock::now() < deadline) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 200) != 1) continue;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return std::nullopt;
    decoder.feed({buf, static_cast<std::size_t>(n)});
    if (auto frame = decoder.next()) {
      auto decoded = dns::decode(*frame);
      if (!decoded.ok()) return std::nullopt;
      return std::move(decoded).take();
    }
  }
  return std::nullopt;
}

std::optional<dns::Message> udp_ask(std::uint16_t port, std::uint16_t id) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  sockaddr_storage dst{};
  const socklen_t len = sockaddr_from_endpoint(Endpoint{IpAddr(kLoopback), port}, dst);
  const auto wire = dns::encode(dns::make_query(id, kWww, RecordType::A));
  std::optional<dns::Message> out;
  if (::sendto(fd, wire.data(), wire.size(), 0, reinterpret_cast<const sockaddr*>(&dst),
               len) == static_cast<ssize_t>(wire.size())) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 3000) == 1) {
      std::uint8_t buf[4096];
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        auto decoded = dns::decode({buf, static_cast<std::size_t>(n)});
        if (decoded.ok()) out = std::move(decoded).take();
      }
    }
  }
  ::close(fd);
  return out;
}

// True when the fd reports EOF/reset within `timeout_ms`.
bool closed_within(int fd, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, 100) == 1) {
      char buf[16];
      if (::recv(fd, buf, sizeof(buf), 0) <= 0) return true;
    }
  }
  return false;
}

TEST(TcpDeadline, IdleReaperClosesASilentConnection) {
  const zone::ZoneStore store = store_with_zone();
  ServeConfig config;
  config.port = 0;
  config.workers = 1;
  config.tcp_idle_timeout = Duration::millis(200);
  Server server(config, store);
  ASSERT_TRUE(server.start().ok());

  const int fd = connect_tcp(server.tcp_port());
  // Say nothing. The reaper must cut us loose, not wait forever.
  EXPECT_TRUE(closed_within(fd, 3000)) << "silent connection was never reaped";
  ::close(fd);

  server.stop();
  EXPECT_GE(server.stats().frontend.tcp_idle_reaped.value(), 1u);
}

TEST(TcpDeadline, PartialFrameSlowlorisIsReapedToo) {
  // A peer trickling half a length prefix then stalling is the classic
  // slowloris shape; byte movement stopped, so the reaper applies.
  const zone::ZoneStore store = store_with_zone();
  ServeConfig config;
  config.port = 0;
  config.workers = 1;
  config.tcp_idle_timeout = Duration::millis(200);
  Server server(config, store);
  ASSERT_TRUE(server.start().ok());

  const int fd = connect_tcp(server.tcp_port());
  const std::uint8_t half_prefix = 0x00;
  ASSERT_EQ(::send(fd, &half_prefix, 1, MSG_NOSIGNAL), 1);
  EXPECT_TRUE(closed_within(fd, 3000)) << "half-frame staller was never reaped";
  ::close(fd);

  server.stop();
  EXPECT_GE(server.stats().frontend.tcp_idle_reaped.value(), 1u);
}

TEST(TcpDeadline, ActiveConnectionOutlivesManyIdleWindows) {
  const zone::ZoneStore store = store_with_zone();
  ServeConfig config;
  config.port = 0;
  config.workers = 1;
  config.tcp_idle_timeout = Duration::millis(400);
  Server server(config, store);
  ASSERT_TRUE(server.start().ok());

  const int fd = connect_tcp(server.tcp_port());
  // Six exchanges over ~2x the idle window in total, each gap under the
  // window: byte movement keeps resetting the clock, so the reaper must
  // never fire.
  for (std::uint16_t i = 0; i < 6; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    const auto reply = tcp_ask(fd, static_cast<std::uint16_t>(100 + i));
    ASSERT_TRUE(reply.has_value()) << "active connection lost at exchange " << i;
    EXPECT_EQ(reply->header.rcode, dns::Rcode::NoError);
  }
  ::close(fd);

  server.stop();
  EXPECT_EQ(server.stats().frontend.tcp_idle_reaped.value(), 0u);
}

TEST(TcpDeadline, StaleZoneStillServesAndIsCounted) {
  const zone::ZoneStore store = store_with_zone();
  auto tracker = std::make_shared<propagation::FreshnessTracker>(
      propagation::FreshnessCaps{.refresh_cap = Duration::millis(50),
                                 .expire_cap = Duration::hours(1)});
  ServeConfig config;
  config.port = 0;
  config.workers = 1;
  config.freshness = tracker;
  Server server(config, store);
  ASSERT_TRUE(server.start().ok());

  tracker->confirm(kApex, zone_soa(), steady_now_ns());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_EQ(tracker->evaluate(steady_now_ns()), propagation::Freshness::Stale);

  // Serve-stale: the answer is still the real answer, over both paths.
  const auto udp = udp_ask(server.udp_port(), 1);
  ASSERT_TRUE(udp.has_value());
  EXPECT_EQ(udp->header.rcode, dns::Rcode::NoError);
  ASSERT_FALSE(udp->answers.empty());

  const int fd = connect_tcp(server.tcp_port());
  const auto tcp = tcp_ask(fd, 2);
  ::close(fd);
  ASSERT_TRUE(tcp.has_value());
  EXPECT_EQ(tcp->header.rcode, dns::Rcode::NoError);

  server.stop();
  EXPECT_GE(server.stats().frontend.stale_served.value(), 2u);
  EXPECT_EQ(server.stats().frontend.expired_refused.value(), 0u);
}

TEST(TcpDeadline, ExpiredZoneIsWithdrawnWithRefused) {
  const zone::ZoneStore store = store_with_zone();
  auto tracker = std::make_shared<propagation::FreshnessTracker>(
      propagation::FreshnessCaps{.refresh_cap = Duration::millis(50),
                                 .expire_cap = Duration::millis(100)});
  ServeConfig config;
  config.port = 0;
  config.workers = 1;
  config.freshness = tracker;
  Server server(config, store);
  ASSERT_TRUE(server.start().ok());

  // Fresh first: the gate must not fire while within the caps.
  tracker->confirm(kApex, zone_soa(), steady_now_ns());
  ASSERT_EQ(tracker->evaluate(steady_now_ns()), propagation::Freshness::Fresh);
  const auto fresh = udp_ask(server.udp_port(), 1);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->header.rcode, dns::Rcode::NoError);

  // Past expire: withdrawn — REFUSED per query, both transports.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ASSERT_EQ(tracker->evaluate(steady_now_ns()), propagation::Freshness::Expired);

  const auto udp = udp_ask(server.udp_port(), 2);
  ASSERT_TRUE(udp.has_value()) << "expired must answer REFUSED, not go dark";
  EXPECT_EQ(udp->header.rcode, dns::Rcode::Refused);
  EXPECT_TRUE(udp->answers.empty());

  const int fd = connect_tcp(server.tcp_port());
  const auto tcp = tcp_ask(fd, 3);
  ::close(fd);
  ASSERT_TRUE(tcp.has_value());
  EXPECT_EQ(tcp->header.rcode, dns::Rcode::Refused);

  server.stop();
  EXPECT_GE(server.stats().frontend.expired_refused.value(), 2u);
}

}  // namespace
}  // namespace akadns::net
