// Resource records (RFC 1035 §3.2, RFC 3596 for AAAA, RFC 2782 for SRV,
// RFC 8659 for CAA). RDATA is a closed variant over the types the
// platform serves; unknown types round-trip as raw bytes (RFC 3597).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/ip.hpp"
#include "dns/name.hpp"

namespace akadns::dns {

enum class RecordType : std::uint16_t {
  A = 1,
  NS = 2,
  CNAME = 5,
  SOA = 6,
  PTR = 12,
  MX = 15,
  TXT = 16,
  AAAA = 28,
  SRV = 33,
  OPT = 41,    // EDNS0 pseudo-record, never stored in zones
  IXFR = 251,  // question-only (RFC 1995 incremental zone transfer)
  AXFR = 252,  // question-only (RFC 5936 full zone transfer)
  ANY = 255,   // question-only
  CAA = 257,
};

enum class RecordClass : std::uint16_t {
  IN = 1,
  CH = 3,
  ANY = 255,
};

/// Response codes (RFC 1035 §4.1.1 + RFC 6895).
enum class Rcode : std::uint8_t {
  NoError = 0,
  FormErr = 1,
  ServFail = 2,
  NxDomain = 3,
  NotImp = 4,
  Refused = 5,
};

std::string to_string(RecordType t);
std::string to_string(Rcode r);
/// Parses a type mnemonic ("A", "AAAA", "NS", ...); nullopt if unknown.
std::optional<RecordType> parse_record_type(std::string_view text);

struct ARecord {
  Ipv4Addr address;
  bool operator==(const ARecord&) const = default;
};

struct AaaaRecord {
  Ipv6Addr address;
  bool operator==(const AaaaRecord&) const = default;
};

struct NsRecord {
  DnsName nameserver;
  bool operator==(const NsRecord&) const = default;
};

struct CnameRecord {
  DnsName target;
  bool operator==(const CnameRecord&) const = default;
};

struct SoaRecord {
  DnsName mname;  // primary nameserver
  DnsName rname;  // responsible mailbox
  std::uint32_t serial = 0;
  std::uint32_t refresh = 0;
  std::uint32_t retry = 0;
  std::uint32_t expire = 0;
  std::uint32_t minimum = 0;  // negative-caching TTL (RFC 2308)
  bool operator==(const SoaRecord&) const = default;
};

struct TxtRecord {
  std::vector<std::string> strings;  // each <= 255 bytes on the wire
  bool operator==(const TxtRecord&) const = default;
};

struct MxRecord {
  std::uint16_t preference = 0;
  DnsName exchange;
  bool operator==(const MxRecord&) const = default;
};

struct PtrRecord {
  DnsName target;
  bool operator==(const PtrRecord&) const = default;
};

struct SrvRecord {
  std::uint16_t priority = 0;
  std::uint16_t weight = 0;
  std::uint16_t port = 0;
  DnsName target;
  bool operator==(const SrvRecord&) const = default;
};

struct CaaRecord {
  std::uint8_t flags = 0;
  std::string tag;
  std::string value;
  bool operator==(const CaaRecord&) const = default;
};

/// Unknown/opaque RDATA, kept verbatim (RFC 3597 transparency).
struct RawRecord {
  std::uint16_t type = 0;
  std::vector<std::uint8_t> data;
  bool operator==(const RawRecord&) const = default;
};

using RData = std::variant<ARecord, AaaaRecord, NsRecord, CnameRecord, SoaRecord, TxtRecord,
                           MxRecord, PtrRecord, SrvRecord, CaaRecord, RawRecord>;

/// The RecordType corresponding to an RData alternative.
RecordType rdata_type(const RData& rdata) noexcept;

/// Presentation form of the RDATA (zone-file style).
std::string rdata_to_string(const RData& rdata);

struct ResourceRecord {
  DnsName name;
  RecordClass rclass = RecordClass::IN;
  std::uint32_t ttl = 0;
  RData rdata;

  RecordType type() const noexcept { return rdata_type(rdata); }
  bool operator==(const ResourceRecord&) const = default;

  /// "<name> <ttl> IN <TYPE> <rdata>".
  std::string to_string() const;
};

/// Convenience constructors used throughout tests / examples.
ResourceRecord make_a(const DnsName& name, Ipv4Addr addr, std::uint32_t ttl);
ResourceRecord make_aaaa(const DnsName& name, Ipv6Addr addr, std::uint32_t ttl);
ResourceRecord make_ns(const DnsName& name, const DnsName& ns, std::uint32_t ttl);
ResourceRecord make_cname(const DnsName& name, const DnsName& target, std::uint32_t ttl);
ResourceRecord make_soa(const DnsName& name, const DnsName& mname, const DnsName& rname,
                        std::uint32_t serial, std::uint32_t ttl, std::uint32_t minimum = 300);
ResourceRecord make_txt(const DnsName& name, std::string text, std::uint32_t ttl);

}  // namespace akadns::dns
