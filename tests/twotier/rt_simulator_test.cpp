#include "twotier/rt_simulator.hpp"

#include <gtest/gtest.h>

namespace akadns::twotier {
namespace {

TEST(RtSimulator, BusyResolverHasTinyRt) {
  Rng rng(1);
  // A public-DNS-scale resolver: 100 qps for this hostname.
  const auto estimate = simulate_rt(100.0, {}, rng);
  EXPECT_GT(estimate.resolutions, 1000u);
  // Host TTL 20s, delegation TTL 4000s: roughly one toplevel contact per
  // 200 resolutions.
  EXPECT_NEAR(estimate.r_t(), 0.005, 0.002);
}

TEST(RtSimulator, IdleResolverHasRtNearOne) {
  Rng rng(2);
  // One end-user query every ~12 hours: the 4000-second delegation TTL
  // almost never survives to the next arrival.
  RtSimConfig config;
  config.duration = Duration::days(60);  // enough arrivals for stable stats
  const auto estimate = simulate_rt(1.0 / 43200.0, config, rng);
  EXPECT_GT(estimate.resolutions, 50u);
  EXPECT_GT(estimate.r_t(), 0.8);
}

TEST(RtSimulator, MidRateResolverInBetween) {
  Rng rng(3);
  // ~1 query/minute.
  const auto estimate = simulate_rt(1.0 / 60.0, {}, rng);
  EXPECT_GT(estimate.r_t(), 0.01);
  EXPECT_LT(estimate.r_t(), 0.9);
}

TEST(RtSimulator, ZeroRateDegenerates) {
  Rng rng(4);
  const auto estimate = simulate_rt(0.0, {}, rng);
  EXPECT_EQ(estimate.end_user_queries, 0u);
  EXPECT_DOUBLE_EQ(estimate.r_t(), 1.0);  // convention: cold resolver
}

TEST(RtSimulator, ResolutionsNeverExceedQueries) {
  Rng rng(5);
  const auto estimate = simulate_rt(5.0, {}, rng);
  EXPECT_LE(estimate.resolutions, estimate.end_user_queries);
  EXPECT_LE(estimate.toplevel_contacts, estimate.resolutions);
}

TEST(RtSimulator, AnalyticMatchesSimulation) {
  for (const double qps : {100.0, 1.0, 1.0 / 60.0, 1.0 / 3600.0}) {
    Rng rng(7);
    RtSimConfig config;
    config.duration = Duration::days(7);  // long horizon for tight stats
    const auto simulated = simulate_rt(qps, config, rng);
    const double analytic = analytic_rt(qps, config);
    EXPECT_NEAR(simulated.r_t(), analytic, std::max(0.05, analytic * 0.3))
        << "qps=" << qps;
  }
}

TEST(RtSimulator, HigherDelegationTtlLowersRt) {
  Rng rng_a(9), rng_b(9);
  RtSimConfig short_ttl;
  short_ttl.delegation_ttl = Duration::seconds(400);
  RtSimConfig long_ttl;
  long_ttl.delegation_ttl = Duration::seconds(40000);
  const auto with_short = simulate_rt(1.0, short_ttl, rng_a);
  const auto with_long = simulate_rt(1.0, long_ttl, rng_b);
  EXPECT_GT(with_short.r_t(), with_long.r_t());
}

}  // namespace
}  // namespace akadns::twotier
