// §4.3.4 attack class 4 in-text measurement: "the IP TTL is consistent
// per source IP address, with only 12% of source IP addresses showing
// any variation in IP TTL over one hour and 4.7% ever varying by more
// than ±1" — the property that makes hop-count filtering effective.
//
// Reproduced with a per-source TTL model (stable hop count + occasional
// route flaps) and the filter's detection rates against spoofers.

#include "bench_util.hpp"
#include "filters/hopcount_filter.hpp"
#include "workload/population.hpp"

using namespace akadns;

int main() {
  bench::heading("hop-count (IP TTL) consistency and filter effectiveness",
                 "§4.3.4 — 12% of sources vary at all; 4.7% vary by more than +/-1");

  workload::ResolverPopulation population(
      {.resolver_count = 20'000, .asn_count = 1'000}, 3);
  Rng rng(4);

  // One hour of queries per source; TTL varies when a route flap happens
  // (small probability per query) or due to per-packet multipath (+/-1).
  std::size_t varied_at_all = 0, varied_more_than_1 = 0;
  filters::HopCountFilter filter({.penalty = 50.0, .tolerance = 1});
  for (const auto& resolver : population.resolvers()) {
    const int base = resolver.ip_ttl;
    int lo = base, hi = base;
    const bool multipath = rng.next_bool(0.09);   // per-packet ECMP jitter
    const bool route_flap = rng.next_bool(0.05);  // path change this hour
    const int flap_delta = route_flap ? static_cast<int>(rng.next_int(2, 6)) *
                                            (rng.next_bool(0.5) ? 1 : -1)
                                      : 0;
    const int queries = 20;
    for (int q = 0; q < queries; ++q) {
      int ttl = base;
      if (multipath && rng.next_bool(0.3)) ttl += rng.next_bool(0.5) ? 1 : -1;
      if (route_flap && q > queries / 2) ttl = base + flap_delta;
      lo = std::min(lo, ttl);
      hi = std::max(hi, ttl);
      filter.learn(resolver.address, static_cast<std::uint8_t>(ttl));
    }
    if (hi != lo) ++varied_at_all;
    // "varying by more than +/-1": deviating from the usual value by > 1.
    if (hi - base > 1 || base - lo > 1) ++varied_more_than_1;
  }
  const double n = static_cast<double>(population.size());
  bench::subheading("TTL stability over one hour");
  bench::print_row("sources with any TTL variation (paper 12%)",
                   100.0 * static_cast<double>(varied_at_all) / n, "%");
  bench::print_row("sources varying by more than +/-1 (paper 4.7%)",
                   100.0 * static_cast<double>(varied_more_than_1) / n, "%");

  // Filter effectiveness: spoofed queries claiming top-resolver sources
  // arrive with the attacker's own hop count.
  bench::subheading("filter detection (class-4 spoofing)");
  std::uint64_t spoof_caught = 0, legit_flagged = 0;
  const auto top = population.top_by_weight(0.03);
  const int trials = 5'000;
  const dns::Question question{dns::DnsName::from("www.example.com"), dns::RecordType::A,
                               dns::RecordClass::IN};
  for (int i = 0; i < trials; ++i) {
    const auto& victim = population.resolver(top[rng.next_below(top.size())]);
    const filters::QueryContext spoof{
        Endpoint{victim.address, 4444},
        static_cast<std::uint8_t>(30 + rng.next_int(0, 10)),  // attacker's path
        question, SimTime()};
    if (filter.score(spoof) > 0) ++spoof_caught;
    const filters::QueryContext legit{Endpoint{victim.address, 5555}, victim.ip_ttl,
                                      question, SimTime()};
    if (filter.score(legit) > 0) ++legit_flagged;
  }
  bench::print_row("spoofed queries penalized", 100.0 * spoof_caught / trials, "%");
  bench::print_row("legitimate queries penalized (false positives)",
                   100.0 * legit_flagged / trials, "%");
  return 0;
}
