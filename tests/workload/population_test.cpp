#include "workload/population.hpp"

#include <gtest/gtest.h>

#include <set>

namespace akadns::workload {
namespace {

PopulationConfig small_config() {
  PopulationConfig config;
  config.resolver_count = 20'000;
  config.asn_count = 500;
  return config;
}

TEST(ResolverPopulation, CalibratedIpSkew) {
  // Figure 2 "IPs": top 3% of resolvers carry ~80% of queries.
  ResolverPopulation population(small_config(), 1);
  EXPECT_NEAR(population.mass_of_top(0.03), 0.80, 0.03);
}

TEST(ResolverPopulation, CalibratedAsnSkew) {
  // Figure 2 "ASNs": top 1% of ASNs carry ~83%. The indirect assignment
  // (heavy resolvers into heavy ASNs) makes this approximate.
  ResolverPopulation population(small_config(), 2);
  const double mass = population.asn_mass_of_top(0.01);
  EXPECT_GT(mass, 0.70);
  EXPECT_LT(mass, 0.92);
}

TEST(ResolverPopulation, RegionMass) {
  ResolverPopulation population(small_config(), 3);
  const double major = population.region_mass(Region::NorthAmerica) +
                       population.region_mass(Region::Europe) +
                       population.region_mass(Region::Asia);
  EXPECT_NEAR(major, 0.92, 0.04);
}

TEST(ResolverPopulation, UniqueAddresses) {
  ResolverPopulation population(small_config(), 4);
  std::set<std::string> addresses;
  for (const auto& r : population.resolvers()) addresses.insert(r.address.to_string());
  EXPECT_EQ(addresses.size(), population.size());
}

TEST(ResolverPopulation, WeightedSamplingSkewsToHeavyHitters) {
  ResolverPopulation population(small_config(), 5);
  Rng rng(6);
  const auto top = population.top_by_weight(0.03);
  const std::set<std::size_t> top_set(top.begin(), top.end());
  int hits = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (top_set.contains(population.sample(rng))) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.80, 0.03);
}

TEST(ResolverPopulation, WeeklyStabilityOfHeavyHitters) {
  // §2: week-to-week, the top-3% lists share 85-98% of members.
  ResolverPopulation population(small_config(), 7);
  Rng rng(8);
  const auto before = population.top_by_weight(0.03);
  population.advance_week(rng);
  const auto after = population.top_by_weight(0.03);
  const std::set<std::size_t> before_set(before.begin(), before.end());
  std::size_t shared = 0;
  for (const auto idx : after) {
    if (before_set.contains(idx)) ++shared;
  }
  const double overlap = static_cast<double>(shared) / static_cast<double>(after.size());
  EXPECT_GT(overlap, 0.85);
  EXPECT_LE(overlap, 1.0);
}

TEST(ResolverPopulation, WeeklyRateChangeDistribution) {
  // Figure 4: ~53% of query-weighted resolvers change by less than ±10%.
  ResolverPopulation population(small_config(), 9);
  std::vector<double> before_weights;
  for (const auto& r : population.resolvers()) before_weights.push_back(r.weight);
  Rng rng(10);
  population.advance_week(rng);
  double weighted_within = 0.0, total_weight = 0.0;
  for (std::size_t i = 0; i < population.size(); ++i) {
    const double before = before_weights[i];
    const double after = population.resolver(i).weight;
    const double change = std::abs(after - before) / std::max(before, 1e-12);
    total_weight += before;
    if (change < 0.10) weighted_within += before;
  }
  const double fraction = weighted_within / total_weight;
  EXPECT_GT(fraction, 0.35);
  EXPECT_LT(fraction, 0.75);
}

TEST(ResolverPopulation, IpTtlsPlausible) {
  ResolverPopulation population(small_config(), 11);
  for (const auto& r : population.resolvers()) {
    EXPECT_GE(r.ip_ttl, 30);
    EXPECT_LE(r.ip_ttl, 128);
  }
}

TEST(ResolverPopulation, FixedPortFraction) {
  ResolverPopulation population(small_config(), 12);
  std::size_t fixed = 0;
  for (const auto& r : population.resolvers()) {
    if (!r.random_ports) ++fixed;
  }
  EXPECT_NEAR(static_cast<double>(fixed) / static_cast<double>(population.size()), 0.05,
              0.01);
}

}  // namespace
}  // namespace akadns::workload
