#include "propagation/transfer_service.hpp"

#include <gtest/gtest.h>

#include "dns/wire.hpp"
#include "propagation/zone_journal.hpp"
#include "zone/zone_builder.hpp"

namespace akadns::propagation {
namespace {

using dns::DnsName;
using dns::RecordType;
using zone::Zone;
using zone::ZoneBuilder;

const DnsName kApex = DnsName::from("t.example");

Zone version(std::uint32_t serial) {
  ZoneBuilder builder("t.example", serial);
  builder.soa("ns1.t.example", "hostmaster.t.example", serial);
  builder.ns("@", "ns1.t.example");
  builder.a("ns1", "10.0.0.1");
  builder.a("www", "192.0.2." + std::to_string(serial % 250 + 1));
  builder.aaaa("www", "2001:db8::1");
  builder.txt("@", "v=spf1 -all");
  return builder.build();
}

// A server at serial `head`, with a journal covering [journal_from, head].
struct Fixture {
  zone::ZoneStore store;
  ZoneJournal journal;

  Fixture(std::uint32_t head, std::uint32_t journal_from) {
    Zone prev = version(journal_from);
    for (std::uint32_t s = journal_from + 1; s <= head; ++s) {
      Zone next = version(s);
      journal.append(zone::diff_zones(prev, next));
      prev = std::move(next);
    }
    store.publish(std::move(prev));
  }

  TransferService service(TransferConfig config = {}) {
    return TransferService(
        store,
        [this](const DnsName& apex, std::uint32_t from, std::uint32_t to) {
          return journal.chain(apex, from, to);
        },
        config);
  }
};

// Real transfers cross a wire: encode and decode every message before the
// client-side parse, so the test covers the same bytes a socket would.
std::vector<dns::Message> through_the_wire(const std::vector<dns::Message>& stream) {
  std::vector<dns::Message> received;
  for (const auto& message : stream) {
    auto decoded = dns::decode(dns::encode(message));
    EXPECT_TRUE(decoded.ok()) << decoded.error();
    if (decoded.ok()) received.push_back(std::move(decoded).take());
  }
  return received;
}

TEST(TransferService, AxfrStreamsTheWholeZone) {
  Fixture fx(/*head=*/5, /*journal_from=*/3);
  auto service = fx.service();

  const auto stream = through_the_wire(service.serve(TransferService::make_axfr_query(kApex, 7)));
  ASSERT_FALSE(stream.empty());
  const auto payload = TransferService::parse_transfer_response(stream, /*client_serial=*/0);
  ASSERT_TRUE(payload.ok()) << payload.error();
  ASSERT_TRUE(payload.value().full.has_value());
  EXPECT_EQ(payload.value().full->serial(), 5u);
  EXPECT_EQ(payload.value().full->all_records(), version(5).all_records());
  EXPECT_EQ(service.stats().axfr_served, 1u);
}

TEST(TransferService, AxfrSplitsAtConfiguredMessageSize) {
  Fixture fx(5, 3);
  auto service = fx.service({.axfr_records_per_message = 2});
  const auto stream = service.serve(TransferService::make_axfr_query(kApex, 7));
  EXPECT_GT(stream.size(), 1u);
  const auto payload =
      TransferService::parse_transfer_response(through_the_wire(stream), 0);
  ASSERT_TRUE(payload.ok()) << payload.error();
  ASSERT_TRUE(payload.value().full.has_value());
  EXPECT_EQ(payload.value().full->all_records(), version(5).all_records());
}

TEST(TransferService, IxfrAnswersIncrementallyFromTheJournal) {
  Fixture fx(/*head=*/6, /*journal_from=*/2);
  auto service = fx.service();

  const auto stream =
      through_the_wire(service.serve(TransferService::make_ixfr_query(kApex, 3, 9)));
  ASSERT_EQ(stream.size(), 1u);  // IXFR is always a single message
  const auto payload = TransferService::parse_transfer_response(stream, 3);
  ASSERT_TRUE(payload.ok()) << payload.error();
  EXPECT_FALSE(payload.value().full.has_value());
  ASSERT_EQ(payload.value().deltas.size(), 3u);  // 3->4->5->6

  // Replaying the chain reproduces the server's zone exactly.
  Zone client = version(3);
  for (const auto& delta : payload.value().deltas) {
    auto next = zone::apply_diff(client, delta);
    ASSERT_TRUE(next.ok()) << next.error();
    client = std::move(next).take();
  }
  EXPECT_EQ(client.all_records(), version(6).all_records());
  EXPECT_EQ(service.stats().ixfr_incremental, 1u);
}

TEST(TransferService, IxfrFallsBackToFullBodyOnJournalMiss) {
  Fixture fx(/*head=*/6, /*journal_from=*/4);
  auto service = fx.service();

  // Client serial 1 is below the journal window: RFC 1995 full-body form.
  const auto stream =
      through_the_wire(service.serve(TransferService::make_ixfr_query(kApex, 1, 9)));
  const auto payload = TransferService::parse_transfer_response(stream, 1);
  ASSERT_TRUE(payload.ok()) << payload.error();
  ASSERT_TRUE(payload.value().full.has_value());
  EXPECT_EQ(payload.value().full->all_records(), version(6).all_records());
  EXPECT_EQ(service.stats().ixfr_fallback, 1u);
}

TEST(TransferService, IxfrUpToDateIsASingleSoa) {
  Fixture fx(6, 4);
  auto service = fx.service();

  const auto stream =
      through_the_wire(service.serve(TransferService::make_ixfr_query(kApex, 6, 9)));
  ASSERT_EQ(stream.size(), 1u);
  ASSERT_EQ(stream[0].answers.size(), 1u);
  EXPECT_EQ(stream[0].answers[0].type(), RecordType::SOA);
  const auto payload = TransferService::parse_transfer_response(stream, 6);
  ASSERT_TRUE(payload.ok()) << payload.error();
  EXPECT_TRUE(payload.value().up_to_date);
  EXPECT_EQ(service.stats().up_to_date, 1u);
}

TEST(TransferService, RefusesUnknownApex) {
  Fixture fx(6, 4);
  auto service = fx.service();

  const auto apex = DnsName::from("nowhere.example");
  for (const auto& query : {TransferService::make_axfr_query(apex, 1),
                            TransferService::make_ixfr_query(apex, 2, 1)}) {
    const auto stream = service.serve(query);
    ASSERT_EQ(stream.size(), 1u);
    EXPECT_EQ(stream[0].header.rcode, dns::Rcode::Refused);
    // A refusal is the client's fall-back-and-escalate signal, never a
    // parsable transfer body.
    EXPECT_FALSE(TransferService::parse_transfer_response(stream, 2).ok());
  }
  EXPECT_EQ(service.stats().refused, 2u);
}

TEST(TransferService, TransferQueriesAreRecognized) {
  EXPECT_TRUE(TransferService::is_transfer_query(TransferService::make_axfr_query(kApex, 1)));
  EXPECT_TRUE(TransferService::is_transfer_query(TransferService::make_ixfr_query(kApex, 3, 1)));
  EXPECT_FALSE(TransferService::is_transfer_query(TransferService::make_soa_query(kApex, 1)));
}

TEST(TransferService, NotifyRoundTrip) {
  const auto notify = TransferService::make_notify(kApex, 42, 77);
  EXPECT_TRUE(TransferService::is_notify(notify));
  EXPECT_EQ(notify.header.id, 77u);
  ASSERT_FALSE(notify.questions.empty());
  EXPECT_EQ(notify.question().name, kApex);
  EXPECT_EQ(notify.question().qtype, RecordType::SOA);

  // The wire must carry it unchanged.
  auto decoded = dns::decode(dns::encode(notify));
  ASSERT_TRUE(decoded.ok()) << decoded.error();
  EXPECT_TRUE(TransferService::is_notify(decoded.value()));

  const auto ack = TransferService::make_notify_ack(decoded.value());
  EXPECT_TRUE(ack.header.qr);
  EXPECT_EQ(ack.header.id, 77u);
  EXPECT_EQ(ack.header.opcode, dns::Opcode::Notify);
  EXPECT_FALSE(TransferService::is_notify(ack));
}

TEST(TransferService, SoaProbeShape) {
  const auto probe = TransferService::make_soa_query(kApex, 12);
  EXPECT_EQ(probe.header.id, 12u);
  EXPECT_FALSE(probe.header.qr);
  ASSERT_FALSE(probe.questions.empty());
  EXPECT_EQ(probe.question().name, kApex);
  EXPECT_EQ(probe.question().qtype, RecordType::SOA);
}

TEST(TransferService, IxfrQueryCarriesClientSoa) {
  // RFC 1995 §3: the client's current SOA rides in the authority section
  // so the server knows where to diff from.
  const auto query = TransferService::make_ixfr_query(kApex, 17, 3);
  EXPECT_EQ(query.question().qtype, RecordType::IXFR);
  ASSERT_FALSE(query.authorities.empty());
  ASSERT_EQ(query.authorities[0].type(), RecordType::SOA);
  EXPECT_EQ(std::get<dns::SoaRecord>(query.authorities[0].rdata).serial, 17u);
}

}  // namespace
}  // namespace akadns::propagation
