// Zone propagation bench: what a zone update costs end to end.
//
// Three sections. (1) Full vs incremental recompile across zone size ×
// delta size — the case for compile_incremental is that a 1-record
// change in a 100k-record zone should cost the delta, not the zone.
// (2) The publisher pipeline: diff + journal + incremental compile per
// publish, sustained over a long serial chain. (3) Publish-to-visible
// latency at a subscriber, for both the in-process adoption path and
// the wire-style delta-replay path.
//
// With AKADNS_BENCH_JSON=<path> every row is also written as JSON (the
// CI artifact).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "propagation/zone_publisher.hpp"
#include "propagation/zone_subscriber.hpp"
#include "zone/compiled_zone.hpp"
#include "zone/zone_builder.hpp"

namespace akadns {
namespace {

using zone::CompiledZone;
using zone::Zone;
using zone::ZoneBuilder;

double elapsed_us(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start)
      .count();
}

// A zone with `hosts` A records; `serial` rotates the first `churn`
// addresses so consecutive serials differ in exactly `churn` records.
Zone make_zone(std::size_t hosts, std::uint32_t serial, std::size_t churn) {
  ZoneBuilder builder("bench.example", serial);
  builder.soa("ns1.bench.example", "hostmaster.bench.example", serial);
  builder.ns("@", "ns1.bench.example");
  builder.a("ns1", "10.0.0.1");
  for (std::size_t i = 0; i < hosts; ++i) {
    const std::uint32_t rotate = i < churn ? serial : 0;
    builder.a("h" + std::to_string(i), "10." + std::to_string((i >> 14) & 255) + "." +
                                           std::to_string((i >> 6) & 255) + "." +
                                           std::to_string((i + rotate) % 250 + 1));
  }
  return builder.build();
}

void compile_section() {
  bench::subheading("recompile cost: full vs incremental");
  std::printf("  %-10s %-8s %14s %14s %10s\n", "zone", "delta", "full (us)", "incr (us)",
              "speedup");

  for (const std::size_t hosts : {1'000ULL, 10'000ULL, 50'000ULL}) {
    for (const std::size_t churn : {1ULL, 16ULL, 256ULL}) {
      const auto base = std::make_shared<const Zone>(make_zone(hosts, 1, churn));
      const auto next = std::make_shared<const Zone>(make_zone(hosts, 2, churn));
      const zone::ZoneDiff diff = zone::diff_zones(*base, *next);
      const auto compiled_base = CompiledZone::compile(base);

      constexpr int kReps = 5;
      double full_us = 0.0;
      double incr_us = 0.0;
      for (int rep = 0; rep < kReps; ++rep) {
        auto t0 = std::chrono::steady_clock::now();
        const auto scratch = CompiledZone::compile(next);
        full_us += elapsed_us(t0);

        t0 = std::chrono::steady_clock::now();
        const auto incremental = CompiledZone::compile_incremental(*compiled_base, next, diff);
        incr_us += elapsed_us(t0);

        if (incremental->content_hash() != scratch->content_hash()) {
          std::printf("  !! incremental diverged from scratch at %zu/%zu\n", hosts, churn);
          return;
        }
      }
      full_us /= kReps;
      incr_us /= kReps;

      const std::string label =
          std::to_string(hosts) + " rr x " + std::to_string(churn) + " delta";
      std::printf("  %-10zu %-8zu %14.1f %14.1f %9.1fx\n", hosts, churn, full_us, incr_us,
                  full_us / incr_us);
      bench::print_row((label + ": full compile").c_str(), full_us, "us");
      bench::print_row((label + ": incremental").c_str(), incr_us, "us");
      bench::print_row((label + ": speedup").c_str(), full_us / incr_us, "x");
    }
  }
}

void publisher_section() {
  bench::subheading("publisher pipeline: diff + journal + incremental compile");
  MonotonicClock clock;

  for (const std::size_t hosts : {1'000ULL, 10'000ULL}) {
    propagation::ZonePublisher publisher(clock);
    auto seeded = publisher.publish(make_zone(hosts, 1, 16));
    if (!seeded.ok()) {
      std::printf("  !! seed publish failed: %s\n", seeded.error().c_str());
      return;
    }

    constexpr std::uint32_t kPublishes = 64;
    std::vector<Zone> versions;
    versions.reserve(kPublishes);
    for (std::uint32_t serial = 2; serial <= 1 + kPublishes; ++serial) {
      versions.push_back(make_zone(hosts, serial, 16));
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (Zone& version : versions) {
      auto result = publisher.publish(std::move(version));
      if (!result.ok()) {
        std::printf("  !! publish failed: %s\n", result.error().c_str());
        return;
      }
    }
    const double per_publish_us = elapsed_us(t0) / kPublishes;

    const auto stats = publisher.stats();
    const std::string label = std::to_string(hosts) + " rr zone";
    bench::print_row((label + ": publish (diff+compile)").c_str(), per_publish_us, "us");
    bench::print_count_row((label + ": incremental publishes").c_str(), stats.incremental);
    bench::print_count_row((label + ": full publishes").c_str(), stats.full);
    bench::print_count_row((label + ": journal deltas retained").c_str(),
                           publisher.journal_stats().appended -
                               publisher.journal_stats().evicted);
  }
}

void visibility_section() {
  bench::subheading("publish -> subscriber-visible latency");
  MonotonicClock clock;

  for (const bool adopt : {true, false}) {
    propagation::ZonePublisher publisher(clock);
    if (!publisher.publish(make_zone(10'000, 1, 16)).ok()) return;

    zone::ZoneStore replica;
    propagation::ZoneSubscriber subscriber(replica, {.adopt_compiled = adopt});
    subscriber.attach(publisher);

    constexpr std::uint32_t kPublishes = 32;
    for (std::uint32_t serial = 2; serial <= 1 + kPublishes; ++serial) {
      if (!publisher.publish(make_zone(10'000, serial, 16)).ok()) return;
      subscriber.poll(clock.now());
    }

    const auto& stats = subscriber.stats();
    const char* path = adopt ? "adopt (in-process)" : "delta replay (wire-style)";
    bench::print_row((std::string(path) + ": last latency").c_str(),
                     static_cast<double>(stats.last_latency_ns) / 1e3, "us");
    bench::print_row((std::string(path) + ": max latency").c_str(),
                     static_cast<double>(stats.max_latency_ns) / 1e3, "us");
    bench::print_count_row((std::string(path) + ": updates applied").c_str(), stats.updates);
  }
}

}  // namespace
}  // namespace akadns

int main() {
  akadns::bench::heading("Zone propagation: incremental recompile and fan-out",
                         "§3.2 zone updates; live reload under load");
  akadns::compile_section();
  akadns::publisher_section();
  akadns::visibility_section();
  std::printf("\n");
  return 0;
}
