#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "common/stage_stats.hpp"

namespace akadns::obs {
namespace {

TEST(Counter, SingleWriterSemantics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  ++c;
  c += 4;
  c.add(5);
  EXPECT_EQ(c.value(), 10u);
  EXPECT_EQ(static_cast<std::uint64_t>(c), 10u);

  const Counter copy = c;  // copy = detached snapshot
  ++c;
  EXPECT_EQ(copy.value(), 10u);
  EXPECT_EQ(c.value(), 11u);

  Counter assigned;
  assigned = 42;
  EXPECT_EQ(assigned.value(), 42u);
}

TEST(Gauge, SetAndMaxOf) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.max_of(2.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.max_of(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
  g = 1.0;
  EXPECT_DOUBLE_EQ(static_cast<double>(g), 1.0);
}

TEST(ObsHistogram, RecordsAndSnapshots) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);

  const Histogram copy = h;
  EXPECT_EQ(copy.count(), 100u);
  EXPECT_DOUBLE_EQ(copy.sum(), 5050.0);
}

TEST(Registry, CounterFamiliesSumAcrossLabels) {
  Counter w0, w1;
  w0 += 7;
  w1 += 5;
  MetricRegistry reg;
  reg.counter("akadns_udp_packets_total", labels({{"worker", "0"}}), w0, "per-worker rx");
  reg.counter("akadns_udp_packets_total", labels({{"worker", "1"}}), w1);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.sum("akadns_udp_packets_total"), 12u);
  EXPECT_EQ(snap.counter_value("akadns_udp_packets_total", labels({{"worker", "1"}})), 5u);
  EXPECT_EQ(snap.sum("akadns_udp_packets_total", labels({{"worker", "0"}})), 7u);
  EXPECT_EQ(snap.sum("no_such_family"), 0u);
  ASSERT_NE(snap.family("akadns_udp_packets_total"), nullptr);
  EXPECT_EQ(snap.family("akadns_udp_packets_total")->help, "per-worker rx");
}

TEST(Registry, SnapshotTracksLiveInstrument) {
  Counter c;
  MetricRegistry reg;
  reg.counter("akadns_events_total", {}, c);
  EXPECT_EQ(reg.snapshot().sum("akadns_events_total"), 0u);
  c += 3;
  EXPECT_EQ(reg.snapshot().sum("akadns_events_total"), 3u);
}

TEST(Registry, GaugeAggregationSumVsMax) {
  Gauge depth0, depth1, watermark0, watermark1;
  depth0.set(10.0);
  depth1.set(32.0);
  watermark0.set(5.0);
  watermark1.set(17.0);
  MetricRegistry reg;
  reg.gauge("akadns_queue_depth", labels({{"lane", "0"}}), depth0, GaugeAgg::Sum);
  reg.gauge("akadns_queue_depth", labels({{"lane", "1"}}), depth1, GaugeAgg::Sum);
  reg.gauge("akadns_latency_watermark_ns", labels({{"lane", "0"}}), watermark0,
            GaugeAgg::Max);
  reg.gauge("akadns_latency_watermark_ns", labels({{"lane", "1"}}), watermark1,
            GaugeAgg::Max);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.gauge_value("akadns_queue_depth"), 42.0);
  EXPECT_DOUBLE_EQ(snap.gauge_value("akadns_latency_watermark_ns"), 17.0);
}

TEST(Registry, GaugeFnRunsAtSnapshotTime) {
  double live = 1.0;
  MetricRegistry reg;
  reg.gauge_fn("akadns_zone_serial_max", {}, [&] { return live; }, GaugeAgg::Max);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauge_value("akadns_zone_serial_max"), 1.0);
  live = 99.0;
  EXPECT_DOUBLE_EQ(reg.snapshot().gauge_value("akadns_zone_serial_max"), 99.0);
}

TEST(Registry, HistogramSnapshotIsExact) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i % 250 + 1));
  MetricRegistry reg;
  reg.histogram("akadns_batch_size", {}, h);
  const LogHistogram snap = reg.snapshot().merged_histogram("akadns_batch_size");
  EXPECT_EQ(snap.count(), h.count());
  EXPECT_DOUBLE_EQ(snap.sum(), h.sum());
  EXPECT_DOUBLE_EQ(snap.min(), h.min());
  EXPECT_DOUBLE_EQ(snap.max(), h.max());
}

TEST(Registry, LatencyRecorderRebinsExactly) {
  LatencyRecorder r;
  for (int i = 1; i <= 500; ++i) r.record(100.0 * i);
  MetricRegistry reg;
  reg.histogram("akadns_stage_latency_ns", labels({{"stage", "parse"}}), r);
  const LogHistogram snap = reg.snapshot().merged_histogram("akadns_stage_latency_ns");
  EXPECT_EQ(snap.count(), r.count());
  EXPECT_DOUBLE_EQ(snap.sum(), r.moments().sum());
  EXPECT_DOUBLE_EQ(snap.min(), r.moments().min());
  EXPECT_DOUBLE_EQ(snap.max(), r.moments().max());
  // Same log axis → quantiles agree to within one source bucket.
  const double ratio = snap.quantile(0.5) / r.quantile(0.5);
  EXPECT_GT(ratio, 1.0 / std::pow(10.0, 1.0 / 8.0));
  EXPECT_LT(ratio, std::pow(10.0, 1.0 / 8.0));
}

TEST(Registry, RejectsDuplicatesAndMismatches) {
  Counter c;
  Gauge g;
  MetricRegistry reg;
  reg.counter("akadns_x_total", labels({{"worker", "0"}}), c);
  // duplicate (name, labels)
  EXPECT_THROW(reg.counter("akadns_x_total", labels({{"worker", "0"}}), c),
               std::invalid_argument);
  // same family, different kind
  EXPECT_THROW(reg.gauge("akadns_x_total", labels({{"worker", "1"}}), g),
               std::invalid_argument);
  // malformed names / labels
  EXPECT_THROW(reg.counter("9starts_with_digit", {}, c), std::invalid_argument);
  EXPECT_THROW(reg.counter("has space", {}, c), std::invalid_argument);
  EXPECT_THROW(reg.counter("akadns_ok_total", labels({{"bad-key", "v"}}), c),
               std::invalid_argument);
  // gauge agg mismatch within one family
  reg.gauge("akadns_depth", labels({{"lane", "0"}}), g, GaugeAgg::Sum);
  EXPECT_THROW(reg.gauge("akadns_depth", labels({{"lane", "1"}}), g, GaugeAgg::Max),
               std::invalid_argument);
}

TEST(Snapshot, MergeSumsCountersAndRespectsGaugeAgg) {
  Counter c0, c1;
  c0 += 10;
  c1 += 32;
  Gauge max0, max1;
  max0.set(4.0);
  max1.set(9.0);
  MetricRegistry reg0, reg1;
  reg0.counter("akadns_q_total", labels({{"machine", "0"}}), c0);
  reg0.gauge("akadns_age_s", {}, max0, GaugeAgg::Max);
  reg1.counter("akadns_q_total", labels({{"machine", "1"}}), c1);
  reg1.gauge("akadns_age_s", {}, max1, GaugeAgg::Max);

  MetricsSnapshot fleet = reg0.snapshot();
  fleet.merge(reg1.snapshot());
  EXPECT_EQ(fleet.sum("akadns_q_total"), 42u);
  // Same labels on the gauge: merged per family agg (max).
  EXPECT_DOUBLE_EQ(fleet.gauge_value("akadns_age_s"), 9.0);

  // Merging a snapshot with identical labels sums counters sample-wise.
  MetricsSnapshot doubled = reg0.snapshot();
  doubled.merge(reg0.snapshot());
  EXPECT_EQ(doubled.counter_value("akadns_q_total", labels({{"machine", "0"}})), 20u);
}

TEST(Snapshot, MergedHistogramFoldsAllSamples) {
  Histogram lane0, lane1;
  for (int i = 0; i < 10; ++i) lane0.add(10.0);
  for (int i = 0; i < 30; ++i) lane1.add(1000.0);
  MetricRegistry reg;
  reg.histogram("akadns_lat", labels({{"lane", "0"}}), lane0);
  reg.histogram("akadns_lat", labels({{"lane", "1"}}), lane1);
  const LogHistogram merged = reg.snapshot().merged_histogram("akadns_lat");
  EXPECT_EQ(merged.count(), 40u);
  EXPECT_DOUBLE_EQ(merged.min(), 10.0);
  EXPECT_DOUBLE_EQ(merged.max(), 1000.0);
}

TEST(Registry, LiveScrapeWhileWriterRuns) {
  // The single-writer/many-reader contract: one thread hammers a counter
  // and histogram while another scrapes; every scrape is monotone.
  Counter c;
  Histogram h;
  MetricRegistry reg;
  reg.counter("akadns_hot_total", {}, c);
  reg.histogram("akadns_hot_lat", {}, h);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ++c;
      h.add(42.0);
    }
  });
  std::uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    const MetricsSnapshot snap = reg.snapshot();
    const std::uint64_t now = snap.sum("akadns_hot_total");
    EXPECT_GE(now, last);
    last = now;
    const LogHistogram lat = snap.merged_histogram("akadns_hot_lat");
    EXPECT_LE(lat.count(), c.value());
  }
  stop.store(true);
  writer.join();
  const MetricsSnapshot final_snap = reg.snapshot();
  EXPECT_EQ(final_snap.sum("akadns_hot_total"), c.value());
  EXPECT_EQ(final_snap.merged_histogram("akadns_hot_lat").count(), h.count());
}

TEST(Labels, SortedConstructionAndWith) {
  const LabelSet base = labels({{"worker", "0"}, {"reason", "malformed"}});
  ASSERT_EQ(base.size(), 2u);
  EXPECT_EQ(base[0].key, "reason");  // sorted by key
  const LabelSet extended = with(base, "lane", std::uint64_t{3});
  ASSERT_EQ(extended.size(), 3u);
  EXPECT_EQ(extended[0].key, "lane");
  EXPECT_EQ(extended[0].value, "3");
}

}  // namespace
}  // namespace akadns::obs
