// Determinism of the sharded datapath across worker counts: the lane
// COUNT is configuration, the thread count is not. For a fixed seed and
// workload, draining the lanes with 1, 2, or 8 worker threads must
// produce byte-identical responses in the same order, identical
// per-lane and machine-level stats, identical telemetry counts, and an
// identical fleet-wide DatapathReport (including the conservation
// invariant per lane).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/worker_pool.hpp"
#include "control/reporting.hpp"
#include "core/platform.hpp"
#include "dns/wire.hpp"
#include "server/nameserver.hpp"
#include "zone/zone_builder.hpp"

namespace akadns {
namespace {

using dns::DnsName;
using dns::RecordType;

// ---------------------------------------------------------------------------
// Machine level: one 8-lane nameserver, a seeded mixed workload (legit
// traffic from many sources, NXDOMAIN noise, malformed wires, a
// query-of-death + restart), drained through a WorkerPool of varying
// width via the begin_phase / run_lane / end_phase contract.
// ---------------------------------------------------------------------------

struct MachineRunResult {
  std::vector<std::pair<Endpoint, std::vector<std::uint8_t>>> responses;
  server::NameserverStats stats;
  std::vector<server::NameserverStats> lane_stats;
  server::ResponderStats responder_stats;
  std::array<std::uint64_t, server::kStageCount> stage_counts{};
  std::uint64_t queue_wait_count = 0;
  double queue_wait_mean = 0.0;
  std::size_t pending = 0;
  std::uint64_t crashes = 0;

  bool operator==(const MachineRunResult&) const = default;
};

MachineRunResult run_machine_workload(std::size_t worker_threads) {
  zone::ZoneStore store;
  store.publish(zone::ZoneBuilder("example.com", 1)
                    .ns("@", "ns1.example.com")
                    .a("ns1", "10.0.0.1")
                    .a("www", "93.184.216.34")
                    .a("api", "93.184.216.35")
                    .build());

  server::NameserverConfig config;
  config.lanes = 8;
  config.compute_capacity_qps = 4000.0;  // small enough to leave backlog
  config.io_capacity_qps = 1'000'000.0;
  server::Nameserver ns(config, store);
  ns.set_crash_predicate(
      [](const dns::Question& q) { return q.name == DnsName::from("death.example.com"); });

  MachineRunResult result;
  ns.set_response_span_sink([&](const Endpoint& dst, std::span<const std::uint8_t> wire) {
    result.responses.emplace_back(dst, std::vector<std::uint8_t>(wire.begin(), wire.end()));
  });

  WorkerPool pool(worker_threads);
  const auto drain = [&](SimTime now) {
    if (!ns.begin_phase(now)) return;
    std::vector<std::size_t> lanes;
    for (std::size_t i = 0; i < ns.lane_count(); ++i) {
      if (ns.lane_phase_budget(i) > 0) lanes.push_back(i);
    }
    pool.parallel_for(lanes.size(), [&](std::size_t k) { ns.run_lane(lanes[k], now); });
    ns.end_phase(now);
  };

  Rng rng(0xD15EA5EULL);  // identical stream for every worker count
  std::uint16_t id = 0;
  auto t = SimTime::origin();
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 40; ++i) {
      const Endpoint source{IpAddr(Ipv4Addr(static_cast<std::uint32_t>(
                                0x0A000000u | rng.next_below(4096)))),
                            static_cast<std::uint16_t>(1024 + rng.next_below(50000))};
      if (i % 13 == 12) {
        ns.receive(std::vector<std::uint8_t>{0xde, 0xad, 0xbe}, source, 57, t);
        continue;
      }
      const char* name = rng.next_bool(0.2) ? "api.example.com" : "www.example.com";
      if (rng.next_bool(0.1)) name = "no-such-name.example.com";
      ns.receive(dns::encode(dns::make_query(++id, DnsName::from(name), RecordType::A)),
                 source, 57, t);
    }
    // Mid-run query-of-death: one lane stops, the machine crashes at
    // end_phase, and a restart flushes the backlog — all deterministic.
    if (round == 20) {
      ns.receive(dns::encode(dns::make_query(++id, DnsName::from("death.example.com"),
                                             RecordType::A)),
                 Endpoint{IpAddr(Ipv4Addr(0x0A0000FFu)), 4242}, 57, t);
    }
    drain(t);
    if (ns.state() == server::ServerState::Crashed) ns.restart(t);
    t += Duration::millis(5);
  }
  // Final full drain.
  for (int i = 0; i < 200 && ns.has_pending(); ++i) {
    t += Duration::millis(5);
    drain(t);
  }

  result.stats = ns.stats();
  for (std::size_t i = 0; i < ns.lane_count(); ++i) {
    result.lane_stats.push_back(ns.lane_stats(i));
  }
  result.responder_stats = ns.responder_stats();
  obs::MetricRegistry reg;
  ns.register_metrics(reg, {});
  const auto snap = reg.snapshot();
  for (std::size_t s = 0; s < server::kStageCount; ++s) {
    // Wall-clock stage latencies are nondeterministic; their COUNTS are
    // exact per-packet tallies and must match.
    result.stage_counts[s] =
        snap.merged_histogram("akadns_stage_latency_ns",
                              obs::labels({{"stage", std::string(server::to_string(
                                                         static_cast<server::Stage>(s)))}}))
            .count();
  }
  // Queue wait is simulated time: count AND value stream must match.
  const auto queue_wait = snap.merged_histogram("akadns_queue_wait_us");
  result.queue_wait_count = queue_wait.count();
  result.queue_wait_mean = queue_wait.mean();
  result.pending = ns.pending();
  result.crashes = ns.stats().crashes;
  return result;
}

TEST(ParallelDeterminism, MachineDrainIsIdenticalAcrossWorkerCounts) {
  const MachineRunResult serial = run_machine_workload(1);

  // Sanity: the workload actually exercised the machinery.
  EXPECT_GT(serial.responses.size(), 1000u);
  EXPECT_EQ(serial.crashes, 1u);
  EXPECT_GT(serial.stats.drops[DropReason::Malformed], 0u);
  std::size_t active_lanes = 0;
  for (const auto& lane : serial.lane_stats) {
    if (lane.packets_received > 0) ++active_lanes;
  }
  EXPECT_GE(active_lanes, 6u) << "source hashing should spread across lanes";

  for (const std::size_t threads : {2u, 8u}) {
    const MachineRunResult parallel = run_machine_workload(threads);
    ASSERT_EQ(parallel.responses.size(), serial.responses.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < serial.responses.size(); ++i) {
      ASSERT_EQ(parallel.responses[i].first, serial.responses[i].first)
          << "threads=" << threads << " response " << i << " destination";
      ASSERT_EQ(parallel.responses[i].second, serial.responses[i].second)
          << "threads=" << threads << " response " << i << " bytes";
    }
    EXPECT_EQ(parallel.stats, serial.stats) << "threads=" << threads;
    EXPECT_EQ(parallel.lane_stats, serial.lane_stats) << "threads=" << threads;
    EXPECT_EQ(parallel.responder_stats, serial.responder_stats) << "threads=" << threads;
    EXPECT_EQ(parallel.stage_counts, serial.stage_counts) << "threads=" << threads;
    EXPECT_EQ(parallel.queue_wait_count, serial.queue_wait_count) << "threads=" << threads;
    EXPECT_EQ(parallel.queue_wait_mean, serial.queue_wait_mean) << "threads=" << threads;
    EXPECT_EQ(parallel.pending, serial.pending) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// Fleet level: a whole Platform (anycast routing, ECMP, multi-lane
// machines, filter pipeline, pump scheduling) run with 1, 2, and 8
// worker threads; the fleet-wide DatapathReport — totals, per-lane
// conservation, drop taxonomy — must be identical, as must every
// client-visible response.
// ---------------------------------------------------------------------------

struct FleetRunResult {
  std::uint64_t responses_received = 0;
  std::uint64_t timeouts = 0;
  std::vector<std::vector<std::uint8_t>> answers;  // encoded, in completion order
  std::uint64_t packets_received = 0;
  std::uint64_t responses_sent = 0;
  std::uint64_t pending = 0;
  std::uint64_t drops_total = 0;
  std::vector<control::DatapathReport::LaneReport> lanes;
  bool conservative = false;

  bool operator==(const FleetRunResult&) const = default;
};

FleetRunResult run_fleet_workload(std::size_t worker_threads) {
  core::PlatformConfig config;
  config.topology.tier1_count = 3;
  config.topology.tier2_count = 8;
  config.topology.edge_count = 12;
  config.network.slow_mrai_fraction = 0.0;
  config.seed = 23;
  config.machine_lanes = 4;
  config.worker_threads = worker_threads;

  core::Platform platform(config);
  platform.build_internet();
  for (std::size_t i = 0; i < 2; ++i) {
    platform.add_pop(platform.topology().edges[i], 2, {1});
  }
  platform.host_zone(zone::ZoneBuilder("example.com", 1)
                         .soa("ns1.example.com", "admin.example.com", 1)
                         .ns("@", "ns1.example.com")
                         .a("ns1", "10.0.0.1")
                         .a("www", "93.184.216.34")
                         .build());
  platform.install_filter_pipeline();
  platform.run_until(platform.scheduler().now() + Duration::seconds(10));

  FleetRunResult result;
  const netsim::NodeId client_node = platform.topology().edges.back();
  Rng rng(0xFEEDULL);
  std::uint16_t id = 0;
  for (int i = 0; i < 120; ++i) {
    const Endpoint client{IpAddr(Ipv4Addr(static_cast<std::uint32_t>(
                              0xC6336400u | rng.next_below(200)))),
                          static_cast<std::uint16_t>(1024 + rng.next_below(60000))};
    const char* name = rng.next_bool(0.15) ? "nope.example.com" : "www.example.com";
    platform.send_query(client_node, client, 57,
                        dns::make_query(++id, DnsName::from(name), RecordType::A), 1,
                        [&result](std::optional<dns::Message> response, Duration) {
                          if (response) {
                            result.answers.push_back(dns::encode(*response));
                          }
                        });
  }
  platform.run_until(platform.scheduler().now() + Duration::seconds(30));

  result.responses_received = platform.responses_received();
  result.timeouts = platform.timeouts();

  std::vector<pop::Machine*> fleet;
  for (std::size_t i = 0; i < platform.pop_count(); ++i) {
    for (auto* machine : platform.pop_at(i).machines()) fleet.push_back(machine);
  }
  const control::DatapathReport report = control::collect_datapath(fleet);
  result.packets_received = report.packets_received;
  result.responses_sent = report.responses_sent;
  result.pending = report.pending;
  result.drops_total = report.drops.total();
  result.lanes = report.lanes;
  result.conservative = report.conservative();
  for (const auto& lane : report.lanes) {
    EXPECT_TRUE(lane.conservative()) << report.render();
  }
  return result;
}

TEST(ParallelDeterminism, FleetReportIsIdenticalAcrossWorkerCounts) {
  const FleetRunResult serial = run_fleet_workload(1);
  EXPECT_TRUE(serial.conservative);
  EXPECT_EQ(serial.responses_received, 120u);
  EXPECT_EQ(serial.timeouts, 0u);
  EXPECT_EQ(serial.lanes.size(), 4u);

  for (const std::size_t threads : {2u, 8u}) {
    const FleetRunResult parallel = run_fleet_workload(threads);
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace akadns
