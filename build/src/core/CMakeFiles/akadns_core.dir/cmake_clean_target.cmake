file(REMOVE_RECURSE
  "libakadns_core.a"
)
