// The live export transport: a minimal HTTP/1.1 endpoint serving
//
//   GET /metrics  -> 200, Prometheus text exposition of a fresh snapshot
//   GET /healthz  -> 200 "ok" when the ready callback says so,
//                    503 "unready" otherwise (drained workers, secondary
//                    not yet synced)
//
// plus the matching one-shot http_get client (loadgen --stats-url,
// akadns-scrape, CI smoke). Scrapes are rare (≤10 Hz) and snapshots are
// relaxed-atomic reads, so one accept thread handling connections
// serially is deliberate: no pool, no perturbation of the workers.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "obs/registry.hpp"

namespace akadns::obs {

class StatsServer {
 public:
  using SnapshotFn = std::function<MetricsSnapshot()>;
  using ReadyFn = std::function<bool()>;

  /// `snapshot_fn` runs per /metrics request on the server thread;
  /// `ready_fn` (may be empty = always ready) per /healthz request.
  StatsServer(SnapshotFn snapshot_fn, ReadyFn ready_fn = {});
  ~StatsServer();
  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept
  /// thread. Returns false with `*error` set on bind/listen failure.
  bool start(std::uint16_t port, std::string* error = nullptr);
  void stop();

  bool running() const noexcept { return running_.load(std::memory_order_acquire); }
  /// Actual bound port (after start() with port 0).
  std::uint16_t port() const noexcept { return port_; }

 private:
  void serve_loop();
  void handle_conn(int fd);

  SnapshotFn snapshot_fn_;
  ReadyFn ready_fn_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

struct HttpResponse {
  int status = 0;
  std::string body;
};

/// Blocking one-shot GET of `http://host:port/path`. Returns false with
/// `*error` set on connect/IO/parse failure (status != 200 is a
/// *successful* fetch — the caller inspects `status`).
bool http_get(const std::string& url, HttpResponse* out, std::string* error,
              int timeout_ms = 5000);

}  // namespace akadns::obs
