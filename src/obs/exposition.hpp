// Rendering and parsing of the registry's wire formats.
//
// Two transports, one registry: the same MetricsSnapshot renders as
// Prometheus-style text exposition (the live /metrics scrape) or as the
// JSON blob akadns-serve prints at shutdown. The parser is the inverse
// of render_prometheus — the loadgen's --stats-url scrape and the CI
// exposition checker both parse with it, so a formatting regression
// fails a test instead of silently corrupting a dashboard.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.hpp"

namespace akadns::obs {

/// Prometheus text exposition (v0.0.4 style): # HELP / # TYPE headers,
/// one `name{labels} value` line per sample. Counters render as
/// integers; histograms render summary-style (quantile-labelled lines
/// plus _sum/_count/_min/_max).
std::string render_prometheus(const MetricsSnapshot& snap);

/// The same snapshot as a JSON object keyed by family name.
std::string render_json(const MetricsSnapshot& snap);

struct ParsedSample {
  std::string name;   // full sample name (incl. _sum/_count suffixes)
  LabelSet labels;    // sorted, quantile label included
  double value = 0.0;
};

/// Parsed text exposition. Lookup helpers mirror MetricsSnapshot's so
/// tests can reconcile a scrape against an in-process snapshot.
class Exposition {
 public:
  /// Throws std::runtime_error (with line number) on any malformed line.
  static Exposition parse(std::string_view text);

  bool has(std::string_view name) const noexcept;
  /// Exact (name, labels) lookup; throws std::out_of_range when absent.
  double value(std::string_view name, const LabelSet& ls = {}) const;
  /// Sum over samples of `name` whose labels include every filter entry.
  double sum(std::string_view name, const LabelSet& filter = {}) const noexcept;

  const std::vector<ParsedSample>& samples() const noexcept { return samples_; }
  /// Family names seen in # TYPE comments (checker cross-reference).
  const std::vector<std::string>& typed_families() const noexcept { return families_; }

 private:
  std::vector<ParsedSample> samples_;
  std::vector<std::string> families_;
};

}  // namespace akadns::obs
