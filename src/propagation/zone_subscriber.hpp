// The consuming end of the propagation pipeline: applies ZoneUpdates to
// a replica ZoneStore, choosing the cheapest correct path per update.
//
// In-process subscribers (sim machines, serve workers) adopt the
// publisher's compiled snapshot — a pointer swap, byte-identical by
// construction. With adoption disabled (the secondary-sync and
// differential-test configuration, standing in for a subscriber on the
// far side of a wire) the update's delta window is replayed through the
// replica's own incremental compiler; a gap or mismatch falls back to a
// full publish of the carried zone snapshot. Every applied update bumps
// the replica's generation, which the AnswerCache already polls per
// query — so cache invalidation rides the normal publish signal and a
// flipped zone can never serve stale-serial answers.
//
// Not internally synchronized: a subscriber belongs to one consumer
// thread (a worker lane, a sim machine), which calls poll()/apply()
// from its own loop. The Subscription handoff underneath is the
// thread-safe part.
#pragma once

#include <cstdint>
#include <functional>

#include "common/clock.hpp"
#include "obs/registry.hpp"
#include "propagation/zone_publisher.hpp"
#include "zone/zone_store.hpp"

namespace akadns::propagation {

/// Per-subscriber propagation telemetry.
struct ZoneSyncStats {
  obs::Counter updates;         // updates seen by apply()
  obs::Counter noops;           // replica already at/past the serial
  obs::Counter adopted;         // compiled-snapshot pointer swaps
  obs::Counter deltas_applied;  // individual deltas replayed
  obs::Counter incremental;     // updates absorbed via the delta path
  obs::Counter full;            // updates absorbed via full publish
  obs::Gauge last_latency_ns;   // publish -> applied, publisher clock
  obs::Gauge max_latency_ns;

  /// One akadns_zone_sync_total{event=...} series per counter plus the
  /// two latency gauges. Cross-subscriber aggregation happens on registry
  /// snapshots (counters sum; max_latency aggregates with Max).
  void register_into(obs::MetricRegistry& reg, const obs::LabelSet& base) const {
    const auto event = [&](const char* name, const obs::Counter& c) {
      reg.counter("akadns_zone_sync_total", obs::with(base, "event", name), c,
                  "zone propagation apply events");
    };
    event("update", updates);
    event("noop", noops);
    event("adopted", adopted);
    event("delta_applied", deltas_applied);
    event("incremental", incremental);
    event("full", full);
    reg.gauge("akadns_zone_sync_last_latency_ns", base, last_latency_ns,
              obs::GaugeAgg::Max, "publish-to-applied latency of the newest update");
    reg.gauge("akadns_zone_sync_max_latency_ns", base, max_latency_ns,
              obs::GaugeAgg::Max, "worst publish-to-applied latency seen");
  }
};

struct SubscriberOptions {
  /// Adopt the publisher's compiled snapshot when the update carries one
  /// (in-process fast path). Disable to force the delta/full paths — what
  /// a cross-machine subscriber would do.
  bool adopt_compiled = true;
};

class ZoneSubscriber {
 public:
  explicit ZoneSubscriber(zone::ZoneStore& replica, SubscriberOptions options = {})
      : replica_(replica), options_(options) {}

  ZoneSubscriber(const ZoneSubscriber&) = delete;
  ZoneSubscriber& operator=(const ZoneSubscriber&) = delete;

  /// Subscribes to `publisher` and seeds the replica with its current
  /// snapshots (subscribe-then-seed, so no version can fall in between).
  void attach(ZonePublisher& publisher, std::function<void()> wake = {});

  void detach();

  /// Lock-free probe: anything queued since the last poll?
  bool has_pending() const noexcept { return subscription_ && subscription_->pending(); }

  /// Drains and applies every queued update; returns how many were
  /// applied. `now` should come from the publisher's clock so latency is
  /// measured on one axis.
  std::size_t poll(Timepoint now);

  /// Applies one update to the replica (exposed for transports that
  /// carry updates themselves, e.g. the secondary-sync wire path).
  void apply(const ZoneUpdate& update, Timepoint now);

  const ZoneSyncStats& stats() const noexcept { return stats_; }

 private:
  zone::ZoneStore& replica_;
  SubscriberOptions options_;
  SubscriptionPtr subscription_;
  ZoneSyncStats stats_;
};

}  // namespace akadns::propagation
