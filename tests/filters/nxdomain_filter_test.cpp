#include "filters/nxdomain_filter.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "zone/zone_builder.hpp"
#include "zone/zone_store.hpp"

namespace akadns::filters {
namespace {

using dns::DnsName;
using dns::Rcode;

struct Fixture {
  zone::ZoneStore store;
  NxDomainFilter::Config config{.penalty = 100.0,
                                .nxdomain_threshold = 10,
                                .window = Duration::seconds(10),
                                .disarm_after = Duration::minutes(5)};

  Fixture() {
    store.publish(zone::ZoneBuilder("example.com", 1)
                      .ns("@", "ns1.example.com")
                      .a("ns1", "10.0.0.1")
                      .a("www", "10.0.0.2")
                      .a("api", "10.0.0.3")
                      .build());
    store.publish(zone::ZoneBuilder("wild.net", 1)
                      .ns("@", "ns1.wild.net")
                      .a("ns1", "10.1.0.1")
                      .a("*.apps", "10.1.0.9")
                      .build());
  }

  NxDomainFilter make_filter() {
    return NxDomainFilter(
        config,
        [this](const DnsName& qname) -> std::optional<DnsName> {
          const auto zone = store.find_best_zone(qname);
          if (!zone) return std::nullopt;
          return zone->apex();
        },
        [this](const DnsName& apex) {
          const auto zone = store.find_zone(apex);
          return zone ? zone->all_names() : std::vector<DnsName>{};
        });
  }

  // QueryContext references its question; the deque gives each one
  // stable storage for the fixture's lifetime.
  std::deque<dns::Question> questions;

  QueryContext ctx(const char* qname, SimTime now) {
    questions.push_back(
        dns::Question{DnsName::from(qname), dns::RecordType::A, dns::RecordClass::IN});
    return QueryContext{Endpoint{*IpAddr::parse("10.9.9.9"), 5353}, 64, questions.back(), now};
  }
};

TEST(NxDomainFilter, DormantUntilThreshold) {
  Fixture f;
  auto filter = f.make_filter();
  auto t = SimTime::origin();
  // A few NXDOMAINs (below threshold) keep the filter dormant.
  for (int i = 0; i < 5; ++i) {
    filter.observe_response(f.ctx("nope.example.com", t), Rcode::NxDomain);
  }
  EXPECT_FALSE(filter.is_armed(DnsName::from("example.com")));
  EXPECT_DOUBLE_EQ(filter.score(f.ctx("random123.example.com", t)), 0.0);
}

TEST(NxDomainFilter, ArmsAfterThresholdAndPenalizesInvalidNames) {
  Fixture f;
  auto filter = f.make_filter();
  auto t = SimTime::origin();
  for (int i = 0; i < 10; ++i) {
    filter.observe_response(f.ctx("rnd.example.com", t), Rcode::NxDomain);
    t += Duration::millis(10);
  }
  EXPECT_TRUE(filter.is_armed(DnsName::from("example.com")));
  // Random-subdomain probe: penalized.
  EXPECT_DOUBLE_EQ(filter.score(f.ctx("a3n92nv9.example.com", t)), 100.0);
  // Valid names: clean.
  EXPECT_DOUBLE_EQ(filter.score(f.ctx("www.example.com", t)), 0.0);
  EXPECT_DOUBLE_EQ(filter.score(f.ctx("example.com", t)), 0.0);
  EXPECT_EQ(filter.total_penalized(), 1u);
}

TEST(NxDomainFilter, OnlyAttackedZoneIsArmed) {
  Fixture f;
  auto filter = f.make_filter();
  auto t = SimTime::origin();
  for (int i = 0; i < 10; ++i) {
    filter.observe_response(f.ctx("rnd.example.com", t), Rcode::NxDomain);
  }
  EXPECT_TRUE(filter.is_armed(DnsName::from("example.com")));
  EXPECT_FALSE(filter.is_armed(DnsName::from("wild.net")));
  // Other zones unaffected.
  EXPECT_DOUBLE_EQ(filter.score(f.ctx("missing.wild.net", t)), 0.0);
}

TEST(NxDomainFilter, WindowResetsCounter) {
  Fixture f;
  auto filter = f.make_filter();
  auto t = SimTime::origin();
  // 6 NXDOMAINs, then a gap longer than the window, then 6 more: never
  // 10 within one window -> stays dormant.
  for (int i = 0; i < 6; ++i) {
    filter.observe_response(f.ctx("rnd.example.com", t), Rcode::NxDomain);
  }
  t += Duration::seconds(11);
  for (int i = 0; i < 6; ++i) {
    filter.observe_response(f.ctx("rnd.example.com", t), Rcode::NxDomain);
  }
  EXPECT_FALSE(filter.is_armed(DnsName::from("example.com")));
}

TEST(NxDomainFilter, WildcardNamesAreValid) {
  Fixture f;
  auto filter = f.make_filter();
  auto t = SimTime::origin();
  for (int i = 0; i < 10; ++i) {
    filter.observe_response(f.ctx("rnd.wild.net", t), Rcode::NxDomain);
  }
  ASSERT_TRUE(filter.is_armed(DnsName::from("wild.net")));
  // Names under the wildcard parent are valid even though unenumerable.
  EXPECT_DOUBLE_EQ(filter.score(f.ctx("anything.apps.wild.net", t)), 0.0);
  EXPECT_DOUBLE_EQ(filter.score(f.ctx("deep.er.apps.wild.net", t)), 0.0);
  // Outside the wildcard: penalized.
  EXPECT_DOUBLE_EQ(filter.score(f.ctx("bogus.wild.net", t)), 100.0);
}

TEST(NxDomainFilter, DisarmsAfterQuietPeriod) {
  Fixture f;
  auto filter = f.make_filter();
  auto t = SimTime::origin();
  for (int i = 0; i < 10; ++i) {
    filter.observe_response(f.ctx("rnd.example.com", t), Rcode::NxDomain);
  }
  ASSERT_TRUE(filter.is_armed(DnsName::from("example.com")));
  // Attack stops; after disarm_after the filter stops penalizing.
  t += Duration::minutes(6);
  EXPECT_DOUBLE_EQ(filter.score(f.ctx("newname.example.com", t)), 0.0);
  EXPECT_FALSE(filter.is_armed(DnsName::from("example.com")));
}

TEST(NxDomainFilter, StaysArmedWhileAttackContinues) {
  Fixture f;
  auto filter = f.make_filter();
  auto t = SimTime::origin();
  for (int i = 0; i < 10; ++i) {
    filter.observe_response(f.ctx("rnd.example.com", t), Rcode::NxDomain);
  }
  // NXDOMAINs keep flowing every minute; 10 minutes later still armed.
  for (int i = 0; i < 10; ++i) {
    t += Duration::minutes(1);
    filter.observe_response(f.ctx("rnd2.example.com", t), Rcode::NxDomain);
  }
  EXPECT_GT(filter.score(f.ctx("bogus9.example.com", t)), 0.0);
}

TEST(NxDomainFilter, NonNxdomainResponsesIgnored) {
  Fixture f;
  auto filter = f.make_filter();
  auto t = SimTime::origin();
  for (int i = 0; i < 100; ++i) {
    filter.observe_response(f.ctx("www.example.com", t), Rcode::NoError);
  }
  EXPECT_FALSE(filter.is_armed(DnsName::from("example.com")));
}

TEST(NxDomainFilter, UnknownZoneIgnored) {
  Fixture f;
  auto filter = f.make_filter();
  auto t = SimTime::origin();
  for (int i = 0; i < 100; ++i) {
    filter.observe_response(f.ctx("x.unhosted.org", t), Rcode::NxDomain);
  }
  EXPECT_EQ(filter.armed_zone_count(), 0u);
  EXPECT_DOUBLE_EQ(filter.score(f.ctx("y.unhosted.org", t)), 0.0);
}

TEST(NxDomainFilter, InvalidateDropsTree) {
  Fixture f;
  auto filter = f.make_filter();
  auto t = SimTime::origin();
  for (int i = 0; i < 10; ++i) {
    filter.observe_response(f.ctx("rnd.example.com", t), Rcode::NxDomain);
  }
  ASSERT_TRUE(filter.is_armed(DnsName::from("example.com")));
  filter.invalidate(DnsName::from("example.com"));
  EXPECT_FALSE(filter.is_armed(DnsName::from("example.com")));
}

}  // namespace
}  // namespace akadns::filters
