#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace akadns {
namespace {

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("WwW.ExAmPlE.CoM"), "www.example.com");
  EXPECT_EQ(to_lower("already-lower_123"), "already-lower_123");
}

TEST(Strings, IEquals) {
  EXPECT_TRUE(iequals("ABC", "abc"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_FALSE(iequals("abc", "ab"));
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWhitespaceDropsEmpty) {
  const auto parts = split_whitespace("  foo\t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
  EXPECT_TRUE(split_whitespace("   ").empty());
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("www.example.com", "www."));
  EXPECT_FALSE(starts_with("ab", "abc"));
  EXPECT_TRUE(ends_with("www.example.com", ".com"));
  EXPECT_FALSE(ends_with("ab", "abc"));
}

TEST(Strings, Fnv1aStableAndDistinct) {
  EXPECT_EQ(fnv1a("hello"), fnv1a("hello"));
  EXPECT_NE(fnv1a("hello"), fnv1a("hellp"));
  EXPECT_NE(fnv1a(""), fnv1a(std::string_view("\0", 1)));
}

}  // namespace
}  // namespace akadns
