// akadns-loadgen: replay the synthetic workload at a running server.
//
//   akadns-loadgen --target 127.0.0.1:5300 --synthetic 1000 --seed 42
//                  --queries 100000 --sockets 4 --verify
//
// Builds the same deterministic corpus the server's --synthetic mode
// publishes, blasts it over UDP with sendmmsg/recvmmsg batching, and
// reports qps + latency percentiles. With --verify it also computes
// every expected answer through the local (simulator) Responder and
// byte-compares each received datagram — exit status is nonzero if
// anything dropped or mismatched, which is what the CI smoke keys on.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "net/loadgen.hpp"
#include "obs/exposition.hpp"
#include "obs/stats_http.hpp"
#include "workload/population.hpp"
#include "workload/zones.hpp"

namespace {

struct CliOptions {
  std::string target = "127.0.0.1:5300";
  /// Every --target on the command line, in order. Empty means the
  /// single default above; more than one spreads lanes round-robin.
  std::vector<std::string> targets;
  std::size_t synthetic_zones = 1000;
  std::uint64_t seed = 1;
  std::uint64_t queries = 100'000;
  std::size_t sockets = 4;
  std::size_t batch = 32;
  std::size_t window = 512;
  /// Aggregate send-rate cap, queries/sec (0 = unpaced). Failover drills
  /// set this so the traffic spans a fixed wall-clock window on any
  /// machine speed instead of finishing before the drill event fires.
  double rate = 0.0;
  std::size_t corpus_size = 4096;
  double attack_fraction = 0.0;
  double w_random_subdomain = 0.5;
  double w_direct = 0.3;
  double w_spoofed = 0.2;
  /// What the server is running ("on"/"off"), recorded in the report and
  /// selecting the exit policy under an attack mix (see main()).
  std::string defense = "off";
  std::uint64_t timeout_ms = 1000;
  /// Retransmissions per query after a timeout (resolver behavior on a
  /// lossy path — the chaos-drill lanes set this). 0 = single-shot.
  std::uint64_t retries = 0;
  double goodput_min = 0.9;
  /// Failover-drill gate: when >= 0 the run *expects* loss (a machine is
  /// killed or suspended mid-run) and passes iff the widest outage
  /// window stays under this and nothing legit mismatched.
  std::int64_t max_outage_ms = -1;
  /// Losses closer together than this merge into one outage window.
  std::uint64_t outage_gap_ms = 500;
  bool verify = false;
  /// Live-reload verification: the server was started with
  /// --flip-after-ms/--flip-count matching these — it will republish the
  /// first `flip_count` zones evolved by `flip_generations` mid-run, and
  /// we accept (and require) the new answers.
  std::size_t flip_count = 0;
  std::uint32_t flip_generations = 1;
  std::string json_path;
  /// Server /metrics endpoint (http://host:port). Scraped once after the
  /// run; shed/cache-hit-rate/zone-generation land in the bench JSON.
  std::string stats_url;
  bool help = false;
};

/// Server-side counters scraped from --stats-url after the run.
struct ServerScrape {
  bool ok = false;
  std::uint64_t shed = 0;         // akadns_defense_drops_total, all reasons
  double cache_hit_rate = 0.0;    // cache / (cache + compiled) fast-path split
  double zone_generation = 0.0;   // max akadns_zone_generation across workers
  std::uint64_t udp_packets = 0;  // datagrams the server's kernel delivered
};

void print_usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --target IP:PORT    server address (default 127.0.0.1:5300); repeatable —\n"
      "                      with several targets, client sockets round-robin across\n"
      "                      them and the report carries per-target accounting\n"
      "  --synthetic N       zone count matching the server's --synthetic (default 1000)\n"
      "  --seed S            seed matching the server's --seed (default 1)\n"
      "  --queries N         total queries to send (default 100000)\n"
      "  --sockets N         parallel client sockets/threads (default 4)\n"
      "  --batch N           datagrams per syscall (default 32)\n"
      "  --window N          max in-flight per socket (default 512)\n"
      "  --rate N            aggregate send-rate cap in qps (0 = unpaced); pace\n"
      "                      drills so traffic outlives the event under test\n"
      "  --corpus N          distinct queries in the replay mix (default 4096)\n"
      "  --attack-fraction F mix in attack traffic, 0..1 (default 0)\n"
      "  --attack-mix F      alias for --attack-fraction\n"
      "  --attack-weights R,D,S  random-subdomain/direct/spoofed blend (default 0.5,0.3,0.2)\n"
      "  --defense MODE      what the server runs: off|on (recorded; selects exit policy)\n"
      "  --timeout-ms N      per-query response timeout (default 1000)\n"
      "  --retries N         resend a timed-out query up to N times before counting\n"
      "                      it dropped (default 0; chaos drills over lossy paths\n"
      "                      set this — retransmits are reported separately)\n"
      "  --goodput-min F     legit goodput floor for --defense on (default 0.9)\n"
      "  --max-outage-ms N   failover-drill gate: tolerate query loss, but require\n"
      "                      the widest outage window (first lost send to last lost\n"
      "                      send, losses < --outage-gap-ms apart merged) <= N and\n"
      "                      zero byte mismatches\n"
      "  --outage-gap-ms N   window-merge gap for outage classification (default 500)\n"
      "  --verify            byte-compare responses against the local Responder\n"
      "  --flip-count N      server flips its first N zones mid-run (--flip-after-ms);\n"
      "                      with --verify, accept pre- and post-flip answers, require\n"
      "                      the flip to be observed, and reject stale-serial answers\n"
      "  --flip-generations G  generations the server flips by (default 1)\n"
      "  --stats-url URL     scrape the server's /metrics after the run (the\n"
      "                      akadns-serve --stats-port endpoint); embeds shed,\n"
      "                      cache hit rate, and zone generation in the JSON\n"
      "  --json PATH         write the report as JSON\n"
      "exit status without an attack mix: 0 iff nothing dropped, mismatched, or unexpected.\n"
      "With an attack mix the server is *supposed* to shed attack traffic, so the gate\n"
      "moves to the legitimate class: --defense on exits 0 iff legit goodput >= the floor\n"
      "and no legit response mismatched; --defense off is a baseline measurement and\n"
      "exits 0 whenever the run completed (counters still reported).\n",
      argv0);
}

bool parse_args(int argc, char** argv, CliOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (arg == "--help" || arg == "-h") {
      opts.help = true;
      return true;
    } else if (arg == "--target") {
      if (!(v = need_value())) return false;
      opts.target = v;
      opts.targets.emplace_back(v);
    } else if (arg == "--synthetic") {
      if (!(v = need_value())) return false;
      opts.synthetic_zones = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed") {
      if (!(v = need_value())) return false;
      opts.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--queries") {
      if (!(v = need_value())) return false;
      opts.queries = std::strtoull(v, nullptr, 10);
    } else if (arg == "--sockets") {
      if (!(v = need_value())) return false;
      opts.sockets = std::strtoull(v, nullptr, 10);
    } else if (arg == "--batch") {
      if (!(v = need_value())) return false;
      opts.batch = std::strtoull(v, nullptr, 10);
    } else if (arg == "--window") {
      if (!(v = need_value())) return false;
      opts.window = std::strtoull(v, nullptr, 10);
    } else if (arg == "--rate") {
      if (!(v = need_value())) return false;
      opts.rate = std::strtod(v, nullptr);
    } else if (arg == "--corpus") {
      if (!(v = need_value())) return false;
      opts.corpus_size = std::strtoull(v, nullptr, 10);
    } else if (arg == "--attack-fraction" || arg == "--attack-mix") {
      if (!(v = need_value())) return false;
      opts.attack_fraction = std::strtod(v, nullptr);
    } else if (arg == "--attack-weights") {
      if (!(v = need_value())) return false;
      char* end = nullptr;
      opts.w_random_subdomain = std::strtod(v, &end);
      if (!end || *end != ',') {
        std::fprintf(stderr, "--attack-weights wants R,D,S\n");
        return false;
      }
      opts.w_direct = std::strtod(end + 1, &end);
      if (!end || *end != ',') {
        std::fprintf(stderr, "--attack-weights wants R,D,S\n");
        return false;
      }
      opts.w_spoofed = std::strtod(end + 1, nullptr);
    } else if (arg == "--defense") {
      if (!(v = need_value())) return false;
      opts.defense = v;
      if (opts.defense != "on" && opts.defense != "off") {
        std::fprintf(stderr, "--defense wants on|off\n");
        return false;
      }
    } else if (arg == "--timeout-ms") {
      if (!(v = need_value())) return false;
      opts.timeout_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--retries") {
      if (!(v = need_value())) return false;
      opts.retries = std::strtoull(v, nullptr, 10);
    } else if (arg == "--goodput-min") {
      if (!(v = need_value())) return false;
      opts.goodput_min = std::strtod(v, nullptr);
    } else if (arg == "--max-outage-ms") {
      if (!(v = need_value())) return false;
      opts.max_outage_ms = std::strtoll(v, nullptr, 10);
    } else if (arg == "--outage-gap-ms") {
      if (!(v = need_value())) return false;
      opts.outage_gap_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--verify") {
      opts.verify = true;
    } else if (arg == "--flip-count") {
      if (!(v = need_value())) return false;
      opts.flip_count = std::strtoull(v, nullptr, 10);
    } else if (arg == "--flip-generations") {
      if (!(v = need_value())) return false;
      opts.flip_generations = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--stats-url") {
      if (!(v = need_value())) return false;
      opts.stats_url = v;
    } else if (arg == "--json") {
      if (!(v = need_value())) return false;
      opts.json_path = v;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::string outages_json(const std::vector<akadns::net::OutageWindow>& windows) {
  std::string out = "[";
  char buf[160];
  for (std::size_t i = 0; i < windows.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"first_loss_ms\": %.3f, \"last_loss_ms\": %.3f,"
                  " \"width_ms\": %.3f, \"losses\": %llu}",
                  i == 0 ? "" : ", ", static_cast<double>(windows[i].start_ns) / 1e6,
                  static_cast<double>(windows[i].end_ns) / 1e6,
                  static_cast<double>(windows[i].width_ns()) / 1e6,
                  (unsigned long long)windows[i].losses);
    out += buf;
  }
  out += "]";
  return out;
}

std::string targets_json(const akadns::net::LoadgenReport& r) {
  std::string out = "  \"targets\": [\n";
  char buf[320];
  for (std::size_t i = 0; i < r.targets.size(); ++i) {
    const auto& t = r.targets[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"target\": \"%s\", \"lanes\": %zu, \"sent\": %llu,"
                  " \"received\": %llu, \"dropped\": %llu, \"mismatched\": %llu,"
                  " \"widest_outage_ms\": %.3f, \"outages\": ",
                  t.target.to_string().c_str(), t.lanes, (unsigned long long)t.sent,
                  (unsigned long long)t.received, (unsigned long long)t.dropped,
                  (unsigned long long)t.mismatched,
                  static_cast<double>(t.widest_outage_ns) / 1e6);
    out += buf;
    out += outages_json(t.outages);
    out += i + 1 < r.targets.size() ? "},\n" : "}\n";
  }
  out += "  ],\n";
  return out;
}

std::string class_json(const char* name, const akadns::net::ClassCounters& c) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"%s\": {\"sent\": %llu, \"received\": %llu, \"dropped\": %llu,"
                " \"mismatched\": %llu, \"goodput\": %.4f},\n",
                name, (unsigned long long)c.sent, (unsigned long long)c.received,
                (unsigned long long)c.dropped, (unsigned long long)c.mismatched,
                c.goodput());
  return buf;
}

ServerScrape scrape_stats(const std::string& url) {
  ServerScrape s;
  akadns::obs::HttpResponse rsp;
  std::string error;
  if (!akadns::obs::http_get(url + "/metrics", &rsp, &error) || rsp.status != 200) {
    if (error.empty()) error = "HTTP " + std::to_string(rsp.status);
    std::fprintf(stderr, "stats scrape failed (%s): %s\n", url.c_str(), error.c_str());
    return s;
  }
  try {
    const auto exp = akadns::obs::Exposition::parse(rsp.body);
    s.shed = static_cast<std::uint64_t>(exp.sum("akadns_defense_drops_total"));
    const double cache =
        exp.sum("akadns_answer_path_total", akadns::obs::labels({{"path", "cache"}}));
    const double compiled =
        exp.sum("akadns_answer_path_total", akadns::obs::labels({{"path", "compiled"}}));
    s.cache_hit_rate = (cache + compiled) > 0.0 ? cache / (cache + compiled) : 0.0;
    // Every worker reports its replica's generation; a healthy server
    // agrees across workers, so max == the served generation.
    for (const auto& sample : exp.samples()) {
      if (sample.name == "akadns_zone_generation") {
        s.zone_generation = std::max(s.zone_generation, sample.value);
      }
    }
    s.udp_packets = static_cast<std::uint64_t>(exp.sum(
        "akadns_frontend_total", akadns::obs::labels({{"event", "udp_packets"}})));
    s.ok = true;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "stats scrape did not parse: %s\n", e.what());
  }
  return s;
}

std::string report_json(const akadns::net::LoadgenReport& r, const CliOptions& opts,
                        const ServerScrape& scrape) {
  char buf[1536];
  std::snprintf(buf, sizeof(buf),
                "{\n"
                "  \"target\": \"%s\",\n"
                "  \"queries\": %llu,\n"
                "  \"sockets\": %zu,\n"
                "  \"defense\": \"%s\",\n"
                "  \"attack_fraction\": %.4f,\n"
                "  \"sent\": %llu,\n"
                "  \"received\": %llu,\n"
                "  \"dropped\": %llu,\n"
                "  \"mismatched\": %llu,\n"
                "  \"unexpected\": %llu,\n"
                "  \"retransmits\": %llu,\n"
                "  \"servfail\": %llu,\n",
                opts.target.c_str(), (unsigned long long)opts.queries, opts.sockets,
                opts.defense.c_str(), opts.attack_fraction, (unsigned long long)r.sent,
                (unsigned long long)r.received, (unsigned long long)r.dropped,
                (unsigned long long)r.mismatched, (unsigned long long)r.unexpected,
                (unsigned long long)r.retransmits, (unsigned long long)r.servfail);
  std::string out = buf;
  out += class_json("legit", r.legit);
  out += class_json("attack", r.attack);
  out += targets_json(r);
  std::snprintf(buf, sizeof(buf), "  \"widest_outage_ms\": %.3f,\n  \"outages\": ",
                static_cast<double>(r.widest_outage_ns) / 1e6);
  out += buf;
  out += outages_json(r.outages);
  out += ",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"flip\": {\"count\": %zu, \"generations\": %u, \"old_answers\": %llu,"
                " \"new_answers\": %llu, \"stale_old\": %llu, \"first_new_ms\": %.3f},\n",
                opts.flip_count, opts.flip_generations,
                (unsigned long long)r.flip.old_answers, (unsigned long long)r.flip.new_answers,
                (unsigned long long)r.flip.stale_old,
                r.flip.first_new_ns >= 0 ? static_cast<double>(r.flip.first_new_ns) / 1e6
                                         : -1.0);
  out += buf;
  if (scrape.ok) {
    std::snprintf(buf, sizeof(buf),
                  "  \"server\": {\"shed\": %llu, \"cache_hit_rate\": %.4f,"
                  " \"zone_generation\": %.0f, \"udp_packets\": %llu},\n",
                  (unsigned long long)scrape.shed, scrape.cache_hit_rate,
                  scrape.zone_generation, (unsigned long long)scrape.udp_packets);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  \"seconds\": %.4f,\n"
                "  \"qps\": %.0f,\n"
                "  \"p50_us\": %.1f,\n"
                "  \"p90_us\": %.1f,\n"
                "  \"p99_us\": %.1f,\n"
                "  \"p999_us\": %.1f,\n"
                "  \"max_us\": %.1f\n"
                "}\n",
                r.seconds, r.qps, r.p50_us, r.p90_us, r.p99_us, r.p999_us, r.max_us);
  out += buf;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!parse_args(argc, argv, opts)) {
    print_usage(argv[0]);
    return 2;
  }
  if (opts.help) {
    print_usage(argv[0]);
    return 0;
  }

  if (opts.targets.empty()) opts.targets.push_back(opts.target);
  std::vector<akadns::Endpoint> targets;
  for (const auto& text : opts.targets) {
    const auto colon = text.rfind(':');
    const auto addr = colon == std::string::npos
                          ? std::optional<akadns::Ipv4Addr>{}
                          : akadns::Ipv4Addr::parse(text.substr(0, colon));
    const auto port = colon == std::string::npos
                          ? 0UL
                          : std::strtoul(text.c_str() + colon + 1, nullptr, 10);
    if (!addr || port == 0 || port > 65535) {
      std::fprintf(stderr, "bad --target (want IP:PORT): %s\n", text.c_str());
      return 2;
    }
    targets.push_back(
        akadns::Endpoint{akadns::IpAddr(*addr), static_cast<std::uint16_t>(port)});
  }

  // Rebuild the server's world from the same (count, seed) — self-play.
  std::fprintf(stderr, "building %zu synthetic zones (seed %llu)...\n", opts.synthetic_zones,
               (unsigned long long)opts.seed);
  akadns::workload::HostedZonesConfig zc;
  zc.zone_count = opts.synthetic_zones;
  akadns::workload::HostedZones zones(zc, opts.seed);
  akadns::workload::PopulationConfig pc;
  pc.resolver_count = 10'000;
  akadns::workload::ResolverPopulation population(pc, opts.seed ^ 0xC0FFEEULL);

  akadns::workload::ReplayMixConfig mix;
  mix.corpus_size = opts.corpus_size;
  mix.attack_fraction = opts.attack_fraction;
  mix.random_subdomain_weight = opts.w_random_subdomain;
  mix.direct_query_weight = opts.w_direct;
  mix.spoofed_weight = opts.w_spoofed;
  mix.seed = opts.seed;
  akadns::workload::ReplayCorpus corpus(mix, population, zones);
  std::fprintf(stderr, "corpus ready: %zu entries (%zu attack)\n", corpus.size(),
               corpus.attack_count());

  std::vector<std::vector<std::uint8_t>> expected;
  if (opts.verify) {
    expected = akadns::net::expected_responses(corpus, zones.store());
    std::fprintf(stderr, "computed %zu expected responses\n", expected.size());
  }

  // Live-reload runs also need the post-flip reference: rebuild the world
  // the server's flip drill will publish — zone ranks [0, flip_count)
  // evolved by flip_generations, everything else untouched (evolved with
  // 0 generations is the identity) — and run the Responder over it.
  const bool flip_mode = opts.verify && opts.flip_count > 0;
  std::vector<std::vector<std::uint8_t>> expected_v2;
  if (flip_mode) {
    akadns::zone::ZoneStore flipped;
    const std::size_t flips = std::min(opts.flip_count, zones.zone_count());
    for (std::size_t rank = 0; rank < zones.zone_count(); ++rank) {
      flipped.publish(zones.evolved(rank, rank < flips ? opts.flip_generations : 0));
    }
    expected_v2 = akadns::net::expected_responses(corpus, flipped);
    std::fprintf(stderr, "computed %zu post-flip expected responses (%zu zones evolved)\n",
                 expected_v2.size(), flips);
  }

  akadns::net::LoadgenConfig config;
  config.target = targets.front();
  config.targets = targets;
  config.sockets = opts.sockets;
  config.batch = opts.batch;
  config.window = opts.window;
  config.rate = opts.rate;
  config.total_queries = opts.queries;
  config.response_timeout = akadns::Duration::millis(static_cast<std::int64_t>(opts.timeout_ms));
  config.retries = static_cast<std::size_t>(opts.retries);
  config.outage_gap = akadns::Duration::millis(static_cast<std::int64_t>(opts.outage_gap_ms));

  akadns::net::Loadgen loadgen(config, corpus, std::move(expected), std::move(expected_v2));
  const auto report = loadgen.run();

  std::printf("sent        %llu\n", (unsigned long long)report.sent);
  std::printf("received    %llu\n", (unsigned long long)report.received);
  std::printf("dropped     %llu\n", (unsigned long long)report.dropped);
  std::printf("mismatched  %llu\n", (unsigned long long)report.mismatched);
  std::printf("unexpected  %llu\n", (unsigned long long)report.unexpected);
  if (report.retransmits > 0 || opts.retries > 0) {
    std::printf("retransmits %llu\n", (unsigned long long)report.retransmits);
  }
  if (report.servfail > 0) {
    std::printf("servfail    %llu\n", (unsigned long long)report.servfail);
  }
  if (report.targets.size() > 1 || report.widest_outage_ns > 0) {
    for (const auto& t : report.targets) {
      std::printf("target      %s lanes=%zu sent=%llu received=%llu dropped=%llu"
                  " mismatched=%llu widest_outage_ms=%.1f\n",
                  t.target.to_string().c_str(), t.lanes, (unsigned long long)t.sent,
                  (unsigned long long)t.received, (unsigned long long)t.dropped,
                  (unsigned long long)t.mismatched,
                  static_cast<double>(t.widest_outage_ns) / 1e6);
    }
    for (const auto& w : report.outages) {
      std::printf("outage      first_loss_ms=%.1f last_loss_ms=%.1f width_ms=%.1f losses=%llu\n",
                  static_cast<double>(w.start_ns) / 1e6,
                  static_cast<double>(w.end_ns) / 1e6,
                  static_cast<double>(w.width_ns()) / 1e6,
                  (unsigned long long)w.losses);
    }
  }
  if (opts.attack_fraction > 0.0) {
    std::printf("legit       sent=%llu received=%llu dropped=%llu mismatched=%llu goodput=%.4f\n",
                (unsigned long long)report.legit.sent, (unsigned long long)report.legit.received,
                (unsigned long long)report.legit.dropped,
                (unsigned long long)report.legit.mismatched, report.legit.goodput());
    std::printf("attack      sent=%llu received=%llu dropped=%llu mismatched=%llu goodput=%.4f\n",
                (unsigned long long)report.attack.sent, (unsigned long long)report.attack.received,
                (unsigned long long)report.attack.dropped,
                (unsigned long long)report.attack.mismatched, report.attack.goodput());
  }
  if (opts.flip_count > 0 && opts.verify) {
    std::printf("flip        old=%llu new=%llu stale_old=%llu first_new_ms=%.1f\n",
                (unsigned long long)report.flip.old_answers,
                (unsigned long long)report.flip.new_answers,
                (unsigned long long)report.flip.stale_old,
                report.flip.first_new_ns >= 0
                    ? static_cast<double>(report.flip.first_new_ns) / 1e6
                    : -1.0);
  }
  std::printf("seconds     %.4f\n", report.seconds);
  std::printf("qps         %.0f\n", report.qps);
  std::printf("latency_us  p50=%.1f p90=%.1f p99=%.1f p99.9=%.1f max=%.1f\n", report.p50_us,
              report.p90_us, report.p99_us, report.p999_us, report.max_us);

  ServerScrape scrape;
  if (!opts.stats_url.empty()) {
    scrape = scrape_stats(opts.stats_url);
    if (scrape.ok) {
      std::printf("server      shed=%llu cache_hit_rate=%.4f zone_generation=%.0f"
                  " udp_packets=%llu\n",
                  (unsigned long long)scrape.shed, scrape.cache_hit_rate,
                  scrape.zone_generation, (unsigned long long)scrape.udp_packets);
    }
  }

  if (!opts.json_path.empty()) {
    std::ofstream out(opts.json_path);
    out << report_json(report, opts, scrape);
    std::fprintf(stderr, "wrote %s\n", opts.json_path.c_str());
  }

  if (opts.max_outage_ms >= 0) {
    // Failover-drill gate: a machine was killed or suspended on purpose,
    // so dropped queries are expected — inside a bounded window. The run
    // passes iff service recovered fast enough (widest outage window
    // under the budget), answers kept arriving, and every answer that
    // did arrive carried the right bytes. Late answers for slots the
    // sweep already expired surface as `unexpected`; during a drill they
    // are re-steered duplicates, not errors, so they do not gate.
    const double widest_ms = static_cast<double>(report.widest_outage_ns) / 1e6;
    const bool ok = report.mismatched == 0 && report.received > 0 &&
                    widest_ms <= static_cast<double>(opts.max_outage_ms);
    std::printf("drill gate: widest_outage_ms=%.1f (budget %lld), mismatched=%llu -> %s\n",
                widest_ms, (long long)opts.max_outage_ms,
                (unsigned long long)report.mismatched, ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }
  if (opts.attack_fraction > 0.0) {
    // Under an attack mix shed attack traffic is the *intended* outcome,
    // so total-drop counts cannot gate. The property that matters is
    // collateral damage: did legitimate traffic keep flowing, unchanged?
    if (opts.defense == "on") {
      bool ok = report.legit.goodput() >= opts.goodput_min &&
                report.legit.mismatched == 0 && report.legit.sent > 0;
      if (flip_mode) ok = ok && report.flip.stale_old == 0 && report.flip.new_answers > 0;
      std::printf("defense-on gate: legit goodput %.4f (floor %.2f), legit mismatches %llu -> %s\n",
                  report.legit.goodput(), opts.goodput_min,
                  (unsigned long long)report.legit.mismatched, ok ? "PASS" : "FAIL");
      return ok ? 0 : 1;
    }
    // Baseline (defense off): a measurement, not a gate.
    return report.sent > 0 ? 0 : 1;
  }
  bool ok = report.dropped == 0 && report.mismatched == 0 && report.unexpected == 0 &&
            report.servfail == 0;
  if (flip_mode) {
    // The live-reload gate: the flip must have been observed (the run
    // lasted past --flip-after-ms and new answers arrived) and no lane
    // may have seen a stale-serial answer after the new version.
    const bool flip_ok = report.flip.new_answers > 0 && report.flip.stale_old == 0;
    std::printf("flip gate: new_answers=%llu stale_old=%llu -> %s\n",
                (unsigned long long)report.flip.new_answers,
                (unsigned long long)report.flip.stale_old, flip_ok ? "PASS" : "FAIL");
    ok = ok && flip_ok;
  }
  return ok ? 0 : 1;
}
