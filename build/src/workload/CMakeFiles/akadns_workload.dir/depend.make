# Empty dependencies file for akadns_workload.
# This may be replaced when dependencies are built.
