// /healthz is the fleet's advisory view of a machine: it must flip to
// 503 the moment the machine self-suspends or begins draining, and back
// to 200 on resume — while the DNS path keeps answering in both
// degraded states. A suspended machine serves (the PoP may be below
// min_serving; an answer beats a SERVFAIL), it just tells the world to
// steer elsewhere. These transitions are what the probe suite's
// SIGUSR1/SIGUSR2 signals and the supervisor's drain ultimately toggle.

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dns/wire.hpp"
#include "net/server.hpp"
#include "obs/stats_http.hpp"
#include "zone/zone_builder.hpp"

namespace akadns::net {
namespace {

using dns::DnsName;
using dns::RecordType;

constexpr Ipv4Addr kLoopback(127, 0, 0, 1);

zone::ZoneStore make_store() {
  zone::ZoneStore store;
  store.publish(zone::ZoneBuilder("example.com", 1)
                    .ns("@", "ns1.example.com")
                    .a("ns1", "10.0.0.1")
                    .a("www", "93.184.216.34")
                    .build());
  return store;
}

int healthz_status(const std::string& base_url) {
  obs::HttpResponse response;
  std::string error;
  EXPECT_TRUE(obs::http_get(base_url + "/healthz", &response, &error)) << error;
  return response.status;
}

bool answers_query(std::uint16_t port, std::uint16_t id) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_storage dst{};
  const socklen_t len = sockaddr_from_endpoint(Endpoint{IpAddr(kLoopback), port}, dst);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&dst), len), 0);
  const auto wire =
      dns::encode(dns::make_query(id, DnsName::from("www.example.com"), RecordType::A));
  EXPECT_EQ(::send(fd, wire.data(), wire.size(), 0), static_cast<ssize_t>(wire.size()));
  pollfd pfd{fd, POLLIN, 0};
  const bool got = ::poll(&pfd, 1, 2000) == 1;
  if (got) {
    std::uint8_t buf[4096];
    EXPECT_GT(::recv(fd, buf, sizeof buf, 0), 0);
  }
  ::close(fd);
  return got;
}

TEST(HealthzTransitions, SuspensionAndDrainFlipReadiness) {
  zone::ZoneStore store = make_store();
  ServeConfig config;
  config.port = 0;
  config.workers = 1;

  Server server(config, store);
  auto started = server.start();
  ASSERT_TRUE(started) << started.error();

  obs::StatsServer stats([&server] { return server.metrics_snapshot(); },
                         [&server] { return server.ready(); });
  std::string error;
  ASSERT_TRUE(stats.start(0, &error)) << error;
  const std::string base_url = "http://127.0.0.1:" + std::to_string(stats.port());

  // Healthy: ready and answering.
  EXPECT_EQ(healthz_status(base_url), 200);
  EXPECT_TRUE(answers_query(server.udp_port(), 1));

  // Self-suspension: advisory endpoint says "steer away", the DNS path
  // stays up — exactly the degraded-but-serving state a quota-denied or
  // probe-suspended machine sits in.
  server.set_suspended(true);
  EXPECT_EQ(healthz_status(base_url), 503);
  EXPECT_TRUE(answers_query(server.udp_port(), 2));

  // Resume restores readiness.
  server.set_suspended(false);
  EXPECT_EQ(healthz_status(base_url), 200);
  EXPECT_TRUE(answers_query(server.udp_port(), 3));

  // Drain is one-way: not ready, and it stays not ready.
  server.begin_drain();
  EXPECT_EQ(healthz_status(base_url), 503);

  stats.stop();
  server.stop();
}

TEST(HealthzTransitions, SuspendedScrapeStaysLive) {
  // A suspended machine's /metrics must keep working: the probe suite's
  // advisory scrapes and an operator's dashboards both need visibility
  // into exactly the machines that are degraded.
  zone::ZoneStore store = make_store();
  ServeConfig config;
  config.port = 0;
  config.workers = 1;

  Server server(config, store);
  auto started = server.start();
  ASSERT_TRUE(started) << started.error();

  obs::StatsServer stats([&server] { return server.metrics_snapshot(); },
                         [&server] { return server.ready(); });
  std::string error;
  ASSERT_TRUE(stats.start(0, &error)) << error;
  const std::string base_url = "http://127.0.0.1:" + std::to_string(stats.port());

  server.set_suspended(true);
  obs::HttpResponse metrics;
  ASSERT_TRUE(obs::http_get(base_url + "/metrics", &metrics, &error)) << error;
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("akadns_"), std::string::npos);

  stats.stop();
  server.stop();
}

}  // namespace
}  // namespace akadns::net
