file(REMOVE_RECURSE
  "CMakeFiles/akadns_netsim.dir/failover_probe.cpp.o"
  "CMakeFiles/akadns_netsim.dir/failover_probe.cpp.o.d"
  "CMakeFiles/akadns_netsim.dir/network.cpp.o"
  "CMakeFiles/akadns_netsim.dir/network.cpp.o.d"
  "CMakeFiles/akadns_netsim.dir/topology.cpp.o"
  "CMakeFiles/akadns_netsim.dir/topology.cpp.o.d"
  "libakadns_netsim.a"
  "libakadns_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/akadns_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
