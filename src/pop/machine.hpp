// A purpose-built machine inside a PoP (Figure 6): the nameserver
// software, its BGP speaker, and hooks for hardware/software failure
// injection. "The most common failure mode we observe is disk failure,
// but any hardware subsystem can fail. Hardware failures often manifest
// in the nameserver software not responding, responding slowly, or
// responding with incorrect answers." (§4.2.1)
#pragma once

#include <memory>
#include <optional>

#include "pop/bgp_speaker.hpp"
#include "propagation/zone_subscriber.hpp"
#include "server/nameserver.hpp"

namespace akadns::pop {

enum class FailureType : std::uint8_t {
  Disk,                // most common: manifests as wrong/stale answers
  Memory,              // corrupt answers
  Nic,                 // packets silently lost
  SoftwareBug,         // no responses (hang)
  ConnectivityLoss,    // metadata AND queries cut off
  PartialConnectivity, // transit links down: metadata cut, queries still arrive
};

std::string to_string(FailureType f);

struct MachineConfig {
  std::string id = "machine";
  server::NameserverConfig nameserver{};
  bool input_delayed = false;
};

/// Machine-level accounting for packets that die before the nameserver
/// ever sees them (injected NIC/connectivity failures). Folded into the
/// fleet-wide conservation check by control/reporting.
struct MachineStats {
  obs::Counter delivered;  // packets handed to the nameserver
  DropCounters drops;      // NicFailure: lost below the stack

  /// Machine-level delivery counter plus the below-the-stack drop
  /// reasons, labelled like every other drop series.
  void register_into(obs::MetricRegistry& reg, const obs::LabelSet& base) const {
    reg.counter("akadns_machine_delivered_total", base, delivered,
                "packets handed to the nameserver by the (simulated) NIC");
    obs::register_drop_counters(reg, drops, base);
  }
};

class Machine {
 public:
  /// Machine serving from a shared (externally owned) zone store.
  Machine(MachineConfig config, const zone::ZoneStore& store);

  /// Machine owning a private zone-store replica, to be fed through the
  /// metadata pipeline (src/control). This is the production shape: each
  /// nameserver subscribes to zone/mapping publications and can therefore
  /// individually lag, go stale, or be input-delayed.
  explicit Machine(MachineConfig config);

  /// The private replica (nullptr for shared-store machines).
  zone::ZoneStore* local_store() noexcept { return owned_store_.get(); }

  /// Applies one published zone version to the private replica through
  /// the propagation subscriber (pointer-adopt fast path, delta replay,
  /// or full publish — whichever is the cheapest correct one) and
  /// refreshes the staleness clock. Only valid on replica-owning
  /// machines; shared-store machines receive zones out of band.
  void apply_zone_update(const propagation::ZoneUpdate& update, SimTime now);

  /// Propagation telemetry for the private replica (nullptr when the
  /// machine serves a shared store).
  const propagation::ZoneSyncStats* zone_sync_stats() const noexcept {
    return zone_sync_ ? &zone_sync_->stats() : nullptr;
  }

  /// The store this machine serves from (owned replica or the shared
  /// one) — the telemetry surface for publish-time compile stats.
  const zone::ZoneStore& zone_store() const noexcept { return *store_; }

  const std::string& id() const noexcept { return config_.id; }
  bool input_delayed() const noexcept { return config_.input_delayed; }

  server::Nameserver& nameserver() noexcept { return nameserver_; }
  const server::Nameserver& nameserver() const noexcept { return nameserver_; }
  BgpSpeaker& speaker() noexcept { return speaker_; }
  const BgpSpeaker& speaker() const noexcept { return speaker_; }

  // ---- datapath with failure semantics ------------------------------------

  /// Delivers a packet to the nameserver, subject to injected failures:
  /// NIC/connectivity failures drop it, software-bug failures swallow it
  /// (accepted but never answered — the "responding slowly/not at all"
  /// mode), disk/memory failures corrupt the eventual answer.
  void deliver(std::span<const std::uint8_t> wire, const Endpoint& source,
               std::uint8_t ip_ttl, SimTime now);

  /// Drives the nameserver's processing loop (all lanes inline).
  std::size_t pump(SimTime now);

  // Phased pump — the machine-level wrappers around the nameserver's
  // begin_phase/run_lane/end_phase, honoring injected failures. Pop::pump
  // uses these to drain many machines' lanes across a worker pool:
  //   begin (serial) → run lanes (any thread) → end (serial, in order).

  /// Serial. False when this machine has nothing to process this round
  /// (hung process, crashed/suspended nameserver, no backlog or tokens);
  /// end_pump_phase must not be called in that case.
  bool begin_pump_phase(SimTime now);
  /// Parallel-safe for distinct (machine, lane) pairs.
  void run_pump_lane(std::size_t lane, SimTime now) { nameserver_.run_lane(lane, now); }
  /// Serial. Returns the number of queries processed this phase.
  std::size_t end_pump_phase(SimTime now) { return nameserver_.end_phase(now); }

  /// Whether metadata deliveries currently reach this machine.
  bool metadata_reachable() const noexcept;

  const MachineStats& stats() const noexcept { return stats_; }

  /// Registers every metric this machine owns — nameserver lanes,
  /// defense engine, machine-level NIC accounting, and (for replica
  /// owners) zone-sync telemetry — under `base`. Shared zone stores are
  /// deliberately NOT registered here: the fleet collector registers
  /// each unique store once so shared compile stats are not multiplied
  /// by the machines pointing at them.
  void register_metrics(obs::MetricRegistry& reg, const obs::LabelSet& base) const {
    nameserver_.register_metrics(reg, base);
    stats_.register_into(reg, base);
    if (zone_sync_) zone_sync_->stats().register_into(reg, base);
  }

  // ---- failure injection ----------------------------------------------------

  void inject_failure(FailureType failure) noexcept { failure_ = failure; }
  void clear_failure() noexcept { failure_.reset(); }
  std::optional<FailureType> failure() const noexcept { return failure_; }

  /// Answers a health-probe question directly (the monitoring agent's
  /// test suite path); returns nullopt when the machine cannot answer,
  /// and a corrupted rcode when failing hardware garbles answers.
  std::optional<dns::Rcode> probe(const dns::Question& question, SimTime now);

 private:
  MachineConfig config_;
  std::unique_ptr<zone::ZoneStore> owned_store_;  // set before nameserver_
  const zone::ZoneStore* store_ = nullptr;        // whichever store serves
  /// Applies ZoneUpdates to the owned replica (null for shared stores).
  std::unique_ptr<propagation::ZoneSubscriber> zone_sync_;
  server::Nameserver nameserver_;
  BgpSpeaker speaker_;
  std::optional<FailureType> failure_;
  MachineStats stats_;
};

}  // namespace akadns::pop
