#include "obs/exposition.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace akadns::obs {

namespace {

constexpr double kQuantiles[] = {0.5, 0.9, 0.99, 0.999};

std::string escape_label(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string fmt_double(double v) {
  if (std::floor(v) == v && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

void append_labels(std::string& out, const LabelSet& ls) {
  if (ls.empty()) return;
  out.push_back('{');
  bool first = true;
  for (const auto& label : ls) {
    if (!first) out.push_back(',');
    first = false;
    out += label.key;
    out += "=\"";
    out += escape_label(label.value);
    out.push_back('"');
  }
  out.push_back('}');
}

void append_line(std::string& out, std::string_view name, const LabelSet& ls,
                 std::string_view value) {
  out += name;
  append_labels(out, ls);
  out.push_back(' ');
  out += value;
  out.push_back('\n');
}

std::string json_escape(std::string_view v) {
  std::string out;
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string render_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& fam : snap.families) {
    if (!fam.help.empty()) {
      out += "# HELP ";
      out += fam.name;
      out.push_back(' ');
      out += fam.help;
      out.push_back('\n');
    }
    out += "# TYPE ";
    out += fam.name;
    switch (fam.kind) {
      case MetricKind::Counter: out += " counter\n"; break;
      case MetricKind::Gauge: out += " gauge\n"; break;
      case MetricKind::Histogram: out += " summary\n"; break;
    }
    for (const auto& sample : fam.samples) {
      switch (fam.kind) {
        case MetricKind::Counter:
          append_line(out, fam.name, sample.labels, std::to_string(sample.counter));
          break;
        case MetricKind::Gauge:
          append_line(out, fam.name, sample.labels, fmt_double(sample.gauge));
          break;
        case MetricKind::Histogram: {
          for (const double q : kQuantiles) {
            append_line(out, fam.name, with(sample.labels, "quantile", fmt_double(q)),
                        fmt_double(sample.hist.quantile(q)));
          }
          append_line(out, fam.name + "_count", sample.labels,
                      std::to_string(sample.hist.count()));
          append_line(out, fam.name + "_sum", sample.labels,
                      fmt_double(sample.hist.sum()));
          append_line(out, fam.name + "_min", sample.labels,
                      fmt_double(sample.hist.min()));
          append_line(out, fam.name + "_max", sample.labels,
                      fmt_double(sample.hist.max()));
          break;
        }
      }
    }
  }
  return out;
}

std::string render_json(const MetricsSnapshot& snap) {
  std::string out = "{\n";
  bool first_fam = true;
  for (const auto& fam : snap.families) {
    if (!first_fam) out += ",\n";
    first_fam = false;
    out += "  \"";
    out += json_escape(fam.name);
    out += "\": [";
    bool first_sample = true;
    for (const auto& sample : fam.samples) {
      if (!first_sample) out.push_back(',');
      first_sample = false;
      out += "\n    {\"labels\": {";
      bool first_label = true;
      for (const auto& label : sample.labels) {
        if (!first_label) out += ", ";
        first_label = false;
        out.push_back('"');
        out += json_escape(label.key);
        out += "\": \"";
        out += json_escape(label.value);
        out.push_back('"');
      }
      out += "}, ";
      switch (fam.kind) {
        case MetricKind::Counter:
          out += "\"value\": " + std::to_string(sample.counter);
          break;
        case MetricKind::Gauge:
          out += "\"value\": " + fmt_double(sample.gauge);
          break;
        case MetricKind::Histogram:
          out += "\"count\": " + std::to_string(sample.hist.count());
          out += ", \"mean\": " + fmt_double(sample.hist.mean());
          out += ", \"p50\": " + fmt_double(sample.hist.quantile(0.5));
          out += ", \"p99\": " + fmt_double(sample.hist.quantile(0.99));
          out += ", \"max\": " + fmt_double(sample.hist.max());
          break;
      }
      out.push_back('}');
    }
    out += "\n  ]";
  }
  out += "\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("exposition parse error at line " +
                           std::to_string(line_no) + ": " + what);
}

}  // namespace

Exposition Exposition::parse(std::string_view text) {
  Exposition out;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(pos, eol == std::string_view::npos
                                                 ? std::string_view::npos
                                                 : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# TYPE <name> <kind>" — record the family; ignore HELP/other.
      constexpr std::string_view kType = "# TYPE ";
      if (line.substr(0, kType.size()) == kType) {
        std::string_view rest = line.substr(kType.size());
        const std::size_t sp = rest.find(' ');
        if (sp == std::string_view::npos || sp == 0) fail(line_no, "malformed TYPE");
        out.families_.emplace_back(rest.substr(0, sp));
      }
      continue;
    }
    ParsedSample sample;
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    if (i == 0) fail(line_no, "missing metric name");
    sample.name.assign(line.substr(0, i));
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        const std::size_t eq = line.find('=', i);
        if (eq == std::string_view::npos || eq == i) fail(line_no, "malformed label");
        Label label;
        label.key.assign(line.substr(i, eq - i));
        if (eq + 1 >= line.size() || line[eq + 1] != '"') {
          fail(line_no, "label value not quoted");
        }
        std::size_t j = eq + 2;
        while (j < line.size() && line[j] != '"') {
          if (line[j] == '\\') {
            if (j + 1 >= line.size()) fail(line_no, "truncated escape");
            ++j;
            switch (line[j]) {
              case 'n': label.value.push_back('\n'); break;
              case '\\': label.value.push_back('\\'); break;
              case '"': label.value.push_back('"'); break;
              default: fail(line_no, "bad escape");
            }
          } else {
            label.value.push_back(line[j]);
          }
          ++j;
        }
        if (j >= line.size()) fail(line_no, "unterminated label value");
        sample.labels.push_back(std::move(label));
        i = j + 1;
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i >= line.size() || line[i] != '}') fail(line_no, "unterminated label set");
      ++i;
    }
    if (i >= line.size() || line[i] != ' ') fail(line_no, "missing value");
    ++i;
    const std::string value_str(line.substr(i));
    char* end = nullptr;
    sample.value = std::strtod(value_str.c_str(), &end);
    if (end == value_str.c_str() || (end && *end != '\0')) {
      fail(line_no, "bad value: " + value_str);
    }
    std::sort(sample.labels.begin(), sample.labels.end());
    out.samples_.push_back(std::move(sample));
  }
  return out;
}

bool Exposition::has(std::string_view name) const noexcept {
  return std::any_of(samples_.begin(), samples_.end(),
                     [&](const ParsedSample& s) { return s.name == name; });
}

double Exposition::value(std::string_view name, const LabelSet& ls) const {
  LabelSet sorted = ls;
  std::sort(sorted.begin(), sorted.end());
  for (const auto& sample : samples_) {
    if (sample.name == name && sample.labels == sorted) return sample.value;
  }
  throw std::out_of_range("no sample " + std::string(name));
}

double Exposition::sum(std::string_view name, const LabelSet& filter) const noexcept {
  double total = 0.0;
  for (const auto& sample : samples_) {
    if (sample.name != name) continue;
    bool match = true;
    for (const auto& want : filter) {
      if (std::find(sample.labels.begin(), sample.labels.end(), want) ==
          sample.labels.end()) {
        match = false;
        break;
      }
    }
    if (match) total += sample.value;
  }
  return total;
}

}  // namespace akadns::obs
