file(REMOVE_RECURSE
  "../bench/bench_attack_taxonomy"
  "../bench/bench_attack_taxonomy.pdb"
  "CMakeFiles/bench_attack_taxonomy.dir/bench_attack_taxonomy.cpp.o"
  "CMakeFiles/bench_attack_taxonomy.dir/bench_attack_taxonomy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attack_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
