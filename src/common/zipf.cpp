#include "common/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace akadns {

ZipfSampler::ZipfSampler(std::size_t n, double s, double q) : s_(s), q_(q) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be >= 1");
  if (!(s > 0.0)) throw std::invalid_argument("ZipfSampler: s must be > 0");
  if (q < 0.0) throw std::invalid_argument("ZipfSampler: q must be >= 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1) + q, s);
    cdf_[k] = acc;
  }
  const double total = acc;
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const noexcept {
  if (rank >= cdf_.size()) return 0.0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

double ZipfSampler::cdf(std::size_t k) const noexcept {
  if (k == 0) return 0.0;
  if (k >= cdf_.size()) return 1.0;
  return cdf_[k - 1];
}

double ZipfSampler::calibrate_exponent(std::size_t n, double top_fraction,
                                       double mass_fraction, double q) {
  if (n == 0) throw std::invalid_argument("calibrate_exponent: n must be >= 1");
  const auto top_k = std::max<std::size_t>(1, static_cast<std::size_t>(
                                                  top_fraction * static_cast<double>(n)));
  // Mass of the top k is monotonically increasing in s, so bisect.
  auto mass_at = [&](double s) {
    double top = 0.0, total = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      const double p = 1.0 / std::pow(static_cast<double>(k + 1) + q, s);
      total += p;
      if (k < top_k) top += p;
    }
    return top / total;
  };
  double lo = 0.01, hi = 8.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (mass_at(mid) < mass_fraction) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace akadns
