// §5.2 "Measuring r_T": over one day of logs for "w10.akamai.net", the
// paper computes per-resolver r_T = toplevel queries / lowlevel queries
// for 575K resolvers — mean 0.48, but query-weighted mean only 0.008
// (busy resolvers keep the delegation cached).
//
// Reproduced with the resolver-cache simulation across the calibrated
// query-weighted resolver population, plus the closed-form cross-check.

#include "bench_util.hpp"
#include "twotier/rt_simulator.hpp"
#include "workload/population.hpp"

using namespace akadns;
using namespace akadns::twotier;

int main() {
  bench::heading("r_T estimation across the resolver population",
                 "§5.2 — mean r_T 0.48; query-weighted mean 0.008");

  workload::ResolverPopulation population(
      {.resolver_count = 30'000, .asn_count = 1'500}, 7);
  Rng rng(8);
  RtSimConfig config;
  config.duration = Duration::hours(24);
  // Aggregate demand for this one CDN property. A resolver's demand for
  // one specific hostname disperses far more widely than its total query
  // volume (user populations differ in what they browse), modelled by a
  // lognormal per-resolver interest factor on top of the global weight.
  const double name_qps_total = 120.0;
  const double interest_sigma = 3.2;

  double sum_rt = 0, weighted_rt = 0, total_weight = 0;
  std::size_t counted = 0;
  EmpiricalDistribution rt_per_resolver;
  const std::size_t stride = 10;  // simulate a 3,000-resolver sample
  for (std::size_t i = 0; i < population.size(); i += stride) {
    const auto& resolver = population.resolver(i);
    const double interest = rng.next_lognormal(0.0, interest_sigma);
    const double qps = resolver.weight * name_qps_total * interest;
    const auto estimate = simulate_rt(qps, config, rng);
    if (estimate.resolutions == 0) continue;  // never asked for the name
    const double rt = estimate.r_t();
    sum_rt += rt;
    weighted_rt += rt * static_cast<double>(estimate.resolutions);
    total_weight += static_cast<double>(estimate.resolutions);
    rt_per_resolver.add(rt);
    ++counted;
  }

  bench::subheading("measured");
  bench::print_row("resolvers with traffic for the name",
                   static_cast<double>(counted), "");
  bench::print_row("mean r_T (paper 0.48)", sum_rt / static_cast<double>(counted), "");
  bench::print_row("query-weighted mean r_T (paper 0.008)", weighted_rt / total_weight, "");
  bench::print_row("median r_T", rt_per_resolver.median(), "");

  bench::subheading("closed-form cross-check by resolver rate");
  std::printf("%16s  %10s  %10s\n", "resolver qps", "analytic", "simulated");
  for (const double qps : {100.0, 10.0, 1.0, 0.1, 0.01, 0.001, 0.0001}) {
    Rng check_rng(9);
    RtSimConfig long_config;
    long_config.duration = Duration::days(30);
    const auto sim = simulate_rt(qps, long_config, check_rng);
    std::printf("%16.4f  %10.4f  %10.4f\n", qps, analytic_rt(qps, long_config),
                sim.resolutions ? sim.r_t() : 1.0);
  }
  std::printf("\n(r_T falls from ~1 for idle resolvers to host_ttl/delegation_ttl\n"
              " ~ 0.005 for busy ones; the skewed volume distribution is what\n"
              " separates the plain mean from the query-weighted mean.)\n");
  return 0;
}
