// Figure 9: "Decision tree of anycast traffic engineering actions taken
// during an attack" (§4.3.2). Exercises every leaf over the full
// condition matrix and demonstrates leaf III/IV/V as concrete per-peer
// export actions on the simulated network.

#include "bench_util.hpp"
#include "core/decision_tree.hpp"
#include "netsim/topology.hpp"

using namespace akadns;
using namespace akadns::core;

int main() {
  bench::heading("Figure 9: traffic-engineering decision tree",
                 "§4.3.2 Figure 9 — operator playbook during DDoS");

  bench::subheading("full condition matrix");
  std::printf("%8s %10s %9s %8s  action\n", "DoSed", "congested", "compute", "spread");
  for (const bool dosed : {false, true}) {
    for (const bool congested : {false, true}) {
      for (const bool compute : {false, true}) {
        for (const bool spread : {false, true}) {
          const AttackConditions conditions{dosed, congested, compute, spread};
          std::printf("%8s %10s %9s %8s  %s\n", dosed ? "yes" : "no",
                      congested ? "yes" : "no", compute ? "yes" : "no",
                      spread ? "yes" : "no", to_string(decide(conditions)).c_str());
        }
      }
    }
  }

  bench::subheading("leaf rationales");
  for (const AttackConditions conditions :
       {AttackConditions{false, false, false, false},
        AttackConditions{true, false, false, false},
        AttackConditions{true, false, true, false},
        AttackConditions{true, true, false, true},
        AttackConditions{true, true, true, false}}) {
    std::printf("  * %s\n", explain(conditions).c_str());
  }

  // Demonstrate the withdraw actions as per-peer export control: a PoP
  // with three peers withdraws the route from the attack-sourcing link
  // only (leaf IV) and legitimate traffic through the other peers is
  // unaffected.
  bench::subheading("leaf IV as per-peer export control (netsim demo)");
  EventScheduler sched;
  netsim::NetworkConfig nconfig;
  nconfig.slow_mrai_fraction = 0.0;
  netsim::Network net(sched, nconfig, 7);
  const auto pop = net.add_node("pop");
  const auto attack_peer = net.add_node("attack-peer");
  const auto clean_peer1 = net.add_node("clean-peer-1");
  const auto clean_peer2 = net.add_node("clean-peer-2");
  for (const auto peer : {attack_peer, clean_peer1, clean_peer2}) {
    net.add_link(peer, pop, Duration::millis(5), netsim::LinkKind::ProviderToCustomer);
  }
  net.advertise(pop, 1);
  sched.run();
  std::printf("  before: attack-peer routed=%d clean-1 routed=%d clean-2 routed=%d\n",
              net.has_route(attack_peer, 1), net.has_route(clean_peer1, 1),
              net.has_route(clean_peer2, 1));
  net.set_export_enabled(pop, attack_peer, 1, false);  // leaf IV
  sched.run();
  std::printf("  after withdrawing from the attack-sourcing link:\n");
  std::printf("          attack-peer routed=%d clean-1 routed=%d clean-2 routed=%d\n",
              net.has_route(attack_peer, 1), net.has_route(clean_peer1, 1),
              net.has_route(clean_peer2, 1));
  std::printf("  (attack traffic now reroutes or drops upstream; legitimate\n"
              "   traffic through the clean peers is untouched)\n");
  return 0;
}
