# Empty dependencies file for bench_fig12_restime.
# This may be replaced when dependencies are built.
