file(REMOVE_RECURSE
  "CMakeFiles/akadns_common.dir/event_scheduler.cpp.o"
  "CMakeFiles/akadns_common.dir/event_scheduler.cpp.o.d"
  "CMakeFiles/akadns_common.dir/ip.cpp.o"
  "CMakeFiles/akadns_common.dir/ip.cpp.o.d"
  "CMakeFiles/akadns_common.dir/leaky_bucket.cpp.o"
  "CMakeFiles/akadns_common.dir/leaky_bucket.cpp.o.d"
  "CMakeFiles/akadns_common.dir/rng.cpp.o"
  "CMakeFiles/akadns_common.dir/rng.cpp.o.d"
  "CMakeFiles/akadns_common.dir/stats.cpp.o"
  "CMakeFiles/akadns_common.dir/stats.cpp.o.d"
  "CMakeFiles/akadns_common.dir/strings.cpp.o"
  "CMakeFiles/akadns_common.dir/strings.cpp.o.d"
  "CMakeFiles/akadns_common.dir/token_bucket.cpp.o"
  "CMakeFiles/akadns_common.dir/token_bucket.cpp.o.d"
  "CMakeFiles/akadns_common.dir/zipf.cpp.o"
  "CMakeFiles/akadns_common.dir/zipf.cpp.o.d"
  "libakadns_common.a"
  "libakadns_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/akadns_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
