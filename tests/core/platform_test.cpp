#include "core/platform.hpp"

#include <gtest/gtest.h>

#include "zone/zone_builder.hpp"

namespace akadns::core {
namespace {

using dns::DnsName;
using dns::Rcode;
using dns::RecordType;

PlatformConfig small_config() {
  PlatformConfig config;
  config.topology.tier1_count = 3;
  config.topology.tier2_count = 8;
  config.topology.edge_count = 12;
  config.network.slow_mrai_fraction = 0.0;
  config.seed = 11;
  return config;
}

zone::Zone example_zone(std::uint32_t serial = 1, const char* www = "93.184.216.34") {
  return zone::ZoneBuilder("example.com", serial)
      .soa("ns1.example.com", "admin.example.com", serial)
      .ns("@", "ns1.example.com")
      .a("ns1", "10.0.0.1")
      .a("www", www)
      .build();
}

struct Fixture {
  Platform platform{small_config()};
  netsim::NodeId client_node = netsim::kInvalidNode;
  Endpoint client{*IpAddr::parse("198.51.100.53"), 5353};

  Fixture() {
    platform.build_internet();
    client_node = platform.topology().edges.back();
  }

  void add_default_pops(std::size_t count = 2, std::size_t machines = 2) {
    for (std::size_t i = 0; i < count; ++i) {
      platform.add_pop(platform.topology().edges[i], machines, {1});
    }
  }

  /// Sends a query and runs the sim until the response (or timeout).
  std::optional<dns::Message> ask(const char* qname, RecordType qtype,
                                  std::uint16_t id = 1) {
    std::optional<dns::Message> response;
    auto query = dns::make_query(id, DnsName::from(qname), qtype);
    platform.send_query(client_node, client, 57, query, 1,
                        [&](std::optional<dns::Message> r, Duration) {
                          response = std::move(r);
                        });
    platform.run_until(platform.scheduler().now() + Duration::seconds(5));
    return response;
  }
};

TEST(Platform, EndToEndQueryThroughAnycast) {
  Fixture f;
  f.add_default_pops();
  f.platform.host_zone(example_zone());
  f.platform.run_until(f.platform.scheduler().now() + Duration::seconds(10));

  const auto response = f.ask("www.example.com", RecordType::A);
  ASSERT_TRUE(response);
  EXPECT_EQ(response->header.rcode, Rcode::NoError);
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_EQ(std::get<dns::ARecord>(response->answers[0].rdata).address.to_string(),
            "93.184.216.34");
  EXPECT_EQ(f.platform.responses_received(), 1u);
  EXPECT_EQ(f.platform.timeouts(), 0u);
}

TEST(Platform, ZoneUpdatePropagatesWithinSeconds) {
  Fixture f;
  f.add_default_pops();
  f.platform.host_zone(example_zone(1, "10.0.0.2"));
  f.platform.run_until(f.platform.scheduler().now() + Duration::seconds(10));
  // Publish a new version; within seconds all machines answer with it.
  f.platform.host_zone(example_zone(2, "10.0.0.99"));
  f.platform.run_until(f.platform.scheduler().now() + Duration::seconds(10));
  const auto response = f.ask("www.example.com", RecordType::A, 2);
  ASSERT_TRUE(response);
  ASSERT_FALSE(response->answers.empty());
  EXPECT_EQ(std::get<dns::ARecord>(response->answers[0].rdata).address.to_string(),
            "10.0.0.99");
}

TEST(Platform, UnhostedZoneRefused) {
  Fixture f;
  f.add_default_pops();
  f.platform.host_zone(example_zone());
  f.platform.run_until(f.platform.scheduler().now() + Duration::seconds(10));
  const auto response = f.ask("www.not-ours.org", RecordType::A);
  ASSERT_TRUE(response);
  EXPECT_EQ(response->header.rcode, Rcode::Refused);
}

TEST(Platform, PopFailureAnycastFailover) {
  Fixture f;
  f.add_default_pops(2, 1);
  f.platform.host_zone(example_zone());
  f.platform.run_until(f.platform.scheduler().now() + Duration::seconds(10));
  ASSERT_TRUE(f.ask("www.example.com", RecordType::A, 1));

  // All machines in PoP 0 withdraw (e.g. crashed); routes shift to PoP 1.
  for (auto* machine : f.platform.pop_at(0).machines()) {
    machine->speaker().withdraw_all();
  }
  f.platform.run_until(f.platform.scheduler().now() + Duration::seconds(30));
  const auto response = f.ask("www.example.com", RecordType::A, 2);
  ASSERT_TRUE(response);
  EXPECT_EQ(response->header.rcode, Rcode::NoError);
  // PoP 1 served it.
  EXPECT_GT(f.platform.pop_at(1).machine(0).nameserver().stats().responses_sent, 0u);
}

TEST(Platform, TotalWithdrawalTimesOut) {
  Fixture f;
  f.add_default_pops(1, 1);
  f.platform.host_zone(example_zone());
  f.platform.run_until(f.platform.scheduler().now() + Duration::seconds(10));
  f.platform.pop_at(0).machine(0).speaker().withdraw_all();
  f.platform.run_until(f.platform.scheduler().now() + Duration::seconds(30));
  const auto response = f.ask("www.example.com", RecordType::A);
  EXPECT_FALSE(response);
  EXPECT_EQ(f.platform.timeouts(), 1u);
}

TEST(Platform, DynamicDomainAnsweredByMapping) {
  Fixture f;
  f.add_default_pops();
  // CDN-style zones: the parent and the dynamic zone itself; hostnames
  // under w10 come from Mapping Intelligence (the hook only fires on
  // machines authoritative for w10.akamai.net).
  f.platform.host_zone(zone::ZoneBuilder("akamai.net", 1)
                           .soa("ns1.akamai.net", "admin.akamai.net", 1)
                           .ns("@", "ns1.akamai.net")
                           .a("ns1", "10.1.0.1")
                           .ns("w10", "n1.w10.akamai.net", 4000)
                           .a("n1.w10", "10.2.0.1", 4000)
                           .build());
  f.platform.host_zone(zone::ZoneBuilder("w10.akamai.net", 1)
                           .soa("n1.w10.akamai.net", "admin.akamai.net", 1)
                           .ns("@", "n1.w10.akamai.net")
                           .a("n1", "10.2.0.1")
                           .build());
  f.platform.register_dynamic_domain(DnsName::from("w10.akamai.net"), 1);
  f.platform.mapping().add_site(
      {"near", *IpAddr::parse("172.16.1.1"), {0.0, 0.0}, 0.0, true});
  f.platform.mapping().add_site(
      {"far", *IpAddr::parse("172.16.2.1"), {500.0, 0.0}, 0.0, true});
  f.platform.mapping().register_client_prefix(*IpPrefix::parse("198.51.100.0/24"),
                                              {10.0, 0.0});
  f.platform.run_until(f.platform.scheduler().now() + Duration::seconds(10));

  const auto response = f.ask("a1.w10.akamai.net", RecordType::A);
  ASSERT_TRUE(response);
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_EQ(std::get<dns::ARecord>(response->answers[0].rdata).address.to_string(),
            "172.16.1.1");
  EXPECT_EQ(response->answers[0].ttl, 20u);

  // Site death remaps within one TTL.
  f.platform.mapping().set_site_alive("near", false);
  const auto remapped = f.ask("a1.w10.akamai.net", RecordType::A, 2);
  ASSERT_TRUE(remapped);
  ASSERT_FALSE(remapped->answers.empty());
  EXPECT_EQ(std::get<dns::ARecord>(remapped->answers[0].rdata).address.to_string(),
            "172.16.2.1");
}

TEST(Platform, InputDelayedMachineServesDuringInputInducedOutage) {
  Fixture f;
  f.platform.add_pop(f.platform.topology().edges[0], 1, {1},
                     /*include_input_delayed=*/true);
  f.platform.host_zone(example_zone());
  f.platform.run_until(f.platform.scheduler().now() + Duration::seconds(10));

  auto& pop = f.platform.pop_at(0);
  ASSERT_EQ(pop.machine_count(), 2u);
  // Regular machine crashes on a poisoned input and withdraws.
  pop.machine(0).nameserver().self_suspend();
  pop.machine(0).speaker().withdraw_all();
  f.platform.run_until(f.platform.scheduler().now() + Duration::seconds(5));

  // The input-delayed machine (which has not yet received the 1-hour-
  // delayed zone data? it has, after 1h sim-warm-up we skip) — here the
  // key property: the PoP keeps advertising and the delayed machine is
  // now in the ECMP set.
  EXPECT_TRUE(pop.advertising(1));
  const auto eligible = pop.ecmp_set(1);
  ASSERT_EQ(eligible.size(), 1u);
  EXPECT_TRUE(eligible[0]->input_delayed());
}

TEST(Platform, QueriesCountersTrack) {
  Fixture f;
  f.add_default_pops(1, 1);
  f.platform.host_zone(example_zone());
  f.platform.run_until(f.platform.scheduler().now() + Duration::seconds(10));
  f.ask("www.example.com", RecordType::A, 1);
  f.ask("www.example.com", RecordType::A, 2);
  EXPECT_EQ(f.platform.queries_sent(), 2u);
  EXPECT_EQ(f.platform.responses_received(), 2u);
}

}  // namespace
}  // namespace akadns::core
