#include "common/token_bucket.hpp"

#include <algorithm>

namespace akadns {

TokenBucket::TokenBucket(double rate_per_sec, double capacity) noexcept
    : rate_(std::max(rate_per_sec, 0.0)),
      capacity_(std::max(capacity, 0.0)),
      tokens_(capacity_) {}

void TokenBucket::refill(SimTime now) noexcept {
  if (now <= last_) return;
  const double elapsed = (now - last_).to_seconds();
  tokens_ = std::min(capacity_, tokens_ + elapsed * rate_);
  last_ = now;
}

bool TokenBucket::try_take(SimTime now, double tokens) noexcept {
  refill(now);
  if (tokens_ < tokens) return false;
  tokens_ -= tokens;
  return true;
}

void TokenBucket::credit(double tokens) noexcept {
  tokens_ = std::min(capacity_, tokens_ + std::max(tokens, 0.0));
}

double TokenBucket::available(SimTime now) noexcept {
  refill(now);
  return tokens_;
}

Duration TokenBucket::time_until_available(SimTime now, double tokens) noexcept {
  refill(now);
  if (tokens_ >= tokens) return Duration::zero();
  if (rate_ <= 0.0) return Duration::max();
  return Duration::seconds_f((tokens - tokens_) / rate_);
}

}  // namespace akadns
