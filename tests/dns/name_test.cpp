#include "dns/name.hpp"

#include <gtest/gtest.h>

namespace akadns::dns {
namespace {

TEST(DnsName, ParseBasic) {
  const auto name = DnsName::parse("www.Example.COM");
  ASSERT_TRUE(name);
  EXPECT_EQ(name->label_count(), 3u);
  EXPECT_EQ(name->to_string(), "www.example.com.");
}

TEST(DnsName, RootForms) {
  EXPECT_TRUE(DnsName::parse("")->is_root());
  EXPECT_TRUE(DnsName::parse(".")->is_root());
  EXPECT_EQ(DnsName().to_string(), ".");
  EXPECT_EQ(DnsName().wire_length(), 1u);
}

TEST(DnsName, TrailingDotOptional) {
  EXPECT_EQ(*DnsName::parse("a.b."), *DnsName::parse("a.b"));
}

TEST(DnsName, RejectsEmptyLabels) {
  EXPECT_FALSE(DnsName::parse("a..b"));
  EXPECT_FALSE(DnsName::parse(".a"));
}

TEST(DnsName, RejectsOversizedLabel) {
  const std::string longest(63, 'x');
  EXPECT_TRUE(DnsName::parse(longest + ".com"));
  const std::string too_long(64, 'x');
  EXPECT_FALSE(DnsName::parse(too_long + ".com"));
}

TEST(DnsName, RejectsOversizedName) {
  // Four 63-byte labels => 4*64+1 = 257 > 255.
  const std::string label(63, 'a');
  const std::string name = label + "." + label + "." + label + "." + label;
  EXPECT_FALSE(DnsName::parse(name));
}

TEST(DnsName, WireLength) {
  EXPECT_EQ(DnsName::from("www.example.com").wire_length(), 17u);  // 3+1+7+1+3+1+1
}

TEST(DnsName, FromThrowsOnInvalid) {
  EXPECT_THROW(DnsName::from("bad..name"), std::invalid_argument);
  EXPECT_NO_THROW(DnsName::from("ok.name"));
}

TEST(DnsName, Parent) {
  const auto name = DnsName::from("a.b.c");
  EXPECT_EQ(name.parent().to_string(), "b.c.");
  EXPECT_TRUE(DnsName::from("c").parent().is_root());
  EXPECT_TRUE(DnsName().parent().is_root());
}

TEST(DnsName, PrependAndConcat) {
  const auto base = DnsName::from("example.com");
  EXPECT_EQ(base.prepend("www")->to_string(), "www.example.com.");
  const auto combined = DnsName::from("a.b").concat(base);
  ASSERT_TRUE(combined);
  EXPECT_EQ(combined->to_string(), "a.b.example.com.");
}

TEST(DnsName, SubdomainChecks) {
  const auto apex = DnsName::from("example.com");
  EXPECT_TRUE(DnsName::from("example.com").is_subdomain_of(apex));
  EXPECT_TRUE(DnsName::from("a.b.example.com").is_subdomain_of(apex));
  EXPECT_FALSE(DnsName::from("example.org").is_subdomain_of(apex));
  EXPECT_FALSE(DnsName::from("badexample.com").is_subdomain_of(apex));
  EXPECT_TRUE(apex.is_subdomain_of(DnsName()));  // everything under root
}

TEST(DnsName, CommonSuffix) {
  EXPECT_EQ(DnsName::from("a.b.example.com")
                .common_suffix_labels(DnsName::from("x.example.com")),
            2u);
  EXPECT_EQ(DnsName::from("a.com").common_suffix_labels(DnsName::from("a.org")), 0u);
}

TEST(DnsName, Suffix) {
  const auto name = DnsName::from("a.b.c.d");
  EXPECT_EQ(name.suffix(2).to_string(), "c.d.");
  EXPECT_EQ(name.suffix(0).to_string(), ".");
  EXPECT_EQ(name.suffix(99), name);
}

TEST(DnsName, CanonicalOrdering) {
  // RFC 4034 §6.1 example ordering: compare right-to-left.
  EXPECT_LT(DnsName::from("example.com"), DnsName::from("a.example.com"));
  EXPECT_LT(DnsName::from("a.example.com"), DnsName::from("b.example.com"));
  EXPECT_LT(DnsName::from("b.example.com"), DnsName::from("a.b.example.com"));
  EXPECT_LT(DnsName(), DnsName::from("com"));
}

TEST(DnsName, SubtreeIsContiguousInCanonicalOrder) {
  // Property the zone ENT detection relies on: upper_bound(name) yields a
  // descendant iff the subtree is non-empty.
  const auto parent = DnsName::from("b.example.com");
  const auto child = DnsName::from("a.b.example.com");
  const auto sibling = DnsName::from("c.example.com");
  EXPECT_LT(parent, child);
  EXPECT_LT(child, sibling);
}

TEST(DnsName, CaseInsensitiveEquality) {
  EXPECT_EQ(DnsName::from("WWW.EXAMPLE.COM"), DnsName::from("www.example.com"));
  EXPECT_EQ(DnsName::from("WWW.EXAMPLE.COM").hash(), DnsName::from("www.example.com").hash());
}

TEST(DnsName, HashDiffers) {
  EXPECT_NE(DnsName::from("a.example.com").hash(), DnsName::from("b.example.com").hash());
}

TEST(DnsName, FromLabelsValidation) {
  EXPECT_TRUE(DnsName::from_labels({"a", "b"}));
  EXPECT_FALSE(DnsName::from_labels({"a", ""}));
  EXPECT_FALSE(DnsName::from_labels({std::string(64, 'x')}));
}

}  // namespace
}  // namespace akadns::dns
