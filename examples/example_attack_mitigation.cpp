// Attack mitigation walkthrough (§4.3): a nameserver with the full
// query-scoring pipeline survives a random-subdomain attack that would
// otherwise starve legitimate resolvers.
//
// The run prints three phases: calm traffic, the attack without the
// NXDOMAIN filter armed (legitimate goodput collapses), and the attack
// with the scoring pipeline active (goodput recovers).

#include <cstdio>

#include "dns/wire.hpp"
#include "filters/nxdomain_filter.hpp"
#include "filters/rate_limit_filter.hpp"
#include "server/nameserver.hpp"
#include "workload/attacks.hpp"

using namespace akadns;

namespace {

struct Scenario {
  workload::ResolverPopulation population{{.resolver_count = 5'000, .asn_count = 200}, 1};
  workload::HostedZones zones{{.zone_count = 300, .wildcard_fraction = 0.0}, 2};
};

/// Drives `seconds` of traffic at the nameserver: legit_qps legitimate
/// queries plus attack_qps random-subdomain queries. Returns the
/// fraction of legitimate queries answered.
double run_phase(Scenario& scenario, server::Nameserver& nameserver, double legit_qps,
                 double attack_qps, double seconds, SimTime& clock) {
  workload::QueryGenerator legit(scenario.population, scenario.zones, 77);
  workload::RandomSubdomainAttack attack({.target_zone_rank = 0}, scenario.population,
                                         scenario.zones, 78);
  Rng rng(79);
  std::uint64_t legit_sent = 0, legit_answered = 0;
  std::uint16_t id = 1;

  // Track which transaction ids belong to legitimate queries.
  std::vector<bool> is_legit(65536, false);
  nameserver.set_response_sink([&](const Endpoint&, std::vector<std::uint8_t> wire) {
    if (wire.size() >= 2) {
      const std::uint16_t rid = static_cast<std::uint16_t>((wire[0] << 8) | wire[1]);
      if (is_legit[rid]) ++legit_answered;
    }
  });

  const double step = 1e-3;  // 1 ms simulation step
  for (double t = 0; t < seconds; t += step) {
    clock += Duration::millis(1);
    // Interleave legitimate and attack arrivals randomly within the step
    // (ordering one class first would bias queue admission under
    // overload).
    const auto legit_arrivals = rng.next_poisson(legit_qps * step);
    const auto attack_arrivals = rng.next_poisson(attack_qps * step);
    std::vector<bool> arrivals;
    arrivals.insert(arrivals.end(), legit_arrivals, true);
    arrivals.insert(arrivals.end(), attack_arrivals, false);
    rng.shuffle(arrivals);
    for (const bool legit_arrival : arrivals) {
      const auto q = legit_arrival ? legit.next() : attack.next();
      auto query = dns::make_query(id, q.qname, q.qtype);
      is_legit[id] = legit_arrival;
      ++id;
      if (legit_arrival) ++legit_sent;
      nameserver.receive(dns::encode(query), q.source, q.ip_ttl, clock);
    }
    nameserver.process(clock);
  }
  return legit_sent == 0 ? 1.0
                         : static_cast<double>(legit_answered) /
                               static_cast<double>(legit_sent);
}

server::Nameserver make_nameserver(Scenario& scenario, bool with_filters) {
  server::NameserverConfig config;
  config.id = with_filters ? "filtered-ns" : "unfiltered-ns";
  config.compute_capacity_qps = 5'000.0;  // modest machine
  config.io_capacity_qps = 100'000.0;
  // Thresholds chosen so a rate-limit penalty (60) alone maps to the
  // middle queue, while rate-limit + NXDOMAIN (240) crosses S_max: a
  // heavy resolver relaying the attack keeps its *valid* queries
  // answered while its random-subdomain relays are discarded.
  config.queue_config.max_scores = {0.0, 60.0, 150.0};
  config.queue_config.discard_score = 200.0;
  server::Nameserver nameserver(std::move(config), scenario.zones.store());
  if (with_filters) {
    nameserver.scoring().add_filter(std::make_unique<filters::RateLimitFilter>(
        filters::RateLimitFilter::Config{.default_limit_qps = 200.0}));
    nameserver.scoring().add_filter(std::make_unique<filters::NxDomainFilter>(
        filters::NxDomainFilter::Config{.penalty = 180.0, .nxdomain_threshold = 200},
        [&scenario](const dns::DnsName& qname) -> std::optional<dns::DnsName> {
          const auto zone = scenario.zones.store().find_best_zone(qname);
          if (!zone) return std::nullopt;
          return zone->apex();
        },
        [&scenario](const dns::DnsName& apex) {
          const auto zone = scenario.zones.store().find_zone(apex);
          return zone ? zone->all_names() : std::vector<dns::DnsName>{};
        }));
  }
  return nameserver;
}

}  // namespace

int main() {
  Scenario scenario;
  const double legit_qps = 1'000.0;
  const double attack_qps = 15'000.0;  // 3x the compute capacity

  std::printf("random-subdomain attack against zone %s\n",
              scenario.zones.apex(0).to_string().c_str());
  std::printf("nameserver compute capacity: 5,000 qps; legit load: %.0f qps; "
              "attack: %.0f qps\n\n",
              legit_qps, attack_qps);

  {
    SimTime clock = SimTime::origin();
    auto nameserver = make_nameserver(scenario, /*with_filters=*/false);
    const double calm = run_phase(scenario, nameserver, legit_qps, 0.0, 3.0, clock);
    const double under_attack =
        run_phase(scenario, nameserver, legit_qps, attack_qps, 5.0, clock);
    std::printf("WITHOUT filters:  calm goodput %.1f%%   under attack %.1f%%\n",
                100 * calm, 100 * under_attack);
  }
  {
    SimTime clock = SimTime::origin();
    auto nameserver = make_nameserver(scenario, /*with_filters=*/true);
    const double calm = run_phase(scenario, nameserver, legit_qps, 0.0, 3.0, clock);
    const double under_attack =
        run_phase(scenario, nameserver, legit_qps, attack_qps, 5.0, clock);
    std::printf("WITH filters:     calm goodput %.1f%%   under attack %.1f%%\n",
                100 * calm, 100 * under_attack);
    std::printf("\nfilter pipeline: queries discarded as definitively malicious "
                "are dropped before the queues;\nsuspicious queries are "
                "answered only when capacity remains (work-conserving).\n");
  }
  return 0;
}
