#include "workload/attacks.hpp"

#include <gtest/gtest.h>

#include <set>

namespace akadns::workload {
namespace {

struct Fixture {
  ResolverPopulation population{{.resolver_count = 5'000, .asn_count = 200}, 1};
  HostedZones zones{{.zone_count = 200, .wildcard_fraction = 0.0}, 2};
};

TEST(DirectQueryAttack, UsesFewSources) {
  Fixture f;
  DirectQueryAttack attack({.bot_count = 5, .target_zone_rank = 0}, f.zones, 3);
  std::set<std::string> sources;
  for (int i = 0; i < 500; ++i) sources.insert(attack.next().source.addr.to_string());
  EXPECT_EQ(sources.size(), 5u);
}

TEST(DirectQueryAttack, TargetsConfiguredZone) {
  Fixture f;
  DirectQueryAttack attack({.bot_count = 3, .target_zone_rank = 7}, f.zones, 4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(attack.next().qname.is_subdomain_of(f.zones.apex(7)));
  }
}

TEST(RandomSubdomainAttack, SourcesAreLegitimateResolvers) {
  Fixture f;
  RandomSubdomainAttack attack({.target_zone_rank = 0}, f.population, f.zones, 5);
  std::set<std::string> population_addresses;
  for (const auto& r : f.population.resolvers()) {
    population_addresses.insert(r.address.to_string());
  }
  for (int i = 0; i < 200; ++i) {
    const auto query = attack.next();
    EXPECT_TRUE(population_addresses.contains(query.source.addr.to_string()));
    // Genuine path: TTL matches the resolver's real TTL.
    EXPECT_EQ(query.ip_ttl, f.population.resolver(query.resolver_index).ip_ttl);
  }
}

TEST(RandomSubdomainAttack, NamesAreNonexistent) {
  Fixture f;
  RandomSubdomainAttack attack({.target_zone_rank = 0}, f.population, f.zones, 6);
  for (int i = 0; i < 100; ++i) {
    const auto query = attack.next();
    const auto zone = f.zones.store().find_best_zone(query.qname);
    ASSERT_NE(zone, nullptr);
    EXPECT_EQ(zone->lookup(query.qname, dns::RecordType::A).status,
              zone::LookupStatus::NxDomain);
  }
}

TEST(RandomSubdomainAttack, NamesAreDiverse) {
  Fixture f;
  RandomSubdomainAttack attack({.target_zone_rank = 0}, f.population, f.zones, 7);
  std::set<std::string> names;
  for (int i = 0; i < 500; ++i) names.insert(attack.next().qname.to_string());
  EXPECT_GT(names.size(), 495u);  // effectively all unique
}

TEST(SpoofedAttack, ImpersonatesTopResolvers) {
  Fixture f;
  SpoofedAttack attack({.impersonate_allowlisted = true, .forge_ttl = false},
                       f.population, f.zones, 8);
  const auto top = f.population.top_by_weight(0.03);
  std::set<std::string> top_addresses;
  for (const auto idx : top) {
    top_addresses.insert(f.population.resolver(idx).address.to_string());
  }
  for (int i = 0; i < 200; ++i) {
    const auto query = attack.next();
    EXPECT_TRUE(top_addresses.contains(query.source.addr.to_string()));
    // Class 4: the TTL betrays the attacker's own topology.
    EXPECT_EQ(query.ip_ttl, 44);
  }
}

TEST(SpoofedAttack, ForgedTtlMatchesVictim) {
  Fixture f;
  SpoofedAttack attack({.impersonate_allowlisted = true, .forge_ttl = true},
                       f.population, f.zones, 9);
  for (int i = 0; i < 200; ++i) {
    const auto query = attack.next();
    EXPECT_EQ(query.ip_ttl, f.population.resolver(query.resolver_index).ip_ttl);
  }
}

TEST(SpoofedAttack, RandomSourcesWhenNotImpersonating) {
  Fixture f;
  SpoofedAttack attack({.impersonate_allowlisted = false}, f.population, f.zones, 10);
  std::set<std::string> sources;
  for (int i = 0; i < 300; ++i) sources.insert(attack.next().source.addr.to_string());
  EXPECT_GT(sources.size(), 290u);  // source-diverse
}

}  // namespace
}  // namespace akadns::workload
