#include "core/delegation_sets.hpp"

#include <algorithm>
#include <stdexcept>

namespace akadns::core {

std::uint64_t binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::uint64_t result = 1;
  for (std::uint64_t i = 1; i <= k; ++i) {
    result = result * (n - k + i) / i;
  }
  return result;
}

std::uint64_t max_enterprises() { return binomial(kCloudCount, kDelegationSetSize); }

std::array<std::uint32_t, kDelegationSetSize> delegation_set_for(std::uint64_t index) {
  if (index >= max_enterprises()) {
    throw std::out_of_range("delegation set index exceeds C(24,6)");
  }
  // Lexicographic unranking of 6-combinations of {0..23}.
  std::array<std::uint32_t, kDelegationSetSize> set{};
  std::uint32_t next = 0;
  for (std::size_t position = 0; position < kDelegationSetSize; ++position) {
    const std::uint64_t remaining_slots = kDelegationSetSize - position - 1;
    while (true) {
      // Combinations starting with `next` at this position.
      const std::uint64_t count =
          binomial(kCloudCount - next - 1, remaining_slots);
      if (index < count) break;
      index -= count;
      ++next;
    }
    set[position] = next++;
  }
  return set;
}

std::uint64_t delegation_set_index(
    const std::array<std::uint32_t, kDelegationSetSize>& set) {
  std::uint64_t index = 0;
  std::uint32_t previous = 0;
  for (std::size_t position = 0; position < kDelegationSetSize; ++position) {
    const std::uint64_t remaining_slots = kDelegationSetSize - position - 1;
    for (std::uint32_t candidate = previous; candidate < set[position]; ++candidate) {
      index += binomial(kCloudCount - candidate - 1, remaining_slots);
    }
    previous = set[position] + 1;
  }
  return index;
}

std::size_t overlap(const std::array<std::uint32_t, kDelegationSetSize>& a,
                    const std::array<std::uint32_t, kDelegationSetSize>& b) {
  std::size_t shared = 0;
  for (const auto cloud_a : a) {
    for (const auto cloud_b : b) {
      if (cloud_a == cloud_b) ++shared;
    }
  }
  return shared;
}

std::vector<std::uint32_t> cdn_delegation() {
  std::vector<std::uint32_t> clouds;
  clouds.reserve(kCdnDelegationSize);
  for (std::uint32_t c = 0; clouds.size() < kCdnDelegationSize && c < kCloudCount; c += 2) {
    clouds.push_back(c);
  }
  // 24/2 = 12 even clouds; add one odd cloud to reach 13.
  clouds.push_back(1);
  return clouds;
}

}  // namespace akadns::core
