file(REMOVE_RECURSE
  "../examples-bin/example_adhs_gtm"
  "../examples-bin/example_adhs_gtm.pdb"
  "CMakeFiles/example_adhs_gtm.dir/example_adhs_gtm.cpp.o"
  "CMakeFiles/example_adhs_gtm.dir/example_adhs_gtm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_adhs_gtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
