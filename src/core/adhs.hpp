// Authoritative DNS Hosting Service onboarding (§3.1).
//
// "Enterprises who wish to host their own DNS zones on Akamai's
// infrastructure are assigned a unique set of 6 different clouds called
// a delegation set ... Enterprises add NS records, each corresponding
// to a cloud in the delegation set, to every zone they own, along with
// the respective parent zone in the DNS hierarchy."
//
// EnterpriseRegistry hands out unique delegation sets in registration
// order and generates the exact record material an enterprise must
// install: the per-cloud nameserver names (aN.akadns.example), the NS
// records for the zone apex and for the parent, and the glue.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "core/delegation_sets.hpp"
#include "dns/rr.hpp"

namespace akadns::core {

struct Enterprise {
  std::uint64_t index = 0;
  std::string name;
  std::array<std::uint32_t, kDelegationSetSize> delegation_set{};
};

class EnterpriseRegistry {
 public:
  struct Config {
    /// Suffix under which the per-cloud nameserver names live
    /// (production uses akam.net / akamaidns.net style domains).
    std::string nameserver_suffix = "akadns.example";
    /// Base of the per-cloud anycast IPv4 addresses: cloud c answers at
    /// base + c (one address per cloud for the model).
    Ipv4Addr cloud_address_base = Ipv4Addr(172, 20, 0, 0);
  };

  EnterpriseRegistry() = default;
  explicit EnterpriseRegistry(Config config) : config_(std::move(config)) {}

  /// Registers an enterprise and assigns the next unique delegation set.
  /// Throws std::length_error once C(24,6) enterprises exist and
  /// std::invalid_argument on duplicate names.
  Enterprise register_enterprise(const std::string& name);

  std::optional<Enterprise> find(const std::string& name) const;
  std::size_t size() const noexcept { return by_name_.size(); }

  /// The nameserver hostname for one cloud: "a<cloud>.<suffix>".
  dns::DnsName cloud_nameserver_name(std::uint32_t cloud) const;

  /// The anycast service address of one cloud.
  Ipv4Addr cloud_address(std::uint32_t cloud) const;

  /// The six NS records the enterprise must add at the apex of `zone`
  /// (and equally into the parent zone for the delegation to work).
  std::vector<dns::ResourceRecord> delegation_ns_records(
      const Enterprise& enterprise, const dns::DnsName& zone_apex,
      std::uint32_t ttl = 86'400) const;

  /// Glue A records for the six nameserver names (for the parent zone).
  std::vector<dns::ResourceRecord> delegation_glue_records(
      const Enterprise& enterprise, std::uint32_t ttl = 86'400) const;

  /// Number of clouds two enterprises share (always <= 5 for distinct
  /// enterprises — the §4.3.1 collateral-damage bound).
  static std::size_t shared_clouds(const Enterprise& a, const Enterprise& b) {
    return overlap(a.delegation_set, b.delegation_set);
  }

 private:
  Config config_;
  std::unordered_map<std::string, Enterprise> by_name_;
  std::uint64_t next_index_ = 0;
};

}  // namespace akadns::core
