#include "net/server.hpp"

#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>

#include "common/buffer_pool.hpp"
#include "defense/filter_chain.hpp"
#include "dns/wire.hpp"
#include "net/tcp_framing.hpp"
#include "net/udp_batch.hpp"
#include "server/query_context.hpp"

namespace akadns::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Cheap rcode extraction from encoded response header bytes.
dns::Rcode rcode_of(const std::vector<std::uint8_t>& wire) {
  return wire.size() >= 4 ? static_cast<dns::Rcode>(wire[3] & 0xF) : dns::Rcode::ServFail;
}

/// One established TCP connection (truncation-fallback path).
struct Conn {
  FdHandle fd;
  Endpoint peer;
  FrameDecoder decoder;
  /// Length-framed responses not yet accepted by the kernel.
  std::vector<std::uint8_t> out;
  std::size_t out_off = 0;
  /// Response scratch reused across this connection's queries.
  std::vector<std::uint8_t> scratch;
  bool closing = false;     // flush `out`, then close
  bool want_write = false;  // EPOLLOUT currently registered
  /// Last time bytes actually moved on this connection (the idle
  /// reaper's clock — a peer merely holding the socket open never
  /// advances it).
  Clock::time_point last_active{};
};

/// Deferred-response transmit batch for the defense path. A penalty-
/// queued query outlives the receive batch it arrived in, so its response
/// cannot reuse UdpBatch's per-slot reply buffers; this batch owns its
/// own arena (one byte vector + offsets, capacity retained — zero
/// steady-state allocation) and flushes via sendmmsg in batch-sized
/// chunks.
class TxBatch {
 public:
  explicit TxBatch(std::size_t batch) : cap_(std::max<std::size_t>(1, batch)) {
    addrs_.resize(cap_);
    hdrs_.resize(cap_);
    iovecs_.resize(cap_);
  }

  void append(int fd, const Endpoint& dst, std::span<const std::uint8_t> wire,
              FrontendStats& stats) {
    if (entries_.size() == cap_) flush(fd, stats);
    Entry e;
    e.offset = bytes_.size();
    e.len = wire.size();
    e.addrlen = sockaddr_from_endpoint(dst, addrs_[entries_.size()]);
    entries_.push_back(e);
    bytes_.insert(bytes_.end(), wire.begin(), wire.end());
  }

  void flush(int fd, FrontendStats& stats) {
    if (entries_.empty()) return;
    if (fd < 0) {  // socket already closed (late drain): nothing to send
      entries_.clear();
      bytes_.clear();
      return;
    }
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      iovecs_[i].iov_base = bytes_.data() + entries_[i].offset;
      iovecs_[i].iov_len = entries_[i].len;
      std::memset(&hdrs_[i], 0, sizeof(mmsghdr));
      hdrs_[i].msg_hdr.msg_iov = &iovecs_[i];
      hdrs_[i].msg_hdr.msg_iovlen = 1;
      hdrs_[i].msg_hdr.msg_name = &addrs_[i];
      hdrs_[i].msg_hdr.msg_namelen = entries_[i].addrlen;
    }
    std::size_t sent = 0;
    while (sent < entries_.size()) {
      const int n = ::sendmmsg(fd, hdrs_.data() + sent,
                               static_cast<unsigned>(entries_.size() - sent), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          pollfd pfd{fd, POLLOUT, 0};
          ::poll(&pfd, 1, 10);
          continue;
        }
        break;  // hard error: drop the rest of the batch
      }
      sent += static_cast<std::size_t>(n);
    }
    stats.udp_responses += sent;
    stats.udp_send_failures += entries_.size() - sent;
    entries_.clear();
    bytes_.clear();
  }

 private:
  struct Entry {
    std::size_t offset = 0;
    std::size_t len = 0;
    socklen_t addrlen = 0;
  };

  std::size_t cap_;
  std::vector<std::uint8_t> bytes_;
  std::vector<Entry> entries_;
  std::vector<sockaddr_storage> addrs_;
  std::vector<mmsghdr> hdrs_;
  std::vector<iovec> iovecs_;
};

/// REFUSED answer for a query whose zone aged past SOA expire: the
/// response an unhosted zone would get — the secondary has stopped
/// claiming authority, so resolvers move to a sibling that still does.
std::vector<std::uint8_t> refused_response(const dns::QueryView& view) {
  dns::Message m;
  m.header = view.header;
  m.header.qr = true;
  m.header.aa = false;
  m.header.rcode = dns::Rcode::Refused;
  m.questions.push_back(view.question);
  return dns::encode(m);
}

/// The per-worker slice of the server-wide defense configuration.
defense::DefenseConfig worker_engine_config(const ServeConfig& cfg) {
  defense::DefenseConfig d;
  d.lanes = 1;  // the kernel's RSS hash is the lane selector
  if (cfg.defense.compute_qps > 0.0) {
    d.compute_capacity_qps =
        cfg.defense.compute_qps / static_cast<double>(std::max<std::size_t>(1, cfg.workers));
  }
  d.queue_config = cfg.defense.queue_config;
  return d;
}

}  // namespace

struct Server::Worker {
  Worker(const ServeConfig& cfg, propagation::ZonePublisher& pub, Clock::time_point epoch_tp)
      : config(cfg),
        publisher(pub),
        responder(replica, cfg.responder),
        batch(cfg.udp_batch),
        sync(replica),
        xfr(replica,
            [p = &pub](const dns::DnsName& apex, std::uint32_t from, std::uint32_t to) {
              return p->chain(apex, from, to);
            },
            cfg.transfer),
        epoch(epoch_tp),
        clock(epoch_tp),
        pool(std::make_unique<BufferPool>()),
        engine(worker_engine_config(cfg), clock),
        tx(cfg.udp_batch),
        defense_on(cfg.defense.enabled),
        queue_path(cfg.defense.enabled || cfg.defense.compute_qps > 0.0) {
    if (defense_on) {
      // Content-based chain: the NXDOMAIN filter discriminates by what
      // is asked, so it works even when all traffic shares a few source
      // ports; hopcount rides along for spoofed-source coverage.
      filters::NxDomainFilter::Config nx;
      nx.penalty = cfg.defense.nxdomain_penalty;
      nx.nxdomain_threshold = std::max<std::uint64_t>(
          1, cfg.defense.nxdomain_threshold /
                 static_cast<std::uint64_t>(std::max<std::size_t>(1, cfg.workers)));
      engine.install_filter(defense::nxdomain_factory(nx, defense::zone_store_hooks(replica)));
      if (cfg.defense.hopcount) engine.install_filter(defense::hopcount_factory());
    }
    for (const auto& name : cfg.defense.qod_rules) {
      engine.firewall().install(dns::Question{name, dns::RecordType::ANY}, clock.now(),
                                Duration::days(3650));
    }
  }

  const ServeConfig& config;
  propagation::ZonePublisher& publisher;
  /// This worker's private zone view. All reads (responder, NXDOMAIN
  /// filter hooks, transfer service) go through it; writes arrive only
  /// via sync.poll() on this worker's own thread, so a mid-run zone flip
  /// is just a shared_ptr swap between two of its queries. Declared
  /// before every member holding a reference to it.
  zone::ZoneStore replica;
  server::Responder responder;
  UdpBatch batch;
  UdpSocket udp;
  TcpListener listener;
  FdHandle stop_event;
  /// Written by the publisher's fanout (any thread), read by this
  /// worker's epoll loop: the zone-update doorbell.
  FdHandle update_event;
  propagation::ZoneSubscriber sync;
  propagation::TransferService xfr;
  FrontendStats stats;
  Clock::time_point epoch;

  // ---- defense path (§4.3.3 on CLOCK_MONOTONIC) ----
  MonotonicClock clock;
  /// Backing storage for queued packets; must outlive `engine` (queued
  /// PooledBuffers release into it), hence declared first.
  std::unique_ptr<BufferPool> pool;
  defense::DefenseEngine<server::QueryContext> engine;
  TxBatch tx;
  std::vector<std::uint8_t> backlog_scratch;
  /// Filters installed and scoring active.
  const bool defense_on;
  /// Queries go through the penalty queues (scoring on, or compute
  /// metering requested without filters). Off: the inline fast path
  /// answers straight out of the receive batch.
  const bool queue_path;

  FdHandle epoll;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;
  std::vector<std::uint8_t> tcp_read_buf = std::vector<std::uint8_t>(64 * 1024);

  /// Wall time mapped onto the repo's SimTime axis (answer-cache TTL
  /// expiry is the only consumer; the origin is the server's start).
  SimTime now() const noexcept {
    return SimTime::from_nanos(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch).count());
  }

  /// Absorbs every queued zone update into the replica (worker thread
  /// only). `now` on the publisher's clock axis keeps the propagation
  /// latency telemetry coherent across workers.
  void poll_zone_updates() { sync.poll(publisher.clock().now()); }

  /// One relaxed load: anything in the freshness ladder degraded? Only
  /// then does the per-query apex walk below run at all.
  bool fresh_gated() const noexcept {
    return config.freshness &&
           config.freshness->worst() != propagation::Freshness::Fresh;
  }
  /// Per-query verdict once fresh_gated(): true — the query's zone aged
  /// past its (capped) SOA expire and must be REFUSED (withdrawn);
  /// false — serve it (counting stale_served when the zone is stale).
  bool freshness_refuses(const dns::DnsName& qname);
  void reap_idle_conns(Clock::time_point now_tp);

  void run();
  bool drain_udp(bool draining);
  void answer_queued(server::QueryContext& item);
  void process_backlog();
  void drain_backlog();
  void accept_loop();
  void handle_conn(int fd, std::uint32_t events);
  void process_frames(Conn& conn);
  void flush_conn(Conn& conn);
  void set_want_write(Conn& conn, bool want);
  void close_conn(int fd);
  bool any_pending_output() const;
};

bool Server::Worker::freshness_refuses(const dns::DnsName& qname) {
  const auto zone = replica.find_best_compiled(qname);
  if (!zone) return false;  // not ours: the responder REFUSEs it anyway
  const std::int64_t t = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             Clock::now().time_since_epoch())
                             .count();
  switch (config.freshness->state_of(zone->apex(), t)) {
    case propagation::Freshness::Expired:
      ++stats.expired_refused;
      return true;
    case propagation::Freshness::Stale:
      ++stats.stale_served;
      return false;
    case propagation::Freshness::Fresh:
      break;
  }
  return false;
}

void Server::Worker::reap_idle_conns(Clock::time_point now_tp) {
  const auto limit = std::chrono::nanoseconds(config.tcp_idle_timeout.count_nanos());
  for (auto it = conns.begin(); it != conns.end();) {
    if (now_tp - it->second->last_active > limit) {
      ++stats.tcp_idle_reaped;
      it = conns.erase(it);  // FdHandle close drops the epoll registration
    } else {
      ++it;
    }
  }
}

bool Server::Worker::drain_udp(bool draining) {
  const int fd = udp.fd();
  bool saw_data = false;
  while (true) {
    const int n = batch.recv(fd);
    if (n <= 0) break;
    saw_data = true;
    ++stats.udp_batches;
    stats.udp_packets += static_cast<std::uint64_t>(n);
    if (draining) stats.drain_flushed += static_cast<std::uint64_t>(n);
    // Rule-table lookups only cost anything when rules exist; an empty
    // table is bypassed (nothing could match, so no drop is miscounted).
    const bool check_firewall = !engine.firewall().rules().empty();
    const bool gated = fresh_gated();
    std::size_t want = 0;
    for (int i = 0; i < n; ++i) {
      const auto wire = batch.packet(static_cast<std::size_t>(i));
      auto view = dns::decode_query_view(wire);
      if (!view) {
        // No parseable header/question: nothing to answer, nothing to
        // amplify. The empty response slot makes send() skip it.
        ++stats.udp_malformed;
        continue;
      }
      // NOTIFY (RFC 1996): a primary telling us a zone moved. Ack it and
      // kick the refresh path — never the responder (it is not a query).
      if (view.value().header.opcode == dns::Opcode::Notify) {
        auto notify = dns::decode(wire);
        if (!notify || !propagation::TransferService::is_notify(notify.value())) {
          ++stats.udp_malformed;
          continue;
        }
        ++stats.udp_notifies;
        batch.response(static_cast<std::size_t>(i)) =
            dns::encode(propagation::TransferService::make_notify_ack(notify.value()));
        ++want;
        if (config.on_notify) config.on_notify(notify.value().question().name);
        continue;
      }
      // Query-of-death firewall ahead of everything else (§4.2.4):
      // matching queries are dropped before they reach the responder, on
      // the fast path and the defense path alike. Counted as a Firewall
      // drop in the engine's defense stats.
      if (check_firewall && engine.firewall_drops(0, view.value().question)) continue;
      // Serve-stale ladder: an expired zone is withdrawn here, at
      // admission, on the fast path and the defense path alike — a
      // penalty-queued query must not be answered from a zone that
      // expired while it waited.
      if (gated && freshness_refuses(view.value().question.name)) {
        batch.response(static_cast<std::size_t>(i)) = refused_response(view.value());
        ++want;
        continue;
      }
      const Endpoint client = endpoint_from_sockaddr(batch.source(static_cast<std::size_t>(i)));
      if (!queue_path) {
        responder.respond_view_into(wire, view.value(), client, now(),
                                    batch.response(static_cast<std::size_t>(i)));
        ++want;
        continue;
      }
      // Defense path: score against the filter chain, then into the
      // penalty queues (or shed — ScoreDiscard / QueueFull). The packet
      // bytes move to a pooled buffer because the queued query outlives
      // this receive batch.
      server::QueryContext ctx;
      ctx.view = std::move(view).value();
      ctx.parsed = true;
      ctx.source = client;
      ctx.ip_ttl = 64;  // not surfaced by recvmmsg on this path
      ctx.arrival = engine.clock().now();
      if (defense_on) ctx.score = engine.score(0, ctx.filter_view(ctx.arrival));
      ctx.wire = pool->copy_of(wire);
      const double score = ctx.score;  // read before the move below
      engine.enqueue(0, std::move(ctx), score);
    }
    if (want > 0) {
      const std::size_t sent = batch.send(fd);
      stats.udp_responses += sent;
      stats.udp_send_failures += want - sent;
    }
    // Under sustained load this loop can monopolize the thread (full
    // batches keep arriving), never returning to epoll_wait — which
    // would starve the zone-update doorbell and pin the replica at the
    // old version until traffic pauses. Probing the subscription here
    // (one relaxed atomic load) bounds publish-to-visible latency to a
    // single batch even at saturation.
    if (sync.has_pending()) {
      ++stats.zone_update_wakes;
      poll_zone_updates();
    }
    if (static_cast<std::size_t>(n) < batch.capacity()) break;  // socket empty
  }
  return saw_data;
}

void Server::Worker::answer_queued(server::QueryContext& item) {
  responder.respond_view_into(item.bytes(), item.view, item.source, now(), backlog_scratch);
  // Fan the outcome back to the filters (NXDOMAIN counting etc.).
  engine.observe_response(0, item.filter_view(engine.clock().now()),
                          rcode_of(backlog_scratch));
  tx.append(udp.fd(), item.source, backlog_scratch, stats);
}

void Server::Worker::process_backlog() {
  // begin_phase meters the worker's compute slice into a budget (the
  // whole backlog when unmetered); the work-conserving scheduler then
  // releases queued queries in increasing-penalty order.
  if (!engine.has_pending()) return;
  if (!engine.begin_phase()) return;
  while (auto item = engine.next(0)) answer_queued(*item);
  engine.end_phase();
  tx.flush(udp.fd(), stats);
}

void Server::Worker::drain_backlog() {
  // Final unmetered drain before the UDP socket closes: everything still
  // queued was already admitted, so answer it rather than dropping it
  // (the shed queries were already accounted at enqueue time).
  if (!engine.has_pending()) return;
  engine.begin_phase_unmetered(engine.pending());
  while (auto item = engine.next(0)) answer_queued(*item);
  engine.end_phase();
  tx.flush(udp.fd(), stats);
}

void Server::Worker::accept_loop() {
  while (true) {
    sockaddr_storage peer_addr{};
    FdHandle conn_fd = listener.accept(peer_addr);
    if (!conn_fd.valid()) break;
    if (conns.size() >= config.tcp_max_connections) {
      ++stats.tcp_rejected;
      continue;  // FdHandle closes it
    }
    auto conn = std::make_unique<Conn>();
    conn->peer = endpoint_from_sockaddr(peer_addr);
    conn->decoder = FrameDecoder(config.tcp_max_frame);
    conn->last_active = Clock::now();
    const int fd = conn_fd.get();
    conn->fd = std::move(conn_fd);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll.get(), EPOLL_CTL_ADD, fd, &ev) != 0) continue;
    conns.emplace(fd, std::move(conn));
    ++stats.tcp_accepted;
  }
}

void Server::Worker::process_frames(Conn& conn) {
  while (auto frame = conn.decoder.next()) {
    ++stats.tcp_queries;
    auto view = dns::decode_query_view(*frame);
    if (!view) {
      // A framed payload that is not even a DNS header is a protocol
      // error; drop the connection rather than guess (RFC 7766 §8).
      ++stats.tcp_protocol_errors;
      conn.closing = true;
      conn.decoder = FrameDecoder(0);  // stop consuming further frames
      break;
    }
    // Zone transfers (AXFR/IXFR) answer from the replica + the
    // publisher's journal; they need the full message (IXFR carries the
    // client's SOA in the authority section), so this path pays for a
    // complete decode — transfers are rare control-plane traffic.
    const dns::RecordType qtype = view.value().question.qtype;
    if (qtype == dns::RecordType::AXFR || qtype == dns::RecordType::IXFR) {
      auto query = dns::decode(*frame);
      if (!query) {
        ++stats.tcp_protocol_errors;
        conn.closing = true;
        conn.decoder = FrameDecoder(0);
        break;
      }
      ++stats.tcp_transfers;
      for (const auto& response : xfr.serve(query.value())) {
        const auto bytes = dns::encode(response, {.max_size = dns::kMaxMessageSize});
        const auto prefix = frame_prefix(bytes.size());
        conn.out.insert(conn.out.end(), prefix.begin(), prefix.end());
        conn.out.insert(conn.out.end(), bytes.begin(), bytes.end());
        ++stats.tcp_responses;
      }
      continue;
    }
    // Serve-stale ladder, same verdict as the UDP path.
    if (fresh_gated() && freshness_refuses(view.value().question.name)) {
      conn.scratch = refused_response(view.value());
    } else {
      // TCP responses are never truncated and never touch the UDP-keyed
      // answer cache: the full message limit is the transport ceiling.
      responder.respond_view_into(*frame, view.value(), conn.peer, now(), conn.scratch,
                                  dns::kMaxMessageSize);
    }
    const auto prefix = frame_prefix(conn.scratch.size());
    conn.out.insert(conn.out.end(), prefix.begin(), prefix.end());
    conn.out.insert(conn.out.end(), conn.scratch.begin(), conn.scratch.end());
    ++stats.tcp_responses;
  }
  if (conn.decoder.poisoned() && !conn.closing) {
    ++stats.tcp_protocol_errors;
    conn.closing = true;
  }
}

void Server::Worker::set_want_write(Conn& conn, bool want) {
  if (conn.want_write == want) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd.get();
  ::epoll_ctl(epoll.get(), EPOLL_CTL_MOD, conn.fd.get(), &ev);
  conn.want_write = want;
}

void Server::Worker::flush_conn(Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t n = ::write(conn.fd.get(), conn.out.data() + conn.out_off,
                              conn.out.size() - conn.out_off);
    if (n > 0) {
      conn.last_active = Clock::now();
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      set_want_write(conn, true);
      return;
    }
    // Peer vanished mid-write: nothing left to flush.
    conn.closing = true;
    break;
  }
  conn.out.clear();
  conn.out_off = 0;
  set_want_write(conn, false);
}

void Server::Worker::close_conn(int fd) {
  conns.erase(fd);  // FdHandle close() drops the epoll registration too
}

void Server::Worker::handle_conn(int fd, std::uint32_t events) {
  auto it = conns.find(fd);
  if (it == conns.end()) return;
  Conn& conn = *it->second;
  if (events & (EPOLLHUP | EPOLLERR)) {
    close_conn(fd);
    return;
  }
  if (events & EPOLLIN) {
    while (true) {
      const ssize_t n = ::read(fd, tcp_read_buf.data(), tcp_read_buf.size());
      if (n > 0) {
        conn.last_active = Clock::now();
        conn.decoder.feed({tcp_read_buf.data(), static_cast<std::size_t>(n)});
        process_frames(conn);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // EOF or hard error. A clean EOF at a frame boundary just means
      // the client is done; mid-frame it abandoned a query — either way
      // flush what we owe and close.
      conn.closing = true;
      break;
    }
  }
  if ((events & EPOLLOUT) || !conn.out.empty()) flush_conn(conn);
  if (conn.closing && conn.out_off >= conn.out.size()) close_conn(fd);
}

bool Server::Worker::any_pending_output() const {
  for (const auto& [fd, conn] : conns) {
    if (conn->out_off < conn->out.size()) return true;
  }
  return false;
}

void Server::Worker::run() {
  epoll = FdHandle(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll.valid()) return;
  const auto add = [&](int fd) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll.get(), EPOLL_CTL_ADD, fd, &ev);
  };
  add(udp.fd());
  add(listener.fd());
  add(stop_event.get());
  add(update_event.get());

  bool draining = false;
  Clock::time_point drain_deadline{};
  const bool reap_idle = config.tcp_idle_timeout.count_nanos() > 0;
  Clock::time_point next_idle_sweep = Clock::now();
  std::array<epoll_event, 64> events{};
  while (true) {
    int timeout_ms = -1;
    if (draining) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          drain_deadline - Clock::now());
      timeout_ms = static_cast<int>(std::max<std::int64_t>(0, left.count()));
    } else if (queue_path && engine.has_pending()) {
      // Backlogged defense queues: wake shortly so the compute bucket's
      // refill turns into answered queries even when the socket is idle.
      timeout_ms = 1;
    } else if (reap_idle && !conns.empty()) {
      // Established connections exist: bound the wait so the idle reaper
      // runs even when no traffic arrives — that is exactly the case it
      // defends against (a peer holding sockets open in silence).
      timeout_ms = 250;
    }
    const int n = ::epoll_wait(epoll.get(), events.data(), static_cast<int>(events.size()),
                               timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      const std::uint32_t ev = events[static_cast<std::size_t>(i)].events;
      if (fd == stop_event.get()) {
        std::uint64_t v = 0;
        [[maybe_unused]] const ssize_t r = ::read(stop_event.get(), &v, sizeof(v));
        draining = true;
        drain_deadline = Clock::now() + std::chrono::nanoseconds(
                                            config.drain_timeout.count_nanos());
        // Stop accepting: no new connections, and after one final sweep
        // of already-queued datagrams (answering whatever the defense
        // queues still hold), no new UDP either. Queued zone updates are
        // absorbed first so the sweep answers from the newest version.
        listener.close();
        if (sync.has_pending()) poll_zone_updates();
        drain_udp(/*draining=*/true);
        if (queue_path) drain_backlog();
        udp.close();
      } else if (fd == update_event.get()) {
        std::uint64_t v = 0;
        [[maybe_unused]] const ssize_t r = ::read(update_event.get(), &v, sizeof(v));
        ++stats.zone_update_wakes;
        poll_zone_updates();
      } else if (udp.fd() >= 0 && fd == udp.fd()) {
        drain_udp(draining);
      } else if (listener.fd() >= 0 && fd == listener.fd()) {
        accept_loop();
      } else {
        handle_conn(fd, ev);
      }
    }
    if (!draining && queue_path) process_backlog();
    if (!draining && reap_idle && !conns.empty()) {
      const auto now_tp = Clock::now();
      if (now_tp >= next_idle_sweep) {
        reap_idle_conns(now_tp);
        next_idle_sweep = now_tp + std::chrono::milliseconds(250);
      }
    }
    if (draining) {
      // In-flight means: bytes owed to established TCP clients. Leave
      // when they are flushed (or the deadline passes — resolvers retry).
      if (!any_pending_output() || Clock::now() >= drain_deadline) break;
    }
  }
  conns.clear();
}

Server::Server(ServeConfig config, propagation::ZonePublisher& publisher)
    : config_(std::move(config)), publisher_(publisher) {}

Server::Server(ServeConfig config, const zone::ZoneStore& store)
    : config_(std::move(config)),
      owned_clock_(std::make_unique<MonotonicClock>()),
      owned_publisher_(std::make_unique<propagation::ZonePublisher>(*owned_clock_)),
      publisher_(*owned_publisher_) {
  // Share the store's compiled snapshots (no recompilation, no journal);
  // the workers seed their replicas from the publisher at start().
  publisher_.adopt(store);
}

Server::~Server() { stop(); }

Result<bool> Server::start() {
  if (running_ || stopped_) return Error{"server already started"};
  if (config_.workers == 0) return Error{"workers must be >= 1"};

  workers_.clear();
  // One shared epoch: every worker's MonotonicClock (and SimTime view)
  // reads the same axis, so merged defense telemetry is coherent. When
  // the publisher itself runs on CLOCK_MONOTONIC, adopt *its* epoch so
  // propagation latency (publish -> replica applied) is measured on the
  // same axis too.
  auto epoch = Clock::now();
  if (const auto* mono = dynamic_cast<const MonotonicClock*>(&publisher_.clock())) {
    epoch = mono->epoch();
  }
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(config_, publisher_, epoch));
  }

  // Worker 0 resolves the (possibly ephemeral) ports; the rest join its
  // SO_REUSEPORT groups so the kernel shards flows across all of them.
  std::uint16_t udp_port = config_.port;
  std::uint16_t tcp_port = config_.port;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    auto udp = UdpSocket::open(config_.bind_addr, udp_port, config_.udp_rcvbuf,
                               config_.udp_sndbuf);
    if (!udp) return Error{"worker udp: " + udp.error()};
    workers_[i]->udp = std::move(udp).take();
    if (i == 0) {
      udp_port = workers_[0]->udp.port();
      // Prefer TCP on the same port number (how DNS is deployed); with
      // an ephemeral UDP port that number may be taken for TCP, in which
      // case any free port does — callers read tcp_port() separately.
      if (tcp_port == 0) tcp_port = udp_port;
    }
    auto listener = TcpListener::open(config_.bind_addr, tcp_port);
    if (!listener && i == 0 && config_.port == 0) {
      tcp_port = 0;
      listener = TcpListener::open(config_.bind_addr, 0);
    }
    if (!listener) return Error{"worker tcp: " + listener.error()};
    workers_[i]->listener = std::move(listener).take();
    if (i == 0) tcp_port = workers_[0]->listener.port();

    const int efd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (efd < 0) return Error{errno_message("eventfd")};
    workers_[i]->stop_event = FdHandle(efd);

    const int ufd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (ufd < 0) return Error{errno_message("eventfd")};
    workers_[i]->update_event = FdHandle(ufd);
    // Subscribe-then-seed (attach does both, in that order) before the
    // thread starts: no zone version can fall between the replica's seed
    // and its first drained update, and publishes racing start() are
    // simply queued until the worker's first epoll wakeup.
    workers_[i]->sync.attach(publisher_, [ufd] {
      const std::uint64_t one = 1;
      [[maybe_unused]] const ssize_t r = ::write(ufd, &one, sizeof(one));
    });
  }
  udp_port_ = udp_port;
  tcp_port_ = tcp_port;

  // Catalog every worker's instruments before the threads exist: the
  // registry holds references into the Worker objects (stable from here
  // on), and scrapes after this point are lock-free reads of the
  // workers' single-writer atomics.
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const Worker& w = *workers_[i];
    const obs::LabelSet base = obs::with({}, "worker", i);
    w.stats.register_into(registry_, base);
    w.responder.stats().register_into(registry_, base);
    w.responder.answer_cache().stats().register_into(registry_, base);
    w.engine.register_metrics(registry_, base);
    w.sync.stats().register_into(registry_, base);
    w.xfr.stats().register_into(registry_, base);
    w.replica.compile_stats().register_into(registry_, base);
    registry_.gauge_fn("akadns_firewall_rules", base,
                       [&w] { return static_cast<double>(w.engine.firewall().rules().size()); },
                       obs::GaugeAgg::Max, "live query-of-death firewall rules");
    registry_.gauge_fn("akadns_zone_generation", base,
                       [&w] { return static_cast<double>(w.replica.generation()); },
                       obs::GaugeAgg::Max, "zone-store generation of the worker replica");
  }

  running_ = true;
  threads_.reserve(workers_.size());
  for (auto& worker : workers_) {
    threads_.emplace_back([w = worker.get()] { w->run(); });
  }
  return true;
}

void Server::begin_drain() {
  if (!running_ || draining_.exchange(true, std::memory_order_acq_rel)) return;
  for (auto& worker : workers_) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t r =
        ::write(worker->stop_event.get(), &one, sizeof(one));
  }
}

void Server::stop() {
  if (!running_) return;
  begin_drain();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  running_ = false;
  stopped_ = true;
}

void FrontendStats::register_into(obs::MetricRegistry& reg,
                                  const obs::LabelSet& base) const {
  const auto event = [&](const char* name, const obs::Counter& c) {
    reg.counter("akadns_frontend_total", obs::with(base, "event", name), c,
                "socket-frontend I/O events");
  };
  event("udp_packets", udp_packets);
  event("udp_responses", udp_responses);
  event("udp_malformed", udp_malformed);
  event("udp_send_failures", udp_send_failures);
  event("udp_batches", udp_batches);
  event("tcp_accepted", tcp_accepted);
  event("tcp_rejected", tcp_rejected);
  event("tcp_queries", tcp_queries);
  event("tcp_responses", tcp_responses);
  event("tcp_protocol_errors", tcp_protocol_errors);
  event("drain_flushed", drain_flushed);
  event("udp_notifies", udp_notifies);
  event("tcp_transfers", tcp_transfers);
  event("zone_update_wakes", zone_update_wakes);
  event("tcp_idle_reaped", tcp_idle_reaped);
  event("stale_served", stale_served);
  event("expired_refused", expired_refused);
}

namespace {

std::uint64_t event_sum(const obs::MetricsSnapshot& snap, const char* family,
                        const char* key, std::string value,
                        const obs::LabelSet& extra = {}) {
  return snap.sum(family, obs::with(extra, key, std::move(value)));
}

}  // namespace

ServerStats render_server_stats(const obs::MetricsSnapshot& snap, std::size_t workers,
                                bool defense_enabled) {
  ServerStats out;
  out.defense_enabled = defense_enabled;
  const auto frontend_event = [&](const char* name, const obs::LabelSet& extra = {}) {
    return event_sum(snap, "akadns_frontend_total", "event", name, extra);
  };
  auto& f = out.frontend;
  f.udp_packets = frontend_event("udp_packets");
  f.udp_responses = frontend_event("udp_responses");
  f.udp_malformed = frontend_event("udp_malformed");
  f.udp_send_failures = frontend_event("udp_send_failures");
  f.udp_batches = frontend_event("udp_batches");
  f.tcp_accepted = frontend_event("tcp_accepted");
  f.tcp_rejected = frontend_event("tcp_rejected");
  f.tcp_queries = frontend_event("tcp_queries");
  f.tcp_responses = frontend_event("tcp_responses");
  f.tcp_protocol_errors = frontend_event("tcp_protocol_errors");
  f.drain_flushed = frontend_event("drain_flushed");
  f.udp_notifies = frontend_event("udp_notifies");
  f.tcp_transfers = frontend_event("tcp_transfers");
  f.zone_update_wakes = frontend_event("zone_update_wakes");
  f.tcp_idle_reaped = frontend_event("tcp_idle_reaped");
  f.stale_served = frontend_event("stale_served");
  f.expired_refused = frontend_event("expired_refused");

  auto& r = out.responder;
  r.responses = snap.sum("akadns_responses_total");
  const auto rcode = [&](const char* name, const obs::LabelSet& extra = {}) {
    return event_sum(snap, "akadns_responses_by_rcode_total", "rcode", name, extra);
  };
  r.noerror = rcode("noerror");
  r.nxdomain = rcode("nxdomain");
  r.refused = rcode("refused");
  r.formerr = rcode("formerr");
  r.notimp = rcode("notimp");
  r.servfail = rcode("servfail");
  const auto feature = [&](const char* name) {
    return event_sum(snap, "akadns_answer_features_total", "kind", name);
  };
  r.nodata = feature("nodata");
  r.referrals = feature("referral");
  r.wildcard_answers = feature("wildcard");
  r.cname_chases = feature("cname_chase");
  r.mapped_answers = feature("mapped");
  r.pushed_answers = feature("pushed");
  const auto path = [&](const char* name) {
    return event_sum(snap, "akadns_answer_path_total", "path", name);
  };
  r.compiled_answers = path("compiled");
  r.cache_hits = path("cache");
  r.interpreted_answers = path("interpreted");

  auto& c = out.answer_cache;
  const auto cache_event = [&](const char* name) {
    return event_sum(snap, "akadns_answer_cache_total", "event", name);
  };
  c.hits = cache_event("hit");
  c.misses = cache_event("miss");
  c.insertions = cache_event("insertion");
  c.evictions = cache_event("eviction");
  c.expired = cache_event("expired");
  c.invalidations = cache_event("invalidation");

  const auto fill_defense = [&](defense::DefenseLaneStats& d, const obs::LabelSet& extra) {
    d.scored = snap.sum("akadns_defense_scored_total", extra);
    d.enqueued = snap.sum("akadns_defense_enqueued_total", extra);
    d.released = snap.sum("akadns_defense_released_total", extra);
    for (std::size_t i = 0; i < kDropReasonCount; ++i) {
      const auto reason = static_cast<DropReason>(i);
      d.drops.add(reason, event_sum(snap, "akadns_defense_drops_total", "reason",
                                    std::string(to_string(reason)), extra));
    }
  };
  fill_defense(out.defense, {});
  out.per_worker_defense.resize(workers);
  out.per_worker_udp.resize(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    const obs::LabelSet wl = obs::with({}, "worker", i);
    fill_defense(out.per_worker_defense[i], wl);
    out.per_worker_udp[i] = event_sum(snap, "akadns_frontend_total", "event",
                                      "udp_packets", wl);
  }
  out.firewall_rules =
      static_cast<std::size_t>(snap.gauge_value("akadns_firewall_rules"));

  auto& z = out.zone_sync;
  const auto sync_event = [&](const char* name) {
    return event_sum(snap, "akadns_zone_sync_total", "event", name);
  };
  z.updates = sync_event("update");
  z.noops = sync_event("noop");
  z.adopted = sync_event("adopted");
  z.deltas_applied = sync_event("delta_applied");
  z.incremental = sync_event("incremental");
  z.full = sync_event("full");
  z.last_latency_ns = snap.gauge_value("akadns_zone_sync_last_latency_ns");
  z.max_latency_ns = snap.gauge_value("akadns_zone_sync_max_latency_ns");

  auto& x = out.transfers;
  const auto xfr_kind = [&](const char* name) {
    return event_sum(snap, "akadns_zone_transfer_total", "kind", name);
  };
  x.axfr_served = xfr_kind("axfr");
  x.ixfr_incremental = xfr_kind("ixfr_incremental");
  x.ixfr_fallback = xfr_kind("ixfr_fallback");
  x.up_to_date = xfr_kind("up_to_date");
  x.refused = xfr_kind("refused");

  auto& k = out.replica_compiles;
  const auto compile_path = [&](const char* name) {
    return event_sum(snap, "akadns_zone_compile_total", "path", name);
  };
  k.compiles = compile_path("full");
  k.incremental_compiles = compile_path("incremental");
  k.adopted = compile_path("adopted");
  k.total_micros = snap.sum("akadns_zone_compile_micros_total");
  k.last_micros = snap.gauge_value("akadns_zone_compile_last_micros");
  k.last_nodes = snap.gauge_value("akadns_zone_compile_last_nodes");
  k.last_fragments = snap.gauge_value("akadns_zone_compile_last_fragments");
  k.last_reused_nodes = snap.gauge_value("akadns_zone_compile_last_reused_nodes");
  return out;
}

ServerStats Server::stats() const {
  return render_server_stats(metrics_snapshot(), workers_.size(),
                             config_.defense.enabled);
}

}  // namespace akadns::net
