// The clock abstraction that makes the defense pipeline transport-
// agnostic.
//
// The query-scoring defense stack (src/defense) is pure control logic
// over *time*: leaky/token buckets refill against it, NXDOMAIN windows
// and firewall rule TTLs expire against it, loyalty ages against it.
// The simulator needs that time to be the EventScheduler's simulated
// instant (bit-for-bit determinism); the real-socket frontend needs it
// to be CLOCK_MONOTONIC. Both are expressed as a Timepoint — nanoseconds
// since a clock-defined epoch — read through the Clock interface, so one
// DefenseEngine implementation serves both frontends.
//
// Timepoint deliberately aliases SimTime: every duration/arithmetic
// helper, every filter, and every bucket already speaks SimTime, and the
// alias makes "sim time" just one Clock among others instead of a
// pervasive assumption.
#pragma once

#include <chrono>

#include "common/sim_time.hpp"

namespace akadns {

/// An instant on some Clock's axis: nanoseconds since that clock's epoch.
using Timepoint = SimTime;

class Clock {
 public:
  virtual ~Clock() = default;

  /// The current instant. Implementations must be safe to call from the
  /// thread(s) driving the owning engine (the sim's ManualClock is
  /// written only between parallel phases; MonotonicClock is stateless).
  virtual Timepoint now() const noexcept = 0;
};

/// Externally-driven clock for simulated frontends: the driver sets the
/// instant (from the EventScheduler) before invoking the consumer, so
/// results depend only on the injected schedule — never on wall time.
class ManualClock final : public Clock {
 public:
  ManualClock() = default;
  explicit ManualClock(Timepoint start) noexcept : now_(start) {}

  Timepoint now() const noexcept override { return now_; }

  void set(Timepoint t) noexcept { now_ = t; }
  void advance(Duration d) noexcept { now_ += d; }

 private:
  Timepoint now_ = Timepoint::origin();
};

/// Wall clock for real frontends: CLOCK_MONOTONIC, with the epoch fixed
/// at construction (or shared explicitly so several components — e.g.
/// every worker of a server — agree on one axis).
class MonotonicClock final : public Clock {
 public:
  using Steady = std::chrono::steady_clock;

  MonotonicClock() noexcept : epoch_(Steady::now()) {}
  explicit MonotonicClock(Steady::time_point epoch) noexcept : epoch_(epoch) {}

  Timepoint now() const noexcept override {
    return Timepoint::from_nanos(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Steady::now() - epoch_).count());
  }

  Steady::time_point epoch() const noexcept { return epoch_; }

 private:
  Steady::time_point epoch_;
};

}  // namespace akadns
