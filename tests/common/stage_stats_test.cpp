#include "common/stage_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace akadns {
namespace {

TEST(LatencyRecorder, EmptyIsAllZeros) {
  LatencyRecorder r;
  EXPECT_EQ(r.count(), 0u);
  EXPECT_DOUBLE_EQ(r.moments().mean(), 0.0);
  EXPECT_DOUBLE_EQ(r.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(r.quantile(0.99), 0.0);
}

TEST(LatencyRecorder, SingleSample) {
  LatencyRecorder r;
  r.record(5000.0);
  EXPECT_EQ(r.count(), 1u);
  EXPECT_DOUBLE_EQ(r.moments().mean(), 5000.0);
  EXPECT_DOUBLE_EQ(r.moments().min(), 5000.0);
  EXPECT_DOUBLE_EQ(r.moments().max(), 5000.0);
  // Histogram quantiles are bucket-approximate: within one log10/8 bucket.
  const double p50 = r.quantile(0.5);
  EXPECT_GE(p50, 5000.0 / std::pow(10.0, 1.0 / 8.0));
  EXPECT_LE(p50, 5000.0 * std::pow(10.0, 1.0 / 8.0));
}

TEST(LatencyRecorder, MergeWithEmptyIsIdentityBothWays) {
  LatencyRecorder filled, empty;
  for (double v : {100.0, 1000.0, 10000.0}) filled.record(v);
  const double mean = filled.moments().mean();
  const double p50 = filled.quantile(0.5);

  filled.merge(empty);
  EXPECT_EQ(filled.count(), 3u);
  EXPECT_DOUBLE_EQ(filled.moments().mean(), mean);
  EXPECT_DOUBLE_EQ(filled.quantile(0.5), p50);

  empty.merge(filled);
  EXPECT_EQ(empty.count(), 3u);
  EXPECT_DOUBLE_EQ(empty.moments().mean(), mean);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), p50);
  EXPECT_DOUBLE_EQ(empty.moments().min(), 100.0);
  EXPECT_DOUBLE_EQ(empty.moments().max(), 10000.0);
}

TEST(LatencyRecorder, MergeIsCommutative) {
  LatencyRecorder a, b;
  for (int i = 1; i <= 300; ++i) a.record(50.0 * i);
  for (int i = 1; i <= 500; ++i) b.record(20000.0 + 11.0 * i);
  LatencyRecorder ab = a;
  ab.merge(b);
  LatencyRecorder ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_NEAR(ab.moments().mean(), ba.moments().mean(), 1e-6);
  EXPECT_NEAR(ab.moments().variance(), ba.moments().variance(), 1e-3);
  EXPECT_DOUBLE_EQ(ab.moments().min(), ba.moments().min());
  EXPECT_DOUBLE_EQ(ab.moments().max(), ba.moments().max());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(ab.quantile(q), ba.quantile(q)) << "q=" << q;
  }
}

TEST(LatencyRecorder, MergeMatchesCombinedRecording) {
  LatencyRecorder a, b, combined;
  for (int i = 1; i <= 100; ++i) {
    a.record(i * 100.0);
    combined.record(i * 100.0);
  }
  for (int i = 1; i <= 150; ++i) {
    b.record(i * 777.0);
    combined.record(i * 777.0);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.moments().mean(), combined.moments().mean(), 1e-6);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), combined.quantile(0.5));
  EXPECT_DOUBLE_EQ(a.quantile(0.99), combined.quantile(0.99));
}

TEST(StageTimer, RecordsAtScopeExit) {
  LatencyRecorder r;
  { StageTimer t(r); }
  EXPECT_EQ(r.count(), 1u);
  EXPECT_GE(r.moments().max(), 0.0);
}

}  // namespace
}  // namespace akadns
