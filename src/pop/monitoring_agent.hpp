// On-machine monitoring agent (§4.2.1, Figure 6).
//
// "Every nameserver is monitored by an on-machine monitoring agent that
// continually runs a suite of tests against the nameserver and detects
// incorrect or missing responses. The test suite includes DNS queries
// for each DNS zone and regression tests for known failure cases. If a
// failure is detected, that machine is self-suspended: the monitoring
// agent instructs the BGP-speaker to withdraw anycast advertisement."
//
// Self-suspension is gated by the SuspensionCoordinator quota so that a
// fleet-wide bug (possibly in the agent itself) cannot suspend everyone
// at once. Crashed nameservers are restarted. Machines that recover are
// resumed and re-advertised.
#pragma once

#include "common/event_scheduler.hpp"
#include "pop/machine.hpp"
#include "pop/suspension.hpp"
#include "zone/zone_store.hpp"

namespace akadns::pop {

struct MonitoringAgentConfig {
  Duration check_interval = Duration::seconds(1);
  /// Extra regression-test questions beyond the per-zone SOA probes.
  std::vector<dns::Question> regression_tests;
};

struct MonitoringAgentStats {
  std::uint64_t checks = 0;
  std::uint64_t failures_detected = 0;
  std::uint64_t suspensions = 0;
  std::uint64_t suspension_denied = 0;
  std::uint64_t restarts = 0;
  std::uint64_t recoveries = 0;
};

class MonitoringAgent {
 public:
  MonitoringAgent(Machine& machine, const zone::ZoneStore& store,
                  SuspensionCoordinator& coordinator, EventScheduler& scheduler,
                  MonitoringAgentConfig config = {});
  ~MonitoringAgent();

  MonitoringAgent(const MonitoringAgent&) = delete;
  MonitoringAgent& operator=(const MonitoringAgent&) = delete;

  /// Begins periodic checking.
  void start();
  void stop();

  /// Runs one health check immediately and takes the resulting action.
  /// Returns true if the machine is healthy.
  bool check_now();

  const MonitoringAgentStats& stats() const noexcept { return stats_; }

 private:
  /// Test suite: a SOA probe per hosted zone + regression questions +
  /// staleness. Returns a failure description or empty if healthy.
  std::string run_test_suite(SimTime now);

  void schedule_next();

  Machine& machine_;
  const zone::ZoneStore& store_;
  SuspensionCoordinator& coordinator_;
  EventScheduler& scheduler_;
  MonitoringAgentConfig config_;
  MonitoringAgentStats stats_;
  bool running_ = false;
  bool holding_suspension_ = false;
  EventScheduler::EventId pending_event_ = 0;
};

}  // namespace akadns::pop
