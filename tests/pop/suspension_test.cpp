#include "pop/suspension.hpp"

#include <gtest/gtest.h>

namespace akadns::pop {
namespace {

TEST(SuspensionCoordinator, GrantsWithinQuota) {
  SuspensionCoordinator coord({.max_suspended_fraction = 0.25, .min_allowed = 1});
  for (int i = 0; i < 8; ++i) coord.register_machine("m" + std::to_string(i));
  EXPECT_EQ(coord.quota(), 2u);
  EXPECT_TRUE(coord.request_suspension("m0"));
  EXPECT_TRUE(coord.request_suspension("m1"));
  EXPECT_FALSE(coord.request_suspension("m2"));  // quota reached
  EXPECT_EQ(coord.suspended_count(), 2u);
  EXPECT_EQ(coord.denied_requests(), 1u);
}

TEST(SuspensionCoordinator, ReleaseFreesSlot) {
  SuspensionCoordinator coord({.max_suspended_fraction = 0.25, .min_allowed = 1});
  for (int i = 0; i < 4; ++i) coord.register_machine("m" + std::to_string(i));
  EXPECT_TRUE(coord.request_suspension("m0"));
  EXPECT_FALSE(coord.request_suspension("m1"));
  coord.release("m0");
  EXPECT_TRUE(coord.request_suspension("m1"));
}

TEST(SuspensionCoordinator, RepeatRequestFromHolderIsGranted) {
  SuspensionCoordinator coord({.max_suspended_fraction = 0.25, .min_allowed = 1});
  for (int i = 0; i < 4; ++i) coord.register_machine("m" + std::to_string(i));
  EXPECT_TRUE(coord.request_suspension("m0"));
  EXPECT_TRUE(coord.request_suspension("m0"));
  EXPECT_EQ(coord.suspended_count(), 1u);
}

TEST(SuspensionCoordinator, MinAllowedFloor) {
  // Tiny fleets can always suspend one bad machine.
  SuspensionCoordinator coord({.max_suspended_fraction = 0.1, .min_allowed = 1});
  coord.register_machine("only");
  EXPECT_EQ(coord.quota(), 1u);
  EXPECT_TRUE(coord.request_suspension("only"));
}

TEST(SuspensionCoordinator, WidespreadFailureIsCapped) {
  // The scenario the paper defends against: every machine wants to
  // self-suspend (e.g. a bug in the agent) — most are denied, capacity
  // is preserved.
  SuspensionCoordinator coord({.max_suspended_fraction = 0.25, .min_allowed = 1});
  for (int i = 0; i < 100; ++i) coord.register_machine("m" + std::to_string(i));
  int granted = 0;
  for (int i = 0; i < 100; ++i) {
    if (coord.request_suspension("m" + std::to_string(i))) ++granted;
  }
  EXPECT_EQ(granted, 25);
  EXPECT_EQ(coord.denied_requests(), 75u);
}

TEST(SuspensionCoordinator, UnknownMachineRejected) {
  SuspensionCoordinator coord;
  EXPECT_FALSE(coord.request_suspension("ghost"));
}

TEST(SuspensionCoordinator, UnregisterReleasesSuspension) {
  SuspensionCoordinator coord({.max_suspended_fraction = 0.5, .min_allowed = 1});
  coord.register_machine("a");
  coord.register_machine("b");
  EXPECT_TRUE(coord.request_suspension("a"));
  coord.unregister_machine("a");
  EXPECT_EQ(coord.suspended_count(), 0u);
  EXPECT_EQ(coord.fleet_size(), 1u);
}

TEST(SuspensionQuotaPolicy, MinServingRefusesToEmptyThePop) {
  // The fleet's configuration: even when the quota itself has room,
  // a grant that would leave nobody serving is refused.
  const SuspensionQuotaConfig config{
      .max_suspended_fraction = 1.0, .min_allowed = 1, .min_serving = 1};
  EXPECT_EQ(suspension_quota(config, 3), 3u);
  EXPECT_TRUE(suspension_allowed(config, 3, 0));
  EXPECT_TRUE(suspension_allowed(config, 3, 1));
  EXPECT_FALSE(suspension_allowed(config, 3, 2));  // would leave 0 serving
  // A singleton fleet can never suspend with min_serving = 1...
  EXPECT_FALSE(suspension_allowed(config, 1, 0));
  // ...but the legacy sim semantics (min_serving = 0) still can.
  const SuspensionQuotaConfig legacy{
      .max_suspended_fraction = 0.1, .min_allowed = 1, .min_serving = 0};
  EXPECT_TRUE(suspension_allowed(legacy, 1, 0));
}

TEST(SuspensionCoordinator, MinServingBindsThroughTheCoordinator) {
  SuspensionCoordinator coord(
      {.max_suspended_fraction = 1.0, .min_allowed = 1, .min_serving = 1});
  for (int i = 0; i < 3; ++i) coord.register_machine("m" + std::to_string(i));
  EXPECT_TRUE(coord.request_suspension("m0"));
  EXPECT_TRUE(coord.request_suspension("m1"));
  // The last serving machine is never granted, regardless of quota room.
  EXPECT_FALSE(coord.request_suspension("m2"));
  EXPECT_EQ(coord.denied_requests(), 1u);
  // A crashed machine leaves the fleet entirely; the serving floor then
  // binds on what is left.
  coord.unregister_machine("m1");
  EXPECT_FALSE(coord.request_suspension("m2"));
}

TEST(SuspensionCoordinator, IsSuspendedQuery) {
  SuspensionCoordinator coord;
  coord.register_machine("a");
  EXPECT_FALSE(coord.is_suspended("a"));
  coord.request_suspension("a");
  EXPECT_TRUE(coord.is_suspended("a"));
}

}  // namespace
}  // namespace akadns::pop
