file(REMOVE_RECURSE
  "CMakeFiles/akadns_control.dir/control_plane.cpp.o"
  "CMakeFiles/akadns_control.dir/control_plane.cpp.o.d"
  "CMakeFiles/akadns_control.dir/machine_subscriber.cpp.o"
  "CMakeFiles/akadns_control.dir/machine_subscriber.cpp.o.d"
  "CMakeFiles/akadns_control.dir/reporting.cpp.o"
  "CMakeFiles/akadns_control.dir/reporting.cpp.o.d"
  "libakadns_control.a"
  "libakadns_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/akadns_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
