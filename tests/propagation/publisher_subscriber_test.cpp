#include "propagation/zone_publisher.hpp"

#include <gtest/gtest.h>

#include "propagation/zone_subscriber.hpp"
#include "zone/zone_builder.hpp"

namespace akadns::propagation {
namespace {

using dns::DnsName;
using zone::Zone;
using zone::ZoneBuilder;

const DnsName kApex = DnsName::from("p.example");

Zone version(std::uint32_t serial) {
  ZoneBuilder builder("p.example", serial);
  builder.soa("ns1.p.example", "hostmaster.p.example", serial);
  builder.ns("@", "ns1.p.example");
  builder.a("ns1", "10.0.0.1");
  builder.a("www", "192.0.2." + std::to_string(serial % 250 + 1));
  return builder.build();
}

TEST(ZonePublisher, FirstPublishCompilesFromScratch) {
  ManualClock clock;
  ZonePublisher publisher(clock);
  auto result = publisher.publish(version(1));
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_FALSE(result.value()->incremental);
  EXPECT_EQ(result.value()->compiled->serial(), 1u);
  EXPECT_EQ(publisher.stats().full, 1u);
  EXPECT_EQ(publisher.zone_count(), 1u);
}

TEST(ZonePublisher, SecondPublishTakesTheIncrementalPath) {
  ManualClock clock;
  ZonePublisher publisher(clock);
  ASSERT_TRUE(publisher.publish(version(1)).ok());
  auto result = publisher.publish(version(2));
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_TRUE(result.value()->incremental);
  ASSERT_FALSE(result.value()->deltas.empty());
  EXPECT_EQ(result.value()->deltas.back().to_serial, 2u);
  EXPECT_EQ(publisher.stats().incremental, 1u);
  // The incremental result answers identically to a from-scratch compile.
  const auto scratch = zone::CompiledZone::compile(std::make_shared<const Zone>(version(2)));
  EXPECT_EQ(publisher.snapshot(kApex)->content_hash(), scratch->content_hash());
}

TEST(ZonePublisher, SerialRegressionIsRejectedWithoutSideEffects) {
  ManualClock clock;
  ZonePublisher publisher(clock);
  ASSERT_TRUE(publisher.publish(version(5)).ok());
  EXPECT_FALSE(publisher.publish(version(5)).ok());
  EXPECT_FALSE(publisher.publish(version(3)).ok());
  EXPECT_EQ(publisher.stats().rejected_serial, 2u);
  EXPECT_EQ(publisher.snapshot(kApex)->serial(), 5u);
}

TEST(ZonePublisher, SoaRdataDriftForcesTheFullPath) {
  ManualClock clock;
  ZonePublisher publisher(clock);
  ASSERT_TRUE(publisher.publish(version(1)).ok());

  // Same records, new serial, but the SOA mname changed — invisible to
  // diff_zones, so only a full publish can carry it.
  ZoneBuilder drifted("p.example", 2);
  drifted.soa("ns2.p.example", "hostmaster.p.example", 2);
  drifted.ns("@", "ns1.p.example");
  drifted.a("ns1", "10.0.0.1");
  drifted.a("www", "192.0.2.3");
  auto result = publisher.publish(drifted.build());
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_FALSE(result.value()->incremental);
  EXPECT_EQ(publisher.stats().soa_drift_fallbacks, 1u);
  const auto soa = publisher.snapshot(kApex)->zone().soa();
  ASSERT_TRUE(soa.has_value());
  EXPECT_EQ(std::get<dns::SoaRecord>(soa->rdata).mname, DnsName::from("ns2.p.example"));
}

// Regression: the fanout loop once self-move-assigned each live weak_ptr
// (subs_[i] = std::move(subs_[i])), emptying it — every subscription went
// silently dead after its first update and replicas froze at v1.
TEST(ZonePublisher, SubscriptionSurvivesManyFanouts) {
  ManualClock clock;
  ZonePublisher publisher(clock);
  auto subscription = publisher.subscribe();
  std::size_t received = 0;
  for (std::uint32_t serial = 1; serial <= 6; ++serial) {
    ASSERT_TRUE(publisher.publish(version(serial)).ok());
    received += subscription->drain().size();
  }
  EXPECT_EQ(received, 6u);
}

TEST(ZonePublisher, DeadSubscriptionsArePrunedLiveOnesKept) {
  ManualClock clock;
  ZonePublisher publisher(clock);
  auto dead = publisher.subscribe();
  auto live = publisher.subscribe();
  dead.reset();  // subscriber went away; fanout must skip and prune it
  ASSERT_TRUE(publisher.publish(version(1)).ok());
  ASSERT_TRUE(publisher.publish(version(2)).ok());
  EXPECT_EQ(live->drain().size(), 2u);
}

TEST(ZonePublisher, WakeFiresOncePerUpdate) {
  ManualClock clock;
  ZonePublisher publisher(clock);
  int wakes = 0;
  auto subscription = publisher.subscribe([&] { ++wakes; });
  ASSERT_TRUE(publisher.publish(version(1)).ok());
  ASSERT_TRUE(publisher.publish(version(2)).ok());
  EXPECT_EQ(wakes, 2);
  EXPECT_TRUE(subscription->pending());
  EXPECT_EQ(subscription->drain().size(), 2u);
  EXPECT_FALSE(subscription->pending());
}

TEST(ZonePublisher, ApplyChainIngestsAReceivedDeltaChain) {
  ManualClock clock;
  // Source evolves 1 -> 4 and journals every step.
  ZonePublisher source(clock);
  for (std::uint32_t serial = 1; serial <= 4; ++serial) {
    ASSERT_TRUE(source.publish(version(serial)).ok());
  }
  const auto chain = source.chain(kApex, 1, 4);
  ASSERT_TRUE(chain.has_value());
  ASSERT_EQ(chain->size(), 3u);

  // A secondary at serial 1 replays the chain through its own publisher.
  ZonePublisher secondary(clock);
  ASSERT_TRUE(secondary.publish(version(1)).ok());
  auto result = secondary.apply_chain(*chain);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(secondary.snapshot(kApex)->serial(), 4u);
  EXPECT_EQ(secondary.snapshot(kApex)->content_hash(), source.snapshot(kApex)->content_hash());
  EXPECT_EQ(secondary.stats().chains_applied, 1u);
}

TEST(ZonePublisher, ApplyChainSkipsTheAlreadyHeldPrefix) {
  ManualClock clock;
  ZonePublisher source(clock);
  for (std::uint32_t serial = 1; serial <= 4; ++serial) {
    ASSERT_TRUE(source.publish(version(serial)).ok());
  }
  ZonePublisher secondary(clock);
  ASSERT_TRUE(secondary.publish(version(3)).ok());
  auto result = secondary.apply_chain(*source.chain(kApex, 1, 4));
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(secondary.snapshot(kApex)->serial(), 4u);
}

TEST(ZonePublisher, ApplyChainGapFailsWithoutSideEffects) {
  ManualClock clock;
  ZonePublisher source(clock);
  for (std::uint32_t serial = 1; serial <= 4; ++serial) {
    ASSERT_TRUE(source.publish(version(serial)).ok());
  }
  // Secondary holds serial 1 but the chain starts at 3: unknowable gap.
  const auto chain = source.chain(kApex, 3, 4);
  ASSERT_TRUE(chain.has_value());
  ZonePublisher secondary(clock);
  ASSERT_TRUE(secondary.publish(version(1)).ok());
  auto result = secondary.apply_chain(*chain);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(secondary.snapshot(kApex)->serial(), 1u);  // untouched
}

TEST(ZoneSubscriber, AttachSeedsTheReplica) {
  ManualClock clock;
  ZonePublisher publisher(clock);
  ASSERT_TRUE(publisher.publish(version(3)).ok());
  zone::ZoneStore replica;
  ZoneSubscriber subscriber(replica);
  subscriber.attach(publisher);
  ASSERT_NE(replica.find_compiled(kApex), nullptr);
  EXPECT_EQ(replica.find_compiled(kApex)->serial(), 3u);
}

TEST(ZoneSubscriber, PollAdoptsTheCompiledSnapshot) {
  ManualClock clock;
  ZonePublisher publisher(clock);
  ASSERT_TRUE(publisher.publish(version(1)).ok());
  zone::ZoneStore replica;
  ZoneSubscriber subscriber(replica);
  subscriber.attach(publisher);
  const auto generation_before = replica.generation();

  ASSERT_TRUE(publisher.publish(version(2)).ok());
  EXPECT_TRUE(subscriber.has_pending());
  EXPECT_EQ(subscriber.poll(clock.now()), 1u);
  EXPECT_FALSE(subscriber.has_pending());
  // In-process fast path: the very same compiled snapshot, and a
  // generation bump so answer caches notice.
  EXPECT_EQ(replica.find_compiled(kApex).get(), publisher.snapshot(kApex).get());
  EXPECT_GT(replica.generation(), generation_before);
  EXPECT_EQ(subscriber.stats().adopted, 1u);
}

TEST(ZoneSubscriber, DeltaReplayMatchesAdoptionByteForByte) {
  ManualClock clock;
  ZonePublisher publisher(clock);
  ASSERT_TRUE(publisher.publish(version(1)).ok());

  // The wire-style subscriber replays deltas through its own incremental
  // compiler instead of swapping pointers.
  zone::ZoneStore replica;
  ZoneSubscriber subscriber(replica, {.adopt_compiled = false});
  subscriber.attach(publisher);

  for (std::uint32_t serial = 2; serial <= 5; ++serial) {
    ASSERT_TRUE(publisher.publish(version(serial)).ok());
  }
  subscriber.poll(clock.now());
  ASSERT_NE(replica.find_compiled(kApex), nullptr);
  EXPECT_EQ(replica.find_compiled(kApex)->serial(), 5u);
  EXPECT_NE(replica.find_compiled(kApex).get(), publisher.snapshot(kApex).get());
  EXPECT_EQ(replica.find_compiled(kApex)->content_hash(),
            publisher.snapshot(kApex)->content_hash());
  EXPECT_GT(subscriber.stats().incremental + subscriber.stats().full, 0u);
}

TEST(ZoneSubscriber, StaleUpdatesAreNoops) {
  ManualClock clock;
  ZonePublisher publisher(clock);
  auto first = publisher.publish(version(1));
  ASSERT_TRUE(first.ok());
  auto second = publisher.publish(version(2));
  ASSERT_TRUE(second.ok());

  zone::ZoneStore replica;
  ZoneSubscriber subscriber(replica);
  subscriber.attach(publisher);  // seeded at serial 2
  subscriber.apply(*first.value(), clock.now());
  EXPECT_EQ(subscriber.stats().noops, 1u);
  EXPECT_EQ(replica.find_compiled(kApex)->serial(), 2u);
}

TEST(ZoneSubscriber, LatencyIsMeasuredOnThePublisherClock) {
  ManualClock clock;
  ZonePublisher publisher(clock);
  zone::ZoneStore replica;
  ZoneSubscriber subscriber(replica);
  subscriber.attach(publisher);

  ASSERT_TRUE(publisher.publish(version(1)).ok());
  clock.advance(Duration::millis(7));
  subscriber.poll(clock.now());
  EXPECT_EQ(subscriber.stats().last_latency_ns,
            static_cast<std::uint64_t>(Duration::millis(7).count_nanos()));
  EXPECT_EQ(subscriber.stats().max_latency_ns, subscriber.stats().last_latency_ns);
}

}  // namespace
}  // namespace akadns::propagation
