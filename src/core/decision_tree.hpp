// The anycast traffic-engineering decision tree of Figure 9 (§4.3.2).
//
// During a DDoS attack a human operator walks this tree. The preferred
// action is always *do nothing* — any active reaction leaks information
// to the attacker and can defeat the history-based filters. We encode
// the tree as a pure function from observed conditions to the
// recommended action, plus an `explain` rendering for operator tooling.
#pragma once

#include <string>

namespace akadns::core {

struct AttackConditions {
  /// Are legitimate resolvers actually denied service? (Known from
  /// external monitoring and information sharing with peers.)
  bool resolvers_dosed = false;
  /// Is one or more peering link congested (bandwidth saturation)?
  bool peering_links_congested = false;
  /// Is nameserver compute saturated?
  bool compute_saturated = false;
  /// Can the attack be spread across more links/PoPs by withdrawing
  /// from the congested attack-sourcing links?
  bool can_spread_attack = false;
};

enum class TrafficAction : std::uint8_t {
  DoNothing,                        // I
  WorkWithPeers,                    // II: upstream congestion
  WithdrawFractionOfAttackLinks,    // III: compute saturated -> disperse
  WithdrawAllAttackLinks,           // IV: links congested, can spread
  WithdrawNonAttackLinks,           // V: cannot spread -> evacuate legit
};

std::string to_string(TrafficAction action);

/// Walks Figure 9.
TrafficAction decide(const AttackConditions& conditions);

/// Human-readable rationale matching the paper's narration of each leaf.
std::string explain(const AttackConditions& conditions);

}  // namespace akadns::core
