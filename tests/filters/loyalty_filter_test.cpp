#include "filters/loyalty_filter.hpp"

#include <gtest/gtest.h>

namespace akadns::filters {
namespace {

// QueryContext references its question; a static keeps it alive.
const dns::Question& fixed_question() {
  static const dns::Question q{dns::DnsName::from("q.example.com"), dns::RecordType::A,
                               dns::RecordClass::IN};
  return q;
}

QueryContext make_ctx(const char* ip, SimTime now) {
  return QueryContext{Endpoint{*IpAddr::parse(ip), 5353}, 64, fixed_question(), now};
}

TEST(LoyaltyFilter, PreTrainedSourceIsLoyal) {
  LoyaltyFilter filter({.penalty = 40.0});
  const auto t = SimTime::origin() + Duration::days(1);
  filter.learn(*IpAddr::parse("192.0.2.1"), t);
  EXPECT_TRUE(filter.is_loyal(*IpAddr::parse("192.0.2.1"), t));
  EXPECT_DOUBLE_EQ(filter.score(make_ctx("192.0.2.1", t)), 0.0);
}

TEST(LoyaltyFilter, StrangerPenalized) {
  LoyaltyFilter filter({.penalty = 40.0});
  const auto t = SimTime::origin() + Duration::days(1);
  EXPECT_DOUBLE_EQ(filter.score(make_ctx("203.0.113.1", t)), 40.0);
  EXPECT_EQ(filter.total_penalized(), 1u);
}

TEST(LoyaltyFilter, NewcomerRipensIntoLoyalty) {
  LoyaltyFilter filter({.penalty = 40.0, .ripen_after = Duration::hours(1)});
  auto t = SimTime::origin() + Duration::days(1);
  // First contact: penalized (not yet loyal), but begins ripening.
  EXPECT_GT(filter.score(make_ctx("198.51.100.1", t)), 0.0);
  // Still within the ripening period.
  t += Duration::minutes(30);
  EXPECT_GT(filter.score(make_ctx("198.51.100.1", t)), 0.0);
  // After the ripening period, queries are clean.
  t += Duration::minutes(31);
  EXPECT_DOUBLE_EQ(filter.score(make_ctx("198.51.100.1", t)), 0.0);
}

TEST(LoyaltyFilter, AttackerCannotRipenDuringShortAttack) {
  // The whole point: a spoofing attacker whose traffic starts with the
  // attack stays penalized for the attack's duration (<< ripen_after).
  LoyaltyFilter filter({.penalty = 40.0, .ripen_after = Duration::hours(1)});
  auto t = SimTime::origin() + Duration::days(1);
  int penalized = 0;
  for (int i = 0; i < 600; ++i) {  // 10-minute attack, 1 query/sec
    if (filter.score(make_ctx("203.0.113.66", t)) > 0) ++penalized;
    t += Duration::seconds(1);
  }
  EXPECT_EQ(penalized, 600);
}

TEST(LoyaltyFilter, MembershipExpiresWhenIdle) {
  LoyaltyFilter filter({.expiry = Duration::days(14)});
  auto t = SimTime::origin() + Duration::days(1);
  filter.learn(*IpAddr::parse("192.0.2.9"), t);
  EXPECT_TRUE(filter.is_loyal(*IpAddr::parse("192.0.2.9"), t));
  // 20 idle days later the membership is gone...
  t += Duration::days(20);
  EXPECT_FALSE(filter.is_loyal(*IpAddr::parse("192.0.2.9"), t));
  // ...and the source must ripen afresh.
  EXPECT_GT(filter.score(make_ctx("192.0.2.9", t)), 0.0);
}

TEST(LoyaltyFilter, SteadyTrafficKeepsMembershipAlive) {
  LoyaltyFilter filter({.expiry = Duration::days(14)});
  auto t = SimTime::origin() + Duration::days(1);
  filter.learn(*IpAddr::parse("192.0.2.10"), t);
  // Query every 7 days for 10 weeks: never expires.
  for (int week = 0; week < 10; ++week) {
    t += Duration::days(7);
    EXPECT_DOUBLE_EQ(filter.score(make_ctx("192.0.2.10", t)), 0.0) << "week " << week;
  }
}

TEST(LoyaltyFilter, TrackedSourceCap) {
  LoyaltyFilter filter({.max_tracked_sources = 2});
  const auto t = SimTime::origin() + Duration::days(1);
  filter.learn(*IpAddr::parse("10.0.0.1"), t);
  filter.learn(*IpAddr::parse("10.0.0.2"), t);
  filter.learn(*IpAddr::parse("10.0.0.3"), t);
  EXPECT_EQ(filter.tracked_sources(), 2u);
}

}  // namespace
}  // namespace akadns::filters
