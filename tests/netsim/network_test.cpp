#include "netsim/network.hpp"

#include <gtest/gtest.h>

#include "netsim/topology.hpp"

namespace akadns::netsim {
namespace {

NetworkConfig fast_config() {
  NetworkConfig config;
  config.processing_delay_min = Duration::millis(1);
  config.processing_delay_max = Duration::millis(5);
  config.slow_mrai_fraction = 0.0;  // deterministic-ish tests
  config.fast_mrai_min = Duration::millis(10);
  config.fast_mrai_max = Duration::millis(30);
  return config;
}

TEST(Network, AddNodesAndLinks) {
  EventScheduler sched;
  Network net(sched, fast_config(), 1);
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  net.add_link(a, b, Duration::millis(10), LinkKind::ProviderToCustomer);
  EXPECT_EQ(net.node_count(), 2u);
  EXPECT_TRUE(net.has_link(a, b));
  EXPECT_TRUE(net.has_link(b, a));
  EXPECT_EQ(net.relationship(a, b), NeighborRel::Customer);  // b is a's customer
  EXPECT_EQ(net.relationship(b, a), NeighborRel::Provider);
  EXPECT_EQ(net.link_delay(a, b), Duration::millis(10));
  EXPECT_EQ(net.label(a), "a");
}

TEST(Network, RejectsBadLinks) {
  EventScheduler sched;
  Network net(sched, fast_config(), 1);
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  EXPECT_THROW(net.add_link(a, a, Duration::millis(1), LinkKind::PeerToPeer),
               std::invalid_argument);
  net.add_link(a, b, Duration::millis(1), LinkKind::PeerToPeer);
  EXPECT_THROW(net.add_link(b, a, Duration::millis(1), LinkKind::PeerToPeer),
               std::invalid_argument);
}

TEST(Network, AdvertisementPropagatesAlongChain) {
  EventScheduler sched;
  Network net(sched, fast_config(), 2);
  const auto chain = build_chain(net, 5, Duration::millis(10));
  net.advertise(chain[0], /*prefix=*/7);
  sched.run();
  for (const auto node : chain) {
    EXPECT_TRUE(net.has_route(node, 7)) << net.label(node);
    EXPECT_EQ(net.catchment_origin(node, 7), chain[0]);
  }
  // AS path from the far end traverses the whole chain.
  const auto path = net.best_path(chain[4], 7);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path.back(), chain[0]);
}

TEST(Network, PropagationTakesLinkAndProcessingTime) {
  EventScheduler sched;
  Network net(sched, fast_config(), 3);
  const auto chain = build_chain(net, 4, Duration::millis(50));
  net.advertise(chain[0], 1);
  // Immediately: no one else has the route yet.
  EXPECT_FALSE(net.has_route(chain[3], 1));
  sched.run();
  EXPECT_TRUE(net.has_route(chain[3], 1));
  // Propagation over 3 hops at >= 50ms+1ms each.
  EXPECT_GE(sched.now().to_seconds(), 0.153);
}

TEST(Network, WithdrawalRemovesRoutes) {
  EventScheduler sched;
  Network net(sched, fast_config(), 4);
  const auto chain = build_chain(net, 4, Duration::millis(10));
  net.advertise(chain[0], 1);
  sched.run();
  net.withdraw(chain[0], 1);
  sched.run();
  for (const auto node : chain) {
    EXPECT_FALSE(net.has_route(node, 1)) << net.label(node);
    EXPECT_EQ(net.catchment_origin(node, 1), kInvalidNode);
  }
}

/// Valley-free "tent": m2 at the top provides transit to m1 and m3;
/// anycast origins X and Y hang off m1 and m3 as customers.
struct Tent {
  NodeId x, m1, m2, m3, y;
};
Tent build_tent(Network& net) {
  Tent t;
  t.x = net.add_node("X");
  t.m1 = net.add_node("m1");
  t.m2 = net.add_node("m2");
  t.m3 = net.add_node("m3");
  t.y = net.add_node("Y");
  net.add_link(t.m1, t.x, Duration::millis(10), LinkKind::ProviderToCustomer);
  net.add_link(t.m2, t.m1, Duration::millis(10), LinkKind::ProviderToCustomer);
  net.add_link(t.m2, t.m3, Duration::millis(10), LinkKind::ProviderToCustomer);
  net.add_link(t.m3, t.y, Duration::millis(10), LinkKind::ProviderToCustomer);
  return t;
}

TEST(Network, AnycastPrefersCloserOrigin) {
  EventScheduler sched;
  Network net(sched, fast_config(), 5);
  const Tent tent = build_tent(net);
  net.advertise(tent.x, 9);
  net.advertise(tent.y, 9);
  sched.run();
  // Each side routes to its own customer-side origin.
  EXPECT_EQ(net.catchment_origin(tent.m1, 9), tent.x);
  EXPECT_EQ(net.catchment_origin(tent.m3, 9), tent.y);
  // The apex sees two equal customer routes; deterministic tiebreak.
  const auto apex_origin = net.catchment_origin(tent.m2, 9);
  EXPECT_TRUE(apex_origin == tent.x || apex_origin == tent.y);
}

TEST(Network, AnycastFailoverShiftsCatchment) {
  EventScheduler sched;
  Network net(sched, fast_config(), 6);
  const Tent tent = build_tent(net);
  net.advertise(tent.x, 9);
  net.advertise(tent.y, 9);
  sched.run();
  ASSERT_EQ(net.catchment_origin(tent.m1, 9), tent.x);
  net.withdraw(tent.x, 9);
  sched.run();
  // Everyone fails over to the surviving origin.
  for (const auto node : {tent.x, tent.m1, tent.m2, tent.m3}) {
    EXPECT_EQ(net.catchment_origin(node, 9), tent.y) << net.label(node);
  }
}

TEST(Network, GaoRexfordPeerRoutesNotExportedToPeers) {
  EventScheduler sched;
  Network net(sched, fast_config(), 7);
  // origin --customer-of--> t1 <--peer--> t2 <--peer--> t3
  const auto origin = net.add_node("origin");
  const auto t1 = net.add_node("t1");
  const auto t2 = net.add_node("t2");
  const auto t3 = net.add_node("t3");
  net.add_link(t1, origin, Duration::millis(5), LinkKind::ProviderToCustomer);
  net.add_link(t1, t2, Duration::millis(5), LinkKind::PeerToPeer);
  net.add_link(t2, t3, Duration::millis(5), LinkKind::PeerToPeer);
  net.advertise(origin, 1);
  sched.run();
  EXPECT_TRUE(net.has_route(t1, 1));   // customer route
  EXPECT_TRUE(net.has_route(t2, 1));   // t1 exports customer route to peer
  EXPECT_FALSE(net.has_route(t3, 1));  // t2 must not re-export a peer route to a peer
}

TEST(Network, CustomerRoutePreferredOverPeerRoute) {
  EventScheduler sched;
  Network net(sched, fast_config(), 8);
  // t has both a customer path (longer) and a peer path (shorter) to the
  // origin; policy prefers the customer path.
  const auto origin = net.add_node("origin");
  const auto mid = net.add_node("mid");
  const auto t = net.add_node("t");
  const auto peer = net.add_node("peer");
  net.add_link(mid, origin, Duration::millis(5), LinkKind::ProviderToCustomer);
  net.add_link(t, mid, Duration::millis(5), LinkKind::ProviderToCustomer);  // mid is t's customer
  net.add_link(peer, origin, Duration::millis(5), LinkKind::ProviderToCustomer);
  net.add_link(t, peer, Duration::millis(5), LinkKind::PeerToPeer);
  net.advertise(origin, 1);
  sched.run();
  const auto path = net.best_path(t, 1);
  ASSERT_EQ(path.size(), 2u);  // via mid (customer) though the peer path is equal length
  EXPECT_EQ(path[0], mid);
  EXPECT_EQ(path[1], origin);
}

TEST(Network, PerPeerExportControl) {
  EventScheduler sched;
  Network net(sched, fast_config(), 9);
  const auto origin = net.add_node("origin");
  const auto p1 = net.add_node("p1");
  const auto p2 = net.add_node("p2");
  net.add_link(p1, origin, Duration::millis(5), LinkKind::ProviderToCustomer);
  net.add_link(p2, origin, Duration::millis(5), LinkKind::ProviderToCustomer);
  // Disable export toward p2 before advertising.
  net.set_export_enabled(origin, p2, 1, false);
  net.advertise(origin, 1);
  sched.run();
  EXPECT_TRUE(net.has_route(p1, 1));
  EXPECT_FALSE(net.has_route(p2, 1));
  // Re-enable: p2 learns the route (traffic-engineering action undone).
  net.set_export_enabled(origin, p2, 1, true);
  sched.run();
  EXPECT_TRUE(net.has_route(p2, 1));
}

TEST(Network, AnycastPacketDeliveredToCatchmentOrigin) {
  EventScheduler sched;
  Network net(sched, fast_config(), 10);
  const auto chain = build_chain(net, 3, Duration::millis(10));
  net.advertise(chain[0], 5);
  sched.run();
  NodeId delivered_at = kInvalidNode;
  std::vector<std::uint8_t> delivered_payload;
  net.attach_prefix_handler(5, [&](NodeId at, const Packet& packet) {
    delivered_at = at;
    delivered_payload = packet.payload;
  });
  net.send_to_prefix(chain[2], 5, {1, 2, 3});
  sched.run();
  EXPECT_EQ(delivered_at, chain[0]);
  EXPECT_EQ(delivered_payload, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(Network, PacketDroppedWhenNoRoute) {
  EventScheduler sched;
  Network net(sched, fast_config(), 11);
  const auto chain = build_chain(net, 3, Duration::millis(10));
  std::optional<DropReason> dropped;
  net.set_drop_handler([&](const Packet&, DropReason reason) { dropped = reason; });
  net.send_to_prefix(chain[2], 99, {});
  sched.run();
  ASSERT_TRUE(dropped);
  EXPECT_EQ(*dropped, DropReason::NoRoute);
}

TEST(Network, UnicastDeliveryAndDelay) {
  EventScheduler sched;
  Network net(sched, fast_config(), 12);
  const auto chain = build_chain(net, 4, Duration::millis(10));
  EXPECT_EQ(net.unicast_delay(chain[0], chain[3]), Duration::millis(30));
  EXPECT_EQ(net.unicast_delay(chain[2], chain[2]), Duration::zero());
  NodeId got = kInvalidNode;
  net.attach_node_handler(chain[3], [&](NodeId at, const Packet&) { got = at; });
  net.send_to_node(chain[0], chain[3], {42});
  sched.run();
  EXPECT_EQ(got, chain[3]);
  EXPECT_EQ(sched.now(), SimTime::origin() + Duration::millis(30));
}

TEST(Network, InternetTopologyFullyRoutable) {
  EventScheduler sched;
  Network net(sched, fast_config(), 13);
  TopologyConfig tconfig;
  tconfig.tier1_count = 4;
  tconfig.tier2_count = 10;
  tconfig.edge_count = 30;
  const auto topo = build_internet(net, tconfig, 99);
  EXPECT_EQ(net.node_count(), 44u);
  // Advertise from one edge; after convergence every edge can reach it.
  net.advertise(topo.edges[0], 1);
  sched.run();
  for (const auto edge : topo.edges) {
    EXPECT_EQ(net.catchment_origin(edge, 1), topo.edges[0]) << net.label(edge);
  }
}

TEST(Network, InternetAnycastCatchmentsPartition) {
  EventScheduler sched;
  Network net(sched, fast_config(), 14);
  TopologyConfig tconfig;
  tconfig.tier1_count = 4;
  tconfig.tier2_count = 12;
  tconfig.edge_count = 40;
  const auto topo = build_internet(net, tconfig, 77);
  // Two anycast origins at opposite edges.
  net.advertise(topo.edges[0], 1);
  net.advertise(topo.edges[1], 1);
  sched.run();
  std::size_t to_a = 0, to_b = 0;
  for (const auto edge : topo.edges) {
    const auto origin = net.catchment_origin(edge, 1);
    ASSERT_NE(origin, kInvalidNode) << net.label(edge);
    if (origin == topo.edges[0]) ++to_a;
    if (origin == topo.edges[1]) ++to_b;
  }
  EXPECT_EQ(to_a + to_b, topo.edges.size());
  EXPECT_GT(to_a, 0u);
  EXPECT_GT(to_b, 0u);
}

TEST(Network, UpdatesSentIsBounded) {
  // Convergence must terminate (no infinite update loops).
  EventScheduler sched;
  Network net(sched, fast_config(), 15);
  TopologyConfig tconfig;
  tconfig.tier1_count = 3;
  tconfig.tier2_count = 8;
  tconfig.edge_count = 20;
  const auto topo = build_internet(net, tconfig, 5);
  net.advertise(topo.edges[0], 1);
  sched.run();
  const auto after_advertise = net.updates_sent();
  EXPECT_GT(after_advertise, 0u);
  net.withdraw(topo.edges[0], 1);
  sched.run();
  EXPECT_LT(net.updates_sent(), after_advertise + 100000u);
  EXPECT_TRUE(sched.empty());
}

TEST(Network, ReadvertisementRestoresService) {
  EventScheduler sched;
  Network net(sched, fast_config(), 16);
  const auto chain = build_chain(net, 4, Duration::millis(10));
  net.advertise(chain[0], 1);
  sched.run();
  net.withdraw(chain[0], 1);
  sched.run();
  net.advertise(chain[0], 1);
  sched.run();
  EXPECT_EQ(net.catchment_origin(chain[3], 1), chain[0]);
}

}  // namespace
}  // namespace akadns::netsim
