#include "server/responder.hpp"

#include <gtest/gtest.h>

#include "dns/wire.hpp"
#include "zone/zone_builder.hpp"

namespace akadns::server {
namespace {

using dns::DnsName;
using dns::Message;
using dns::Rcode;
using dns::RecordType;

struct Fixture {
  zone::ZoneStore store;
  Endpoint client{*IpAddr::parse("198.51.100.1"), 4242};

  Fixture() {
    store.publish(zone::ZoneBuilder("example.com", 1)
                      .ns("@", "ns1.example.com")
                      .a("ns1", "10.0.0.1")
                      .a("www", "93.184.216.34")
                      .cname("alias", "www.example.com")
                      .cname("hop1", "hop2.example.com")
                      .cname("hop2", "www.example.com")
                      .cname("external", "cdn.example.net")
                      .cname("loop1", "loop2.example.com")
                      .cname("loop2", "loop1.example.com")
                      .ns("sub", "ns.sub.example.com")
                      .a("ns.sub", "10.0.1.1")
                      .build());
    store.publish(zone::ZoneBuilder("edgesuite.net", 1)
                      .ns("@", "ns1.edgesuite.net")
                      .a("ns1", "10.2.0.1")
                      .cname("ex", "a1.w10.akamai.net.")
                      .build());
    store.publish(zone::ZoneBuilder("akamai.net", 1)
                      .ns("@", "ns1.akamai.net")
                      .a("ns1", "10.3.0.1")
                      .a("a1.w10", "172.16.5.5")
                      .build());
  }

  Message ask(const char* qname, RecordType qtype, Responder& responder) {
    const auto query = dns::make_query(42, DnsName::from(qname), qtype);
    return responder.respond(query, client);
  }
};

TEST(Responder, AnswersHostedName) {
  Fixture f;
  Responder responder(f.store);
  const auto response = f.ask("www.example.com", RecordType::A, responder);
  EXPECT_EQ(response.header.rcode, Rcode::NoError);
  EXPECT_TRUE(response.header.aa);
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(response.answers[0].to_string(), "www.example.com. 300 IN A 93.184.216.34");
  EXPECT_EQ(responder.stats().noerror, 1u);
}

TEST(Responder, RefusesUnhostedZone) {
  Fixture f;
  Responder responder(f.store);
  const auto response = f.ask("www.google.com", RecordType::A, responder);
  EXPECT_EQ(response.header.rcode, Rcode::Refused);
  EXPECT_FALSE(response.header.aa);
  EXPECT_EQ(responder.stats().refused, 1u);
}

TEST(Responder, NxDomainWithSoa) {
  Fixture f;
  Responder responder(f.store);
  const auto response = f.ask("missing.example.com", RecordType::A, responder);
  EXPECT_EQ(response.header.rcode, Rcode::NxDomain);
  ASSERT_EQ(response.authorities.size(), 1u);
  EXPECT_EQ(response.authorities[0].type(), RecordType::SOA);
}

TEST(Responder, CnameChaseInZone) {
  Fixture f;
  Responder responder(f.store);
  const auto response = f.ask("alias.example.com", RecordType::A, responder);
  EXPECT_EQ(response.header.rcode, Rcode::NoError);
  ASSERT_EQ(response.answers.size(), 2u);
  EXPECT_EQ(response.answers[0].type(), RecordType::CNAME);
  EXPECT_EQ(response.answers[1].type(), RecordType::A);
  EXPECT_EQ(responder.stats().cname_chases, 1u);
}

TEST(Responder, MultiHopCnameChase) {
  Fixture f;
  Responder responder(f.store);
  const auto response = f.ask("hop1.example.com", RecordType::A, responder);
  EXPECT_EQ(response.header.rcode, Rcode::NoError);
  ASSERT_EQ(response.answers.size(), 3u);  // CNAME, CNAME, A
}

TEST(Responder, CrossZoneCnameChase) {
  // "www.ex.com" => "ex.edgesuite.net" => "a1.w10.akamai.net" pattern:
  // both zones hosted here, so the chain is answered in one response.
  Fixture f;
  Responder responder(f.store);
  const auto response = f.ask("ex.edgesuite.net", RecordType::A, responder);
  EXPECT_EQ(response.header.rcode, Rcode::NoError);
  ASSERT_EQ(response.answers.size(), 2u);
  EXPECT_EQ(response.answers[1].name.to_string(), "a1.w10.akamai.net.");
}

TEST(Responder, CnameToExternalZoneEndsChain) {
  Fixture f;
  Responder responder(f.store);
  const auto response = f.ask("external.example.com", RecordType::A, responder);
  EXPECT_EQ(response.header.rcode, Rcode::NoError);
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(response.answers[0].type(), RecordType::CNAME);
}

TEST(Responder, CnameLoopIsServFail) {
  Fixture f;
  Responder responder(f.store);
  const auto response = f.ask("loop1.example.com", RecordType::A, responder);
  EXPECT_EQ(response.header.rcode, Rcode::ServFail);
  EXPECT_EQ(responder.stats().servfail, 1u);
}

TEST(Responder, ReferralForDelegatedSubzone) {
  Fixture f;
  Responder responder(f.store);
  const auto response = f.ask("host.sub.example.com", RecordType::A, responder);
  EXPECT_EQ(response.header.rcode, Rcode::NoError);
  EXPECT_FALSE(response.header.aa);  // referrals are not authoritative
  ASSERT_FALSE(response.authorities.empty());
  EXPECT_EQ(response.authorities[0].type(), RecordType::NS);
  ASSERT_FALSE(response.additionals.empty());  // glue
  EXPECT_EQ(responder.stats().referrals, 1u);
}

TEST(Responder, NotImpForNonQueryOpcode) {
  Fixture f;
  Responder responder(f.store);
  auto query = dns::make_query(1, DnsName::from("www.example.com"), RecordType::A);
  query.header.opcode = dns::Opcode::Update;
  const auto response = responder.respond(query, f.client);
  EXPECT_EQ(response.header.rcode, Rcode::NotImp);
}

TEST(Responder, FormErrForZeroQuestions) {
  Fixture f;
  Responder responder(f.store);
  Message query;
  query.header.id = 9;
  const auto response = responder.respond(query, f.client);
  EXPECT_EQ(response.header.rcode, Rcode::FormErr);
}

TEST(Responder, MappingHookOverridesZoneData) {
  Fixture f;
  Responder responder(f.store);
  responder.set_mapping_hook(
      [](const dns::Question& q, const Endpoint& client,
         const std::optional<dns::ClientSubnet>&) -> std::optional<MappedAnswer> {
        if (q.name != DnsName::from("www.example.com")) return std::nullopt;
        MappedAnswer mapped;
        // Mapping returns a client-proximal edge IP, not the static one.
        const bool east = client.addr.v4().octets()[0] >= 128;
        mapped.answers.push_back(dns::make_a(q.name, east ? Ipv4Addr(172, 16, 0, 1)
                                                          : Ipv4Addr(172, 16, 0, 2), 20));
        mapped.ecs_scope_prefix_len = 24;
        return mapped;
      });
  const auto response = f.ask("www.example.com", RecordType::A, responder);
  EXPECT_EQ(response.header.rcode, Rcode::NoError);
  ASSERT_EQ(response.answers.size(), 1u);
  EXPECT_EQ(std::get<dns::ARecord>(response.answers[0].rdata).address.to_string(),
            "172.16.0.1");
  EXPECT_EQ(response.answers[0].ttl, 20u);  // low TTL for rapid remapping
  EXPECT_EQ(responder.stats().mapped_answers, 1u);
}

TEST(Responder, MappingHookEcsScopeEchoed) {
  Fixture f;
  Responder responder(f.store);
  responder.set_mapping_hook([](const dns::Question& q, const Endpoint&,
                                const std::optional<dns::ClientSubnet>& ecs)
                                 -> std::optional<MappedAnswer> {
    MappedAnswer mapped;
    mapped.answers.push_back(dns::make_a(q.name, Ipv4Addr(172, 16, 9, 9), 20));
    mapped.ecs_scope_prefix_len = ecs ? 24 : 0;
    return mapped;
  });
  auto query = dns::make_query(5, DnsName::from("www.example.com"), RecordType::A);
  dns::Edns edns;
  dns::ClientSubnet ecs;
  ecs.address = *IpAddr::parse("203.0.113.0");
  ecs.source_prefix_len = 24;
  edns.client_subnet = ecs;
  query.edns = edns;
  const auto response = responder.respond(query, f.client);
  ASSERT_TRUE(response.edns);
  ASSERT_TRUE(response.edns->client_subnet);
  EXPECT_EQ(response.edns->client_subnet->scope_prefix_len, 24);
}

TEST(Responder, RespondWireRoundTrip) {
  Fixture f;
  Responder responder(f.store);
  const auto query = dns::make_query(7, DnsName::from("www.example.com"), RecordType::A);
  const auto wire = dns::encode(query);
  const auto response_wire = responder.respond_wire(wire, f.client);
  ASSERT_TRUE(response_wire);
  const auto decoded = dns::decode(*response_wire);
  ASSERT_TRUE(decoded) << decoded.error();
  EXPECT_EQ(decoded.value().header.id, 7);
  EXPECT_EQ(decoded.value().header.rcode, Rcode::NoError);
  ASSERT_EQ(decoded.value().answers.size(), 1u);
}

TEST(Responder, RespondWireGarbageReturnsNullopt) {
  Fixture f;
  Responder responder(f.store);
  const std::vector<std::uint8_t> garbage{0xFF, 0x00, 0x01};
  EXPECT_FALSE(responder.respond_wire(garbage, f.client));
}

TEST(Responder, StatsAccumulateAndReset) {
  Fixture f;
  Responder responder(f.store);
  f.ask("www.example.com", RecordType::A, responder);
  f.ask("missing.example.com", RecordType::A, responder);
  f.ask("other.org", RecordType::A, responder);
  EXPECT_EQ(responder.stats().responses, 3u);
  EXPECT_EQ(responder.stats().noerror, 1u);
  EXPECT_EQ(responder.stats().nxdomain, 1u);
  EXPECT_EQ(responder.stats().refused, 1u);
  responder.reset_stats();
  EXPECT_EQ(responder.stats().responses, 0u);
}

}  // namespace
}  // namespace akadns::server
