#include "workload/zones.hpp"

#include <gtest/gtest.h>

namespace akadns::workload {
namespace {

HostedZonesConfig small_config() {
  HostedZonesConfig config;
  config.zone_count = 1'000;
  return config;
}

TEST(HostedZones, BuildsAllZones) {
  HostedZones zones(small_config(), 1);
  EXPECT_EQ(zones.zone_count(), 1'000u);
  EXPECT_EQ(zones.store().zone_count(), 1'000u);
  // Each hosted zone is well-formed.
  const auto zone = zones.store().find_zone(zones.apex(0));
  ASSERT_NE(zone, nullptr);
  EXPECT_TRUE(zone->validate().empty());
}

TEST(HostedZones, PopularitySkewCalibrated) {
  // Figure 2 "zones": top 1% of zones get ~88% of queries.
  HostedZones zones(small_config(), 2);
  EXPECT_NEAR(zones.mass_of_top(0.01), 0.88, 0.03);
}

TEST(HostedZones, HottestZoneMassApproximate) {
  // With 1,000 zones the two calibration targets are jointly infeasible
  // (10 zones carrying 88% forces the head above 8.8%); the shift search
  // should flatten the head as far as feasibility allows.
  HostedZones small(small_config(), 3);
  EXPECT_GT(small.zone_mass(0), 0.02);
  EXPECT_LT(small.zone_mass(0), 0.30);
  // At a paper-like population the head lands near the reported 5.5%.
  HostedZonesConfig big;
  big.zone_count = 20'000;
  big.names_min = 2;
  big.names_max = 4;  // keep construction fast
  HostedZones zones(big, 4);
  EXPECT_GT(zones.zone_mass(0), 0.03);
  EXPECT_LT(zones.zone_mass(0), 0.12);
}

TEST(HostedZones, SampleZoneIsWeighted) {
  HostedZones zones(small_config(), 4);
  Rng rng(5);
  std::size_t top_hits = 0;
  const int n = 20'000;
  const std::size_t top_k = 10;  // 1% of 1000 zones
  for (int i = 0; i < n; ++i) {
    if (zones.sample_zone(rng) < top_k) ++top_hits;
  }
  EXPECT_NEAR(static_cast<double>(top_hits) / n, 0.88, 0.03);
}

TEST(HostedZones, ValidNamesExistInZone) {
  HostedZones zones(small_config(), 6);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::size_t rank = zones.sample_zone(rng);
    const auto name = zones.sample_valid_name(rank, rng);
    const auto zone = zones.store().find_best_zone(name);
    ASSERT_NE(zone, nullptr) << name.to_string();
    const auto result = zone->lookup(name, dns::RecordType::A);
    // Valid names exist: answer, or NODATA at the apex (which owns
    // SOA/NS but may lack an A record).
    EXPECT_NE(result.status, zone::LookupStatus::NxDomain) << name.to_string();
  }
}

TEST(HostedZones, RandomSubdomainsAreNxDomain) {
  HostedZones zones(small_config(), 8);
  Rng rng(9);
  int nxdomain = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const std::size_t rank = zones.sample_zone(rng);
    const auto name = zones.random_subdomain(rank, rng);
    const auto zone = zones.store().find_best_zone(name);
    ASSERT_NE(zone, nullptr);
    if (zone->lookup(name, dns::RecordType::A).status == zone::LookupStatus::NxDomain) {
      ++nxdomain;
    }
  }
  // Zones with wildcards may absorb a few, but the vast majority miss.
  EXPECT_GT(nxdomain, n * 8 / 10);
}

TEST(HostedZones, DeterministicForSeed) {
  HostedZones a(small_config(), 10);
  HostedZones b(small_config(), 10);
  EXPECT_EQ(a.apex(5), b.apex(5));
  EXPECT_EQ(a.store().total_records(), b.store().total_records());
}

}  // namespace
}  // namespace akadns::workload
