# Empty dependencies file for akadns_common.
# This may be replaced when dependencies are built.
