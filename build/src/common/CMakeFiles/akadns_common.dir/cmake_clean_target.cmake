file(REMOVE_RECURSE
  "libakadns_common.a"
)
