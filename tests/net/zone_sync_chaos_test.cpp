// SecondarySync against a real primary over real sockets, under
// injected faults: the degradation ladder's client side. Covers the
// retry/backoff counters, the transfer deadline, wire-level truncation
// (the held zone must stay untouched), the NOTIFY-during-pass race, and
// stop() latency against a blackholed primary — the two directed
// regression tests this PR's satellites call for.

#include "net/zone_sync.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <thread>

#include "chaos/sync_injector.hpp"
#include "common/clock.hpp"
#include "net/server.hpp"
#include "propagation/zone_publisher.hpp"
#include "zone/zone_builder.hpp"

namespace akadns::net {
namespace {

using dns::DnsName;
using propagation::SyncOp;
using propagation::TransferReject;

const DnsName kApex = DnsName::from("sync.example");

zone::Zone version(std::uint32_t serial) {
  return zone::ZoneBuilder("sync.example", serial)
      .soa("ns1.sync.example", "hostmaster.sync.example", serial)
      .ns("@", "ns1.sync.example")
      .a("ns1", "10.0.0.1")
      .a("www", "10.7.0." + std::to_string(serial % 250 + 1))
      .build();
}

// A live primary: publisher + server in live-reload mode, so tests can
// publish new versions mid-run.
struct Primary {
  MonotonicClock clock;
  propagation::ZonePublisher publisher;
  Server server;

  explicit Primary(ServeConfig config = make_config()) : publisher(clock), server(config, publisher) {}

  static ServeConfig make_config() {
    ServeConfig config;
    config.port = 0;
    config.workers = 1;
    return config;
  }

  void start() {
    auto started = server.start();
    ASSERT_TRUE(started.ok()) << started.error();
  }
};

SecondaryConfig secondary_config(std::uint16_t primary_port) {
  SecondaryConfig config;
  config.primary_port = primary_port;
  config.apexes = {kApex};
  config.io_timeout = Duration::seconds(2);
  return config;
}

std::uint32_t local_serial(propagation::ZonePublisher& pub) {
  const auto held = pub.snapshot(kApex);
  return held ? held->source()->serial() : 0;
}

bool wait_until(const std::function<bool()>& pred, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

TEST(ZoneSyncChaos, InitialSyncPullsTheFullZoneAndSteadyStateIsCheap) {
  Primary primary;
  ASSERT_TRUE(primary.publisher.publish(version(3)).ok());
  primary.start();

  MonotonicClock clock;
  propagation::ZonePublisher local(clock);
  SecondarySync sync(secondary_config(primary.server.udp_port()), local);

  EXPECT_EQ(sync.sync_once(), 1u);
  EXPECT_EQ(local_serial(local), 3u);
  EXPECT_TRUE(sync.synced());
  EXPECT_FALSE(sync.degraded());
  auto stats = sync.stats();
  EXPECT_GE(stats.soa_checks.value(), 1u);
  EXPECT_EQ(stats.axfr_applied.value(), 1u);
  EXPECT_EQ(stats.failures.value(), 0u);

  // Nothing new: the next pass is a lone SOA probe, no transfer.
  EXPECT_EQ(sync.sync_once(), 0u);
  stats = sync.stats();
  EXPECT_GE(stats.up_to_date.value(), 1u);

  primary.server.stop();
}

TEST(ZoneSyncChaos, ProbeFaultCountsAFailureAndTheRetryRecovers) {
  Primary primary;
  ASSERT_TRUE(primary.publisher.publish(version(1)).ok());
  primary.start();

  auto script = std::make_shared<chaos::ScriptedInjector>();
  script->fail_nth(SyncOp::ProbeSend, /*ok=*/0);

  auto config = secondary_config(primary.server.udp_port());
  config.fault_hooks = script;
  MonotonicClock clock;
  propagation::ZonePublisher local(clock);
  SecondarySync sync(config, local);

  // First pass: the probe faults; nothing published, backoff armed.
  EXPECT_EQ(sync.sync_once(), 0u);
  auto stats = sync.stats();
  EXPECT_EQ(stats.failures.value(), 1u);
  EXPECT_EQ(stats.retries.value(), 0u);
  EXPECT_FALSE(sync.synced());
  EXPECT_TRUE(sync.degraded()) << "never-synced must read degraded";

  // Second pass is a counted retry — and it succeeds (script drained).
  EXPECT_EQ(sync.sync_once(), 1u);
  stats = sync.stats();
  EXPECT_EQ(stats.retries.value(), 1u);
  EXPECT_EQ(local_serial(local), 1u);
  EXPECT_TRUE(sync.synced());
  EXPECT_FALSE(sync.degraded());

  primary.server.stop();
}

TEST(ZoneSyncChaos, TransferDeadlineCutsAStalledStream) {
  Primary primary;
  ASSERT_TRUE(primary.publisher.publish(version(2)).ok());
  primary.start();

  auto script = std::make_shared<chaos::ScriptedInjector>();
  // The first transfer read stalls well past the whole-transfer budget.
  script->push(SyncOp::TransferRead, {.fail = false, .delay = Duration::millis(600)});

  auto config = secondary_config(primary.server.udp_port());
  config.fault_hooks = script;
  config.transfer_deadline = Duration::millis(200);
  MonotonicClock clock;
  propagation::ZonePublisher local(clock);
  SecondarySync sync(config, local);

  EXPECT_EQ(sync.sync_once(), 0u);
  auto stats = sync.stats();
  EXPECT_EQ(stats.rejected_for(TransferReject::Deadline), 1u);
  EXPECT_EQ(stats.failures.value(), 1u);
  // The stall never produced a partial publish.
  EXPECT_EQ(local.snapshot(kApex), nullptr);
  EXPECT_FALSE(sync.synced());

  // With the stall gone the retry converges.
  EXPECT_EQ(sync.sync_once(), 1u);
  EXPECT_EQ(local_serial(local), 2u);
  EXPECT_EQ(sync.stats().retries.value(), 1u);

  primary.server.stop();
}

TEST(ZoneSyncChaos, TruncatedWireStreamNeverTouchesTheHeldZone) {
  // The primary cuts the transfer stream mid-body at the socket level
  // (fault hook on the serve side) and its idle reaper closes the
  // connection shortly after — the client must classify the early close
  // as a truncation and keep serving its held version.
  auto server_script = std::make_shared<chaos::ScriptedInjector>();
  ServeConfig primary_config = Primary::make_config();
  primary_config.transfer.axfr_records_per_message = 2;
  primary_config.transfer.fault_hooks = server_script;
  primary_config.tcp_idle_timeout = Duration::millis(100);
  Primary primary(primary_config);
  // Publishing 2 then 3 leaves the journal covering only [2, 3]: a
  // client at serial 1 gets the multi-message AXFR-style fallback.
  ASSERT_TRUE(primary.publisher.publish(version(2)).ok());
  ASSERT_TRUE(primary.publisher.publish(version(3)).ok());
  primary.start();

  MonotonicClock clock;
  propagation::ZonePublisher local(clock);
  ASSERT_TRUE(local.publish(version(1)).ok());
  SecondarySync sync(secondary_config(primary.server.udp_port()), local);

  // Cut the outgoing stream after its first message.
  server_script->fail_nth(SyncOp::StreamMessage, /*ok=*/1);

  EXPECT_EQ(sync.sync_once(), 0u);
  auto stats = sync.stats();
  EXPECT_EQ(stats.rejected_for(TransferReject::Truncated), 1u)
      << "an early close mid-body must count as truncated";
  EXPECT_EQ(local_serial(local), 1u) << "a partial transfer replaced the held zone";

  // The fault was one-shot; the retry pulls the real thing.
  EXPECT_EQ(sync.sync_once(), 1u);
  EXPECT_EQ(local_serial(local), 3u);

  primary.server.stop();
}

TEST(ZoneSyncChaos, NotifyKickDuringARefreshPassSchedulesOneMorePass) {
  // The race this guards: a NOTIFY landing *while* a refresh pass runs
  // used to be swallowed — the pass was already past that apex, and the
  // thread went back to sleep for the full refresh interval. The kick
  // must instead schedule one more pass before the thread sleeps.
  Primary primary;
  ASSERT_TRUE(primary.publisher.publish(version(1)).ok());
  primary.start();

  auto script = std::make_shared<chaos::ScriptedInjector>();
  // Stretch pass 1: its first transfer read sleeps 400 ms, giving the
  // mid-pass NOTIFY a deterministic window to land in.
  script->push(SyncOp::TransferRead, {.fail = false, .delay = Duration::millis(400)});

  auto config = secondary_config(primary.server.udp_port());
  config.fault_hooks = script;
  // Long enough that only the kick can explain a prompt convergence.
  config.refresh_interval = Duration::seconds(60);
  MonotonicClock clock;
  propagation::ZonePublisher local(clock);
  SecondarySync sync(config, local);

  sync.start();
  // Pass 1 is now inside the stretched transfer for version 1. Publish
  // version 2 and deliver the NOTIFY mid-pass.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_TRUE(primary.publisher.publish(version(2)).ok());
  sync.notify_kick();

  // Without the re-pass the secondary would sit on version 1 for 60 s.
  EXPECT_TRUE(wait_until([&] { return local_serial(local) == 2; }, 5000))
      << "NOTIFY during the pass was swallowed; local serial "
      << local_serial(local);
  EXPECT_GE(sync.stats().notify_kicks.value(), 1u);

  sync.stop();
  primary.server.stop();
}

TEST(ZoneSyncChaos, StopIsPromptAgainstABlackholedPrimary) {
  // A primary that accepts nothing and answers nothing: bind a UDP port
  // and never read it. The refresh thread will park in poll() on the
  // probe socket with a long io deadline; stop() must interrupt it via
  // the eventfd instead of waiting out the timeout.
  const int dark = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(dark, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(dark, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ASSERT_EQ(::getsockname(dark, reinterpret_cast<sockaddr*>(&bound), &len), 0);

  auto config = secondary_config(ntohs(bound.sin_port));
  config.io_timeout = Duration::seconds(30);
  config.refresh_interval = Duration::seconds(60);
  MonotonicClock clock;
  propagation::ZonePublisher local(clock);
  SecondarySync sync(config, local);

  sync.start();
  // Let the thread reach the probe and block on the dark primary.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  const auto t0 = std::chrono::steady_clock::now();
  sync.stop();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_LT(elapsed, 2000)
      << "stop() waited on the io timeout instead of the stop eventfd";

  ::close(dark);
}

TEST(ZoneSyncChaos, FreshnessCapsDriveServeStaleThenExpiry) {
  // End-to-end ladder on real sockets: sync once, kill the primary, and
  // watch the capped SOA timers walk fresh -> stale -> expired.
  Primary primary;
  ASSERT_TRUE(primary.publisher.publish(version(1)).ok());
  primary.start();

  auto config = secondary_config(primary.server.udp_port());
  config.freshness_caps = propagation::FreshnessCaps{
      .refresh_cap = Duration::millis(100), .expire_cap = Duration::millis(400)};
  MonotonicClock clock;
  propagation::ZonePublisher local(clock);
  SecondarySync sync(config, local);

  EXPECT_EQ(sync.sync_once(), 1u);
  EXPECT_FALSE(sync.degraded());

  // The primary goes dark; the zone ages on the capped timers.
  primary.server.stop();

  EXPECT_TRUE(wait_until(
      [&] {
        return sync.freshness()->evaluate(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count()) == propagation::Freshness::Stale;
      },
      2000));
  // Stale is serve-stale, not degraded.
  EXPECT_FALSE(sync.degraded());
  EXPECT_TRUE(sync.synced()) << "synced() must stay monotone through staleness";

  // Past the expire cap the /healthz signal flips.
  EXPECT_TRUE(wait_until([&] { return sync.degraded(); }, 2000));
}

}  // namespace
}  // namespace akadns::net
