#include "control/fleet_report.hpp"

#include <cstdio>

namespace akadns::control {

namespace {

void append_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

}  // namespace

std::string render_fleet_report(const FleetReport& report) {
  std::string out;
  char buf[768];
  std::snprintf(buf, sizeof(buf), "{\n  \"uptime_seconds\": %.3f,\n  \"machines\": [\n",
                report.uptime_seconds);
  out += buf;
  for (std::size_t i = 0; i < report.machines.size(); ++i) {
    const auto& m = report.machines[i];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"id\": \"%s\", \"pid\": %lld, \"up\": %s, \"suspended\": %s,"
        " \"udp_port\": %u, \"stats_port\": %u, \"restarts\": %llu,"
        " \"probe_rounds\": %llu, \"probe_failed_rounds\": %llu,"
        " \"byte_mismatches\": %llu, \"suspensions\": %llu,"
        " \"denied_suspensions\": %llu, \"restores\": %llu,"
        " \"advisory_scrapes\": %llu, \"advisory_anomalies\": %llu,"
        " \"upstream_timeouts\": %llu}%s\n",
        m.id.c_str(), static_cast<long long>(m.pid), m.up ? "true" : "false",
        m.suspended ? "true" : "false", m.udp_port, m.stats_port,
        (unsigned long long)m.restarts, (unsigned long long)m.probe_rounds,
        (unsigned long long)m.probe_failed_rounds, (unsigned long long)m.byte_mismatches,
        (unsigned long long)m.suspensions, (unsigned long long)m.denied_suspensions,
        (unsigned long long)m.restores, (unsigned long long)m.advisory_scrapes,
        (unsigned long long)m.advisory_anomalies,
        (unsigned long long)m.upstream_timeouts,
        i + 1 < report.machines.size() ? "," : "");
    out += buf;
  }
  out += "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"front\": {\"port\": %u, \"live_flows\": %llu, \"flows_created\": %llu,"
                " \"flows_moved\": %llu, \"udp_client_datagrams\": %llu,"
                " \"udp_upstream_answers\": %llu, \"udp_no_member_drops\": %llu,"
                " \"tcp_connections\": %llu},\n",
                report.front.port, (unsigned long long)report.front.live_flows,
                (unsigned long long)report.front.flows_created,
                (unsigned long long)report.front.flows_moved,
                (unsigned long long)report.front.udp_client_datagrams,
                (unsigned long long)report.front.udp_upstream_answers,
                (unsigned long long)report.front.udp_no_member_drops,
                (unsigned long long)report.front.tcp_connections);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"quota\": {\"fleet_size\": %zu, \"suspended\": %zu, \"quota\": %zu,"
                " \"denied\": %llu},\n",
                report.quota.fleet_size, report.quota.suspended, report.quota.quota,
                (unsigned long long)report.quota.denied);
  out += buf;
  out += "  \"reconverge\": [\n";
  for (std::size_t i = 0; i < report.reconverge.size(); ++i) {
    const auto& r = report.reconverge[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"member\": \"%s\", \"withdrawal\": %s, \"flows_moved\": %llu,"
                  " \"remap_us\": %lld, \"first_answer_us\": %lld}%s\n",
                  r.member.c_str(), r.withdrawal ? "true" : "false",
                  (unsigned long long)r.flows_moved, static_cast<long long>(r.remap_us),
                  static_cast<long long>(r.first_answer_us),
                  i + 1 < report.reconverge.size() ? "," : "");
    out += buf;
  }
  out += "  ],\n  \"events\": [\n";
  for (std::size_t i = 0; i < report.events.size(); ++i) {
    out += "    \"";
    append_escaped(out, report.events[i]);
    out += i + 1 < report.events.size() ? "\",\n" : "\"\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace akadns::control
