// Serial-ordered IXFR delta log, one bounded window per zone apex.
//
// The journal is the memory between publishes: every accepted delta is
// appended in serial order, and a subscriber that is N versions behind
// can be caught up with the contiguous sub-chain covering its serial —
// the RFC 1995 incremental path. Everything the journal cannot answer
// (a gap where old deltas were evicted, a serial regression after a
// force-publish, an apex it has never seen) is a *miss*, and a miss
// always means "fall back to AXFR": the caller ships the full snapshot
// instead. The journal never invents or reorders deltas, so a hit is a
// chain whose application provably reproduces the target serial.
//
// Bounded by delta count and total record count per apex (old entries
// evicted front-first), so a chatty zone cannot grow the log without
// limit; eviction only widens the set of subscribers that need AXFR.
// Not internally synchronized — the owning ZonePublisher serializes
// access under its own lock.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "obs/registry.hpp"
#include "zone/zone_transfer.hpp"

namespace akadns::propagation {

struct JournalConfig {
  /// Max retained deltas per apex.
  std::size_t max_deltas_per_apex = 64;
  /// Max total records (deletions + additions) retained per apex.
  std::size_t max_records_per_apex = 65536;
};

struct JournalStats {
  obs::Counter appended;
  obs::Counter evicted;  // deltas dropped to respect the bounds
  obs::Counter resets;   // logs cleared (gap / regression / full publish)
  obs::Counter chain_hits;
  obs::Counter chain_misses;

  /// One akadns_zone_journal_total{event=...} series per counter.
  void register_into(obs::MetricRegistry& reg, const obs::LabelSet& base) const {
    const auto event = [&](const char* name, const obs::Counter& c) {
      reg.counter("akadns_zone_journal_total", obs::with(base, "event", name), c,
                  "zone delta-journal events");
    };
    event("appended", appended);
    event("evicted", evicted);
    event("reset", resets);
    event("chain_hit", chain_hits);
    event("chain_miss", chain_misses);
  }
};

class ZoneJournal {
 public:
  explicit ZoneJournal(JournalConfig config = {}) : config_(config) {}

  /// Appends one delta to its apex's log. A delta that does not continue
  /// the log (its from_serial is not the log's last to_serial) resets the
  /// log first: a discontinuity means intermediate history is unknowable,
  /// and pretending otherwise is how stale chains corrupt replicas.
  void append(zone::ZoneDiff delta);

  /// Clears one apex's log (full-snapshot publish or serial regression:
  /// incremental history no longer connects).
  void reset(const dns::DnsName& apex);

  /// Drops an apex entirely (zone removed).
  void remove(const dns::DnsName& apex);

  /// The contiguous delta chain taking `from_serial` to `to_serial`, or
  /// nullopt when the log cannot cover that span — the AXFR-fallback
  /// signal. Requires from < to; equal serials are the caller's no-op.
  std::optional<std::vector<zone::ZoneDiff>> chain(const dns::DnsName& apex,
                                                   std::uint32_t from_serial,
                                                   std::uint32_t to_serial) const;

  /// The newest `max_deltas` deltas of an apex (all of them when fewer) —
  /// the window a ZoneUpdate carries for laggard subscribers.
  std::vector<zone::ZoneDiff> tail(const dns::DnsName& apex, std::size_t max_deltas) const;

  std::size_t delta_count(const dns::DnsName& apex) const;
  std::size_t record_count(const dns::DnsName& apex) const;
  const JournalStats& stats() const noexcept { return stats_; }

 private:
  struct ApexLog {
    std::deque<zone::ZoneDiff> deltas;  // contiguous, serial-ascending
    std::size_t records = 0;            // sum of deltas[i].size()
  };

  void enforce_bounds(ApexLog& log);

  JournalConfig config_;
  std::map<dns::DnsName, ApexLog> logs_;
  mutable JournalStats stats_;
};

}  // namespace akadns::propagation
