# Empty dependencies file for akadns_pop.
# This may be replaced when dependencies are built.
