#include "fleet/probe_suite.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "dns/message.hpp"
#include "dns/wire.hpp"
#include "net/socket.hpp"
#include "obs/exposition.hpp"
#include "obs/stats_http.hpp"

namespace akadns::fleet {

namespace {

/// The modelled client identity handed to the reference responder. The
/// live server sees our real ephemeral source instead; responses do not
/// depend on it (no mapping hook is installed on either side).
const Endpoint kProbeClient{IpAddr(Ipv4Addr(127, 0, 0, 1)), 40000};

server::ResponderConfig reference_config() {
  server::ResponderConfig config;
  config.enable_answer_cache = false;
  return config;
}

bool tc_bit(const std::vector<std::uint8_t>& wire) {
  return wire.size() > 2 && (wire[2] & 0x02) != 0;
}

/// Byte comparison, transaction id (bytes 0-1) excluded; the id echo is
/// checked separately against what was sent.
bool bytes_match(const std::uint8_t* got, std::size_t got_len,
                 const std::vector<std::uint8_t>& want) {
  return got_len == want.size() && got_len >= 2 &&
         std::memcmp(got + 2, want.data() + 2, got_len - 2) == 0;
}

}  // namespace

ProbeSuite::ProbeSuite(ProbeConfig config, const workload::HostedZones& zones,
                       TargetsFn targets_fn, SuspendFn suspend_fn)
    : config_(config),
      zones_(zones),
      reference_(zones.store(), reference_config()),
      targets_fn_(std::move(targets_fn)),
      suspend_fn_(std::move(suspend_fn)),
      coordinator_(config.quota),
      rng_(config.probe_seed) {
  find_truncation_candidate();
}

ProbeSuite::~ProbeSuite() { stop(); }

void ProbeSuite::find_truncation_candidate() {
  // Look for a name whose plain-UDP answer truncates (response > 512):
  // that probe proves the TC-retry path end to end — TC'd bytes over
  // UDP, full bytes over TCP. Small synthetic zones may not produce
  // one; the TCP probe then just replays a known answer over TCP.
  Rng scan_rng(config_.probe_seed ^ 0x7c15);
  const std::size_t zone_count = zones_.zone_count();
  for (std::size_t i = 0; i < std::min<std::size_t>(zone_count * 4, 256); ++i) {
    const std::size_t rank = scan_rng.next_below(zone_count);
    const auto name = zones_.sample_valid_name(rank, scan_rng);
    const auto query = dns::make_query(0, name, dns::RecordType::A);
    const auto wire = dns::encode(query);
    auto udp = reference_.respond_wire(wire, kProbeClient);
    if (!udp || !tc_bit(*udp)) continue;
    auto tcp = reference_.respond_wire(wire, kProbeClient, SimTime::origin(),
                                       dns::kMaxMessageSize);
    if (!tcp) continue;
    tc_udp_probe_ = ProbeQuery{wire, std::move(*udp), false};
    tc_tcp_probe_ = ProbeQuery{wire, std::move(*tcp), true};
    return;
  }
}

std::vector<ProbeSuite::ProbeQuery> ProbeSuite::build_round_queries() {
  std::vector<ProbeQuery> probes;
  const std::size_t zone_count = zones_.zone_count();

  // 1. Known answer: an existing name must come back byte-exact.
  {
    const std::size_t rank = rng_.next_below(zone_count);
    const auto name = zones_.sample_valid_name(rank, rng_);
    const auto wire = dns::encode(dns::make_query(0, name, dns::RecordType::A));
    auto expected = reference_.respond_wire(wire, kProbeClient);
    if (expected) probes.push_back(ProbeQuery{wire, std::move(*expected), false});
  }
  // 2. NXDOMAIN: a random subdomain must be denied with the right SOA.
  {
    const std::size_t rank = rng_.next_below(zone_count);
    const auto name = zones_.random_subdomain(rank, rng_);
    const auto wire = dns::encode(dns::make_query(0, name, dns::RecordType::A));
    auto expected = reference_.respond_wire(wire, kProbeClient);
    if (expected) probes.push_back(ProbeQuery{wire, std::move(*expected), false});
  }
  // 3. EDNS: an OPT-bearing query must round-trip the negotiation.
  {
    const std::size_t rank = rng_.next_below(zone_count);
    const auto name = zones_.sample_valid_name(rank, rng_);
    auto query = dns::make_query(0, name, dns::RecordType::A);
    query.edns.emplace();
    query.edns->udp_payload_size = 1232;
    const auto wire = dns::encode(query);
    auto expected = reference_.respond_wire(wire, kProbeClient);
    if (expected) probes.push_back(ProbeQuery{wire, std::move(*expected), false});
  }
  // 4. TCP (and the TC-retry pair when the zone set produces one).
  if (tc_udp_probe_ && tc_tcp_probe_) {
    probes.push_back(*tc_udp_probe_);
    probes.push_back(*tc_tcp_probe_);
  } else {
    const std::size_t rank = rng_.next_below(zone_count);
    const auto name = zones_.sample_valid_name(rank, rng_);
    const auto wire = dns::encode(dns::make_query(0, name, dns::RecordType::A));
    auto expected = reference_.respond_wire(wire, kProbeClient, SimTime::origin(),
                                            dns::kMaxMessageSize);
    if (expected) probes.push_back(ProbeQuery{wire, std::move(*expected), true});
  }
  return probes;
}

std::optional<std::string> ProbeSuite::run_probe(const ProbeTarget& target,
                                                 const ProbeQuery& probe,
                                                 MachineProbeState& st) {
  ++st.probes_sent;
  std::vector<std::uint8_t> wire = probe.wire;
  const std::uint16_t id = next_id_++;
  if (next_id_ == 0) next_id_ = 1;
  wire[0] = static_cast<std::uint8_t>(id >> 8);
  wire[1] = static_cast<std::uint8_t>(id & 0xff);

  std::uint8_t rx[65536];
  std::size_t rx_len = 0;

  if (!probe.over_tcp) {
    auto opened = net::UdpSocket::open(Ipv4Addr(127, 0, 0, 1), 0);
    if (!opened) {
      ++st.probe_failures;
      return "udp open: " + opened.error();
    }
    net::UdpSocket sock = std::move(opened).take();
    sockaddr_storage sa{};
    const Endpoint ep{IpAddr(target.addr), target.dns_port};
    const socklen_t sa_len = net::sockaddr_from_endpoint(ep, sa);
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&sa), sa_len) != 0 ||
        ::send(sock.fd(), wire.data(), wire.size(), 0) < 0) {
      ++st.probe_failures;
      return net::errno_message("udp probe send");
    }
    pollfd pfd{sock.fd(), POLLIN, 0};
    if (::poll(&pfd, 1, config_.timeout_ms) <= 0) {
      ++st.probe_failures;
      return "udp probe timeout";
    }
    const ssize_t n = ::recv(sock.fd(), rx, sizeof(rx), 0);
    if (n < 2) {
      ++st.probe_failures;
      return "udp probe recv failed";
    }
    rx_len = static_cast<std::size_t>(n);
  } else {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      ++st.probe_failures;
      return net::errno_message("tcp socket");
    }
    net::FdHandle handle(fd);
    timeval tv{config_.timeout_ms / 1000, (config_.timeout_ms % 1000) * 1000};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    sockaddr_storage sa{};
    const Endpoint ep{IpAddr(target.addr), target.dns_port};
    const socklen_t sa_len = net::sockaddr_from_endpoint(ep, sa);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sa_len) != 0) {
      ++st.probe_failures;
      return net::errno_message("tcp probe connect");
    }
    std::vector<std::uint8_t> framed;
    framed.reserve(wire.size() + 2);
    framed.push_back(static_cast<std::uint8_t>(wire.size() >> 8));
    framed.push_back(static_cast<std::uint8_t>(wire.size() & 0xff));
    framed.insert(framed.end(), wire.begin(), wire.end());
    if (::send(fd, framed.data(), framed.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(framed.size())) {
      ++st.probe_failures;
      return net::errno_message("tcp probe send");
    }
    std::uint8_t header[2];
    std::size_t got = 0;
    while (got < 2) {
      const ssize_t n = ::recv(fd, header + got, 2 - got, 0);
      if (n <= 0) {
        ++st.probe_failures;
        return "tcp probe: short frame header";
      }
      got += static_cast<std::size_t>(n);
    }
    const std::size_t frame_len = (static_cast<std::size_t>(header[0]) << 8) | header[1];
    if (frame_len < 2 || frame_len > sizeof(rx)) {
      ++st.probe_failures;
      return "tcp probe: bad frame length";
    }
    got = 0;
    while (got < frame_len) {
      const ssize_t n = ::recv(fd, rx + got, frame_len - got, 0);
      if (n <= 0) {
        ++st.probe_failures;
        return "tcp probe: short frame body";
      }
      got += static_cast<std::size_t>(n);
    }
    rx_len = frame_len;
  }

  const std::uint16_t rx_id = static_cast<std::uint16_t>((rx[0] << 8) | rx[1]);
  if (rx_id != id) {
    ++st.probe_failures;
    return "probe: transaction id mismatch";
  }
  if (!bytes_match(rx, rx_len, probe.expected)) {
    ++st.byte_mismatches;
    return probe.over_tcp ? "tcp probe: byte mismatch" : "udp probe: byte mismatch";
  }
  return std::nullopt;
}

void ProbeSuite::advisory_scrape(const ProbeTarget& target, MachineProbeState& st) {
  ++st.advisory_scrapes;
  obs::HttpResponse rsp;
  std::string error;
  const std::string url =
      "http://127.0.0.1:" + std::to_string(target.stats_port) + "/metrics";
  if (!obs::http_get(url, &rsp, &error, config_.timeout_ms) || rsp.status != 200) {
    ++st.advisory_anomalies;  // unreachable exporter IS the anomaly
    return;
  }
  try {
    const auto exp = obs::Exposition::parse(rsp.body);
    const double send_failures = exp.sum(
        "akadns_frontend_total", obs::labels({{"event", "udp_send_failures"}}));
    const double protocol_errors = exp.sum(
        "akadns_frontend_total", obs::labels({{"event", "tcp_protocol_errors"}}));
    const double udp_packets =
        exp.sum("akadns_frontend_total", obs::labels({{"event", "udp_packets"}}));
    if (send_failures > 0 || protocol_errors > 0 ||
        udp_packets < static_cast<double>(config_.advisory_min_udp_packets)) {
      ++st.advisory_anomalies;
    }
  } catch (const std::exception&) {
    ++st.advisory_anomalies;
  }
  // Advisory means advisory: no suspension edge exists on this path —
  // the counters above feed the fleet report and nothing else.
}

void ProbeSuite::run_round() {
  const auto targets = targets_fn_ ? targets_fn_() : std::vector<ProbeTarget>{};
  const std::uint64_t round = rounds_.fetch_add(1, std::memory_order_acq_rel) + 1;
  const bool scrape_round = config_.advisory_every > 0 &&
                            round % static_cast<std::uint64_t>(config_.advisory_every) == 0;
  const auto probes = build_round_queries();

  // Phase 1 (locked, no IO): reconcile the quota fleet with process
  // liveness. A dead machine is the supervisor's domain — it returns
  // its suspension grant and leaves the fleet entirely, because the
  // min_serving floor must count only machines that could actually
  // serve (suspension_policy.hpp: "callers that know about crashed
  // machines shrink the fleet first"). It re-registers on recovery. No
  // restore notification for the dead: there is nothing to signal.
  std::vector<bool> injected(targets.size(), false);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const ProbeTarget& target = targets[i];
      MachineProbeState& st = states_[target.id];
      st.id = target.id;
      if (!target.alive) {
        st.suspended = false;  // the grant dies with the registration
        st.consecutive_failures = 0;
        st.consecutive_ok = 0;
        coordinator_.unregister_machine(target.id);
        continue;
      }
      coordinator_.register_machine(target.id);
      const auto it = injected_failures_.find(target.id);
      injected[i] = it != injected_failures_.end() && it->second;
    }
  }

  // Phase 2 (unlocked): the blocking probe + scrape IO. Counters land
  // in a per-target scratch state so readers (the /metrics gauge, the
  // shutdown report) never wait out a probe timeout on mu_.
  struct Outcome {
    bool probed = false;
    bool failed = false;
    std::string last_error;
    MachineProbeState delta;  // counter increments only
  };
  std::vector<Outcome> outcomes(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const ProbeTarget& target = targets[i];
    if (!target.alive) continue;
    Outcome& out = outcomes[i];
    out.probed = true;
    if (injected[i]) {
      out.failed = true;
      out.last_error = "injected failure (drill)";
    } else {
      for (const auto& probe : probes) {
        if (auto err = run_probe(target, probe, out.delta)) {
          out.failed = true;
          out.last_error = *err;
          break;
        }
      }
    }
    if (scrape_round && target.stats_port != 0) {
      advisory_scrape(target, out.delta);
    }
  }

  // Phase 3 (locked, no IO): fold the outcomes into the per-machine
  // state and make the suspension/restore decisions.
  struct Decision {
    std::string id;
    bool suspend = false;  // which edge to notify
  };
  std::vector<Decision> decisions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      const Outcome& out = outcomes[i];
      if (!out.probed) continue;
      MachineProbeState& st = states_[targets[i].id];
      st.probes_sent += out.delta.probes_sent;
      st.probe_failures += out.delta.probe_failures;
      st.byte_mismatches += out.delta.byte_mismatches;
      st.advisory_scrapes += out.delta.advisory_scrapes;
      st.advisory_anomalies += out.delta.advisory_anomalies;
      if (!out.last_error.empty()) st.last_error = out.last_error;

      ++st.rounds;
      if (out.failed) {
        ++st.failed_rounds;
        st.consecutive_ok = 0;
        ++st.consecutive_failures;
      } else {
        st.consecutive_failures = 0;
        ++st.consecutive_ok;
      }

      if (!st.suspended && st.consecutive_failures >= config_.fail_threshold) {
        // The ONLY suspension edge in the fleet: end-to-end probe
        // failure, gated by the PoP quota. Denied means serve on,
        // degraded.
        if (coordinator_.request_suspension(targets[i].id)) {
          st.suspended = true;
          ++st.suspensions;
          decisions.push_back(Decision{targets[i].id, true});
        } else {
          ++st.denied_suspensions;
        }
      } else if (st.suspended && !out.failed && st.consecutive_ok >= config_.ok_threshold) {
        coordinator_.release(targets[i].id);
        st.suspended = false;
        ++st.restores;
        decisions.push_back(Decision{targets[i].id, false});
      }
    }
  }

  // Notifications run unlocked: the callback pokes the front and sends
  // signals, and may want to read our state.
  for (const auto& d : decisions) {
    if (suspend_fn_) suspend_fn_(d.id, d.suspend);
  }
}

void ProbeSuite::start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  thread_ = std::thread([this] {
    while (running_.load(std::memory_order_acquire)) {
      run_round();
      const int sleep_ms = config_.interval_ms;
      for (int waited = 0; waited < sleep_ms && running_.load(std::memory_order_acquire);
           waited += 10) {
        if (kick_.exchange(false, std::memory_order_acq_rel)) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
  });
}

void ProbeSuite::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (thread_.joinable()) thread_.join();
}

void ProbeSuite::inject_failure(const std::string& id, bool failing) {
  std::lock_guard<std::mutex> lock(mu_);
  injected_failures_[id] = failing;
}

void ProbeSuite::note_upstream_timeout(const std::string& id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    MachineProbeState& st = states_[id];
    st.id = id;
    ++st.upstream_timeouts;
    ++st.advisory_anomalies;
  }
  // A stall is worth investigating NOW — with real queries. The probe
  // round this kicks holds the suspension authority; this signal holds
  // none.
  kick_.store(true, std::memory_order_release);
}

std::vector<MachineProbeState> ProbeSuite::states() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MachineProbeState> out;
  out.reserve(states_.size());
  for (const auto& [id, st] : states_) out.push_back(st);
  return out;
}

std::optional<MachineProbeState> ProbeSuite::state_of(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = states_.find(id);
  if (it == states_.end()) return std::nullopt;
  return it->second;
}

ProbeQuotaView ProbeSuite::quota_view() const {
  std::lock_guard<std::mutex> lock(mu_);
  ProbeQuotaView v;
  v.fleet_size = coordinator_.fleet_size();
  v.suspended = coordinator_.suspended_count();
  v.quota = coordinator_.quota();
  v.denied = coordinator_.denied_requests();
  return v;
}

}  // namespace akadns::fleet
