#include "propagation/transfer_guard.hpp"

#include <vector>

#include "dns/rr.hpp"

namespace akadns::propagation {

using dns::Message;
using dns::RecordType;
using dns::ResourceRecord;
using dns::SoaRecord;

namespace {

std::uint32_t soa_serial(const ResourceRecord& rr) {
  return std::get<SoaRecord>(rr.rdata).serial;
}

}  // namespace

std::optional<TransferReject> validate_stream(std::span<const Message> stream,
                                              std::uint32_t client_serial,
                                              const TransferLimits& limits) {
  if (stream.empty()) return TransferReject::Empty;
  for (const Message& m : stream) {
    if (m.header.rcode != dns::Rcode::NoError) return TransferReject::Refused;
  }

  // Flatten the record view: a transfer is one record sequence that the
  // server merely split across messages at arbitrary boundaries.
  std::size_t total = 0;
  for (const Message& m : stream) total += m.answers.size();
  if (total == 0) return TransferReject::Empty;
  if (total > limits.max_records) return TransferReject::Oversize;

  const ResourceRecord& first = stream.front().answers.front();
  if (first.type() != RecordType::SOA) return TransferReject::Corrupt;
  const std::uint32_t opening = soa_serial(first);

  if (total == 1) {
    // Single SOA: "you are current" — only coherent when the announced
    // serial is not ahead of what we already hold; a newer serial with
    // no body means the body got cut before a single record arrived.
    return opening <= client_serial ? std::nullopt
                                    : std::optional(TransferReject::Truncated);
  }

  // A body that would land us at or below where we already are is a
  // rollback, not an update (serial equality is benign: same version).
  if (opening < client_serial) return TransferReject::SerialRegression;

  // RFC 5936 §2.2: complete only when the closing record repeats the
  // opening SOA. Anything else is a stream cut mid-flight.
  const ResourceRecord* closing = nullptr;
  for (auto it = stream.rbegin(); it != stream.rend(); ++it) {
    if (!it->answers.empty()) {
      closing = &it->answers.back();
      break;
    }
  }
  if (closing->type() != RecordType::SOA || soa_serial(*closing) != opening) {
    return TransferReject::Truncated;
  }

  // Interior SOA markers (everything between opener and closer) tell
  // AXFR-style and IXFR-delta bodies apart and carry the delta chain's
  // serial walk.
  std::vector<std::uint32_t> markers;
  bool second_is_soa = false;
  std::size_t index = 0;
  for (const Message& m : stream) {
    for (const ResourceRecord& rr : m.answers) {
      const bool interior = index != 0 && index != total - 1;
      if (index == 1 && rr.type() == RecordType::SOA) second_is_soa = true;
      if (interior && rr.type() == RecordType::SOA) markers.push_back(soa_serial(rr));
      ++index;
    }
  }

  if (!second_is_soa) {
    // AXFR-style full body: the apex SOA appears exactly twice (open and
    // close); an interior SOA means two streams got interleaved.
    return markers.empty() ? std::nullopt : std::optional(TransferReject::Corrupt);
  }

  // IXFR delta chain (RFC 1995 §4): interior markers pair up as
  // (from_k, to_k) per delta; each delta ascends, deltas chain forward,
  // and the final delta lands on the opening (= newest) serial.
  if (markers.size() % 2 != 0) return TransferReject::Truncated;
  std::uint32_t reached = 0;
  bool have_reached = false;
  for (std::size_t k = 0; k + 1 < markers.size(); k += 2) {
    const std::uint32_t from = markers[k];
    const std::uint32_t to = markers[k + 1];
    if (to <= from) return TransferReject::SerialRegression;
    if (have_reached && from < reached) return TransferReject::SerialRegression;
    reached = to;
    have_reached = true;
  }
  if (have_reached && reached != opening) return TransferReject::Truncated;
  return std::nullopt;
}

}  // namespace akadns::propagation
