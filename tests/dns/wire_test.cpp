#include "dns/wire.hpp"

#include <gtest/gtest.h>

namespace akadns::dns {
namespace {

Message sample_response() {
  Message m = make_query(0x1234, DnsName::from("www.example.com"), RecordType::A);
  m.header.qr = true;
  m.header.aa = true;
  m.answers.push_back(make_a(DnsName::from("www.example.com"), Ipv4Addr(93, 184, 216, 34), 300));
  m.authorities.push_back(
      make_ns(DnsName::from("example.com"), DnsName::from("ns1.example.com"), 86400));
  m.additionals.push_back(make_a(DnsName::from("ns1.example.com"), Ipv4Addr(10, 0, 0, 1), 86400));
  return m;
}

TEST(Wire, QueryRoundTrip) {
  const auto query = make_query(42, DnsName::from("Example.COM"), RecordType::AAAA, true);
  const auto wire = encode(query);
  const auto decoded = decode(wire);
  ASSERT_TRUE(decoded) << decoded.error();
  EXPECT_EQ(decoded.value(), query);
}

TEST(Wire, ResponseRoundTrip) {
  const auto msg = sample_response();
  const auto wire = encode(msg);
  const auto decoded = decode(wire);
  ASSERT_TRUE(decoded) << decoded.error();
  EXPECT_EQ(decoded.value(), msg);
}

TEST(Wire, RoundTripAllRdataTypes) {
  Message m = make_query(7, DnsName::from("all.example.com"), RecordType::ANY);
  m.header.qr = true;
  const auto owner = DnsName::from("all.example.com");
  m.answers.push_back(make_a(owner, Ipv4Addr(1, 2, 3, 4), 60));
  m.answers.push_back(make_aaaa(owner, *Ipv6Addr::parse("2001:db8::1"), 60));
  m.answers.push_back(make_ns(owner, DnsName::from("ns.example.com"), 60));
  m.answers.push_back(make_txt(owner, "hello world", 60));
  m.answers.push_back(ResourceRecord{owner, RecordClass::IN, 60,
                                     MxRecord{10, DnsName::from("mail.example.com")}});
  m.answers.push_back(ResourceRecord{owner, RecordClass::IN, 60,
                                     SrvRecord{1, 2, 53, DnsName::from("srv.example.com")}});
  m.answers.push_back(ResourceRecord{owner, RecordClass::IN, 60,
                                     PtrRecord{DnsName::from("ptr.example.com")}});
  m.answers.push_back(ResourceRecord{owner, RecordClass::IN, 60,
                                     CaaRecord{128, "issue", "ca.example.net"}});
  m.answers.push_back(make_soa(DnsName::from("example.com"), DnsName::from("ns.example.com"),
                               DnsName::from("root.example.com"), 99, 3600));
  m.answers.push_back(ResourceRecord{owner, RecordClass::IN, 60,
                                     RawRecord{.type = 99, .data = {0xDE, 0xAD, 0xBE, 0xEF}}});
  const auto wire = encode(m);
  const auto decoded = decode(wire);
  ASSERT_TRUE(decoded) << decoded.error();
  EXPECT_EQ(decoded.value(), m);
}

TEST(Wire, TxtMultipleStringsRoundTrip) {
  Message m = make_query(7, DnsName::from("t.example.com"), RecordType::TXT);
  m.header.qr = true;
  TxtRecord txt;
  txt.strings = {"first", "second", std::string(255, 'x'), ""};
  m.answers.push_back(ResourceRecord{DnsName::from("t.example.com"), RecordClass::IN, 30, txt});
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded) << decoded.error();
  EXPECT_EQ(decoded.value(), m);
}

TEST(Wire, CompressionShrinksMessage) {
  const auto msg = sample_response();
  const auto compressed = encode(msg, {.compress = true});
  const auto uncompressed = encode(msg, {.compress = false});
  EXPECT_LT(compressed.size(), uncompressed.size());
  // Both decode to the same message.
  const auto d1 = decode(compressed);
  const auto d2 = decode(uncompressed);
  ASSERT_TRUE(d1);
  ASSERT_TRUE(d2);
  EXPECT_EQ(d1.value(), d2.value());
}

TEST(Wire, EdnsRoundTripWithClientSubnet) {
  auto query = make_query(9, DnsName::from("cdn.example.com"), RecordType::A);
  Edns edns;
  edns.udp_payload_size = 4096;
  edns.do_bit = true;
  ClientSubnet ecs;
  ecs.address = *IpAddr::parse("203.0.113.0");
  ecs.source_prefix_len = 24;
  edns.client_subnet = ecs;
  query.edns = edns;
  const auto decoded = decode(encode(query));
  ASSERT_TRUE(decoded) << decoded.error();
  ASSERT_TRUE(decoded.value().edns);
  EXPECT_EQ(decoded.value().edns->udp_payload_size, 4096);
  EXPECT_TRUE(decoded.value().edns->do_bit);
  ASSERT_TRUE(decoded.value().edns->client_subnet);
  EXPECT_EQ(decoded.value().edns->client_subnet->source_prefix_len, 24);
  EXPECT_EQ(decoded.value().edns->client_subnet->address.to_string(), "203.0.113.0");
}

TEST(Wire, EdnsV6ClientSubnetRoundTrip) {
  auto query = make_query(9, DnsName::from("cdn.example.com"), RecordType::AAAA);
  Edns edns;
  ClientSubnet ecs;
  ecs.address = *IpAddr::parse("2001:db8:1234::");
  ecs.source_prefix_len = 48;
  edns.client_subnet = ecs;
  query.edns = edns;
  const auto decoded = decode(encode(query));
  ASSERT_TRUE(decoded) << decoded.error();
  ASSERT_TRUE(decoded.value().edns->client_subnet);
  EXPECT_EQ(decoded.value().edns->client_subnet->address.to_string(), "2001:db8:1234::");
}

TEST(Wire, UnknownEdnsOptionPreserved) {
  auto query = make_query(3, DnsName::from("x.com"), RecordType::A);
  Edns edns;
  edns.other_options.emplace_back(0xFDE9, std::vector<std::uint8_t>{1, 2, 3});
  query.edns = edns;
  const auto decoded = decode(encode(query));
  ASSERT_TRUE(decoded) << decoded.error();
  ASSERT_EQ(decoded.value().edns->other_options.size(), 1u);
  EXPECT_EQ(decoded.value().edns->other_options[0].first, 0xFDE9);
}

TEST(Wire, TruncationSetsTcAndDropsSections) {
  Message m = make_query(5, DnsName::from("big.example.com"), RecordType::A);
  m.header.qr = true;
  for (int i = 0; i < 100; ++i) {
    m.answers.push_back(make_a(DnsName::from("big.example.com"),
                               Ipv4Addr(10, 0, static_cast<std::uint8_t>(i / 256),
                                        static_cast<std::uint8_t>(i % 256)),
                               60));
  }
  const auto wire = encode(m, {.max_size = 512});
  EXPECT_LE(wire.size(), 512u);
  const auto decoded = decode(wire);
  ASSERT_TRUE(decoded) << decoded.error();
  EXPECT_TRUE(decoded.value().header.tc);
  EXPECT_LT(decoded.value().answers.size(), 100u);
}

TEST(Wire, DecodeRejectsTruncatedBuffers) {
  const auto wire = encode(sample_response());
  // Every strict prefix must fail cleanly, never crash.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const auto r = decode(std::span(wire.data(), len));
    EXPECT_FALSE(r) << "prefix of length " << len << " unexpectedly decoded";
  }
}

TEST(Wire, DecodeRejectsPointerLoop) {
  // Header + a name that is a pointer to itself at offset 12.
  std::vector<std::uint8_t> wire = {0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
                                    0xC0, 12, 0, 1, 0, 1};
  EXPECT_FALSE(decode(wire));
}

TEST(Wire, DecodeRejectsForwardPointer) {
  std::vector<std::uint8_t> wire = {0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
                                    0xC0, 16, 0, 1, 0, 1, 0};
  EXPECT_FALSE(decode(wire));
}

TEST(Wire, DecodeRejectsBadLabelType) {
  // 0x80 label type is reserved.
  std::vector<std::uint8_t> wire = {0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
                                    0x80, 'x', 0, 0, 1, 0, 1};
  EXPECT_FALSE(decode(wire));
}

TEST(Wire, DecodeQuestionFastPath) {
  const auto query = make_query(77, DnsName::from("fast.example.com"), RecordType::TXT);
  const auto wire = encode(query);
  const auto q = decode_question(wire);
  ASSERT_TRUE(q) << q.error();
  EXPECT_EQ(q.value().name.to_string(), "fast.example.com.");
  EXPECT_EQ(q.value().qtype, RecordType::TXT);
}

TEST(Wire, DecodeQuestionFailsWithoutQuestion) {
  Message m;
  m.header.id = 1;
  const auto wire = encode(m);
  EXPECT_FALSE(decode_question(wire));
}

TEST(Wire, GarbageInputNeverCrashes) {
  // Deterministic pseudo-random fuzz: decoder must return errors, not UB.
  std::uint64_t state = 0x12345;
  for (int trial = 0; trial < 2000; ++trial) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    std::vector<std::uint8_t> wire((state >> 32) % 64);
    for (auto& b : wire) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      b = static_cast<std::uint8_t>(state >> 56);
    }
    (void)decode(wire);  // must not crash; result may be ok or error
  }
  SUCCEED();
}

TEST(Wire, MutatedValidMessageNeverCrashes) {
  const auto wire = encode(sample_response());
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (std::uint8_t delta : {0x01, 0x80, 0xFF}) {
      auto mutated = wire;
      mutated[i] ^= delta;
      (void)decode(mutated);
    }
  }
  SUCCEED();
}

TEST(Wire, HeaderFlagsRoundTrip) {
  Message m;
  m.header.id = 0xBEEF;
  m.header.qr = true;
  m.header.opcode = Opcode::Notify;
  m.header.aa = true;
  m.header.tc = true;
  m.header.rd = true;
  m.header.ra = true;
  m.header.rcode = Rcode::Refused;
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded) << decoded.error();
  EXPECT_EQ(decoded.value().header, m.header);
}

}  // namespace
}  // namespace akadns::dns
