file(REMOVE_RECURSE
  "../examples-bin/example_failover"
  "../examples-bin/example_failover.pdb"
  "CMakeFiles/example_failover.dir/example_failover.cpp.o"
  "CMakeFiles/example_failover.dir/example_failover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
