#include "common/buffer_pool.hpp"

namespace akadns {

PooledBuffer& PooledBuffer::operator=(PooledBuffer&& other) noexcept {
  if (this != &other) {
    if (pool_) pool_->release(std::move(data_));
    pool_ = other.pool_;
    data_ = std::move(other.data_);
    other.pool_ = nullptr;
    other.data_.clear();
  }
  return *this;
}

PooledBuffer::~PooledBuffer() {
  if (pool_) pool_->release(std::move(data_));
}

PooledBuffer BufferPool::copy_of(std::span<const std::uint8_t> bytes) {
  ++stats_.acquired;
  std::vector<std::uint8_t> storage;
  if (!free_.empty()) {
    storage = std::move(free_.back());
    free_.pop_back();
    ++stats_.reused;
  } else {
    ++stats_.allocated;
  }
  storage.assign(bytes.begin(), bytes.end());
  return PooledBuffer(this, std::move(storage));
}

void BufferPool::release(std::vector<std::uint8_t>&& storage) noexcept {
  if (free_.size() >= config_.max_pooled || storage.capacity() > config_.max_retained_capacity) {
    ++stats_.discarded;
    return;  // storage freed here
  }
  storage.clear();
  free_.push_back(std::move(storage));
  ++stats_.released;
}

}  // namespace akadns
