#include "workload/population.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

namespace akadns::workload {

std::string to_string(Region r) {
  switch (r) {
    case Region::NorthAmerica: return "north-america";
    case Region::Europe: return "europe";
    case Region::Asia: return "asia";
    case Region::RestOfWorld: return "rest-of-world";
  }
  return "unknown";
}

ResolverPopulation::ResolverPopulation(PopulationConfig config, std::uint64_t seed)
    : config_(config) {
  Rng rng(seed);
  const std::size_t n = config_.resolver_count;

  // Per-resolver weights from a calibrated Zipf law. Rank 0 = heaviest.
  const double ip_exponent =
      ZipfSampler::calibrate_exponent(n, config_.top_ip_fraction, config_.top_ip_mass);
  ZipfSampler ip_zipf(n, ip_exponent);

  // ASN sizes from their own calibrated Zipf law; resolvers are assigned
  // to ASNs so that heavy resolvers concentrate in big ASNs (public DNS
  // services / major ISPs — the paper's top-6 observation).
  const double asn_exponent = ZipfSampler::calibrate_exponent(
      config_.asn_count, config_.top_asn_fraction, config_.top_asn_mass);
  ZipfSampler asn_zipf(config_.asn_count, asn_exponent);

  resolvers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ResolverInfo info;
    info.weight = ip_zipf.pmf(i);
    // Unique synthetic IPv4 per resolver, out of a documentation-ish pool.
    info.address = IpAddr(Ipv4Addr(0x0B000000u + static_cast<std::uint32_t>(i)));
    // Heavy resolvers mostly land in heavy ASNs (public DNS / major
    // ISPs); a minority scatter across the long tail, which keeps the
    // ASN concentration near the paper's 83% rather than ~100%.
    std::size_t asn_rank;
    if (rng.next_bool(config_.asn_mapping_fidelity)) {
      const double quantile =
          (static_cast<double>(i) + rng.next_double()) / static_cast<double>(n);
      // Invert the ASN CDF at a jittered quantile.
      const double target =
          std::min(0.999999, std::max(0.0, quantile * rng.next_double(0.6, 1.4)));
      std::size_t lo = 0, hi = config_.asn_count;
      while (lo + 1 < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (asn_zipf.cdf(mid) < target) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      asn_rank = lo;
    } else {
      asn_rank = static_cast<std::size_t>(rng.next_below(config_.asn_count));
    }
    info.asn = static_cast<std::uint32_t>(asn_rank + 1);
    // Region: stratified round-robin over ranks so the *weighted* shares
    // hit the target regardless of how skewed the weights are (a random
    // per-resolver draw would let the few heavy hitters swing the
    // weighted mass wildly).
    const auto strata = static_cast<std::uint32_t>(
        (i * 37 + 11) % 100);  // deterministic spread across ranks
    const auto major_cut = static_cast<std::uint32_t>(config_.major_region_mass * 100.0);
    if (strata < major_cut) {
      const double split = static_cast<double>(strata) / static_cast<double>(major_cut);
      info.region = split < 0.45 ? Region::NorthAmerica
                                 : (split < 0.75 ? Region::Europe : Region::Asia);
    } else {
      info.region = Region::RestOfWorld;
    }
    // Stable per-resolver IP TTL: initial 64 or 128 minus a hop count.
    const int initial = rng.next_bool(0.7) ? 64 : 128;
    info.ip_ttl = static_cast<std::uint8_t>(initial - rng.next_int(6, 28));
    info.random_ports = !rng.next_bool(config_.fixed_port_fraction);
    resolvers_.push_back(info);
  }
  rebuild_cdf();
}

void ResolverPopulation::rebuild_cdf() {
  cdf_.resize(resolvers_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < resolvers_.size(); ++i) {
    acc += resolvers_[i].weight;
    cdf_[i] = acc;
  }
  // Normalize in place so sampling stays correct after weekly jitter.
  for (auto& c : cdf_) c /= acc;
  if (!cdf_.empty()) cdf_.back() = 1.0;
}

std::size_t ResolverPopulation::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

std::vector<std::size_t> ResolverPopulation::top_by_weight(double fraction) const {
  std::vector<std::size_t> order(resolvers_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return resolvers_[a].weight > resolvers_[b].weight;
  });
  const auto k = static_cast<std::size_t>(fraction * static_cast<double>(order.size()));
  order.resize(std::max<std::size_t>(k, 1));
  return order;
}

double ResolverPopulation::mass_of_top(double fraction) const {
  double total = 0.0, top = 0.0;
  std::vector<double> weights;
  weights.reserve(resolvers_.size());
  for (const auto& r : resolvers_) {
    weights.push_back(r.weight);
    total += r.weight;
  }
  std::sort(weights.rbegin(), weights.rend());
  const auto k = static_cast<std::size_t>(fraction * static_cast<double>(weights.size()));
  for (std::size_t i = 0; i < k && i < weights.size(); ++i) top += weights[i];
  return total > 0 ? top / total : 0.0;
}

double ResolverPopulation::asn_mass_of_top(double fraction) const {
  std::unordered_map<std::uint32_t, double> by_asn;
  double total = 0.0;
  for (const auto& r : resolvers_) {
    by_asn[r.asn] += r.weight;
    total += r.weight;
  }
  std::vector<double> masses;
  masses.reserve(by_asn.size());
  for (const auto& [asn, mass] : by_asn) masses.push_back(mass);
  std::sort(masses.rbegin(), masses.rend());
  const auto k = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction * static_cast<double>(masses.size())));
  double top = 0.0;
  for (std::size_t i = 0; i < k && i < masses.size(); ++i) top += masses[i];
  return total > 0 ? top / total : 0.0;
}

double ResolverPopulation::region_mass(Region region) const {
  double total = 0.0, matching = 0.0;
  for (const auto& r : resolvers_) {
    total += r.weight;
    if (r.region == region) matching += r.weight;
  }
  return total > 0 ? matching / total : 0.0;
}

void ResolverPopulation::advance_week(Rng& rng) {
  // Rate jitter: weight *= lognormal(0, sigma).
  for (auto& r : resolvers_) {
    r.weight *= std::exp(rng.next_gaussian(0.0, config_.weekly_sigma));
  }
  // Identity churn: a small fraction of resolvers disappear and are
  // replaced by newcomers with fresh (typically small) weights.
  const auto churn_count = static_cast<std::size_t>(
      config_.weekly_churn * static_cast<double>(resolvers_.size()));
  const auto victims = rng.sample_indices(resolvers_.size(), churn_count);
  for (const auto i : victims) {
    ResolverInfo& r = resolvers_[i];
    r.address = IpAddr(Ipv4Addr(0x0C000000u + static_cast<std::uint32_t>(
                                                  rng.next_below(0x00FFFFFF))));
    // Newcomers start small: sample a weight from the lower half.
    r.weight *= rng.next_double(0.01, 0.5);
    const int initial = rng.next_bool(0.7) ? 64 : 128;
    r.ip_ttl = static_cast<std::uint8_t>(initial - rng.next_int(6, 28));
  }
  rebuild_cdf();
}

}  // namespace akadns::workload
