#include "server/nameserver.hpp"

#include "dns/wire.hpp"

namespace akadns::server {
namespace {

/// Cheap rcode extraction from encoded response header bytes.
dns::Rcode rcode_of(const std::vector<std::uint8_t>& wire) {
  return wire.size() >= 4 ? static_cast<dns::Rcode>(wire[3] & 0xF) : dns::Rcode::ServFail;
}

}  // namespace

std::string to_string(ServerState s) {
  switch (s) {
    case ServerState::Running: return "running";
    case ServerState::Crashed: return "crashed";
    case ServerState::SelfSuspended: return "self-suspended";
  }
  return "unknown";
}

Nameserver::Nameserver(NameserverConfig config, const zone::ZoneStore& store)
    : config_(std::move(config)),
      responder_(store),
      pool_(std::make_unique<BufferPool>()),
      queues_(config_.queue_config),
      compute_bucket_(config_.compute_capacity_qps, config_.compute_capacity_qps * 0.1),
      io_bucket_(config_.io_capacity_qps, config_.io_capacity_qps * 0.05) {}

void Nameserver::receive(std::span<const std::uint8_t> wire, const Endpoint& source,
                         std::uint8_t ip_ttl, SimTime now) {
  StageTimer receive_timer(telemetry_.stage(Stage::Receive));
  ++stats_.packets_received;
  if (state_ != ServerState::Running) {
    stats_.drops.add(DropReason::NotRunning);
    return;
  }
  // NIC / kernel stack limit: when arrivals exceed the I/O capacity,
  // packets are lost before the application sees them (Figure 10, A>A2).
  if (!io_bucket_.try_take(now)) {
    stats_.drops.add(DropReason::IoOverload);
    return;
  }
  // The once-only decode: header + question parsed here, shared by the
  // firewall, the filters, and (completed in place) the responder.
  QueryContext ctx;
  {
    StageTimer parse_timer(telemetry_.stage(Stage::Parse));
    auto view = dns::decode_query_view(wire);
    if (!view) {
      // Unanswerable: no parseable header/question means no FORMERR
      // either, so the packet dies here instead of wasting queue space.
      stats_.drops.add(DropReason::Malformed);
      return;
    }
    ctx.view = std::move(view).value();
    ctx.parsed = true;
  }
  if (firewall_.drops(ctx.view.question, now)) {
    stats_.drops.add(DropReason::Firewall);
    return;
  }
  ctx.source = source;
  ctx.ip_ttl = ip_ttl;
  ctx.arrival = now;
  {
    StageTimer score_timer(telemetry_.stage(Stage::Score));
    ctx.score = scoring_.score(ctx.filter_view(now));
  }
  ctx.wire = pool_->copy_of(wire);
  const double score = ctx.score;  // read before the move below
  switch (queues_.enqueue(std::move(ctx), score)) {
    case filters::EnqueueOutcome::Enqueued:
      ++stats_.queries_enqueued;
      break;
    case filters::EnqueueOutcome::DiscardedByScore:
      stats_.drops.add(DropReason::ScoreDiscard);
      break;
    case filters::EnqueueOutcome::DroppedQueueFull:
      stats_.drops.add(DropReason::QueueFull);
      break;
  }
}

bool Nameserver::process_one(SimTime now) {
  auto item = queues_.dequeue();
  if (!item) return false;
  ++stats_.queries_processed;
  telemetry_.queue_wait().record((now - item->arrival).to_micros());

  // Query-of-death check: an unrecoverable fault in query processing.
  if (crash_predicate_ && crash_predicate_(item->question())) {
    ++stats_.crashes;
    stats_.drops.add(DropReason::QueryOfDeath);
    last_qod_ = item->question();  // "write the DNS payload to disk"
    if (config_.qod_trap_enabled) {
      // The separate firewall-builder process installs a rule dropping
      // similar queries for T_QoD.
      firewall_.install(item->question(), now, config_.qod_rule_ttl);
    }
    state_ = ServerState::Crashed;
    return true;
  }

  {
    StageTimer resolve_timer(telemetry_.stage(Stage::Resolve));
    responder_.respond_view_into(item->bytes(), item->view, item->source, now,
                                 response_scratch_);
  }
  // Fan the outcome back to the filters (NXDOMAIN counting etc.).
  scoring_.observe_response(item->filter_view(now), rcode_of(response_scratch_));
  ++stats_.responses_sent;
  if (span_sink_) {
    span_sink_(item->source, std::span<const std::uint8_t>(response_scratch_));
  } else if (sink_) {
    sink_(item->source, response_scratch_);  // legacy sinks get an owned copy
  }
  return true;
}

std::size_t Nameserver::process(SimTime now) {
  std::size_t processed = 0;
  while (state_ == ServerState::Running && !queues_.empty() && compute_bucket_.try_take(now)) {
    if (!process_one(now)) break;
    ++processed;
  }
  return processed;
}

std::size_t Nameserver::process_unmetered(SimTime now, std::size_t budget) {
  std::size_t processed = 0;
  while (processed < budget && state_ == ServerState::Running && process_one(now)) {
    ++processed;
  }
  return processed;
}

void Nameserver::self_suspend() noexcept {
  if (state_ == ServerState::Running) state_ = ServerState::SelfSuspended;
}

void Nameserver::resume() noexcept {
  if (state_ == ServerState::SelfSuspended) state_ = ServerState::Running;
}

void Nameserver::restart(SimTime now) {
  // A restart loses in-flight queries (resolvers retry) and resets the
  // capacity buckets; learned filter state survives in this model because
  // production filters persist their learned tables out of process.
  stats_.drops.add(DropReason::RestartFlush, queues_.size());
  queues_ = filters::PenaltyQueueSet<QueryContext>(config_.queue_config);
  compute_bucket_ = TokenBucket(config_.compute_capacity_qps, config_.compute_capacity_qps * 0.1);
  io_bucket_ = TokenBucket(config_.io_capacity_qps, config_.io_capacity_qps * 0.05);
  state_ = ServerState::Running;
  metadata_updated(now);
}

bool Nameserver::is_stale(SimTime now) const noexcept {
  if (config_.input_delayed) return false;
  return now - last_metadata_ > config_.staleness_threshold;
}

}  // namespace akadns::server
