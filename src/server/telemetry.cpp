#include "server/telemetry.hpp"

namespace akadns::server {

std::string_view to_string(Stage stage) noexcept {
  switch (stage) {
    case Stage::Receive: return "receive";
    case Stage::Parse: return "parse";
    case Stage::Score: return "score";
    case Stage::Resolve: return "resolve";
    case Stage::kCount: break;
  }
  return "unknown";
}

void DatapathTelemetry::merge(const DatapathTelemetry& other) {
  for (std::size_t i = 0; i < kStageCount; ++i) stages_[i].merge(other.stages_[i]);
  queue_wait_.merge(other.queue_wait_);
}

std::string DatapathTelemetry::render() const {
  std::string out;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const auto s = static_cast<Stage>(i);
    out += "  ";
    out += to_string(s);
    out += " (ns): ";
    out += stages_[i].summary();
    out += "\n";
  }
  out += "  queue-wait (sim us): ";
  out += queue_wait_.summary();
  out += "\n";
  return out;
}

}  // namespace akadns::server
