// The anycast front's steering contract: flows pin to one member via
// rendezvous hashing, withdrawal moves ONLY the withdrawn member's
// flows (ECMP-with-resilient-hashing semantics), reactivation pulls
// back exactly the flows whose winner it is, and the reconvergence
// samples measure it all. Members here are tiny echo servers that tag
// responses with their identity, so every client can see who served it.

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "fleet/anycast_front.hpp"
#include "net/socket.hpp"

namespace akadns::fleet {
namespace {

constexpr Ipv4Addr kLoopback(127, 0, 0, 1);

/// A UDP member that answers every datagram with [tag, original bytes...].
struct EchoMember {
  net::UdpSocket sock;
  std::uint8_t tag;
  std::thread thread;
  std::atomic<bool> stop{false};

  EchoMember(std::uint8_t tag_byte) : tag(tag_byte) {
    auto opened = net::UdpSocket::open(kLoopback, 0);
    EXPECT_TRUE(opened) << opened.error();
    sock = std::move(opened).take();
    thread = std::thread([this] {
      while (!stop.load(std::memory_order_acquire)) {
        pollfd pfd{sock.fd(), POLLIN, 0};
        if (::poll(&pfd, 1, 50) != 1) continue;
        std::uint8_t buf[2048];
        sockaddr_storage src{};
        socklen_t src_len = sizeof(src);
        const ssize_t n = ::recvfrom(sock.fd(), buf + 1, sizeof(buf) - 1, 0,
                                     reinterpret_cast<sockaddr*>(&src), &src_len);
        if (n <= 0) continue;
        buf[0] = tag;
        ::sendto(sock.fd(), buf, static_cast<std::size_t>(n) + 1, 0,
                 reinterpret_cast<const sockaddr*>(&src), src_len);
      }
    });
  }
  ~EchoMember() {
    stop.store(true, std::memory_order_release);
    if (thread.joinable()) thread.join();
  }
  Endpoint endpoint() const { return Endpoint{IpAddr(kLoopback), sock.port()}; }
};

/// One front client: a connected UDP socket that asks "who serves me?"
/// by sending a byte and reading the member tag off the reply.
struct Client {
  int fd;
  explicit Client(std::uint16_t front_port) : fd(::socket(AF_INET, SOCK_DGRAM, 0)) {
    sockaddr_storage dst{};
    const socklen_t len =
        net::sockaddr_from_endpoint(Endpoint{IpAddr(kLoopback), front_port}, dst);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&dst), len), 0);
  }
  ~Client() { ::close(fd); }
  Client(const Client&) = delete;
  Client(Client&& other) noexcept : fd(other.fd) { other.fd = -1; }

  /// -1 on timeout.
  int ask(int timeout_ms = 2000) {
    const std::uint8_t ping = 0x5a;
    EXPECT_EQ(::send(fd, &ping, 1, 0), 1);
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, timeout_ms) != 1) return -1;
    std::uint8_t buf[16];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    return n >= 1 ? buf[0] : -1;
  }
};

struct FrontFixture {
  EchoMember a{0xa};
  EchoMember b{0xb};
  EchoMember c{0xc};
  AnycastFront front;

  FrontFixture() : front(FrontConfig{}) {
    auto started = front.start();
    EXPECT_TRUE(started) << started.error();
    front.upsert_member("a", a.endpoint());
    front.upsert_member("b", b.endpoint());
    front.upsert_member("c", c.endpoint());
    // Member ops are queued to the epoll thread; a datagram racing them
    // is (correctly) dropped as no-member. Wait until steering is live.
    for (int i = 0; i < 200 && front.members().size() < 3; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(front.members().size(), 3u);
  }
  ~FrontFixture() { front.stop(); }
};

TEST(AnycastFront, PinsEachFlowToOneMember) {
  FrontFixture fx;
  std::vector<Client> clients;
  for (int i = 0; i < 16; ++i) clients.emplace_back(fx.front.udp_port());

  std::map<int, int> by_member;
  for (auto& client : clients) {
    const int first = client.ask();
    ASSERT_GE(first, 0) << "no answer through the front";
    // A flow is pinned: repeated asks always land on the same member.
    for (int i = 0; i < 3; ++i) EXPECT_EQ(client.ask(), first);
    ++by_member[first];
  }
  // 16 flows across 3 members: rendezvous hashing spreads them (the
  // exact split is hash-determined; what matters is nobody owns all).
  EXPECT_GE(by_member.size(), 2u);
  EXPECT_EQ(fx.front.counters().live_flows, 16u);
}

TEST(AnycastFront, WithdrawalMovesOnlyTheWithdrawnMembersFlows) {
  FrontFixture fx;
  std::vector<Client> clients;
  for (int i = 0; i < 24; ++i) clients.emplace_back(fx.front.udp_port());

  std::vector<int> before;
  for (auto& client : clients) {
    before.push_back(client.ask());
    ASSERT_GE(before.back(), 0);
  }

  fx.front.set_member_active("a", false);
  // Control ops run on the epoll thread; give the queue a beat.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::size_t moved = 0, stayed = 0;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const int after = clients[i].ask();
    ASSERT_GE(after, 0);
    EXPECT_NE(after, 0xa) << "flow still reaching a withdrawn member";
    if (before[i] == 0xa) {
      ++moved;
    } else {
      // Minimal disruption: survivors keep their member.
      EXPECT_EQ(after, before[i]);
      ++stayed;
    }
  }
  EXPECT_GT(stayed, 0u);

  // The withdrawal produced a reconvergence sample counting the moves,
  // and traffic since then resolved its first-answer latency.
  const auto samples = fx.front.samples();
  ASSERT_FALSE(samples.empty());
  const auto& sample = samples.back();
  EXPECT_EQ(sample.member, "a");
  EXPECT_TRUE(sample.withdrawal);
  EXPECT_EQ(sample.flows_moved, moved);
  if (moved > 0) {
    EXPECT_GE(sample.remap_us, 0);
    EXPECT_GE(sample.first_answer_us, 0) << "first answer never measured";
  }
}

TEST(AnycastFront, ReactivationPullsBackItsFlows) {
  FrontFixture fx;
  std::vector<Client> clients;
  for (int i = 0; i < 24; ++i) clients.emplace_back(fx.front.udp_port());

  std::vector<int> original;
  for (auto& client : clients) {
    original.push_back(client.ask());
    ASSERT_GE(original.back(), 0);
  }

  fx.front.set_member_active("b", false);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  fx.front.set_member_active("b", true);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Rendezvous hashing is deterministic per (flow, member) pair: with
  // the full member set restored, every flow is back on its original
  // winner — withdrawal plus reactivation is a round trip.
  for (std::size_t i = 0; i < clients.size(); ++i) {
    EXPECT_EQ(clients[i].ask(), original[i]);
  }
}

TEST(AnycastFront, RepointedMemberKeepsItsFlowsOnFreshEndpoint) {
  // A machine restart lands on new ephemeral ports; upsert_member with
  // the same id re-points existing flows without changing catchments.
  FrontFixture fx;
  std::vector<Client> clients;
  for (int i = 0; i < 12; ++i) clients.emplace_back(fx.front.udp_port());
  std::vector<int> before;
  for (auto& client : clients) {
    before.push_back(client.ask());
    ASSERT_GE(before.back(), 0);
  }

  // "Restart" member a on a brand-new socket. The distinct tag proves
  // its flows really reconnected to the fresh endpoint.
  EchoMember a2(0xd);
  fx.front.upsert_member("a", a2.endpoint());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  for (std::size_t i = 0; i < clients.size(); ++i) {
    const int after = clients[i].ask();
    if (before[i] == 0xa) {
      EXPECT_EQ(after, 0xd) << "flow not re-pointed to the restarted member";
    } else {
      EXPECT_EQ(after, before[i]) << "unrelated flow disturbed by the re-point";
    }
  }
}

TEST(AnycastFront, WithdrawalSampleSurvivesQuickReactivation) {
  // The kill-drill pattern: a member withdraws and comes right back
  // (supervisor restart) BEFORE any of the moved flows relays an
  // answer — exactly what happens when the affected clients are waiting
  // out a retry timeout on queries that died with the machine. The
  // withdrawal sample must still resolve its first_answer_us once
  // traffic recovers: each flow anchors to its oldest unanswered
  // re-pin, so a later remap cannot orphan the measurement.
  FrontFixture fx;
  std::vector<Client> clients;
  for (int i = 0; i < 24; ++i) clients.emplace_back(fx.front.udp_port());
  std::size_t on_a = 0;
  for (auto& client : clients) {
    const int tag = client.ask();
    ASSERT_GE(tag, 0);
    if (tag == 0xa) ++on_a;
  }
  ASSERT_GT(on_a, 0u) << "hash split left member a empty; cannot exercise the drill";

  // Withdraw and reactivate back-to-back, no traffic in between.
  fx.front.set_member_active("a", false);
  fx.front.set_member_active("a", true);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Traffic resumes only now — after BOTH re-pins.
  for (auto& client : clients) ASSERT_GE(client.ask(), 0);

  const auto samples = fx.front.samples();
  ASSERT_GE(samples.size(), 2u);
  const auto& withdrawal = samples[samples.size() - 2];
  ASSERT_EQ(withdrawal.member, "a");
  ASSERT_TRUE(withdrawal.withdrawal);
  ASSERT_EQ(withdrawal.flows_moved, on_a);
  EXPECT_GE(withdrawal.first_answer_us, 0)
      << "withdrawal measurement lost to the follow-up reactivation re-pin";
}

TEST(AnycastFront, FlowTableBoundEvictsWithoutDisruptingService) {
  // A tiny max_flows forces the oldest-idle eviction path on nearly
  // every new client. Evicted flows are freed only after the epoll
  // batch (they may still have events in it); every client must still
  // be answered — a fresh flow replaces an evicted one transparently.
  EchoMember a{0xa};
  FrontConfig config;
  config.max_flows = 4;
  AnycastFront front(config);
  auto started = front.start();
  ASSERT_TRUE(started) << started.error();
  front.upsert_member("a", a.endpoint());
  for (int i = 0; i < 200 && front.members().empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Serialized passes: every ask must be answered even though nearly
  // each new flow evicts the table's oldest.
  std::vector<Client> clients;
  for (int i = 0; i < 16; ++i) clients.emplace_back(front.udp_port());
  for (int pass = 0; pass < 3; ++pass) {
    for (auto& client : clients) EXPECT_EQ(client.ask(), 0xa);
  }

  // Unsynchronized blast: all clients fire at once so a single epoll
  // batch carries both new-flow datagrams (evictions) and upstream
  // answers for flows evicted earlier in that same batch — the stale
  // PollRef window. No reply assertions (an evicted flow's in-flight
  // answer is legitimately dropped); surviving without UB is the test.
  const std::uint8_t ping = 0x5a;
  for (int pass = 0; pass < 20; ++pass) {
    for (auto& client : clients) (void)!::send(client.fd, &ping, 1, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (auto& client : clients) {  // drain whatever made it back
    std::uint8_t buf[16];
    while (::recv(client.fd, buf, sizeof(buf), MSG_DONTWAIT) > 0) {
    }
  }

  const auto counters = front.counters();
  EXPECT_GT(counters.flows_expired, 0u);
  EXPECT_LE(counters.live_flows, 4u);
  front.stop();
}

TEST(AnycastFront, NoActiveMembersDropsInsteadOfCrashing) {
  FrontFixture fx;
  fx.front.set_member_active("a", false);
  fx.front.set_member_active("b", false);
  fx.front.set_member_active("c", false);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  Client client(fx.front.udp_port());
  EXPECT_EQ(client.ask(500), -1);
  EXPECT_GE(fx.front.counters().udp_no_member_drops, 1u);
}

}  // namespace
}  // namespace akadns::fleet
