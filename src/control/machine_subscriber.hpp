// Adapters wiring pop::Machine instances into the metadata pipeline.
//
// Zone propagation runs through the shared transport-agnostic pipeline
// (src/propagation): publish_zone() validates the snapshot, feeds it to
// a ZonePublisher — which diffs, incrementally recompiles, and journals
// it exactly as the socket frontend's publisher does — and then carries
// the resulting ZoneUpdate across the simulated control plane as a
// metadata payload. On delivery, the machine's own ZoneSubscriber picks
// the cheapest correct application path and refreshes the staleness
// clock. Input-delayed machines subscribe with the 1-hour artificial
// delay and can be frozen ("stop receiving any new inputs upon use",
// §4.2.3).
#pragma once

#include "common/clock.hpp"
#include "common/event_scheduler.hpp"
#include "control/control_plane.hpp"
#include "pop/machine.hpp"
#include "propagation/zone_publisher.hpp"
#include "zone/zone.hpp"

namespace akadns::control {

/// Clock adapter putting the propagation pipeline on the simulation's
/// time axis: ZoneUpdate::published_at and subscriber-side latency both
/// read the EventScheduler's instant, mirroring how the socket frontend
/// shares one MonotonicClock across publisher and workers.
class SchedulerClock final : public Clock {
 public:
  explicit SchedulerClock(const EventScheduler& scheduler) noexcept
      : scheduler_(scheduler) {}
  Timepoint now() const noexcept override { return scheduler_.now(); }

 private:
  const EventScheduler& scheduler_;
};

/// Control-plane payload for zone publications: one immutable ZoneUpdate
/// from the propagation pipeline.
struct ZoneUpdateMetadata : Metadata {
  explicit ZoneUpdateMetadata(propagation::ZoneUpdatePtr update_in)
      : update(std::move(update_in)) {}
  propagation::ZoneUpdatePtr update;
};

/// Topic naming convention for zone publications.
std::string zone_topic(const dns::DnsName& apex);

/// Publishes a zone snapshot (the Management Portal's output, after
/// validation): the publisher diffs/compiles/journals it, and the
/// resulting ZoneUpdate rides the control plane to every subscribed
/// machine. Throws std::invalid_argument if validation fails or the
/// serial regresses — "the Management Portal validates the metadata and
/// publishes it".
std::uint64_t publish_zone(ControlPlane& plane, propagation::ZonePublisher& publisher,
                           zone::Zone zone);

/// Subscribes a machine (which must own a local store) to a zone topic.
/// Returns the subscription id. `input_delay` is zero for regular
/// machines and one hour for input-delayed ones.
ControlPlane::SubscriptionId subscribe_machine_to_zone(
    ControlPlane& plane, pop::Machine& machine, const dns::DnsName& apex,
    Duration input_delay = Duration::zero());

/// Generic heartbeat topic used to model mapping-intelligence updates:
/// delivery refreshes the machine's metadata timestamp (real-time
/// multicast class).
ControlPlane::SubscriptionId subscribe_machine_to_mapping(
    ControlPlane& plane, pop::Machine& machine,
    Duration input_delay = Duration::zero());

constexpr const char* kMappingTopic = "mapping/intelligence";

}  // namespace akadns::control
