file(REMOVE_RECURSE
  "CMakeFiles/test_filters.dir/filters/allowlist_filter_test.cpp.o"
  "CMakeFiles/test_filters.dir/filters/allowlist_filter_test.cpp.o.d"
  "CMakeFiles/test_filters.dir/filters/filter_test.cpp.o"
  "CMakeFiles/test_filters.dir/filters/filter_test.cpp.o.d"
  "CMakeFiles/test_filters.dir/filters/hopcount_filter_test.cpp.o"
  "CMakeFiles/test_filters.dir/filters/hopcount_filter_test.cpp.o.d"
  "CMakeFiles/test_filters.dir/filters/loyalty_filter_test.cpp.o"
  "CMakeFiles/test_filters.dir/filters/loyalty_filter_test.cpp.o.d"
  "CMakeFiles/test_filters.dir/filters/nxdomain_filter_test.cpp.o"
  "CMakeFiles/test_filters.dir/filters/nxdomain_filter_test.cpp.o.d"
  "CMakeFiles/test_filters.dir/filters/rate_limit_filter_test.cpp.o"
  "CMakeFiles/test_filters.dir/filters/rate_limit_filter_test.cpp.o.d"
  "test_filters"
  "test_filters.pdb"
  "test_filters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
