// Leaky-bucket rate limiter.
//
// The paper's rate-limiting filter (§4.3.4, attack class 2 "Direct Query")
// uses a leaky bucket per resolver because DNS traffic is bursty
// (Figure 3): the bucket tolerates short bursts up to its capacity while
// enforcing a long-term drain rate learned from history.
#pragma once

#include "common/sim_time.hpp"

namespace akadns {

class LeakyBucket {
 public:
  /// rate_per_sec: sustained drain rate; burst: bucket capacity in units.
  LeakyBucket(double rate_per_sec, double burst) noexcept;

  /// Offers one unit at time `now`. Returns true if the unit conforms
  /// (fits in the bucket after draining), false if it overflows.
  bool offer(SimTime now) noexcept { return offer(now, 1.0); }
  bool offer(SimTime now, double units) noexcept;

  /// Current fill level after draining to `now` (does not add anything).
  double level(SimTime now) noexcept;

  /// Re-parameterizes the bucket in place (used when the learned rate of
  /// a resolver is refreshed); retains the current fill.
  void reconfigure(double rate_per_sec, double burst) noexcept;

  double rate_per_sec() const noexcept { return rate_; }
  double burst() const noexcept { return burst_; }

 private:
  void drain(SimTime now) noexcept;

  double rate_;
  double burst_;
  double level_ = 0.0;
  SimTime last_ = SimTime::origin();
};

}  // namespace akadns
