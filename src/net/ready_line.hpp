// The startup handshake between akadns-serve and whoever spawned it.
//
// After binding every socket, the daemon prints exactly one JSON object
// on one stdout line and flushes. A supervisor (src/fleet/), a test, or
// a shell script reads lines off the child's stdout pipe until parse
// succeeds — no port-file races, no polling a port that may belong to a
// previous incarnation, and ephemeral binds (--port 0, --stats-port 0)
// work everywhere because the line reports the *bound* ports, not the
// requested ones.
//
// The format is deliberately flat and the parser deliberately strict:
// a single-line JSON object whose fields are known up front. Anything
// else on stdout (the shutdown telemetry dump is also JSON but spans
// multiple values) fails to parse and is skipped by readers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace akadns::net {

struct ReadyLine {
  std::int64_t pid = 0;
  std::string addr;                 // bind address, dotted quad
  std::uint16_t udp_port = 0;       // bound UDP query port
  std::uint16_t tcp_port = 0;       // bound TCP query/transfer port
  std::uint16_t stats_port = 0;     // bound /metrics port, 0 = no endpoint
  std::uint64_t workers = 0;
  std::uint64_t zones = 0;          // apexes published at startup
  std::uint64_t generation = 0;     // zone versions accepted so far
  bool defense = false;
};

/// One line, '\n'-terminated: {"akadns_serve_ready":{...}}.
std::string render_ready_line(const ReadyLine& ready);

/// Parses a line produced by render_ready_line (surrounding whitespace
/// tolerated). nullopt for anything else — unknown keys, missing keys,
/// or a line that is not the ready object.
std::optional<ReadyLine> parse_ready_line(std::string_view line);

}  // namespace akadns::net
