// The fault schedule a chaos run executes (paper §4–5: failures are a
// normal operating mode, so the reproduction must be able to create them
// on demand — deterministically, or a red CI run can't be replayed).
//
// A FaultPlan is two per-direction FaultSpecs (client→upstream "up",
// upstream→client "down") plus shared blackhole windows and the seed.
// Everything stochastic about a run is a pure function of (plan, seed,
// direction, packet ordinal) — see fault_stream.hpp — so the same plan
// file and seed reproduce the same impairment decisions byte for byte.
//
// Plan files are flat `key=value` lines ('#' comments). Keys take a
// direction prefix: `up.`, `down.`, or `both.`:
//
//   seed=42
//   both.loss=0.05          # P(drop) per datagram
//   both.delay_ms=20        # fixed one-way delay
//   both.jitter_ms=20       # + uniform [0, jitter)
//   up.corrupt=0.01         # P(flip one byte)
//   down.dup=0.02           # P(deliver twice)
//   down.reorder=0.05       # P(held back behind later traffic)
//   up.tcp_reset=0.1        # P(RST a fresh TCP connection)
//   up.tcp_stall=0.05       # P(accept, then never answer)
//   blackhole=3000:13000    # both faces dark from t=3s to t=13s
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "common/sim_time.hpp"

namespace akadns::chaos {

/// One stretch of total darkness on the proxy clock (time since the
/// proxy started executing the plan). While inside a window every
/// datagram is swallowed, established TCP relays stop forwarding, and
/// new TCP connections are refused — the closest a userspace proxy gets
/// to yanking the cable.
struct BlackholeWindow {
  Duration start;
  Duration end;
  bool contains(Duration elapsed) const noexcept {
    return elapsed >= start && elapsed < end;
  }
};

/// Impairments applied to one direction of traffic. Probabilities are
/// per-datagram (UDP) or per-connection / per-chunk (TCP, see the proxy
/// header for which knobs apply there).
struct FaultSpec {
  double loss = 0.0;     ///< P(drop) per UDP datagram.
  double dup = 0.0;      ///< P(deliver the datagram twice).
  double reorder = 0.0;  ///< P(hold it back behind later traffic).
  double corrupt = 0.0;  ///< P(flip one byte at a drawn offset).
  Duration delay;        ///< Fixed one-way delay added to everything.
  Duration jitter;       ///< + uniform [0, jitter) per datagram/chunk.
  double tcp_reset = 0.0;  ///< P(RST a freshly accepted connection).
  double tcp_stall = 0.0;  ///< P(accept, read, never forward or answer).

  /// Whether this spec impairs anything at all (fast-path skip).
  bool active() const noexcept {
    return loss > 0.0 || dup > 0.0 || reorder > 0.0 || corrupt > 0.0 ||
           tcp_reset > 0.0 || tcp_stall > 0.0 ||
           delay.count_nanos() > 0 || jitter.count_nanos() > 0;
  }
};

struct FaultPlan {
  FaultSpec up;    ///< client → upstream
  FaultSpec down;  ///< upstream → client
  /// Blackhole windows apply to both directions and to TCP accepts.
  std::vector<BlackholeWindow> blackholes;
  std::uint64_t seed = 1;

  /// True while `elapsed` (time since plan start) is inside any window.
  bool in_blackhole(Duration elapsed) const noexcept {
    for (const BlackholeWindow& w : blackholes) {
      if (w.contains(elapsed)) return true;
    }
    return false;
  }

  /// Parses the `key=value` plan format described above. Unknown keys,
  /// out-of-range probabilities, and malformed windows are errors — a
  /// typo'd chaos plan must fail loudly, not silently run a clean test.
  static Result<FaultPlan> parse(std::string_view text);
  /// parse() over a file's contents.
  static Result<FaultPlan> load(const std::string& path);

  /// Round-trips through parse(): the canonical form of this plan.
  std::string to_string() const;
};

}  // namespace akadns::chaos
