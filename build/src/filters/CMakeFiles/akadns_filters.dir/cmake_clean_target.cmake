file(REMOVE_RECURSE
  "libakadns_filters.a"
)
