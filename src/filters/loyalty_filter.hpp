// Loyalty filter (§4.3.4, attack class 5 "Spoofed Source IP & IP TTL").
//
// "Each nameserver independently tracks the resolvers that historically
// send DNS queries to it. ... allowlisted resolvers only appear in the
// loyalty filter of nameservers to which the allowlisted resolver is
// routed [by anycast]. When a nameserver receives a query from a resolver
// that is not in the loyalty filter, the query is assigned a penalty."
// An attacker must therefore be routed to the same PoP as the resolver
// it is impersonating — on top of spoofing its address and IP TTL.
//
// The loyal set ages out slowly: membership is refreshed by traffic and
// entries unused for `expiry` are dropped, modelling "consistent over
// several days" (Figure 4).
#pragma once

#include <unordered_map>

#include "filters/filter.hpp"

namespace akadns::filters {

class LoyaltyFilter : public Filter {
 public:
  struct Config {
    double penalty = 40.0;
    /// Queries from one source within `ripen_after` of first sight do not
    /// yet count as loyal (prevents an attacker from becoming loyal
    /// during the attack itself).
    Duration ripen_after = Duration::hours(1);
    /// Entries idle longer than this are forgotten.
    Duration expiry = Duration::days(14);
    std::size_t max_tracked_sources = 1'000'000;
  };

  LoyaltyFilter();
  explicit LoyaltyFilter(Config config);

  std::string_view name() const noexcept override { return "loyalty"; }
  double score(const QueryContext& ctx) override;

  /// Seeds membership from history (first_seen backdated so the source is
  /// immediately loyal).
  void learn(const IpAddr& source, SimTime seen_at);

  bool is_loyal(const IpAddr& source, SimTime now) const;
  std::size_t tracked_sources() const noexcept { return sources_.size(); }
  std::uint64_t total_penalized() const noexcept { return penalized_; }

 private:
  struct Membership {
    SimTime first_seen;
    SimTime last_seen;
  };

  Config config_;
  std::unordered_map<IpAddr, Membership> sources_;
  std::uint64_t penalized_ = 0;
};

}  // namespace akadns::filters
