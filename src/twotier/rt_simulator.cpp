#include "twotier/rt_simulator.hpp"

namespace akadns::twotier {

RtEstimate simulate_rt(double qps, const RtSimConfig& config, Rng& rng) {
  RtEstimate estimate;
  if (qps <= 0.0) return estimate;
  const double horizon = config.duration.to_seconds();
  const double host_ttl = config.host_ttl.to_seconds();
  const double delegation_ttl = config.delegation_ttl.to_seconds();

  double now = 0.0;
  double host_expires = -1.0;        // cache cold
  double delegation_expires = -1.0;  // cache cold
  while (true) {
    now += rng.next_exponential(qps);
    if (now >= horizon) break;
    ++estimate.end_user_queries;
    if (now < host_expires) continue;  // answered from cache
    // Host record expired: this is a resolution (lowlevel contact).
    ++estimate.resolutions;
    if (now >= delegation_expires) {
      // Delegation expired too: toplevel contact refreshes it.
      ++estimate.toplevel_contacts;
      delegation_expires = now + delegation_ttl;
    }
    host_expires = now + host_ttl;
  }
  return estimate;
}

double analytic_rt(double qps, const RtSimConfig& config) {
  if (qps <= 0.0) return 1.0;
  // Resolutions renew every (host_ttl + mean forward wait 1/q); toplevel
  // contacts renew every (delegation_ttl + residual resolution wait),
  // where the residual wait after the delegation expires is about one
  // resolution cycle. Ratio of the two renewal rates:
  const double cycle = config.host_ttl.to_seconds() + 1.0 / qps;
  return cycle / (config.delegation_ttl.to_seconds() + cycle);
}

}  // namespace akadns::twotier
