// Deterministic random number generation for reproducible simulations.
//
// Every stochastic component in this codebase draws from an explicitly
// seeded generator so that simulation runs are bit-for-bit reproducible.
// We provide SplitMix64 (used for seeding / cheap hashing) and
// Xoshiro256** (the workhorse generator), plus the small set of
// distributions the simulators need.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace akadns {

/// SplitMix64: tiny, fast generator mainly used to expand a single
/// 64-bit seed into the larger state of Xoshiro256**.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit PRNG with 256 bits of state.
/// Satisfies the essentials of UniformRandomBitGenerator so it can be
/// used with <random> distributions if desired, though we mostly use the
/// member helpers below to keep results platform-independent.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p) noexcept;

  /// Standard normal via Box-Muller (deterministic; caches the spare).
  double next_gaussian() noexcept;

  /// Normal with the given mean and standard deviation.
  double next_gaussian(double mean, double stddev) noexcept;

  /// Exponential with the given rate (mean 1/rate). rate must be > 0.
  double next_exponential(double rate) noexcept;

  /// Pareto (Lomax-shifted) sample with scale xm > 0 and shape alpha > 0.
  double next_pareto(double xm, double alpha) noexcept;

  /// Log-normal with parameters of the underlying normal.
  double next_lognormal(double mu, double sigma) noexcept;

  /// Poisson-distributed count with the given mean (Knuth for small
  /// lambda, normal approximation above 64 to stay O(1)).
  std::uint64_t next_poisson(double lambda) noexcept;

  /// Fisher-Yates shuffle of an arbitrary vector.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) noexcept;

  /// Derives an independent child generator; handy for giving each
  /// simulated entity its own stream without correlation.
  Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace akadns
