// The QueryContext pipeline: malformed wires die at receive() with a
// Malformed drop (never crash, never enqueue), the buffer pool recycles
// packet storage, per-stage telemetry records every packet, and the
// drop taxonomy keeps the conservation invariant
//   packets_received == responses_sent + drops.total() + pending.
#include <gtest/gtest.h>

#include "dns/wire.hpp"
#include "server/nameserver.hpp"
#include "zone/zone_builder.hpp"

namespace akadns::server {
namespace {

using dns::DnsName;
using dns::RecordType;

struct Fixture {
  zone::ZoneStore store;
  std::vector<std::pair<Endpoint, std::vector<std::uint8_t>>> responses;
  Endpoint client{*IpAddr::parse("198.51.100.1"), 4242};

  Fixture() {
    store.publish(zone::ZoneBuilder("example.com", 1)
                      .ns("@", "ns1.example.com")
                      .a("ns1", "10.0.0.1")
                      .a("www", "93.184.216.34")
                      .build());
  }

  Nameserver make(NameserverConfig config = {}) {
    Nameserver ns(std::move(config), store);
    ns.set_response_sink([this](const Endpoint& dst, std::vector<std::uint8_t> wire) {
      responses.emplace_back(dst, std::move(wire));
    });
    return ns;
  }

  std::vector<std::uint8_t> query_wire(const char* name, std::uint16_t id = 1) {
    return dns::encode(dns::make_query(id, DnsName::from(name), RecordType::A));
  }

  static std::uint64_t conservation_gap(const Nameserver& ns) {
    const auto& s = ns.stats();
    return s.packets_received - (s.responses_sent + s.drops.total() + ns.pending());
  }
};

/// A 12-byte header claiming one question, followed by `question_bytes`.
std::vector<std::uint8_t> header_plus(std::vector<std::uint8_t> question_bytes) {
  std::vector<std::uint8_t> wire = {0x12, 0x34, 0x00, 0x00, 0x00, 0x01,
                                    0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  wire.insert(wire.end(), question_bytes.begin(), question_bytes.end());
  return wire;
}

TEST(Datapath, TruncatedHeaderDropsAsMalformed) {
  Fixture f;
  auto ns = f.make();
  ns.receive(std::vector<std::uint8_t>{1, 2, 3}, f.client, 57, SimTime::origin());
  EXPECT_EQ(ns.stats().drops[DropReason::Malformed], 1u);
  EXPECT_EQ(ns.pending(), 0u);
  ns.process(SimTime::origin());
  EXPECT_TRUE(f.responses.empty());
  EXPECT_EQ(Fixture::conservation_gap(ns), 0u);
}

TEST(Datapath, TruncatedQuestionDropsAsMalformed) {
  Fixture f;
  auto ns = f.make();
  // Name starts with a 5-byte label but the wire ends after 3 bytes.
  ns.receive(header_plus({5, 'w', 'w'}), f.client, 57, SimTime::origin());
  EXPECT_EQ(ns.stats().drops[DropReason::Malformed], 1u);
  EXPECT_EQ(ns.pending(), 0u);
  EXPECT_EQ(Fixture::conservation_gap(ns), 0u);
}

TEST(Datapath, CompressionPointerLoopsDropAsMalformed) {
  Fixture f;
  auto ns = f.make();
  // Self-pointing name at offset 12 (0xC00C -> 12).
  ns.receive(header_plus({0xC0, 0x0C, 0x00, 0x01, 0x00, 0x01}), f.client, 57,
             SimTime::origin());
  // Two-pointer cycle: offset 12 -> 14 -> 12.
  ns.receive(header_plus({0xC0, 0x0E, 0xC0, 0x0C, 0x00, 0x01, 0x00, 0x01}), f.client, 57,
             SimTime::origin());
  EXPECT_EQ(ns.stats().drops[DropReason::Malformed], 2u);
  EXPECT_EQ(ns.pending(), 0u);
  ns.process(SimTime::origin());
  EXPECT_TRUE(f.responses.empty());
  EXPECT_EQ(Fixture::conservation_gap(ns), 0u);
}

TEST(Datapath, BufferPoolRecyclesPacketStorage) {
  Fixture f;
  auto ns = f.make();
  auto t = SimTime::origin();
  for (int i = 0; i < 10; ++i) {
    ns.receive(f.query_wire("www.example.com"), f.client, 57, t);
    ns.process(t);
    t += Duration::millis(1);
  }
  const auto& pool = ns.pool().stats();
  EXPECT_EQ(pool.acquired, 10u);
  // The first lease allocates; every later one reuses the returned buffer.
  EXPECT_EQ(pool.allocated, 1u);
  EXPECT_EQ(pool.reused, 9u);
  EXPECT_EQ(f.responses.size(), 10u);
}

TEST(Datapath, TelemetryRecordsEveryStage) {
  Fixture f;
  auto ns = f.make();
  const auto t = SimTime::origin();
  ns.receive(f.query_wire("www.example.com"), f.client, 57, t);
  ns.receive(std::vector<std::uint8_t>{1, 2, 3}, f.client, 57, t);  // malformed
  ns.process(t + Duration::micros(250));
  // Stage telemetry is read the way every consumer reads it now: a
  // registry snapshot, with per-stage counts as label-filtered merges.
  obs::MetricRegistry reg;
  ns.register_metrics(reg, {});
  const auto snap = reg.snapshot();
  const auto stage_count = [&](Stage s) {
    return snap.merged_histogram("akadns_stage_latency_ns",
                                 obs::labels({{"stage", std::string(to_string(s))}}))
        .count();
  };
  EXPECT_EQ(stage_count(Stage::Receive), 2u);  // every packet
  EXPECT_EQ(stage_count(Stage::Parse), 2u);    // both attempted the decode
  EXPECT_EQ(stage_count(Stage::Score), 1u);    // malformed never scored
  EXPECT_EQ(stage_count(Stage::Resolve), 1u);
  const auto queue_wait = snap.merged_histogram("akadns_queue_wait_us");
  EXPECT_EQ(queue_wait.count(), 1u);
  // Queue wait is recorded in simulated microseconds.
  EXPECT_NEAR(queue_wait.mean(), 250.0, 1e-6);
}

TEST(Datapath, RestartFlushAccountsQueuedQueries) {
  Fixture f;
  auto ns = f.make();
  ns.set_crash_predicate([](const dns::Question& q) {
    return q.name == DnsName::from("death.example.com");
  });
  const auto t = SimTime::origin();
  ns.receive(f.query_wire("death.example.com"), f.client, 57, t);
  ns.receive(f.query_wire("www.example.com", 2), f.client, 57, t);
  ns.receive(f.query_wire("www.example.com", 3), f.client, 57, t);
  ns.process(t);  // first query kills the instance
  EXPECT_EQ(ns.state(), ServerState::Crashed);
  EXPECT_EQ(ns.stats().drops[DropReason::QueryOfDeath], 1u);
  EXPECT_EQ(ns.pending(), 2u);
  EXPECT_EQ(Fixture::conservation_gap(ns), 0u);

  ns.restart(t + Duration::seconds(1));
  EXPECT_EQ(ns.stats().drops[DropReason::RestartFlush], 2u);
  EXPECT_EQ(ns.pending(), 0u);
  EXPECT_EQ(Fixture::conservation_gap(ns), 0u);
}

TEST(Datapath, EveryReceiveSideDropKeepsConservation) {
  Fixture f;
  // Small I/O burst (100 qps -> 5 tokens) and a one-slot queue so every
  // overload path triggers within a handful of packets.
  NameserverConfig config;
  config.io_capacity_qps = 100.0;
  config.queue_config.queue_capacity = 1;
  config.queue_config.discard_score = 50.0;
  auto ns = f.make(std::move(config));
  ns.scoring().add_filter([] {
    class Hostile : public filters::Filter {
     public:
      std::string_view name() const noexcept override { return "hostile"; }
      double score(const filters::QueryContext& ctx) override {
        return ctx.question.name.labels().front() == "evil" ? 100.0 : 0.0;
      }
    };
    return std::make_unique<Hostile>();
  }());

  const auto t = SimTime::origin();
  ns.firewall().install(
      dns::Question{DnsName::from("blocked.example.com"), RecordType::A,
                    dns::RecordClass::IN},
      t, Duration::minutes(5));

  ns.receive(f.query_wire("blocked.example.com"), f.client, 57, t);      // firewall
  ns.receive(f.query_wire("evil.example.com", 2), f.client, 57, t);      // score discard
  ns.receive(f.query_wire("www.example.com", 3), f.client, 57, t);      // enqueued
  ns.receive(f.query_wire("www.example.com", 4), f.client, 57, t);      // queue full
  ns.receive(std::vector<std::uint8_t>{9}, f.client, 57, t);            // malformed
  ns.receive(f.query_wire("www.example.com", 5), f.client, 57,
             t + Duration::millis(1));                                   // io overload
  ns.self_suspend();
  ns.receive(f.query_wire("www.example.com", 6), f.client, 57, t);      // not running
  ns.resume();

  const auto& s = ns.stats();
  EXPECT_EQ(s.drops[DropReason::Firewall], 1u);
  EXPECT_EQ(s.drops[DropReason::ScoreDiscard], 1u);
  EXPECT_EQ(s.drops[DropReason::QueueFull], 1u);
  EXPECT_EQ(s.drops[DropReason::Malformed], 1u);
  EXPECT_EQ(s.drops[DropReason::IoOverload], 1u);
  EXPECT_EQ(s.drops[DropReason::NotRunning], 1u);
  EXPECT_EQ(s.packets_received, 7u);
  EXPECT_EQ(ns.pending(), 1u);
  EXPECT_EQ(Fixture::conservation_gap(ns), 0u);

  ns.process(t + Duration::seconds(1));
  EXPECT_EQ(s.responses_sent, 1u);
  EXPECT_EQ(ns.pending(), 0u);
  EXPECT_EQ(Fixture::conservation_gap(ns), 0u);
}

}  // namespace
}  // namespace akadns::server
