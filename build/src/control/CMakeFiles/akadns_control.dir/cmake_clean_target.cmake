file(REMOVE_RECURSE
  "libakadns_control.a"
)
