// akadns-serve: authoritative DNS daemon on the akadns datapath.
//
//   akadns-serve --synthetic 1000 --seed 42 --port 5300 --workers 4
//   akadns-serve --zone example.zone --port 5300
//
// Serves until SIGTERM/SIGINT, then drains gracefully (stops accepting,
// flushes in-flight work) and dumps final telemetry as JSON on stdout.
// The --synthetic corpus is deterministic in (count, seed), which is what
// lets akadns-loadgen rebuild the identical zones and verify responses
// byte-for-byte without any side channel.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/drop_reason.hpp"
#include "dns/name.hpp"
#include "net/server.hpp"
#include "workload/zones.hpp"
#include "zone/zone_parser.hpp"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void handle_stop(int) { g_stop_requested = 1; }

struct CliOptions {
  std::vector<std::string> zone_files;
  std::size_t synthetic_zones = 0;
  std::uint64_t seed = 1;
  std::string addr = "127.0.0.1";
  std::uint16_t port = 5300;
  std::size_t workers = 4;
  std::size_t batch = 32;
  std::size_t edns_max = 1232;
  bool defense = false;
  double compute_qps = 0.0;
  std::uint64_t nxdomain_threshold = 0;  // 0 = keep the DefenseOptions default
  double nxdomain_penalty = 0.0;         // 0 = keep the DefenseOptions default
  std::vector<std::string> qod_drops;
  bool help = false;
};

void print_usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --zone FILE        load a master-format zone file (repeatable)\n"
      "  --synthetic N      publish N deterministic synthetic zones\n"
      "  --seed S           seed for --synthetic (default 1)\n"
      "  --addr A           bind address (default 127.0.0.1)\n"
      "  --port P           UDP+TCP port, 0 = ephemeral (default 5300)\n"
      "  --workers N        SO_REUSEPORT worker threads (default 4)\n"
      "  --batch N          datagrams per recvmmsg/sendmmsg (default 32)\n"
      "  --edns-max N       EDNS payload-size ceiling (default 1232)\n"
      "  --defense MODE     off|on: route queries through the filter chain +\n"
      "                     penalty queues ahead of the responder (default off)\n"
      "  --compute-qps Q    defense compute metering, answers/sec server-wide\n"
      "                     (0 = unmetered; only meaningful with --defense on)\n"
      "  --qod-drop NAME    install a query-of-death firewall rule dropping NAME\n"
      "                     and everything below it (repeatable)\n"
      "  --nxdomain-threshold N  server-wide NXDOMAINs per zone per window that arm\n"
      "                     the random-subdomain filter (default 200)\n"
      "  --nxdomain-penalty P  score added to random-subdomain probes of an armed\n"
      "                     zone; >= 200 discards them outright (default 150)\n"
      "SIGTERM/SIGINT drains gracefully and dumps telemetry JSON.\n",
      argv0);
}

bool parse_args(int argc, char** argv, CliOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      opts.help = true;
      return true;
    } else if (arg == "--zone") {
      const char* v = need_value();
      if (!v) return false;
      opts.zone_files.emplace_back(v);
    } else if (arg == "--synthetic") {
      const char* v = need_value();
      if (!v) return false;
      opts.synthetic_zones = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed") {
      const char* v = need_value();
      if (!v) return false;
      opts.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--addr") {
      const char* v = need_value();
      if (!v) return false;
      opts.addr = v;
    } else if (arg == "--port") {
      const char* v = need_value();
      if (!v) return false;
      opts.port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--workers") {
      const char* v = need_value();
      if (!v) return false;
      opts.workers = std::strtoull(v, nullptr, 10);
    } else if (arg == "--batch") {
      const char* v = need_value();
      if (!v) return false;
      opts.batch = std::strtoull(v, nullptr, 10);
    } else if (arg == "--edns-max") {
      const char* v = need_value();
      if (!v) return false;
      opts.edns_max = std::strtoull(v, nullptr, 10);
    } else if (arg == "--defense") {
      const char* v = need_value();
      if (!v) return false;
      if (std::strcmp(v, "on") == 0) {
        opts.defense = true;
      } else if (std::strcmp(v, "off") == 0) {
        opts.defense = false;
      } else {
        std::fprintf(stderr, "--defense wants on|off\n");
        return false;
      }
    } else if (arg == "--compute-qps") {
      const char* v = need_value();
      if (!v) return false;
      opts.compute_qps = std::strtod(v, nullptr);
    } else if (arg == "--qod-drop") {
      const char* v = need_value();
      if (!v) return false;
      opts.qod_drops.emplace_back(v);
    } else if (arg == "--nxdomain-threshold") {
      const char* v = need_value();
      if (!v) return false;
      opts.nxdomain_threshold = std::strtoull(v, nullptr, 10);
    } else if (arg == "--nxdomain-penalty") {
      const char* v = need_value();
      if (!v) return false;
      opts.nxdomain_penalty = std::strtod(v, nullptr);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

bool load_zone_file(const std::string& path, akadns::zone::ZoneStore& store) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open zone file: %s\n", path.c_str());
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto parsed = akadns::zone::parse_master_file(text.str(), {});
  if (!parsed) {
    std::fprintf(stderr, "parse error in %s: %s\n", path.c_str(), parsed.error().c_str());
    return false;
  }
  auto zone = std::move(parsed).take();
  const std::string apex = zone.apex().to_string();
  if (!store.publish(std::move(zone))) {
    std::fprintf(stderr, "publish rejected (serial regression?): %s\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "published %s from %s\n", apex.c_str(), path.c_str());
  return true;
}

/// One defense stats object as JSON: scored/enqueued/released plus every
/// nonzero drop reason by name. With `name` emits `"name": {...}` at the
/// given indent; without, just the object (for array elements).
void print_defense_stats(const char* name, const akadns::defense::DefenseLaneStats& d,
                         int indent) {
  std::printf("%*s", indent, "");
  if (name) std::printf("\"%s\": ", name);
  std::printf("{\"scored\": %llu, \"enqueued\": %llu, \"released\": %llu, \"drops\": {",
              (unsigned long long)d.scored, (unsigned long long)d.enqueued,
              (unsigned long long)d.released);
  bool first = true;
  for (std::size_t i = 0; i < akadns::kDropReasonCount; ++i) {
    const auto reason = static_cast<akadns::DropReason>(i);
    const std::uint64_t n = d.drops[reason];
    if (n == 0) continue;
    std::printf("%s\"%.*s\": %llu", first ? "" : ", ",
                static_cast<int>(akadns::to_string(reason).size()),
                akadns::to_string(reason).data(), (unsigned long long)n);
    first = false;
  }
  std::printf("}}");
}

void dump_telemetry(const akadns::net::ServerStats& stats) {
  const auto& f = stats.frontend;
  const auto& r = stats.responder;
  const auto& c = stats.answer_cache;
  std::printf("{\n");
  std::printf("  \"udp\": {\"packets\": %llu, \"responses\": %llu, \"malformed\": %llu,"
              " \"send_failures\": %llu, \"batches\": %llu, \"drain_flushed\": %llu},\n",
              (unsigned long long)f.udp_packets, (unsigned long long)f.udp_responses,
              (unsigned long long)f.udp_malformed, (unsigned long long)f.udp_send_failures,
              (unsigned long long)f.udp_batches, (unsigned long long)f.drain_flushed);
  std::printf("  \"tcp\": {\"accepted\": %llu, \"rejected\": %llu, \"queries\": %llu,"
              " \"responses\": %llu, \"protocol_errors\": %llu},\n",
              (unsigned long long)f.tcp_accepted, (unsigned long long)f.tcp_rejected,
              (unsigned long long)f.tcp_queries, (unsigned long long)f.tcp_responses,
              (unsigned long long)f.tcp_protocol_errors);
  std::printf("  \"responder\": {\"responses\": %llu, \"noerror\": %llu, \"nxdomain\": %llu,"
              " \"refused\": %llu, \"formerr\": %llu, \"compiled\": %llu,"
              " \"cache_hits\": %llu, \"interpreted\": %llu},\n",
              (unsigned long long)r.responses, (unsigned long long)r.noerror,
              (unsigned long long)r.nxdomain, (unsigned long long)r.refused,
              (unsigned long long)r.formerr, (unsigned long long)r.compiled_answers,
              (unsigned long long)r.cache_hits, (unsigned long long)r.interpreted_answers);
  std::printf("  \"answer_cache\": {\"hits\": %llu, \"misses\": %llu, \"insertions\": %llu,"
              " \"evictions\": %llu},\n",
              (unsigned long long)c.hits, (unsigned long long)c.misses,
              (unsigned long long)c.insertions, (unsigned long long)c.evictions);
  std::printf("  \"per_worker_udp\": [");
  for (std::size_t i = 0; i < stats.per_worker_udp.size(); ++i) {
    std::printf("%s%llu", i ? ", " : "", (unsigned long long)stats.per_worker_udp[i]);
  }
  std::printf("],\n");
  print_defense_stats("defense", stats.defense, 2);
  std::printf(",\n  \"per_worker_defense\": [");
  for (std::size_t i = 0; i < stats.per_worker_defense.size(); ++i) {
    std::printf("%s\n", i ? "," : "");
    print_defense_stats(nullptr, stats.per_worker_defense[i], 4);
  }
  std::printf("\n  ],\n");
  std::printf("  \"defense_enabled\": %s,\n", stats.defense_enabled ? "true" : "false");
  std::printf("  \"firewall_rules\": %zu\n", stats.firewall_rules);
  std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!parse_args(argc, argv, opts)) {
    print_usage(argv[0]);
    return 2;
  }
  if (opts.help) {
    print_usage(argv[0]);
    return 0;
  }
  if (opts.zone_files.empty() && opts.synthetic_zones == 0) {
    std::fprintf(stderr, "no zones: pass --zone FILE or --synthetic N\n");
    print_usage(argv[0]);
    return 2;
  }

  const auto addr = akadns::Ipv4Addr::parse(opts.addr);
  if (!addr) {
    std::fprintf(stderr, "bad --addr: %s\n", opts.addr.c_str());
    return 2;
  }

  // Zone content. The HostedZones object owns the store for the
  // synthetic case, so it must outlive the server.
  std::unique_ptr<akadns::workload::HostedZones> synthetic;
  akadns::zone::ZoneStore file_store;
  const akadns::zone::ZoneStore* store = &file_store;
  if (opts.synthetic_zones > 0) {
    akadns::workload::HostedZonesConfig zc;
    zc.zone_count = opts.synthetic_zones;
    synthetic = std::make_unique<akadns::workload::HostedZones>(zc, opts.seed);
    store = &synthetic->store();
    std::fprintf(stderr, "published %zu synthetic zones (seed %llu)\n",
                 opts.synthetic_zones, (unsigned long long)opts.seed);
  }
  for (const auto& path : opts.zone_files) {
    if (!load_zone_file(path, opts.synthetic_zones > 0 ? synthetic->store() : file_store)) {
      return 1;
    }
  }

  akadns::net::ServeConfig config;
  config.bind_addr = *addr;
  config.port = opts.port;
  config.workers = opts.workers;
  config.udp_batch = opts.batch;
  config.responder.edns_udp_payload_max = opts.edns_max;
  config.defense.enabled = opts.defense;
  config.defense.compute_qps = opts.compute_qps;
  if (opts.nxdomain_threshold > 0) config.defense.nxdomain_threshold = opts.nxdomain_threshold;
  if (opts.nxdomain_penalty > 0.0) config.defense.nxdomain_penalty = opts.nxdomain_penalty;
  for (const auto& name_text : opts.qod_drops) {
    auto name = akadns::dns::DnsName::parse(name_text);
    if (!name) {
      std::fprintf(stderr, "bad --qod-drop name: %s\n", name_text.c_str());
      return 2;
    }
    config.defense.qod_rules.push_back(std::move(*name));
  }

  akadns::net::Server server(config, *store);
  auto started = server.start();
  if (!started) {
    std::fprintf(stderr, "start failed: %s\n", started.error().c_str());
    return 1;
  }

  // Machine-scrapable readiness line (tests and the CI smoke parse it).
  std::printf(
      "akadns-serve ready addr=%s udp_port=%u tcp_port=%u workers=%zu zones=%zu defense=%s\n",
      opts.addr.c_str(), server.udp_port(), server.tcp_port(), opts.workers,
      store->zone_count(), opts.defense ? "on" : "off");
  std::fflush(stdout);

  struct sigaction sa {};
  sa.sa_handler = handle_stop;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  while (!g_stop_requested) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::fprintf(stderr, "draining...\n");
  server.stop();
  dump_telemetry(server.stats());
  return 0;
}
