#include "net/loadgen.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "net/socket.hpp"

namespace akadns::net {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t now_ns(Clock::time_point epoch) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch).count();
}

/// One client socket's world: connected fd, send/recv batch plumbing,
/// and the id-indexed in-flight table. Runs on its own thread.
struct SocketLane {
  LoadgenConfig config;
  const std::vector<workload::ReplayEntry>* corpus = nullptr;
  const std::vector<std::vector<std::uint8_t>>* expected = nullptr;
  const std::vector<std::vector<std::uint8_t>>* expected_v2 = nullptr;
  std::uint64_t quota = 0;
  std::size_t corpus_offset = 0;
  std::size_t target_index = 0;  // which config.targets entry this lane hits
  Clock::time_point epoch;

  // Results, split by traffic class (totals are derived at merge time).
  std::uint64_t sent = 0;  // loop control: queries handed to sendmmsg
  ClassCounters legit;
  ClassCounters attack;
  std::uint64_t unexpected = 0;
  std::uint64_t retransmits = 0;
  LogHistogram latency_ns;
  FlipStats flip;
  OutageTracker outages{500'000'000};
  bool saw_new = false;  // this lane's worker has served a v2-only answer
  std::string error;

  struct Outstanding {
    std::uint32_t corpus_idx = 0;
    std::int64_t send_ns = 0;
    bool active = false;
    bool is_attack = false;
    std::uint8_t tries = 0;  // sends so far (first send = 1)
  };

  ClassCounters& bucket(bool is_attack) { return is_attack ? attack : legit; }

  void run() {
    auto opened = UdpSocket::open(Ipv4Addr(127, 0, 0, 1), 0, config.rcvbuf, config.sndbuf);
    if (!opened) {
      error = opened.error();
      return;
    }
    UdpSocket sock = std::move(opened).take();
    // connect() pins the peer: sends need no address, and the kernel
    // filters inbound datagrams to the server's endpoint.
    sockaddr_storage target{};
    const socklen_t target_len = sockaddr_from_endpoint(config.target, target);
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&target), target_len) != 0) {
      error = errno_message("connect");
      return;
    }

    const std::size_t batch = config.batch;
    // Send-side storage: per-slot query copies (id patched in place).
    std::vector<std::vector<std::uint8_t>> tx_bufs(batch);
    std::vector<iovec> tx_iovecs(batch);
    std::vector<mmsghdr> tx_hdrs(batch);
    // Receive-side storage.
    std::vector<std::vector<std::uint8_t>> rx_bufs(batch);
    for (auto& buf : rx_bufs) buf.resize(4096);
    std::vector<iovec> rx_iovecs(batch);
    std::vector<mmsghdr> rx_hdrs(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      std::memset(&rx_hdrs[i], 0, sizeof(mmsghdr));
      rx_iovecs[i].iov_base = rx_bufs[i].data();
      rx_iovecs[i].iov_len = rx_bufs[i].size();
      rx_hdrs[i].msg_hdr.msg_iov = &rx_iovecs[i];
      rx_hdrs[i].msg_hdr.msg_iovlen = 1;
    }

    std::vector<Outstanding> inflight(65536);
    std::vector<std::uint8_t> retry_buf;
    std::size_t inflight_count = 0;
    std::uint32_t seq = 0;
    const std::int64_t timeout_ns = config.response_timeout.count_nanos();
    // Expiry sweeps are amortized: scanning the slot table every loop
    // iteration would dominate, so sweep at most every timeout/8 (>=1ms).
    const std::int64_t sweep_interval_ns =
        std::max<std::int64_t>(timeout_ns / 8, 1'000'000);
    std::int64_t last_sweep = now_ns(epoch);

    const auto drain_responses = [&] {
      while (inflight_count > 0) {
        int n;
        do {
          n = ::recvmmsg(sock.fd(), rx_hdrs.data(), static_cast<unsigned>(batch), 0, nullptr);
        } while (n < 0 && errno == EINTR);
        if (n <= 0) break;
        const std::int64_t t = now_ns(epoch);
        for (int i = 0; i < n; ++i) {
          const auto len = static_cast<std::size_t>(rx_hdrs[static_cast<std::size_t>(i)].msg_len);
          const auto& buf = rx_bufs[static_cast<std::size_t>(i)];
          if (len < 2) {
            ++unexpected;
            continue;
          }
          const std::uint16_t id = static_cast<std::uint16_t>((buf[0] << 8) | buf[1]);
          Outstanding& slot = inflight[id];
          if (!slot.active) {
            ++unexpected;  // late duplicate or stray datagram
            continue;
          }
          slot.active = false;
          --inflight_count;
          ClassCounters& cls = bucket(slot.is_attack);
          ++cls.received;
          if (len >= 4 && (buf[3] & 0x0F) == 2) ++cls.servfail;  // rcode SERVFAIL
          latency_ns.add(static_cast<double>(t - slot.send_ns));
          if (expected && !expected->empty()) {
            // Expected wires carry id 0; compare everything after it.
            const auto matches = [&](const std::vector<std::uint8_t>& want) {
              return len == want.size() &&
                     std::memcmp(buf.data() + 2, want.data() + 2, len - 2) == 0;
            };
            const bool m1 = matches((*expected)[slot.corpus_idx]);
            const bool m2 = expected_v2 && matches((*expected_v2)[slot.corpus_idx]);
            if (!m1 && !m2) {
              ++cls.mismatched;
            } else if (expected_v2) {
              // Version bookkeeping. m1 && m2 means the entry's answer is
              // byte-identical across versions (no changed record in it):
              // version-agnostic, counted with whichever era the lane is
              // in, never stale. A v1-only match after this lane has seen
              // v2 is the server answering from a stale-serial snapshot.
              if (m2 && !m1) {
                if (!saw_new) {
                  saw_new = true;
                  flip.first_new_ns = t;
                }
                ++flip.new_answers;
              } else if (saw_new) {
                if (m2) {
                  ++flip.new_answers;
                } else {
                  ++flip.stale_old;
                }
              } else {
                ++flip.old_answers;
              }
            }
          }
        }
        if (static_cast<std::size_t>(n) < batch) break;
      }
    };

    while (sent < quota || inflight_count > 0) {
      // Send phase: fill the window in batch-sized syscalls.
      const std::size_t room = config.window - inflight_count;
      std::size_t to_send = std::min({batch, room,
                                      static_cast<std::size_t>(quota - sent)});
      if (config.rate > 0.0 && to_send > 0) {
        // Token pacing against the wall clock: the lane may be at most
        // rate * elapsed queries in. No burst catch-up beyond one batch —
        // a stalled lane resumes at the configured rate, not with a spike.
        const double elapsed_s = static_cast<double>(now_ns(epoch)) / 1e9;
        const auto budget = static_cast<std::uint64_t>(config.rate * elapsed_s);
        to_send = std::min(to_send,
                           static_cast<std::size_t>(budget > sent ? budget - sent : 0));
      }
      if (to_send > 0) {
        const std::int64_t t = now_ns(epoch);
        for (std::size_t j = 0; j < to_send; ++j) {
          const std::size_t idx = (corpus_offset + sent + j) % corpus->size();
          const auto& entry = (*corpus)[idx];
          const auto& wire = entry.wire;
          auto& buf = tx_bufs[j];
          buf.assign(wire.begin(), wire.end());
          const std::uint16_t id = static_cast<std::uint16_t>(seq + j);
          buf[0] = static_cast<std::uint8_t>(id >> 8);
          buf[1] = static_cast<std::uint8_t>(id & 0xff);
          inflight[id] = {static_cast<std::uint32_t>(idx), t, true, entry.is_attack, 1};
          tx_iovecs[j].iov_base = buf.data();
          tx_iovecs[j].iov_len = buf.size();
          std::memset(&tx_hdrs[j], 0, sizeof(mmsghdr));
          tx_hdrs[j].msg_hdr.msg_iov = &tx_iovecs[j];
          tx_hdrs[j].msg_hdr.msg_iovlen = 1;
        }
        std::size_t flushed = 0;
        while (flushed < to_send) {
          const int n = ::sendmmsg(sock.fd(), tx_hdrs.data() + flushed,
                                   static_cast<unsigned>(to_send - flushed), 0);
          if (n < 0) {
            if (errno == EINTR) continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
              drain_responses();  // free the send queue by consuming replies
              pollfd pfd{sock.fd(), POLLOUT, 0};
              ::poll(&pfd, 1, 10);
              continue;
            }
            break;
          }
          flushed += static_cast<std::size_t>(n);
        }
        // Everything the kernel took counts as sent, per class. Un-book
        // anything it never took (hard error path).
        for (std::size_t j = 0; j < to_send; ++j) {
          const std::uint16_t id = static_cast<std::uint16_t>(seq + j);
          Outstanding& slot = inflight[id];
          if (j < flushed) {
            ++bucket(slot.is_attack).sent;
          } else if (slot.active) {
            slot.active = false;
            ++bucket(slot.is_attack).sent;
            ++bucket(slot.is_attack).dropped;
            outages.record_loss(slot.send_ns);
          }
        }
        inflight_count += flushed;
        seq = static_cast<std::uint32_t>((seq + to_send) & 0xffff);
        sent += to_send;
      }

      drain_responses();

      if (inflight_count > 0 && (to_send == 0 || inflight_count >= config.window)) {
        // Window full or everything sent: block briefly for responses.
        pollfd pfd{sock.fd(), POLLIN, 0};
        ::poll(&pfd, 1, 5);
        drain_responses();
      } else if (to_send == 0 && sent < quota) {
        // Paced out with nothing in flight: sleep off part of the token
        // gap instead of spinning.
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }

      // Per-slot straggler expiry: any query unanswered for a full
      // timeout is gone (loss on the loopback path means the server shed
      // it or a socket buffer overflowed). Expiring slots individually —
      // rather than only when the whole lane stalls — keeps the window
      // turning over when the server is deliberately shedding one class
      // of traffic while answering the other.
      if (inflight_count > 0) {
        const std::int64_t t = now_ns(epoch);
        if (t - last_sweep >= sweep_interval_ns) {
          last_sweep = t;
          const std::size_t max_tries = 1 + config.retries;
          for (std::size_t id = 0; id < inflight.size(); ++id) {
            Outstanding& slot = inflight[id];
            if (!slot.active || t - slot.send_ns <= timeout_ns) continue;
            if (slot.tries < max_tries) {
              // Resend the same query under the same transaction id —
              // resolver behavior on a lossy path. Latency restarts at
              // the resend; only a query with every try spent is a drop.
              const auto& wire = (*corpus)[slot.corpus_idx].wire;
              retry_buf.assign(wire.begin(), wire.end());
              retry_buf[0] = static_cast<std::uint8_t>(id >> 8);
              retry_buf[1] = static_cast<std::uint8_t>(id & 0xff);
              if (::send(sock.fd(), retry_buf.data(), retry_buf.size(), 0) >= 0) {
                ++slot.tries;
                slot.send_ns = t;
                ++retransmits;
                continue;
              }
            }
            slot.active = false;
            --inflight_count;
            ++bucket(slot.is_attack).dropped;
            // The loss is stamped at send time: that is when the target
            // failed to answer, not when we gave up waiting — window
            // widths stay timeout-independent.
            outages.record_loss(slot.send_ns);
          }
        }
      }
    }
  }
};

}  // namespace

std::vector<std::vector<std::uint8_t>> expected_responses(
    const workload::ReplayCorpus& corpus, const zone::ZoneStore& store,
    const server::ResponderConfig& responder_config) {
  // Fresh responder per call; cache disabled so the reference is the
  // pure compiled/interpreted datapath (hits replay identical bytes
  // anyway, but the reference should not depend on that).
  server::ResponderConfig config = responder_config;
  config.enable_answer_cache = false;
  server::Responder responder(store, config);
  std::vector<std::vector<std::uint8_t>> expected;
  expected.reserve(corpus.size());
  for (const auto& entry : corpus.entries()) {
    auto wire = responder.respond_wire(entry.wire, entry.source);
    expected.push_back(wire ? std::move(*wire) : std::vector<std::uint8_t>{});
  }
  return expected;
}

Loadgen::Loadgen(LoadgenConfig config, const workload::ReplayCorpus& corpus,
                 std::vector<std::vector<std::uint8_t>> expected,
                 std::vector<std::vector<std::uint8_t>> expected_v2)
    : config_(config),
      corpus_(corpus),
      expected_(std::move(expected)),
      expected_v2_(std::move(expected_v2)) {}

LoadgenReport Loadgen::run() {
  const std::size_t lanes_n = std::max<std::size_t>(1, config_.sockets);
  // Multi-target mode: targets wins over the single target field; lanes
  // round-robin, so every target gets ceil/floor(lanes_n / n) sockets.
  std::vector<Endpoint> targets = config_.targets;
  if (targets.empty()) targets.push_back(config_.target);
  const std::int64_t gap_ns = config_.outage_gap.count_nanos();
  std::vector<SocketLane> lanes(lanes_n);
  const auto epoch = Clock::now();
  const std::uint64_t per_lane = config_.total_queries / lanes_n;
  const std::uint64_t remainder = config_.total_queries % lanes_n;
  for (std::size_t i = 0; i < lanes_n; ++i) {
    lanes[i].config = config_;
    lanes[i].config.window = std::min<std::size_t>(config_.window, 32768);
    // The aggregate rate cap splits evenly across lanes.
    lanes[i].config.rate = config_.rate / static_cast<double>(lanes_n);
    lanes[i].target_index = i % targets.size();
    lanes[i].config.target = targets[lanes[i].target_index];
    lanes[i].corpus = &corpus_.entries();
    lanes[i].expected = expected_.empty() ? nullptr : &expected_;
    lanes[i].expected_v2 = expected_v2_.empty() ? nullptr : &expected_v2_;
    lanes[i].quota = per_lane + (i < remainder ? 1 : 0);
    // Stagger starting offsets so lanes do not replay the corpus in
    // lockstep (better cache/zone mix at the server).
    lanes[i].corpus_offset = (corpus_.size() * i) / lanes_n;
    lanes[i].epoch = epoch;
    lanes[i].outages = OutageTracker(gap_ns);
  }

  std::vector<std::thread> threads;
  threads.reserve(lanes_n);
  for (auto& lane : lanes) threads.emplace_back([&lane] { lane.run(); });
  for (auto& thread : threads) thread.join();
  const double seconds =
      static_cast<double>(now_ns(epoch)) / 1e9;

  LoadgenReport report;
  report.targets.resize(targets.size());
  std::vector<OutageTracker> per_target(targets.size(), OutageTracker(gap_ns));
  OutageTracker all_targets(gap_ns);
  for (std::size_t t = 0; t < targets.size(); ++t) {
    report.targets[t].target = targets[t];
  }
  for (const auto& lane : lanes) {
    report.legit.merge(lane.legit);
    report.attack.merge(lane.attack);
    report.unexpected += lane.unexpected;
    report.retransmits += lane.retransmits;
    report.latency_ns.merge(lane.latency_ns);
    report.flip.merge(lane.flip);
    TargetReport& tgt = report.targets[lane.target_index];
    ++tgt.lanes;
    tgt.sent += lane.legit.sent + lane.attack.sent;
    tgt.received += lane.legit.received + lane.attack.received;
    tgt.dropped += lane.legit.dropped + lane.attack.dropped;
    tgt.mismatched += lane.legit.mismatched + lane.attack.mismatched;
    per_target[lane.target_index].merge(lane.outages);
    all_targets.merge(lane.outages);
  }
  for (std::size_t t = 0; t < targets.size(); ++t) {
    report.targets[t].outages = per_target[t].windows();
    report.targets[t].widest_outage_ns = per_target[t].widest_ns();
  }
  report.outages = all_targets.windows();
  report.widest_outage_ns = all_targets.widest_ns();
  report.sent = report.legit.sent + report.attack.sent;
  report.received = report.legit.received + report.attack.received;
  report.dropped = report.legit.dropped + report.attack.dropped;
  report.mismatched = report.legit.mismatched + report.attack.mismatched;
  report.servfail = report.legit.servfail + report.attack.servfail;
  report.seconds = seconds;
  report.qps = seconds > 0.0 ? static_cast<double>(report.received) / seconds : 0.0;
  report.p50_us = report.latency_ns.quantile(0.50) / 1e3;
  report.p90_us = report.latency_ns.quantile(0.90) / 1e3;
  report.p99_us = report.latency_ns.quantile(0.99) / 1e3;
  report.p999_us = report.latency_ns.quantile(0.999) / 1e3;
  report.max_us = report.latency_ns.max() / 1e3;
  return report;
}

}  // namespace akadns::net
