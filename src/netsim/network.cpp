#include "netsim/network.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace akadns::netsim {

Network::Network(EventScheduler& scheduler, NetworkConfig config, std::uint64_t seed)
    : scheduler_(scheduler), config_(config), rng_(seed) {}

NodeId Network::add_node(std::string label) {
  nodes_.push_back(Node{std::move(label), {}, {}, {}, nullptr});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::add_link(NodeId a, NodeId b, Duration delay, LinkKind kind) {
  if (a >= nodes_.size() || b >= nodes_.size() || a == b) {
    throw std::invalid_argument("bad link endpoints");
  }
  if (has_link(a, b)) throw std::invalid_argument("duplicate link");
  // Sample MRAI per direction: mostly fast, a small fraction slow
  // (models routers with conservative timers — the withdrawal tail).
  auto sample_mrai = [this] {
    if (rng_.next_bool(config_.slow_mrai_fraction)) {
      return Duration::nanos(rng_.next_int(config_.slow_mrai_min.count_nanos(),
                                           config_.slow_mrai_max.count_nanos()));
    }
    return Duration::nanos(rng_.next_int(config_.fast_mrai_min.count_nanos(),
                                         config_.fast_mrai_max.count_nanos()));
  };
  const NeighborRel rel_ab =
      kind == LinkKind::PeerToPeer ? NeighborRel::Peer : NeighborRel::Customer;
  const NeighborRel rel_ba =
      kind == LinkKind::PeerToPeer ? NeighborRel::Peer : NeighborRel::Provider;
  // From a's perspective, b is (customer|peer); from b's, a is (provider|peer).
  nodes_[a].neighbor_index[b] = nodes_[a].neighbors.size();
  nodes_[a].neighbors.push_back(Neighbor{b, delay, rel_ab, sample_mrai(), 0.0, {}, {}});
  nodes_[b].neighbor_index[a] = nodes_[b].neighbors.size();
  nodes_[b].neighbors.push_back(Neighbor{a, delay, rel_ba, sample_mrai(), 0.0, {}, {}});
  spf_cache_.clear();
}

bool Network::has_link(NodeId a, NodeId b) const {
  return a < nodes_.size() && nodes_[a].neighbor_index.contains(b);
}

std::vector<NodeId> Network::neighbors(NodeId node) const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_.at(node).neighbors) out.push_back(n.id);
  return out;
}

NeighborRel Network::relationship(NodeId node, NodeId neighbor) const {
  const Neighbor* n = find_neighbor(node, neighbor);
  if (!n) throw std::invalid_argument("not neighbors");
  return n->rel;
}

Duration Network::link_delay(NodeId a, NodeId b) const {
  const Neighbor* n = find_neighbor(a, b);
  if (!n) throw std::invalid_argument("not neighbors");
  return n->delay;
}

Network::Neighbor& Network::neighbor_of(NodeId node, NodeId neighbor) {
  return nodes_[node].neighbors[nodes_[node].neighbor_index.at(neighbor)];
}

const Network::Neighbor* Network::find_neighbor(NodeId node, NodeId neighbor) const {
  if (node >= nodes_.size()) return nullptr;
  const auto it = nodes_[node].neighbor_index.find(neighbor);
  if (it == nodes_[node].neighbor_index.end()) return nullptr;
  return &nodes_[node].neighbors[it->second];
}

// ---------------------------------------------------------------------------
// BGP
// ---------------------------------------------------------------------------

int Network::local_pref(NeighborRel rel) noexcept {
  switch (rel) {
    case NeighborRel::Customer: return 300;
    case NeighborRel::Peer: return 200;
    case NeighborRel::Provider: return 100;
  }
  return 0;
}

bool Network::better(const Route& a, const Route& b) noexcept {
  // Returns true iff a is strictly preferred over b.
  if (a.valid != b.valid) return a.valid;
  if (!a.valid) return false;
  const int lp_a = local_pref(a.learned_rel);
  const int lp_b = local_pref(b.learned_rel);
  if (lp_a != lp_b) return lp_a > lp_b;
  if (a.as_path.size() != b.as_path.size()) return a.as_path.size() < b.as_path.size();
  return a.learned_from < b.learned_from;
}

void Network::advertise(NodeId node, PrefixId prefix) {
  PrefixState& ps = nodes_.at(node).prefixes[prefix];
  if (ps.originating) return;
  ps.originating = true;
  reselect(node, prefix, /*force_export=*/true);
}

void Network::withdraw(NodeId node, PrefixId prefix) {
  const auto it = nodes_.at(node).prefixes.find(prefix);
  if (it == nodes_[node].prefixes.end() || !it->second.originating) return;
  it->second.originating = false;
  reselect(node, prefix, /*force_export=*/true);
}

bool Network::is_originating(NodeId node, PrefixId prefix) const {
  const auto it = nodes_.at(node).prefixes.find(prefix);
  return it != nodes_[node].prefixes.end() && it->second.originating;
}

void Network::set_export_enabled(NodeId node, NodeId neighbor, PrefixId prefix, bool enabled) {
  PrefixState& ps = nodes_.at(node).prefixes[prefix];
  const bool was_disabled = ps.export_disabled[neighbor];
  ps.export_disabled[neighbor] = !enabled;
  if (was_disabled != !enabled) {
    // Policy change acts like a targeted (re)advertisement/withdrawal.
    schedule_export(node, neighbor, prefix);
  }
}

bool Network::export_enabled(NodeId node, NodeId neighbor, PrefixId prefix) const {
  const auto pit = nodes_.at(node).prefixes.find(prefix);
  if (pit == nodes_[node].prefixes.end()) return true;
  const auto eit = pit->second.export_disabled.find(neighbor);
  return eit == pit->second.export_disabled.end() || !eit->second;
}

bool Network::has_route(NodeId node, PrefixId prefix) const {
  const auto it = nodes_.at(node).prefixes.find(prefix);
  if (it == nodes_[node].prefixes.end()) return false;
  return it->second.originating || it->second.best.valid;
}

std::vector<NodeId> Network::best_path(NodeId node, PrefixId prefix) const {
  const auto it = nodes_.at(node).prefixes.find(prefix);
  if (it == nodes_[node].prefixes.end()) return {};
  if (it->second.originating) return {node};
  if (!it->second.best.valid) return {};
  return it->second.best.as_path;
}

NodeId Network::catchment_origin(NodeId from, PrefixId prefix) const {
  NodeId at = from;
  for (std::size_t hops = 0; hops <= nodes_.size(); ++hops) {
    const auto it = nodes_.at(at).prefixes.find(prefix);
    if (it == nodes_[at].prefixes.end()) return kInvalidNode;
    if (it->second.originating) return at;
    if (!it->second.best.valid) return kInvalidNode;
    at = it->second.best.learned_from;
  }
  return kInvalidNode;  // loop during convergence
}

void Network::reselect(NodeId node, PrefixId prefix, bool force_export) {
  Node& state = nodes_[node];
  PrefixState& ps = state.prefixes[prefix];

  Route new_best;  // invalid by default
  if (!ps.originating) {
    // While originating, the node announces its own route; learned routes
    // are ignored (and origination beats them anyway, path length 1).
    for (const auto& [from, route] : ps.adj_rib_in) {
      if (route.valid && better(route, new_best)) new_best = route;
    }
  }
  const bool had_best = ps.best.valid;
  const bool best_changed = new_best.valid != had_best ||
                            (new_best.valid && (new_best.as_path != ps.best.as_path ||
                                                new_best.learned_from != ps.best.learned_from));
  ps.best = new_best;
  if (!best_changed && !force_export) return;
  // Export the new state to every neighbor (paced per neighbor).
  for (const auto& neighbor : state.neighbors) {
    schedule_export(node, neighbor.id, prefix);
  }
}

bool Network::may_export(const Node& node_state, const PrefixState& ps,
                         const Neighbor& to) const {
  (void)node_state;
  if (ps.originating) return true;  // own prefixes are announced everywhere
  if (!ps.best.valid) return true;  // withdrawals always propagate
  // Gao-Rexford: routes learned from a customer go to everyone; routes
  // learned from a peer/provider go to customers only.
  if (ps.best.learned_rel == NeighborRel::Customer) return true;
  return to.rel == NeighborRel::Customer;
}

void Network::schedule_export(NodeId node, NodeId neighbor, PrefixId prefix) {
  Neighbor& n = neighbor_of(node, neighbor);
  if (n.send_scheduled[prefix]) return;  // coalesce: latest state sent at fire time
  n.send_scheduled[prefix] = true;
  const SimTime now = scheduler_.now();
  SimTime at = now;
  if (auto it = n.next_send.find(prefix); it != n.next_send.end() && it->second > at) {
    at = it->second;
  }
  scheduler_.schedule_at(at, [this, node, neighbor, prefix] {
    transmit_update(node, neighbor, prefix);
  });
}

void Network::transmit_update(NodeId node, NodeId neighbor, PrefixId prefix) {
  Neighbor& n = neighbor_of(node, neighbor);
  n.send_scheduled[prefix] = false;
  n.next_send[prefix] = scheduler_.now() + n.mrai;

  Node& state = nodes_[node];
  PrefixState& ps = state.prefixes[prefix];

  // Compose what this neighbor should hear right now.
  std::optional<Route> update;  // nullopt = withdrawal
  const bool poisoned =
      ps.best.valid &&
      std::find(ps.best.as_path.begin(), ps.best.as_path.end(), neighbor) !=
          ps.best.as_path.end();
  const bool disabled = [&] {
    const auto it = ps.export_disabled.find(neighbor);
    return it != ps.export_disabled.end() && it->second;
  }();
  if (!disabled && !poisoned && may_export(state, ps, n) &&
      (ps.originating || ps.best.valid)) {
    Route r;
    r.valid = true;
    if (ps.originating) {
      r.as_path = {node};
    } else {
      r.as_path = ps.best.as_path;
      r.as_path.insert(r.as_path.begin(), node);
    }
    r.learned_from = node;
    r.learned_rel = NeighborRel::Provider;  // rewritten at the receiver
    update = std::move(r);
  }

  ++updates_sent_;
  const Duration processing = Duration::nanos(
      rng_.next_int(config_.processing_delay_min.count_nanos(),
                    config_.processing_delay_max.count_nanos()));
  scheduler_.schedule_after(n.delay + processing,
                            [this, to = n.id, from = node, prefix, update] {
                              receive_update(to, from, prefix, update);
                            });
}

void Network::receive_update(NodeId node, NodeId from, PrefixId prefix,
                             std::optional<Route> route) {
  Node& state = nodes_[node];
  PrefixState& ps = state.prefixes[prefix];
  if (route) {
    // Loop check: reject paths containing ourselves.
    if (std::find(route->as_path.begin(), route->as_path.end(), node) !=
        route->as_path.end()) {
      route.reset();
    }
  }
  if (route) {
    route->learned_from = from;
    route->learned_rel = find_neighbor(node, from)->rel;
    ps.adj_rib_in[from] = *std::move(route);
  } else {
    ps.adj_rib_in.erase(from);
  }
  reselect(node, prefix);
}

// ---------------------------------------------------------------------------
// Data plane
// ---------------------------------------------------------------------------

void Network::attach_prefix_handler(PrefixId prefix, DeliveryHandler handler) {
  prefix_handlers_[prefix] = std::move(handler);
}

void Network::attach_node_handler(NodeId node, DeliveryHandler handler) {
  nodes_.at(node).node_handler = std::move(handler);
}

void Network::drop(const Packet& packet, DropReason reason) {
  if (drop_handler_) drop_handler_(packet, reason);
}

void Network::send_to_prefix(NodeId from, PrefixId prefix, std::vector<std::uint8_t> payload) {
  Packet packet;
  packet.src = from;
  packet.dst_prefix = prefix;
  packet.anycast = true;
  packet.ttl = config_.packet_ttl;
  packet.id = next_packet_id_++;
  packet.payload = std::move(payload);
  forward_anycast(std::move(packet), from);
}

void Network::forward_anycast(Packet packet, NodeId at) {
  const Node& state = nodes_.at(at);
  const auto it = state.prefixes.find(packet.dst_prefix);
  if (it != state.prefixes.end() && it->second.originating) {
    if (const auto hit = prefix_handlers_.find(packet.dst_prefix);
        hit != prefix_handlers_.end() && hit->second) {
      hit->second(at, packet);
    }
    return;
  }
  if (it == state.prefixes.end() || !it->second.best.valid) {
    drop(packet, DropReason::NoRoute);
    return;
  }
  if (--packet.ttl <= 0) {
    drop(packet, DropReason::TtlExpired);
    return;
  }
  const NodeId next = it->second.best.learned_from;
  const Neighbor* link = find_neighbor(at, next);
  // Congested link: queue overflow loses the packet before it crosses.
  if (link->loss > 0.0 && rng_.next_bool(link->loss)) {
    drop(packet, DropReason::Congested);
    return;
  }
  scheduler_.schedule_after(link->delay, [this, packet = std::move(packet), next]() mutable {
    forward_anycast(std::move(packet), next);
  });
}

void Network::send_to_node(NodeId from, NodeId to, std::vector<std::uint8_t> payload) {
  Packet packet;
  packet.src = from;
  packet.dst_node = to;
  packet.anycast = false;
  packet.ttl = config_.packet_ttl;
  packet.id = next_packet_id_++;
  packet.payload = std::move(payload);
  const Duration delay = unicast_delay(from, to);
  if (delay == Duration::max()) {
    drop(packet, DropReason::NoRoute);
    return;
  }
  scheduler_.schedule_after(delay, [this, packet = std::move(packet), to]() mutable {
    const Node& state = nodes_.at(to);
    if (state.node_handler) state.node_handler(to, packet);
  });
}

const std::vector<Duration>& Network::dijkstra_from(NodeId from) const {
  if (const auto it = spf_cache_.find(from); it != spf_cache_.end()) return it->second;
  std::vector<Duration> dist(nodes_.size(), Duration::max());
  dist[from] = Duration::zero();
  using Item = std::pair<std::int64_t, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0, from);
  std::vector<bool> done(nodes_.size(), false);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (done[u]) continue;
    done[u] = true;
    for (const auto& n : nodes_[u].neighbors) {
      const Duration candidate = dist[u] + n.delay;
      if (candidate < dist[n.id]) {
        dist[n.id] = candidate;
        heap.emplace(candidate.count_nanos(), n.id);
      }
    }
  }
  return spf_cache_.emplace(from, std::move(dist)).first->second;
}

Duration Network::unicast_delay(NodeId from, NodeId to) const {
  if (from == to) return Duration::zero();
  return dijkstra_from(from).at(to);
}

void Network::set_link_loss(NodeId a, NodeId b, double loss) {
  neighbor_of(a, b).loss = std::clamp(loss, 0.0, 1.0);
}

double Network::link_loss(NodeId a, NodeId b) const {
  const Neighbor* n = find_neighbor(a, b);
  if (!n) throw std::invalid_argument("not neighbors");
  return n->loss;
}

}  // namespace akadns::netsim
