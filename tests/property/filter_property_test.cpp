// Conformance properties of the trained filters, swept over parameter
// grids: a trained rate-limit filter admits in-profile traffic and
// rejects overload roughly in proportion to the overload factor; the
// hop-count filter never flags consistent sources and always flags
// far-off spoofers; the loyalty filter's ripening bound holds for any
// configured period.

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "filters/hopcount_filter.hpp"
#include "filters/loyalty_filter.hpp"
#include "filters/rate_limit_filter.hpp"

namespace akadns::filters {
namespace {

// QueryContext references its question; a static keeps it alive.
const dns::Question& fixed_question() {
  static const dns::Question q{dns::DnsName::from("q.prop.example"), dns::RecordType::A,
                               dns::RecordClass::IN};
  return q;
}

QueryContext make_ctx(const IpAddr& source, std::uint8_t ttl, SimTime now) {
  return QueryContext{Endpoint{source, 5353}, ttl, fixed_question(), now};
}

class RateLimitConformance
    : public ::testing::TestWithParam<std::tuple<double /*trained qps*/,
                                                 double /*overload factor*/>> {};

TEST_P(RateLimitConformance, InProfilePassesOverloadPenalized) {
  const auto [trained_qps, factor] = GetParam();
  RateLimitFilter filter({.penalty = 60.0,
                          .headroom = 3.0,
                          .min_limit_qps = 1.0,
                          .burst_seconds = 2.0,
                          .default_limit_qps = 5.0});
  const auto source = *IpAddr::parse("192.0.2.1");
  // Train for 20 minutes at the profile rate (time-ordered Poisson
  // stream — the learner's decay needs monotone timestamps).
  Rng rng(1);
  SimTime t = SimTime::origin();
  double train_clock = 0.0;
  while (train_clock < 1200.0) {
    train_clock += rng.next_exponential(trained_qps);
    filter.learn(source, t + Duration::seconds_f(train_clock));
  }
  t += Duration::minutes(20);
  filter.finalize_learning(t);

  // Offer at `factor` times the trained rate for 30 seconds.
  const double offered = trained_qps * factor;
  std::uint64_t penalized = 0, offered_count = 0;
  double clock = 0.0;
  while (clock < 30.0) {
    clock += rng.next_exponential(offered);
    if (clock >= 30.0) break;
    ++offered_count;
    if (filter.score(make_ctx(source, 57, t + Duration::seconds_f(clock))) > 0) {
      ++penalized;
    }
  }
  ASSERT_GT(offered_count, 0u);
  const double penalized_fraction =
      static_cast<double>(penalized) / static_cast<double>(offered_count);
  if (factor <= 1.0) {
    // In-profile (headroom 3x): essentially nothing penalized.
    EXPECT_LT(penalized_fraction, 0.02)
        << "qps=" << trained_qps << " factor=" << factor;
  } else if (factor >= 6.0) {
    // Far past the learned limit: at least (1 - headroom/factor) - slack.
    EXPECT_GT(penalized_fraction, (1.0 - 3.0 / factor) - 0.15)
        << "qps=" << trained_qps << " factor=" << factor;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RateLimitConformance,
    ::testing::Combine(::testing::Values(5.0, 50.0, 500.0),
                       ::testing::Values(0.5, 1.0, 6.0, 20.0)));

class HopCountConformance : public ::testing::TestWithParam<int /*spoof offset*/> {};

TEST_P(HopCountConformance, OffsetBeyondToleranceAlwaysFlagged) {
  const int offset = GetParam();
  HopCountFilter filter({.penalty = 50.0, .tolerance = 1});
  const auto source = *IpAddr::parse("192.0.2.7");
  for (int i = 0; i < 20; ++i) filter.learn(source, 57);
  const auto score =
      filter.score(make_ctx(source, static_cast<std::uint8_t>(57 + offset),
                            SimTime::origin()));
  if (std::abs(offset) <= 1) {
    EXPECT_DOUBLE_EQ(score, 0.0) << "offset " << offset;
  } else {
    EXPECT_GT(score, 0.0) << "offset " << offset;
  }
}

INSTANTIATE_TEST_SUITE_P(Offsets, HopCountConformance,
                         ::testing::Values(-20, -5, -2, -1, 0, 1, 2, 5, 20));

class LoyaltyRipening : public ::testing::TestWithParam<std::int64_t /*ripen minutes*/> {};

TEST_P(LoyaltyRipening, RipensExactlyAtTheConfiguredBoundary) {
  const auto ripen = Duration::minutes(GetParam());
  LoyaltyFilter filter({.penalty = 40.0, .ripen_after = ripen});
  const auto source = *IpAddr::parse("203.0.113.9");
  SimTime t = SimTime::origin() + Duration::days(1);
  // First sighting starts the clock (and is penalized).
  EXPECT_GT(filter.score(make_ctx(source, 57, t)), 0.0);
  // Just before the boundary: still penalized.
  EXPECT_GT(filter.score(make_ctx(source, 57, t + ripen - Duration::seconds(1))), 0.0);
  // At/after the boundary: loyal.
  EXPECT_DOUBLE_EQ(filter.score(make_ctx(source, 57, t + ripen)), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Periods, LoyaltyRipening,
                         ::testing::Values<std::int64_t>(1, 10, 60, 24 * 60));

}  // namespace
}  // namespace akadns::filters
