// Property tests for the penalty queues against a naive reference model:
// under random enqueue/dequeue interleavings, the real implementation
// and the reference agree exactly, and the §4.3.3 invariants hold
// (lowest-penalty-first, FIFO within a queue, S_max discard, bounded
// capacity).

#include <gtest/gtest.h>

#include <deque>

#include "common/rng.hpp"
#include "filters/penalty_queues.hpp"

namespace akadns::filters {
namespace {

/// Naive reference: a vector of FIFO deques.
class ReferenceQueues {
 public:
  explicit ReferenceQueues(const PenaltyQueueConfig& config) : config_(config) {
    queues_.resize(config.max_scores.size());
  }

  EnqueueOutcome enqueue(int item, double score) {
    if (score >= config_.discard_score) return EnqueueOutcome::DiscardedByScore;
    std::size_t idx = config_.max_scores.size() - 1;
    for (std::size_t i = 0; i < config_.max_scores.size(); ++i) {
      if (score <= config_.max_scores[i]) {
        idx = i;
        break;
      }
    }
    if (queues_[idx].size() >= config_.queue_capacity) {
      return EnqueueOutcome::DroppedQueueFull;
    }
    queues_[idx].push_back(item);
    return EnqueueOutcome::Enqueued;
  }

  std::optional<int> dequeue() {
    for (auto& q : queues_) {
      if (!q.empty()) {
        const int item = q.front();
        q.pop_front();
        return item;
      }
    }
    return std::nullopt;
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& q : queues_) n += q.size();
    return n;
  }

 private:
  PenaltyQueueConfig config_;
  std::vector<std::deque<int>> queues_;
};

class QueueProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueueProperty, MatchesReferenceModel) {
  Rng rng(GetParam());
  PenaltyQueueConfig config;
  config.max_scores = {0.0, 40.0, 120.0};
  config.discard_score = 180.0;
  config.queue_capacity = 8;
  PenaltyQueueSet<int> real(config);
  ReferenceQueues reference(config);

  int next_item = 0;
  for (int op = 0; op < 5000; ++op) {
    if (rng.next_bool(0.6)) {
      const double score = rng.next_double(0.0, 220.0);
      const int item = next_item++;
      EXPECT_EQ(real.enqueue(item, score), reference.enqueue(item, score)) << "op " << op;
    } else {
      EXPECT_EQ(real.dequeue(), reference.dequeue()) << "op " << op;
    }
    ASSERT_EQ(real.size(), reference.size()) << "op " << op;
  }
  // Drain and compare the tails.
  while (true) {
    const auto a = real.dequeue();
    const auto b = reference.dequeue();
    EXPECT_EQ(a, b);
    if (!a) break;
  }
}

TEST_P(QueueProperty, DequeueOrderRespectsPenaltyThenFifo) {
  Rng rng(GetParam() ^ 0x9);
  PenaltyQueueConfig config;
  config.max_scores = {0.0, 50.0, 150.0};
  config.discard_score = 200.0;
  config.queue_capacity = 100000;
  PenaltyQueueSet<std::pair<int, int>> queues(config);  // (queue idx, seq)

  std::vector<int> seq_per_queue(3, 0);
  for (int i = 0; i < 1000; ++i) {
    const double score = rng.next_double(0.0, 199.0);
    const auto idx = queues.queue_index(score);
    queues.enqueue({static_cast<int>(idx), seq_per_queue[idx]++}, score);
  }
  int last_queue = 0;
  std::vector<int> last_seq(3, -1);
  while (auto item = queues.dequeue()) {
    const auto [queue_idx, seq] = *item;
    // Since nothing is enqueued during the drain, the queue index can
    // only increase.
    EXPECT_GE(queue_idx, last_queue);
    last_queue = queue_idx;
    // FIFO within each queue.
    EXPECT_GT(seq, last_seq[static_cast<std::size_t>(queue_idx)]);
    last_seq[static_cast<std::size_t>(queue_idx)] = seq;
  }
}

TEST_P(QueueProperty, AccountingIdentityHolds) {
  Rng rng(GetParam() ^ 0x77);
  PenaltyQueueConfig config;
  config.max_scores = {0.0, 60.0};
  config.discard_score = 120.0;
  config.queue_capacity = 16;
  PenaltyQueueSet<int> queues(config);
  for (int op = 0; op < 3000; ++op) {
    if (rng.next_bool(0.7)) {
      queues.enqueue(op, rng.next_double(0.0, 150.0));
    } else {
      queues.dequeue();
    }
    // enqueued == dequeued + still-queued, and drops are never enqueued.
    ASSERT_EQ(queues.total_enqueued(), queues.total_dequeued() + queues.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueProperty, ::testing::Range<std::uint64_t>(1, 7));

// Directed parity test for the dequeue scan-resume optimization: dequeue
// remembers the lowest possibly-non-empty queue instead of rescanning
// from index 0, and enqueue must pull that cursor back when a
// lower-penalty item arrives. This sequence exercises every cursor
// transition: advance past emptied queues, full drain, and pull-back.
TEST(QueueScanResume, EnqueueAfterDrainReachesLowerPenaltyQueuesAgain) {
  PenaltyQueueConfig config;
  config.max_scores = {0.0, 50.0, 150.0};
  config.discard_score = 200.0;
  PenaltyQueueSet<int> queues(config);

  // Fill only the highest-penalty queue; the scan must advance past the
  // two empty ones.
  queues.enqueue(30, 140.0);
  queues.enqueue(31, 140.0);
  EXPECT_EQ(queues.dequeue(), 30);

  // A lower-penalty arrival after the cursor advanced must be served
  // first again (work-conserving order, not scan-cursor order).
  queues.enqueue(10, 0.0);
  queues.enqueue(20, 40.0);
  EXPECT_EQ(queues.dequeue(), 10);
  EXPECT_EQ(queues.dequeue(), 20);
  EXPECT_EQ(queues.dequeue(), 31);
  EXPECT_EQ(queues.dequeue(), std::nullopt);
  EXPECT_TRUE(queues.empty());
  EXPECT_EQ(queues.size(), 0u);

  // After a full drain (cursor at the end), the lowest queue works again.
  queues.enqueue(11, 0.0);
  EXPECT_FALSE(queues.empty());
  EXPECT_EQ(queues.size(), 1u);
  EXPECT_EQ(queues.dequeue(), 11);
  EXPECT_EQ(queues.dequeue(), std::nullopt);

  // Accounting survived all cursor movement.
  EXPECT_EQ(queues.total_enqueued(), 5u);
  EXPECT_EQ(queues.total_dequeued(), 5u);
}

}  // namespace
}  // namespace akadns::filters
