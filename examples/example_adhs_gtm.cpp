// ADHS + GTM walkthrough (§1, §3.1): an enterprise onboards onto the
// hosting service — it is assigned a unique 6-cloud delegation set, its
// NS records go into the parent zone, and a GTM property load-balances
// "www" across its datacenters. A caching resolver then follows the
// delegation chain from the parent and we fail a datacenter live.

#include <cstdio>

#include "common/stats.hpp"
#include "core/adhs.hpp"
#include "resolver/iterative_resolver.hpp"
#include "server/responder.hpp"
#include "twotier/gtm.hpp"
#include "zone/zone_builder.hpp"

using namespace akadns;

int main() {
  // --- onboarding ----------------------------------------------------------
  // Nameserver names under akadns.com so the glue lives in-bailiwick of
  // the "com" parent zone used below.
  core::EnterpriseRegistry registry({.nameserver_suffix = "akadns.com",
                                     .cloud_address_base = Ipv4Addr(172, 20, 0, 0)});
  const auto acme = registry.register_enterprise("acme");
  std::printf("enterprise 'acme' assigned delegation set {");
  for (std::size_t i = 0; i < acme.delegation_set.size(); ++i) {
    std::printf("%s%u", i ? ", " : "", acme.delegation_set[i]);
  }
  std::printf("} of C(24,6) = %s possible sets\n\n",
              fmt_count(core::max_enterprises()).c_str());

  // Parent zone (the registry/TLD side): the delegation NS + glue that
  // "enterprises add ... to the respective parent zone".
  zone::ZoneBuilder parent_builder("com", 1);
  parent_builder.soa("ns1.nic.com", "hostmaster.nic.com", 1);
  parent_builder.ns("@", "ns1.nic.com");
  parent_builder.a("ns1.nic", "192.0.2.53");
  for (const auto& ns : registry.delegation_ns_records(acme, dns::DnsName::from("acme.com"))) {
    parent_builder.record(ns);
  }
  for (const auto& glue : registry.delegation_glue_records(acme)) {
    parent_builder.record(glue);
  }
  zone::ZoneStore parent_store;
  parent_store.publish(parent_builder.build());

  // Enterprise zone hosted on Akamai DNS: same NS set at the apex; the
  // "www" answers come from a GTM property.
  zone::ZoneBuilder acme_builder("acme.com", 1);
  acme_builder.soa("a0.akadns.com", "hostmaster.acme.com", 1);
  for (const auto& ns : registry.delegation_ns_records(acme, dns::DnsName::from("acme.com"))) {
    acme_builder.record(ns);
  }
  acme_builder.txt("@", "acme corporate zone");
  zone::ZoneStore acme_store;
  acme_store.publish(acme_builder.build());

  twotier::GtmProperty www({.hostname = dns::DnsName::from("www.acme.com"),
                            .policy = twotier::GtmPolicy::Failover,
                            .ttl = 30});
  www.add_datacenter({"dc-primary", *IpAddr::parse("203.0.113.10"), 1.0, {0, 0}, true, 0});
  www.add_datacenter({"dc-backup", *IpAddr::parse("203.0.113.20"), 1.0, {90, 0}, true, 0});

  server::Responder parent_ns(parent_store);
  server::Responder akamai_ns(acme_store);
  Rng gtm_rng(1);
  akamai_ns.set_mapping_hook(
      [&](const dns::Question& question, const Endpoint&,
          const std::optional<dns::ClientSubnet>&) -> std::optional<server::MappedAnswer> {
        if (question.name != www.hostname()) return std::nullopt;
        server::MappedAnswer mapped;
        mapped.answers = www.answer(std::nullopt, gtm_rng);
        if (mapped.answers.empty()) return std::nullopt;  // all DCs down
        return mapped;
      });

  // --- resolution through the hierarchy -------------------------------------
  const Endpoint me{*IpAddr::parse("198.51.100.53"), 5353};
  const IpAddr parent_addr = *IpAddr::parse("192.0.2.53");
  resolver::IterativeResolver resolver(
      {}, [&](const dns::Message& query,
              const IpAddr& server) -> std::optional<resolver::UpstreamReply> {
        if (server == parent_addr) {
          return resolver::UpstreamReply{parent_ns.respond(query, me), Duration::millis(40)};
        }
        // Any of the six per-cloud addresses reaches Akamai DNS.
        for (const auto cloud : acme.delegation_set) {
          if (server == IpAddr(registry.cloud_address(cloud))) {
            return resolver::UpstreamReply{akamai_ns.respond(query, me),
                                           Duration::millis(12)};
          }
        }
        return std::nullopt;
      });
  resolver.add_hint(dns::DnsName::from("com"), parent_addr);

  auto show = [&](const char* label, SimTime when) {
    const auto result =
        resolver.resolve(dns::DnsName::from("www.acme.com"), dns::RecordType::A, when);
    if (result.answers.empty()) {
      std::printf("%-34s -> %s (no answer)\n", label, dns::to_string(result.rcode).c_str());
      return;
    }
    std::printf("%-34s -> %s  (ttl %us, %d upstream queries, %.0f ms)\n", label,
                dns::rdata_to_string(result.answers.back().rdata).c_str(),
                result.answers.back().ttl, result.upstream_queries,
                result.elapsed.to_millis());
  };

  show("cold resolution (via parent)", SimTime::origin());
  show("cached resolution", SimTime::origin() + Duration::seconds(5));

  std::printf("\n-- primary datacenter fails --\n");
  www.set_alive("dc-primary", false);
  // The 30 s GTM TTL expires, and the next refresh fails over.
  show("after TTL expiry", SimTime::origin() + Duration::seconds(40));

  std::printf("\n-- primary recovers --\n");
  www.set_alive("dc-primary", true);
  show("after another TTL expiry", SimTime::origin() + Duration::seconds(80));

  std::printf("\nnote: the refreshes above never re-contacted the parent — the\n"
              "acme.com delegation (TTL 86400) stays cached, only the 30 s GTM\n"
              "answer is refreshed. That asymmetry is the Two-Tier idea (§5.2)\n"
              "applied at the hosting level.\n");
  return 0;
}
