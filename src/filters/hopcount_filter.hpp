// Hop-count filter (§4.3.4, attack class 4 "Spoofed Source IP").
//
// "We use the well-established technique of hop-count filtering. The
// hopcount filter learns the IP TTL of DNS queries for resolvers on the
// allowlist using historical data. When the IP TTL of a DNS query
// diverges from the expected value, the query is assigned a penalty
// score." The paper observes that per-source IP TTLs are stable: only
// 12% of sources show any variation over an hour and 4.7% ever vary by
// more than ±1 — so a small tolerance band catches spoofers who cannot
// know the true hop count.
#pragma once

#include <unordered_map>

#include "filters/filter.hpp"

namespace akadns::filters {

class HopCountFilter : public Filter {
 public:
  struct Config {
    double penalty = 50.0;
    /// |observed - learned| <= tolerance passes.
    int tolerance = 1;
    /// Minimum observations before enforcement kicks in for a source.
    std::uint32_t min_observations = 3;
    /// EWMA weight for adapting the learned TTL to slow route changes.
    double adapt_weight = 0.05;
    std::size_t max_tracked_sources = 1'000'000;
  };

  HopCountFilter();
  explicit HopCountFilter(Config config);

  std::string_view name() const noexcept override { return "hopcount"; }
  double score(const QueryContext& ctx) override;

  /// Trains from a historical (source, ip_ttl) observation.
  void learn(const IpAddr& source, std::uint8_t ip_ttl);

  /// The learned TTL for a source, or -1 if unknown/unripe.
  int learned_ttl(const IpAddr& source) const;

  std::size_t tracked_sources() const noexcept { return ttls_.size(); }
  std::uint64_t total_penalized() const noexcept { return penalized_; }

 private:
  struct TtlState {
    double ewma_ttl = 0.0;
    std::uint32_t observations = 0;
  };

  Config config_;
  std::unordered_map<IpAddr, TtlState> ttls_;
  std::uint64_t penalized_ = 0;
};

}  // namespace akadns::filters
