// Per-machine answer cache for the compiled response path.
//
// Static zone content changes only at publish time, so a fully-built wire
// response stays valid until the shortest TTL it carries expires or the
// zone store's generation moves. The cache keys on everything that can
// change the response bytes — qname, qtype, the RD bit, and the query's
// EDNS signature (presence, advertised payload size, and the full
// client-subnet option) — and stores the finished wire image plus the
// statistics the responder would have counted, so a hit is a memcpy with
// a 2-byte transaction-id patch and exact stat parity with a miss.
//
// Deliberately NOT cached: mapped (GTM/CDN) answers, whose hook runs
// before the cache so dynamic decisions can never be served stale, and
// REFUSED responses, whose keyspace is attacker-controlled (a
// random-qname flood would otherwise evict every real entry). A bounded
// FIFO caps memory; expiry is lazy against simulated time.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/ip.hpp"
#include "common/sim_time.hpp"
#include "dns/message.hpp"
#include "obs/registry.hpp"

namespace akadns::server {

/// The stats a cached response contributed on its original miss, replayed
/// on every hit so ResponderStats counts cached and uncached queries
/// identically.
struct CachedStatDelta {
  dns::Rcode rcode = dns::Rcode::NoError;
  std::uint8_t nodata = 0;
  std::uint8_t referrals = 0;
  std::uint8_t wildcard_answers = 0;
  std::uint8_t cname_chases = 0;
};

class AnswerCache {
 public:
  struct Stats {
    obs::Counter hits;
    obs::Counter misses;
    obs::Counter insertions;  // writes, including expired-slot refreshes
    obs::Counter evictions;
    obs::Counter expired;        // hits refused because the TTL ran out
    obs::Counter invalidations;  // whole-cache clears on generation change

    /// One akadns_answer_cache_total{event=...} series per counter.
    void register_into(obs::MetricRegistry& reg, const obs::LabelSet& base) const {
      const auto event = [&](const char* name, const obs::Counter& c) {
        reg.counter("akadns_answer_cache_total", obs::with(base, "event", name), c,
                    "answer-cache events");
      };
      event("hit", hits);
      event("miss", misses);
      event("insertion", insertions);
      event("eviction", evictions);
      event("expired", expired);
      event("invalidation", invalidations);
    }

    /// Accumulates another cache's counters (per-lane → machine view).
    void merge(const Stats& o) noexcept {
      hits += o.hits;
      misses += o.misses;
      insertions += o.insertions;
      evictions += o.evictions;
      expired += o.expired;
      invalidations += o.invalidations;
    }

    bool operator==(const Stats&) const noexcept = default;
  };

  explicit AnswerCache(std::size_t max_entries) : max_entries_(max_entries) {}

  /// Drops everything when the zone store's generation has moved (any
  /// publish or removal invalidates conservatively, like the paper's
  /// whole-snapshot metadata pushes).
  void sync_generation(std::uint64_t generation);

  /// Looks up a response. On a hit, copies the cached wire into `out`
  /// with the transaction id patched to `id` and returns the stat delta.
  /// Expired entries count as misses (and as `expired`).
  std::optional<CachedStatDelta> lookup(const dns::Question& question, bool rd,
                                        const std::optional<dns::Edns>& edns, SimTime now,
                                        std::uint16_t id, std::vector<std::uint8_t>& out);

  /// Inserts a response valid for `ttl_seconds` of simulated time.
  /// Overwrites in place if the key is already present.
  void insert(const dns::Question& question, bool rd, const std::optional<dns::Edns>& edns,
              SimTime now, std::uint32_t ttl_seconds, const CachedStatDelta& delta,
              std::span<const std::uint8_t> wire);

  void clear();

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t capacity() const noexcept { return max_entries_; }
  const Stats& stats() const noexcept { return stats_; }

 private:
  /// Owning key (stored) and borrowed key (probed) share one identity;
  /// the transparent hash/equality below let the hot path probe without
  /// copying the qname.
  struct Key {
    dns::DnsName qname;
    dns::RecordType qtype{};
    bool rd = false;
    bool has_edns = false;
    std::uint16_t udp_payload_size = 0;
    bool has_ecs = false;
    IpAddr ecs_addr{};
    std::uint8_t ecs_source_prefix = 0;
    std::uint8_t ecs_scope_prefix = 0;

    bool operator==(const Key&) const = default;
  };
  struct KeyView {
    const dns::DnsName* qname = nullptr;
    dns::RecordType qtype{};
    bool rd = false;
    bool has_edns = false;
    std::uint16_t udp_payload_size = 0;
    bool has_ecs = false;
    IpAddr ecs_addr{};
    std::uint8_t ecs_source_prefix = 0;
    std::uint8_t ecs_scope_prefix = 0;
  };
  struct KeyHash {
    using is_transparent = void;
    std::size_t operator()(const Key& k) const noexcept { return mix(k.qname, k); }
    std::size_t operator()(const KeyView& k) const noexcept { return mix(*k.qname, k); }
    template <typename K>
    static std::size_t mix(const dns::DnsName& qname, const K& k) noexcept {
      std::uint64_t h = qname.hash();
      h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(k.qtype);
      h = h * 0x9e3779b97f4a7c15ULL +
          ((k.rd ? 1u : 0u) | (k.has_edns ? 2u : 0u) | (k.has_ecs ? 4u : 0u));
      h = h * 0x9e3779b97f4a7c15ULL + k.udp_payload_size;
      h = h * 0x9e3779b97f4a7c15ULL + k.ecs_addr.hash();
      h = h * 0x9e3779b97f4a7c15ULL +
          (static_cast<std::uint64_t>(k.ecs_source_prefix) << 8 | k.ecs_scope_prefix);
      return static_cast<std::size_t>(h);
    }
  };
  struct KeyEq {
    using is_transparent = void;
    bool operator()(const Key& a, const Key& b) const noexcept { return a == b; }
    bool operator()(const KeyView& a, const Key& b) const noexcept {
      return *a.qname == b.qname && a.qtype == b.qtype && a.rd == b.rd &&
             a.has_edns == b.has_edns && a.udp_payload_size == b.udp_payload_size &&
             a.has_ecs == b.has_ecs && a.ecs_addr == b.ecs_addr &&
             a.ecs_source_prefix == b.ecs_source_prefix &&
             a.ecs_scope_prefix == b.ecs_scope_prefix;
    }
    bool operator()(const Key& a, const KeyView& b) const noexcept { return (*this)(b, a); }
  };

  struct Entry {
    std::vector<std::uint8_t> wire;
    SimTime expires;
    CachedStatDelta delta;
  };

  static KeyView make_view(const dns::Question& question, bool rd,
                           const std::optional<dns::Edns>& edns) noexcept;

  std::size_t max_entries_;
  std::uint64_t generation_ = 0;
  std::unordered_map<Key, Entry, KeyHash, KeyEq> entries_;
  /// Insertion order; pointers into the map's stable key storage.
  std::deque<const Key*> fifo_;
  Stats stats_;
};

}  // namespace akadns::server
