// akadns-serve: the authoritative frontend on real Linux sockets.
//
// N worker threads each own one SO_REUSEPORT UDP socket bound to the
// same port — the kernel's receive-side flow hash shards resolvers
// across workers exactly as the simulator's lane-pinning hash shards
// them across lanes (§5b of DESIGN.md), so "worker" here is the physical
// realization of a lane: each owns its own Responder (answer cache,
// scratch buffers), its own batch storage, and its own statistics, and
// no query ever crosses a worker boundary. The datapath is the sim's,
// unchanged: decode_query_view once, respond_view_into with pooled
// response buffers — zero per-query heap allocation on the UDP hot path.
//
// UDP moves through recvmmsg/sendmmsg in batches; TCP (the truncation
// fallback — clients retry over TCP when a response comes back TC) is a
// per-worker SO_REUSEPORT listener with RFC 1035 two-byte length
// framing, pipelining supported, responses never truncated.
//
// Graceful drain: stop() (or the daemon's SIGTERM handler) makes every
// worker close its TCP listener, take one final sweep of datagrams
// already queued in its UDP socket, flush established connections'
// pending responses until the drain deadline, and exit. Stats are
// merged after the join, so the daemon's final telemetry dump sees
// every counted packet.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "common/sim_time.hpp"
#include "defense/defense_engine.hpp"
#include "net/socket.hpp"
#include "propagation/transfer_service.hpp"
#include "propagation/zone_publisher.hpp"
#include "propagation/zone_subscriber.hpp"
#include "server/responder.hpp"
#include "zone/zone_store.hpp"

namespace akadns::net {

/// Defense stack for the socket frontend: each worker runs its own
/// single-lane defense::DefenseEngine on CLOCK_MONOTONIC, ahead of the
/// Responder — the same engine the simulated nameserver drives on
/// simulated time. The worker's kernel-RSS shard plays the role of the
/// sim's lane, so per-worker filter state needs no sharing or locking.
struct DefenseOptions {
  /// Routes queries through the filter chain + penalty queues. Off by
  /// default: the inline zero-alloc fast path answers straight out of
  /// the receive batch (the firewall rule table is consulted either way).
  bool enabled = false;
  /// Server-wide compute metering (answers/sec the engine releases to
  /// the responders; split evenly across workers). <= 0: unmetered —
  /// with `enabled` the queues then only shed by score, never shape.
  double compute_qps = 0.0;
  /// Per-worker penalty-queue shape (M_i thresholds, S_max, capacity).
  filters::PenaltyQueueConfig queue_config{};
  /// NXDOMAIN (random-subdomain) filter tuning. The threshold is
  /// server-level: it is scaled down by the worker count, as each worker
  /// sees only its RSS shard of the traffic. This is the discriminating
  /// filter for the socket frontend — it scores what is *asked*, so it
  /// works even when all traffic shares a few source ports (loopback).
  double nxdomain_penalty = 150.0;
  std::uint64_t nxdomain_threshold = 200;
  /// Also install the hop-count filter (spoofed-source detection via IP
  /// TTL divergence; inert on loopback where every packet hops zero).
  bool hopcount = true;
  /// Query-of-death firewall rules installed at startup (each drops the
  /// qname and everything below it, any qtype, no practical expiry).
  std::vector<dns::DnsName> qod_rules;
};

struct ServeConfig {
  Ipv4Addr bind_addr = Ipv4Addr(127, 0, 0, 1);
  /// UDP and TCP port (0 binds an ephemeral port; read it back from
  /// udp_port() — tests and the loopback differential suite do this).
  std::uint16_t port = 0;
  std::size_t workers = 4;
  /// Datagrams per recvmmsg/sendmmsg syscall.
  std::size_t udp_batch = 32;
  /// Requested socket buffer sizes (kernel clamps to its limits).
  int udp_rcvbuf = 1 << 22;
  int udp_sndbuf = 1 << 22;
  /// TCP frames larger than this poison the connection (RFC 7766 §8).
  std::size_t tcp_max_frame = 65535;
  /// Established connections a worker will hold; accepts beyond this are
  /// closed immediately (backpressure against connection floods).
  std::size_t tcp_max_connections = 1024;
  /// How long stop() lets workers flush in-flight TCP responses.
  Duration drain_timeout = Duration::seconds(5);
  server::ResponderConfig responder{};
  DefenseOptions defense{};
  /// Invoked (from a worker thread — must be thread-safe and cheap) when
  /// a NOTIFY arrives over UDP for `apex`. The worker has already queued
  /// the acknowledgment; the callback's job is to kick a refresh check
  /// (SecondarySync::notify_kick) or record the event.
  std::function<void(const dns::DnsName& apex)> on_notify;
  /// Zone-transfer (AXFR/IXFR) response shaping for the TCP path.
  propagation::TransferConfig transfer{};
};

/// Frontend I/O counters, per worker and merged. (Responder/cache
/// counters live in server::ResponderStats / AnswerCache::Stats.)
struct FrontendStats {
  std::uint64_t udp_packets = 0;     // datagrams received
  std::uint64_t udp_responses = 0;   // datagrams handed to sendmmsg
  std::uint64_t udp_malformed = 0;   // dropped: no parseable header/question
  std::uint64_t udp_send_failures = 0;  // responses the kernel refused
  std::uint64_t udp_batches = 0;     // recvmmsg calls that returned data
  std::uint64_t tcp_accepted = 0;
  std::uint64_t tcp_rejected = 0;    // over the connection cap
  std::uint64_t tcp_queries = 0;     // complete frames decoded
  std::uint64_t tcp_responses = 0;
  std::uint64_t tcp_protocol_errors = 0;  // framing violations / bad frames
  std::uint64_t drain_flushed = 0;   // UDP datagrams answered during drain
  std::uint64_t udp_notifies = 0;    // NOTIFY messages acknowledged
  std::uint64_t tcp_transfers = 0;   // AXFR/IXFR queries answered
  std::uint64_t zone_update_wakes = 0;  // update-eventfd wakeups taken

  void merge(const FrontendStats& o) noexcept {
    udp_packets += o.udp_packets;
    udp_responses += o.udp_responses;
    udp_malformed += o.udp_malformed;
    udp_send_failures += o.udp_send_failures;
    udp_batches += o.udp_batches;
    tcp_accepted += o.tcp_accepted;
    tcp_rejected += o.tcp_rejected;
    tcp_queries += o.tcp_queries;
    tcp_responses += o.tcp_responses;
    tcp_protocol_errors += o.tcp_protocol_errors;
    drain_flushed += o.drain_flushed;
    udp_notifies += o.udp_notifies;
    tcp_transfers += o.tcp_transfers;
    zone_update_wakes += o.zone_update_wakes;
  }
};

/// Whole-server view assembled after the workers stop.
struct ServerStats {
  FrontendStats frontend;
  server::ResponderStats responder;
  server::AnswerCache::Stats answer_cache;
  /// Per-worker UDP packet counts — the observable shard balance the
  /// kernel's RSS hash produced.
  std::vector<std::uint64_t> per_worker_udp;
  /// Whether queries were routed through the filter chain + queues.
  bool defense_enabled = false;
  /// Defense accounting (scored / enqueued / released / shed-by-reason),
  /// merged across workers and per worker.
  defense::DefenseLaneStats defense;
  std::vector<defense::DefenseLaneStats> per_worker_defense;
  /// Query-of-death firewall rules live at shutdown (per worker the
  /// tables are identical by construction; worker 0 reported).
  std::size_t firewall_rules = 0;
  /// Propagation: how worker replicas absorbed published zone versions
  /// (merged across workers), transfer-service counters (TCP AXFR/IXFR),
  /// and the replicas' compile accounting.
  propagation::ZoneSyncStats zone_sync;
  propagation::TransferStats transfers;
  zone::CompileStats replica_compiles;
};

class Server {
 public:
  /// Live-reload mode: every worker owns a replica ZoneStore attached to
  /// `publisher` — zones published (or IXFR chains applied) while the
  /// server runs propagate to the workers without dropping queries. The
  /// publisher must outlive the server; publish()/apply_chain() are safe
  /// from any thread.
  Server(ServeConfig config, propagation::ZonePublisher& publisher);

  /// Static-content mode: snapshots `store` into an internal publisher at
  /// construction (compiled snapshots are shared, not recompiled). Later
  /// mutations of `store` are NOT observed — publish before constructing,
  /// exactly like the sim publishes before pumping queries.
  Server(ServeConfig config, const zone::ZoneStore& store);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds every worker's sockets and launches the threads. On error
  /// nothing is left running.
  Result<bool> start();

  /// Graceful drain: stop accepting, sweep queued datagrams, flush
  /// in-flight TCP, join every worker. Idempotent.
  void stop();

  bool running() const noexcept { return running_; }
  std::uint16_t udp_port() const noexcept { return udp_port_; }
  std::uint16_t tcp_port() const noexcept { return tcp_port_; }

  /// Merged statistics. Only stable after stop() — workers own their
  /// counters while running.
  ServerStats stats() const;

  /// The propagation pipeline the workers subscribe to. In static mode
  /// this is the internal publisher seeded from the constructor's store.
  propagation::ZonePublisher& publisher() noexcept { return publisher_; }

 private:
  struct Worker;

  ServeConfig config_;
  /// Static-mode plumbing: an owned clock + publisher seeded from the
  /// constructor's store (null in live-reload mode).
  std::unique_ptr<MonotonicClock> owned_clock_;
  std::unique_ptr<propagation::ZonePublisher> owned_publisher_;
  propagation::ZonePublisher& publisher_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  bool stopped_ = false;
  std::uint16_t udp_port_ = 0;
  std::uint16_t tcp_port_ = 0;
};

}  // namespace akadns::net
